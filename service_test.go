package msc_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"msc"
	"msc/internal/faultinject"
	"msc/internal/obs"
)

// The CompileService tests drive the handler directly — no sockets —
// which is exactly why the service is a plain http.Handler.

func postCompile(t *testing.T, svc *msc.CompileService, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	svc.ServeHTTP(w, req)
	return w
}

func compileBody(t *testing.T, source string, extra string) string {
	t.Helper()
	b, err := json.Marshal(source)
	if err != nil {
		t.Fatal(err)
	}
	if extra != "" {
		return fmt.Sprintf(`{"source": %s, %s}`, b, extra)
	}
	return fmt.Sprintf(`{"source": %s}`, b)
}

func decodeError(t *testing.T, w *httptest.ResponseRecorder) msc.ErrorBody {
	t.Helper()
	var eb msc.ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("error body not JSON (%v): %s", err, w.Body.String())
	}
	return eb
}

func TestServiceCompileOK(t *testing.T) {
	svc := msc.NewCompileService(msc.ServiceConfig{})
	defer svc.Close()
	src := readSource(t, "testdata/vet/barriers.mc")
	w := postCompile(t, svc, "/compile", compileBody(t, src, `"emit": ["mpl"], "run": {"engine": "simd", "n": 8}`))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	var resp msc.CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.MetaStates < 1 || resp.MIMDStates < 1 {
		t.Errorf("empty automaton in response: %+v", resp)
	}
	if resp.Stats == nil || resp.Stats.MetaStates < 1 {
		t.Errorf("stats missing: %+v", resp.Stats)
	}
	if !strings.Contains(resp.MPL, "ms_0") {
		t.Errorf("emitted MPL looks wrong: %q", resp.MPL)
	}
	if resp.Run == nil || resp.Run.Cycles <= 0 || resp.Run.Engine != "simd" {
		t.Errorf("run result missing: %+v", resp.Run)
	}
}

// TestServiceErrorTaxonomy is the status mapping table from
// docs/SERVICE.md, end to end through the handler.
func TestServiceErrorTaxonomy(t *testing.T) {
	svc := msc.NewCompileService(msc.ServiceConfig{})
	defer svc.Close()
	good := readSource(t, "testdata/vet/barriers.mc")
	nonterm := readSource(t, "testdata/robust/nonterminating.mc")

	cases := []struct {
		name       string
		path, body string
		wantStatus int
		wantKind   string
		check      func(t *testing.T, eb msc.ErrorBody, raw string)
	}{
		{
			name: "not json", path: "/compile", body: "{not json",
			wantStatus: 400, wantKind: "invalid",
		},
		{
			name: "missing source", path: "/compile", body: `{"config": {"compress": true}}`,
			wantStatus: 400, wantKind: "invalid",
		},
		{
			name: "parse error", path: "/compile", body: compileBody(t, "void main( { return;", ""),
			wantStatus: 400, wantKind: "invalid",
		},
		{
			name: "invalid config", path: "/compile",
			body:       compileBody(t, good, `"config": {"compress": true, "split_percent": 200}`),
			wantStatus: 400, wantKind: "invalid",
		},
		{
			name: "invalid engine", path: "/compile",
			body:       compileBody(t, good, `"run": {"engine": "quantum"}`),
			wantStatus: 400, wantKind: "invalid",
		},
		{
			name: "over budget", path: "/compile",
			body:       compileBody(t, good, `"limits": {"max_states": 1}`),
			wantStatus: 429, wantKind: "budget",
			check: func(t *testing.T, eb msc.ErrorBody, raw string) {
				if eb.Resource != "meta_states" || eb.Phase != obs.PhaseConvert {
					t.Errorf("budget attribution wrong: %+v", eb)
				}
				if eb.Limit != 1 || eb.Used < 1 {
					t.Errorf("budget numbers wrong: %+v", eb)
				}
			},
		},
		{
			name: "step limit", path: "/compile",
			body:       compileBody(t, nonterm, `"run": {"engine": "simd", "n": 4, "max_steps": 64}`),
			wantStatus: 422, wantKind: "step_limit",
			check: func(t *testing.T, eb msc.ErrorBody, raw string) {
				if eb.Engine != "simd" {
					t.Errorf("engine attribution wrong: %+v", eb)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postCompile(t, svc, tc.path, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", w.Code, tc.wantStatus, w.Body.String())
			}
			eb := decodeError(t, w)
			if eb.Error != tc.wantKind {
				t.Fatalf("kind = %q, want %q (%+v)", eb.Error, tc.wantKind, eb)
			}
			if tc.check != nil {
				tc.check(t, eb, w.Body.String())
			}
		})
	}
}

// TestServiceInternalErrorHidesStack: a contained panic maps to 500
// with phase attribution and no stack or panic value in the body.
func TestServiceInternalErrorHidesStack(t *testing.T) {
	deactivate := faultinject.Activate(&faultinject.Plan{
		Phase: obs.PhaseCodegen,
		Fault: faultinject.PanicAtPhase,
	})
	defer deactivate()
	svc := msc.NewCompileService(msc.ServiceConfig{})
	defer svc.Close()
	src := readSource(t, "testdata/vet/barriers.mc")
	w := postCompile(t, svc, "/compile", compileBody(t, src, ""))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	eb := decodeError(t, w)
	if eb.Error != "internal" || eb.Phase != obs.PhaseCodegen {
		t.Fatalf("internal attribution wrong: %+v", eb)
	}
	body := w.Body.String()
	for _, leak := range []string{"goroutine", ".go:", "faultinject: injected"} {
		if strings.Contains(body, leak) {
			t.Errorf("500 body leaks internals (%q): %s", leak, body)
		}
	}
}

// TestServiceDegradeQuery: ?degrade=1 turns the ladder on and the
// response reports the rungs taken.
func TestServiceDegradeQuery(t *testing.T) {
	deactivate := faultinject.Activate(&faultinject.Plan{
		Phase: obs.PhaseConvert,
		Fault: faultinject.BudgetAtPhase,
		Times: 1,
	})
	defer deactivate()
	svc := msc.NewCompileService(msc.ServiceConfig{})
	defer svc.Close()
	src := readSource(t, "testdata/vet/barriers.mc")
	body := compileBody(t, src, `"config": {"compress": true, "barrier_exact": true}`)
	w := postCompile(t, svc, "/compile?degrade=1", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	var resp msc.CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Degradations) != 1 || !strings.Contains(resp.Degradations[0].Action, "barrier-exact") {
		t.Fatalf("degradation rungs not reported: %+v", resp.Degradations)
	}
}

// TestServiceAdmission: with one worker and a queue of one, a third
// concurrent request is rejected 429 while the first two eventually
// succeed.
func TestServiceAdmission(t *testing.T) {
	deactivate := faultinject.Activate(&faultinject.Plan{
		Phase: obs.PhaseConvert,
		Fault: faultinject.SlowPhase,
		Delay: 400 * time.Millisecond,
	})
	defer deactivate()
	svc := msc.NewCompileService(msc.ServiceConfig{Workers: 1, QueueDepth: 1})
	defer svc.Close()
	src := readSource(t, "testdata/vet/barriers.mc")
	body := compileBody(t, src, "")

	type outcome struct{ code int }
	results := make(chan outcome, 3)
	var wg sync.WaitGroup
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := postCompile(t, svc, "/compile", body)
			results <- outcome{w.Code}
		}()
	}
	// Occupy the worker, then the queue slot, then overflow.
	launch()
	waitInFlight(t, svc, 1)
	launch()
	waitQueued(t, svc, 1)
	launch()
	wg.Wait()
	close(results)

	counts := map[int]int{}
	for r := range results {
		counts[r.code]++
	}
	if counts[http.StatusOK] != 2 || counts[http.StatusTooManyRequests] != 1 {
		t.Fatalf("status counts = %v, want 2×200 and 1×429", counts)
	}
}

func statusz(t *testing.T, svc *msc.CompileService) msc.ServiceStatus {
	t.Helper()
	w := httptest.NewRecorder()
	svc.ServeHTTP(w, httptest.NewRequest("GET", "/statusz", nil))
	var st msc.ServiceStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("statusz not JSON: %s", w.Body.String())
	}
	return st
}

func waitInFlight(t *testing.T, svc *msc.CompileService, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for statusz(t, svc).InFlight < n {
		if time.Now().After(deadline) {
			t.Fatalf("in_flight never reached %d", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitQueued(t *testing.T, svc *msc.CompileService, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for statusz(t, svc).Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queued never reached %d", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceDrain: draining flips /readyz, rejects new work with 503,
// lets the in-flight compile finish, and leaves no goroutines behind.
func TestServiceDrain(t *testing.T) {
	leak := faultinject.LeakCheckWithin(5 * time.Second)
	deactivate := faultinject.Activate(&faultinject.Plan{
		Phase: obs.PhaseConvert,
		Fault: faultinject.SlowPhase,
		Delay: 300 * time.Millisecond,
	})
	svc := msc.NewCompileService(msc.ServiceConfig{Workers: 2})
	src := readSource(t, "testdata/vet/barriers.mc")
	body := compileBody(t, src, "")

	inFlightDone := make(chan int, 1)
	go func() {
		w := postCompile(t, svc, "/compile", body)
		inFlightDone <- w.Code
	}()
	waitInFlight(t, svc, 1)

	drained := make(chan error, 1)
	go func() { drained <- svc.Drain(context.Background()) }()

	// Readiness flips as soon as draining starts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		w := httptest.NewRecorder()
		svc.ServeHTTP(w, httptest.NewRequest("GET", "/readyz", nil))
		if w.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// New work is rejected while draining.
	if w := postCompile(t, svc, "/compile", body); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("compile while draining: status %d", w.Code)
	} else if decodeError(t, w).Error != "draining" {
		t.Fatalf("wrong rejection kind: %s", w.Body.String())
	}
	// The in-flight request still completes, then Drain returns.
	if code := <-inFlightDone; code != http.StatusOK {
		t.Fatalf("in-flight compile status %d", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	svc.Close()
	deactivate()
	if err := leak(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceStreaming: ?trace=1 produces an NDJSON stream of span
// envelopes (plus engine events when running) with exactly one final
// done envelope — and a fail envelope on error.
func TestServiceStreaming(t *testing.T) {
	svc := msc.NewCompileService(msc.ServiceConfig{})
	defer svc.Close()
	src := readSource(t, "testdata/vet/barriers.mc")
	w := postCompile(t, svc, "/compile?trace=1",
		compileBody(t, src, `"run": {"engine": "simd", "n": 4}`))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var spans, events, dones int
	var lastKind string
	sc := bufio.NewScanner(strings.NewReader(w.Body.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var env map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("stream line not JSON: %s", sc.Text())
		}
		switch {
		case env["span"] != nil:
			spans++
			lastKind = "span"
		case env["event"] != nil:
			events++
			lastKind = "event"
		case env["done"] != nil:
			dones++
			lastKind = "done"
		case env["fail"] != nil:
			lastKind = "fail"
		}
	}
	if spans < 5 {
		t.Errorf("want compile phase spans in stream, got %d", spans)
	}
	if events < 1 {
		t.Errorf("want engine trace events in stream, got %d", events)
	}
	if dones != 1 || lastKind != "done" {
		t.Errorf("stream must end with exactly one done envelope (dones=%d last=%s)", dones, lastKind)
	}

	// Failure shape: invalid program → 200 stream closed by a fail
	// envelope carrying the taxonomy kind.
	w = postCompile(t, svc, "/compile?trace=1", compileBody(t, "void main( {", ""))
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	var env map[string]json.RawMessage
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &env); err != nil || env["fail"] == nil {
		t.Fatalf("failed stream does not end in fail envelope: %q", lines[len(lines)-1])
	}
	var eb msc.ErrorBody
	if err := json.Unmarshal(env["fail"], &eb); err != nil || eb.Error != "invalid" {
		t.Fatalf("fail envelope wrong: %s", env["fail"])
	}
}

// TestServiceIntrospection: healthz/readyz/metrics/statusz all serve,
// and a compile's metrics land in the Prometheus exposition.
func TestServiceIntrospection(t *testing.T) {
	svc := msc.NewCompileService(msc.ServiceConfig{})
	defer svc.Close()
	src := readSource(t, "testdata/vet/barriers.mc")
	if w := postCompile(t, svc, "/compile", compileBody(t, src, "")); w.Code != 200 {
		t.Fatalf("compile: %d", w.Code)
	}

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		svc.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w
	}
	if w := get("/healthz"); w.Code != 200 {
		t.Errorf("healthz: %d", w.Code)
	}
	if w := get("/readyz"); w.Code != 200 {
		t.Errorf("readyz: %d", w.Code)
	}
	st := statusz(t, svc)
	if st.Served < 1 || st.Status2xx < 1 || st.Goroutines < 1 {
		t.Errorf("statusz incomplete: %+v", st)
	}
	if st.RSSBytes <= 0 {
		t.Logf("statusz rss unavailable on this platform: %+v", st)
	}
	w := get("/metrics")
	if w.Code != 200 {
		t.Fatalf("metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{"service_latency_ns", "compile_latency_ns", "service_responses", "proc_goroutines", "convert_meta_states"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

// TestServiceRequestLimitsClamped: a request may tighten the service
// limits but not exceed the configured ceiling.
func TestServiceRequestLimitsClamped(t *testing.T) {
	svc := msc.NewCompileService(msc.ServiceConfig{
		DefaultLimits: msc.Limits{MaxStates: 4},
	})
	defer svc.Close()
	src := readSource(t, "testdata/vet/barriers.mc")
	// Asking for a bigger budget than the service allows still hits the
	// service ceiling.
	w := postCompile(t, svc, "/compile", compileBody(t, src, `"limits": {"max_states": 100000}`))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (service ceiling must clamp)", w.Code)
	}
	eb := decodeError(t, w)
	if eb.Limit != 4 {
		t.Fatalf("clamped limit = %d, want 4: %+v", eb.Limit, eb)
	}
}
