package msc_test

import (
	"fmt"
	"testing"

	"msc"
	"msc/internal/harness"
	"msc/internal/progen"
)

// TestWideMachines runs the workload suite on machines up to 256 PEs:
// correctness must hold at every width and the SIMD cycle count must be
// essentially width-independent for uniform workloads (one instruction
// stream drives any number of PEs).
func TestWideMachines(t *testing.T) {
	for _, n := range []int{1, 2, 3, 16, 64, 256} {
		c := msc.MustCompile(harness.Reduction, msc.DefaultConfig())
		rc := msc.RunConfig{N: n}
		sd, err := c.RunSIMD(rc)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		ref, err := c.RunMIMD(rc)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		slot, _ := c.Slot("sum")
		want := int64(n) * int64(n+1) / 2
		for pe := 0; pe < n; pe++ {
			if got := int64(sd.Mem[pe][slot]); got != want {
				t.Fatalf("N=%d PE %d: sum = %d, want %d", n, pe, got, want)
			}
			if sd.Mem[pe][slot] != ref.Mem[pe][slot] {
				t.Fatalf("N=%d PE %d: engines disagree", n, pe)
			}
		}
	}
}

// TestSortScalesAndStaysSorted exercises the odd-even sorting network at
// several widths.
func TestSortScalesAndStaysSorted(t *testing.T) {
	c := msc.MustCompile(harness.OddEvenSort, msc.DefaultConfig())
	for _, n := range []int{2, 5, 16, 48} {
		res, err := c.RunSIMD(msc.RunConfig{N: n})
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		slot, _ := c.Slot("v")
		for pe := 1; pe < n; pe++ {
			if res.Mem[pe-1][slot] > res.Mem[pe][slot] {
				t.Fatalf("N=%d: unsorted at PE %d", n, pe)
			}
		}
	}
}

// TestLargeRandomProgramsCompressed pushes bigger generated programs
// through the compressed pipeline on a 64-wide machine and checks the
// SIMD result against the MIMD reference.
func TestLargeRandomProgramsCompressed(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep skipped in -short")
	}
	for seed := int64(500); seed < 510; seed++ {
		src := progen.Source(progen.Params{
			Seed: seed, Barriers: true, Floats: true, Calls: true,
			MaxDepth: 4, MaxStmts: 7, Vars: 6, LoopTrip: 4,
		})
		name := fmt.Sprintf("seed%d", seed)
		c, err := msc.Compile(src, msc.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, src)
		}
		rc := msc.RunConfig{N: 64}
		sd, err := c.RunSIMD(rc)
		if err != nil {
			t.Fatalf("%s: simd: %v\n%s", name, err, src)
		}
		ref, err := c.RunMIMD(rc)
		if err != nil {
			t.Fatalf("%s: mimd: %v", name, err)
		}
		for pe := 0; pe < 64; pe++ {
			for slot := range ref.Mem[pe] {
				if ref.Mem[pe][slot] != sd.Mem[pe][slot] {
					t.Fatalf("%s: PE %d slot %d: %d != %d\n%s",
						name, pe, slot, sd.Mem[pe][slot], ref.Mem[pe][slot], src)
				}
			}
		}
	}
}

// TestDeepNesting checks a pathological single program: five levels of
// nested control flow with calls in conditions.
func TestDeepNesting(t *testing.T) {
	src := `
poly int acc;
int bump(int v) { return v + 1; }
void main()
{
    poly int a, b, c, d;
    for (a = 0; a < 3; a = a + 1) {
        if (a % 2 == 0) {
            for (b = 0; b < 2; b = b + 1) {
                while (c < bump(a + b)) {
                    do {
                        acc = acc + 1;
                        d = d + 1;
                    } while (d % 3 != 0);
                    c = c + 1;
                }
                c = 0;
            }
        } else {
            acc = acc + bump(acc) % 5;
        }
    }
    return;
}
`
	c, err := msc.Compile(src, msc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sd, err := c.RunSIMD(msc.RunConfig{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.RunMIMD(msc.RunConfig{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	slot, _ := c.Slot("acc")
	for pe := 0; pe < 8; pe++ {
		if sd.Mem[pe][slot] != ref.Mem[pe][slot] {
			t.Fatalf("PE %d: %d != %d", pe, sd.Mem[pe][slot], ref.Mem[pe][slot])
		}
	}
}

// TestExpandCallsRandomEquivalence sweeps generated call-heavy programs
// through the §2.2 in-line expansion pipeline and checks results against
// the MIMD reference built from the same expanded graph and against the
// default shared-copy pipeline.
func TestExpandCallsRandomEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("random sweep skipped in -short")
	}
	for seed := int64(900); seed < 912; seed++ {
		src := progen.Source(progen.Params{
			Seed: seed, Calls: true, Floats: true, MaxDepth: 2, MaxStmts: 4,
		})
		expanded, err := msc.Compile(src, msc.Config{Compress: true, CSI: true, ExpandCalls: true})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		shared, err := msc.Compile(src, msc.Config{Compress: true, CSI: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rc := msc.RunConfig{N: 6}
		re, err := expanded.RunSIMD(rc)
		if err != nil {
			t.Fatalf("seed %d: expanded simd: %v\n%s", seed, err, src)
		}
		ref, err := expanded.RunMIMD(rc)
		if err != nil {
			t.Fatalf("seed %d: expanded mimd: %v", seed, err)
		}
		rs, err := shared.RunSIMD(rc)
		if err != nil {
			t.Fatalf("seed %d: shared simd: %v", seed, err)
		}
		for pe := 0; pe < 6; pe++ {
			// Expanded SIMD matches its own MIMD reference slot for slot.
			for slot := range ref.Mem[pe] {
				if ref.Mem[pe][slot] != re.Mem[pe][slot] {
					t.Fatalf("seed %d PE %d slot %d: expanded engines disagree\n%s", seed, pe, slot, src)
				}
			}
			// And the two pipelines agree on every source-level variable
			// (slot layouts differ, so compare by name).
			for name, eslot := range expanded.Graph.VarSlot {
				sslot := shared.Graph.VarSlot[name]
				if re.Mem[pe][eslot] != rs.Mem[pe][sslot] {
					t.Fatalf("seed %d PE %d var %s: expanded %d != shared %d\n%s",
						seed, pe, name, re.Mem[pe][eslot], rs.Mem[pe][sslot], src)
				}
			}
		}
	}
}

// TestParallelConversionScale pushes large generated programs through
// the whole public pipeline with the conversion worker pool forced on
// and off: the automata must be byte-identical (state numbering,
// transition order, renderings) and the compiled programs must execute
// identically. This is the end-to-end face of the msc-internal
// determinism property tests.
func TestParallelConversionScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep skipped in -short")
	}
	for seed := int64(700); seed < 706; seed++ {
		src := progen.Source(progen.Params{
			Seed: seed, Barriers: true, Floats: true, Calls: true,
			MaxDepth: 4, MaxStmts: 7, Vars: 6, LoopTrip: 4,
		})
		name := fmt.Sprintf("seed%d", seed)
		seqConf := msc.DefaultConfig()
		seqConf.ConvertWorkers = 1
		parConf := msc.DefaultConfig()
		parConf.ConvertWorkers = 4
		seq, err := msc.Compile(src, seqConf)
		if err != nil {
			t.Fatalf("%s: sequential: %v\n%s", name, err, src)
		}
		par, err := msc.Compile(src, parConf)
		if err != nil {
			t.Fatalf("%s: parallel: %v\n%s", name, err, src)
		}
		if seq.Automaton.String() != par.Automaton.String() {
			t.Fatalf("%s: automata diverge\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
				name, seq.Automaton, par.Automaton)
		}
		if seq.Automaton.Dot(name) != par.Automaton.Dot(name) {
			t.Fatalf("%s: Dot renderings diverge", name)
		}
		rc := msc.RunConfig{N: 32}
		rs, err := seq.RunSIMD(rc)
		if err != nil {
			t.Fatalf("%s: seq simd: %v", name, err)
		}
		rp, err := par.RunSIMD(rc)
		if err != nil {
			t.Fatalf("%s: par simd: %v", name, err)
		}
		if rs.Time != rp.Time {
			t.Fatalf("%s: cycle counts diverge: %d != %d", name, rs.Time, rp.Time)
		}
		for pe := 0; pe < 32; pe++ {
			for slot := range rs.Mem[pe] {
				if rs.Mem[pe][slot] != rp.Mem[pe][slot] {
					t.Fatalf("%s: PE %d slot %d: %d != %d", name, pe, slot, rs.Mem[pe][slot], rp.Mem[pe][slot])
				}
			}
		}
	}
}
