package msc_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"msc"
	"msc/internal/obs"
)

// The golden trace corpus was captured from the pre-sink Fprintf
// implementation; the sink-based trace layer must reproduce it
// byte-for-byte. Regenerate (only on a deliberate format change) by
// deleting the .golden files and running with -update.
var update = os.Getenv("UPDATE_TRACE_GOLDEN") != ""

var goldenCases = []struct {
	name   string
	source string
	conf   msc.Config
	n      int
	active int
}{
	{
		name: "base",
		source: `
poly int x;
void main()
{
    x = iproc % 3;
    if (x) {
        do { x = x - 1; } while (x);
    } else {
        do { x = x + 2; } while (x < 4);
    }
    x = x + 100;
    return;
}
`,
		conf: msc.Config{},
		n:    6,
	},
	{
		name: "default",
		source: `
poly int x;
void main()
{
    x = iproc % 3;
    if (x) {
        do { x = x - 1; } while (x);
    } else {
        do { x = x + 2; } while (x < 4);
    }
    x = x + 100;
    return;
}
`,
		conf: msc.DefaultConfig(),
		n:    6,
	},
	{
		name: "barrier",
		source: `
poly int val, sum;
void main()
{
    poly int j;
    val = iproc + 1;
    wait;
    sum = 0;
    for (j = 0; j < nproc; j = j + 1) {
        sum = sum + val[[j]];
    }
    return;
}
`,
		conf: msc.DefaultConfig(),
		n:    4,
	},
	{
		name: "farm",
		source: `
poly int result;
void worker()
{
    poly int k;
    result = 0;
    for (k = 0; k < iproc + 2; k = k + 1) {
        result = result + k * k;
    }
    halt;
}
void main()
{
    spawn worker();
    spawn worker();
    return;
}
`,
		conf:   msc.Config{Compress: true},
		n:      6,
		active: 1,
	},
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (set UPDATE_TRACE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output\n got:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestTraceTextGolden locks the human-readable trace and timeline
// formats: the obs.TextSink-based implementation must match the output
// of the original Fprintf writers exactly.
func TestTraceTextGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := msc.Compile(tc.source, tc.conf)
			if err != nil {
				t.Fatal(err)
			}
			var trace, timeline bytes.Buffer
			_, err = c.RunSIMD(msc.RunConfig{
				N: tc.n, InitialActive: tc.active,
				Trace: &trace, Timeline: &timeline,
			})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, filepath.Join("testdata", "trace", "trace_"+tc.name+".golden"), trace.Bytes())
			checkGolden(t, filepath.Join("testdata", "trace", "timeline_"+tc.name+".golden"), timeline.Bytes())
		})
	}
}

// TestTraceSinksAgree runs the same execution once with text writers
// and once with a JSONL sink, and checks the streams describe the same
// events: same count, same kinds, same meta-state sequence.
func TestTraceSinksAgree(t *testing.T) {
	tc := goldenCases[0]
	c, err := msc.Compile(tc.source, tc.conf)
	if err != nil {
		t.Fatal(err)
	}

	var text bytes.Buffer
	if _, err := c.RunSIMD(msc.RunConfig{N: tc.n, Trace: &text}); err != nil {
		t.Fatal(err)
	}
	var jsonl bytes.Buffer
	if _, err := c.RunSIMD(msc.RunConfig{N: tc.n, Sink: &obs.JSONLSink{W: &jsonl}}); err != nil {
		t.Fatal(err)
	}

	textLines := strings.Split(strings.TrimRight(text.String(), "\n"), "\n")
	var metaEvents []map[string]any
	for _, line := range strings.Split(strings.TrimRight(jsonl.String(), "\n"), "\n") {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if e["kind"] == "meta" || e["kind"] == "exit" {
			metaEvents = append(metaEvents, e)
		}
	}
	if len(metaEvents) != len(textLines) {
		t.Fatalf("JSONL has %d meta/exit events, text has %d lines", len(metaEvents), len(textLines))
	}
	for i, e := range metaEvents {
		ms := int(e["meta"].(float64))
		if !strings.Contains(textLines[i], "ms"+itoa(ms)) {
			t.Errorf("event %d: JSONL meta %d not in text line %q", i, ms, textLines[i])
		}
	}
	last := metaEvents[len(metaEvents)-1]
	if last["kind"] != "exit" {
		t.Errorf("final event kind = %v, want exit", last["kind"])
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
