package msc_test

import (
	"fmt"
	"log"

	"msc"
)

// ExampleCompile converts the paper's running example (Listing 1 /
// Listing 4) and shows the automaton sizes of the base and compressed
// conversions (Figures 2 and 5).
func ExampleCompile() {
	source := `
void main()
{
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    return;
}
`
	base, err := msc.Compile(source, msc.Config{})
	if err != nil {
		log.Fatal(err)
	}
	compressed, err := msc.Compile(source, msc.Config{Compress: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIMD states: %d\n", base.MIMDStates())
	fmt.Printf("base meta states: %d\n", base.MetaStates())
	fmt.Printf("compressed meta states: %d\n", compressed.MetaStates())
	// Output:
	// MIMD states: 4
	// base meta states: 8
	// compressed meta states: 2
}

// ExampleCompiled_RunSIMD runs divergent control flow on the SIMD
// machine: each processor loops a different number of times, yet a
// single instruction stream drives them all.
func ExampleCompiled_RunSIMD() {
	source := `
poly int sum;
void main()
{
    poly int i;
    sum = 0;
    for (i = 0; i <= iproc; i = i + 1) {
        sum = sum + i;
    }
    return;
}
`
	c, err := msc.Compile(source, msc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.RunSIMD(msc.RunConfig{N: 6})
	if err != nil {
		log.Fatal(err)
	}
	slot, _ := c.Slot("sum")
	for pe := 0; pe < 6; pe++ {
		fmt.Printf("PE %d: sum = %d\n", pe, res.Mem[pe][slot])
	}
	// Output:
	// PE 0: sum = 0
	// PE 1: sum = 1
	// PE 2: sum = 3
	// PE 3: sum = 6
	// PE 4: sum = 10
	// PE 5: sum = 15
}
