// stencil runs a barrier-synchronized nearest-neighbor relaxation over
// a ring of processors: the archetypal SPMD kernel combining private
// computation, wait barriers (§2.6), and parallel subscripting through
// the router (§4.1). The barriers cost nothing at run time in the
// converted code — synchronization is implicit in the automaton (§5).
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"msc"
)

const source = `
poly int cell, left, right;
void main()
{
    poly int round;
    cell = (iproc * iproc * 37 + 11) % 100;
    for (round = 0; round < 6; round = round + 1) {
        wait;
        left = cell[[iproc - 1]];
        right = cell[[iproc + 1]];
        wait;
        cell = (left + 2 * cell + right) / 4;
    }
    return;
}
`

func main() {
	const n = 16
	c, err := msc.Compile(source, msc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d MIMD states -> %d meta states (barrier states: %d)\n\n",
		c.MIMDStates(), c.MetaStates(), c.Automaton.Barriers.Len())

	sd, err := c.RunSIMD(msc.RunConfig{N: n})
	if err != nil {
		log.Fatal(err)
	}
	ref, err := c.RunMIMD(msc.RunConfig{N: n})
	if err != nil {
		log.Fatal(err)
	}

	slot, _ := c.Slot("cell")
	fmt.Println("smoothed ring (SIMD == MIMD reference):")
	for pe := 0; pe < n; pe++ {
		if sd.Mem[pe][slot] != ref.Mem[pe][slot] {
			log.Fatalf("PE %d: simd %d != mimd %d", pe, sd.Mem[pe][slot], ref.Mem[pe][slot])
		}
		fmt.Printf(" %3d", sd.Mem[pe][slot])
	}
	fmt.Println()
	fmt.Printf("\nMIMD reference paid %d runtime barrier episodes; ", ref.Barriers)
	fmt.Printf("the SIMD program paid zero explicit synchronization operations\n")
	fmt.Printf("(%d cycles total: %d body + %d dispatch)\n", sd.Time, sd.BodyCycles, sd.DispatchCycles)
}
