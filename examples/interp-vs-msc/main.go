// interp-vs-msc reproduces the paper's central comparison on a live
// workload: the same MIMD program executed (a) by the §1.1 baseline — a
// MIMD interpreter running on SIMD hardware, paying fetch/decode cycles
// and a per-PE program copy — and (b) as meta-state converted SIMD code
// with neither cost; (c) the ideal MIMD reference calibrates both.
//
//	go run ./examples/interp-vs-msc
package main

import (
	"fmt"
	"log"

	"msc"
)

const source = `
poly int n, steps;
void main()
{
    n = iproc * 7 + 27;
    steps = 0;
    while (n != 1) {
        if (n % 2) { n = 3 * n + 1; } else { n = n / 2; }
        steps = steps + 1;
    }
    return;
}
`

func main() {
	const n = 32
	c, err := msc.Compile(source, msc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	rc := msc.RunConfig{N: n}

	ideal, err := c.RunMIMD(rc)
	if err != nil {
		log.Fatal(err)
	}
	in, err := c.RunInterp(rc)
	if err != nil {
		log.Fatal(err)
	}
	sd, err := c.RunSIMD(rc)
	if err != nil {
		log.Fatal(err)
	}

	// All three engines must agree bit for bit.
	slot, _ := c.Slot("steps")
	for pe := 0; pe < n; pe++ {
		if ideal.Mem[pe][slot] != in.Mem[pe][slot] || ideal.Mem[pe][slot] != sd.Mem[pe][slot] {
			log.Fatalf("engine disagreement at PE %d", pe)
		}
	}

	fmt.Printf("workload: collatz on %d PEs (results verified identical on all engines)\n\n", n)
	fmt.Printf("%-28s %12s %16s\n", "engine", "cycles", "program words/PE")
	fmt.Printf("%-28s %12d %16s\n", "ideal MIMD (reference)", ideal.Time, "n/a")
	fmt.Printf("%-28s %12d %16d\n", "MIMD interpreter on SIMD", in.Time, in.ProgWordsPerPE)
	fmt.Printf("%-28s %12d %16d\n", "meta-state converted SIMD", sd.Time, 0)
	fmt.Printf("\nmeta-state code runs %.2fx faster than interpretation", float64(in.Time)/float64(sd.Time))
	fmt.Printf(" and stores no per-PE program\n")
	fmt.Printf("(interpreter overhead: %d of %d cycles = %.0f%%; %.2f instruction types serialized per round)\n",
		in.Overhead, in.Time, 100*float64(in.Overhead)/float64(in.Time),
		float64(in.TypesPerRound)/float64(in.Rounds))
}
