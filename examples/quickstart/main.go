// Quickstart: compile a tiny SPMD program with meta-state conversion
// and run it on the SIMD machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"msc"
)

// Every processor computes a different number of loop iterations — the
// control parallelism that seems to require MIMD hardware. Meta-state
// conversion turns it into a single-instruction-stream SIMD program.
const source = `
poly int x, count;
void main()
{
    x = iproc + 1;
    count = 0;
    while (x != 1) {
        if (x % 2) { x = 3 * x + 1; } else { x = x / 2; }
        count = count + 1;
    }
    return;
}
`

func main() {
	// Compile with the recommended configuration: compressed automaton
	// (§2.5), common subexpression induction (§3.1), hashed multiway
	// branches (§3.2).
	c, err := msc.Compile(source, msc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MIMD states: %d   meta states: %d\n\n", c.MIMDStates(), c.MetaStates())
	fmt.Println("meta-state automaton:")
	fmt.Println(c.Automaton.String())

	// Run on a 10-wide SIMD machine. PEs never fetch instructions and
	// hold no program copy; only the control unit walks the automaton.
	const n = 10
	res, err := c.RunSIMD(msc.RunConfig{N: n})
	if err != nil {
		log.Fatal(err)
	}
	slot, _ := c.Slot("count")
	fmt.Printf("Collatz steps for 1..%d:", n)
	for pe := 0; pe < n; pe++ {
		fmt.Printf(" %d", res.Mem[pe][slot])
	}
	fmt.Printf("\n%d cycles over %d meta-state executions, %.0f%% PE utilization\n",
		res.Time, res.MetaExecs, res.Utilization(n)*100)
}
