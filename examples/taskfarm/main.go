// taskfarm demonstrates restricted dynamic process creation (§3.2.5):
// a coordinator spawns workers onto free-pool processors; each worker
// computes, publishes its result, and halts — returning its PE to the
// pool for reuse by later spawns.
//
//	go run ./examples/taskfarm
package main

import (
	"fmt"
	"log"

	"msc"
)

const source = `
poly int result, generation;
void worker()
{
    poly int k, acc;
    acc = 0;
    for (k = 1; k <= iproc + 1; k = k + 1) {
        acc = acc + k * k;
    }
    result = acc;
    generation = generation + 1;
    halt;
}
void main()
{
    poly int wave;
    for (wave = 0; wave < 2; wave = wave + 1) {
        spawn worker();
        spawn worker();
        spawn worker();
        wait;
    }
    return;
}
`

func main() {
	const n = 8
	c, err := msc.Compile(source, msc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// One PE runs main; the other seven wait in the free pool.
	res, err := c.RunSIMD(msc.RunConfig{N: n, InitialActive: 1})
	if err != nil {
		log.Fatal(err)
	}
	rSlot, _ := c.Slot("result")
	gSlot, _ := c.Slot("generation")

	fmt.Println("PE  role          result  spawned-times")
	for pe := 0; pe < n; pe++ {
		role := "free pool"
		if pe == 0 {
			role = "coordinator"
		} else if res.Mem[pe][gSlot] > 0 {
			role = "worker"
		}
		fmt.Printf("%2d  %-12s %7d %14d\n", pe, role, res.Mem[pe][rSlot], res.Mem[pe][gSlot])
	}
	fmt.Printf("\ntwo waves of three spawns on a %d-PE machine: halted workers return to the pool and are reused\n", n)
	fmt.Printf("(%d cycles, %d meta-state executions)\n", res.Time, res.MetaExecs)
}
