// artifacts demonstrates the inspection API: it compiles the paper's
// Listing 4 under both conversion flavors and writes every compilation
// artifact — state graph, automata, MPL-like SIMD code, Graphviz
// renderings — into ./msc-artifacts for study (render the .dot files
// with `dot -Tpng` to get the paper's Figures 1, 2 and 5).
//
//	go run ./examples/artifacts
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"msc"
)

const listing4 = `
void main()
{
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    return;
}
`

func main() {
	dir := "msc-artifacts"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name, content string) {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %-28s %5d bytes\n", path, len(content))
	}

	base, err := msc.Compile(listing4, msc.Config{CSI: true, Hash: true})
	if err != nil {
		log.Fatal(err)
	}
	compressed, err := msc.Compile(listing4, msc.Config{Compress: true, CSI: true})
	if err != nil {
		log.Fatal(err)
	}

	write("listing4.mc", listing4)
	write("figure1-stategraph.txt", base.Graph.String())
	write("figure1-stategraph.dot", base.DotStateGraph("figure1"))
	write("figure2-automaton.txt", base.Automaton.String())
	write("figure2-automaton.dot", base.DotAutomaton("figure2"))
	write("figure5-compressed.txt", compressed.Automaton.String())
	write("figure5-compressed.dot", compressed.DotAutomaton("figure5"))
	write("listing5.mpl", base.MPL())

	fmt.Printf("\nbase: %d MIMD states -> %d meta states; compressed: %d meta states\n",
		base.MIMDStates(), base.MetaStates(), compressed.MetaStates())
}
