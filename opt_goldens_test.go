package msc_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"msc"
)

// The opt goldens lock the optimizer's structural effect on the
// committed corpus: for every program, the MIMD state count and
// meta-state count of the baseline and the Opt:2 build. Any pass
// change that alters what the optimizer deletes — or worse, starts
// growing an automaton — shows up as a byte diff here before it shows
// up as a benchmark regression. Regenerate deliberately with
// UPDATE_OPT_GOLDENS=1 and review the diff like code.
var updateOptGoldens = os.Getenv("UPDATE_OPT_GOLDENS") != ""

const optGoldensPath = "testdata/opt/goldens.txt"

func TestOptGoldens(t *testing.T) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# file  base_states  opt_states  base_meta  opt_meta\n")
	baseConf, optConf := optConfigs()
	for _, file := range corpusFiles(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.ToSlash(file)
		cb, berr := msc.Compile(string(src), baseConf)
		co, oerr := msc.Compile(string(src), optConf)
		if berr != nil || oerr != nil {
			// Budget-limited programs are locked as such: silently
			// starting (or stopping) to compile is also a change.
			fmt.Fprintf(&buf, "%s  base_err=%v opt_err=%v\n", name, berr != nil, oerr != nil)
			continue
		}
		fmt.Fprintf(&buf, "%s  %d  %d  %d  %d\n",
			name, cb.MIMDStates(), co.MIMDStates(), cb.MetaStates(), co.MetaStates())
	}
	if updateOptGoldens {
		if err := os.MkdirAll(filepath.Dir(optGoldensPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(optGoldensPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", optGoldensPath)
		return
	}
	want, err := os.ReadFile(optGoldensPath)
	if err != nil {
		t.Fatalf("reading goldens (regenerate with UPDATE_OPT_GOLDENS=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("opt goldens changed; if intended, regenerate with UPDATE_OPT_GOLDENS=1 and review\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
