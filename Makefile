# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test cover bench fuzz experiments examples clean

all: build test

build:
	go build ./...

test:
	go test ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

fuzz:
	go test -fuzz=FuzzParse -fuzztime=60s ./internal/mimdc/

# Regenerate EXPERIMENTS.md (all paper artifacts + ablations).
experiments:
	go run ./cmd/mscbench -o EXPERIMENTS.md -header

examples:
	go run ./examples/quickstart
	go run ./examples/interp-vs-msc
	go run ./examples/stencil
	go run ./examples/taskfarm
	go run ./examples/artifacts

clean:
	rm -rf msc-artifacts
