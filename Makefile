# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test check stress stress-mscd cache-determinism cover bench fuzz experiments examples vet-examples opt-goldens clean

all: build test check

build:
	go build ./...

test:
	go test ./...

# Static hygiene + race detector: the gate CI and pre-commit should run.
# The -race pass includes TestVectorizedCorpusWide (width 65536 at every
# worker count), so the chunk pool's claim/commit discipline is
# race-checked at production scale on every gate.
check: vet-examples opt-goldens cache-determinism stress
	go vet ./...
	go build ./cmd/mscd ./cmd/mscload
	go test ./cmd/...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	go test -race ./...

# Robustness stress gate: the deterministic fault-injection matrix
# (compile phases and the artifact cache's filesystem hooks), the
# cancellation/budget/step-limit/leak tests, and the cache recovery and
# single-flight suites, under the race detector, then the live-daemon
# load stage. See docs/ROBUSTNESS.md, docs/CACHE.md and docs/SERVICE.md.
stress: stress-mscd
	go test -race -timeout 5m -run 'Fault|Cancel|Budget|StepLimit|Robust|Degrade|Leak|Concurrent|Service|Cache' ./...

# Artifact-cache determinism gate: compiling the corpus uncached, cold,
# warm, and through a reopened store must produce byte-identical
# artifact fingerprints (docs/CACHE.md).
cache-determinism:
	go test -run 'TestCacheDeterminismGate' .

# Live-service load stage: build both binaries, start mscd (with the
# artifact cache enabled) on an ephemeral port, hammer it with a
# fixed-seed mscload run (zero 5xx, taxonomy expectations enforced by
# mscload's exit code, 30% of requests drawn from the dup pool with the
# server-side cache hit ratio asserted), then SIGTERM and require a
# clean drain (mscd exits 0 only when the drain and the goroutine-leak
# self-check both pass).
stress-mscd:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	go build -o "$$tmp/mscd" ./cmd/mscd; \
	go build -o "$$tmp/mscload" ./cmd/mscload; \
	"$$tmp/mscd" -addr 127.0.0.1:0 -addr-file "$$tmp/addr" -cache-dir "$$tmp/cache" > "$$tmp/mscd.log" 2>&1 & mscd_pid=$$!; \
	for i in $$(seq 1 100); do [ -f "$$tmp/addr" ] && break; sleep 0.1; done; \
	[ -f "$$tmp/addr" ] || { echo "mscd never wrote its address"; cat "$$tmp/mscd.log"; exit 1; }; \
	"$$tmp/mscload" -addr-file "$$tmp/addr" -n 2000 -c 64 -seed 1 -dup 30 -min-hit-ratio 0.25 || \
		{ echo "mscload failed"; cat "$$tmp/mscd.log"; kill $$mscd_pid; exit 1; }; \
	kill -TERM $$mscd_pid; \
	wait $$mscd_pid || { echo "mscd drain was not clean"; cat "$$tmp/mscd.log"; exit 1; }; \
	echo "stress-mscd: ok"

# Run `msc vet` over every MIMDC program in the repo except the seeded
# failure corpus (testdata/vet/bad/). Fails on error-severity findings;
# warnings and infos are allowed.
vet-examples:
	@files=$$(find examples testdata -name '*.mc' -not -path 'testdata/vet/bad/*'); \
	if [ -z "$$files" ]; then echo "no .mc programs found"; exit 1; fi; \
	go run ./cmd/msc vet $$files

# Optimizer structural gate: the per-corpus base-vs-Opt:2 state and
# meta-state table must match testdata/opt/goldens.txt byte for byte,
# and the Opt:2 build must be observationally identical to Opt:0 on
# the corpus, the workload suite, and the fixed progen fleet.
# Regenerate the table deliberately with UPDATE_OPT_GOLDENS=1.
opt-goldens:
	go test -run 'TestOptGoldens|TestOptDifferential' .

cover:
	go test -cover ./...

# Full benchmark run: the Go benchmark suite (wall/alloc numbers), a
# fresh machine-readable report including the width-scaling sweep
# (16 → 1M PEs), and regression gates against the pinned baselines:
# the seed at the default 10% tolerance, and the post-telemetry
# baseline (BENCH_pr4.json, pre-telemetry) at 2% on the deterministic
# metrics — the disabled telemetry path must not change a single state
# or cycle count. BENCH_pr8.json (post-optimizer) adds the
# opt_meta_states column; BENCH_pr9.json (post-vectorization) adds the
# sweep rows, hard-gating the deterministic pe_steps and
# cycles_per_pe_step_milli columns while the wall-time speedups warn
# only (benchdiff -wall-tol gates walls on quiet machines);
# BENCH_pr10.json (post-cache) adds the compile_cold_ns /
# compile_cached_ns / cache_speedup columns and the suite
# cache_hit_rate, all warn-only wall metrics. See docs/PERFORMANCE.md.
bench:
	go test -bench=. -benchmem ./...
	go run ./cmd/mscbench -json BENCH_current.json -widths=16,1024,65536,1048576
	go run ./cmd/benchdiff BENCH_seed.json BENCH_current.json
	go run ./cmd/benchdiff -tol 2 BENCH_pr4.json BENCH_current.json
	go run ./cmd/benchdiff BENCH_pr8.json BENCH_current.json
	go run ./cmd/benchdiff BENCH_pr9.json BENCH_current.json
	go run ./cmd/benchdiff BENCH_pr10.json BENCH_current.json

fuzz:
	go test -fuzz=FuzzParse -fuzztime=60s ./internal/mimdc/
	go test -fuzz=FuzzPromEscape -fuzztime=30s ./internal/telemetry/
	go test -fuzz=FuzzOptDifferential -fuzztime=60s .

# Regenerate EXPERIMENTS.md (all paper artifacts + ablations).
experiments:
	go run ./cmd/mscbench -o EXPERIMENTS.md -header

examples:
	go run ./examples/quickstart
	go run ./examples/interp-vs-msc
	go run ./examples/stencil
	go run ./examples/taskfarm
	go run ./examples/artifacts

clean:
	rm -rf msc-artifacts
