# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test check cover bench fuzz experiments examples clean

all: build test check

build:
	go build ./...

test:
	go test ./...

# Static hygiene + race detector: the gate CI and pre-commit should run.
check:
	go vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

fuzz:
	go test -fuzz=FuzzParse -fuzztime=60s ./internal/mimdc/

# Regenerate EXPERIMENTS.md (all paper artifacts + ablations).
experiments:
	go run ./cmd/mscbench -o EXPERIMENTS.md -header

examples:
	go run ./examples/quickstart
	go run ./examples/interp-vs-msc
	go run ./examples/stencil
	go run ./examples/taskfarm
	go run ./examples/artifacts

clean:
	rm -rf msc-artifacts
