# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test check stress cover bench fuzz experiments examples vet-examples clean

all: build test check

build:
	go build ./...

test:
	go test ./...

# Static hygiene + race detector: the gate CI and pre-commit should run.
check: vet-examples stress
	go vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	go test -race ./...

# Robustness stress gate: the deterministic fault-injection matrix plus
# the cancellation/budget/step-limit/leak tests, under the race
# detector. See docs/ROBUSTNESS.md.
stress:
	go test -race -timeout 5m -run 'Fault|Cancel|Budget|StepLimit|Robust|Degrade|Leak' ./...

# Run `msc vet` over every MIMDC program in the repo except the seeded
# failure corpus (testdata/vet/bad/). Fails on error-severity findings;
# warnings and infos are allowed.
vet-examples:
	@files=$$(find examples testdata -name '*.mc' -not -path 'testdata/vet/bad/*'); \
	if [ -z "$$files" ]; then echo "no .mc programs found"; exit 1; fi; \
	go run ./cmd/msc vet $$files

cover:
	go test -cover ./...

# Full benchmark run: the Go benchmark suite (wall/alloc numbers), a
# fresh machine-readable report, and regression gates against the
# pinned baselines: the seed at the default 10% tolerance, and the
# post-telemetry baseline (BENCH_pr4.json, pre-telemetry) at 2% on the
# deterministic metrics — the disabled telemetry path must not change
# a single state or cycle count. Wall times warn only (benchdiff
# -wall-tol gates them on quiet machines). See docs/PERFORMANCE.md.
bench:
	go test -bench=. -benchmem ./...
	go run ./cmd/mscbench -json BENCH_current.json
	go run ./cmd/benchdiff BENCH_seed.json BENCH_current.json
	go run ./cmd/benchdiff -tol 2 BENCH_pr4.json BENCH_current.json

fuzz:
	go test -fuzz=FuzzParse -fuzztime=60s ./internal/mimdc/
	go test -fuzz=FuzzPromEscape -fuzztime=30s ./internal/telemetry/

# Regenerate EXPERIMENTS.md (all paper artifacts + ablations).
experiments:
	go run ./cmd/mscbench -o EXPERIMENTS.md -header

examples:
	go run ./examples/quickstart
	go run ./examples/interp-vs-msc
	go run ./examples/stencil
	go run ./examples/taskfarm
	go run ./examples/artifacts

clean:
	rm -rf msc-artifacts
