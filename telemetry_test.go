package msc_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"msc"
	"msc/internal/harness"
	"msc/internal/obs"
	"msc/internal/telemetry"
)

// TestCompileTraceSpans compiles and runs with a tracer attached and
// checks the acceptance shape of the span tree: a compile root, one
// phase.* child per pipeline phase, convert.generation spans under
// phase.convert, and a run.simd span chained to the compile span.
func TestCompileTraceSpans(t *testing.T) {
	tr := telemetry.NewTracer()
	c, err := msc.Compile(harness.Divergent, msc.Config{
		Compress: true, CSI: true, Hash: true, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[telemetry.SpanID]*telemetry.Span{}
	for _, s := range tr.Spans() {
		byID[s.ID] = s
	}
	var compile *telemetry.Span
	for _, s := range tr.Spans() {
		if s.Name == "compile" {
			compile = s
		}
	}
	if compile == nil {
		t.Fatal("no compile span recorded")
	}

	phases := map[string]bool{}
	var convertSpan *telemetry.Span
	for _, s := range tr.Spans() {
		if strings.HasPrefix(s.Name, "phase.") {
			if s.Parent != compile.ID {
				t.Errorf("%s parented to %d, want compile span %d", s.Name, s.Parent, compile.ID)
			}
			phases[strings.TrimPrefix(s.Name, "phase.")] = true
			if s.Name == "phase.convert" {
				convertSpan = s
			}
		}
	}
	for _, want := range []string{obs.PhaseParse, obs.PhaseAnalyze, obs.PhaseLower,
		obs.PhaseSimplify, obs.PhaseConvert, obs.PhaseCheck, obs.PhaseVet, obs.PhaseCodegen} {
		if !phases[want] {
			t.Errorf("missing phase span %q (got %v)", want, phases)
		}
	}

	gens := 0
	for _, s := range tr.Spans() {
		if s.Name == "convert.generation" {
			gens++
			if convertSpan == nil || s.Parent != convertSpan.ID {
				t.Errorf("generation span parent = %d, want phase.convert", s.Parent)
			}
		}
	}
	if gens == 0 {
		t.Error("no convert.generation spans")
	}

	// Run chained under the compile span.
	if _, err := c.RunSIMD(msc.RunConfig{N: 4, Tracer: tr, TraceParent: compile.ID}); err != nil {
		t.Fatal(err)
	}
	var run *telemetry.Span
	for _, s := range tr.Spans() {
		if s.Name == "run.simd" {
			run = s
		}
	}
	if run == nil || run.Parent != compile.ID {
		t.Fatalf("run.simd span missing or not chained to compile: %+v", run)
	}

	// Both exports must produce loadable output for this real trace.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatal("chrome trace missing traceEvents array")
	}
}

// TestConvertWorkerSpans forces the parallel conversion path and checks
// worker spans land under their generation with distinct lanes.
func TestConvertWorkerSpans(t *testing.T) {
	tr := telemetry.NewTracer()
	_, err := msc.Compile(harness.Primes, msc.Config{
		Compress: true, ConvertWorkers: 4, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[telemetry.SpanID]*telemetry.Span{}
	for _, s := range tr.Spans() {
		byID[s.ID] = s
	}
	workers := 0
	for _, s := range tr.Spans() {
		if s.Name != "convert.worker" {
			continue
		}
		workers++
		if p := byID[s.Parent]; p == nil || p.Name != "convert.generation" {
			t.Errorf("worker span parent = %+v, want convert.generation", p)
		}
		if s.Lane < 100 {
			t.Errorf("worker span lane = %d, want >= 100", s.Lane)
		}
	}
	// The parallel path only engages on frontiers >= the internal
	// threshold; Primes generates hundreds of states, so at least one
	// generation must have fanned out.
	if workers == 0 {
		t.Skip("no generation reached the parallel threshold on this machine")
	}
}

// TestProfilerAttribution runs every engine under the exact profiler
// (period 1) and checks the acceptance bar: at least 95% of SIMD engine
// cycles attribute to source blocks, and the profiler's totals agree
// with the engine's own cycle accounting.
func TestProfilerAttribution(t *testing.T) {
	c, err := msc.Compile(harness.Divergent, msc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	prof := telemetry.NewProfiler(1)
	res, err := c.RunSIMD(msc.RunConfig{N: 8, Profiler: prof})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Total() != res.Time {
		t.Fatalf("profiler total %d != engine cycles %d", prof.Total(), res.Time)
	}
	if frac := prof.AttributedFraction(); frac < 0.95 {
		t.Fatalf("SIMD attributed fraction = %.3f, want >= 0.95", frac)
	}
	var buf bytes.Buffer
	if err := prof.WriteFolded(&buf, "simd"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "simd;ms") {
		t.Fatalf("folded output has no meta-state frames:\n%s", buf.String())
	}

	mprof := telemetry.NewProfiler(1)
	mres, err := c.RunMIMD(msc.RunConfig{N: 8, Profiler: mprof})
	if err != nil {
		t.Fatal(err)
	}
	if mprof.Total() != mres.Useful {
		t.Fatalf("mimd profiler total %d != useful cycles %d", mprof.Total(), mres.Useful)
	}
	if frac := mprof.AttributedFraction(); frac != 1.0 {
		t.Fatalf("mimd attributed fraction = %.3f, want 1.0 (every cycle is a block)", frac)
	}

	iprof := telemetry.NewProfiler(1)
	ires, err := c.RunInterp(msc.RunConfig{N: 8, Profiler: iprof})
	if err != nil {
		t.Fatal(err)
	}
	if iprof.Total() != ires.Time {
		t.Fatalf("interp profiler total %d != engine cycles %d", iprof.Total(), ires.Time)
	}
}

// TestCompileHistograms checks the registry-side telemetry: compiling
// lands latency and meta-state observations, running lands engine
// cycles, and the whole registry serves as valid Prometheus text.
func TestCompileHistograms(t *testing.T) {
	rec := obs.NewRecorder()
	c, err := msc.Compile(harness.Divergent, msc.Config{Compress: true, Metrics: rec})
	if err != nil {
		t.Fatal(err)
	}
	reg := rec.Registry()
	if _, err := c.RunSIMD(msc.RunConfig{N: 4, Metrics: reg}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"compile_latency_ns_bucket",
		"compile_meta_states_count 1",
		`engine_cycles_count{engine="simd"} 1`,
		"convert_meta_states ",
		"phase_convert ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if err := telemetry.ValidPromLine(line); err != nil {
			t.Fatalf("invalid exposition line: %v", err)
		}
	}
}
