package msc_test

import (
	"errors"
	"os"
	"strings"
	"testing"

	"msc"
	"msc/internal/progen"
)

// FuzzPipelineEquivalence drives the whole pipeline from fuzzed
// generator seeds: every race-free random program must compile, convert,
// and produce bit-identical memory on the MIMD reference, the
// interpreter baseline, and the meta-state SIMD machine (with strict
// occupancy checking via the compressed default; base mode is also
// attempted when it fits the state budget).
func FuzzPipelineEquivalence(f *testing.F) {
	f.Add(int64(1), true, true, true)
	f.Add(int64(2), false, false, false)
	f.Add(int64(3), true, false, true)
	f.Add(int64(99), false, true, false)
	// Seeds biased toward the static analyzer's interesting shapes:
	// barrier-heavy control flow, call expansion, and plain straight
	// line code (constant propagation folds the most there).
	f.Add(int64(7), true, false, false)
	f.Add(int64(11), false, false, true)
	f.Add(int64(42), true, true, false)
	f.Add(int64(1234), true, false, true)
	f.Fuzz(func(t *testing.T, seed int64, barriers, floats, calls bool) {
		src := progen.Source(progen.Params{
			Seed: seed, Barriers: barriers, Floats: floats, Calls: calls,
			MaxDepth: 2, MaxStmts: 4,
		})
		const n = 4
		configs := []msc.Config{
			{Compress: true, CSI: true, Hash: true},
			{MaxStates: 3000, Hash: true},
		}
		var golden [][]int64
		for _, conf := range configs {
			c, err := msc.Compile(src, conf)
			if err != nil {
				if strings.Contains(err.Error(), "exceeded") {
					continue // §1.2 explosion guard; not a bug
				}
				t.Fatalf("compile: %v\n%s", err, src)
			}
			// Compile ran the analyzer (it must not panic on any
			// generated program); its findings must be well-formed.
			for _, d := range c.Diagnostics {
				if d.Check == "" || d.Msg == "" {
					t.Fatalf("malformed diagnostic %+v\n%s", d, src)
				}
			}
			rc := msc.RunConfig{N: n}
			ref, err := c.RunMIMD(rc)
			if err != nil {
				t.Fatalf("mimd: %v\n%s", err, src)
			}
			in, err := c.RunInterp(rc)
			if err != nil {
				t.Fatalf("interp: %v\n%s", err, src)
			}
			sd, err := c.RunSIMD(rc)
			if err != nil {
				t.Fatalf("simd: %v\n%s", err, src)
			}
			for pe := 0; pe < n; pe++ {
				for slot := range ref.Mem[pe] {
					if ref.Mem[pe][slot] != in.Mem[pe][slot] || ref.Mem[pe][slot] != sd.Mem[pe][slot] {
						t.Fatalf("engines disagree at PE %d slot %d\n%s", pe, slot, src)
					}
				}
			}
			// All configurations agree on source-level variables too.
			if golden == nil {
				golden = make([][]int64, n)
				for pe := 0; pe < n; pe++ {
					for _, slot := range c.Graph.VarSlot {
						golden[pe] = append(golden[pe], int64(ref.Mem[pe][slot]))
					}
				}
			}
		}
	})
}

// FuzzPipelineRobustness feeds raw (possibly hostile) source through the
// hardened pipeline under tight budgets: non-terminating loops, deeply
// nested control flow, and barrier storms. Every outcome must be a
// clean result or a typed, non-internal error — no hang (the step and
// state budgets bound all engines), no contained-panic leak, and the
// degradation ladder must never be needed for the committed seeds.
func FuzzPipelineRobustness(f *testing.F) {
	for _, path := range []string{
		"testdata/robust/nonterminating.mc",
		"testdata/robust/deepnest.mc",
		"testdata/robust/barrierstorm.mc",
		"testdata/robust/spawnheavy.mc",
	} {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		conf := msc.Config{
			Compress: true, CSI: true, Hash: true,
			Limits: msc.Limits{MaxStates: 2000, MaxMemBytes: 64 << 20},
		}
		c, err := msc.Compile(src, conf)
		if err != nil {
			var ie *msc.InternalError
			if errors.As(err, &ie) {
				t.Fatalf("contained compiler panic in %s: %v\n%s\n%s", ie.Phase, err, ie.Stack, src)
			}
			return // front-end rejections and budget overruns are expected
		}
		rc := msc.RunConfig{N: 4, MaxSteps: 1 << 15}
		for _, run := range []func() error{
			func() error { _, err := c.RunSIMD(rc); return err },
			func() error { _, err := c.RunMIMD(rc); return err },
			func() error { _, err := c.RunInterp(rc); return err },
		} {
			if err := run(); err != nil {
				var ie *msc.InternalError
				if errors.As(err, &ie) {
					t.Fatalf("internal error from engine: %v\n%s", err, src)
				}
				// Step limits, deadlocked barriers, runtime faults: all
				// fine as long as they come back as ordinary errors.
			}
		}
	})
}
