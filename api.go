// Package msc is a complete implementation of Meta-State Conversion
// (H. G. Dietz, "Meta-State Conversion", Purdue TR-EE 93-6 / ICPP 1993):
// a compiler that converts control-parallel MIMD (SPMD) programs into
// pure SIMD code by building a finite automaton over "meta states" —
// aggregate sets of simultaneously occupied per-processor states.
//
// The pipeline is
//
//	MIMDC source ──parse/analyze──▶ MIMD state graph (basic blocks)
//	            ──meta-state conversion──▶ meta-state automaton
//	            ──SIMD coding (CSI, hashed multiway branches)──▶ SIMD program
//
// and the package bundles three execution engines for evaluation:
//
//   - the SIMD machine itself (one control unit, N PEs, global-or,
//     router) executing the converted program;
//   - a MIMD reference machine (one pc per processor) providing golden
//     results and ideal-MIMD timing;
//   - the §1.1 baseline: a MIMD interpreter running on the SIMD machine,
//     paying fetch/decode/serialization overhead and per-PE program
//     memory.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-artifact reproductions.
package msc

import (
	"fmt"
	"io"
	"strings"

	"msc/internal/analysis"
	"msc/internal/cfg"
	"msc/internal/codegen"
	"msc/internal/gobackend"
	"msc/internal/interp"
	"msc/internal/mimdc"
	"msc/internal/mimdsim"
	metastate "msc/internal/msc"
	"msc/internal/obs"
	"msc/internal/simd"
)

// Config selects the conversion and encoding options.
type Config struct {
	// Compress applies §2.5 meta-state compression (both successors
	// always taken; unconditional transitions; subset states merged).
	Compress bool
	// TimeSplit applies the §2.4 MIMD-state time-splitting heuristic.
	// SplitDelta and SplitPercent tune it (0 means the paper defaults:
	// 4 cycles and 75%).
	TimeSplit    bool
	SplitDelta   int
	SplitPercent int
	// BarrierExact tracks barrier occupancy exactly instead of the §2.6
	// filtering; sound for programs where distinct barriers are
	// simultaneously occupied, at the cost of more meta states.
	BarrierExact bool
	// ExpandCalls expands non-recursive calls in-line per §2.2 instead
	// of sharing one copy with return-token dispatch.
	ExpandCalls bool
	// CSI applies common subexpression induction (§3.1) to meta-state
	// bodies; Hash encodes multiway branches with customized hash
	// functions and jump tables (§3.2).
	CSI  bool
	Hash bool
	// MaxStates guards the meta-state explosion (default 65536).
	MaxStates int
	// ConvertWorkers bounds the conversion worker pool that expands the
	// meta-state frontier in parallel: 0 uses all of GOMAXPROCS, 1
	// forces the sequential path. The automaton is byte-identical for
	// any value (see docs/PERFORMANCE.md); the knob only trades compile
	// wall-clock for cores.
	ConvertWorkers int
	// Vet fails Compile when the static analyzer finds error-severity
	// diagnostics (definite use-before-init, barrier deadlock). The
	// analyzer runs and Compiled.Diagnostics is populated regardless;
	// Vet only decides whether errors abort the pipeline.
	Vet bool
	// Metrics, when non-nil, receives the compile-phase wall times and
	// domain counters (the obs glossary in docs/OBSERVABILITY.md).
	// Compile records into its own recorder regardless and exposes the
	// typed view as Compiled.Stats; setting Metrics shares the recorder,
	// e.g. to publish it over expvar while compilation proceeds.
	Metrics *obs.Recorder
}

// Validate reports the first out-of-range field. Compile rejects
// invalid configurations up front instead of silently ignoring them.
func (c Config) Validate() error {
	if c.SplitDelta < 0 {
		return fmt.Errorf("msc: Config.SplitDelta must be >= 0 (0 means the paper default of 4 cycles), got %d", c.SplitDelta)
	}
	if c.SplitPercent < 0 || c.SplitPercent > 100 {
		return fmt.Errorf("msc: Config.SplitPercent must be in [0,100] (0 means the paper default of 75), got %d", c.SplitPercent)
	}
	if c.MaxStates < 0 {
		return fmt.Errorf("msc: Config.MaxStates must be >= 0 (0 means the default of 65536), got %d", c.MaxStates)
	}
	if c.ConvertWorkers < 0 {
		return fmt.Errorf("msc: Config.ConvertWorkers must be >= 0 (0 means GOMAXPROCS), got %d", c.ConvertWorkers)
	}
	return nil
}

// DefaultConfig is the recommended production configuration: the
// compressed automaton with both SIMD coding optimizations.
func DefaultConfig() Config {
	return Config{Compress: true, CSI: true, Hash: true}
}

// Compiled is a fully converted program with every intermediate stage
// retained for inspection.
type Compiled struct {
	Source    string
	AST       *mimdc.Program
	Graph     *cfg.Graph
	Automaton *metastate.Automaton
	Program   *simd.Program
	Config    Config
	// Stats is the typed compile-metrics view: per-phase wall times and
	// the pipeline's domain counters. Always populated.
	Stats *CompileStats
	// Diagnostics holds the static analyzer's findings (sorted by source
	// position). Populated whether or not Config.Vet is set; with Vet
	// set, Compile fails instead when any finding is error severity.
	Diagnostics []Diagnostic
}

// Diagnostic and Severity re-export the static analyzer's finding
// types, so callers can consume Compiled.Diagnostics and Analyze
// results without importing the internal package path.
type (
	Diagnostic = analysis.Diagnostic
	Severity   = analysis.Severity
)

// Severity levels of a Diagnostic. Only SevError gates builds.
const (
	SevInfo    = analysis.SevInfo
	SevWarning = analysis.SevWarning
	SevError   = analysis.SevError
)

// Analyze runs the full static-analysis suite — the dataflow checks
// over the MIMD state graph plus, when a is non-nil, the whole-program
// parallel-safety checks over the meta-state automaton — and returns
// the sorted diagnostics. It is the library form of `msc vet`.
func Analyze(g *cfg.Graph, a *metastate.Automaton) []Diagnostic {
	return analysis.Analyze(g, a)
}

// CompileStats is the typed form of the compile metrics a pipeline run
// records (the raw recorder is available via Config.Metrics).
type CompileStats struct {
	// PhaseWall holds per-phase wall time in pipeline order.
	PhaseWall []obs.Phase `json:"phases"`
	// Front end.
	TokensParsed         int64 `json:"tokens_parsed"`
	BlocksBeforeSimplify int64 `json:"blocks_before_simplify"`
	BlocksAfterSimplify  int64 `json:"blocks_after_simplify"`
	// Meta-state conversion. MetaExplored counts states interned across
	// every restart attempt (so it can exceed MetaStates); MetaMerged
	// counts §2.5 subset-merged states; AggregatesFiltered counts §2.6
	// barrier-filtered aggregates; WorklistHighWater is the conversion
	// work-list peak.
	MetaStates         int64 `json:"meta_states"`
	MIMDStates         int64 `json:"mimd_states"`
	MetaExplored       int64 `json:"meta_explored"`
	MetaMerged         int64 `json:"meta_merged"`
	AggregatesFiltered int64 `json:"aggregates_barrier_filtered"`
	WorklistHighWater  int64 `json:"worklist_high_water"`
	TimeSplits         int64 `json:"time_splits"`
	Restarts           int64 `json:"restarts"`
	// SIMD coding.
	CSISavedCycles      int64 `json:"csi_saved_cycles"`
	CSISlotsSaved       int64 `json:"csi_slots_saved"`
	HashCandidatesTried int64 `json:"hash_candidates_tried"`
	HashTablesBuilt     int64 `json:"hash_tables_built"`
	DispatchEntries     int64 `json:"dispatch_entries"`
	// Static analysis (the vet phase).
	VetDiagnostics int64 `json:"vet_diagnostics"`
	VetErrors      int64 `json:"vet_errors"`
	VetWarnings    int64 `json:"vet_warnings"`
}

// statsFromRecorder builds the typed view over the well-known names.
func statsFromRecorder(r *obs.Recorder) *CompileStats {
	m := r.Snapshot()
	return &CompileStats{
		PhaseWall:            m.Phases,
		TokensParsed:         m.Counter(obs.CounterTokens),
		BlocksBeforeSimplify: m.Counter(obs.CounterBlocksBefore),
		BlocksAfterSimplify:  m.Counter(obs.CounterBlocksAfter),
		MetaStates:           m.Counter(obs.CounterMetaStates),
		MIMDStates:           m.Counter(obs.CounterMIMDStates),
		MetaExplored:         m.Counter(obs.CounterMetaExplored),
		MetaMerged:           m.Counter(obs.CounterMetaMerged),
		AggregatesFiltered:   m.Counter(obs.CounterMetaFiltered),
		WorklistHighWater:    m.Counter(obs.CounterWorklistHigh),
		TimeSplits:           m.Counter(obs.CounterSplits),
		Restarts:             m.Counter(obs.CounterRestarts),
		CSISavedCycles:       m.Counter(obs.CounterCSISavedCycles),
		CSISlotsSaved:        m.Counter(obs.CounterCSISlotsSaved),
		HashCandidatesTried:  m.Counter(obs.CounterHashTried),
		HashTablesBuilt:      m.Counter(obs.CounterHashTables),
		DispatchEntries:      m.Counter(obs.CounterDispatchEntries),
		VetDiagnostics:       m.Counter(obs.CounterVetDiags),
		VetErrors:            m.Counter(obs.CounterVetErrors),
		VetWarnings:          m.Counter(obs.CounterVetWarnings),
	}
}

// Compile runs the whole pipeline on MIMDC source.
func Compile(source string, conf Config) (*Compiled, error) {
	if err := conf.Validate(); err != nil {
		return nil, err
	}
	rec := conf.Metrics
	if rec == nil {
		rec = obs.NewRecorder()
	}

	stop := rec.Phase(obs.PhaseParse)
	ast, err := mimdc.Parse(source)
	stop()
	if err != nil {
		return nil, fmt.Errorf("msc: parse: %w", err)
	}
	rec.Add(obs.CounterTokens, int64(ast.Tokens))

	stop = rec.Phase(obs.PhaseAnalyze)
	err = mimdc.Analyze(ast)
	stop()
	if err != nil {
		return nil, fmt.Errorf("msc: analyze: %w", err)
	}

	stop = rec.Phase(obs.PhaseLower)
	g, err := cfg.BuildWith(ast, cfg.Options{ExpandCalls: conf.ExpandCalls})
	stop()
	if err != nil {
		return nil, fmt.Errorf("msc: lower: %w", err)
	}

	stop = rec.Phase(obs.PhaseSimplify)
	sstats := cfg.SimplifyWithStats(g)
	stop()
	rec.Add(obs.CounterBlocksBefore, int64(sstats.BlocksBefore))
	rec.Add(obs.CounterBlocksAfter, int64(sstats.BlocksAfter))
	if err := cfg.Verify(g); err != nil {
		return nil, fmt.Errorf("msc: internal error: %w", err)
	}

	mopt := metastate.DefaultOptions(conf.Compress)
	mopt.TimeSplit = conf.TimeSplit
	if conf.SplitDelta != 0 {
		mopt.SplitDelta = conf.SplitDelta
	}
	if conf.SplitPercent != 0 {
		mopt.SplitPercent = conf.SplitPercent
	}
	mopt.BarrierExact = conf.BarrierExact
	if conf.MaxStates != 0 {
		mopt.MaxStates = conf.MaxStates
	}
	mopt.Workers = conf.ConvertWorkers
	mopt.Metrics = rec
	stop = rec.Phase(obs.PhaseConvert)
	a, err := metastate.Convert(g, mopt)
	stop()
	if err != nil {
		return nil, fmt.Errorf("msc: convert: %w", err)
	}

	stop = rec.Phase(obs.PhaseCheck)
	err = metastate.Check(a)
	stop()
	if err != nil {
		return nil, fmt.Errorf("msc: internal error: %w", err)
	}

	stop = rec.Phase(obs.PhaseVet)
	diags := analysis.Analyze(g, a)
	stop()
	nErr, nWarn, _ := analysis.CountBySeverity(diags)
	rec.Add(obs.CounterVetDiags, int64(len(diags)))
	rec.Add(obs.CounterVetErrors, int64(nErr))
	rec.Add(obs.CounterVetWarnings, int64(nWarn))
	if conf.Vet && nErr > 0 {
		var sb []string
		for _, d := range diags {
			if d.Sev == analysis.SevError {
				sb = append(sb, d.String())
			}
		}
		return nil, fmt.Errorf("msc: vet: %s", strings.Join(sb, "; "))
	}

	stop = rec.Phase(obs.PhaseCodegen)
	p, err := codegen.Compile(a, codegen.Options{Hash: conf.Hash, CSI: conf.CSI, Metrics: rec})
	stop()
	if err != nil {
		return nil, fmt.Errorf("msc: codegen: %w", err)
	}
	return &Compiled{
		Source:      source,
		AST:         ast,
		Graph:       g,
		Automaton:   a,
		Program:     p,
		Config:      conf,
		Stats:       statsFromRecorder(rec),
		Diagnostics: diags,
	}, nil
}

// MustCompile compiles and panics on error; for examples and tests.
func MustCompile(source string, conf Config) *Compiled {
	c, err := Compile(source, conf)
	if err != nil {
		panic(err)
	}
	return c
}

// RunConfig selects the machine shape for an execution.
type RunConfig struct {
	// N is the machine width. InitialActive PEs start in main (0 = all);
	// the remainder wait in the free pool for spawn (§3.2.5).
	N             int
	InitialActive int
	// Trace, when non-nil, receives one line per meta-state execution
	// (SIMD engine only). Timeline, when non-nil, receives a per-PE
	// occupancy row per meta-state execution.
	Trace    io.Writer
	Timeline io.Writer
	// Sink, when non-nil, receives the same execution events as Trace
	// and Timeline in typed form (SIMD engine only); use obs.JSONLSink
	// for machine-readable traces or any custom obs.Sink.
	Sink obs.Sink
}

// Validate reports the first out-of-range field with a descriptive
// error. The Run methods reject invalid configurations up front.
func (rc RunConfig) Validate() error {
	if rc.N < 1 {
		return fmt.Errorf("msc: RunConfig.N must be >= 1 (machine width), got %d", rc.N)
	}
	if rc.InitialActive < 0 {
		return fmt.Errorf("msc: RunConfig.InitialActive must be >= 0 (0 means all %d PEs), got %d", rc.N, rc.InitialActive)
	}
	if rc.InitialActive > rc.N {
		return fmt.Errorf("msc: RunConfig.InitialActive %d exceeds machine width N=%d", rc.InitialActive, rc.N)
	}
	return nil
}

// RunSIMD executes the converted program on the SIMD machine.
func (c *Compiled) RunSIMD(rc RunConfig) (*simd.Result, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	return simd.Run(c.Program, simd.Config{
		N: rc.N, InitialActive: rc.InitialActive,
		Trace: rc.Trace, Timeline: rc.Timeline, Sink: rc.Sink,
	})
}

// RunMIMD executes the MIMD state graph on the MIMD reference machine
// (ideal MIMD: one pc per processor, runtime barrier cost).
func (c *Compiled) RunMIMD(rc RunConfig) (*mimdsim.Result, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	return mimdsim.Run(c.Graph, mimdsim.Config{N: rc.N, InitialActive: rc.InitialActive})
}

// RunInterp executes the §1.1 baseline: the MIMD program interpreted on
// the SIMD machine.
func (c *Compiled) RunInterp(rc RunConfig) (*interp.Result, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	return interp.Run(c.Graph, interp.Config{N: rc.N, InitialActive: rc.InitialActive})
}

// MPL renders the converted program in the MPL-like text form of the
// paper's Listing 5.
func (c *Compiled) MPL() string { return codegen.EmitMPL(c.Program) }

// EmitGo renders the converted program as a standalone, buildable Go
// main package (the §5 future-work code generator, with Go standing in
// for MPL). defaultN is the default machine width of the generated
// program's -n flag. Requires ≤ 64 MIMD states.
func (c *Compiled) EmitGo(defaultN int) (string, error) {
	return gobackend.Emit(c.Program, defaultN)
}

// DotStateGraph renders the MIMD state graph (Figure 1 style) in
// Graphviz dot.
func (c *Compiled) DotStateGraph(title string) string { return c.Graph.Dot(title) }

// DotAutomaton renders the meta-state automaton (Figures 2/5/6 style)
// in Graphviz dot.
func (c *Compiled) DotAutomaton(title string) string { return c.Automaton.Dot(title) }

// DotProfile renders the meta-state automaton as a Graphviz hot-spot
// heatmap, coloring each state by its share of the run's total cycles
// (res must come from RunSIMD on this Compiled).
func (c *Compiled) DotProfile(title string, res *simd.Result) string {
	share := make([]float64, len(res.MetaStats))
	for i, st := range res.MetaStats {
		if res.Time > 0 {
			share[i] = float64(st.Cycles) / float64(res.Time)
		}
	}
	return c.Automaton.DotHeat(title, share)
}

// Slot returns the memory slot of a global variable, for reading
// results out of run memory images. The boolean reports existence.
func (c *Compiled) Slot(name string) (int, bool) {
	s, ok := c.Graph.VarSlot[name]
	return s, ok
}

// MetaStates returns the number of meta states in the automaton.
func (c *Compiled) MetaStates() int { return c.Automaton.NumStates() }

// MIMDStates returns the number of MIMD states in the (possibly
// time-split) state graph the automaton was built over.
func (c *Compiled) MIMDStates() int { return c.Automaton.G.NumBlocks() }
