// Package msc is a complete implementation of Meta-State Conversion
// (H. G. Dietz, "Meta-State Conversion", Purdue TR-EE 93-6 / ICPP 1993):
// a compiler that converts control-parallel MIMD (SPMD) programs into
// pure SIMD code by building a finite automaton over "meta states" —
// aggregate sets of simultaneously occupied per-processor states.
//
// The pipeline is
//
//	MIMDC source ──parse/analyze──▶ MIMD state graph (basic blocks)
//	            ──meta-state conversion──▶ meta-state automaton
//	            ──SIMD coding (CSI, hashed multiway branches)──▶ SIMD program
//
// and the package bundles three execution engines for evaluation:
//
//   - the SIMD machine itself (one control unit, N PEs, global-or,
//     router) executing the converted program;
//   - a MIMD reference machine (one pc per processor) providing golden
//     results and ideal-MIMD timing;
//   - the §1.1 baseline: a MIMD interpreter running on the SIMD machine,
//     paying fetch/decode/serialization overhead and per-PE program
//     memory.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-artifact reproductions.
package msc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"strings"
	"time"

	"msc/internal/analysis"
	"msc/internal/cfg"
	"msc/internal/codegen"
	"msc/internal/faultinject"
	"msc/internal/gobackend"
	"msc/internal/interp"
	"msc/internal/mimdc"
	"msc/internal/mimdsim"
	metastate "msc/internal/msc"
	"msc/internal/mscerr"
	"msc/internal/obs"
	"msc/internal/opt"
	"msc/internal/simd"
	"msc/internal/telemetry"
)

// Typed pipeline errors, re-exported from the shared leaf package so
// engines and the root API report one taxonomy. Match with errors.As:
//
//	var be *msc.BudgetError      // a resource budget was exceeded
//	var se *msc.StepLimitError   // an engine hit its step budget
//	var ie *msc.InternalError    // a contained compiler panic
//	var ce *msc.CacheError       // an artifact-cache operation failed
type (
	BudgetError    = mscerr.BudgetError
	StepLimitError = mscerr.StepLimitError
	InternalError  = mscerr.InternalError
	CacheError     = mscerr.CacheError
)

// WidthLimitError reports a RunConfig observability feature (Timeline,
// Sink, Strict) requested above the width the SIMD engine supports it
// at (simd.ObsWidthCap): each is O(N) per meta state, so mega-width
// runs must go without. Match with errors.As.
type WidthLimitError = simd.WidthLimitError

// DefaultMaxSteps is the default engine step budget (RunConfig.MaxSteps
// when zero): large enough for every paper workload, small enough that a
// non-terminating program fails in seconds rather than hanging.
const DefaultMaxSteps = mscerr.DefaultMaxSteps

// Limits bounds the resources one Compile may consume. The zero value
// means "no limit" for every field; overruns surface as *BudgetError
// (and, with Config.Degrade, trigger the degradation ladder instead).
type Limits struct {
	// Deadline is the wall-clock budget per compile attempt. Exceeding
	// it returns a *BudgetError with Resource "wall_clock".
	Deadline time.Duration
	// MaxStates caps the meta-state automaton size (Resource
	// "meta_states"). Non-zero wins over Config.MaxStates.
	MaxStates int
	// MaxCSICandidates caps the merge candidates the CSI permutation
	// search may examine per meta state (Resource "csi_candidates").
	MaxCSICandidates int64
	// MaxMemBytes caps the approximate conversion-core memory high-water
	// mark, estimated from interner and pool stats (Resource
	// "mem_bytes"). Approximate: the estimate tracks the dominant
	// allocations (meta-state sets and the intern table), not the Go
	// heap.
	MaxMemBytes int64
}

// Validate reports the first out-of-range field.
func (l Limits) Validate() error {
	if l.Deadline < 0 {
		return fmt.Errorf("msc: Limits.Deadline must be >= 0 (0 means no deadline), got %v", l.Deadline)
	}
	if l.MaxStates < 0 {
		return fmt.Errorf("msc: Limits.MaxStates must be >= 0 (0 means Config.MaxStates), got %d", l.MaxStates)
	}
	if l.MaxCSICandidates < 0 {
		return fmt.Errorf("msc: Limits.MaxCSICandidates must be >= 0 (0 means unlimited), got %d", l.MaxCSICandidates)
	}
	if l.MaxMemBytes < 0 {
		return fmt.Errorf("msc: Limits.MaxMemBytes must be >= 0 (0 means unlimited), got %d", l.MaxMemBytes)
	}
	return nil
}

// DegradeStep records one rung of the graceful-degradation ladder: the
// budget overrun that triggered it and the cheaper setting retried with.
type DegradeStep struct {
	// Phase is the pipeline phase that exceeded its budget.
	Phase string `json:"phase"`
	// Resource is the budget that was exceeded (BudgetError.Resource).
	Resource string `json:"resource"`
	// Action describes the setting that was relaxed for the retry.
	Action string `json:"action"`
}

// Config selects the conversion and encoding options.
type Config struct {
	// Compress applies §2.5 meta-state compression (both successors
	// always taken; unconditional transitions; subset states merged).
	Compress bool
	// TimeSplit applies the §2.4 MIMD-state time-splitting heuristic.
	// SplitDelta and SplitPercent tune it (0 means the paper defaults:
	// 4 cycles and 75%).
	TimeSplit    bool
	SplitDelta   int
	SplitPercent int
	// BarrierExact tracks barrier occupancy exactly instead of the §2.6
	// filtering; sound for programs where distinct barriers are
	// simultaneously occupied, at the cost of more meta states.
	BarrierExact bool
	// ExpandCalls expands non-recursive calls in-line per §2.2 instead
	// of sharing one copy with return-token dispatch.
	ExpandCalls bool
	// CSI applies common subexpression induction (§3.1) to meta-state
	// bodies; Hash encodes multiway branches with customized hash
	// functions and jump tables (§3.2).
	CSI  bool
	Hash bool
	// MaxStates guards the meta-state explosion (default 65536).
	MaxStates int
	// ConvertWorkers bounds the conversion worker pool that expands the
	// meta-state frontier in parallel: 0 uses all of GOMAXPROCS, 1
	// forces the sequential path. The automaton is byte-identical for
	// any value (see docs/PERFORMANCE.md); the knob only trades compile
	// wall-clock for cores.
	ConvertWorkers int
	// Vet fails Compile when the static analyzer finds error-severity
	// diagnostics (definite use-before-init, barrier deadlock). The
	// analyzer runs and Compiled.Diagnostics is populated regardless;
	// Vet only decides whether errors abort the pipeline.
	Vet bool
	// Opt selects the dataflow optimization level applied to the MIMD
	// state graph before conversion: 0 (default) disables the optimizer
	// entirely, 1 runs one round of constant materialization, branch
	// folding, dead-store elimination, and cleanup, 2 iterates the full
	// pass pipeline (copy propagation included) to a fixed point. The
	// observable behavior of the compiled program is unchanged at every
	// level (the differential test gate proves it over the corpus);
	// higher levels trade compile time for fewer MIMD states and
	// therefore fewer meta states. Diagnostics always describe the
	// unoptimized program: with Opt > 0 the vet phase analyzes a
	// pre-optimization snapshot of the graph.
	Opt int
	// Verify runs the full cross-phase IR verifier (cfg.VerifyAll)
	// after lowering and simplification and between every optimizer
	// pass, failing the compile with an internal error on the first
	// broken invariant. Race-detector builds verify optimizer passes
	// regardless; Verify opts regular builds in.
	Verify bool
	// Limits bounds the resources one compile may consume (wall clock,
	// meta states, CSI search, approximate memory). The zero value means
	// no limits. Overruns return *BudgetError — or, with Degrade set,
	// walk the degradation ladder instead.
	Limits Limits
	// Cache, when non-nil, fronts the pipeline with the on-disk artifact
	// cache (OpenCache): compiles are content-addressed by source hash,
	// config fingerprint, and codec version, concurrent identical
	// compiles are deduplicated single-flight, and any cache failure
	// degrades transparently to a real compile (recorded in
	// Stats.CacheOutcome/CacheErrors and the cache.* counters, never
	// fatal). Cache hits return a Compiled with a nil AST — every other
	// field, including the automaton and SIMD program, is rebuilt
	// byte-identically from the artifact. See docs/CACHE.md.
	Cache *Cache
	// Degrade opts in to graceful degradation: when a compile attempt
	// exceeds a budget in Limits, retry with progressively cheaper
	// settings (barrier-exact → §2.6 filtering, then time-splitting off,
	// then CSI → linear schedule) instead of failing. Each rung is
	// recorded in Compiled.Degradations and the degrade.steps counter.
	Degrade bool
	// Metrics, when non-nil, receives the compile-phase wall times and
	// domain counters (the obs glossary in docs/OBSERVABILITY.md).
	// Compile records into its own recorder regardless and exposes the
	// typed view as Compiled.Stats; setting Metrics shares the recorder,
	// e.g. to publish it over expvar while compilation proceeds. The
	// recorder's backing telemetry registry additionally accumulates
	// compile-latency and meta-state histograms, servable in Prometheus
	// form via obs.DebugServer.MountMetrics.
	Metrics *obs.Recorder
	// Tracer, when non-nil, records the compile as a hierarchical span
	// tree: one compile root (per attempt when degrading), a phase.*
	// child per pipeline phase, and — via the conversion options — one
	// span per frontier generation and parallel worker. Budget overruns,
	// degradation rungs, and contained panics attach as span events.
	// Export with telemetry.Tracer.WriteJSONL or WriteChromeTrace (the
	// `msc trace` subcommand drives this). Nil costs nothing: every span
	// operation no-ops on the nil tracer.
	Tracer *telemetry.Tracer
	// TraceParent optionally parents the compile span under an existing
	// span of Tracer (e.g. a service request span). Zero means root.
	TraceParent telemetry.SpanID
}

// Validate reports the first out-of-range field. Compile rejects
// invalid configurations up front instead of silently ignoring them.
func (c Config) Validate() error {
	if c.SplitDelta < 0 {
		return fmt.Errorf("msc: Config.SplitDelta must be >= 0 (0 means the paper default of 4 cycles), got %d", c.SplitDelta)
	}
	if c.SplitPercent < 0 || c.SplitPercent > 100 {
		return fmt.Errorf("msc: Config.SplitPercent must be in [0,100] (0 means the paper default of 75), got %d", c.SplitPercent)
	}
	if c.MaxStates < 0 {
		return fmt.Errorf("msc: Config.MaxStates must be >= 0 (0 means the default of 65536), got %d", c.MaxStates)
	}
	if c.ConvertWorkers < 0 {
		return fmt.Errorf("msc: Config.ConvertWorkers must be >= 0 (0 means GOMAXPROCS), got %d", c.ConvertWorkers)
	}
	if c.Opt < 0 || c.Opt > 2 {
		return fmt.Errorf("msc: Config.Opt must be 0, 1, or 2, got %d", c.Opt)
	}
	return c.Limits.Validate()
}

// DefaultConfig is the recommended production configuration: the
// compressed automaton with both SIMD coding optimizations.
func DefaultConfig() Config {
	return Config{Compress: true, CSI: true, Hash: true}
}

// Compiled is a fully converted program with every intermediate stage
// retained for inspection.
type Compiled struct {
	Source    string
	AST       *mimdc.Program
	Graph     *cfg.Graph
	Automaton *metastate.Automaton
	Program   *simd.Program
	Config    Config
	// Stats is the typed compile-metrics view: per-phase wall times and
	// the pipeline's domain counters. Always populated.
	Stats *CompileStats
	// Diagnostics holds the static analyzer's findings (sorted by source
	// position). Populated whether or not Config.Vet is set; with Vet
	// set, Compile fails instead when any finding is error severity.
	Diagnostics []Diagnostic
	// Degradations lists the degradation-ladder rungs taken to get this
	// result (empty when the first attempt fit the budgets). Each entry
	// names the budget exceeded and the setting relaxed in response.
	Degradations []DegradeStep
}

// Diagnostic and Severity re-export the static analyzer's finding
// types, so callers can consume Compiled.Diagnostics and Analyze
// results without importing the internal package path.
type (
	Diagnostic = analysis.Diagnostic
	Severity   = analysis.Severity
)

// Severity levels of a Diagnostic. Only SevError gates builds.
const (
	SevInfo    = analysis.SevInfo
	SevWarning = analysis.SevWarning
	SevError   = analysis.SevError
)

// Analyze runs the full static-analysis suite — the dataflow checks
// over the MIMD state graph plus, when a is non-nil, the whole-program
// parallel-safety checks over the meta-state automaton — and returns
// the sorted diagnostics. It is the library form of `msc vet`.
func Analyze(g *cfg.Graph, a *metastate.Automaton) []Diagnostic {
	return analysis.Analyze(g, a)
}

// CompileStats is the typed form of the compile metrics a pipeline run
// records (the raw recorder is available via Config.Metrics).
type CompileStats struct {
	// PhaseWall holds per-phase wall time in pipeline order.
	PhaseWall []obs.Phase `json:"phases"`
	// Front end.
	TokensParsed         int64 `json:"tokens_parsed"`
	BlocksBeforeSimplify int64 `json:"blocks_before_simplify"`
	BlocksAfterSimplify  int64 `json:"blocks_after_simplify"`
	// Meta-state conversion. MetaExplored counts states interned across
	// every restart attempt (so it can exceed MetaStates); MetaMerged
	// counts §2.5 subset-merged states; AggregatesFiltered counts §2.6
	// barrier-filtered aggregates; WorklistHighWater is the conversion
	// work-list peak.
	MetaStates         int64 `json:"meta_states"`
	MIMDStates         int64 `json:"mimd_states"`
	MetaExplored       int64 `json:"meta_explored"`
	MetaMerged         int64 `json:"meta_merged"`
	AggregatesFiltered int64 `json:"aggregates_barrier_filtered"`
	WorklistHighWater  int64 `json:"worklist_high_water"`
	TimeSplits         int64 `json:"time_splits"`
	Restarts           int64 `json:"restarts"`
	// SIMD coding.
	CSISavedCycles      int64 `json:"csi_saved_cycles"`
	CSISlotsSaved       int64 `json:"csi_slots_saved"`
	HashCandidatesTried int64 `json:"hash_candidates_tried"`
	HashTablesBuilt     int64 `json:"hash_tables_built"`
	DispatchEntries     int64 `json:"dispatch_entries"`
	// Optimizer (the opt phase, Config.Opt > 0): per-pass rewrite
	// counts and fixed-point rounds.
	OptConstFolds       int64 `json:"opt_const_folds"`
	OptDeadStores       int64 `json:"opt_dead_stores"`
	OptBranchesPruned   int64 `json:"opt_branches_pruned"`
	OptCopiesPropagated int64 `json:"opt_copies_propagated"`
	OptRounds           int64 `json:"opt_rounds"`
	// Static analysis (the vet phase).
	VetDiagnostics int64 `json:"vet_diagnostics"`
	VetErrors      int64 `json:"vet_errors"`
	VetWarnings    int64 `json:"vet_warnings"`
	// Robustness: degradation-ladder rungs taken and total budget
	// overruns (summed across budget.* counters) during this compile.
	DegradeSteps   int64 `json:"degrade_steps"`
	BudgetOverruns int64 `json:"budget_overruns"`
	// Artifact cache (Config.Cache). CacheOutcome says how this Compiled
	// was obtained: "" (cache off), "hit" (decoded from the store),
	// "stored" (compiled and written back), "uncached" (compiled; not
	// stored — degraded results are never cached), or
	// "singleflight-shared" (another request's in-flight result).
	// CacheErrors lists the typed cache failures absorbed along the way
	// (each one degraded the cache, never the compile).
	CacheOutcome string   `json:"cache_outcome,omitempty"`
	CacheErrors  []string `json:"cache_errors,omitempty"`
}

// statsFromRecorder builds the typed view over the well-known names.
func statsFromRecorder(r *obs.Recorder) *CompileStats {
	m := r.Snapshot()
	return &CompileStats{
		PhaseWall:            m.Phases,
		TokensParsed:         m.Counter(obs.CounterTokens),
		BlocksBeforeSimplify: m.Counter(obs.CounterBlocksBefore),
		BlocksAfterSimplify:  m.Counter(obs.CounterBlocksAfter),
		MetaStates:           m.Counter(obs.CounterMetaStates),
		MIMDStates:           m.Counter(obs.CounterMIMDStates),
		MetaExplored:         m.Counter(obs.CounterMetaExplored),
		MetaMerged:           m.Counter(obs.CounterMetaMerged),
		AggregatesFiltered:   m.Counter(obs.CounterMetaFiltered),
		WorklistHighWater:    m.Counter(obs.CounterWorklistHigh),
		TimeSplits:           m.Counter(obs.CounterSplits),
		Restarts:             m.Counter(obs.CounterRestarts),
		CSISavedCycles:       m.Counter(obs.CounterCSISavedCycles),
		CSISlotsSaved:        m.Counter(obs.CounterCSISlotsSaved),
		HashCandidatesTried:  m.Counter(obs.CounterHashTried),
		HashTablesBuilt:      m.Counter(obs.CounterHashTables),
		DispatchEntries:      m.Counter(obs.CounterDispatchEntries),
		OptConstFolds:        m.Counter(obs.CounterOptConstFolds),
		OptDeadStores:        m.Counter(obs.CounterOptDeadStores),
		OptBranchesPruned:    m.Counter(obs.CounterOptBranchesPruned),
		OptCopiesPropagated:  m.Counter(obs.CounterOptCopiesProp),
		OptRounds:            m.Counter(obs.CounterOptRounds),
		VetDiagnostics:       m.Counter(obs.CounterVetDiags),
		VetErrors:            m.Counter(obs.CounterVetErrors),
		VetWarnings:          m.Counter(obs.CounterVetWarnings),
		DegradeSteps:         m.Counter(obs.CounterDegradeSteps),
		BudgetOverruns:       m.PrefixSum(obs.BudgetCounterPrefix),
	}
}

// Compile runs the whole pipeline on MIMDC source. It is
// CompileContext with a background context.
func Compile(source string, conf Config) (*Compiled, error) {
	return CompileContext(context.Background(), source, conf)
}

// CompileContext runs the whole pipeline on MIMDC source under ctx.
// Cancellation is checked at every phase boundary, per committed meta
// state inside conversion, and the conversion worker pool drains before
// returning — no goroutines outlive a canceled compile. Budget overruns
// (Config.Limits) return *BudgetError, or walk the degradation ladder
// when Config.Degrade is set; panics in any phase are contained as
// *InternalError.
func CompileContext(ctx context.Context, source string, conf Config) (*Compiled, error) {
	if err := conf.Validate(); err != nil {
		return nil, err
	}
	if conf.Cache != nil {
		return conf.Cache.compile(ctx, source, conf)
	}
	return compileFull(ctx, source, conf)
}

// compileFull is the uncached pipeline: the degradation-ladder loop
// around compileOnce. The cache layer calls it on a miss; everything
// else about it predates the cache and is unchanged by it.
func compileFull(ctx context.Context, source string, conf Config) (*Compiled, error) {
	rec := conf.Metrics
	if rec == nil {
		rec = obs.NewRecorder()
	}
	start := time.Now()
	span := conf.Tracer.StartSpan("compile", conf.TraceParent,
		telemetry.Int("source_bytes", int64(len(source))))
	defer span.End()

	var degradations []DegradeStep
	for {
		c, err := compileOnce(ctx, source, conf, rec, span)
		if err == nil {
			c.Degradations = degradations
			observeCompile(rec, span, start, c)
			return c, nil
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			span.Event("error", telemetry.String("error", err.Error()))
			return nil, err
		}
		rec.Add(obs.BudgetCounterPrefix+be.Resource, 1)
		span.Event("budget_overrun",
			telemetry.String("phase", be.Phase), telemetry.String("resource", be.Resource),
			telemetry.Int("limit", be.Limit), telemetry.Int("used", be.Used))
		if !conf.Degrade {
			return nil, err
		}
		step, ok := degradeStep(&conf, be)
		if !ok {
			return nil, err
		}
		rec.Add(obs.CounterDegradeSteps, 1)
		span.Event("degrade",
			telemetry.String("resource", step.Resource), telemetry.String("action", step.Action))
		degradations = append(degradations, step)
	}
}

// Histogram buckets for the compile-level telemetry: latency from 100µs
// to ~17min, automaton sizes from 1 to 256k meta states, engine runs
// from 100 cycles to 1e10. Fixed here so Prometheus expositions are
// comparable across processes.
var (
	latencyBuckets = telemetry.ExpBuckets(1e5, 10, 8)
	statesBuckets  = telemetry.ExpBuckets(1, 4, 10)
	cyclesBuckets  = telemetry.ExpBuckets(100, 10, 9)
)

// observeCompile lands the per-compile histogram observations in the
// recorder's backing registry and finishes the compile span.
func observeCompile(rec *obs.Recorder, span *telemetry.Span, start time.Time, c *Compiled) {
	reg := rec.Registry()
	reg.Histogram("compile.latency_ns", "compile wall time (ns)", latencyBuckets).
		Observe(time.Since(start).Nanoseconds())
	reg.Histogram("compile.meta_states", "meta states per compile", statesBuckets).
		Observe(int64(c.MetaStates()))
	span.SetAttr(telemetry.Int("meta_states", int64(c.MetaStates())))
	span.SetAttr(telemetry.Int("mimd_states", int64(c.MIMDStates())))
}

// degradeStep takes one rung down the degradation ladder: it relaxes
// the most expensive still-enabled setting in conf and reports what it
// did, or reports false when the ladder is exhausted. A CSI-search
// overrun skips straight to disabling CSI — relaxing conversion
// settings would not shrink the schedule search.
func degradeStep(conf *Config, be *BudgetError) (DegradeStep, bool) {
	step := DegradeStep{Phase: be.Phase, Resource: be.Resource}
	if be.Resource == "csi_candidates" && conf.CSI {
		conf.CSI = false
		step.Action = "csi off (linear schedule)"
		return step, true
	}
	switch {
	case conf.BarrierExact:
		conf.BarrierExact = false
		step.Action = "barrier-exact off (§2.6 barrier filtering)"
	case conf.TimeSplit:
		conf.TimeSplit = false
		step.Action = "time-splitting off"
	case conf.CSI:
		conf.CSI = false
		step.Action = "csi off (linear schedule)"
	default:
		return DegradeStep{}, false
	}
	return step, true
}

// pipelineRun threads the per-attempt context and phase bookkeeping
// through compileOnce.
type pipelineRun struct {
	ctx    context.Context
	rec    *obs.Recorder
	tracer *telemetry.Tracer
	parent *telemetry.Span // compile span; nil when tracing is off
	span   *telemetry.Span // current phase span, for child spans
	phase  string          // last phase entered, for wall-clock attribution
}

// run executes one pipeline phase under the attempt context: it checks
// cancellation at the boundary, fires the fault-injection hook, records
// the phase wall time and span, and contains panics as *InternalError.
// A contained panic still closes the phase span, carrying a "panic"
// event — a trace of a crashed compile shows where and why it died.
func (pr *pipelineRun) run(phase string, fn func() error) (err error) {
	pr.phase = phase
	if cerr := pr.ctx.Err(); cerr != nil {
		return fmt.Errorf("msc: canceled before %s: %w", phase, cerr)
	}
	stop := pr.rec.Phase(phase)
	span := pr.parent.StartChild("phase." + phase)
	pr.span = span
	defer stop()
	defer func() {
		if r := recover(); r != nil {
			span.Event("panic", telemetry.String("value", fmt.Sprint(r)))
			err = &InternalError{Phase: phase, Panic: fmt.Sprint(r), Stack: debug.Stack()}
		}
		span.End()
		pr.span = nil
	}()
	if ferr := faultinject.OnPhase(phase); ferr != nil {
		return ferr
	}
	return fn()
}

// compileOnce runs the pipeline once under the attempt's own deadline
// (Limits.Deadline is per attempt, so a degraded retry gets a fresh
// budget).
func compileOnce(ctx context.Context, source string, conf Config, rec *obs.Recorder, span *telemetry.Span) (*Compiled, error) {
	start := time.Now()
	// The wall-clock budget is "ours" only when it is the binding
	// deadline: a caller context that already expires sooner governs, and
	// exceeding it must surface as the caller's DeadlineExceeded — not as
	// a budget overrun that Degrade would pointlessly retry against a
	// dead context.
	ownDeadline := conf.Limits.Deadline > 0
	if ownDeadline {
		if pd, ok := ctx.Deadline(); ok && time.Until(pd) <= conf.Limits.Deadline {
			ownDeadline = false
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, conf.Limits.Deadline)
		defer cancel()
	}
	pr := &pipelineRun{ctx: ctx, rec: rec, tracer: conf.Tracer, parent: span}

	c, err := pipeline(pr, source, conf, rec)
	if err != nil && ownDeadline && errors.Is(err, context.DeadlineExceeded) {
		// The attempt's own wall-clock budget ran out: report it as a
		// budget overrun so Degrade can retry with cheaper settings. The
		// deadline error stays in the chain via Err, so callers matching
		// errors.Is(err, context.DeadlineExceeded) still see it.
		return nil, &BudgetError{
			Phase:    pr.phase,
			Resource: "wall_clock",
			Limit:    int64(conf.Limits.Deadline),
			Used:     int64(time.Since(start)),
			Err:      context.DeadlineExceeded,
		}
	}
	return c, err
}

// pipeline is the phase sequence itself.
func pipeline(pr *pipelineRun, source string, conf Config, rec *obs.Recorder) (*Compiled, error) {
	rec.Add(obs.CounterPipelineRuns, 1)
	var ast *mimdc.Program
	if err := pr.run(obs.PhaseParse, func() error {
		a, err := mimdc.Parse(source)
		if err != nil {
			return fmt.Errorf("msc: parse: %w", err)
		}
		ast = a
		return nil
	}); err != nil {
		return nil, err
	}
	rec.Add(obs.CounterTokens, int64(ast.Tokens))

	if err := pr.run(obs.PhaseAnalyze, func() error {
		if err := mimdc.Analyze(ast); err != nil {
			return fmt.Errorf("msc: analyze: %w", err)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var g *cfg.Graph
	if err := pr.run(obs.PhaseLower, func() error {
		gr, err := cfg.BuildWith(ast, cfg.Options{ExpandCalls: conf.ExpandCalls})
		if err != nil {
			return fmt.Errorf("msc: lower: %w", err)
		}
		if conf.Verify {
			if err := cfg.VerifyAll(gr); err != nil {
				return fmt.Errorf("msc: internal error: %w", err)
			}
		}
		g = gr
		return nil
	}); err != nil {
		return nil, err
	}

	if err := pr.run(obs.PhaseSimplify, func() error {
		sstats := cfg.SimplifyWithStats(g)
		rec.Add(obs.CounterBlocksBefore, int64(sstats.BlocksBefore))
		rec.Add(obs.CounterBlocksAfter, int64(sstats.BlocksAfter))
		verify := cfg.Verify
		if conf.Verify {
			verify = cfg.VerifyAll
		}
		if err := verify(g); err != nil {
			return fmt.Errorf("msc: internal error: %w", err)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// The vet phase analyzes the graph the programmer wrote; with the
	// optimizer on, that is a pre-optimization snapshot (materialized
	// constants and eliminated stores would otherwise shift diagnostics
	// away from the source).
	vetG := g
	if conf.Opt > 0 {
		vetG = g.Clone()
		if err := pr.run(obs.PhaseOpt, func() error {
			ostats, err := opt.Run(g, opt.Options{Level: conf.Opt, Verify: conf.Verify})
			rec.Add(obs.CounterOptConstFolds, int64(ostats.ConstFolds))
			rec.Add(obs.CounterOptDeadStores, int64(ostats.DeadStores))
			rec.Add(obs.CounterOptBranchesPruned, int64(ostats.BranchesPruned))
			rec.Add(obs.CounterOptCopiesProp, int64(ostats.CopiesPropagated))
			rec.Add(obs.CounterOptRounds, int64(ostats.Rounds))
			if pr.span != nil {
				pr.span.SetAttr(telemetry.Int("const_folds", int64(ostats.ConstFolds)))
				pr.span.SetAttr(telemetry.Int("dead_stores", int64(ostats.DeadStores)))
				pr.span.SetAttr(telemetry.Int("branches_pruned", int64(ostats.BranchesPruned)))
				pr.span.SetAttr(telemetry.Int("copies_propagated", int64(ostats.CopiesPropagated)))
				pr.span.SetAttr(telemetry.Int("rounds", int64(ostats.Rounds)))
			}
			if err != nil {
				return fmt.Errorf("msc: internal error: %w", err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	mopt := conversionOptions(conf)
	mopt.Metrics = rec
	mopt.Trace = conf.Tracer
	var a *metastate.Automaton
	if err := pr.run(obs.PhaseConvert, func() error {
		if pr.span != nil {
			mopt.TraceParent = pr.span.ID
		}
		au, err := metastate.ConvertContext(pr.ctx, g, mopt)
		if err != nil {
			var be *BudgetError
			if errors.As(err, &be) {
				return be
			}
			return fmt.Errorf("msc: convert: %w", err)
		}
		a = au
		return nil
	}); err != nil {
		return nil, err
	}

	if err := pr.run(obs.PhaseCheck, func() error {
		if err := metastate.Check(a); err != nil {
			return fmt.Errorf("msc: internal error: %w", err)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var diags []Diagnostic
	if err := pr.run(obs.PhaseVet, func() error {
		diags = analysis.Analyze(vetG, a)
		nErr, nWarn, _ := analysis.CountBySeverity(diags)
		rec.Add(obs.CounterVetDiags, int64(len(diags)))
		rec.Add(obs.CounterVetErrors, int64(nErr))
		rec.Add(obs.CounterVetWarnings, int64(nWarn))
		if conf.Vet && nErr > 0 {
			var sb []string
			for _, d := range diags {
				if d.Sev == analysis.SevError {
					sb = append(sb, d.String())
				}
			}
			return fmt.Errorf("msc: vet: %s", strings.Join(sb, "; "))
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var p *simd.Program
	if err := pr.run(obs.PhaseCodegen, func() error {
		pg, err := codegen.Compile(a, codegen.Options{
			Hash:             conf.Hash,
			CSI:              conf.CSI,
			MaxCSICandidates: conf.Limits.MaxCSICandidates,
			Metrics:          rec,
		})
		if err != nil {
			var be *BudgetError
			if errors.As(err, &be) {
				return be
			}
			return fmt.Errorf("msc: codegen: %w", err)
		}
		p = pg
		return nil
	}); err != nil {
		return nil, err
	}

	return &Compiled{
		Source:      source,
		AST:         ast,
		Graph:       g,
		Automaton:   a,
		Program:     p,
		Config:      conf,
		Stats:       statsFromRecorder(rec),
		Diagnostics: diags,
	}, nil
}

// conversionOptions maps Config to the converter's effective options —
// defaults applied, Limits overrides folded in. The cache's config
// fingerprint hashes exactly these effective values (plus the front-end
// and codegen knobs), so two Configs that convert identically share a
// cache key and two that do not cannot collide.
func conversionOptions(conf Config) metastate.Options {
	mopt := metastate.DefaultOptions(conf.Compress)
	mopt.TimeSplit = conf.TimeSplit
	if conf.SplitDelta != 0 {
		mopt.SplitDelta = conf.SplitDelta
	}
	if conf.SplitPercent != 0 {
		mopt.SplitPercent = conf.SplitPercent
	}
	mopt.BarrierExact = conf.BarrierExact
	if conf.MaxStates != 0 {
		mopt.MaxStates = conf.MaxStates
	}
	if conf.Limits.MaxStates != 0 {
		mopt.MaxStates = conf.Limits.MaxStates
	}
	mopt.MaxMemBytes = conf.Limits.MaxMemBytes
	mopt.Workers = conf.ConvertWorkers
	return mopt
}

// MustCompile compiles and panics on error; for examples and tests.
func MustCompile(source string, conf Config) *Compiled {
	c, err := Compile(source, conf)
	if err != nil {
		panic(err)
	}
	return c
}

// RunConfig selects the machine shape for an execution.
type RunConfig struct {
	// N is the machine width. InitialActive PEs start in main (0 = all);
	// the remainder wait in the free pool for spawn (§3.2.5).
	N             int
	InitialActive int
	// Workers sets the SIMD engine's chunk-execution worker count: 0
	// means GOMAXPROCS, 1 forces the sequential path. The Result is
	// byte-identical at any setting — chunks commit in ID order — so
	// this only trades wall time for cores. Other engines ignore it.
	Workers int
	// Trace, when non-nil, receives one line per meta-state execution
	// (SIMD engine only). Timeline, when non-nil, receives a per-PE
	// occupancy row per meta-state execution. Timeline and Sink carry
	// O(N) payloads per meta state and are refused above
	// simd.ObsWidthCap with a *WidthLimitError.
	Trace    io.Writer
	Timeline io.Writer
	// Sink, when non-nil, receives the same execution events as Trace
	// and Timeline in typed form (SIMD engine only); use obs.JSONLSink
	// for machine-readable traces or any custom obs.Sink.
	Sink obs.Sink
	// MaxSteps bounds the engine's step count (meta-state executions on
	// the SIMD machine, per-PE blocks on the MIMD reference machine,
	// rounds in the interpreter); 0 means DefaultMaxSteps. Exceeding it
	// returns a *StepLimitError instead of hanging on a non-terminating
	// program (`msc vet` flags definite no-halt/livelock statically).
	MaxSteps int
	// Tracer, when non-nil, records the execution as a run.<engine> span
	// carrying the machine shape and final cycle count; TraceParent
	// optionally nests it under an existing span (e.g. the compile span,
	// giving one compile→run trace). Nil costs nothing.
	Tracer      *telemetry.Tracer
	TraceParent telemetry.SpanID
	// Profiler, when non-nil, receives sampled attribution of engine
	// cycles to meta states and source blocks; render the result with
	// telemetry.Profiler.WriteFolded (the `msc profile -folded` output).
	Profiler *telemetry.Profiler
	// Metrics, when non-nil, accumulates an engine.cycles histogram
	// (labeled by engine) per run — the scrape-side complement of the
	// per-run Result struct.
	Metrics *telemetry.Registry
}

// Validate reports the first out-of-range field with a descriptive
// error. The Run methods reject invalid configurations up front.
func (rc RunConfig) Validate() error {
	if rc.N < 1 {
		return fmt.Errorf("msc: RunConfig.N must be >= 1 (machine width), got %d", rc.N)
	}
	if rc.InitialActive < 0 {
		return fmt.Errorf("msc: RunConfig.InitialActive must be >= 0 (0 means all %d PEs), got %d", rc.N, rc.InitialActive)
	}
	if rc.InitialActive > rc.N {
		return fmt.Errorf("msc: RunConfig.InitialActive %d exceeds machine width N=%d", rc.InitialActive, rc.N)
	}
	if rc.Workers < 0 {
		return fmt.Errorf("msc: RunConfig.Workers must be >= 0 (0 means GOMAXPROCS), got %d", rc.Workers)
	}
	if rc.MaxSteps < 0 {
		return fmt.Errorf("msc: RunConfig.MaxSteps must be >= 0 (0 means the default of %d), got %d", DefaultMaxSteps, rc.MaxSteps)
	}
	return nil
}

// RunSIMD executes the converted program on the SIMD machine.
func (c *Compiled) RunSIMD(rc RunConfig) (*simd.Result, error) {
	return c.RunSIMDContext(context.Background(), rc)
}

// RunSIMDContext is RunSIMD under a context: cancellation is checked
// every few thousand meta-state executions.
func (c *Compiled) RunSIMDContext(ctx context.Context, rc RunConfig) (*simd.Result, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	span := rc.Tracer.StartSpan("run.simd", rc.TraceParent, telemetry.Int("n", int64(rc.N)))
	res, err := simd.Run(c.Program, simd.Config{
		N: rc.N, InitialActive: rc.InitialActive, Workers: rc.Workers,
		Trace: rc.Trace, Timeline: rc.Timeline, Sink: rc.Sink,
		MaxMeta: rc.MaxSteps, Ctx: ctx, Profiler: rc.Profiler,
	})
	if res != nil {
		finishRun(span, rc, "simd", res.Time)
	} else {
		finishRun(span, rc, "simd", -1)
	}
	return res, err
}

// finishRun closes a run span and lands the engine-cycle histogram; a
// negative cycle count means the run failed before producing a result.
func finishRun(span *telemetry.Span, rc RunConfig, engine string, cycles int64) {
	if cycles >= 0 {
		span.SetAttr(telemetry.Int("cycles", cycles))
		rc.Metrics.Histogram("engine.cycles", "engine cycles per run", cyclesBuckets,
			telemetry.Label{Name: "engine", Value: engine}).Observe(cycles)
	} else {
		span.Event("error")
	}
	span.End()
}

// RunMIMD executes the MIMD state graph on the MIMD reference machine
// (ideal MIMD: one pc per processor, runtime barrier cost).
func (c *Compiled) RunMIMD(rc RunConfig) (*mimdsim.Result, error) {
	return c.RunMIMDContext(context.Background(), rc)
}

// RunMIMDContext is RunMIMD under a context: cancellation is checked
// every few thousand per-PE blocks.
func (c *Compiled) RunMIMDContext(ctx context.Context, rc RunConfig) (*mimdsim.Result, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	span := rc.Tracer.StartSpan("run.mimd", rc.TraceParent, telemetry.Int("n", int64(rc.N)))
	res, err := mimdsim.Run(c.Graph, mimdsim.Config{
		N: rc.N, InitialActive: rc.InitialActive,
		MaxBlocks: rc.MaxSteps, Ctx: ctx, Profiler: rc.Profiler,
	})
	if res != nil {
		finishRun(span, rc, "mimd", res.Time)
	} else {
		finishRun(span, rc, "mimd", -1)
	}
	return res, err
}

// RunInterp executes the §1.1 baseline: the MIMD program interpreted on
// the SIMD machine.
func (c *Compiled) RunInterp(rc RunConfig) (*interp.Result, error) {
	return c.RunInterpContext(context.Background(), rc)
}

// RunInterpContext is RunInterp under a context: cancellation is
// checked every few thousand interpreter rounds.
func (c *Compiled) RunInterpContext(ctx context.Context, rc RunConfig) (*interp.Result, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	span := rc.Tracer.StartSpan("run.interp", rc.TraceParent, telemetry.Int("n", int64(rc.N)))
	res, err := interp.Run(c.Graph, interp.Config{
		N: rc.N, InitialActive: rc.InitialActive,
		MaxRounds: rc.MaxSteps, Ctx: ctx, Profiler: rc.Profiler,
	})
	if res != nil {
		finishRun(span, rc, "interp", res.Time)
	} else {
		finishRun(span, rc, "interp", -1)
	}
	return res, err
}

// MPL renders the converted program in the MPL-like text form of the
// paper's Listing 5.
func (c *Compiled) MPL() string { return codegen.EmitMPL(c.Program) }

// EmitGo renders the converted program as a standalone, buildable Go
// main package (the §5 future-work code generator, with Go standing in
// for MPL). defaultN is the default machine width of the generated
// program's -n flag. Requires ≤ 64 MIMD states.
func (c *Compiled) EmitGo(defaultN int) (string, error) {
	return gobackend.Emit(c.Program, defaultN)
}

// DotStateGraph renders the MIMD state graph (Figure 1 style) in
// Graphviz dot.
func (c *Compiled) DotStateGraph(title string) string { return c.Graph.Dot(title) }

// DotAutomaton renders the meta-state automaton (Figures 2/5/6 style)
// in Graphviz dot.
func (c *Compiled) DotAutomaton(title string) string { return c.Automaton.Dot(title) }

// DotProfile renders the meta-state automaton as a Graphviz hot-spot
// heatmap, coloring each state by its share of the run's total cycles
// (res must come from RunSIMD on this Compiled).
func (c *Compiled) DotProfile(title string, res *simd.Result) string {
	share := make([]float64, len(res.MetaStats))
	for i, st := range res.MetaStats {
		if res.Time > 0 {
			share[i] = float64(st.Cycles) / float64(res.Time)
		}
	}
	return c.Automaton.DotHeat(title, share)
}

// Slot returns the memory slot of a global variable, for reading
// results out of run memory images. The boolean reports existence.
func (c *Compiled) Slot(name string) (int, bool) {
	s, ok := c.Graph.VarSlot[name]
	return s, ok
}

// MetaStates returns the number of meta states in the automaton.
func (c *Compiled) MetaStates() int { return c.Automaton.NumStates() }

// MIMDStates returns the number of MIMD states in the (possibly
// time-split) state graph the automaton was built over.
func (c *Compiled) MIMDStates() int { return c.Automaton.G.NumBlocks() }
