// Package msc is a complete implementation of Meta-State Conversion
// (H. G. Dietz, "Meta-State Conversion", Purdue TR-EE 93-6 / ICPP 1993):
// a compiler that converts control-parallel MIMD (SPMD) programs into
// pure SIMD code by building a finite automaton over "meta states" —
// aggregate sets of simultaneously occupied per-processor states.
//
// The pipeline is
//
//	MIMDC source ──parse/analyze──▶ MIMD state graph (basic blocks)
//	            ──meta-state conversion──▶ meta-state automaton
//	            ──SIMD coding (CSI, hashed multiway branches)──▶ SIMD program
//
// and the package bundles three execution engines for evaluation:
//
//   - the SIMD machine itself (one control unit, N PEs, global-or,
//     router) executing the converted program;
//   - a MIMD reference machine (one pc per processor) providing golden
//     results and ideal-MIMD timing;
//   - the §1.1 baseline: a MIMD interpreter running on the SIMD machine,
//     paying fetch/decode/serialization overhead and per-PE program
//     memory.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-artifact reproductions.
package msc

import (
	"fmt"
	"io"

	"msc/internal/cfg"
	"msc/internal/codegen"
	"msc/internal/gobackend"
	"msc/internal/interp"
	"msc/internal/mimdc"
	"msc/internal/mimdsim"
	metastate "msc/internal/msc"
	"msc/internal/simd"
)

// Config selects the conversion and encoding options.
type Config struct {
	// Compress applies §2.5 meta-state compression (both successors
	// always taken; unconditional transitions; subset states merged).
	Compress bool
	// TimeSplit applies the §2.4 MIMD-state time-splitting heuristic.
	// SplitDelta and SplitPercent tune it (0 means the paper defaults:
	// 4 cycles and 75%).
	TimeSplit    bool
	SplitDelta   int
	SplitPercent int
	// BarrierExact tracks barrier occupancy exactly instead of the §2.6
	// filtering; sound for programs where distinct barriers are
	// simultaneously occupied, at the cost of more meta states.
	BarrierExact bool
	// ExpandCalls expands non-recursive calls in-line per §2.2 instead
	// of sharing one copy with return-token dispatch.
	ExpandCalls bool
	// CSI applies common subexpression induction (§3.1) to meta-state
	// bodies; Hash encodes multiway branches with customized hash
	// functions and jump tables (§3.2).
	CSI  bool
	Hash bool
	// MaxStates guards the meta-state explosion (default 65536).
	MaxStates int
}

// DefaultConfig is the recommended production configuration: the
// compressed automaton with both SIMD coding optimizations.
func DefaultConfig() Config {
	return Config{Compress: true, CSI: true, Hash: true}
}

// Compiled is a fully converted program with every intermediate stage
// retained for inspection.
type Compiled struct {
	Source    string
	AST       *mimdc.Program
	Graph     *cfg.Graph
	Automaton *metastate.Automaton
	Program   *simd.Program
	Config    Config
}

// Compile runs the whole pipeline on MIMDC source.
func Compile(source string, conf Config) (*Compiled, error) {
	ast, err := mimdc.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("msc: parse: %w", err)
	}
	if err := mimdc.Analyze(ast); err != nil {
		return nil, fmt.Errorf("msc: analyze: %w", err)
	}
	g, err := cfg.BuildWith(ast, cfg.Options{ExpandCalls: conf.ExpandCalls})
	if err != nil {
		return nil, fmt.Errorf("msc: lower: %w", err)
	}
	cfg.Simplify(g)
	if err := cfg.Verify(g); err != nil {
		return nil, fmt.Errorf("msc: internal error: %w", err)
	}

	mopt := metastate.DefaultOptions(conf.Compress)
	mopt.TimeSplit = conf.TimeSplit
	if conf.SplitDelta != 0 {
		mopt.SplitDelta = conf.SplitDelta
	}
	if conf.SplitPercent != 0 {
		mopt.SplitPercent = conf.SplitPercent
	}
	mopt.BarrierExact = conf.BarrierExact
	if conf.MaxStates != 0 {
		mopt.MaxStates = conf.MaxStates
	}
	a, err := metastate.Convert(g, mopt)
	if err != nil {
		return nil, fmt.Errorf("msc: convert: %w", err)
	}
	if err := metastate.Check(a); err != nil {
		return nil, fmt.Errorf("msc: internal error: %w", err)
	}

	p, err := codegen.Compile(a, codegen.Options{Hash: conf.Hash, CSI: conf.CSI})
	if err != nil {
		return nil, fmt.Errorf("msc: codegen: %w", err)
	}
	return &Compiled{
		Source:    source,
		AST:       ast,
		Graph:     g,
		Automaton: a,
		Program:   p,
		Config:    conf,
	}, nil
}

// MustCompile compiles and panics on error; for examples and tests.
func MustCompile(source string, conf Config) *Compiled {
	c, err := Compile(source, conf)
	if err != nil {
		panic(err)
	}
	return c
}

// RunConfig selects the machine shape for an execution.
type RunConfig struct {
	// N is the machine width. InitialActive PEs start in main (0 = all);
	// the remainder wait in the free pool for spawn (§3.2.5).
	N             int
	InitialActive int
	// Trace, when non-nil, receives one line per meta-state execution
	// (SIMD engine only). Timeline, when non-nil, receives a per-PE
	// occupancy row per meta-state execution.
	Trace    io.Writer
	Timeline io.Writer
}

// RunSIMD executes the converted program on the SIMD machine.
func (c *Compiled) RunSIMD(rc RunConfig) (*simd.Result, error) {
	return simd.Run(c.Program, simd.Config{
		N: rc.N, InitialActive: rc.InitialActive,
		Trace: rc.Trace, Timeline: rc.Timeline,
	})
}

// RunMIMD executes the MIMD state graph on the MIMD reference machine
// (ideal MIMD: one pc per processor, runtime barrier cost).
func (c *Compiled) RunMIMD(rc RunConfig) (*mimdsim.Result, error) {
	return mimdsim.Run(c.Graph, mimdsim.Config{N: rc.N, InitialActive: rc.InitialActive})
}

// RunInterp executes the §1.1 baseline: the MIMD program interpreted on
// the SIMD machine.
func (c *Compiled) RunInterp(rc RunConfig) (*interp.Result, error) {
	return interp.Run(c.Graph, interp.Config{N: rc.N, InitialActive: rc.InitialActive})
}

// MPL renders the converted program in the MPL-like text form of the
// paper's Listing 5.
func (c *Compiled) MPL() string { return codegen.EmitMPL(c.Program) }

// EmitGo renders the converted program as a standalone, buildable Go
// main package (the §5 future-work code generator, with Go standing in
// for MPL). defaultN is the default machine width of the generated
// program's -n flag. Requires ≤ 64 MIMD states.
func (c *Compiled) EmitGo(defaultN int) (string, error) {
	return gobackend.Emit(c.Program, defaultN)
}

// DotStateGraph renders the MIMD state graph (Figure 1 style) in
// Graphviz dot.
func (c *Compiled) DotStateGraph(title string) string { return c.Graph.Dot(title) }

// DotAutomaton renders the meta-state automaton (Figures 2/5/6 style)
// in Graphviz dot.
func (c *Compiled) DotAutomaton(title string) string { return c.Automaton.Dot(title) }

// Slot returns the memory slot of a global variable, for reading
// results out of run memory images. The boolean reports existence.
func (c *Compiled) Slot(name string) (int, bool) {
	s, ok := c.Graph.VarSlot[name]
	return s, ok
}

// MetaStates returns the number of meta states in the automaton.
func (c *Compiled) MetaStates() int { return c.Automaton.NumStates() }

// MIMDStates returns the number of MIMD states in the (possibly
// time-split) state graph the automaton was built over.
func (c *Compiled) MIMDStates() int { return c.Automaton.G.NumBlocks() }
