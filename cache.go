package msc

// The artifact-cache front end for the compile pipeline: Config.Cache
// routes CompileContext through an on-disk content-addressed store
// (internal/cache) of codec-encoded compile results (internal/artifact),
// with single-flight deduplication of concurrent identical compiles.
// The cache is strictly an accelerator — every failure in this file
// degrades to a real compile, recorded but never fatal. docs/CACHE.md
// is the design document.

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"msc/internal/artifact"
	"msc/internal/cache"
	"msc/internal/ir"
	"msc/internal/mscerr"
	"msc/internal/obs"
	"msc/internal/telemetry"
)

// Cache is an open artifact cache usable from any number of goroutines
// and Configs. It wraps the on-disk store with the compile-level
// concerns: key derivation from (source, Config), single-flight
// deduplication, Compiled↔artifact conversion, and graceful
// degradation bookkeeping.
type Cache struct {
	store *cache.Store

	mu      sync.Mutex
	flights map[string]*flight

	shared atomic.Int64 // single-flight results served to waiters
}

// flight is one in-progress compile of a particular cache key. Waiters
// block on done; the leader fills c/err and reports whether it failed
// only because its own context died (waiters then retry rather than
// inheriting a cancellation that was never theirs).
type flight struct {
	done     chan struct{}
	c        *Compiled
	err      error
	canceled bool
}

// OpenCache opens (creating if needed) the artifact cache rooted at
// dir. The error is a *CacheError; callers that want "cache if
// possible" semantics can log it and compile with Config.Cache nil.
func OpenCache(dir string) (*Cache, error) {
	s, err := cache.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Cache{store: s, flights: make(map[string]*flight)}, nil
}

// Dir returns the cache's root directory.
func (cc *Cache) Dir() string { return cc.store.Dir() }

// CacheStats is a point-in-time view of a Cache: the store's counters
// plus the compile-level single-flight numbers.
type CacheStats struct {
	Hits               int64  `json:"hits"`
	Misses             int64  `json:"misses"`
	Errors             int64  `json:"errors"`
	Quarantined        int64  `json:"quarantined"`
	Entries            int    `json:"entries"`
	Generation         uint64 `json:"generation"`
	SingleFlightShared int64  `json:"singleflight_shared"`
	ActiveFlights      int    `json:"active_flights"`
}

// Stats returns the current counters.
func (cc *Cache) Stats() CacheStats {
	st := cc.store.Stats()
	cc.mu.Lock()
	active := len(cc.flights)
	cc.mu.Unlock()
	return CacheStats{
		Hits:               st.Hits,
		Misses:             st.Misses,
		Errors:             st.Errors,
		Quarantined:        st.Quarantined,
		Entries:            st.Entries,
		Generation:         st.Generation,
		SingleFlightShared: cc.shared.Load(),
		ActiveFlights:      active,
	}
}

// activeFlights reports in-progress single-flight compiles (tests use
// it to prove flights never leak, even across leader cancellation).
func (cc *Cache) activeFlights() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.flights)
}

// cacheKey derives the content address of a compile: the SHA-256 of the
// source and the fingerprint of every result-affecting Config knob.
func cacheKey(source string, conf Config) artifact.Key {
	return artifact.Key{
		SourceHash: sha256.Sum256([]byte(source)),
		ConfigFP:   configFingerprint(conf),
	}
}

// configFingerprint hashes the Config fields that can change the
// compiled result. It hashes the *effective* conversion options (via
// conversionOptions, the same helper the pipeline uses) so the
// fingerprint cannot drift from what the converter actually does, plus
// the front-end and codegen knobs. Vet participates because a Vet=true
// request must not be satisfied by a Vet=false success cached for a
// program with error-severity diagnostics. Deliberately excluded:
// ConvertWorkers (the automaton is byte-identical for any worker
// count), Verify (checks invariants, changes nothing), Limits.Deadline
// and Degrade (degraded results are never stored), and the
// observability hooks.
func configFingerprint(conf Config) [32]byte {
	mopt := conversionOptions(conf)
	h := sha256.New()
	fmt.Fprintf(h, "fp1|compress=%t|merge=%t|timesplit=%t|delta=%d|pct=%d|bexact=%t|maxstates=%d|restarts=%d|retsubsets=%d|mem=%d|expand=%t|csi=%t|maxcsi=%d|hash=%t|opt=%d|vet=%t",
		mopt.Compress, mopt.MergeSubsets, mopt.TimeSplit, mopt.SplitDelta,
		mopt.SplitPercent, mopt.BarrierExact, mopt.MaxStates, mopt.MaxRestarts,
		mopt.MaxRetSubsets, mopt.MaxMemBytes,
		conf.ExpandCalls, conf.CSI, conf.Limits.MaxCSICandidates, conf.Hash, conf.Opt, conf.Vet)
	var fp [32]byte
	h.Sum(fp[:0])
	return fp
}

// Fingerprint returns the hex digest of the compile result itself —
// graph, automaton, and SIMD program, stats excluded — so tests and the
// determinism gate can assert cold, warm, and recovered compiles are
// byte-identical.
func (c *Compiled) Fingerprint() string {
	return artifact.Fingerprint(&artifact.Artifact{
		Graph:     c.Graph,
		Automaton: c.Automaton,
		Program:   c.Program,
	})
}

// compile is the cached CompileContext: single-flight around
// (store lookup → real compile → store write-back).
func (cc *Cache) compile(ctx context.Context, source string, conf Config) (*Compiled, error) {
	// The hit path and the miss path must share one recorder, so the
	// caller sees cache.* counters either way.
	if conf.Metrics == nil {
		conf.Metrics = obs.NewRecorder()
	}
	key := cacheKey(source, conf)
	name := cache.Name(key)
	for {
		cc.mu.Lock()
		if fl, ok := cc.flights[name]; ok {
			cc.mu.Unlock()
			select {
			case <-fl.done:
				if fl.err != nil {
					if fl.canceled && ctx.Err() == nil {
						// The leader died of its own cancellation; this
						// waiter's context is still live, so it promotes
						// itself to leader and compiles.
						continue
					}
					return nil, fl.err
				}
				conf.Metrics.Add(obs.CounterCacheShared, 1)
				cc.shared.Add(1)
				return fl.c.sharedCopy(), nil
			case <-ctx.Done():
				return nil, fmt.Errorf("msc: canceled waiting for in-flight compile: %w", ctx.Err())
			}
		}
		fl := &flight{done: make(chan struct{})}
		cc.flights[name] = fl
		cc.mu.Unlock()

		c, err := cc.leaderCompile(ctx, source, conf, key, name)
		fl.c, fl.err = c, err
		fl.canceled = err != nil && ctx.Err() != nil
		cc.mu.Lock()
		delete(cc.flights, name)
		cc.mu.Unlock()
		close(fl.done)
		return c, err
	}
}

// leaderCompile does the real work of one flight: consult the store,
// fall through to the pipeline on anything but a verified hit, and
// store the result back when it is cacheable.
func (cc *Cache) leaderCompile(ctx context.Context, source string, conf Config, key artifact.Key, name string) (*Compiled, error) {
	rec := conf.Metrics
	var cacheErrs []string
	absorb := func(err error) {
		cacheErrs = append(cacheErrs, err.Error())
		rec.Add(obs.CounterCacheErrors, 1)
		var ce *mscerr.CacheError
		if errors.As(err, &ce) && ce.Op == "quarantine" {
			rec.Add(obs.CounterCacheQuarantined, 1)
		}
	}

	a, err := cc.store.Get(key)
	switch {
	case err != nil:
		absorb(err)
	case a != nil:
		c, derr := artifactToCompiled(a, source, conf)
		if derr == nil {
			rec.Add(obs.CounterCacheHits, 1)
			span := conf.Tracer.StartSpan("compile", conf.TraceParent,
				telemetry.Int("source_bytes", int64(len(source))))
			span.Event("cache_hit", telemetry.String("key", name))
			span.End()
			c.Stats.CacheOutcome = "hit"
			c.Stats.CacheErrors = cacheErrs
			return c, nil
		}
		// The stream verified but would not rehydrate — a codec bug or
		// a schema drift the version failed to catch. Absorb and compile.
		absorb(&mscerr.CacheError{Op: "decode", Key: name, Err: derr})
	default:
		rec.Add(obs.CounterCacheMisses, 1)
	}

	c, err := compileFull(ctx, source, conf)
	if err != nil {
		return nil, err
	}
	c.Stats.CacheOutcome = "uncached"
	if len(c.Degradations) == 0 {
		// Degraded results are never stored: they reflect this process's
		// budget pressure, not the (source, config) identity, and caching
		// one would serve a cheaper automaton to an unconstrained caller.
		if art, aerr := compiledToArtifact(c); aerr != nil {
			absorb(&mscerr.CacheError{Op: "encode", Key: name, Err: aerr})
		} else if perr := cc.store.Put(key, art); perr != nil {
			absorb(perr)
		} else {
			rec.Add(obs.CounterCacheStores, 1)
			c.Stats.CacheOutcome = "stored"
		}
	}
	c.Stats.CacheErrors = cacheErrs
	return c, nil
}

// sharedCopy returns the shallow copy handed to a single-flight waiter:
// same immutable compile results, own Stats so the outcome annotation
// does not race with the leader's copy.
func (c *Compiled) sharedCopy() *Compiled {
	cp := *c
	if c.Stats != nil {
		st := *c.Stats
		st.CacheOutcome = "singleflight-shared"
		cp.Stats = &st
	}
	return &cp
}

// cachedMeta is the stats-section payload: everything about a Compiled
// that is not covered by the graph/automaton/program sections.
// Diagnostics need the wrapper because Diagnostic.Sev is deliberately
// excluded from its JSON form (`json:"-"`) — the service renders
// severity as a label — but a cache hit must restore it exactly.
type cachedMeta struct {
	Stats       *CompileStats `json:"stats"`
	Diagnostics []cachedDiag  `json:"diagnostics,omitempty"`
}

type cachedDiag struct {
	Pos   ir.Pos `json:"pos"`
	Sev   uint8  `json:"sev"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

// compiledToArtifact packages a fresh compile for storage. Only
// undegraded results reach here, so Degradations is not serialized.
func compiledToArtifact(c *Compiled) (*artifact.Artifact, error) {
	meta := cachedMeta{Stats: c.Stats}
	for _, d := range c.Diagnostics {
		meta.Diagnostics = append(meta.Diagnostics, cachedDiag{
			Pos: d.Pos, Sev: uint8(d.Sev), Check: d.Check, Msg: d.Msg,
		})
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	return &artifact.Artifact{
		Graph:     c.Graph,
		Automaton: c.Automaton,
		Program:   c.Program,
		StatsJSON: blob,
	}, nil
}

// artifactToCompiled rehydrates a stored compile for the requesting
// caller. The AST is the one pipeline product the codec does not carry
// — nothing downstream of compilation uses it — so hits return a
// Compiled with AST nil (documented on Config.Cache).
func artifactToCompiled(a *artifact.Artifact, source string, conf Config) (*Compiled, error) {
	var meta cachedMeta
	if err := json.Unmarshal(a.StatsJSON, &meta); err != nil {
		return nil, fmt.Errorf("stats blob: %w", err)
	}
	if meta.Stats == nil {
		meta.Stats = &CompileStats{}
	}
	c := &Compiled{
		Source:    source,
		Graph:     a.Graph,
		Automaton: a.Automaton,
		Program:   a.Program,
		Config:    conf,
		Stats:     meta.Stats,
	}
	for _, d := range meta.Diagnostics {
		c.Diagnostics = append(c.Diagnostics, Diagnostic{
			Pos: d.Pos, Sev: Severity(d.Sev), Check: d.Check, Msg: d.Msg,
		})
	}
	return c, nil
}
