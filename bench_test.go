// Benchmarks: one per reproduced paper artifact (see EXPERIMENTS.md and
// DESIGN.md's experiments index). Each reports the relevant shape metric
// via b.ReportMetric in addition to wall-clock cost, so
// `go test -bench=. -benchmem` regenerates the evaluation's headline
// numbers.
package msc_test

import (
	"testing"

	"msc"
	"msc/internal/harness"
	"msc/internal/hashgen"
	metastate "msc/internal/msc"
	"msc/internal/obs"
	"msc/internal/progen"
	"msc/internal/telemetry"
)

// BenchmarkF1CFGConstruction: Figure 1 — building the 4-state MIMD
// graph for Listing 1.
func BenchmarkF1CFGConstruction(b *testing.B) {
	b.ReportAllocs()
	var states int
	for i := 0; i < b.N; i++ {
		c := msc.MustCompile(harness.Listing4, msc.Config{})
		states = c.MIMDStates()
	}
	b.ReportMetric(float64(states), "MIMDstates")
}

// BenchmarkF2BaseConversion: Figure 2 — the 8-meta-state base
// conversion of Listing 1.
func BenchmarkF2BaseConversion(b *testing.B) {
	c := msc.MustCompile(harness.Listing4, msc.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		a := metastate.MustConvert(c.Graph, metastate.DefaultOptions(false))
		states = a.NumStates()
	}
	b.ReportMetric(float64(states), "metastates")
}

// BenchmarkF4TimeSplitting: Figures 3-4 — converting the imbalanced
// branch with the §2.4 splitting heuristic (includes its restarts).
func BenchmarkF4TimeSplitting(b *testing.B) {
	src := harness.Imbalance(40)
	b.ReportAllocs()
	var splits int
	for i := 0; i < b.N; i++ {
		c := msc.MustCompile(src, msc.Config{TimeSplit: true})
		splits = c.Automaton.Splits
	}
	b.ReportMetric(float64(splits), "splits")
}

// BenchmarkF5Compression: Figure 5 — the 2-meta-state compressed
// conversion of Listing 1.
func BenchmarkF5Compression(b *testing.B) {
	c := msc.MustCompile(harness.Listing4, msc.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		a := metastate.MustConvert(c.Graph, metastate.DefaultOptions(true))
		states = a.NumStates()
	}
	b.ReportMetric(float64(states), "metastates")
}

// BenchmarkF6Barrier: Figure 6 — the 5-meta-state barrier conversion of
// Listing 3.
func BenchmarkF6Barrier(b *testing.B) {
	c := msc.MustCompile(harness.Listing3, msc.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		a := metastate.MustConvert(c.Graph, metastate.DefaultOptions(false))
		states = a.NumStates()
	}
	b.ReportMetric(float64(states), "metastates")
}

// BenchmarkL5CodeGeneration: Listing 5 — full SIMD coding of Listing 4
// (CSI + hashed multiway branches + MPL emission).
func BenchmarkL5CodeGeneration(b *testing.B) {
	b.ReportAllocs()
	var chars int
	for i := 0; i < b.N; i++ {
		c := msc.MustCompile(harness.Listing4, msc.Config{CSI: true, Hash: true})
		chars = len(c.MPL())
	}
	b.ReportMetric(float64(chars), "MPLbytes")
}

// BenchmarkE1StateExplosion: §1.2 — base conversion of 5 sequential
// divergent loops (4^5 = 1024 meta states) vs the compressed automaton.
func BenchmarkE1StateExplosion(b *testing.B) {
	src := harness.SeqLoops(5, false)
	b.Run("base", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			states = msc.MustCompile(src, msc.Config{}).MetaStates()
		}
		b.ReportMetric(float64(states), "metastates")
	})
	b.Run("compressed", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			states = msc.MustCompile(src, msc.Config{Compress: true}).MetaStates()
		}
		b.ReportMetric(float64(states), "metastates")
	})
	b.Run("barriers", func(b *testing.B) {
		var states int
		for i := 0; i < b.N; i++ {
			states = msc.MustCompile(harness.SeqLoops(5, true), msc.Config{}).MetaStates()
		}
		b.ReportMetric(float64(states), "metastates")
	})
}

// BenchmarkE2Utilization: §2.4 — SIMD execution of the imbalanced
// branch with and without time splitting; the metric is the §2.4 wait
// fraction (live-but-disabled PE cycles).
func BenchmarkE2Utilization(b *testing.B) {
	src := harness.Imbalance(20)
	for _, mode := range []struct {
		name  string
		split bool
	}{{"nosplit", false}, {"timesplit", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c := msc.MustCompile(src, msc.Config{TimeSplit: mode.split, CSI: true})
			b.ResetTimer()
			var wait float64
			for i := 0; i < b.N; i++ {
				res, err := c.RunSIMD(msc.RunConfig{N: 16})
				if err != nil {
					b.Fatal(err)
				}
				wait = res.WaitFraction()
			}
			b.ReportMetric(wait*100, "wait%")
		})
	}
}

// BenchmarkE3InterpVsMSC: §1.1 vs §1.2 — simulated machine cycles for
// the interpreter baseline and the converted program on the collatz
// workload (the metric is their simulated-cycle count).
func BenchmarkE3InterpVsMSC(b *testing.B) {
	c := msc.MustCompile(harness.Collatz, msc.DefaultConfig())
	rc := msc.RunConfig{N: 16}
	b.Run("interp", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			res, err := c.RunInterp(rc)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Time
		}
		b.ReportMetric(float64(cycles), "simcycles")
	})
	b.Run("msc", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			res, err := c.RunSIMD(rc)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Time
		}
		b.ReportMetric(float64(cycles), "simcycles")
	})
	b.Run("idealmimd", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			res, err := c.RunMIMD(rc)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Time
		}
		b.ReportMetric(float64(cycles), "simcycles")
	})
}

// BenchmarkE4HashDispatch: §3.2.3 — finding a customized hash for a
// five-way meta-state switch and dispatching through it, vs the linear
// compare chain cost model.
func BenchmarkE4HashDispatch(b *testing.B) {
	keys := []uint64{1<<2 | 1<<6, 1 << 9, 1<<6 | 1<<9, 1<<2 | 1<<9, 1<<2 | 1<<6 | 1<<9}
	b.Run("find", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hashgen.Find(keys); err != nil {
				b.Fatal(err)
			}
		}
	})
	h, err := hashgen.Find(keys)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dispatch", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += h.Index(keys[i%len(keys)])
		}
		_ = sink
		b.ReportMetric(float64(h.EvalCost), "hashcycles")
		b.ReportMetric(float64(hashgen.LinearDispatchCost(len(keys))), "chaincycles")
	})
}

// BenchmarkE5CSI: §3.1 — SIMD cycles with and without common
// subexpression induction on the divergent workload.
func BenchmarkE5CSI(b *testing.B) {
	for _, mode := range []struct {
		name string
		csi  bool
	}{{"serial", false}, {"csi", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c := msc.MustCompile(harness.Divergent, msc.Config{Hash: true, CSI: mode.csi})
			b.ResetTimer()
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := c.RunSIMD(msc.RunConfig{N: 16})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Time
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// BenchmarkE6Spawn: §3.2.5 — the task-farm workload with spawn/halt
// over the free-PE pool.
func BenchmarkE6Spawn(b *testing.B) {
	c := msc.MustCompile(harness.Farm, msc.DefaultConfig())
	b.ResetTimer()
	var metaExecs int64
	for i := 0; i < b.N; i++ {
		res, err := c.RunSIMD(msc.RunConfig{N: 8, InitialActive: 1})
		if err != nil {
			b.Fatal(err)
		}
		metaExecs = res.MetaExecs
	}
	b.ReportMetric(float64(metaExecs), "metaexecs")
}

// BenchmarkE7BarrierCost: §5 — explicit MIMD barrier cycles vs the
// converted program's zero-cost implicit synchronization.
func BenchmarkE7BarrierCost(b *testing.B) {
	c := msc.MustCompile(harness.BarrierPhases(6), msc.DefaultConfig())
	b.Run("mimd", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			res, err := c.RunMIMD(msc.RunConfig{N: 16})
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Time
		}
		b.ReportMetric(float64(cycles), "simcycles")
	})
	b.Run("msc", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			res, err := c.RunSIMD(msc.RunConfig{N: 16})
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Time
		}
		b.ReportMetric(float64(cycles), "simcycles")
	})
}

// BenchmarkPipeline measures the full compiler pipeline end to end on a
// realistic workload.
func BenchmarkPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := msc.Compile(harness.Stencil, msc.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benchmarks (design choices; see DESIGN.md) -------------------

// BenchmarkA1CallTreatment: §2.2 — shared-copy return tokens vs per-site
// in-line expansion on a call-heavy workload.
func BenchmarkA1CallTreatment(b *testing.B) {
	for _, mode := range []struct {
		name   string
		expand bool
	}{{"sharedcopy", false}, {"expand", true}} {
		b.Run(mode.name, func(b *testing.B) {
			c := msc.MustCompile(harness.GCD, msc.Config{Compress: true, CSI: true, ExpandCalls: mode.expand})
			b.ResetTimer()
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := c.RunSIMD(msc.RunConfig{N: 16})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Time
			}
			b.ReportMetric(float64(cycles), "simcycles")
			b.ReportMetric(float64(c.MIMDStates()), "MIMDstates")
		})
	}
}

// BenchmarkA2BarrierModes: §2.6 — paper filtering vs exact occupancy
// conversion cost and automaton size.
func BenchmarkA2BarrierModes(b *testing.B) {
	src := harness.BarrierPhases(4)
	for _, mode := range []struct {
		name  string
		exact bool
	}{{"filtering", false}, {"exact", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				c := msc.MustCompile(src, msc.Config{BarrierExact: mode.exact})
				states = c.MetaStates()
			}
			b.ReportMetric(float64(states), "metastates")
		})
	}
}

// BenchmarkA3SubsetMerge: §2.5 — compressed conversion with and without
// folding subset states into supersets.
func BenchmarkA3SubsetMerge(b *testing.B) {
	g := msc.MustCompile(harness.SeqLoops(5, false), msc.Config{}).Graph
	for _, mode := range []struct {
		name  string
		merge bool
	}{{"merge", true}, {"nomerge", false}} {
		b.Run(mode.name, func(b *testing.B) {
			opt := metastate.DefaultOptions(true)
			opt.MergeSubsets = mode.merge
			b.ResetTimer()
			var states int
			for i := 0; i < b.N; i++ {
				a := metastate.MustConvert(g, opt)
				states = a.NumStates()
			}
			b.ReportMetric(float64(states), "metastates")
		})
	}
}

// benchRandGraph compiles a randomized progen program (barriers,
// floats, calls, depth-4 nesting) as a conversion stressor.
func benchRandGraph(b *testing.B, seed int64) *msc.Compiled {
	b.Helper()
	src := progen.Source(progen.Params{
		Seed: seed, Barriers: true, Floats: true, Calls: true,
		MaxDepth: 4, MaxStmts: 8, Vars: 6, LoopTrip: 4,
	})
	return msc.MustCompile(src, msc.DefaultConfig())
}

// BenchmarkP1ConvertLarge: the conversion core on a large base-mode
// workload (6 sequential divergent loops, ~1.5k meta states), sequential
// vs worker pool. The parallel variant must produce the identical
// automaton (TestParallelDeterministicCorpus), so this measures pure
// wall-clock of the concurrent frontier.
func BenchmarkP1ConvertLarge(b *testing.B) {
	g := msc.MustCompile(harness.SeqLoops(6, false), msc.Config{}).Graph
	for _, mode := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			opt := metastate.DefaultOptions(false)
			opt.Workers = mode.workers
			b.ReportAllocs()
			b.ResetTimer()
			var states int
			for i := 0; i < b.N; i++ {
				a := metastate.MustConvert(g, opt)
				states = a.NumStates()
			}
			b.ReportMetric(float64(states), "metastates")
		})
	}
}

// BenchmarkP2ConvertToGuard: throughput into the §1.2 explosion guard —
// a random program whose base conversion exceeds MaxStates, so the
// benchmark measures how fast the converter fills 16k states and stops.
func BenchmarkP2ConvertToGuard(b *testing.B) {
	g := benchRandGraph(b, 9).Graph
	opt := metastate.DefaultOptions(false)
	opt.MaxStates = 1 << 14
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metastate.Convert(g, opt); err == nil {
			b.Fatal("expected explosion guard")
		}
	}
	b.ReportMetric(float64(opt.MaxStates), "metastates")
}

// BenchmarkP3ConvertRandomCompressed: compressed conversion plus subset
// merging on a 379-block random program.
func BenchmarkP3ConvertRandomCompressed(b *testing.B) {
	g := benchRandGraph(b, 19).Graph
	b.ReportAllocs()
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		a := metastate.MustConvert(g, metastate.DefaultOptions(true))
		states = a.NumStates()
	}
	b.ReportMetric(float64(states), "metastates")
}

// BenchmarkP4TimeSplitLarge: §2.4 warm restarts — a 60-multiply
// imbalance forces a long split/restart chain, exercising interner
// reuse, meta-state recycling, and contribution-memo invalidation.
func BenchmarkP4TimeSplitLarge(b *testing.B) {
	src := harness.Imbalance(60)
	b.ReportAllocs()
	var splits int
	for i := 0; i < b.N; i++ {
		c := msc.MustCompile(src, msc.Config{TimeSplit: true})
		splits = c.Automaton.Splits
	}
	b.ReportMetric(float64(splits), "splits")
}

// ---- Telemetry overhead (see docs/OBSERVABILITY.md) ------------------------

// BenchmarkTelemetryDisabled is the baseline the disabled-path claim is
// measured against: a full compile + SIMD run with no tracer, no
// profiler, and no metrics attached. Every telemetry hook on this path
// must reduce to a nil pointer compare.
func BenchmarkTelemetryDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := msc.Compile(harness.Divergent, msc.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.RunSIMD(msc.RunConfig{N: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryEnabled is the same workload with the full stack
// attached — tracer, metrics recorder, and exact (period-1) profiler —
// bounding what "everything on" costs relative to the baseline above.
func BenchmarkTelemetryEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := telemetry.NewTracer()
		rec := obs.NewRecorder()
		conf := msc.DefaultConfig()
		conf.Tracer = tr
		conf.Metrics = rec
		c, err := msc.Compile(harness.Divergent, conf)
		if err != nil {
			b.Fatal(err)
		}
		prof := telemetry.NewProfiler(1)
		if _, err := c.RunSIMD(msc.RunConfig{
			N: 16, Tracer: tr, Profiler: prof, Metrics: rec.Registry(),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpawnHeavy: the free-PE cursor's regression guard. A
// spawn-heavy generated program repeatedly claims and releases PEs at
// width 65536 from a single coordinator; the old spawn path re-scanned
// the idle set from PE 0 on every claim (O(N) each), the cursor makes
// the whole churn O(words) worst case and O(1) amortized.
func BenchmarkSpawnHeavy(b *testing.B) {
	src := progen.Source(progen.Params{Seed: 41, Spawns: 8, MaxDepth: 2, MaxStmts: 5})
	c := msc.MustCompile(src, msc.DefaultConfig())
	b.ResetTimer()
	var metaExecs int64
	for i := 0; i < b.N; i++ {
		res, err := c.RunSIMD(msc.RunConfig{N: 65536, InitialActive: 1})
		if err != nil {
			b.Fatal(err)
		}
		metaExecs = res.MetaExecs
	}
	b.ReportMetric(float64(metaExecs), "metaexecs")
}
