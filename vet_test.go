package msc_test

import (
	"strings"
	"testing"

	"msc"
	"msc/internal/harness"
)

const uninitSrc = `
void main()
{
    poly int x, y;
    y = x + 1;
    return;
}
`

// TestConfigVet checks the opt-in gate: the same erroneous program
// compiles without Vet (diagnostics attached) and fails with it.
func TestConfigVet(t *testing.T) {
	c, err := msc.Compile(uninitSrc, msc.Config{})
	if err != nil {
		t.Fatalf("compile without Vet: %v", err)
	}
	var errDiag *msc.Diagnostic
	for i, d := range c.Diagnostics {
		if d.Sev == msc.SevError {
			errDiag = &c.Diagnostics[i]
		}
	}
	if errDiag == nil {
		t.Fatalf("no error diagnostic attached, got %v", c.Diagnostics)
	}
	if errDiag.Check != "uninit" || errDiag.Pos.Line != 5 {
		t.Errorf("diagnostic = %s, want uninit at line 5", errDiag)
	}

	if _, err := msc.Compile(uninitSrc, msc.Config{Vet: true}); err == nil {
		t.Fatal("Compile succeeded with Vet on an erroneous program")
	} else if !strings.Contains(err.Error(), "vet") || !strings.Contains(err.Error(), "uninit") {
		t.Errorf("error %q does not mention vet/uninit", err)
	}
}

// TestConfigVetCleanSuite checks the zero-false-positive invariant at
// the API level: every standard workload compiles under Vet.
func TestConfigVetCleanSuite(t *testing.T) {
	for _, wl := range harness.Suite() {
		conf := msc.DefaultConfig()
		conf.Vet = true
		c, err := msc.Compile(wl.Source, conf)
		if err != nil {
			t.Errorf("%s: %v", wl.Name, err)
			continue
		}
		if c.Stats.VetErrors != 0 {
			t.Errorf("%s: VetErrors = %d, want 0", wl.Name, c.Stats.VetErrors)
		}
		if c.Stats.VetDiagnostics != int64(len(c.Diagnostics)) {
			t.Errorf("%s: VetDiagnostics = %d, len(Diagnostics) = %d",
				wl.Name, c.Stats.VetDiagnostics, len(c.Diagnostics))
		}
	}
}

// TestAnalyzeExport checks the library entry point against a compiled
// program's own artifacts.
func TestAnalyzeExport(t *testing.T) {
	c, err := msc.Compile(harness.Divergent, msc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	diags := msc.Analyze(c.Graph, c.Automaton)
	for _, d := range diags {
		if d.Sev == msc.SevError {
			t.Errorf("unexpected error on clean workload: %s", d)
		}
		if d.Check == "" || d.Msg == "" {
			t.Errorf("malformed diagnostic: %+v", d)
		}
	}
	// CFG-only analysis also works (no automaton).
	if got := msc.Analyze(c.Graph, nil); len(got) > len(diags) {
		t.Errorf("CFG-only analysis produced more diagnostics (%d) than the full suite (%d)", len(got), len(diags))
	}
}
