package msc_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"msc"
	"msc/internal/harness"
	"msc/internal/ir"
	"msc/internal/progen"
)

// This file is the optimizer's differential gate: Opt:2 (every rewrite
// pass to a fixed point, per-pass verifier on) must be observationally
// identical to Opt:0 on every engine, for the whole committed corpus
// and a fixed fleet of generated programs, while never growing the
// meta-state automaton on the committed corpus (see metaStatePolicy
// for the generated-program bound). Any observable divergence is a
// miscompile by definition.

// optConfigs returns the baseline and optimized compile configurations,
// identical except for the optimizer level. The optimized build always
// runs the cross-phase IR verifier so a pass that corrupts the graph
// fails here before it can miscompile.
func optConfigs() (base, opt msc.Config) {
	base = msc.DefaultConfig()
	opt = msc.DefaultConfig()
	opt.Opt = 2
	opt.Verify = true
	return base, opt
}

// metaStatePolicy selects the automaton-size assertion. The committed
// corpus gets the hard guarantee: Opt:2 never grows the automaton.
// Fixed-seed generated programs get a bounded-drift check instead:
// meta-state conversion is alignment-sensitive (deleting a reachable
// block shortens one path's generation count, so two divergent arms
// can stop reconverging in the same generation), and on rare random
// shapes a strictly smaller CFG converts to a few states more. The
// fuzz target checks no size bound at all — arbitrary adversarial
// shapes can drift arbitrarily — because its job is hunting
// miscompiles: observational equivalence, the soundness property, is
// always hard.
type metaStatePolicy int

const (
	metaNeverGrows   metaStatePolicy = iota // committed corpus: opt <= base
	metaBoundedDrift                        // fixed seeds: opt <= base + max(2, base/8)
	metaUnchecked                           // fuzzing: equivalence only
)

// optDiff compiles src both ways, runs both builds on all three
// engines, and fails on any observable difference. Observables are the
// source-level (global) variables: optimized code may legitimately
// leave different garbage in dead temporary slots.
func optDiff(t *testing.T, name, src string, rc msc.RunConfig, pol metaStatePolicy) {
	t.Helper()
	baseConf, optConf := optConfigs()

	cb, err := msc.Compile(src, baseConf)
	if err != nil {
		if strings.Contains(err.Error(), "exceeded") {
			t.Skipf("%s: baseline over state budget: %v", name, err)
		}
		t.Fatalf("%s: baseline compile: %v", name, err)
	}
	co, err := msc.Compile(src, optConf)
	if err != nil {
		t.Fatalf("%s: optimized compile: %v", name, err)
	}

	if pol != metaUnchecked {
		bound := cb.MetaStates()
		if pol == metaBoundedDrift {
			slack := bound / 8
			if slack < 2 {
				slack = 2
			}
			bound += slack
		}
		if co.MetaStates() > bound {
			t.Errorf("%s: optimizer grew the automaton: %d meta states vs %d baseline (bound %d)",
				name, co.MetaStates(), cb.MetaStates(), bound)
		}
	}

	engines := []struct {
		name string
		run  func(*msc.Compiled) (mem [][]ir.Word, err error)
	}{
		{"mimd", func(c *msc.Compiled) ([][]ir.Word, error) {
			r, err := c.RunMIMD(rc)
			if err != nil {
				return nil, err
			}
			return r.Mem, nil
		}},
		{"interp", func(c *msc.Compiled) ([][]ir.Word, error) {
			r, err := c.RunInterp(rc)
			if err != nil {
				return nil, err
			}
			return r.Mem, nil
		}},
		{"simd", func(c *msc.Compiled) ([][]ir.Word, error) {
			r, err := c.RunSIMD(rc)
			if err != nil {
				return nil, err
			}
			return r.Mem, nil
		}},
	}
	for _, eng := range engines {
		bm, berr := eng.run(cb)
		om, oerr := eng.run(co)
		if (berr != nil) != (oerr != nil) {
			t.Fatalf("%s/%s: runtime behavior diverged: baseline err=%v, optimized err=%v",
				name, eng.name, berr, oerr)
		}
		if berr != nil {
			// Both builds fault the same way (step budget, deadlock, ...):
			// equivalent, nothing to compare.
			continue
		}
		for varName, slot := range cb.Graph.VarSlot {
			for pe := range bm {
				if bm[pe][slot] != om[pe][slot] {
					t.Errorf("%s/%s: PE %d: %s = %d optimized vs %d baseline",
						name, eng.name, pe, varName, om[pe][slot], bm[pe][slot])
				}
			}
		}
	}
}

// corpusFiles returns every committed .mc program that is expected to
// compile and terminate: the examples and the clean vet corpus. The
// vet bad/ programs (deliberate deadlocks and faults) and the
// robustness corpus (deliberate non-termination) are excluded — they
// exercise error paths, not optimizer equivalence.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, dir := range []string{"examples/mc", "testdata/vet"} {
		matches, err := filepath.Glob(filepath.Join(dir, "*.mc"))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matches...)
	}
	if len(files) < 7 {
		t.Fatalf("found only %d corpus programs, corpus moved?", len(files))
	}
	return files
}

// TestOptDifferentialCorpus gates the optimizer against every committed
// corpus program.
func TestOptDifferentialCorpus(t *testing.T) {
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.ToSlash(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			optDiff(t, file, string(src), msc.RunConfig{N: 4}, metaNeverGrows)
		})
	}
}

// TestOptDifferentialSuite gates the optimizer against the harness
// workload suite at its native widths (including the spawn workload,
// which starts with one active PE).
func TestOptDifferentialSuite(t *testing.T) {
	for _, wl := range harness.Suite() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			optDiff(t, wl.Name, wl.Source,
				msc.RunConfig{N: wl.Width, InitialActive: wl.InitialActive},
				metaNeverGrows)
		})
	}
}

// TestOptDifferentialProgen gates the optimizer against 120 generated
// programs with fixed seeds sweeping the generator's shape space
// (barriers, floats, calls). Fixed seeds keep the gate deterministic;
// FuzzOptDifferential explores beyond them.
func TestOptDifferentialProgen(t *testing.T) {
	const programs = 120
	for seed := int64(0); seed < programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			src := progen.Source(progen.Params{
				Seed:     seed,
				Barriers: seed%2 == 0,
				Floats:   seed%3 == 0,
				Calls:    seed%5 == 0,
				MaxDepth: 2,
				MaxStmts: 5,
			})
			optDiff(t, "progen", src, msc.RunConfig{N: 4}, metaBoundedDrift)
		})
	}
}

// FuzzOptDifferential drives the same Opt:2-vs-Opt:0 equivalence from
// fuzzed generator seeds, so the fuzzer searches for a program shape
// the fixed-seed gate misses.
func FuzzOptDifferential(f *testing.F) {
	f.Add(int64(1), true, false, false)
	f.Add(int64(2), false, false, true)
	f.Add(int64(3), true, true, false)
	f.Add(int64(17), false, false, false)
	f.Add(int64(99), true, false, true)
	f.Fuzz(func(t *testing.T, seed int64, barriers, floats, calls bool) {
		src := progen.Source(progen.Params{
			Seed: seed, Barriers: barriers, Floats: floats, Calls: calls,
			MaxDepth: 2, MaxStmts: 4,
		})
		optDiff(t, "fuzz", src, msc.RunConfig{N: 4}, metaUnchecked)
	})
}
