package msc_test

import (
	"strings"
	"testing"

	"msc"
	"msc/internal/harness"
)

func TestCompilePipeline(t *testing.T) {
	c, err := msc.Compile(harness.Divergent, msc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.AST == nil || c.Graph == nil || c.Automaton == nil || c.Program == nil {
		t.Fatal("pipeline stages missing")
	}
	if c.MIMDStates() <= 0 || c.MetaStates() <= 0 {
		t.Fatal("no states")
	}
	if _, ok := c.Slot("x"); !ok {
		t.Fatal("Slot lookup failed")
	}
	if _, ok := c.Slot("nonexistent"); ok {
		t.Fatal("Slot invented a variable")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"void main( {", "parse"},
		{"void main() { x = 1; }", "analyze"},
		{"void f() {}", "no main"},
	}
	for _, c := range cases {
		_, err := msc.Compile(c.src, msc.Config{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic on bad source")
		}
	}()
	msc.MustCompile("@@", msc.Config{})
}

func TestArtifactEmission(t *testing.T) {
	c := msc.MustCompile(harness.Listing4, msc.Config{CSI: true, Hash: true})
	if !strings.Contains(c.MPL(), "globalor") {
		t.Error("MPL output missing globalor")
	}
	if !strings.Contains(c.DotStateGraph("t"), "digraph") {
		t.Error("state graph dot broken")
	}
	if !strings.Contains(c.DotAutomaton("t"), "digraph") {
		t.Error("automaton dot broken")
	}
}

func TestConfigKnobsReachPipeline(t *testing.T) {
	base := msc.MustCompile(harness.Listing4, msc.Config{})
	comp := msc.MustCompile(harness.Listing4, msc.Config{Compress: true})
	if !(comp.MetaStates() < base.MetaStates()) {
		t.Errorf("compression knob ineffective: %d vs %d", comp.MetaStates(), base.MetaStates())
	}
	split := msc.MustCompile(harness.Imbalance(30), msc.Config{TimeSplit: true})
	if split.Automaton.Splits == 0 {
		t.Error("time-split knob ineffective")
	}
	if _, err := msc.Compile(harness.SeqLoops(8, false), msc.Config{MaxStates: 100}); err == nil {
		t.Error("MaxStates knob ineffective")
	}
}

func TestThreeEnginesAgree(t *testing.T) {
	for _, wl := range harness.Suite() {
		c, err := msc.Compile(wl.Source, msc.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		rc := msc.RunConfig{N: wl.Width, InitialActive: wl.InitialActive}
		mimd, err := c.RunMIMD(rc)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		in, err := c.RunInterp(rc)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		sd, err := c.RunSIMD(rc)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		for pe := 0; pe < wl.Width; pe++ {
			for slot := range mimd.Mem[pe] {
				if mimd.Mem[pe][slot] != in.Mem[pe][slot] || mimd.Mem[pe][slot] != sd.Mem[pe][slot] {
					t.Fatalf("%s: engines disagree at PE %d slot %d", wl.Name, pe, slot)
				}
			}
		}
	}
}
