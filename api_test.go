package msc_test

import (
	"strings"
	"testing"

	"msc"
	"msc/internal/harness"
	"msc/internal/obs"
)

func TestCompilePipeline(t *testing.T) {
	c, err := msc.Compile(harness.Divergent, msc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.AST == nil || c.Graph == nil || c.Automaton == nil || c.Program == nil {
		t.Fatal("pipeline stages missing")
	}
	if c.MIMDStates() <= 0 || c.MetaStates() <= 0 {
		t.Fatal("no states")
	}
	if _, ok := c.Slot("x"); !ok {
		t.Fatal("Slot lookup failed")
	}
	if _, ok := c.Slot("nonexistent"); ok {
		t.Fatal("Slot invented a variable")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"void main( {", "parse"},
		{"void main() { x = 1; }", "analyze"},
		{"void f() {}", "no main"},
	}
	for _, c := range cases {
		_, err := msc.Compile(c.src, msc.Config{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile did not panic on bad source")
		}
	}()
	msc.MustCompile("@@", msc.Config{})
}

func TestArtifactEmission(t *testing.T) {
	c := msc.MustCompile(harness.Listing4, msc.Config{CSI: true, Hash: true})
	if !strings.Contains(c.MPL(), "globalor") {
		t.Error("MPL output missing globalor")
	}
	if !strings.Contains(c.DotStateGraph("t"), "digraph") {
		t.Error("state graph dot broken")
	}
	if !strings.Contains(c.DotAutomaton("t"), "digraph") {
		t.Error("automaton dot broken")
	}
}

func TestConfigKnobsReachPipeline(t *testing.T) {
	base := msc.MustCompile(harness.Listing4, msc.Config{})
	comp := msc.MustCompile(harness.Listing4, msc.Config{Compress: true})
	if !(comp.MetaStates() < base.MetaStates()) {
		t.Errorf("compression knob ineffective: %d vs %d", comp.MetaStates(), base.MetaStates())
	}
	split := msc.MustCompile(harness.Imbalance(30), msc.Config{TimeSplit: true})
	if split.Automaton.Splits == 0 {
		t.Error("time-split knob ineffective")
	}
	if _, err := msc.Compile(harness.SeqLoops(8, false), msc.Config{MaxStates: 100}); err == nil {
		t.Error("MaxStates knob ineffective")
	}
}

func TestThreeEnginesAgree(t *testing.T) {
	for _, wl := range harness.Suite() {
		c, err := msc.Compile(wl.Source, msc.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		rc := msc.RunConfig{N: wl.Width, InitialActive: wl.InitialActive}
		mimd, err := c.RunMIMD(rc)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		in, err := c.RunInterp(rc)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		sd, err := c.RunSIMD(rc)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		for pe := 0; pe < wl.Width; pe++ {
			for slot := range mimd.Mem[pe] {
				if mimd.Mem[pe][slot] != in.Mem[pe][slot] || mimd.Mem[pe][slot] != sd.Mem[pe][slot] {
					t.Fatalf("%s: engines disagree at PE %d slot %d", wl.Name, pe, slot)
				}
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		conf msc.Config
		want string // substring of the error; "" means valid
	}{
		{"default", msc.Config{}, ""},
		{"full", msc.DefaultConfig(), ""},
		{"negative delta", msc.Config{SplitDelta: -1}, "SplitDelta"},
		{"negative percent", msc.Config{SplitPercent: -5}, "SplitPercent"},
		{"percent over 100", msc.Config{SplitPercent: 101}, "SplitPercent"},
		{"negative max states", msc.Config{MaxStates: -1}, "MaxStates"},
	}
	for _, tc := range cases {
		err := tc.conf.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %s", tc.name, err, tc.want)
		}
		// Compile must reject the same configuration up front.
		if _, cerr := msc.Compile(harness.Divergent, tc.conf); cerr == nil {
			t.Errorf("%s: Compile accepted invalid config", tc.name)
		}
	}
}

func TestRunConfigValidate(t *testing.T) {
	c, err := msc.Compile(harness.Divergent, msc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := []msc.RunConfig{
		{N: 0},
		{N: -4},
		{N: 8, InitialActive: -1},
		{N: 8, InitialActive: 9},
	}
	for _, rc := range bad {
		if _, err := c.RunSIMD(rc); err == nil {
			t.Errorf("RunSIMD accepted %+v", rc)
		}
		if _, err := c.RunMIMD(rc); err == nil {
			t.Errorf("RunMIMD accepted %+v", rc)
		}
		if _, err := c.RunInterp(rc); err == nil {
			t.Errorf("RunInterp accepted %+v", rc)
		}
	}
}

func TestCompileStats(t *testing.T) {
	rec := obs.NewRecorder()
	c, err := msc.Compile(harness.Divergent, msc.Config{Compress: true, CSI: true, Hash: true, Metrics: rec})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats
	if s == nil {
		t.Fatal("Stats not populated")
	}
	if s.TokensParsed <= 0 {
		t.Errorf("TokensParsed = %d, want > 0", s.TokensParsed)
	}
	if s.BlocksBeforeSimplify < s.BlocksAfterSimplify || s.BlocksAfterSimplify <= 0 {
		t.Errorf("block counts %d -> %d implausible", s.BlocksBeforeSimplify, s.BlocksAfterSimplify)
	}
	if s.MetaStates != int64(c.MetaStates()) {
		t.Errorf("MetaStates = %d, want %d", s.MetaStates, c.MetaStates())
	}
	if s.MetaExplored < s.MetaStates {
		t.Errorf("MetaExplored %d < MetaStates %d", s.MetaExplored, s.MetaStates)
	}
	if len(s.PhaseWall) != 8 {
		t.Errorf("got %d phases, want 8", len(s.PhaseWall))
	}
	// The shared recorder sees the same counters.
	if got := rec.Value(obs.CounterMetaStates); got != s.MetaStates {
		t.Errorf("shared recorder meta_states = %d, want %d", got, s.MetaStates)
	}
}

// TestProfileCycleAttribution locks the acceptance invariant: every
// cycle of a run is attributed to exactly one meta state.
func TestProfileCycleAttribution(t *testing.T) {
	for _, wl := range harness.Suite() {
		c, err := msc.Compile(wl.Source, msc.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		res, err := c.RunSIMD(msc.RunConfig{N: wl.Width, InitialActive: wl.InitialActive})
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		var total, body int64
		var visits int64
		for i := range res.MetaStats {
			total += res.MetaStats[i].Cycles
			body += res.MetaStats[i].BodyCycles
			visits += res.MetaStats[i].Visits
		}
		if total != res.Time {
			t.Errorf("%s: attributed cycles %d != Time %d", wl.Name, total, res.Time)
		}
		if body != res.BodyCycles {
			t.Errorf("%s: attributed body cycles %d != BodyCycles %d", wl.Name, body, res.BodyCycles)
		}
		if visits != res.MetaExecs {
			t.Errorf("%s: attributed visits %d != MetaExecs %d", wl.Name, visits, res.MetaExecs)
		}
		var hist int64
		for _, v := range res.PEHist {
			hist += v
		}
		if hist != res.BodyCycles {
			t.Errorf("%s: PEHist mass %d != BodyCycles %d", wl.Name, hist, res.BodyCycles)
		}
		dot := c.DotProfile(wl.Name, res)
		if !strings.Contains(dot, "fillcolor=") {
			t.Errorf("%s: DotProfile has no heat fills", wl.Name)
		}
	}
}
