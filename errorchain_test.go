package msc_test

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"msc"
	"msc/internal/faultinject"
	"msc/internal/obs"
)

// These tests lock the error-chain contract the service layer's status
// mapping depends on (docs/SERVICE.md): every failure path out of
// CompileContext and the Run*Context methods must keep both the typed
// taxonomy (errors.As for *BudgetError / *StepLimitError /
// *InternalError) and the context sentinels (errors.Is for
// context.Canceled / context.DeadlineExceeded) intact — including
// after degrade-ladder retries.

// TestWallClockBudgetKeepsDeadlineChain: a wall-clock overrun is
// classified as *BudgetError but must still satisfy
// errors.Is(err, context.DeadlineExceeded) — the classification may
// not sever the cause.
func TestWallClockBudgetKeepsDeadlineChain(t *testing.T) {
	deactivate := faultinject.Activate(&faultinject.Plan{
		Phase: obs.PhaseConvert,
		Fault: faultinject.SlowPhase,
		Delay: 300 * time.Millisecond,
	})
	defer deactivate()
	src := readSource(t, "testdata/vet/barriers.mc")
	_, err := msc.Compile(src, msc.Config{Limits: msc.Limits{Deadline: 30 * time.Millisecond}})
	var be *msc.BudgetError
	if !errors.As(err, &be) || be.Resource != "wall_clock" {
		t.Fatalf("want wall_clock *BudgetError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wall_clock budget error lost context.DeadlineExceeded: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("wall_clock budget error spuriously matches context.Canceled: %v", err)
	}
}

// TestCallerDeadlineIsNotABudgetError: when the caller's context
// expires before the compile's own Limits.Deadline would, the failure
// is the caller's deadline — it must not be misclassified as a
// wall_clock budget overrun (which Degrade would pointlessly retry
// against the already-dead context).
func TestCallerDeadlineIsNotABudgetError(t *testing.T) {
	deactivate := faultinject.Activate(&faultinject.Plan{
		Phase: obs.PhaseConvert,
		Fault: faultinject.SlowPhase,
		Delay: 300 * time.Millisecond,
	})
	defer deactivate()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	src := readSource(t, "testdata/vet/barriers.mc")
	_, err := msc.CompileContext(ctx, src, msc.Config{
		Degrade: true,
		Limits:  msc.Limits{Deadline: time.Hour},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	var be *msc.BudgetError
	if errors.As(err, &be) {
		t.Fatalf("caller deadline misclassified as budget overrun: %+v", be)
	}
}

// TestBudgetChainSurvivesDegradeRetries: with Degrade set and a budget
// the ladder cannot fix, the error that finally surfaces — after the
// ladder relaxed and retried every rung — must still match
// errors.As(*BudgetError) with the right resource.
func TestBudgetChainSurvivesDegradeRetries(t *testing.T) {
	src := readSource(t, "testdata/vet/barriers.mc")
	_, err := msc.Compile(src, msc.Config{
		Compress: true, TimeSplit: true, CSI: true, Degrade: true,
		Limits: msc.Limits{MaxStates: 1},
	})
	if err == nil {
		t.Fatal("compile fit in a 1-meta-state budget")
	}
	var be *msc.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError after degrade retries, got %v", err)
	}
	if be.Resource != "meta_states" {
		t.Fatalf("resource = %q, want meta_states", be.Resource)
	}
}

// TestCancelChainSurvivesDegradeRetries: canceling the caller context
// while the degrade ladder is mid-retry must surface context.Canceled,
// not a budget error and not a lost chain.
func TestCancelChainSurvivesDegradeRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	deactivate := faultinject.Activate(&faultinject.Plan{
		Phase: obs.PhaseConvert,
		Fault: faultinject.BudgetAtPhase,
		Times: 1, // sabotage only the first attempt; then cancel below
	})
	defer deactivate()
	cancel()
	src := readSource(t, "testdata/vet/barriers.mc")
	_, err := msc.CompileContext(ctx, src, msc.Config{
		Compress: true, BarrierExact: true, Degrade: true,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled through the degraded retry, got %v", err)
	}
}

// TestCacheErrorChain: a failing cache open surfaces a typed
// *msc.CacheError whose Unwrap keeps the underlying OS-level cause —
// the service layer's defensive classifyError arm and any caller
// logging rely on errors.As/Is reaching both ends of the chain no
// matter how many fmt.Errorf wraps are stacked on top.
func TestCacheErrorChain(t *testing.T) {
	notADir := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := msc.OpenCache(notADir)
	if err == nil {
		t.Fatal("OpenCache over a regular file succeeded")
	}
	var ce *msc.CacheError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CacheError, got %T: %v", err, err)
	}
	if ce.Op != "open" {
		t.Fatalf("Op = %q, want open", ce.Op)
	}
	if ce.Unwrap() == nil {
		t.Fatal("CacheError severed its cause: Unwrap() == nil")
	}
	// The chain reaches the filesystem-level cause...
	var pe *fs.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("chain lost the *fs.PathError cause: %v", err)
	}
	// ...and survives further wrapping, so a caller that decorates the
	// error (as mscd's boot log path does) can still classify it.
	wrapped := fmt.Errorf("boot: %w", err)
	ce = nil
	if !errors.As(wrapped, &ce) {
		t.Fatalf("wrapped chain lost *CacheError: %v", wrapped)
	}
	// Cache failures are infrastructure, never part of the compile
	// taxonomy: they must not read as budget or invalid-input errors.
	var be *msc.BudgetError
	if errors.As(err, &be) {
		t.Fatalf("cache error misclassified as *BudgetError: %v", err)
	}
}

// TestRunContextChains: the three engines must wrap (not replace) the
// context error on cancellation and return typed *StepLimitError on
// step exhaustion.
func TestRunContextChains(t *testing.T) {
	src := readSource(t, "testdata/vet/barriers.mc")
	c, err := msc.Compile(src, msc.Config{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := msc.RunConfig{N: 8}
	if _, err := c.RunSIMDContext(ctx, rc); !errors.Is(err, context.Canceled) {
		t.Errorf("simd: want context.Canceled, got %v", err)
	}
	if _, err := c.RunMIMDContext(ctx, rc); !errors.Is(err, context.Canceled) {
		t.Errorf("mimd: want context.Canceled, got %v", err)
	}
	if _, err := c.RunInterpContext(ctx, rc); !errors.Is(err, context.Canceled) {
		t.Errorf("interp: want context.Canceled, got %v", err)
	}
}
