package msc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"msc"
	"msc/internal/faultinject"
	"msc/internal/obs"
	"msc/internal/telemetry"
)

func newCachedService(t *testing.T, workers int) (*msc.CompileService, *telemetry.Registry, *msc.Cache) {
	t.Helper()
	cc, err := msc.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	svc := msc.NewCompileService(msc.ServiceConfig{
		Workers:  workers,
		Cache:    cc,
		Registry: reg,
	})
	t.Cleanup(func() { svc.Close() })
	return svc, reg, cc
}

func cacheStatus(t *testing.T, svc *msc.CompileService) *msc.CacheStats {
	t.Helper()
	w := httptest.NewRecorder()
	svc.ServeHTTP(w, httptest.NewRequest("GET", "/statusz", nil))
	var st msc.ServiceStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("statusz: %v", err)
	}
	if st.Cache == nil {
		t.Fatalf("statusz carries no cache block: %s", w.Body.String())
	}
	return st.Cache
}

// TestServiceCacheSingleFlight: N identical concurrent POSTs run the
// pipeline exactly once. The leader is pinned inside conversion by a
// slow-phase fault so the rest of the pack provably coalesces; any
// straggler that misses the flight is served by the store. Responses
// must be interchangeable — identical bodies once the legitimately
// per-request stats block is set aside.
func TestServiceCacheSingleFlight(t *testing.T) {
	const n = 6
	svc, reg, cc := newCachedService(t, n)
	src := readSource(t, "testdata/vet/barriers.mc")
	body := compileBody(t, src, `"emit": ["mpl"]`)

	undo := faultinject.Activate(&faultinject.Plan{
		Fault: faultinject.SlowPhase, Phase: obs.PhaseConvert, Delay: 300 * time.Millisecond, Times: 1,
	})
	defer undo()

	recorders := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := httptest.NewRecorder()
			svc.ServeHTTP(w, httptest.NewRequest("POST", "/compile", bytes.NewReader([]byte(body))))
			recorders[i] = w
		}(i)
	}
	wg.Wait()

	var want []byte
	for i, w := range recorders {
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, w.Code, w.Body.String())
		}
		var resp msc.CompileResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		switch resp.Stats.CacheOutcome {
		case "stored", "singleflight-shared", "hit":
		default:
			t.Fatalf("request %d: cache outcome %q", i, resp.Stats.CacheOutcome)
		}
		// Stats vary per request by design (wall times, outcome); the
		// compile result itself must be identical.
		resp.Stats = nil
		norm, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = norm
		} else if !bytes.Equal(want, norm) {
			t.Fatalf("request %d returned a different compile:\n%s\nvs\n%s", i, norm, want)
		}
	}
	if runs := reg.Counter(obs.CounterPipelineRuns, "").Value(); runs != 1 {
		t.Fatalf("pipeline ran %d times for %d identical requests", runs, n)
	}
	st := cacheStatus(t, svc)
	if st.ActiveFlights != 0 {
		t.Fatalf("%d flights leaked: %+v", st.ActiveFlights, st)
	}
	if st.SingleFlightShared+st.Hits != n-1 {
		t.Fatalf("dedup accounting: %+v", st)
	}
	if cc.Stats().Entries != 1 {
		t.Fatalf("store entries = %d", cc.Stats().Entries)
	}
}

// TestServiceCacheLeaderCancelNoLeak: the leader request's client
// disconnects mid-compile; a concurrent identical request must still
// succeed (flight promotion), and the flight table must end empty.
func TestServiceCacheLeaderCancelNoLeak(t *testing.T) {
	svc, _, _ := newCachedService(t, 4)
	src := readSource(t, "testdata/vet/barriers.mc")
	body := compileBody(t, src, "")

	undo := faultinject.Activate(&faultinject.Plan{
		Fault: faultinject.SlowPhase, Phase: obs.PhaseConvert, Delay: 300 * time.Millisecond, Times: 1,
	})
	defer undo()

	ctx, cancel := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		w := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/compile", bytes.NewReader([]byte(body))).WithContext(ctx)
		svc.ServeHTTP(w, req)
	}()
	time.Sleep(50 * time.Millisecond) // leader is inside the slow convert phase

	waiterDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		svc.ServeHTTP(w, httptest.NewRequest("POST", "/compile", bytes.NewReader([]byte(body))))
		waiterDone <- w
	}()
	time.Sleep(50 * time.Millisecond) // waiter is parked on the leader's flight

	cancel() // client walks away; the leader compile dies of cancellation
	<-leaderDone

	w := <-waiterDone
	if w.Code != http.StatusOK {
		t.Fatalf("promoted waiter: status %d body %s", w.Code, w.Body.String())
	}
	var resp msc.CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.CacheOutcome != "stored" {
		t.Fatalf("promoted waiter outcome = %q, want stored", resp.Stats.CacheOutcome)
	}
	if st := cacheStatus(t, svc); st.ActiveFlights != 0 {
		t.Fatalf("flights leaked after leader cancellation: %+v", st)
	}
}

// TestServiceCacheFaultIsNotClientVisible: a faulted cache must not
// change any client-visible status — the compile succeeds, the failure
// lands in counters and the stats block only.
func TestServiceCacheFaultIsNotClientVisible(t *testing.T) {
	svc, reg, _ := newCachedService(t, 2)
	src := readSource(t, "testdata/vet/barriers.mc")
	body := compileBody(t, src, "")

	undo := faultinject.Activate(&faultinject.Plan{Fault: faultinject.WriteENOSPC, Nth: 1, Times: 1})
	w := postCompile(t, svc, "/compile", body)
	undo()
	if w.Code != http.StatusOK {
		t.Fatalf("cache fault leaked to the client: status %d body %s", w.Code, w.Body.String())
	}
	var resp msc.CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.CacheOutcome != "uncached" || len(resp.Stats.CacheErrors) == 0 {
		t.Fatalf("fault not reported in stats: outcome %q errors %v", resp.Stats.CacheOutcome, resp.Stats.CacheErrors)
	}
	if reg.Counter(obs.CounterCacheErrors, "").Value() == 0 {
		t.Fatal("cache.errors counter not on the service registry")
	}
	// The next identical request stores, the one after hits.
	if w := postCompile(t, svc, "/compile", body); w.Code != http.StatusOK {
		t.Fatalf("recovery compile: %d", w.Code)
	}
	w = postCompile(t, svc, "/compile", body)
	var resp2 msc.CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Stats.CacheOutcome != "hit" {
		t.Fatalf("converged outcome = %q, want hit", resp2.Stats.CacheOutcome)
	}
}

// TestServiceCacheDrain: draining with a cached service completes
// cleanly — in-flight flights belong to in-flight requests, so the
// drain wait empties the flight table too.
func TestServiceCacheDrain(t *testing.T) {
	svc, _, cc := newCachedService(t, 2)
	src := readSource(t, "testdata/vet/barriers.mc")
	body := compileBody(t, src, "")

	undo := faultinject.Activate(&faultinject.Plan{
		Fault: faultinject.SlowPhase, Phase: obs.PhaseConvert, Delay: 200 * time.Millisecond, Times: 1,
	})
	defer undo()

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		svc.ServeHTTP(w, httptest.NewRequest("POST", "/compile", bytes.NewReader([]byte(body))))
		done <- w
	}()
	waitInFlight(t, svc, 1) // request is mid-compile

	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := svc.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	w := <-done
	if w.Code != http.StatusOK {
		t.Fatalf("in-flight compile during drain: status %d body %s", w.Code, w.Body.String())
	}
	if st := cc.Stats(); st.ActiveFlights != 0 {
		t.Fatalf("flights survived the drain: %+v", st)
	}
}
