// Package cache is the on-disk content-addressed artifact store that
// fronts the compile pipeline. Entries are artifact-codec streams
// (internal/artifact) named by the hex SHA-256 of their full cache key
// — source hash, config fingerprint, and codec version — so a changed
// source, a changed result-affecting option, or a codec bump each
// address a different object and stale entries can never be confused
// with live ones.
//
// The store's robustness contract (docs/CACHE.md):
//
//   - Crash-safe writes: every Put writes to a private file under tmp/,
//     fsyncs it, renames it into objects/ (atomic on POSIX), and fsyncs
//     the directory. A crash at any point leaves either the old state
//     or the new state, never a half-entry; orphaned temp files are
//     swept on the next Open.
//   - Verified reads: every Get re-verifies the whole-file digest and
//     per-section checksums via artifact.Decode and confirms the
//     decoded key matches the requested key. Any failure quarantines
//     the entry (moved to quarantine/, dropped from the index — never
//     re-served) and reports a *mscerr.CacheError; a codec version
//     mismatch is stale, not corrupt, and is deleted silently.
//   - Lock-free reads: the index is an immutable generation-stamped
//     snapshot behind an atomic pointer, rebuilt by scanning objects/
//     on Open and copied-on-write under a writer mutex. Readers never
//     block, writers never tear.
//
// The store never fails a compile: every error it returns is a typed
// *mscerr.CacheError the caller records and then ignores, falling
// through to the real pipeline (graceful degradation).
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"msc/internal/artifact"
	"msc/internal/faultinject"
	"msc/internal/mscerr"
)

const (
	objectsDir    = "objects"
	tmpDir        = "tmp"
	quarantineDir = "quarantine"
	objectExt     = ".art"
)

// Store is an open artifact cache directory. It is safe for concurrent
// use by any number of goroutines.
type Store struct {
	dir string

	// index holds the current immutable snapshot; writers clone it
	// under mu and swap, readers load it without locking.
	index atomic.Pointer[snapshot]
	mu    sync.Mutex // serializes index mutations and temp naming
	seq   atomic.Int64

	// Counters for /statusz, /metrics, and the load generator's
	// hit-ratio assertions.
	hits        atomic.Int64
	misses      atomic.Int64
	errs        atomic.Int64
	quarantined atomic.Int64
}

// snapshot is one immutable generation of the index: the set of object
// names present in objects/.
type snapshot struct {
	gen     uint64
	entries map[string]struct{}
}

// Stats is a point-in-time view of the store's counters.
type Stats struct {
	Hits        int64  `json:"hits"`
	Misses      int64  `json:"misses"`
	Errors      int64  `json:"errors"`
	Quarantined int64  `json:"quarantined"`
	Entries     int    `json:"entries"`
	Generation  uint64 `json:"generation"`
}

// Name returns the content address of a key: the hex SHA-256 of the
// source hash, config fingerprint, and codec version. Distinct codec
// versions address distinct objects, so a version upgrade starts cold
// rather than misreading old entries.
func Name(key artifact.Key) string {
	h := sha256.New()
	h.Write(key.SourceHash[:])
	h.Write(key.ConfigFP[:])
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], artifact.Version)
	h.Write(v[:])
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Open opens (creating if needed) the store rooted at dir, sweeps
// orphaned temp files left by crashed writers, and rebuilds the index
// by scanning objects/. Any failure is a *mscerr.CacheError; callers
// treat it as "no cache today", not as a compile failure.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{objectsDir, tmpDir, quarantineDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o777); err != nil {
			return nil, &mscerr.CacheError{Op: "open", Path: dir, Err: err}
		}
	}
	// Sweep temp orphans: anything in tmp/ is a write that never
	// published (crash between temp write and rename). Deleting it is
	// always safe — the entry was never in objects/, so no reader has
	// ever seen it.
	tmps, err := os.ReadDir(filepath.Join(dir, tmpDir))
	if err != nil {
		return nil, &mscerr.CacheError{Op: "open", Path: dir, Err: err}
	}
	for _, e := range tmps {
		os.Remove(filepath.Join(dir, tmpDir, e.Name()))
	}
	objs, err := os.ReadDir(filepath.Join(dir, objectsDir))
	if err != nil {
		return nil, &mscerr.CacheError{Op: "open", Path: dir, Err: err}
	}
	entries := make(map[string]struct{}, len(objs))
	for _, e := range objs {
		name, ok := strings.CutSuffix(e.Name(), objectExt)
		if !ok || e.IsDir() {
			continue
		}
		entries[name] = struct{}{}
	}
	s := &Store{dir: dir}
	s.index.Store(&snapshot{gen: 1, entries: entries})
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the current counters and index size.
func (s *Store) Stats() Stats {
	idx := s.index.Load()
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Errors:      s.errs.Load(),
		Quarantined: s.quarantined.Load(),
		Entries:     len(idx.entries),
		Generation:  idx.gen,
	}
}

// Generation returns the index generation, bumped by every mutation.
func (s *Store) Generation() uint64 { return s.index.Load().gen }

// Len returns the number of live entries.
func (s *Store) Len() int { return len(s.index.Load().entries) }

func (s *Store) objectPath(name string) string {
	return filepath.Join(s.dir, objectsDir, name+objectExt)
}

// Get looks up the artifact for key. The three outcomes are
// (artifact, nil) — verified hit; (nil, nil) — miss, including stale
// codec versions; and (nil, *mscerr.CacheError) — the entry existed
// but failed verification and was quarantined, or the read itself
// failed. Callers fall through to a real compile on anything but a hit.
func (s *Store) Get(key artifact.Key) (*artifact.Artifact, error) {
	name := Name(key)
	idx := s.index.Load()
	if _, ok := idx.entries[name]; !ok {
		s.misses.Add(1)
		return nil, nil
	}
	path := s.objectPath(name)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			// Lost a race with a quarantine or removal: a plain miss.
			s.misses.Add(1)
			return nil, nil
		}
		s.errs.Add(1)
		return nil, &mscerr.CacheError{Op: "read", Key: name, Path: path, Err: err}
	}
	data = faultinject.OnCacheRead(data)
	a, gotKey, err := artifact.Decode(data)
	if errors.Is(err, artifact.ErrVersion) {
		// Stale, not corrupt: delete and miss. (Unreachable while the
		// codec version is part of the content address, but the check
		// keeps the store honest if naming and codec ever drift.)
		s.remove(name)
		s.misses.Add(1)
		return nil, nil
	}
	if err != nil {
		return nil, s.quarantine(name, path, err)
	}
	if gotKey != key {
		// The file is internally consistent but is not the entry this
		// key addresses — a store bug or a deliberately substituted
		// file. Either way it must never be served.
		return nil, s.quarantine(name, path, fmt.Errorf("key mismatch: object holds a different compile"))
	}
	s.hits.Add(1)
	return a, nil
}

// Put encodes and durably stores the artifact under key, overwriting
// any existing entry. Failures never leave a partial entry visible:
// the object either appears complete or not at all.
func (s *Store) Put(key artifact.Key, a *artifact.Artifact) error {
	name := Name(key)
	data, err := artifact.Encode(a, key)
	if err != nil {
		s.errs.Add(1)
		return &mscerr.CacheError{Op: "encode", Key: name, Err: err}
	}
	// The write hook models torn writes (data truncated but the rename
	// still lands — detected by Get's verification later) and ENOSPC.
	data, werr := faultinject.OnCacheWrite(data)
	if werr != nil {
		s.errs.Add(1)
		return &mscerr.CacheError{Op: "write", Key: name, Err: werr}
	}
	tmp := filepath.Join(s.dir, tmpDir, fmt.Sprintf("%s.%d.tmp", name, s.seq.Add(1)))
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		s.errs.Add(1)
		return &mscerr.CacheError{Op: "write", Key: name, Path: tmp, Err: err}
	}
	if err := faultinject.OnCacheRename(); err != nil {
		s.errs.Add(1)
		if errors.Is(err, faultinject.ErrCrash) {
			// Simulated crash in the publish window: abandon everything
			// exactly where a real crash would — temp file on disk, no
			// rename, no index update. Open sweeps it later.
			return &mscerr.CacheError{Op: "rename", Key: name, Path: tmp, Err: err}
		}
		os.Remove(tmp)
		return &mscerr.CacheError{Op: "rename", Key: name, Path: tmp, Err: err}
	}
	path := s.objectPath(name)
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		s.errs.Add(1)
		return &mscerr.CacheError{Op: "rename", Key: name, Path: path, Err: err}
	}
	syncDir(filepath.Dir(path))
	s.withIndex(func(entries map[string]struct{}) {
		entries[name] = struct{}{}
	})
	return nil
}

// Contains reports whether key is in the index (no verification).
func (s *Store) Contains(key artifact.Key) bool {
	_, ok := s.index.Load().entries[Name(key)]
	return ok
}

// quarantine moves a failed entry aside so it is never re-served, drops
// it from the index, and returns the CacheError describing the failure.
func (s *Store) quarantine(name, path string, cause error) error {
	s.errs.Add(1)
	s.quarantined.Add(1)
	dst := filepath.Join(s.dir, quarantineDir, fmt.Sprintf("%s.%d%s", name, s.seq.Add(1), objectExt))
	if err := os.Rename(path, dst); err != nil && !os.IsNotExist(err) {
		// Even the quarantine failed; fall back to removal so the bad
		// bytes cannot be served again.
		os.Remove(path)
	}
	s.remove(name)
	return &mscerr.CacheError{Op: "quarantine", Key: name, Path: dst, Err: cause}
}

// remove drops name from the index (the object file, if any, is the
// caller's business).
func (s *Store) remove(name string) {
	s.withIndex(func(entries map[string]struct{}) {
		delete(entries, name)
	})
}

// withIndex applies a mutation to a copy of the current index and
// publishes it as the next generation.
func (s *Store) withIndex(mutate func(map[string]struct{})) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.index.Load()
	entries := make(map[string]struct{}, len(old.entries)+1)
	for k := range old.entries {
		entries[k] = struct{}{}
	}
	mutate(entries)
	s.index.Store(&snapshot{gen: old.gen + 1, entries: entries})
}

// writeFileSync writes data to path and fsyncs it before closing: the
// data must be durable before the rename publishes the entry, or a
// crash could publish a name whose blocks never hit the disk.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Errors are ignored: some filesystems reject directory fsync, and the
// worst case is the pre-rename state — which is always valid.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
