package cache

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"msc/internal/artifact"
	"msc/internal/cfg"
	"msc/internal/codegen"
	"msc/internal/faultinject"
	metastate "msc/internal/msc"
	"msc/internal/mscerr"
	"msc/internal/progen"
)

func testArtifact(t *testing.T, seed int64) (*artifact.Artifact, artifact.Key) {
	t.Helper()
	src := progen.Source(progen.Params{Seed: seed})
	g := cfg.MustBuild(src)
	a, err := metastate.Convert(g, metastate.DefaultOptions(true))
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	p, err := codegen.Compile(a, codegen.Options{Hash: true})
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	var key artifact.Key
	key.SourceHash[0] = byte(seed)
	key.ConfigFP[0] = byte(seed >> 8)
	return &artifact.Artifact{Graph: g, Automaton: a, Program: p, StatsJSON: []byte("{}")}, key
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	a, key := testArtifact(t, 1)
	if got, err := s.Get(key); got != nil || err != nil {
		t.Fatalf("cold Get = %v, %v; want miss", got, err)
	}
	if err := s.Put(key, a); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := s.Get(key)
	if err != nil || got == nil {
		t.Fatalf("warm Get = %v, %v; want hit", got, err)
	}
	if artifact.Fingerprint(got) != artifact.Fingerprint(a) {
		t.Fatal("hit returned a different compile")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Errors != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScanOnOpenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	a, key := testArtifact(t, 2)
	if err := s.Put(key, a); err != nil {
		t.Fatal(err)
	}
	gen1 := s.Generation()

	// A second handle on the same directory must see the entry purely
	// by scanning — there is no sidecar index file to go stale.
	s2 := mustOpen(t, dir)
	if got, err := s2.Get(key); err != nil || got == nil {
		t.Fatalf("reopened Get = %v, %v; want hit", got, err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d", s2.Len())
	}
	if gen1 == 0 {
		t.Fatal("generation not stamped")
	}
}

// TestFaultMatrix drives every filesystem fault through the store and
// asserts the robustness contract: compiles-by-way-of-cache never see
// wrong bytes, corrupt entries are quarantined and never re-served, and
// the store converges back to serving byte-identical artifacts.
func TestFaultMatrix(t *testing.T) {
	a, key := testArtifact(t, 3)
	wantFP := artifact.Fingerprint(a)

	converge := func(t *testing.T, s *Store) {
		// After any fault: a fresh Put must converge to a verified hit
		// with the original fingerprint.
		if err := s.Put(key, a); err != nil {
			t.Fatalf("recovery put: %v", err)
		}
		got, err := s.Get(key)
		if err != nil || got == nil {
			t.Fatalf("recovery Get = %v, %v; want hit", got, err)
		}
		if artifact.Fingerprint(got) != wantFP {
			t.Fatal("recovered artifact fingerprint differs")
		}
	}

	t.Run("torn-write-at-byte-k", func(t *testing.T) {
		s := mustOpen(t, t.TempDir())
		undo := faultinject.Activate(&faultinject.Plan{Fault: faultinject.TornWrite, Byte: 64, Times: 1})
		err := s.Put(key, a)
		undo()
		if err != nil {
			t.Fatalf("torn put should publish (the tear is silent): %v", err)
		}
		// The torn entry is detected on read, quarantined, and reported.
		got, err := s.Get(key)
		var ce *mscerr.CacheError
		if got != nil || !errors.As(err, &ce) || ce.Op != "quarantine" {
			t.Fatalf("torn Get = %v, %v; want quarantine CacheError", got, err)
		}
		// Never re-served: now a plain miss, and the bytes moved aside.
		if got, err := s.Get(key); got != nil || err != nil {
			t.Fatalf("post-quarantine Get = %v, %v; want miss", got, err)
		}
		if n := dirCount(t, filepath.Join(s.Dir(), quarantineDir)); n != 1 {
			t.Fatalf("quarantine holds %d files, want 1", n)
		}
		if s.Stats().Quarantined != 1 {
			t.Fatalf("stats = %+v", s.Stats())
		}
		converge(t, s)
	})

	t.Run("enospc-at-write-n", func(t *testing.T) {
		s := mustOpen(t, t.TempDir())
		undo := faultinject.Activate(&faultinject.Plan{Fault: faultinject.WriteENOSPC, Nth: 1, Times: 1})
		err := s.Put(key, a)
		undo()
		var ce *mscerr.CacheError
		if !errors.As(err, &ce) || !errors.Is(err, faultinject.ErrNoSpace) {
			t.Fatalf("enospc put err = %v", err)
		}
		if got, err := s.Get(key); got != nil || err != nil {
			t.Fatalf("Get after failed put = %v, %v; want miss", got, err)
		}
		if n := dirCount(t, filepath.Join(s.Dir(), tmpDir)); n != 0 {
			t.Fatalf("tmp holds %d files after ENOSPC, want 0", n)
		}
		converge(t, s)
	})

	t.Run("bit-flip-on-read", func(t *testing.T) {
		s := mustOpen(t, t.TempDir())
		if err := s.Put(key, a); err != nil {
			t.Fatal(err)
		}
		undo := faultinject.Activate(&faultinject.Plan{Fault: faultinject.BitFlipRead, Byte: 777, Times: 1})
		got, err := s.Get(key)
		undo()
		var ce *mscerr.CacheError
		if got != nil || !errors.As(err, &ce) {
			t.Fatalf("bit-flip Get = %v, %v; want CacheError", got, err)
		}
		// Conservatively quarantined even though the flip happened on
		// the read path: the store cannot tell media rot from RAM rot,
		// so the entry is retired either way.
		if got, err := s.Get(key); got != nil || err != nil {
			t.Fatalf("post-flip Get = %v, %v; want miss", got, err)
		}
		converge(t, s)
	})

	t.Run("rename-failure", func(t *testing.T) {
		s := mustOpen(t, t.TempDir())
		undo := faultinject.Activate(&faultinject.Plan{Fault: faultinject.RenameFail, Times: 1})
		err := s.Put(key, a)
		undo()
		var ce *mscerr.CacheError
		if !errors.As(err, &ce) || ce.Op != "rename" {
			t.Fatalf("rename-fail put err = %v", err)
		}
		if n := dirCount(t, filepath.Join(s.Dir(), tmpDir)); n != 0 {
			t.Fatalf("tmp holds %d files after failed rename, want 0", n)
		}
		if got, err := s.Get(key); got != nil || err != nil {
			t.Fatalf("Get = %v, %v; want miss", got, err)
		}
		converge(t, s)
	})

	t.Run("crash-between-temp-and-rename", func(t *testing.T) {
		dir := t.TempDir()
		s := mustOpen(t, dir)
		undo := faultinject.Activate(&faultinject.Plan{Fault: faultinject.CrashBeforeRename, Times: 1})
		err := s.Put(key, a)
		undo()
		if !errors.Is(err, faultinject.ErrCrash) {
			t.Fatalf("crash put err = %v", err)
		}
		// The crash leaves the orphan temp exactly as a real crash would.
		if n := dirCount(t, filepath.Join(dir, tmpDir)); n != 1 {
			t.Fatalf("tmp holds %d files after crash, want the orphan", n)
		}
		if got, err := s.Get(key); got != nil || err != nil {
			t.Fatalf("Get after crash = %v, %v; want miss", got, err)
		}
		// Recovery: reopening the store sweeps the orphan and the entry
		// is simply absent — then a fresh Put converges.
		s2 := mustOpen(t, dir)
		if n := dirCount(t, filepath.Join(dir, tmpDir)); n != 0 {
			t.Fatalf("tmp holds %d files after reopen, want 0", n)
		}
		if got, err := s2.Get(key); got != nil || err != nil {
			t.Fatalf("Get after reopen = %v, %v; want miss", got, err)
		}
		converge(t, s2)
	})
}

// TestKeySeparation: differing source or config addresses differing
// entries; the codec version participates in the address.
func TestKeySeparation(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	a, key := testArtifact(t, 4)
	if err := s.Put(key, a); err != nil {
		t.Fatal(err)
	}
	other := key
	other.ConfigFP[5] ^= 1
	if got, err := s.Get(other); got != nil || err != nil {
		t.Fatalf("config-fingerprint miss = %v, %v", got, err)
	}
	other = key
	other.SourceHash[5] ^= 1
	if got, err := s.Get(other); got != nil || err != nil {
		t.Fatalf("source-hash miss = %v, %v", got, err)
	}
	if Name(key) == Name(other) {
		t.Fatal("distinct keys share a content address")
	}
}

// TestSubstitutedObjectQuarantined plants an internally-valid artifact
// under the wrong name; Get must refuse to serve it (key mismatch).
func TestSubstitutedObjectQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	a, key := testArtifact(t, 5)
	if err := s.Put(key, a); err != nil {
		t.Fatal(err)
	}
	// Rewrite the object with an encode under a different key: valid
	// stream, wrong identity.
	wrong := key
	wrong.SourceHash[0] ^= 0xFF
	data, err := artifact.Encode(a, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, objectsDir, Name(key)+objectExt), data, 0o666); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	var ce *mscerr.CacheError
	if got != nil || !errors.As(err, &ce) || ce.Op != "quarantine" {
		t.Fatalf("substituted Get = %v, %v; want quarantine", got, err)
	}
}

func dirCount(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir %s: %v", dir, err)
	}
	return len(ents)
}
