package analysis

import (
	"fmt"

	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/ir"
)

// InitFacts bundles the two initialization analyses: May holds slots
// initialized on at least one path to each point (union meet), Must
// holds slots initialized on every path (intersect meet).
type InitFacts struct {
	May, Must *Result
}

// InitAnalysis solves forward initialization over scalar slots. A
// store (StLocal/StMono) initializes its slot; nothing ever
// de-initializes one. Remote-writable slots are treated as initialized
// from the start: another PE's router store may define them at any
// time, so claiming otherwise would be unsound.
func InitAnalysis(g *cfg.Graph, vars *Vars) *InitFacts {
	problem := func(meet MeetKind) Problem {
		return Problem{
			Dir:      Forward,
			Meet:     meet,
			Universe: g.Words,
			Boundary: vars.Remote.Clone(),
			Transfer: func(b *cfg.Block, in *bitset.Set) *bitset.Set {
				out := in.Clone()
				for _, instr := range b.Code {
					if instr.Op == ir.StLocal || instr.Op == ir.StMono {
						out.Add(int(instr.Imm))
					}
				}
				return out
			},
		}
	}
	return &InitFacts{
		May:  Solve(g, problem(Union)),
		Must: Solve(g, problem(Intersect)),
	}
}

// CheckUninitialized reports reads of named scalar variables before
// initialization.
//
// Poly (per-PE) variables are checked flow-sensitively along each PE's
// own path: a read with no initializing path at all is an error; a
// read initialized on some paths but not all is a warning.
//
// Mono (replicated) variables are shared: a store executed by any PE
// is visible to every PE, and under meta-state execution PEs at
// different source points run in lockstep, so path order between
// distinct PEs is not defined by the CFG. The check is therefore
// flow-insensitive for mono variables: an error is reported only when
// no reachable block stores the variable at all.
func CheckUninitialized(g *cfg.Graph, vars *Vars, facts *InitFacts) []Diagnostic {
	reach := reachableBlocks(g)

	// monoStored: mono slots with at least one reachable store.
	monoStored := bitset.New(g.Words)
	for _, b := range g.Blocks {
		if b == nil || !reach[b.ID] {
			continue
		}
		for _, in := range b.Code {
			if in.Op == ir.StMono {
				monoStored.Add(int(in.Imm))
			}
		}
	}

	var diags []Diagnostic
	reportedMono := make(map[int]bool)
	for _, b := range g.Blocks {
		if b == nil || !reach[b.ID] {
			continue
		}
		may := facts.May.In[b.ID].Clone()
		must := facts.Must.In[b.ID].Clone()
		for _, in := range b.Code {
			slot := int(in.Imm)
			switch in.Op {
			case ir.LdMono:
				v, ok := vars.Scalar[slot]
				if ok && !monoStored.Has(slot) && !vars.Remote.Has(slot) && !reportedMono[slot] {
					reportedMono[slot] = true
					diags = append(diags, Diagnostic{
						Pos:   in.Pos,
						Sev:   SevError,
						Check: CheckUninit,
						Msg:   fmt.Sprintf("mono variable %s is used but never initialized", v.Name),
					})
				}
			case ir.LdLocal:
				v, ok := vars.Scalar[slot]
				if ok && !v.Mono && !vars.Remote.Has(slot) {
					switch {
					case !may.Has(slot):
						diags = append(diags, Diagnostic{
							Pos:   in.Pos,
							Sev:   SevError,
							Check: CheckUninit,
							Msg:   fmt.Sprintf("poly variable %s is used before initialization", v.Name),
						})
					case !must.Has(slot):
						diags = append(diags, Diagnostic{
							Pos:   in.Pos,
							Sev:   SevWarning,
							Check: CheckMaybeUninit,
							Msg:   fmt.Sprintf("poly variable %s may be used before initialization", v.Name),
						})
					}
				}
			case ir.StLocal, ir.StMono:
				may.Add(slot)
				must.Add(slot)
			}
		}
	}
	return diags
}

// reachableBlocks marks the blocks reachable from the program entry.
func reachableBlocks(g *cfg.Graph) map[int]bool {
	seen := make(map[int]bool)
	stack := []int{g.Entry}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] || g.Block(id) == nil {
			continue
		}
		seen[id] = true
		stack = append(stack, g.Block(id).Succs()...)
	}
	return seen
}
