package analysis

import (
	"msc/internal/bitset"
	"msc/internal/cfg"
)

// Direction selects which way facts flow through the state graph.
type Direction uint8

const (
	Forward Direction = iota
	Backward
)

// MeetKind selects how facts from converging paths combine: Union for
// may-analyses ("holds on some path"), Intersect for must-analyses
// ("holds on every path").
type MeetKind uint8

const (
	Union MeetKind = iota
	Intersect
)

// Problem is a monotone bit-vector dataflow problem over a MIMD state
// graph. Facts are bit sets over [0, Universe); Transfer maps a block's
// flow input to its flow output (entry→exit facts for Forward
// problems, exit→entry facts for Backward ones) and must be monotone.
type Problem struct {
	Dir  Direction
	Meet MeetKind
	// Universe is the fact-space width; Intersect problems use the full
	// universe as the optimistic initial value.
	Universe int
	// Boundary is the fact set at the flow boundary: the graph entry for
	// Forward problems, every exitless block (End/Halt terminators and
	// never-called function exits) for Backward ones. nil means empty.
	Boundary *bitset.Set
	// Transfer computes the block's flow output from its flow input. It
	// must not mutate in.
	Transfer func(b *cfg.Block, in *bitset.Set) *bitset.Set
}

// Result holds the fixed-point facts per block ID. In is always the
// fact set at block entry and Out the set at block exit, regardless of
// the problem's direction.
type Result struct {
	In, Out map[int]*bitset.Set
}

// Solve runs worklist iteration to the (least for Union, greatest for
// Intersect) fixed point. Spawn edges and multiway-return edges are
// ordinary graph edges: facts flow into spawned children and across
// call returns.
func Solve(g *cfg.Graph, p Problem) *Result {
	boundary := p.Boundary
	if boundary == nil {
		boundary = bitset.New(0)
	}
	top := func() *bitset.Set {
		s := bitset.New(p.Universe)
		if p.Meet == Intersect {
			for i := 0; i < p.Universe; i++ {
				s.Add(i)
			}
		}
		return s
	}

	// Dependency edges: the blocks a node's flow input meets over
	// (sources) and the blocks to re-queue when its output changes
	// (dependents).
	sources := make(map[int][]int)
	dependents := make(map[int][]int)
	var ids []int
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		ids = append(ids, b.ID)
		for _, s := range b.Succs() {
			if g.Block(s) == nil {
				continue
			}
			if p.Dir == Forward {
				sources[s] = append(sources[s], b.ID)
				dependents[b.ID] = append(dependents[b.ID], s)
			} else {
				sources[b.ID] = append(sources[b.ID], s)
				dependents[s] = append(dependents[s], b.ID)
			}
		}
	}
	atBoundary := func(b *cfg.Block) bool {
		if p.Dir == Forward {
			return b.ID == g.Entry
		}
		return len(b.Succs()) == 0
	}

	input := make(map[int]*bitset.Set, len(ids))
	output := make(map[int]*bitset.Set, len(ids))
	for _, id := range ids {
		input[id] = top()
		output[id] = top()
	}

	// Worklist in block order; order affects only convergence speed.
	queued := make(map[int]bool, len(ids))
	work := append([]int(nil), ids...)
	for _, id := range work {
		queued[id] = true
	}
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		queued[id] = false
		b := g.Block(id)

		var acc *bitset.Set
		meet := func(s *bitset.Set) {
			if acc == nil {
				acc = s.Clone()
			} else if p.Meet == Union {
				acc.UnionWith(s)
			} else {
				acc = acc.Intersect(s)
			}
		}
		if atBoundary(b) {
			meet(boundary)
		}
		for _, src := range sources[id] {
			meet(output[src])
		}
		if acc == nil {
			// No boundary and no sources: unreachable in the flow
			// direction; keep the optimistic initial value.
			acc = top()
		}
		input[id] = acc
		next := p.Transfer(b, acc)
		if next.Equal(output[id]) {
			continue
		}
		output[id] = next
		for _, d := range dependents[id] {
			if !queued[d] {
				queued[d] = true
				work = append(work, d)
			}
		}
	}

	res := &Result{In: input, Out: output}
	if p.Dir == Backward {
		res.In, res.Out = output, input
	}
	return res
}
