package analysis

import (
	"fmt"

	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/ir"
)

// ConstVal is an abstract word: either a known integer constant or
// not-a-constant. Float values and anything touched by router traffic
// are conservatively unknown.
type ConstVal struct {
	Known bool
	Val   int64
}

// ConstResult holds, for each block, the slots known to hold a
// specific constant on every path reaching the block's entry.
type ConstResult struct {
	In map[int]map[int]ConstVal
	// excluded are slots whose value another PE can change behind our
	// back: remote-accessed slots always, and mono slots stored after
	// the common prologue (PEs at different source points run in
	// lockstep, so a divergent PE's broadcast store can land anywhere
	// on our path).
	excluded *bitset.Set
}

// ConstFacts computes global must-constant facts by forward fixpoint:
// a slot maps to a value at a block entry iff every predecessor path
// stores exactly that value last. Not-yet-computed predecessors are ⊤
// (optimistic initialization): they impose no constraint on the meet,
// so a fact that holds on the entry path and is preserved around a
// loop body — a debug flag set once and branched on inside the loop —
// survives at the loop head instead of being killed by the untaken
// back edge's initial bottom. Every abstract operation is monotone on
// the flat constant lattice, so iteration descends to the greatest
// fixed point, which is the sound answer for a must-analysis. Facts
// are recorded only for blocks reachable from the entry; everything
// else reads as unknown.
func ConstFacts(g *cfg.Graph, vars *Vars) *ConstResult {
	excluded := vars.Remote.Clone()
	for _, b := range g.Blocks {
		if b == nil || b.ID == g.Entry {
			continue
		}
		for _, in := range b.Code {
			if in.Op == ir.StMono {
				excluded.Add(int(in.Imm))
			}
		}
	}

	preds := make(map[int][]int)
	var ids []int
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		ids = append(ids, b.ID)
		for _, s := range b.Succs() {
			if g.Block(s) != nil {
				preds[s] = append(preds[s], b.ID)
			}
		}
	}

	in := make(map[int]map[int]ConstVal, len(ids))
	out := make(map[int]map[int]ConstVal, len(ids))
	computed := make(map[int]bool, len(ids))

	// meet intersects the out-facts of every computed predecessor; a
	// predecessor whose out-set has not been computed yet is ⊤ and adds
	// no constraint. nil (distinct from an empty map) means the block
	// itself is still ⊤: no computed predecessor reaches it.
	meet := func(id int) map[int]ConstVal {
		ps := preds[id]
		if id == g.Entry || len(ps) == 0 {
			return map[int]ConstVal{}
		}
		var acc map[int]ConstVal
		for _, p := range ps {
			if !computed[p] {
				continue
			}
			po := out[p]
			if acc == nil {
				acc = make(map[int]ConstVal, len(po))
				for slot, v := range po {
					acc[slot] = v
				}
				continue
			}
			for slot, v := range acc {
				if pv, ok := po[slot]; !ok || pv != v {
					delete(acc, slot)
				}
			}
		}
		return acc
	}

	equal := func(a, b map[int]ConstVal) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if bv, ok := b[k]; !ok || bv != v {
				return false
			}
		}
		return true
	}

	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			newIn := meet(id)
			if newIn == nil {
				// Still ⊤: not yet reached from the entry. Leaving out/in
				// unset keeps the block from constraining its successors;
				// if it stays unreached it is dead and reads as unknown.
				continue
			}
			in[id] = newIn
			newOut, _ := evalBlock(g.Block(id), newIn, excluded)
			if !computed[id] || !equal(newOut, out[id]) {
				out[id] = newOut
				computed[id] = true
				changed = true
			}
		}
	}
	return &ConstResult{In: in, excluded: excluded}
}

// StepNote reports what one abstract Step observed, beyond the state
// update itself: facts a diagnostic pass wants but the fixpoint does
// not need.
type StepNote struct {
	// DivByConstZero is set when a Div/Mod executed with a known
	// constant zero divisor: the machine totalizes the result to 0, but
	// the source almost certainly did not mean it.
	DivByConstZero bool
}

// ConstEnv is a mutable abstract machine state for replaying one
// block's stack code over the constant lattice: the per-slot constant
// environment plus the abstract evaluation stack. The optimizer's
// constant-materialization pass and the diagnostic checks both drive
// it instruction by instruction; ConstFacts' fixpoint uses it as its
// transfer function.
type ConstEnv struct {
	env      map[int]ConstVal
	stack    []ConstVal
	excluded *bitset.Set
	// poisoned is set when an unrecognized opcode makes the whole
	// environment untrustworthy; every fact reads unknown from then on.
	poisoned bool
}

// EnvAt returns a fresh replay state seeded with the facts holding at
// the named block's entry (per the ConstFacts fixpoint).
func (r *ConstResult) EnvAt(blockID int) *ConstEnv {
	e := &ConstEnv{env: make(map[int]ConstVal), excluded: r.excluded}
	for k, v := range r.In[blockID] {
		e.env[k] = v
	}
	return e
}

// Slot returns the constant known to be in a memory slot at the
// current replay point (unknown for excluded or untracked slots).
func (e *ConstEnv) Slot(slot int) ConstVal {
	if e.poisoned || e.excluded.Has(slot) {
		return ConstVal{}
	}
	return e.env[slot]
}

// Top returns the abstract value on top of the evaluation stack, or
// unknown when the stack is empty at this replay point.
func (e *ConstEnv) Top() ConstVal {
	if e.poisoned || len(e.stack) == 0 {
		return ConstVal{}
	}
	return e.stack[len(e.stack)-1]
}

func (e *ConstEnv) pop() ConstVal {
	if len(e.stack) == 0 {
		return ConstVal{}
	}
	v := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	return v
}

func (e *ConstEnv) push(v ConstVal) { e.stack = append(e.stack, v) }

// Step abstractly executes one instruction, updating the environment
// and stack, and reports any diagnostic-worthy observation.
func (e *ConstEnv) Step(in ir.Instr) StepNote {
	var note StepNote
	unknown := ConstVal{}
	slot := int(in.Imm)
	switch in.Op {
	case ir.PushC:
		if in.Ty == ir.Float {
			e.push(unknown)
		} else {
			e.push(ConstVal{Known: true, Val: in.Imm})
		}
	case ir.Dup:
		v := e.pop()
		e.push(v)
		e.push(v)
	case ir.Pop:
		for i := int64(0); i < in.Imm; i++ {
			e.pop()
		}
	case ir.LdLocal, ir.LdMono:
		e.push(e.Slot(slot))
	case ir.StLocal, ir.StMono:
		v := e.pop()
		if v.Known && !e.poisoned && !e.excluded.Has(slot) {
			e.env[slot] = v
		} else {
			delete(e.env, slot)
		}
	case ir.LdIndex:
		e.pop()
		e.push(unknown)
	case ir.StIndex:
		e.pop()
		e.pop()
	case ir.LdRemote:
		e.pop()
		e.push(unknown)
	case ir.StRemote:
		// A router store mutates some PE's copy of the slot —
		// possibly ours, via self-addressing — so the fact is gone.
		e.pop()
		e.pop()
		delete(e.env, slot)
	case ir.Neg, ir.BitNot, ir.LNot:
		v := e.pop()
		if !v.Known {
			e.push(unknown)
			break
		}
		if f, ok := ir.FoldUnary(in.Op, ir.Word(v.Val)); ok {
			e.push(ConstVal{Known: true, Val: int64(f)})
		} else {
			e.push(unknown)
		}
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod,
		ir.BitAnd, ir.BitOr, ir.BitXor, ir.Shl, ir.Shr,
		ir.CmpLt, ir.CmpLe, ir.CmpGt, ir.CmpGe, ir.CmpEq, ir.CmpNe:
		r, l := e.pop(), e.pop()
		if (in.Op == ir.Div || in.Op == ir.Mod) && r.Known && r.Val == 0 {
			note.DivByConstZero = true
		}
		e.push(evalBinary(in.Op, l, r))
	case ir.IProc, ir.NProc:
		e.push(unknown)
	case ir.I2F, ir.F2I:
		e.pop()
		e.push(unknown)
	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv,
		ir.FCmpLt, ir.FCmpLe, ir.FCmpGt, ir.FCmpGe, ir.FCmpEq, ir.FCmpNe:
		e.pop()
		e.pop()
		e.push(unknown)
	case ir.FNeg:
		e.pop()
		e.push(unknown)
	case ir.PushRet, ir.Nop:
	default:
		// Unknown op: give up on the whole environment.
		e.poisoned = true
		e.env = map[int]ConstVal{}
		e.stack = nil
	}
	return note
}

// evalBlock abstractly executes a block's stack code over the constant
// environment, returning the post-state and the final stack (top
// last). Unsupported operations and excluded slots produce unknowns.
func evalBlock(b *cfg.Block, env map[int]ConstVal, excluded *bitset.Set) (map[int]ConstVal, []ConstVal) {
	e := &ConstEnv{env: make(map[int]ConstVal, len(env)), excluded: excluded}
	for k, v := range env {
		e.env[k] = v
	}
	for _, in := range b.Code {
		e.Step(in)
	}
	if e.poisoned {
		return map[int]ConstVal{}, nil
	}
	return e.env, e.stack
}

// evalBinary folds an integer binary op over abstract operands. The
// compile-time fold helpers refuse division by constant zero and
// signed overflow, so those degrade to ⊤ instead of producing a
// constant the runtime would disagree about or silently wrap.
func evalBinary(op ir.Op, l, r ConstVal) ConstVal {
	if !l.Known || !r.Known {
		return ConstVal{}
	}
	v, ok := ir.FoldBinary(op, ir.Word(l.Val), ir.Word(r.Val))
	if !ok {
		return ConstVal{}
	}
	return ConstVal{Known: true, Val: int64(v)}
}

// CheckConstConditions reports branch conditions that are compile-time
// constants: the branch always goes the same way, so one arm is
// effectively dead. Info severity — constant entry guards are a normal
// byproduct of the §4.2 loop normalization.
func CheckConstConditions(g *cfg.Graph, consts *ConstResult) []Diagnostic {
	var diags []Diagnostic
	reach := reachableBlocks(g)
	for _, b := range g.Blocks {
		if b == nil || b.Term != cfg.Branch || !reach[b.ID] {
			continue
		}
		_, stack := evalBlock(b, consts.In[b.ID], consts.excluded)
		if len(stack) == 0 {
			continue
		}
		cond := stack[len(stack)-1]
		if !cond.Known {
			continue
		}
		way := "false"
		if cond.Val != 0 {
			way = "true"
		}
		pos := b.Pos
		if n := len(b.Code); n > 0 && b.Code[n-1].Pos.IsValid() {
			pos = b.Code[n-1].Pos
		}
		diags = append(diags, Diagnostic{
			Pos:   pos,
			Sev:   SevInfo,
			Check: CheckConstCond,
			Msg:   fmt.Sprintf("branch condition is always %s", way),
		})
	}
	return diags
}

// CheckDivByConstZero reports integer divisions and moduli whose
// divisor is a compile-time constant zero. The machine totalizes both
// to 0, so this is not a crash — but it is almost never what the
// source meant, and the optimizer deliberately refuses to fold it.
func CheckDivByConstZero(g *cfg.Graph, consts *ConstResult) []Diagnostic {
	var diags []Diagnostic
	reach := reachableBlocks(g)
	for _, b := range g.Blocks {
		if b == nil || !reach[b.ID] {
			continue
		}
		env := consts.EnvAt(b.ID)
		for _, in := range b.Code {
			if env.Step(in).DivByConstZero {
				op := "division"
				if in.Op == ir.Mod {
					op = "modulo"
				}
				diags = append(diags, Diagnostic{
					Pos:   in.Pos,
					Sev:   SevWarning,
					Check: CheckDivByZero,
					Msg:   fmt.Sprintf("%s by constant zero always yields 0 on this machine", op),
				})
			}
		}
	}
	return diags
}

// CheckUnreachableCode reports blocks that can never execute. Only
// blocks carrying instructions are reported: the builder leaves empty
// synthetic blocks (join points after returns, loop exits of infinite
// loops) that are not source-level dead code.
func CheckUnreachableCode(g *cfg.Graph) []Diagnostic {
	reach := reachableBlocks(g)
	var diags []Diagnostic
	for _, b := range g.Blocks {
		if b == nil || reach[b.ID] || len(b.Code) == 0 {
			continue
		}
		pos := b.Pos
		if b.Code[0].Pos.IsValid() {
			pos = b.Code[0].Pos
		}
		if !pos.IsValid() {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   pos,
			Sev:   SevWarning,
			Check: CheckUnreachable,
			Msg:   "unreachable code",
		})
	}
	return diags
}
