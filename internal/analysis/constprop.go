package analysis

import (
	"fmt"

	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/ir"
)

// ConstVal is an abstract word: either a known integer constant or
// not-a-constant. Float values and anything touched by router traffic
// are conservatively unknown.
type ConstVal struct {
	Known bool
	Val   int64
}

// ConstResult holds, for each block, the slots known to hold a
// specific constant on every path reaching the block's entry.
type ConstResult struct {
	In map[int]map[int]ConstVal
	// excluded are slots whose value another PE can change behind our
	// back: remote-accessed slots always, and mono slots stored after
	// the common prologue (PEs at different source points run in
	// lockstep, so a divergent PE's broadcast store can land anywhere
	// on our path).
	excluded *bitset.Set
}

// ConstFacts computes simple must-constant facts by forward fixpoint:
// a slot maps to a value at a block entry iff every predecessor path
// stores exactly that value last. The iteration starts from
// nothing-known and only ever promotes slots to known, which reaches
// the least (sound, pessimistic) fixed point: loop-carried constants
// are given up rather than guessed.
func ConstFacts(g *cfg.Graph, vars *Vars) *ConstResult {
	excluded := vars.Remote.Clone()
	for _, b := range g.Blocks {
		if b == nil || b.ID == g.Entry {
			continue
		}
		for _, in := range b.Code {
			if in.Op == ir.StMono {
				excluded.Add(int(in.Imm))
			}
		}
	}

	preds := make(map[int][]int)
	var ids []int
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		ids = append(ids, b.ID)
		for _, s := range b.Succs() {
			if g.Block(s) != nil {
				preds[s] = append(preds[s], b.ID)
			}
		}
	}

	in := make(map[int]map[int]ConstVal, len(ids))
	out := make(map[int]map[int]ConstVal, len(ids))
	for _, id := range ids {
		out[id] = map[int]ConstVal{}
	}

	meet := func(id int) map[int]ConstVal {
		ps := preds[id]
		if id == g.Entry || len(ps) == 0 {
			return map[int]ConstVal{}
		}
		acc := make(map[int]ConstVal, len(out[ps[0]]))
		for slot, v := range out[ps[0]] {
			acc[slot] = v
		}
		for _, p := range ps[1:] {
			po := out[p]
			for slot, v := range acc {
				if pv, ok := po[slot]; !ok || pv != v {
					delete(acc, slot)
				}
			}
		}
		return acc
	}

	equal := func(a, b map[int]ConstVal) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if bv, ok := b[k]; !ok || bv != v {
				return false
			}
		}
		return true
	}

	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			newIn := meet(id)
			in[id] = newIn
			newOut, _ := evalBlock(g.Block(id), newIn, excluded)
			if !equal(newOut, out[id]) {
				out[id] = newOut
				changed = true
			}
		}
	}
	return &ConstResult{In: in, excluded: excluded}
}

// evalBlock abstractly executes a block's stack code over the constant
// environment, returning the post-state and the final stack (top
// last). Unsupported operations and excluded slots produce unknowns.
func evalBlock(b *cfg.Block, env map[int]ConstVal, excluded *bitset.Set) (map[int]ConstVal, []ConstVal) {
	out := make(map[int]ConstVal, len(env))
	for k, v := range env {
		out[k] = v
	}
	var stack []ConstVal
	pop := func() ConstVal {
		if len(stack) == 0 {
			return ConstVal{}
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	push := func(v ConstVal) { stack = append(stack, v) }
	unknown := ConstVal{}

	for _, in := range b.Code {
		slot := int(in.Imm)
		switch in.Op {
		case ir.PushC:
			if in.Ty == ir.Float {
				push(unknown)
			} else {
				push(ConstVal{Known: true, Val: in.Imm})
			}
		case ir.Dup:
			v := pop()
			push(v)
			push(v)
		case ir.Pop:
			for i := int64(0); i < in.Imm; i++ {
				pop()
			}
		case ir.LdLocal, ir.LdMono:
			if v, ok := out[slot]; ok && !excluded.Has(slot) {
				push(v)
			} else {
				push(unknown)
			}
		case ir.StLocal, ir.StMono:
			v := pop()
			if v.Known && !excluded.Has(slot) {
				out[slot] = v
			} else {
				delete(out, slot)
			}
		case ir.LdIndex:
			pop()
			push(unknown)
		case ir.StIndex:
			pop()
			pop()
		case ir.LdRemote:
			pop()
			push(unknown)
		case ir.StRemote:
			// A router store mutates some PE's copy of the slot —
			// possibly ours, via self-addressing — so the fact is gone.
			pop()
			pop()
			delete(out, slot)
		case ir.Neg, ir.BitNot, ir.LNot:
			v := pop()
			if !v.Known {
				push(unknown)
				break
			}
			switch in.Op {
			case ir.Neg:
				push(ConstVal{Known: true, Val: -v.Val})
			case ir.BitNot:
				push(ConstVal{Known: true, Val: ^v.Val})
			default:
				push(ConstVal{Known: true, Val: int64(ir.Bool(v.Val == 0))})
			}
		case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod,
			ir.BitAnd, ir.BitOr, ir.BitXor, ir.Shl, ir.Shr,
			ir.CmpLt, ir.CmpLe, ir.CmpGt, ir.CmpGe, ir.CmpEq, ir.CmpNe:
			r, l := pop(), pop()
			push(evalBinary(in.Op, l, r))
		case ir.IProc, ir.NProc:
			push(unknown)
		case ir.I2F, ir.F2I:
			pop()
			push(unknown)
		case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv,
			ir.FCmpLt, ir.FCmpLe, ir.FCmpGt, ir.FCmpGe, ir.FCmpEq, ir.FCmpNe:
			pop()
			pop()
			push(unknown)
		case ir.FNeg:
			pop()
			push(unknown)
		case ir.PushRet, ir.Nop:
		default:
			// Unknown op: give up on the whole environment.
			return map[int]ConstVal{}, nil
		}
	}
	return out, stack
}

// evalBinary folds an integer binary op over abstract operands.
func evalBinary(op ir.Op, l, r ConstVal) ConstVal {
	if !l.Known || !r.Known {
		return ConstVal{}
	}
	b := func(v bool) ConstVal { return ConstVal{Known: true, Val: int64(ir.Bool(v))} }
	switch op {
	case ir.Add:
		return ConstVal{Known: true, Val: l.Val + r.Val}
	case ir.Sub:
		return ConstVal{Known: true, Val: l.Val - r.Val}
	case ir.Mul:
		return ConstVal{Known: true, Val: l.Val * r.Val}
	case ir.Div:
		if r.Val == 0 {
			return ConstVal{}
		}
		return ConstVal{Known: true, Val: l.Val / r.Val}
	case ir.Mod:
		if r.Val == 0 {
			return ConstVal{}
		}
		return ConstVal{Known: true, Val: l.Val % r.Val}
	case ir.BitAnd:
		return ConstVal{Known: true, Val: l.Val & r.Val}
	case ir.BitOr:
		return ConstVal{Known: true, Val: l.Val | r.Val}
	case ir.BitXor:
		return ConstVal{Known: true, Val: l.Val ^ r.Val}
	case ir.Shl:
		if r.Val < 0 || r.Val >= 64 {
			return ConstVal{}
		}
		return ConstVal{Known: true, Val: l.Val << uint(r.Val)}
	case ir.Shr:
		if r.Val < 0 || r.Val >= 64 {
			return ConstVal{}
		}
		return ConstVal{Known: true, Val: l.Val >> uint(r.Val)}
	case ir.CmpLt:
		return b(l.Val < r.Val)
	case ir.CmpLe:
		return b(l.Val <= r.Val)
	case ir.CmpGt:
		return b(l.Val > r.Val)
	case ir.CmpGe:
		return b(l.Val >= r.Val)
	case ir.CmpEq:
		return b(l.Val == r.Val)
	case ir.CmpNe:
		return b(l.Val != r.Val)
	}
	return ConstVal{}
}

// CheckConstConditions reports branch conditions that are compile-time
// constants: the branch always goes the same way, so one arm is
// effectively dead. Info severity — constant entry guards are a normal
// byproduct of the §4.2 loop normalization.
func CheckConstConditions(g *cfg.Graph, consts *ConstResult) []Diagnostic {
	var diags []Diagnostic
	reach := reachableBlocks(g)
	for _, b := range g.Blocks {
		if b == nil || b.Term != cfg.Branch || !reach[b.ID] {
			continue
		}
		_, stack := evalBlock(b, consts.In[b.ID], consts.excluded)
		if len(stack) == 0 {
			continue
		}
		cond := stack[len(stack)-1]
		if !cond.Known {
			continue
		}
		way := "false"
		if cond.Val != 0 {
			way = "true"
		}
		pos := b.Pos
		if n := len(b.Code); n > 0 && b.Code[n-1].Pos.IsValid() {
			pos = b.Code[n-1].Pos
		}
		diags = append(diags, Diagnostic{
			Pos:   pos,
			Sev:   SevInfo,
			Check: CheckConstCond,
			Msg:   fmt.Sprintf("branch condition is always %s", way),
		})
	}
	return diags
}

// CheckUnreachableCode reports blocks that can never execute. Only
// blocks carrying instructions are reported: the builder leaves empty
// synthetic blocks (join points after returns, loop exits of infinite
// loops) that are not source-level dead code.
func CheckUnreachableCode(g *cfg.Graph) []Diagnostic {
	reach := reachableBlocks(g)
	var diags []Diagnostic
	for _, b := range g.Blocks {
		if b == nil || reach[b.ID] || len(b.Code) == 0 {
			continue
		}
		pos := b.Pos
		if b.Code[0].Pos.IsValid() {
			pos = b.Code[0].Pos
		}
		if !pos.IsValid() {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   pos,
			Sev:   SevWarning,
			Check: CheckUnreachable,
			Msg:   "unreachable code",
		})
	}
	return diags
}
