package analysis

import (
	"strings"

	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/ir"
)

// Var describes one named scalar source variable as it appears in the
// lowered program: a memory slot plus the front end's name.
type Var struct {
	Slot int
	Name string
	Mono bool
}

// Vars indexes the named scalar variables of a graph and the sharing
// structure the checks must respect.
type Vars struct {
	// Scalar maps a memory slot to its named scalar variable. Compiler
	// temporaries ($t, $spill, $arg, $ret, ...) and array storage are
	// deliberately absent: checks on them would second-guess the
	// lowering, not the source program.
	Scalar map[int]Var
	// Remote is the set of slots touched by router communication
	// (LdRemote/StRemote). Another PE may read or write these at any
	// point of our own path, so flow-sensitive init/liveness claims
	// about them are unsound and the checks skip them.
	Remote *bitset.Set
	// ExitLive is the set of slots observable after the program ends:
	// global variables and function return slots, which drivers read
	// back through VarSlot/RetSlot.
	ExitLive *bitset.Set
}

// CollectVars scans the graph for named scalar variables, remote slots,
// and driver-observable slots.
func CollectVars(g *cfg.Graph) *Vars {
	v := &Vars{
		Scalar:   make(map[int]Var),
		Remote:   bitset.New(g.Words),
		ExitLive: bitset.New(g.Words),
	}
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		for _, in := range b.Code {
			slot := int(in.Imm)
			switch in.Op {
			case ir.LdLocal, ir.StLocal, ir.LdMono, ir.StMono:
				if named(in.Sym) {
					mono := in.Op == ir.LdMono || in.Op == ir.StMono
					v.Scalar[slot] = Var{Slot: slot, Name: in.Sym, Mono: mono}
				}
			case ir.LdRemote, ir.StRemote:
				v.Remote.Add(slot)
			}
		}
	}
	for _, slot := range g.VarSlot {
		v.ExitLive.Add(slot)
	}
	for _, slot := range g.RetSlot {
		v.ExitLive.Add(slot)
	}
	return v
}

// named reports whether a Sym names a source variable (compiler temps
// are prefixed with '$').
func named(sym string) bool {
	return sym != "" && !strings.HasPrefix(sym, "$")
}
