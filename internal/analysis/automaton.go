package analysis

import (
	"fmt"
	"sort"

	"msc/internal/bitset"
	"msc/internal/ir"
	"msc/internal/msc"
)

// CheckAutomaton runs the whole-program checks that need the converted
// meta-state automaton rather than the state graph: barrier-divergence
// deadlock, unreachable termination (livelock / halt unreachability),
// and unreachable meta states.
func CheckAutomaton(a *msc.Automaton) []Diagnostic {
	var diags []Diagnostic
	reach := reachableMeta(a)

	// no-halt: termination requires some reachable meta state whose
	// members can all end. Its absence means every execution runs (or
	// waits) forever — deliberate in daemon-style programs, so this is
	// a warning, not an error.
	anyExit := false
	for _, s := range a.States {
		if reach[s.ID] && s.Exit {
			anyExit = true
			break
		}
	}
	if !anyExit {
		diags = append(diags, Diagnostic{
			Pos:   entryPos(a),
			Sev:   SevWarning,
			Check: CheckNoHalt,
			Msg:   "program never terminates: no reachable meta state can exit",
		})
	}

	// unreachable-meta: conversion only interns reachable states, so
	// this is a defensive consistency check on hand-built or mutated
	// automatons.
	for _, s := range a.States {
		if !reach[s.ID] {
			diags = append(diags, Diagnostic{
				Sev:   SevInfo,
				Check: CheckUnreachableMeta,
				Msg:   fmt.Sprintf("meta state ms%d %s is unreachable from the start state", s.ID, s.Set),
			})
		}
	}

	diags = append(diags, checkBarrierDeadlock(a, reach)...)
	return diags
}

// checkBarrierDeadlock detects barriers whose waiters can never be
// released. Under the §2.6/§3.2.4 rule, PEs at a barrier-wait state
// are released only when every still-live PE is at the barrier —
// either because the rest arrived or because the rest terminated. So
// whenever a transition parks some PEs at the barrier (a mixed raw
// aggregate), the remaining PEs must be able to "quiesce": reach a
// configuration where all of them sit at barrier states, or all of
// them end. If the remainder state cannot quiesce on ANY path — it
// neither exits nor ever fully arrives at a barrier — the waiters are
// stuck forever on every continuation: a definite deadlock, reported
// as an error at the wait statement.
func checkBarrierDeadlock(a *msc.Automaton, reach []bool) []Diagnostic {
	if a.Opt.BarrierExact || a.Barriers.Empty() {
		// Exact mode keeps waiters inside meta states; the no-halt check
		// still covers full stalls there (a stuck barrier yields a
		// self-looping non-exit automaton).
		return nil
	}
	if a.Opt.Compress || a.Opt.MergeSubsets || a.OverApprox {
		// Compressed/merged automata over-approximate occupancy: an
		// aggregate may carry both arms of a branch at once, so "every
		// member is at a barrier" can fail to hold in the automaton even
		// when it holds on every real execution. Definite-deadlock
		// reasoning needs exact occupancy; `msc vet` converts in base
		// mode for exactly this reason.
		return nil
	}

	// quiesce[id]: the PEs tracked by state id can evolve so that
	// eventually all of them are at barrier states or all have ended.
	// Base: Exit states and states with an all-barrier raw aggregate.
	// Step: some raw aggregate's filtered remainder can quiesce.
	raws := make([][]*setAndTarget, len(a.States))
	quiesce := make([]bool, len(a.States))
	var work []int
	// revEdges[t] = states whose remainder-successor is t.
	revEdges := make([][]int, len(a.States))
	for _, s := range a.States {
		if !reach[s.ID] {
			continue
		}
		if s.Exit {
			quiesce[s.ID] = true
			work = append(work, s.ID)
		}
		for _, raw := range a.RawSuccessors(s.Set) {
			if raw.Empty() {
				continue // covered by s.Exit
			}
			t, err := a.Lookup(raw)
			if err != nil || t == nil {
				continue
			}
			st := &setAndTarget{raw: raw, target: t.ID}
			raws[s.ID] = append(raws[s.ID], st)
			if raw.Subset(a.Barriers) {
				// Everyone arrives: the barrier releases here.
				if !quiesce[s.ID] {
					quiesce[s.ID] = true
					work = append(work, s.ID)
				}
				continue
			}
			revEdges[t.ID] = append(revEdges[t.ID], s.ID)
		}
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range revEdges[id] {
			if !quiesce[p] {
				quiesce[p] = true
				work = append(work, p)
			}
		}
	}

	// A mixed aggregate parks its barrier members; if the remainder
	// cannot quiesce, those waiters never release.
	deadlocked := map[int]bool{} // barrier block ID -> reported
	for _, s := range a.States {
		if !reach[s.ID] {
			continue
		}
		for _, st := range raws[s.ID] {
			waits := st.raw.Intersect(a.Barriers)
			if waits.Empty() || waits.Equal(st.raw) {
				continue
			}
			if quiesce[st.target] {
				continue
			}
			for _, w := range waits.Elems() {
				deadlocked[w] = true
			}
		}
	}

	ids := make([]int, 0, len(deadlocked))
	for id := range deadlocked {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var diags []Diagnostic
	for _, id := range ids {
		pos := ir.Pos{}
		if b := a.G.Block(id); b != nil {
			pos = b.Pos
		}
		diags = append(diags, Diagnostic{
			Pos:   pos,
			Sev:   SevError,
			Check: CheckBarrierDeadlock,
			Msg: "barrier deadlock: processes waiting here are never released " +
				"(the remaining processes neither reach the barrier nor terminate)",
		})
	}
	return diags
}

type setAndTarget struct {
	raw    *bitset.Set
	target int
}

// reachableMeta marks meta states reachable from the start state.
func reachableMeta(a *msc.Automaton) []bool {
	seen := make([]bool, len(a.States))
	stack := []int{a.Start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id < 0 || id >= len(seen) || seen[id] {
			continue
		}
		seen[id] = true
		stack = append(stack, a.States[id].Trans...)
	}
	return seen
}

// entryPos anchors whole-program diagnostics at the program entry.
func entryPos(a *msc.Automaton) ir.Pos {
	if b := a.G.Block(a.G.Entry); b != nil {
		return b.Pos
	}
	return ir.Pos{}
}
