package analysis

import (
	"fmt"

	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/ir"
)

// Liveness solves backward may liveness over memory slots. A slot is
// live at a point if some path from there reads it before overwriting
// it. Boundary facts: globals and return-value slots are live at every
// program exit (drivers read them back), and every remote-accessed slot
// is kept permanently live (another PE may read it at any time).
func Liveness(g *cfg.Graph, vars *Vars) *Result {
	boundary := vars.ExitLive.Union(vars.Remote)
	return Solve(g, Problem{
		Dir:      Backward,
		Meet:     Union,
		Universe: g.Words,
		Boundary: boundary,
		Transfer: func(b *cfg.Block, out *bitset.Set) *bitset.Set {
			live := out.Clone()
			for i := len(b.Code) - 1; i >= 0; i-- {
				in := b.Code[i]
				slot := int(in.Imm)
				switch in.Op {
				case ir.StLocal, ir.StMono:
					if !vars.Remote.Has(slot) {
						live.Remove(slot)
					}
				case ir.LdLocal, ir.LdMono:
					live.Add(slot)
				case ir.LdRemote, ir.StRemote:
					live.Add(slot)
				}
			}
			return live
		},
	})
}

// CheckDeadStores reports stores to named scalar variables whose value
// can never be observed: not read on any path before the next
// overwrite or program end. Stores immediately preceded by Dup are the
// store-load forwarding idiom (the folded `x = e; ... use x` shape
// where the use rides the stack) and are skipped — the value is
// observed even though the slot read was folded away.
func CheckDeadStores(g *cfg.Graph, vars *Vars, live *Result) []Diagnostic {
	var diags []Diagnostic
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		cur := live.Out[b.ID].Clone()
		// Walk backward replaying the block-local transfer so each store
		// sees the liveness immediately after it.
		type report struct {
			in ir.Instr
			v  Var
		}
		var dead []report
		for i := len(b.Code) - 1; i >= 0; i-- {
			in := b.Code[i]
			slot := int(in.Imm)
			switch in.Op {
			case ir.StLocal, ir.StMono:
				v, namedScalar := vars.Scalar[slot]
				if namedScalar && !vars.Remote.Has(slot) && !cur.Has(slot) &&
					!(i > 0 && b.Code[i-1].Op == ir.Dup) {
					dead = append(dead, report{in, v})
				}
				if !vars.Remote.Has(slot) {
					cur.Remove(slot)
				}
			case ir.LdLocal, ir.LdMono, ir.LdRemote, ir.StRemote:
				cur.Add(slot)
			}
		}
		for i := len(dead) - 1; i >= 0; i-- {
			d := dead[i]
			diags = append(diags, Diagnostic{
				Pos:   d.in.Pos,
				Sev:   SevWarning,
				Check: CheckDeadStore,
				Msg:   fmt.Sprintf("value stored to %s %s is never used", kind(d.v), d.v.Name),
			})
		}
	}
	return diags
}

// kind names a variable's storage class for messages.
func kind(v Var) string {
	if v.Mono {
		return "mono variable"
	}
	return "poly variable"
}
