package analysis_test

import (
	"strings"
	"testing"

	"msc/internal/analysis"
	"msc/internal/cfg"
	"msc/internal/mimdc"
	metastate "msc/internal/msc"
)

// build lowers source to a raw (unsimplified) state graph with calls
// expanded, the same view `msc vet` analyzes.
func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	ast, err := mimdc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := mimdc.Analyze(ast); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	g, err := cfg.BuildWith(ast, cfg.Options{ExpandCalls: true})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return g
}

// convert simplifies a clone and converts it under default options.
func convert(t *testing.T, g *cfg.Graph) *metastate.Automaton {
	t.Helper()
	sg := g.Clone()
	cfg.Simplify(sg)
	a, err := metastate.Convert(sg, metastate.DefaultOptions(false))
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	return a
}

// analyzeSrc runs the full suite the way vetFile does.
func analyzeSrc(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	g := build(t, src)
	return analysis.Analyze(g, convert(t, g))
}

// find returns the diagnostics with the given check id.
func find(diags []analysis.Diagnostic, check string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if d.Check == check {
			out = append(out, d)
		}
	}
	return out
}

func TestCheckUninitPolyError(t *testing.T) {
	diags := analyzeSrc(t, `
void main()
{
    poly int x, y;
    y = x + 1;
    return;
}
`)
	got := find(diags, analysis.CheckUninit)
	if len(got) != 1 {
		t.Fatalf("uninit diagnostics = %v, want exactly 1", got)
	}
	d := got[0]
	if d.Sev != analysis.SevError {
		t.Errorf("severity = %s, want error", d.Sev)
	}
	if !strings.Contains(d.Msg, "x") {
		t.Errorf("message %q does not name x", d.Msg)
	}
	if d.Pos.Line != 5 {
		t.Errorf("position %s, want line 5 (the read)", d.Pos)
	}
}

func TestCheckUninitMaybeWarning(t *testing.T) {
	diags := analyzeSrc(t, `
void main()
{
    poly int x, y;
    if (iproc) {
        x = 1;
    }
    y = x;
    return;
}
`)
	if errs := find(diags, analysis.CheckUninit); len(errs) != 0 {
		t.Fatalf("unexpected definite-uninit errors: %v", errs)
	}
	got := find(diags, analysis.CheckMaybeUninit)
	if len(got) != 1 || got[0].Sev != analysis.SevWarning {
		t.Fatalf("maybe-uninit = %v, want one warning", got)
	}
	if got[0].Pos.Line != 8 {
		t.Errorf("position %s, want line 8", got[0].Pos)
	}
}

func TestCheckUninitInitializedIsClean(t *testing.T) {
	diags := analyzeSrc(t, `
void main()
{
    poly int x, y;
    x = iproc;
    y = x + 1;
    return;
}
`)
	if got := append(find(diags, analysis.CheckUninit), find(diags, analysis.CheckMaybeUninit)...); len(got) != 0 {
		t.Fatalf("unexpected uninit diagnostics: %v", got)
	}
}

func TestCheckUninitMonoNeverStored(t *testing.T) {
	diags := analyzeSrc(t, `
mono int m;
poly int y;
void main()
{
    y = m + 1;
    return;
}
`)
	got := find(diags, analysis.CheckUninit)
	if len(got) != 1 || got[0].Sev != analysis.SevError {
		t.Fatalf("mono uninit = %v, want one error", got)
	}
	if !strings.Contains(got[0].Msg, "m") || !strings.Contains(got[0].Msg, "never initialized") {
		t.Errorf("message %q", got[0].Msg)
	}
}

// A mono variable stored anywhere is accepted flow-insensitively: under
// lockstep execution another PE's broadcast store may precede our read
// even when our own path order says otherwise.
func TestCheckUninitMonoStoredAnywhereIsClean(t *testing.T) {
	diags := analyzeSrc(t, `
mono int m;
poly int y;
void main()
{
    if (iproc == 0) {
        m = 7;
    }
    y = m + 1;
    return;
}
`)
	if got := find(diags, analysis.CheckUninit); len(got) != 0 {
		t.Fatalf("unexpected mono uninit: %v", got)
	}
}

// Remote-accessed slots are defined by other PEs through the router;
// reading them without a local store is not an init error.
func TestCheckUninitRemoteSlotExcluded(t *testing.T) {
	diags := analyzeSrc(t, `
poly int v, got;
void main()
{
    wait;
    got = v[[iproc]];
    return;
}
`)
	for _, check := range []string{analysis.CheckUninit, analysis.CheckMaybeUninit} {
		if bad := find(diags, check); len(bad) != 0 {
			t.Fatalf("unexpected %s on remote-communicated slot: %v", check, bad)
		}
	}
}

func TestCheckDeadStore(t *testing.T) {
	diags := analyzeSrc(t, `
poly int out;
void main()
{
    poly int x;
    x = 1;
    x = 2;
    out = x;
    return;
}
`)
	got := find(diags, analysis.CheckDeadStore)
	if len(got) != 1 || got[0].Sev != analysis.SevWarning {
		t.Fatalf("dead-store = %v, want one warning", got)
	}
	if got[0].Pos.Line != 6 {
		t.Errorf("position %s, want line 6 (the overwritten store)", got[0].Pos)
	}
	if !strings.Contains(got[0].Msg, "x") {
		t.Errorf("message %q does not name x", got[0].Msg)
	}
}

// Globals are read back by drivers after the run, so a final store to
// one is never dead.
func TestCheckDeadStoreGlobalExitLive(t *testing.T) {
	diags := analyzeSrc(t, `
poly int out;
void main()
{
    out = 42;
    return;
}
`)
	if got := find(diags, analysis.CheckDeadStore); len(got) != 0 {
		t.Fatalf("unexpected dead-store on exit-live global: %v", got)
	}
}

func TestCheckUnreachableCode(t *testing.T) {
	diags := analyzeSrc(t, `
poly int x;
void main()
{
    x = 1;
    return;
    x = 2;
    return;
}
`)
	got := find(diags, analysis.CheckUnreachable)
	if len(got) != 1 || got[0].Sev != analysis.SevWarning {
		t.Fatalf("unreachable = %v, want one warning", got)
	}
	if got[0].Pos.Line != 7 {
		t.Errorf("position %s, want line 7", got[0].Pos)
	}
}

func TestCheckConstCond(t *testing.T) {
	diags := analyzeSrc(t, `
poly int x;
void main()
{
    poly int flag;
    flag = 3;
    if (flag) {
        x = 1;
    } else {
        x = 2;
    }
    return;
}
`)
	got := find(diags, analysis.CheckConstCond)
	if len(got) == 0 {
		t.Fatal("constant condition not reported")
	}
	for _, d := range got {
		if d.Sev != analysis.SevInfo {
			t.Errorf("const-cond severity = %s, want info", d.Sev)
		}
	}
	if !strings.Contains(got[0].Msg, "always true") {
		t.Errorf("message %q, want 'always true'", got[0].Msg)
	}
}

// Divergence alone must not trip the deadlock check: the automaton
// admits the path where every PE takes the waiting branch.
func TestCheckDivByConstZero(t *testing.T) {
	diags := analyzeSrc(t, `
poly int x, y;
void main()
{
    poly int z;
    z = 0;
    x = 5 / z;
    y = x % 0;
    x = y / 2;
    return;
}
`)
	got := find(diags, analysis.CheckDivByZero)
	if len(got) != 2 {
		t.Fatalf("div-by-zero diagnostics = %v, want exactly 2", got)
	}
	for _, d := range got {
		if d.Sev != analysis.SevWarning {
			t.Errorf("severity = %s, want warning", d.Sev)
		}
	}
	if got[0].Pos.Line != 7 || got[1].Pos.Line != 8 {
		t.Errorf("positions %s, %s, want lines 7 and 8", got[0].Pos, got[1].Pos)
	}
	if !strings.Contains(got[0].Msg, "division") || !strings.Contains(got[1].Msg, "modulo") {
		t.Errorf("messages %q, %q should name the operation", got[0].Msg, got[1].Msg)
	}
}

func TestBarrierDivergenceNotDeadlock(t *testing.T) {
	diags := analyzeSrc(t, `
poly int x;
void main()
{
    x = iproc % 2;
    if (x) {
        wait;
        x = x + 1;
    }
    wait;
    return;
}
`)
	if got := find(diags, analysis.CheckBarrierDeadlock); len(got) != 0 {
		t.Fatalf("false-positive barrier deadlock: %v", got)
	}
}

func TestBarrierDeadlock(t *testing.T) {
	diags := analyzeSrc(t, `
poly int spin;
void worker()
{
    spin = 0;
    while (1) {
        spin = spin + 1;
    }
    halt;
}
void main()
{
    spawn worker();
    wait;
    return;
}
`)
	got := find(diags, analysis.CheckBarrierDeadlock)
	if len(got) != 1 || got[0].Sev != analysis.SevError {
		t.Fatalf("barrier-deadlock = %v, want one error", got)
	}
	if got[0].Pos.Line != 14 {
		t.Errorf("position %s, want line 14 (the wait)", got[0].Pos)
	}
}

// The workers-terminate variant of the same program is clean: the
// remainder quiesces by halting.
func TestBarrierDeadlockReleasedByTermination(t *testing.T) {
	diags := analyzeSrc(t, `
poly int spin;
void worker()
{
    spin = iproc;
    halt;
}
void main()
{
    spawn worker();
    wait;
    return;
}
`)
	if got := find(diags, analysis.CheckBarrierDeadlock); len(got) != 0 {
		t.Fatalf("false-positive barrier deadlock: %v", got)
	}
}

func TestCheckNoHalt(t *testing.T) {
	g := build(t, `
poly int x;
void main()
{
    x = 0;
    do {
        x = x + 1;
    } while (1);
    return;
}
`)
	// Simplify folds the constant loop condition, so the automaton
	// genuinely never reaches an exit state.
	diags := analysis.Analyze(g, convert(t, g))
	got := find(diags, analysis.CheckNoHalt)
	if len(got) != 1 || got[0].Sev != analysis.SevWarning {
		t.Fatalf("no-halt = %v, want one warning", got)
	}
}

// The whole suite reports zero error-severity findings on the clean
// corpus shapes: barrier phases, communication, calls, spawn.
func TestCleanProgramsNoErrors(t *testing.T) {
	clean := map[string]string{
		"stencil": `
poly int cell, left, right;
void main()
{
    poly int round;
    cell = (iproc * 13) % 31;
    for (round = 0; round < 4; round = round + 1) {
        wait;
        left = cell[[iproc - 1]];
        right = cell[[iproc + 1]];
        wait;
        cell = (left + 2 * cell + right) / 4;
    }
    return;
}
`,
		"farm": `
poly int result;
void worker()
{
    poly int k;
    result = 0;
    for (k = 0; k < iproc + 2; k = k + 1) {
        result = result + k * k;
    }
    halt;
}
void main()
{
    spawn worker();
    spawn worker();
    return;
}
`,
		"gcd": `
poly int r;
int gcd(int a, int b)
{
    if (b == 0) { return a; }
    return gcd(b, a % b);
}
void main()
{
    r = gcd(iproc * 6 + 12, 18);
    return;
}
`,
	}
	for name, src := range clean {
		diags := analyzeSrc(t, src)
		for _, d := range diags {
			if d.Sev == analysis.SevError {
				t.Errorf("%s: unexpected error diagnostic: %s", name, d)
			}
		}
	}
}
