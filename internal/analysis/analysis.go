package analysis

import (
	"msc/internal/cfg"
	"msc/internal/msc"
)

// AnalyzeGraph runs every CFG-level check over a MIMD state graph and
// returns the sorted, deduplicated diagnostics: use-before-init, dead
// stores, unreachable code, and constant branch conditions.
//
// The graph may be raw (straight out of cfg.Build) or simplified; raw
// graphs give the checks their best view of source structure —
// Simplify prunes exactly the unreachable blocks the dead-code check
// wants to report.
func AnalyzeGraph(g *cfg.Graph) []Diagnostic {
	vars := CollectVars(g)
	inits := InitAnalysis(g, vars)
	live := Liveness(g, vars)
	consts := ConstFacts(g, vars)

	var diags []Diagnostic
	diags = append(diags, CheckUninitialized(g, vars, inits)...)
	diags = append(diags, CheckDeadStores(g, vars, live)...)
	diags = append(diags, CheckUnreachableCode(g)...)
	diags = append(diags, CheckConstConditions(g, consts)...)
	diags = append(diags, CheckDivByConstZero(g, consts)...)
	return SortDiagnostics(diags)
}

// Analyze runs the full suite: the CFG-level checks over g plus the
// whole-program automaton checks (barrier deadlock, termination) when
// a is non-nil. g should be the graph the diagnostics ought to be
// positioned against (typically the raw build); a may have been
// converted from a simplified clone of it.
func Analyze(g *cfg.Graph, a *msc.Automaton) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, AnalyzeGraph(g)...)
	if a != nil {
		diags = append(diags, CheckAutomaton(a)...)
	}
	return SortDiagnostics(diags)
}
