// Package analysis implements whole-program static analysis for the
// meta-state converter: a generic iterative dataflow framework over the
// MIMD state graph (reaching definitions, liveness, initialization,
// constant facts) plus parallel-safety checks over the converted
// meta-state automaton (barrier deadlock, termination). The `msc vet`
// subcommand and the root API's Config.Vet are thin wrappers around
// this package.
//
// All checks are tuned to report no error-severity diagnostics on
// correct programs: errors are reserved for facts that hold on every
// execution (a variable no reachable path initializes, a barrier whose
// waiters can never be released), while path-dependent suspicions are
// warnings and stylistic observations are infos.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"msc/internal/ir"
)

// Severity ranks a diagnostic. Only SevError is meant to gate builds:
// vet exits nonzero and Config.Vet fails Compile on errors alone.
type Severity uint8

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// Check identifiers, one per analysis. Stable strings: they appear in
// golden files and are meant for grep/suppression tooling.
const (
	CheckUninit          = "uninit"           // definitely used before initialization
	CheckMaybeUninit     = "maybe-uninit"     // used before initialization on some path
	CheckDeadStore       = "dead-store"       // stored value never observed
	CheckUnreachable     = "unreachable-code" // block can never execute
	CheckConstCond       = "const-cond"       // branch condition is compile-time constant
	CheckDivByZero       = "div-by-zero"      // division/modulo by constant zero
	CheckBarrierDeadlock = "barrier-deadlock" // waiters can never be released
	CheckNoHalt          = "no-halt"          // no execution terminates
	CheckUnreachableMeta = "unreachable-meta" // meta state unreachable from start
)

// Diagnostic is one analysis finding, positioned in the original
// MIMDC source.
type Diagnostic struct {
	Pos   ir.Pos   `json:"pos"`
	Sev   Severity `json:"-"`
	Check string   `json:"check"`
	Msg   string   `json:"msg"`
}

// String renders the diagnostic without a file name:
// "line:col: severity [check] msg".
func (d Diagnostic) String() string {
	if !d.Pos.IsValid() {
		return fmt.Sprintf("%s [%s] %s", d.Sev, d.Check, d.Msg)
	}
	return fmt.Sprintf("%s: %s [%s] %s", d.Pos, d.Sev, d.Check, d.Msg)
}

// Format renders the diagnostic with a leading file name, the
// conventional compiler-diagnostic shape: "file:line:col: severity
// [check] msg". Position-less diagnostics (whole-program findings)
// render as "file: severity [check] msg".
func (d Diagnostic) Format(file string) string {
	if file == "" {
		return d.String()
	}
	return file + ":" + d.String()
}

// SeverityLabel exposes the severity as a string for JSON encoding.
func (d Diagnostic) SeverityLabel() string { return d.Sev.String() }

// HasErrors reports whether any diagnostic is error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Sev == SevError {
			return true
		}
	}
	return false
}

// CountBySeverity returns (errors, warnings, infos).
func CountBySeverity(diags []Diagnostic) (errs, warns, infos int) {
	for _, d := range diags {
		switch d.Sev {
		case SevError:
			errs++
		case SevWarning:
			warns++
		default:
			infos++
		}
	}
	return
}

// SortDiagnostics orders diagnostics by source position, then severity
// (most severe first), then check id and message, and drops exact
// duplicates (identical findings reached through distinct paths, e.g.
// inline-expanded call sites).
func SortDiagnostics(diags []Diagnostic) []Diagnostic {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos != b.Pos {
			return a.Pos.Before(b.Pos)
		}
		if a.Sev != b.Sev {
			return a.Sev > b.Sev
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Render formats a sorted diagnostic list one per line.
func Render(file string, diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.Format(file))
		sb.WriteByte('\n')
	}
	return sb.String()
}
