package analysis

import (
	"testing"

	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/ir"
)

// mini builds a graph from hand-written blocks; Blocks[i].ID is set to i.
func mini(entry int, blocks ...*cfg.Block) *cfg.Graph {
	for i, b := range blocks {
		b.ID = i
	}
	words := 8
	return &cfg.Graph{
		Blocks:  blocks,
		Entry:   entry,
		Words:   words,
		RetSlot: map[string]int{},
		VarSlot: map[string]int{},
	}
}

func st(slot int, name string) ir.Instr {
	return ir.Instr{Op: ir.StLocal, Imm: int64(slot), Sym: name}
}

func ld(slot int, name string) ir.Instr {
	return ir.Instr{Op: ir.LdLocal, Imm: int64(slot), Sym: name}
}

func elems(s *bitset.Set) []int { return s.Elems() }

func wantSet(t *testing.T, what string, got *bitset.Set, want ...int) {
	t.Helper()
	if !got.Equal(bitset.Of(want...)) {
		t.Errorf("%s = %v, want %v", what, elems(got), want)
	}
}

// TestSolveForwardUnion checks gen/kill propagation through a diamond:
// facts from both arms union at the join.
func TestSolveForwardUnion(t *testing.T) {
	//      0: gen{0}
	//     / \
	//    1   2        1: gen{1}  2: gen{2}, kill{0}
	//     \ /
	//      3
	g := mini(0,
		&cfg.Block{Term: cfg.Branch, Next: 1, FNext: 2},
		&cfg.Block{Term: cfg.Goto, Next: 3},
		&cfg.Block{Term: cfg.Goto, Next: 3},
		&cfg.Block{Term: cfg.End},
	)
	gen := map[int][]int{0: {0}, 1: {1}, 2: {2}}
	kill := map[int][]int{2: {0}}
	res := Solve(g, Problem{
		Dir:      Forward,
		Meet:     Union,
		Universe: 4,
		Transfer: func(b *cfg.Block, in *bitset.Set) *bitset.Set {
			out := in.Clone()
			for _, k := range kill[b.ID] {
				out.Remove(k)
			}
			for _, x := range gen[b.ID] {
				out.Add(x)
			}
			return out
		},
	})
	wantSet(t, "In[3]", res.In[3], 0, 1, 2)
	wantSet(t, "Out[1]", res.Out[1], 0, 1)
	wantSet(t, "Out[2]", res.Out[2], 2)
	wantSet(t, "In[0]", res.In[0]) // entry boundary is empty
}

// TestSolveForwardIntersect checks a must-analysis: only facts
// generated on every path survive the join.
func TestSolveForwardIntersect(t *testing.T) {
	g := mini(0,
		&cfg.Block{Term: cfg.Branch, Next: 1, FNext: 2},
		&cfg.Block{Term: cfg.Goto, Next: 3},
		&cfg.Block{Term: cfg.Goto, Next: 3},
		&cfg.Block{Term: cfg.End},
	)
	gen := map[int][]int{0: {0}, 1: {1, 2}, 2: {2}}
	res := Solve(g, Problem{
		Dir:      Forward,
		Meet:     Intersect,
		Universe: 4,
		Transfer: func(b *cfg.Block, in *bitset.Set) *bitset.Set {
			out := in.Clone()
			for _, x := range gen[b.ID] {
				out.Add(x)
			}
			return out
		},
	})
	// Both arms add 2; only arm 1 adds 1. Fact 0 flows from the entry.
	wantSet(t, "In[3]", res.In[3], 0, 2)
}

// TestSolveBackwardUnion checks liveness-style flow against the edges.
func TestSolveBackwardUnion(t *testing.T) {
	//  0 -> 1 -> 2(end)
	// use{1: {3}}, def{1: {5}}; boundary (live at exit) = {5}
	g := mini(0,
		&cfg.Block{Term: cfg.Goto, Next: 1},
		&cfg.Block{Term: cfg.Goto, Next: 2},
		&cfg.Block{Term: cfg.End},
	)
	res := Solve(g, Problem{
		Dir:      Backward,
		Meet:     Union,
		Universe: 8,
		Boundary: bitset.Of(5),
		Transfer: func(b *cfg.Block, out *bitset.Set) *bitset.Set {
			in := out.Clone()
			if b.ID == 1 {
				in.Remove(5) // def kills
				in.Add(3)    // use gens
			}
			return in
		},
	})
	// In/Out are entry/exit facts regardless of direction.
	wantSet(t, "Out[2]", res.Out[2], 5)
	wantSet(t, "In[1]", res.In[1], 3)
	wantSet(t, "Out[0]", res.Out[0], 3)
}

// TestSolveLoopFixpoint checks convergence over a cycle: a fact
// generated before a loop survives around the back edge.
func TestSolveLoopFixpoint(t *testing.T) {
	//  0 -> 1 <-> 2 ; 1 -> 3(end)
	g := mini(0,
		&cfg.Block{Term: cfg.Goto, Next: 1},
		&cfg.Block{Term: cfg.Branch, Next: 2, FNext: 3},
		&cfg.Block{Term: cfg.Goto, Next: 1},
		&cfg.Block{Term: cfg.End},
	)
	gen := map[int][]int{0: {0}, 2: {1}}
	res := Solve(g, Problem{
		Dir:      Forward,
		Meet:     Union,
		Universe: 2,
		Transfer: func(b *cfg.Block, in *bitset.Set) *bitset.Set {
			out := in.Clone()
			for _, x := range gen[b.ID] {
				out.Add(x)
			}
			return out
		},
	})
	wantSet(t, "In[1]", res.In[1], 0, 1) // via back edge from 2
	wantSet(t, "In[3]", res.In[3], 0, 1)
}

// TestSolveUnreachable checks that a block with no path from the
// boundary keeps the optimistic top value instead of poisoning the
// solution (Intersect) or leaking facts (Union).
func TestSolveUnreachable(t *testing.T) {
	g := mini(0,
		&cfg.Block{Term: cfg.End},
		&cfg.Block{Term: cfg.End}, // unreachable
	)
	union := Solve(g, Problem{
		Dir: Forward, Meet: Union, Universe: 3,
		Transfer: func(b *cfg.Block, in *bitset.Set) *bitset.Set { return in.Clone() },
	})
	wantSet(t, "union In[1]", union.In[1]) // top for Union = empty
	must := Solve(g, Problem{
		Dir: Forward, Meet: Intersect, Universe: 3,
		Transfer: func(b *cfg.Block, in *bitset.Set) *bitset.Set { return in.Clone() },
	})
	wantSet(t, "must In[1]", must.In[1], 0, 1, 2) // top for Intersect = full
}

// TestSolveSpawnEdges checks that spawn arcs carry facts into children.
func TestSolveSpawnEdges(t *testing.T) {
	g := mini(0,
		&cfg.Block{Term: cfg.Spawn, Next: 1, SpawnNext: 2},
		&cfg.Block{Term: cfg.End},
		&cfg.Block{Term: cfg.Halt},
	)
	gen := map[int][]int{0: {0}}
	res := Solve(g, Problem{
		Dir: Forward, Meet: Union, Universe: 1,
		Transfer: func(b *cfg.Block, in *bitset.Set) *bitset.Set {
			out := in.Clone()
			for _, x := range gen[b.ID] {
				out.Add(x)
			}
			return out
		},
	})
	wantSet(t, "In[1]", res.In[1], 0)
	wantSet(t, "In[2]", res.In[2], 0)
}

// TestReachingDefs checks the concrete pass end to end on a diamond
// with a redefinition in one arm.
func TestReachingDefs(t *testing.T) {
	g := mini(0,
		&cfg.Block{Code: []ir.Instr{st(3, "x")}, Term: cfg.Branch, Next: 1, FNext: 2},
		&cfg.Block{Code: []ir.Instr{st(3, "x")}, Term: cfg.Goto, Next: 3},
		&cfg.Block{Code: []ir.Instr{st(4, "y")}, Term: cfg.Goto, Next: 3},
		&cfg.Block{Code: []ir.Instr{ld(3, "x")}, Term: cfg.End},
	)
	r := ReachingDefs(g)
	if len(r.Sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(r.Sites))
	}
	// At the join: x's def from block 1 (which killed block 0's) and
	// x's def from block 0 via block 2's arm, plus y's def.
	in3 := r.In[3]
	var reaching []DefSite
	for _, id := range in3.Elems() {
		reaching = append(reaching, r.Sites[id])
	}
	byBlock := map[int]int{}
	for _, s := range reaching {
		byBlock[s.Block]++
	}
	if byBlock[0] != 1 || byBlock[1] != 1 || byBlock[2] != 1 {
		t.Errorf("reaching defs at join by block = %v, want one from each of 0,1,2", byBlock)
	}
}

// TestLivenessBoundary checks that globals stay live at exit and that
// remote slots never die.
func TestLivenessBoundary(t *testing.T) {
	g := mini(0,
		&cfg.Block{Code: []ir.Instr{st(3, "x"), st(4, "y")}, Term: cfg.End},
	)
	g.VarSlot["y"] = 4
	vars := CollectVars(g)
	vars.Remote.Add(5)
	live := Liveness(g, vars)
	if live.In[0].Has(3) {
		t.Error("slot 3 live at entry despite being overwritten and not exit-live")
	}
	if !live.Out[0].Has(4) {
		t.Error("global slot 4 not live at exit")
	}
	if !live.In[0].Has(5) {
		t.Error("remote slot 5 not permanently live")
	}
}
