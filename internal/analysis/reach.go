package analysis

import (
	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/ir"
)

// DefSite is one scalar store: a definition point of a memory slot.
type DefSite struct {
	Block int // block ID
	Index int // instruction index within the block
	Slot  int
	Pos   ir.Pos
}

// ReachResult is the classic reaching-definitions solution: bit i of a
// block's In/Out set is set iff Sites[i] may reach that program point.
type ReachResult struct {
	Sites []DefSite
	*Result
}

// ReachingDefs solves forward may reaching definitions over every
// scalar store (StLocal/StMono), compiler temporaries included.
func ReachingDefs(g *cfg.Graph) *ReachResult {
	var sites []DefSite
	defsOf := make(map[int][]int) // slot -> site ids defining it
	lastIn := make(map[int][]int) // block -> site ids of last defs per slot
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		last := make(map[int]int) // slot -> site id
		for i, in := range b.Code {
			if in.Op == ir.StLocal || in.Op == ir.StMono {
				id := len(sites)
				slot := int(in.Imm)
				sites = append(sites, DefSite{Block: b.ID, Index: i, Slot: slot, Pos: in.Pos})
				defsOf[slot] = append(defsOf[slot], id)
				last[slot] = id
			}
		}
		for _, id := range last {
			lastIn[b.ID] = append(lastIn[b.ID], id)
		}
	}

	gen := make(map[int]*bitset.Set)
	kill := make(map[int]*bitset.Set)
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		g1 := bitset.New(len(sites))
		k1 := bitset.New(len(sites))
		for _, id := range lastIn[b.ID] {
			g1.Add(id)
			for _, other := range defsOf[sites[id].Slot] {
				if other != id {
					k1.Add(other)
				}
			}
		}
		gen[b.ID] = g1
		kill[b.ID] = k1
	}

	res := Solve(g, Problem{
		Dir:      Forward,
		Meet:     Union,
		Universe: len(sites),
		Transfer: func(b *cfg.Block, in *bitset.Set) *bitset.Set {
			return in.Minus(kill[b.ID]).Union(gen[b.ID])
		},
	})
	return &ReachResult{Sites: sites, Result: res}
}
