package msc

import (
	"fmt"
	"strings"
	"testing"

	"msc/internal/bitset"
	"msc/internal/cfg"
)

// listing4 is the paper's running example (Listings 1 and 4).
const listing4 = `
void main()
{
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    return;
}
`

// listing3 adds the barrier before F (the paper's Listing 3).
const listing3 = `
void main()
{
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    wait;
    return;
}
`

func graph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	g := cfg.Simplify(cfg.MustBuild(src))
	if err := cfg.Verify(g); err != nil {
		t.Fatalf("cfg verify: %v", err)
	}
	return g
}

func convert(t *testing.T, src string, opt Options) (*cfg.Graph, *Automaton) {
	t.Helper()
	g := graph(t, src)
	a, err := Convert(g, opt)
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	if err := Check(a); err != nil {
		t.Fatalf("check: %v\n%s", err, a)
	}
	return g, a
}

// figure1Roles returns the block IDs playing the paper's state roles
// 0 (A), 2 (B;C), 6 (D;E), 9 (F) in the simplified Listing 1 graph.
func figure1Roles(t *testing.T, g *cfg.Graph) (sA, sB, sD, sF int) {
	t.Helper()
	a := g.Block(g.Entry)
	if a.Term != cfg.Branch {
		t.Fatalf("entry is not a branch")
	}
	return a.ID, a.Next, a.FNext, g.Block(a.Next).FNext
}

// TestFigure2 reproduces Figure 2: the base conversion of Listing 1
// yields exactly eight meta states with the figure's arc structure.
func TestFigure2(t *testing.T) {
	g, a := convert(t, listing4, DefaultOptions(false))
	if got := a.NumStates(); got != 8 {
		t.Fatalf("meta states = %d, want 8 (Figure 2)\n%s", got, a)
	}
	sA, sB, sD, sF := figure1Roles(t, g)
	wantSets := []*bitset.Set{
		bitset.Of(sA), bitset.Of(sB), bitset.Of(sD), bitset.Of(sB, sD),
		bitset.Of(sF), bitset.Of(sB, sF), bitset.Of(sD, sF), bitset.Of(sB, sD, sF),
	}
	for _, set := range wantSets {
		if a.Find(set) == nil {
			t.Errorf("missing meta state %s", set)
		}
	}

	succs := func(set *bitset.Set) map[string]bool {
		ms := a.Find(set)
		out := map[string]bool{}
		for _, to := range ms.Trans {
			out[a.States[to].Set.String()] = true
		}
		return out
	}
	// Start {A} -> {B}, {D}, {B,D}.
	start := succs(bitset.Of(sA))
	for _, w := range []*bitset.Set{bitset.Of(sB), bitset.Of(sD), bitset.Of(sB, sD)} {
		if !start[w.String()] {
			t.Errorf("start lacks arc to %s; has %v", w, start)
		}
	}
	if len(start) != 3 {
		t.Errorf("start has %d arcs, want 3", len(start))
	}
	// {B,D} -> {B,D}, {B,F}, {D,F}, {F}, {B,D,F}: five arcs.
	bd := succs(bitset.Of(sB, sD))
	if len(bd) != 5 {
		t.Errorf("{B,D} has %d arcs, want 5: %v", len(bd), bd)
	}
	// {F} is terminal: exit only.
	f := a.Find(bitset.Of(sF))
	if len(f.Trans) != 0 || !f.Exit {
		t.Errorf("{F} should be exit-only; trans=%v exit=%v", f.Trans, f.Exit)
	}
	if a.MaxWidth() != 3 {
		t.Errorf("max width = %d, want 3", a.MaxWidth())
	}
}

// TestFigure5 reproduces Figure 5: compression collapses Listing 1's
// automaton to two meta states with unconditional transitions.
func TestFigure5(t *testing.T) {
	g, a := convert(t, listing4, DefaultOptions(true))
	if got := a.NumStates(); got != 2 {
		t.Fatalf("meta states = %d, want 2 (Figure 5)\n%s", got, a)
	}
	sA, sB, sD, sF := figure1Roles(t, g)
	start := a.State(a.Start)
	if !start.Set.Equal(bitset.Of(sA)) {
		t.Fatalf("start = %s, want {%d}", start.Set, sA)
	}
	big := a.Find(bitset.Of(sB, sD, sF))
	if big == nil {
		t.Fatalf("missing wide meta state {B,D,F}\n%s", a)
	}
	// Both transitions are unconditional: start -> big, big -> big.
	if len(start.Trans) != 1 || start.Trans[0] != big.ID {
		t.Fatalf("start trans = %v, want [%d]", start.Trans, big.ID)
	}
	if len(big.Trans) != 1 || big.Trans[0] != big.ID {
		t.Fatalf("big trans = %v, want self-loop", big.Trans)
	}
}

// TestFigure6 reproduces Figure 6: with the barrier of Listing 3, the
// base conversion yields five meta states — barrier-wait states are
// filtered from mixed aggregates and the all-barrier state releases.
func TestFigure6(t *testing.T) {
	g, a := convert(t, listing3, DefaultOptions(false))
	if got := a.NumStates(); got != 5 {
		t.Fatalf("meta states = %d, want 5 (Figure 6)\n%s", got, a)
	}
	sA, sB, sD, _ := figure1Roles(t, g)
	// The barrier state W absorbed F by straightening.
	var sW int
	for _, b := range g.Blocks {
		if b.Barrier {
			sW = b.ID
		}
	}
	for _, set := range []*bitset.Set{
		bitset.Of(sA), bitset.Of(sB), bitset.Of(sD), bitset.Of(sB, sD), bitset.Of(sW),
	} {
		if a.Find(set) == nil {
			t.Errorf("missing meta state %s\n%s", set, a)
		}
	}
	// {B} transitions: to {B} (keep looping) and to {W} (everyone at the
	// barrier); the mixed {B,W} aggregate filters back to {B}.
	b := a.Find(bitset.Of(sB))
	if len(b.Trans) != 2 {
		t.Fatalf("{B} arcs = %d, want 2\n%s", len(b.Trans), a)
	}
	// The release state {W} runs F and exits.
	w := a.Find(bitset.Of(sW))
	if !w.Exit || len(w.Trans) != 0 {
		t.Fatalf("{W} should exit; trans=%v exit=%v", w.Trans, w.Exit)
	}
}

func TestBarrierLookupDispatch(t *testing.T) {
	g, a := convert(t, listing3, DefaultOptions(false))
	sA, sB, _, _ := figure1Roles(t, g)
	var sW int
	for _, b := range g.Blocks {
		if b.Barrier {
			sW = b.ID
		}
	}
	// Mixed aggregate {B,W}: barrier subtracted -> {B}.
	ms, err := a.Lookup(bitset.Of(sB, sW))
	if err != nil || !ms.Set.Equal(bitset.Of(sB)) {
		t.Fatalf("Lookup({B,W}) = %v, %v; want {B}", ms, err)
	}
	// All-barrier aggregate releases.
	ms, err = a.Lookup(bitset.Of(sW))
	if err != nil || !ms.Set.Equal(bitset.Of(sW)) {
		t.Fatalf("Lookup({W}) = %v, %v; want {W}", ms, err)
	}
	// Empty aggregate: program complete.
	ms, err = a.Lookup(bitset.New(0))
	if ms != nil || err != nil {
		t.Fatalf("Lookup({}) = %v, %v; want nil, nil", ms, err)
	}
	// Unknown aggregate errors.
	if _, err := a.Lookup(bitset.Of(sA, sB)); err == nil {
		t.Fatalf("Lookup of unrealizable aggregate succeeded")
	}
}

func TestBarrierExactMode(t *testing.T) {
	opt := DefaultOptions(false)
	opt.BarrierExact = true
	_, a := convert(t, listing3, opt)
	// Exact mode tracks waiter occupancy: more states than Figure 6's 5.
	if a.NumStates() <= 5 {
		t.Fatalf("exact mode states = %d, want > 5", a.NumStates())
	}
	// Mixed barrier meta states exist and are legal in exact mode.
	mixed := false
	for _, s := range a.States {
		in := s.Set.Intersect(a.Barriers)
		if !in.Empty() && !in.Equal(s.Set) {
			mixed = true
		}
	}
	if !mixed {
		t.Fatalf("exact mode produced no mixed barrier states")
	}
}

func TestCompressedBarrier(t *testing.T) {
	_, a := convert(t, listing3, DefaultOptions(true))
	// Compression plus barrier: the loops collapse to one wide state,
	// the barrier still forces a separate release state.
	if a.NumStates() > 4 {
		t.Fatalf("compressed+barrier states = %d, want <= 4\n%s", a.NumStates(), a)
	}
	found := false
	for _, s := range a.States {
		if !s.Set.Intersect(a.Barriers).Empty() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no release state in compressed+barrier automaton\n%s", a)
	}
}

func TestMergeSubsetsRequiresCompress(t *testing.T) {
	g := graph(t, listing4)
	_, err := Convert(g, Options{MergeSubsets: true})
	if err == nil || !strings.Contains(err.Error(), "MergeSubsets requires Compress") {
		t.Fatalf("err = %v", err)
	}
}

func TestSpawnContributesBothPaths(t *testing.T) {
	_, a := convert(t, `
void worker() { poly int w; w = 1; halt; }
void main()
{
    spawn worker();
    return;
}
`, DefaultOptions(false))
	// The meta state containing the spawn block must have a successor
	// containing both the continuation and the worker entry.
	start := a.State(a.Start)
	if len(start.Trans) != 1 {
		t.Fatalf("spawn state arcs = %d, want 1 (both paths always)\n%s", len(start.Trans), a)
	}
	if a.States[start.Trans[0]].Set.Len() != 2 {
		t.Fatalf("spawn successor = %s, want width 2", a.States[start.Trans[0]].Set)
	}
}

func TestReturnMultiwaySubsets(t *testing.T) {
	// Two call sites: the shared exit's RetBr contributes every
	// non-empty subset of its return targets in base mode.
	_, a := convert(t, `
int id(int v) { return v; }
void main()
{
    poly int a;
    if (a) { a = id(1); } else { a = id(2); }
    return;
}
`, DefaultOptions(false))
	// Find the meta state containing only the RetBr block.
	var retID int = -1
	for _, b := range a.G.Blocks {
		if b != nil && b.Term == cfg.RetBr {
			retID = b.ID
		}
	}
	if retID < 0 {
		t.Fatalf("no RetBr block")
	}
	ms := a.Find(bitset.Of(retID))
	if ms == nil {
		t.Skipf("RetBr state never isolated in a singleton meta state")
	}
	if len(ms.Trans) != 3 {
		t.Fatalf("RetBr meta state arcs = %d, want 3 (both sites, either site)", len(ms.Trans))
	}
}

func TestStateExplosionGuard(t *testing.T) {
	// Sequential loops desynchronize processors: PEs can occupy any
	// combination of the loop states simultaneously, so the base state
	// space grows exponentially (§1.2); the guard must stop it cleanly.
	var sb strings.Builder
	sb.WriteString("void main() {\n    poly int x;\n")
	for i := 0; i < 12; i++ {
		sb.WriteString("    do { x = x - 1; } while (x);\n")
	}
	sb.WriteString("    return;\n}\n")
	g := graph(t, sb.String())
	opt := DefaultOptions(false)
	opt.MaxStates = 50
	_, err := Convert(g, opt)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v, want state-space guard", err)
	}
	// Compression tames the same program.
	a, err := Convert(g, DefaultOptions(true))
	if err != nil {
		t.Fatalf("compressed convert: %v", err)
	}
	if a.NumStates() > 30 {
		t.Fatalf("compressed states = %d, want small", a.NumStates())
	}
}

func TestConvertDoesNotMutateInput(t *testing.T) {
	g := graph(t, listing4)
	before := g.String()
	opt := DefaultOptions(false)
	opt.TimeSplit = true
	if _, err := Convert(g, opt); err != nil {
		t.Fatal(err)
	}
	if g.String() != before {
		t.Fatalf("Convert mutated the input graph")
	}
}

func TestStringAndDot(t *testing.T) {
	_, a := convert(t, listing4, DefaultOptions(false))
	s := a.String()
	if !strings.Contains(s, "start: ms0") || !strings.Contains(s, "-> exit") {
		t.Fatalf("String output unexpected:\n%s", s)
	}
	d := a.Dot("fig2")
	if !strings.Contains(d, "digraph") || !strings.Contains(d, "-> exit") {
		t.Fatalf("Dot output unexpected:\n%s", d)
	}
}

func TestDeterminism(t *testing.T) {
	g := graph(t, listing3)
	a1 := MustConvert(g, DefaultOptions(false))
	a2 := MustConvert(g, DefaultOptions(false))
	if a1.String() != a2.String() {
		t.Fatalf("conversion not deterministic")
	}
}

func TestRetSubsetFallbackOverApprox(t *testing.T) {
	// Twelve call sites exceed a tiny MaxRetSubsets: conversion must
	// mark the automaton over-approximated instead of enumerating 2^12
	// return-site subsets.
	var sb strings.Builder
	sb.WriteString("poly int r;\nint id(int v) { return v; }\nvoid main() {\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, "    r = r + id(%d);\n", i)
	}
	sb.WriteString("    return;\n}\n")
	g := graph(t, sb.String())
	opt := DefaultOptions(false)
	opt.MaxRetSubsets = 2
	opt.MaxStates = 1 << 17
	a, err := Convert(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !a.OverApprox {
		t.Fatalf("fallback did not mark the automaton over-approximated")
	}
}

func TestSuccsAndDotExitFree(t *testing.T) {
	g := graph(t, `void main() { poly int x; for (;;) { x = x + 1; } }`)
	a := MustConvert(g, DefaultOptions(false))
	// Infinite loop: no state exits, the dot has no exit node.
	if strings.Contains(a.Dot("loop"), "exit") {
		t.Fatalf("exit node rendered for exit-free automaton")
	}
	for _, s := range a.States {
		succs := a.Succs(s)
		if len(succs) != len(s.Trans) {
			t.Fatalf("Succs length mismatch")
		}
		for i, to := range s.Trans {
			if succs[i].ID != to {
				t.Fatalf("Succs order mismatch")
			}
		}
	}
}

func TestMustConvertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustConvert did not panic")
		}
	}()
	g := graph(t, SeqLoopsSrc(10))
	opt := DefaultOptions(false)
	opt.MaxStates = 10
	MustConvert(g, opt)
}

// SeqLoopsSrc builds k sequential divergent loops (local copy to avoid
// importing the harness from an internal package it imports).
func SeqLoopsSrc(k int) string {
	var sb strings.Builder
	sb.WriteString("void main() {\n    poly int x;\n    x = iproc % 4 + 1;\n")
	for i := 0; i < k; i++ {
		sb.WriteString("    do { x = x - 1; } while (x > 0);\n")
		fmt.Fprintf(&sb, "    x = iproc %% %d + 1;\n", i+2)
	}
	sb.WriteString("    return;\n}\n")
	return sb.String()
}

// TestZeroOptionsBackfillMatchesDefaults pins fillDefaults to
// DefaultOptions: a zero-valued Options must convert under exactly the
// documented defaults. The MaxRestarts pair in particular diverged once
// (16384 vs 1024), silently giving zero-valued Options a 16x smaller
// restart budget than the documented default.
func TestZeroOptionsBackfillMatchesDefaults(t *testing.T) {
	var o Options
	o.fillDefaults()
	d := DefaultOptions(false)
	d.fillDefaults() // resolves Workers the same way
	if o.MaxRestarts != d.MaxRestarts || o.MaxRestarts != maxRestartsDefault {
		t.Fatalf("MaxRestarts backfill = %d, DefaultOptions = %d, want both %d",
			o.MaxRestarts, d.MaxRestarts, maxRestartsDefault)
	}
	if o.MaxStates != d.MaxStates {
		t.Fatalf("MaxStates backfill = %d, DefaultOptions = %d", o.MaxStates, d.MaxStates)
	}
	if o.SplitDelta != d.SplitDelta || o.SplitPercent != d.SplitPercent {
		t.Fatalf("split thresholds backfill (%d, %d) != DefaultOptions (%d, %d)",
			o.SplitDelta, o.SplitPercent, d.SplitDelta, d.SplitPercent)
	}
	if o.MaxRetSubsets != d.MaxRetSubsets {
		t.Fatalf("MaxRetSubsets backfill = %d, DefaultOptions = %d", o.MaxRetSubsets, d.MaxRetSubsets)
	}
	if o.Workers < 1 || d.Workers < 1 {
		t.Fatalf("Workers not resolved: backfill = %d, DefaultOptions = %d", o.Workers, d.Workers)
	}
}
