// Package msc implements Meta-State Conversion (Dietz, TR-EE 93-6): it
// converts a MIMD state graph into a single finite automaton over meta
// states — aggregate sets of simultaneously occupied MIMD states — so
// that the program can execute on SIMD hardware with one program
// counter. The package provides the base conversion algorithm (§2.3),
// MIMD-state time splitting (§2.4), meta-state compression (§2.5), and
// barrier-synchronization state filtering (§2.6).
package msc

import (
	"fmt"
	"strings"
	"sync"

	"msc/internal/bitset"
	"msc/internal/cfg"
)

// MetaState is one state of the meta-state automaton: the set of MIMD
// states that may be simultaneously occupied, plus the transitions out.
//
// Each transition's dispatch key is exactly the destination meta state's
// Set: at run time the aggregate program counter (the §3.2.3 "apc"
// global-or) is reduced by the §3.2.4 barrier rule — if it is not
// contained in the set of all barrier states, the barrier states are
// subtracted — and the result selects the destination whose Set matches.
type MetaState struct {
	ID  int
	Set *bitset.Set
	// Trans lists the destination meta state IDs, sorted by their sets'
	// canonical keys and deduplicated.
	Trans []int
	// Exit reports that execution may complete here (every PE reaches a
	// no-exit MIMD state, §3.2.1).
	Exit bool
}

// Automaton is the meta-state automaton for a program.
type Automaton struct {
	// G is the MIMD state graph the automaton was built from. When time
	// splitting ran, this is the split copy, not the graph passed in.
	G *cfg.Graph
	// States holds the meta states; States[i].ID == i. Start is the meta
	// state formed from the set of MIMD start states (§2.3).
	States []*MetaState
	Start  int
	// Barriers is the set of barrier-wait MIMD states (§2.6).
	Barriers *bitset.Set
	// Opt records the options the conversion ran with.
	Opt Options
	// Splits counts MIMD states split by the §2.4 timing heuristic;
	// Restarts counts conversion restarts those splits forced.
	Splits   int
	Restarts int
	// OverApprox reports that some contribution was over-approximated
	// (a return branch wider than Options.MaxRetSubsets used the
	// all-targets rule), so runtime aggregates may be strict subsets of
	// meta-state sets and dispatch must accept covering supersets.
	OverApprox bool

	// index is the hash-consed set→ID index built by conversion (safe
	// for concurrent read-only lookups); memo carries the per-block
	// contribution memo so post-hoc queries (RawSuccessors, Check) reuse
	// the conversion's work.
	index *internTable
	memo  *contribMemo

	expMu sync.Mutex
	exp   *expander
}

// State returns the meta state with the given ID, or nil.
func (a *Automaton) State(id int) *MetaState {
	if id < 0 || id >= len(a.States) {
		return nil
	}
	return a.States[id]
}

// Find returns the meta state with exactly the given MIMD state set, or
// nil.
func (a *Automaton) Find(set *bitset.Set) *MetaState {
	if a.index == nil {
		return nil
	}
	if id, ok := a.index.lookup(set.Hash(), set, a.States); ok {
		return a.States[id]
	}
	return nil
}

// Lookup dispatches an aggregate program counter to the next meta state,
// applying the §3.2.4 barrier rule: if the aggregate is contained in the
// set of all barrier states the transition proceeds normally; otherwise
// the barrier states are subtracted first (those PEs wait). An empty
// aggregate means the program has completed: Lookup returns (nil, nil).
func (a *Automaton) Lookup(apc *bitset.Set) (*MetaState, error) {
	if apc.Empty() {
		return nil, nil
	}
	key := apc
	if !a.Opt.BarrierExact && !apc.Subset(a.Barriers) {
		key = apc.Minus(a.Barriers)
		if key.Empty() {
			return nil, fmt.Errorf("msc: aggregate %s empties after barrier subtraction", apc)
		}
	}
	ms := a.Find(key)
	if ms == nil && (a.Opt.Compress || a.Opt.MergeSubsets || a.OverApprox) {
		// Compressed/merged automata over-approximate occupancy: the
		// realizable aggregate may be a strict subset of the meta state
		// that covers it ("the case of both successors can always
		// emulate either successor", §2.5). Dispatch to the smallest
		// covering state.
		for _, s := range a.States {
			if key.Subset(s.Set) && (ms == nil || s.Set.Len() < ms.Set.Len()) {
				ms = s
			}
		}
	}
	if ms == nil {
		return nil, fmt.Errorf("msc: no meta state for aggregate %s (dispatch key %s)", apc, key)
	}
	return ms, nil
}

// RawSuccessors enumerates the distinct aggregate successor sets of a
// meta-state set exactly as conversion did (§2.3 enumeration under the
// automaton's own options) — before the §2.6 barrier filtering is
// applied. An empty aggregate in the result means every member can
// terminate there. Whole-program checks (internal/analysis) use this
// to reason about which successors contain barrier waiters, which the
// filtered transition relation hides.
func (a *Automaton) RawSuccessors(set *bitset.Set) []*bitset.Set {
	a.expMu.Lock()
	defer a.expMu.Unlock()
	if a.exp == nil {
		memo := a.memo
		if memo == nil {
			memo = &contribMemo{}
			memo.update(a.G, a.Barriers, a.Opt)
		}
		a.exp = newExpander(a.G, a.Barriers, a.Opt, memo, nil)
	}
	return a.exp.expand(set).raw
}

// Reindex rebuilds the hash-consed set→ID index from States. Conversion
// builds the index as a side effect; an automaton deserialized by the
// artifact codec arrives without one and calls Reindex so Find (and
// through it Lookup, the engines' dispatch path) works identically on a
// cache hit. It fails if two states carry equal sets — that is a corrupt
// artifact, not a valid automaton.
func (a *Automaton) Reindex() error {
	t := &internTable{}
	for _, s := range a.States {
		h := s.Set.Hash()
		if id, ok := t.lookup(h, s.Set, a.States); ok {
			return fmt.Errorf("msc: duplicate meta-state set %s (states %d and %d)", s.Set, id, s.ID)
		}
		t.insert(h, s.ID)
	}
	a.index = t
	return nil
}

// NumStates returns the number of meta states.
func (a *Automaton) NumStates() int { return len(a.States) }

// NumTransitions returns the total number of transition arcs.
func (a *Automaton) NumTransitions() int {
	n := 0
	for _, s := range a.States {
		n += len(s.Trans)
	}
	return n
}

// Succs returns the destination meta states of s.
func (a *Automaton) Succs(s *MetaState) []*MetaState {
	out := make([]*MetaState, len(s.Trans))
	for i, to := range s.Trans {
		out[i] = a.States[to]
	}
	return out
}

// MaxWidth returns the widest meta state (most MIMD states merged); the
// §2.5 compression trade-off makes meta states wider in exchange for
// fewer of them.
func (a *Automaton) MaxWidth() int {
	w := 0
	for _, s := range a.States {
		if n := s.Set.Len(); n > w {
			w = n
		}
	}
	return w
}

// String renders the automaton as readable text.
func (a *Automaton) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "start: ms%d %s\n", a.Start, a.States[a.Start].Set)
	for _, s := range a.States {
		fmt.Fprintf(&sb, "ms%d %s:\n", s.ID, s.Set)
		for _, to := range s.Trans {
			fmt.Fprintf(&sb, "    -> ms%d %s\n", to, a.States[to].Set)
		}
		if s.Exit {
			sb.WriteString("    -> exit\n")
		}
	}
	return sb.String()
}

// Dot renders the automaton in Graphviz format (Figures 2, 5, 6 style).
func (a *Automaton) Dot(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [shape=ellipse];\n", title)
	for _, s := range a.States {
		fmt.Fprintf(&sb, "  m%d [label=\"%s\"];\n", s.ID, strings.Trim(s.Set.String(), "{}"))
	}
	anyExit := false
	for _, s := range a.States {
		for _, to := range s.Trans {
			fmt.Fprintf(&sb, "  m%d -> m%d;\n", s.ID, to)
		}
		if s.Exit {
			fmt.Fprintf(&sb, "  m%d -> exit;\n", s.ID)
			anyExit = true
		}
	}
	fmt.Fprintf(&sb, "  start [shape=point];\n  start -> m%d;\n", a.Start)
	if anyExit {
		sb.WriteString("  exit [shape=doublecircle label=\"\"];\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DotHeat renders the automaton in Graphviz format as a hot-spot
// heatmap: share[id] in [0,1] is each meta state's fraction of some
// execution quantity (typically its cycle share from a profiled run),
// drawn as red fill saturation with the percentage in the node label.
// States missing from share (or out of range) render unfilled.
func (a *Automaton) DotHeat(title string, share []float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [shape=ellipse];\n", title)
	for _, s := range a.States {
		label := strings.Trim(s.Set.String(), "{}")
		if s.ID < len(share) && share[s.ID] >= 0 {
			f := share[s.ID]
			if f > 1 {
				f = 1
			}
			// HSV red ramp: saturation tracks the share, so hot states
			// are vivid and cold states near-white.
			fmt.Fprintf(&sb, "  m%d [label=\"%s\\n%.1f%%\" style=filled fillcolor=\"0.000 %.3f 1.000\"];\n",
				s.ID, label, f*100, f)
		} else {
			fmt.Fprintf(&sb, "  m%d [label=\"%s\"];\n", s.ID, label)
		}
	}
	anyExit := false
	for _, s := range a.States {
		for _, to := range s.Trans {
			fmt.Fprintf(&sb, "  m%d -> m%d;\n", s.ID, to)
		}
		if s.Exit {
			fmt.Fprintf(&sb, "  m%d -> exit;\n", s.ID)
			anyExit = true
		}
	}
	fmt.Fprintf(&sb, "  start [shape=point];\n  start -> m%d;\n", a.Start)
	if anyExit {
		sb.WriteString("  exit [shape=doublecircle label=\"\"];\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

// sortSuccs orders a transition list deterministically by the
// destination sets' canonical keys and removes duplicates. Compare
// reproduces the Key() string order without materializing keys, and the
// transition lists are short, so an insertion sort avoids the
// sort.Slice closure allocations on the conversion hot path.
func (a *Automaton) sortSuccs(ts []int) []int {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && a.States[ts[j]].Set.Compare(a.States[ts[j-1]].Set) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	out := ts[:0]
	for i, t := range ts {
		if i > 0 && t == out[len(out)-1] {
			continue
		}
		out = append(out, t)
	}
	return out
}
