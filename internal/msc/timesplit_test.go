package msc

import (
	"strings"
	"testing"

	"msc/internal/cfg"
)

// imbalancedSrc produces a meta state merging a cheap block with a much
// more expensive one: the Figure 3 α/β situation.
func imbalancedSrc(muls int) string {
	var sb strings.Builder
	sb.WriteString(`
void main()
{
    poly int x, y;
    if (x) {
        y = y + 1;
    } else {
`)
	for i := 0; i < muls; i++ {
		sb.WriteString("        y = y * 3;\n")
	}
	sb.WriteString(`    }
    x = y;
    return;
}
`)
	return sb.String()
}

// TestFigure4Splitting checks the §2.4 transformation: the expensive β
// state is broken into β′ (≈ the cheap α's cost) followed by β″, so α
// and β′ merge without idle time.
func TestFigure4Splitting(t *testing.T) {
	g := graph(t, imbalancedSrc(40))
	opt := DefaultOptions(false)
	opt.TimeSplit = true
	a, err := Convert(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(a); err != nil {
		t.Fatalf("check: %v", err)
	}
	if a.Splits == 0 || a.Restarts == 0 {
		t.Fatalf("splits = %d, restarts = %d; want > 0", a.Splits, a.Restarts)
	}
	// The split graph has more MIMD states than the input.
	if a.G.NumBlocks() <= g.NumBlocks() {
		t.Fatalf("split graph has %d states, input had %d", a.G.NumBlocks(), g.NumBlocks())
	}
	// Post-condition: no meta state still wants splitting.
	for _, s := range a.States {
		if len(timeSplitState(a.G.Clone(), s.Set, opt)) > 0 {
			t.Fatalf("ms%d %s still imbalanced after conversion", s.ID, s.Set)
		}
	}
	// The input graph itself is untouched.
	if gg := graph(t, imbalancedSrc(40)); gg.NumBlocks() != g.NumBlocks() {
		t.Fatalf("input graph mutated")
	}
}

func TestTimeSplitImprovesBalance(t *testing.T) {
	g := graph(t, imbalancedSrc(40))
	balance := func(a *Automaton) (worst float64) {
		worst = 1
		for _, s := range a.States {
			min, max := 0, 0
			for _, id := range s.Set.Elems() {
				c := a.G.Block(id).Cost()
				if c == 0 {
					continue
				}
				if min == 0 || c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if max > 0 && min > 0 {
				if r := float64(min) / float64(max); r < worst {
					worst = r
				}
			}
		}
		return worst
	}
	plain := MustConvert(g, DefaultOptions(false))
	opt := DefaultOptions(false)
	opt.TimeSplit = true
	split := MustConvert(g, opt)
	if balance(split) <= balance(plain) {
		t.Fatalf("balance not improved: plain %.3f, split %.3f", balance(plain), balance(split))
	}
	// §2.4's example: a 5-cycle and a 100-cycle state in one meta state
	// wastes up to 95%% of cycles; after splitting, the worst ratio must
	// respect the split-percent threshold wherever splitting is possible.
	if balance(split) < 0.25 {
		t.Fatalf("worst balance after splitting = %.3f, want >= 0.25", balance(split))
	}
}

func TestTimeSplitRespectsDelta(t *testing.T) {
	// With a huge delta nothing is worth splitting.
	g := graph(t, imbalancedSrc(40))
	opt := DefaultOptions(false)
	opt.TimeSplit = true
	opt.SplitDelta = 10_000
	a := MustConvert(g, opt)
	if a.Splits != 0 {
		t.Fatalf("splits = %d with delta %d, want 0", a.Splits, opt.SplitDelta)
	}
}

func TestTimeSplitRespectsPercent(t *testing.T) {
	// Nearly balanced branches: min > percent*max/100 suppresses splits.
	g := graph(t, `
void main()
{
    poly int x, y;
    if (x) { y = y + 1; y = y + 2; } else { y = y + 3; y = y + 4; y = y + 5; }
    x = y;
    return;
}
`)
	opt := DefaultOptions(false)
	opt.TimeSplit = true
	opt.SplitDelta = 1
	opt.SplitPercent = 50
	a := MustConvert(g, opt)
	if a.Splits != 0 {
		t.Fatalf("splits = %d for nearly balanced states, want 0", a.Splits)
	}
}

func TestSplitBlockBoundaries(t *testing.T) {
	g := graph(t, imbalancedSrc(8))
	var big *cfg.Block
	for _, b := range g.Blocks {
		if big == nil || b.Cost() > big.Cost() {
			big = b
		}
	}
	n := len(g.Blocks)
	if !splitBlock(g, big, big.Cost()/2) {
		t.Fatalf("splitBlock refused a feasible split")
	}
	if len(g.Blocks) != n+1 {
		t.Fatalf("no tail block appended")
	}
	head := big
	tail := g.Blocks[n]
	if head.Term != cfg.Goto || head.Next != tail.ID {
		t.Fatalf("head does not fall through to tail")
	}
	if err := cfg.Verify(g); err != nil {
		t.Fatalf("split graph invalid: %v", err)
	}
	// A tiny budget still peels one instruction off (granularity floor).
	if !splitBlock(g, tail, 0) {
		t.Fatalf("splitBlock refused the granularity-floor split")
	}
	// But a single-instruction block cannot split.
	single := &cfg.Block{ID: len(g.Blocks), Code: tail.Code[:1], Term: cfg.Goto, Next: tail.ID, FNext: cfg.None, SpawnNext: cfg.None}
	g.Blocks = append(g.Blocks, single)
	if splitBlock(g, single, 0) {
		t.Fatalf("splitBlock split a single-instruction block")
	}
	// A block whose cost excess sits in the terminator cannot split.
	if splitBlock(g, head, head.Cost()*2) {
		t.Fatalf("splitBlock split when everything fits the budget")
	}
}

func TestTimeSplitEquivalentAutomatonSemantics(t *testing.T) {
	// Splitting must not change which source-level states are reachable:
	// the split automaton simulates the plain one (every plain block is
	// a head block or unchanged).
	g := graph(t, imbalancedSrc(20))
	opt := DefaultOptions(false)
	opt.TimeSplit = true
	a := MustConvert(g, opt)
	// All original block IDs still exist in the split graph.
	for _, b := range g.Blocks {
		if a.G.Block(b.ID) == nil {
			t.Fatalf("original state %d vanished from split graph", b.ID)
		}
	}
}
