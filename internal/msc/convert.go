package msc

import (
	"fmt"
	"sort"

	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/obs"
)

// Options configures a conversion.
type Options struct {
	// Compress applies §2.5: a two-exit MIMD state always contributes
	// both successors, collapsing the 3^n successor explosion to a
	// single unconditional arc per meta state.
	Compress bool
	// MergeSubsets folds every meta state that is a subset of another
	// into that superset (the superset "has the code for both" and can
	// emulate it). §2.5's two-state result for Listing 1 requires it;
	// it defaults on when Compress is set (see DefaultOptions).
	MergeSubsets bool
	// TimeSplit enables the §2.4 heuristic: MIMD states much more
	// expensive than the cheapest state in the same meta state are split
	// so threads need not idle. SplitDelta is the noise level below
	// which imbalance is ignored; SplitPercent is the utilization
	// percentage that is already acceptable.
	TimeSplit    bool
	SplitDelta   int
	SplitPercent int
	// BarrierExact disables the §2.6 filtering in favor of exact
	// occupancy tracking: meta states keep barrier-wait members, which
	// is sound even when distinct barriers are simultaneously occupied,
	// at the price of more meta states. The default (paper) mode
	// requires the usual SPMD discipline of one barrier active at a
	// time.
	BarrierExact bool
	// MaxStates bounds the automaton size (the §1.2 S!/(S−N)! explosion
	// guard). MaxRestarts bounds time-splitting restarts.
	MaxStates   int
	MaxRestarts int
	// MaxRetSubsets bounds exact enumeration of return-site subsets for
	// multiway return states; beyond it the converter falls back to the
	// compressed all-targets contribution.
	MaxRetSubsets int
	// Metrics, when non-nil, receives conversion counters: meta states
	// explored (interned across every restart attempt), work-list
	// high-water mark, barrier-filtered aggregates, and subset-merged
	// states. All recording is nil-safe, so the hook costs nothing when
	// absent.
	Metrics *obs.Recorder
}

// DefaultOptions returns the paper-faithful defaults for the given
// conversion flavor.
func DefaultOptions(compress bool) Options {
	return Options{
		Compress:      compress,
		MergeSubsets:  compress,
		SplitDelta:    4,
		SplitPercent:  75,
		MaxStates:     1 << 16,
		MaxRestarts:   16384,
		MaxRetSubsets: 10,
	}
}

func (o *Options) fillDefaults() {
	if o.SplitDelta == 0 {
		o.SplitDelta = 4
	}
	if o.SplitPercent == 0 {
		o.SplitPercent = 75
	}
	if o.MaxStates == 0 {
		o.MaxStates = 1 << 16
	}
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 1024
	}
	if o.MaxRetSubsets == 0 {
		o.MaxRetSubsets = 10
	}
}

// Convert builds the meta-state automaton for a MIMD state graph. The
// graph is cloned first; when time splitting runs, the automaton's G
// field holds the split copy.
func Convert(g *cfg.Graph, opt Options) (*Automaton, error) {
	opt.fillDefaults()
	if opt.MergeSubsets && !opt.Compress {
		// Without the both-successors rule, a superset state's dispatch
		// does not cover the aggregates its subsumed subsets produced.
		return nil, fmt.Errorf("msc: MergeSubsets requires Compress")
	}
	work := g.Clone()

	restarts := 0
	splits := 0
	for {
		a, didSplit, err := convertOnce(work, opt)
		if err != nil {
			return nil, err
		}
		if !didSplit {
			a.Splits = splits
			a.Restarts = restarts
			if opt.MergeSubsets {
				mergeSubsets(a)
			}
			opt.Metrics.Add(obs.CounterSplits, int64(splits))
			opt.Metrics.Add(obs.CounterRestarts, int64(restarts))
			opt.Metrics.Set(obs.CounterMetaStates, int64(len(a.States)))
			opt.Metrics.Set(obs.CounterMIMDStates, int64(a.G.NumBlocks()))
			return a, nil
		}
		// §2.4: splitting changed the MIMD graph, so the construction of
		// the meta-state automaton is restarted to ensure consistency.
		splits++
		restarts++
		if restarts > opt.MaxRestarts {
			return nil, fmt.Errorf("msc: time splitting did not converge after %d restarts", restarts)
		}
	}
}

// MustConvert converts and panics on error; for tests and examples.
func MustConvert(g *cfg.Graph, opt Options) *Automaton {
	a, err := Convert(g, opt)
	if err != nil {
		panic("msc.MustConvert: " + err.Error())
	}
	return a
}

// convertOnce runs one pass of meta-state conversion. If time splitting
// decides to split a MIMD state it mutates g and returns didSplit=true
// (the caller restarts).
func convertOnce(g *cfg.Graph, opt Options) (a *Automaton, didSplit bool, err error) {
	barriers := bitset.New(len(g.Blocks))
	for _, b := range g.Blocks {
		if b != nil && b.Barrier {
			barriers.Add(b.ID)
		}
	}

	a = &Automaton{
		G:        g,
		Barriers: barriers,
		Opt:      opt,
		byKey:    make(map[string]int),
	}

	// intern returns the meta state ID for set, creating it if new and
	// pushing it on the worklist.
	var work []int
	intern := func(set *bitset.Set) (int, error) {
		key := set.Key()
		if id, ok := a.byKey[key]; ok {
			return id, nil
		}
		if len(a.States) >= opt.MaxStates {
			return 0, fmt.Errorf("msc: meta-state space exceeded %d states (see Options.MaxStates)", opt.MaxStates)
		}
		ms := &MetaState{ID: len(a.States), Set: set.Clone()}
		a.States = append(a.States, ms)
		a.byKey[key] = ms.ID
		work = append(work, ms.ID)
		opt.Metrics.Add(obs.CounterMetaExplored, 1)
		opt.Metrics.Max(obs.CounterWorklistHigh, int64(len(work)))
		return ms.ID, nil
	}

	start, err := intern(bitset.Of(g.Entry))
	if err != nil {
		return nil, false, err
	}
	a.Start = start

	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		ms := a.States[id]

		if opt.TimeSplit {
			if split := timeSplitState(g, ms.Set, opt); split {
				return nil, true, nil
			}
		}

		for _, raw := range successors(g, a, ms.Set, opt) {
			if raw.Empty() {
				ms.Exit = true
				continue
			}
			target := raw
			if !opt.BarrierExact {
				target = barrierSync(raw, barriers)
				if !target.Equal(raw) {
					// §2.6 filtering dropped barrier-wait members from
					// this aggregate (or collapsed it to the release
					// state).
					opt.Metrics.Add(obs.CounterMetaFiltered, 1)
				}
				// A mixed aggregate means the barrier may also release
				// here: if at run time every still-live PE lands on the
				// barrier, the all-barrier meta state is entered
				// (§3.2.4). Base enumeration produces that candidate on
				// its own; the compressed single-union candidate hides
				// it, so the release state is interned explicitly.
				if waits := raw.Intersect(barriers); !waits.Empty() && !waits.Equal(raw) {
					rel, err := intern(waits)
					if err != nil {
						return nil, false, err
					}
					ms.Trans = append(ms.Trans, rel)
				}
			}
			to, err := intern(target)
			if err != nil {
				return nil, false, err
			}
			ms.Trans = append(ms.Trans, to)
		}
		ms.Trans = a.sortSuccs(ms.Trans)
	}
	return a, false, nil
}

// barrierSync implements the §2.6 filter: if every MIMD state in s is a
// barrier-wait state, all processors have arrived and the barrier
// releases (the all-barrier meta state is entered); otherwise the
// barrier states are removed — those PEs wait while the rest proceed.
func barrierSync(s, barriers *bitset.Set) *bitset.Set {
	waits := s.Intersect(barriers)
	if waits.Equal(s) {
		return waits
	}
	return s.Minus(waits)
}

// successors enumerates every distinct aggregate successor set of a
// meta state: the §2.3 reach recursion expressed as a deduplicated
// cartesian product of each member state's possible contributions.
func successors(g *cfg.Graph, a *Automaton, set *bitset.Set, opt Options) []*bitset.Set {
	partials := map[string]*bitset.Set{"": bitset.New(0)}
	for _, id := range set.Elems() {
		choices := contributions(g, a, id, set, opt)
		next := make(map[string]*bitset.Set, len(partials)*len(choices))
		for _, p := range partials {
			for _, c := range choices {
				u := p.Union(c)
				next[u.Key()] = u
			}
		}
		partials = next
	}
	out := make([]*bitset.Set, 0, len(partials))
	for _, s := range partials {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// contributions returns the possible successor sets contributed by one
// MIMD state within the meta state `within`.
func contributions(g *cfg.Graph, a *Automaton, id int, within *bitset.Set, opt Options) []*bitset.Set {
	b := g.Block(id)

	// Exact barrier mode: a barrier state in a mixed meta state waits in
	// place; only when every member is a barrier does it proceed.
	if opt.BarrierExact && b.Barrier && !within.Subset(a.Barriers) {
		return []*bitset.Set{bitset.Of(id)}
	}

	switch b.Term {
	case cfg.End, cfg.Halt:
		// No exit arcs: the process ends here and contributes nothing.
		return []*bitset.Set{bitset.New(0)}
	case cfg.Goto:
		return []*bitset.Set{bitset.Of(b.Next)}
	case cfg.Branch:
		if b.Next == b.FNext {
			return []*bitset.Set{bitset.Of(b.Next)}
		}
		if opt.Compress {
			// §2.5: both successors are always assumed taken.
			return []*bitset.Set{bitset.Of(b.Next, b.FNext)}
		}
		// §2.3: TRUE, FALSE, or (multiple processes) both.
		return []*bitset.Set{
			bitset.Of(b.Next),
			bitset.Of(b.FNext),
			bitset.Of(b.Next, b.FNext),
		}
	case cfg.RetBr:
		if opt.Compress {
			return []*bitset.Set{bitset.Of(b.RetTargets...)}
		}
		if len(b.RetTargets) > opt.MaxRetSubsets {
			// Exact enumeration would need 2^k-1 subsets; fall back to
			// the all-targets rule and mark the automaton so dispatch
			// accepts covering supersets.
			a.OverApprox = true
			return []*bitset.Set{bitset.Of(b.RetTargets...)}
		}
		return nonEmptySubsets(b.RetTargets)
	case cfg.Spawn:
		// §3.2.5: a spawn looks like a conditional jump whose both paths
		// must be taken (the compressed rule), one by the original
		// processes and one by the created ones.
		return []*bitset.Set{bitset.Of(b.Next, b.SpawnNext)}
	}
	return []*bitset.Set{bitset.New(0)}
}

// nonEmptySubsets enumerates every non-empty subset of ids.
func nonEmptySubsets(ids []int) []*bitset.Set {
	n := len(ids)
	out := make([]*bitset.Set, 0, (1<<n)-1)
	for mask := 1; mask < 1<<n; mask++ {
		s := bitset.New(0)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s.Add(ids[i])
			}
		}
		out = append(out, s)
	}
	return out
}

// mergeSubsets folds meta states that are strict subsets of other meta
// states into the (smallest) superset, which can always emulate them
// (§2.5). Transitions and the start state are redirected; unreachable
// states are pruned and IDs are compacted.
func mergeSubsets(a *Automaton) {
	// For each state find the smallest strict superset, if any.
	redirect := make([]int, len(a.States))
	for i := range redirect {
		redirect[i] = i
	}
	for _, s := range a.States {
		best := -1
		for _, t := range a.States {
			if t.ID == s.ID || !s.Set.Subset(t.Set) {
				continue
			}
			if best == -1 || t.Set.Len() < a.States[best].Set.Len() ||
				(t.Set.Len() == a.States[best].Set.Len() && t.ID < best) {
				best = t.ID
			}
		}
		if best >= 0 {
			redirect[s.ID] = best
			a.Opt.Metrics.Add(obs.CounterMetaMerged, 1)
		}
	}
	// Chase chains (subset of a subset of ...).
	resolve := func(id int) int {
		for redirect[id] != id {
			id = redirect[id]
		}
		return id
	}

	a.Start = resolve(a.Start)
	for _, s := range a.States {
		for i := range s.Trans {
			s.Trans[i] = resolve(s.Trans[i])
		}
	}

	// Keep only states reachable from the start.
	seen := make([]bool, len(a.States))
	stack := []int{a.Start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		for _, to := range a.States[id].Trans {
			if !seen[to] {
				stack = append(stack, to)
			}
		}
	}

	remap := make([]int, len(a.States))
	var live []*MetaState
	for i, s := range a.States {
		if seen[i] {
			remap[i] = len(live)
			live = append(live, s)
		}
	}
	a.byKey = make(map[string]int, len(live))
	for _, s := range live {
		s.ID = remap[s.ID]
		for i := range s.Trans {
			s.Trans[i] = remap[s.Trans[i]]
		}
		a.byKey[s.Set.Key()] = s.ID
	}
	a.States = live
	a.Start = remap[a.Start]
	for _, s := range a.States {
		s.Trans = a.sortSuccs(s.Trans)
	}
}
