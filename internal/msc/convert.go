package msc

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/faultinject"
	"msc/internal/mscerr"
	"msc/internal/obs"
	"msc/internal/telemetry"
)

// Options configures a conversion.
type Options struct {
	// Compress applies §2.5: a two-exit MIMD state always contributes
	// both successors, collapsing the 3^n successor explosion to a
	// single unconditional arc per meta state.
	Compress bool
	// MergeSubsets folds every meta state that is a subset of another
	// into that superset (the superset "has the code for both" and can
	// emulate it). §2.5's two-state result for Listing 1 requires it;
	// it defaults on when Compress is set (see DefaultOptions).
	MergeSubsets bool
	// TimeSplit enables the §2.4 heuristic: MIMD states much more
	// expensive than the cheapest state in the same meta state are split
	// so threads need not idle. SplitDelta is the noise level below
	// which imbalance is ignored; SplitPercent is the utilization
	// percentage that is already acceptable.
	TimeSplit    bool
	SplitDelta   int
	SplitPercent int
	// BarrierExact disables the §2.6 filtering in favor of exact
	// occupancy tracking: meta states keep barrier-wait members, which
	// is sound even when distinct barriers are simultaneously occupied,
	// at the price of more meta states. The default (paper) mode
	// requires the usual SPMD discipline of one barrier active at a
	// time.
	BarrierExact bool
	// MaxStates bounds the automaton size (the §1.2 S!/(S−N)! explosion
	// guard). MaxRestarts bounds time-splitting restarts; its default is
	// maxRestartsDefault whether the Options came from DefaultOptions or
	// from a zero value.
	MaxStates   int
	MaxRestarts int
	// MaxRetSubsets bounds exact enumeration of return-site subsets for
	// multiway return states; beyond it the converter falls back to the
	// compressed all-targets contribution.
	MaxRetSubsets int
	// Workers bounds the frontier-expansion worker pool: 1 forces the
	// sequential path, 0 uses GOMAXPROCS. Any value yields a
	// byte-identical automaton (see docs/PERFORMANCE.md for the
	// determinism argument); Workers only trades wall-clock for cores.
	Workers int
	// MaxMemBytes bounds the converter's approximate memory high-water
	// mark (meta-state sets live or pooled, plus the intern table), the
	// §1.2 guard in bytes rather than states. 0 means unbounded.
	// Overruns return an *mscerr.BudgetError with resource "mem_bytes".
	// The estimate is computed from commit-step state only, so it is
	// identical for any worker count.
	MaxMemBytes int64
	// Metrics, when non-nil, receives conversion counters: meta states
	// explored (interned across every restart attempt), work-list
	// high-water mark, barrier-filtered aggregates, subset-merged
	// states, and the interner/memo/parallelism counters of the
	// conversion core. All recording is nil-safe, so the hook costs
	// nothing when absent.
	Metrics *obs.Recorder
	// Trace, when non-nil, records conversion spans: one per BFS
	// frontier generation (with generation index and frontier size) and,
	// inside parallel generations, one per worker on its own display
	// lane. TraceParent parents the generation spans — typically the
	// pipeline's phase.convert span. Nil-safe like Metrics.
	Trace       *telemetry.Tracer
	TraceParent telemetry.SpanID
}

// maxRestartsDefault is the single source of truth for the §2.4 restart
// budget: DefaultOptions and fillDefaults must agree, or zero-valued
// Options would silently convert under a different budget than the
// documented default.
const maxRestartsDefault = 16384

// DefaultOptions returns the paper-faithful defaults for the given
// conversion flavor.
func DefaultOptions(compress bool) Options {
	return Options{
		Compress:      compress,
		MergeSubsets:  compress,
		SplitDelta:    4,
		SplitPercent:  75,
		MaxStates:     1 << 16,
		MaxRestarts:   maxRestartsDefault,
		MaxRetSubsets: 10,
	}
}

func (o *Options) fillDefaults() {
	if o.SplitDelta == 0 {
		o.SplitDelta = 4
	}
	if o.SplitPercent == 0 {
		o.SplitPercent = 75
	}
	if o.MaxStates == 0 {
		o.MaxStates = 1 << 16
	}
	if o.MaxRestarts == 0 {
		o.MaxRestarts = maxRestartsDefault
	}
	if o.MaxRetSubsets == 0 {
		o.MaxRetSubsets = 10
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// parallelFrontierMin gates the worker pool: frontiers smaller than this
// expand inline, so tiny conversions never pay goroutine overhead. A
// package variable so the determinism property test can force the
// parallel path onto small corpora.
var parallelFrontierMin = 32

// Convert builds the meta-state automaton for a MIMD state graph. The
// graph is cloned first; when time splitting runs, the automaton's G
// field holds the split copy.
func Convert(g *cfg.Graph, opt Options) (*Automaton, error) {
	return ConvertContext(context.Background(), g, opt)
}

// ConvertContext is Convert with cooperative cancellation: the commit
// loop checks ctx once per meta state, and the worker pool stops
// claiming frontier slots when ctx is done. Cancellation always drains
// the pool before returning (no goroutine outlives the call), and the
// converter's warm structures stay consistent, so a subsequent
// conversion of the same graph yields the byte-identical automaton.
func ConvertContext(ctx context.Context, g *cfg.Graph, opt Options) (*Automaton, error) {
	opt.fillDefaults()
	if opt.MergeSubsets && !opt.Compress {
		// Without the both-successors rule, a superset state's dispatch
		// does not cover the aggregates its subsumed subsets produced.
		return nil, fmt.Errorf("msc: MergeSubsets requires Compress")
	}
	c := newConverter(g.Clone(), opt)
	c.ctx = ctx

	restarts := 0
	splits := 0
	for {
		a, didSplit, err := c.convertOnce()
		if err != nil {
			return nil, err
		}
		if !didSplit {
			a.Splits = splits
			a.Restarts = restarts
			if opt.MergeSubsets {
				c.mergeSubsets(a)
			}
			c.splits, c.restarts = int64(splits), int64(restarts)
			c.flushMetrics(a)
			return a, nil
		}
		// §2.4: splitting changed the MIMD graph, so the construction of
		// the meta-state automaton is restarted to ensure consistency.
		// The restart is warm: the interner keeps its table capacity,
		// recycled meta states keep their sets, and the contribution
		// memo keeps every entry except the blocks the split mutated.
		splits++
		restarts++
		if restarts > opt.MaxRestarts {
			return nil, fmt.Errorf("msc: time splitting did not converge after %d restarts", restarts)
		}
	}
}

// MustConvert converts and panics on error; for tests and examples.
func MustConvert(g *cfg.Graph, opt Options) *Automaton {
	a, err := Convert(g, opt)
	if err != nil {
		panic("msc.MustConvert: " + err.Error())
	}
	return a
}

// converter carries the state that survives §2.4 restarts (the warm
// part: intern-table capacity, contribution memo, recycled meta states,
// expander scratch) plus the per-pass automaton under construction.
type converter struct {
	g   *cfg.Graph
	opt Options
	ctx context.Context

	barriers *bitset.Set
	memo     contribMemo
	itab     internTable
	pool     setPool
	exps     []*expander // exps[0] drives sequential generations
	msFree   []*MetaState

	// per-pass state
	a      *Automaton
	curIdx int // index of the state being committed (-1 before the loop)

	// waits/scratch are commit-step scratch for the §2.6 filter.
	waits, scratch *bitset.Set

	// batched counters, flushed to opt.Metrics once per Convert
	explored, internHits, filtered int64
	memoHits, parallelGens         int64
	worklistHigh                   int64
	mergeCandidates                int64
	splits, restarts               int64
}

func newConverter(g *cfg.Graph, opt Options) *converter {
	c := &converter{
		g:       g,
		opt:     opt,
		waits:   bitset.New(len(g.Blocks)),
		scratch: bitset.New(len(g.Blocks)),
	}
	c.exps = append(c.exps, newExpander(g, nil, opt, &c.memo, &c.pool))
	return c
}

// beginPass prepares per-pass state: the barrier set and contribution
// memo reflect the (possibly re-split) graph, the interner is emptied
// but keeps its capacity, and discarded meta states are recycled.
func (c *converter) beginPass() {
	barriers := bitset.New(len(c.g.Blocks))
	for _, b := range c.g.Blocks {
		if b != nil && b.Barrier {
			barriers.Add(b.ID)
		}
	}
	c.barriers = barriers
	c.memo.update(c.g, barriers, c.opt)
	c.itab.reset()
	for _, e := range c.exps {
		e.barriers = barriers
	}

	var states []*MetaState
	if c.a != nil {
		// The previous pass's automaton was discarded by a restart:
		// recycle its states and keep the slice capacity.
		c.msFree = append(c.msFree, c.a.States...)
		states = c.a.States[:0]
	}
	c.a = &Automaton{
		G:        c.g,
		Barriers: barriers,
		Opt:      c.opt,
		States:   states,
		index:    &c.itab,
		memo:     &c.memo,
	}
	c.curIdx = -1
}

// intern returns the meta state ID for set, creating the state if new.
// Only the single-threaded commit step calls it, which is what makes
// state numbering — and therefore the whole automaton — deterministic.
func (c *converter) intern(set *bitset.Set) (int, error) {
	h := set.Hash()
	if id, ok := c.itab.lookup(h, set, c.a.States); ok {
		c.internHits++
		return id, nil
	}
	if len(c.a.States) >= c.opt.MaxStates {
		return 0, &mscerr.BudgetError{
			Phase: "convert", Resource: "meta_states",
			Limit: int64(c.opt.MaxStates), Used: int64(len(c.a.States)) + 1,
		}
	}
	if c.opt.MaxMemBytes > 0 {
		if used := c.approxMemBytes(); used > c.opt.MaxMemBytes {
			return 0, &mscerr.BudgetError{
				Phase: "convert", Resource: "mem_bytes",
				Limit: c.opt.MaxMemBytes, Used: used,
			}
		}
	}
	ms := c.newMetaState(set)
	ms.ID = len(c.a.States)
	c.a.States = append(c.a.States, ms)
	c.itab.insert(h, ms.ID)
	c.explored++
	faultinject.OnState()
	if pending := int64(len(c.a.States) - c.curIdx - 1); pending > c.worklistHigh {
		c.worklistHigh = pending
	}
	return ms.ID, nil
}

// approxMemBytes estimates the converter's memory high-water mark: one
// full-width set (plus struct overhead) per meta state, live or pooled,
// and the intern table's slot array. It is intentionally approximate —
// a budget, not an accountant — and computed from commit-step state
// only, so sequential and parallel conversions agree exactly.
func (c *converter) approxMemBytes() int64 {
	const perState = 96 // MetaState + Set headers, amortized Trans slice
	setBytes := int64((len(c.g.Blocks)+63)/64*8 + perState)
	states := int64(len(c.a.States) + len(c.msFree))
	return states*setBytes + int64(len(c.itab.slots))*16
}

// checkCtx surfaces cooperative cancellation; called once per committed
// meta state, so cancellation latency is one state's expansion.
func (c *converter) checkCtx() error {
	if c.ctx == nil {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("msc: convert canceled after %d meta states: %w", len(c.a.States), err)
	}
	return nil
}

// newMetaState builds a meta state holding a private copy of set,
// recycling a state (and its set's backing array) from a discarded
// restart pass when available.
func (c *converter) newMetaState(set *bitset.Set) *MetaState {
	if n := len(c.msFree); n > 0 {
		ms := c.msFree[n-1]
		c.msFree = c.msFree[:n-1]
		ms.Set.CopyFrom(set)
		ms.Trans = ms.Trans[:0]
		ms.Exit = false
		return ms
	}
	return &MetaState{Set: set.Clone()}
}

// convertOnce runs one pass of meta-state conversion. If time splitting
// decides to split a MIMD state it mutates c.g and returns didSplit=true
// (the caller restarts).
//
// The frontier is expanded in BFS generations. Because the sequential
// algorithm appends newly interned states to a FIFO worklist, it
// processes states in exactly ID order; a generation [lo, hi) therefore
// reproduces one BFS level. Expansion (the expensive cartesian-product
// enumeration) is read-only against the graph and memo, so a generation
// can fan out across workers; the commit step then walks the results in
// ID order and performs every intern, transition append, and time-split
// check exactly as the sequential loop would. The automaton that falls
// out is byte-identical for any worker count.
func (c *converter) convertOnce() (a *Automaton, didSplit bool, err error) {
	c.beginPass()
	a = c.a

	start, err := c.intern(bitset.Of(c.g.Entry))
	if err != nil {
		return nil, false, err
	}
	a.Start = start

	for gen, genStart := 0, 0; genStart < len(a.States); gen++ {
		genEnd := len(a.States)
		frontier := a.States[genStart:genEnd]
		gspan := c.opt.Trace.StartSpan("convert.generation", c.opt.TraceParent,
			telemetry.Int("gen", int64(gen)), telemetry.Int("frontier", int64(len(frontier))))

		if c.opt.Workers > 1 && len(frontier) >= parallelFrontierMin {
			results := c.expandParallel(frontier, gspan)
			for i, ms := range frontier {
				if err := c.checkCtx(); err != nil {
					gspan.End()
					return nil, false, err
				}
				c.curIdx = genStart + i
				if c.opt.TimeSplit {
					if changed := timeSplitState(c.g, ms.Set, c.opt); len(changed) > 0 {
						c.memo.invalidate(changed)
						gspan.Event("restart", telemetry.Int("split_blocks", int64(len(changed))))
						gspan.End()
						return nil, true, nil
					}
				}
				if err := c.commit(ms, results[i]); err != nil {
					gspan.End()
					return nil, false, err
				}
			}
		} else {
			e := c.exps[0]
			for i, ms := range frontier {
				if err := c.checkCtx(); err != nil {
					gspan.End()
					return nil, false, err
				}
				c.curIdx = genStart + i
				if c.opt.TimeSplit {
					if changed := timeSplitState(c.g, ms.Set, c.opt); len(changed) > 0 {
						c.memo.invalidate(changed)
						gspan.Event("restart", telemetry.Int("split_blocks", int64(len(changed))))
						gspan.End()
						return nil, true, nil
					}
				}
				if err := c.commit(ms, e.expand(ms.Set)); err != nil {
					gspan.End()
					return nil, false, err
				}
			}
		}
		gspan.SetAttr(telemetry.Int("new_states", int64(len(a.States)-genEnd)))
		gspan.End()
		genStart = genEnd
	}
	return a, false, nil
}

// expandParallel fans one BFS generation out across the worker pool.
// Workers claim frontier slots through an atomic cursor, each with its
// own scratch expander; nothing is interned here, so no ordering is
// imposed and no locks are taken on the hot path.
//
// Two containment guarantees: on context cancellation workers stop
// claiming new slots and the unconditional Wait drains them, so a
// canceled conversion never leaks a goroutine; and a worker panic is
// captured and re-raised on the calling goroutine after the drain, so
// the pipeline's phase runner can contain it (a goroutine panic would
// otherwise kill the process no matter what the caller deferred).
func (c *converter) expandParallel(frontier []*MetaState, gspan *telemetry.Span) []expansion {
	workers := min(c.opt.Workers, len(frontier))
	for len(c.exps) < workers {
		c.exps = append(c.exps, newExpander(c.g, c.barriers, c.opt, &c.memo, &c.pool))
	}
	results := make([]expansion, len(frontier))
	var next atomic.Int64
	var panicked atomic.Pointer[workerPanic]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, e *expander) {
			defer wg.Done()
			// Worker spans get their own display lanes so the Chrome
			// export shows the fan-out side by side; Span is
			// concurrency-safe, so tracing the pool needs no extra
			// synchronization. Nil gspan (tracing off) makes every span
			// call a no-op.
			wspan := gspan.StartChild("convert.worker", telemetry.Int("worker", int64(w)))
			if wspan != nil {
				wspan.Lane = workerLaneBase + w
			}
			claimed := int64(0)
			defer func() {
				wspan.SetAttr(telemetry.Int("claimed", claimed))
				wspan.End()
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &workerPanic{val: r})
				}
			}()
			for {
				if c.ctx != nil && c.ctx.Err() != nil {
					return // canceled: stop claiming; commit loop reports
				}
				i := int(next.Add(1)) - 1
				if i >= len(frontier) {
					return
				}
				results[i] = e.expand(frontier[i].Set)
				claimed++
			}
		}(w, c.exps[w])
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.val)
	}
	c.parallelGens++
	return results
}

// workerPanic carries the first panic value out of the worker pool.
type workerPanic struct{ val any }

// workerLaneBase offsets conversion-worker span lanes so they render on
// their own tracks in the Chrome trace viewer, below the main lane.
const workerLaneBase = 100

// commit applies one meta state's expansion: §2.6 barrier filtering,
// interning of targets (and of explicit release states), transition
// recording, and canonical ordering. It mirrors the sequential loop body
// statement for statement; see convertOnce for why that yields
// byte-identical automata under parallel expansion.
func (c *converter) commit(ms *MetaState, exp expansion) error {
	if exp.overApprox {
		c.a.OverApprox = true
	}
	for _, raw := range exp.raw {
		if raw.Empty() {
			ms.Exit = true
			c.pool.put(raw)
			continue
		}
		target := raw
		if !c.opt.BarrierExact {
			c.waits.IntersectOf(raw, c.barriers)
			if !c.waits.Equal(raw) && !c.waits.Empty() {
				// §2.6 filtering drops the barrier-wait members from this
				// mixed aggregate — those PEs wait while the rest proceed.
				c.filtered++
				// A mixed aggregate means the barrier may also release
				// here: if at run time every still-live PE lands on the
				// barrier, the all-barrier meta state is entered
				// (§3.2.4). Base enumeration produces that candidate on
				// its own; the compressed single-union candidate hides
				// it, so the release state is interned explicitly.
				rel, err := c.intern(c.waits)
				if err != nil {
					return err
				}
				ms.Trans = append(ms.Trans, rel)
				c.scratch.MinusOf(raw, c.waits)
				target = c.scratch
			}
		}
		to, err := c.intern(target)
		if err != nil {
			return err
		}
		ms.Trans = append(ms.Trans, to)
		c.pool.put(raw)
	}
	ms.Trans = c.a.sortSuccs(ms.Trans)
	return nil
}

// flushMetrics publishes the batched counters. Counters accumulate
// across every restart pass, matching the semantics the per-intern
// recording had before batching.
func (c *converter) flushMetrics(a *Automaton) {
	m := c.opt.Metrics
	var memoHits int64 = 0
	for _, e := range c.exps {
		memoHits += e.memoHits
	}
	m.Add(obs.CounterMetaExplored, c.explored)
	m.Max(obs.CounterWorklistHigh, c.worklistHigh)
	m.Add(obs.CounterMetaFiltered, c.filtered)
	m.Add(obs.CounterInternHits, c.internHits)
	m.Add(obs.CounterContribMemoHits, memoHits)
	m.Add(obs.CounterParallelGens, c.parallelGens)
	m.Set(obs.CounterConvertWorkers, int64(c.opt.Workers))
	m.Add(obs.CounterMergeScanned, c.mergeCandidates)
	m.Add(obs.CounterSplits, c.splits)
	m.Add(obs.CounterRestarts, c.restarts)
	m.Set(obs.CounterMetaStates, int64(len(a.States)))
	m.Set(obs.CounterMIMDStates, int64(a.G.NumBlocks()))
}

// mergeSubsets folds meta states that are strict subsets of other meta
// states into the (smallest) superset, which can always emulate them
// (§2.5). Transitions and the start state are redirected; unreachable
// states are pruned and IDs are compacted.
//
// Candidate supersets are bucketed by popcount: a strict superset of s
// necessarily has Len() strictly greater than s's (interning guarantees
// distinct states have distinct sets), so the scan walks the buckets in
// ascending width and stops at the first hit — replacing the old O(n²)
// all-pairs scan while choosing the identical (smallest-Len, then
// smallest-ID) superset.
func (c *converter) mergeSubsets(a *Automaton) {
	maxLen := 0
	lens := make([]int, len(a.States))
	for i, s := range a.States {
		lens[i] = s.Set.Len()
		if lens[i] > maxLen {
			maxLen = lens[i]
		}
	}
	buckets := make([][]*MetaState, maxLen+1)
	for i, s := range a.States {
		buckets[lens[i]] = append(buckets[lens[i]], s) // ID-ascending within a bucket
	}

	// For each state find the smallest strict superset, if any.
	redirect := make([]int, len(a.States))
	for i := range redirect {
		redirect[i] = i
	}
	merged := int64(0)
	for _, s := range a.States {
	search:
		for l := lens[s.ID] + 1; l <= maxLen; l++ {
			for _, t := range buckets[l] {
				c.mergeCandidates++
				if s.Set.Subset(t.Set) {
					redirect[s.ID] = t.ID
					merged++
					break search
				}
			}
		}
	}
	c.opt.Metrics.Add(obs.CounterMetaMerged, merged)

	// Chase chains (subset of a subset of ...).
	resolve := func(id int) int {
		for redirect[id] != id {
			id = redirect[id]
		}
		return id
	}

	a.Start = resolve(a.Start)
	for _, s := range a.States {
		for i := range s.Trans {
			s.Trans[i] = resolve(s.Trans[i])
		}
	}

	// Keep only states reachable from the start.
	seen := make([]bool, len(a.States))
	stack := []int{a.Start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		for _, to := range a.States[id].Trans {
			if !seen[to] {
				stack = append(stack, to)
			}
		}
	}

	remap := make([]int, len(a.States))
	var live []*MetaState
	for i, s := range a.States {
		if seen[i] {
			remap[i] = len(live)
			live = append(live, s)
		}
	}
	c.itab.reset()
	for _, s := range live {
		s.ID = remap[s.ID]
		for i := range s.Trans {
			s.Trans[i] = remap[s.Trans[i]]
		}
		c.itab.insert(s.Set.Hash(), s.ID)
	}
	a.States = live
	a.Start = remap[a.Start]
	for _, s := range a.States {
		s.Trans = a.sortSuccs(s.Trans)
	}
}
