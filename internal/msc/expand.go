package msc

import (
	"sync"

	"msc/internal/bitset"
	"msc/internal/cfg"
)

// blockContrib is the memoized §2.3 contribution of one MIMD state: the
// successor sets the state can contribute to any meta state containing
// it. For every terminator except the barrier-exact wait rule the
// contribution is context-free, so it is computed once per block per
// conversion pass instead of once per (block, meta state) pair — across
// §2.4 restarts only split blocks are recomputed (warm restart).
type blockContrib struct {
	valid bool
	// sets is the context-free contribution list.
	sets []*bitset.Set
	// self, when non-nil, is the [{id}] wait-in-place contribution a
	// barrier block yields in BarrierExact mode while its meta state
	// still holds non-barrier members.
	self []*bitset.Set
	// overApprox marks a RetBr wider than MaxRetSubsets that fell back
	// to the all-targets rule.
	overApprox bool
}

// contribMemo holds the per-block contribution memo for one graph.
type contribMemo struct {
	blocks []blockContrib
}

// invalidate drops the memo entries for the given block IDs (blocks
// mutated by §2.4 time splitting).
func (m *contribMemo) invalidate(ids []int) {
	for _, id := range ids {
		if id < len(m.blocks) {
			m.blocks[id] = blockContrib{}
		}
	}
}

// update (re)computes every missing entry. It must be called before
// expansion starts: precomputing eagerly keeps the memo strictly
// read-only while parallel workers expand the frontier.
func (m *contribMemo) update(g *cfg.Graph, barriers *bitset.Set, opt Options) {
	if len(m.blocks) < len(g.Blocks) {
		m.blocks = append(m.blocks, make([]blockContrib, len(g.Blocks)-len(m.blocks))...)
	}
	for id := range m.blocks {
		bc := &m.blocks[id]
		if bc.valid {
			continue
		}
		b := g.Block(id)
		if b == nil {
			bc.valid = true
			continue
		}
		bc.sets, bc.overApprox = computeContrib(g, b, opt)
		if opt.BarrierExact && b.Barrier {
			bc.self = []*bitset.Set{bitset.Of(id)}
		}
		bc.valid = true
	}
}

// computeContrib enumerates the §2.3 contribution sets of one block.
// Sets are preallocated to the graph's block range so downstream unions
// never trigger incremental growth.
func computeContrib(g *cfg.Graph, b *cfg.Block, opt Options) ([]*bitset.Set, bool) {
	of := func(ids ...int) *bitset.Set {
		s := bitset.New(len(g.Blocks))
		for _, id := range ids {
			s.Add(id)
		}
		return s
	}
	switch b.Term {
	case cfg.End, cfg.Halt:
		// No exit arcs: the process ends here and contributes nothing.
		return []*bitset.Set{bitset.New(0)}, false
	case cfg.Goto:
		return []*bitset.Set{of(b.Next)}, false
	case cfg.Branch:
		if b.Next == b.FNext {
			return []*bitset.Set{of(b.Next)}, false
		}
		if opt.Compress {
			// §2.5: both successors are always assumed taken.
			return []*bitset.Set{of(b.Next, b.FNext)}, false
		}
		// §2.3: TRUE, FALSE, or (multiple processes) both.
		return []*bitset.Set{of(b.Next), of(b.FNext), of(b.Next, b.FNext)}, false
	case cfg.RetBr:
		if opt.Compress {
			return []*bitset.Set{of(b.RetTargets...)}, false
		}
		if len(b.RetTargets) > opt.MaxRetSubsets {
			// Exact enumeration would need 2^k-1 subsets; fall back to
			// the all-targets rule and mark the automaton so dispatch
			// accepts covering supersets.
			return []*bitset.Set{of(b.RetTargets...)}, true
		}
		return nonEmptySubsets(g, b.RetTargets), false
	case cfg.Spawn:
		// §3.2.5: a spawn looks like a conditional jump whose both paths
		// must be taken (the compressed rule), one by the original
		// processes and one by the created ones.
		return []*bitset.Set{of(b.Next, b.SpawnNext)}, false
	}
	return []*bitset.Set{bitset.New(0)}, false
}

// nonEmptySubsets enumerates every non-empty subset of ids, each
// preallocated to the graph's block range.
func nonEmptySubsets(g *cfg.Graph, ids []int) []*bitset.Set {
	n := len(ids)
	out := make([]*bitset.Set, 0, (1<<n)-1)
	for mask := 1; mask < 1<<n; mask++ {
		s := bitset.New(len(g.Blocks))
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s.Add(ids[i])
			}
		}
		out = append(out, s)
	}
	return out
}

// setPool recycles successor-aggregate sets between the single-threaded
// commit step (which retires consumed sets) and the expansion workers
// (which allocate them). Workers refill in batches to keep the mutex off
// the per-set path.
type setPool struct {
	mu   sync.Mutex
	free []*bitset.Set
}

const poolBatch = 64

// fill moves up to poolBatch spare sets into dst.
func (p *setPool) fill(dst []*bitset.Set) []*bitset.Set {
	p.mu.Lock()
	n := min(poolBatch, len(p.free))
	dst = append(dst, p.free[len(p.free)-n:]...)
	p.free = p.free[:len(p.free)-n]
	p.mu.Unlock()
	return dst
}

// put returns retired sets to the pool.
func (p *setPool) put(ss ...*bitset.Set) {
	p.mu.Lock()
	p.free = append(p.free, ss...)
	p.mu.Unlock()
}

// expansion is one meta state's expansion result: its distinct raw
// successor aggregates in canonical (Key) order, before §2.6 barrier
// filtering. An empty aggregate means every member can terminate.
type expansion struct {
	raw        []*bitset.Set
	overApprox bool
}

// expander computes expansions with reusable scratch. Each worker owns
// one; it reads the graph, the barrier set, and the contribution memo,
// all of which are frozen during a generation, so expanders never
// synchronize with each other.
type expander struct {
	g        *cfg.Graph
	barriers *bitset.Set
	opt      Options
	memo     *contribMemo
	pool     *setPool // may be nil: plain allocation (standalone queries)

	free     []*bitset.Set
	tab      setTable
	cur, nxt []*bitset.Set

	// memoHits counts contribution lookups served by the memo; flushed
	// into the converter's counters after each pass.
	memoHits int64
}

func newExpander(g *cfg.Graph, barriers *bitset.Set, opt Options, memo *contribMemo, pool *setPool) *expander {
	return &expander{g: g, barriers: barriers, opt: opt, memo: memo, pool: pool}
}

func (e *expander) get() *bitset.Set {
	if len(e.free) == 0 && e.pool != nil {
		e.free = e.pool.fill(e.free)
	}
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		return s
	}
	return bitset.New(len(e.g.Blocks))
}

func (e *expander) put(s *bitset.Set) {
	e.free = append(e.free, s)
}

// contribFor returns block id's contribution within the given meta
// state, and whether it over-approximates.
func (e *expander) contribFor(id int, within *bitset.Set) ([]*bitset.Set, bool) {
	bc := &e.memo.blocks[id]
	if bc.self != nil && !within.Subset(e.barriers) {
		// Exact barrier mode: a barrier state in a mixed meta state
		// waits in place; only when every member is a barrier does it
		// proceed.
		return bc.self, false
	}
	e.memoHits++
	return bc.sets, bc.overApprox
}

// expand enumerates every distinct aggregate successor set of a meta
// state: the §2.3 reach recursion expressed as a deduplicated cartesian
// product of each member state's possible contributions. The result is
// sorted in canonical order, so it is deterministic regardless of which
// worker ran the expansion; ownership of the result sets passes to the
// caller (commit retires them into the pool).
func (e *expander) expand(set *bitset.Set) expansion {
	cur, nxt := e.cur[:0], e.nxt[:0]
	s0 := e.get()
	s0.Reset()
	cur = append(cur, s0)
	overApprox := false
	set.ForEach(func(id int) {
		choices, oa := e.contribFor(id, set)
		overApprox = overApprox || oa
		e.tab.reset(len(cur) * len(choices))
		nxt = nxt[:0]
		for _, p := range cur {
			for _, c := range choices {
				u := e.get()
				u.UnionOf(p, c)
				if _, dup := e.tab.lookupOrInsert(u.Hash(), u, nxt, len(nxt)); dup {
					e.put(u)
					continue
				}
				nxt = append(nxt, u)
			}
		}
		for _, p := range cur {
			e.put(p)
		}
		cur, nxt = nxt, cur
	})
	bitset.Sort(cur)
	raw := make([]*bitset.Set, len(cur))
	copy(raw, cur)
	e.cur, e.nxt = cur[:0], nxt[:0]
	return expansion{raw: raw, overApprox: overApprox}
}
