package msc

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"msc/internal/cfg"
	"msc/internal/mimdc"
	"msc/internal/progen"
)

// forceParallel lowers the frontier gate so even tiny corpora exercise
// the worker-pool path, restoring it when the test ends.
func forceParallel(t *testing.T) {
	t.Helper()
	old := parallelFrontierMin
	parallelFrontierMin = 2
	t.Cleanup(func() { parallelFrontierMin = old })
}

// fingerprint serializes every observable byte of an automaton: the
// textual form, both Graphviz renderings (ID numbering, arc order, heat
// labels), and the scalar results. Two automata with equal fingerprints
// are indistinguishable to every consumer, goldens included.
func fingerprint(a *Automaton) string {
	share := make([]float64, len(a.States))
	for i := range share {
		share[i] = float64(i) / float64(len(a.States)+1)
	}
	return fmt.Sprintf("start=%d splits=%d restarts=%d overapprox=%v blocks=%d\n%s\n%s\n%s",
		a.Start, a.Splits, a.Restarts, a.OverApprox, a.G.NumBlocks(),
		a.String(), a.Dot("fp"), a.DotHeat("fp", share))
}

// parallelMatrix is the option matrix the determinism property is
// checked under: base enumeration, compression with subset merging,
// time splitting (restarts + warm memo invalidation), and exact barrier
// tracking.
func parallelMatrix() map[string]Options {
	base := DefaultOptions(false)
	base.MaxStates = 1 << 14
	compressed := DefaultOptions(true)
	timesplit := DefaultOptions(false)
	timesplit.TimeSplit = true
	timesplit.MaxStates = 1 << 14
	exact := DefaultOptions(true)
	exact.BarrierExact = true
	return map[string]Options{
		"base":         base,
		"compressed":   compressed,
		"timesplit":    timesplit,
		"barrierexact": exact,
	}
}

// checkParallelEqual converts g sequentially and with a forced worker
// pool and requires byte-identical automata (or identical errors, e.g.
// the MaxStates guard firing at the same state count).
func checkParallelEqual(t *testing.T, name string, g *cfg.Graph, opt Options) {
	t.Helper()
	seqOpt := opt
	seqOpt.Workers = 1
	parOpt := opt
	parOpt.Workers = 4

	aSeq, errSeq := Convert(g, seqOpt)
	aPar, errPar := Convert(g, parOpt)
	switch {
	case (errSeq == nil) != (errPar == nil):
		t.Fatalf("%s: sequential err = %v, parallel err = %v", name, errSeq, errPar)
	case errSeq != nil:
		if errSeq.Error() != errPar.Error() {
			t.Fatalf("%s: error text diverged:\nseq: %v\npar: %v", name, errSeq, errPar)
		}
		return
	}
	if fpSeq, fpPar := fingerprint(aSeq), fingerprint(aPar); fpSeq != fpPar {
		t.Fatalf("%s: parallel automaton differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
			name, fpSeq, fpPar)
	}
	if err := Check(aPar); err != nil {
		t.Fatalf("%s: parallel automaton fails Check: %v", name, err)
	}
}

// corpusGraphs loads every MIMDC program shipped in the repository
// (examples/ and testdata/, including the vet negatives: a program that
// deadlocks at run time still has a well-defined automaton). Programs
// that fail to parse or analyze are skipped — this property test is
// about conversion, not the front end.
func corpusGraphs(t *testing.T) map[string]*cfg.Graph {
	t.Helper()
	out := make(map[string]*cfg.Graph)
	for _, dir := range []string{"../../examples", "../../testdata"} {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || filepath.Ext(path) != ".mc" {
				return err
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			prog, err := mimdc.Parse(string(src))
			if err != nil {
				return nil
			}
			if err := mimdc.Analyze(prog); err != nil {
				return nil
			}
			g, err := cfg.Build(prog)
			if err != nil {
				return nil
			}
			out[filepath.Base(path)] = cfg.Simplify(g)
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", dir, err)
		}
	}
	if len(out) < 5 {
		t.Fatalf("corpus too small: found %d programs", len(out))
	}
	return out
}

// TestParallelDeterministicCorpus is the property test for the
// concurrent frontier: over the whole shipped program corpus and the
// full option matrix, a forced multi-worker conversion must produce an
// automaton byte-identical to the sequential one.
func TestParallelDeterministicCorpus(t *testing.T) {
	forceParallel(t)
	for prog, g := range corpusGraphs(t) {
		for mode, opt := range parallelMatrix() {
			t.Run(prog+"/"+mode, func(t *testing.T) {
				checkParallelEqual(t, prog+"/"+mode, g, opt)
			})
		}
	}
}

// TestParallelDeterministicRandom extends the property to randomized
// progen programs (barriers, calls, loops), which reach graph shapes
// the curated corpus does not.
func TestParallelDeterministicRandom(t *testing.T) {
	forceParallel(t)
	for seed := int64(1); seed <= 12; seed++ {
		src := progen.Source(progen.Params{
			Seed:     seed,
			Barriers: seed%2 == 0,
			Floats:   seed%3 == 0,
			Calls:    true,
			MaxDepth: 3,
			MaxStmts: 5,
			Vars:     4,
			LoopTrip: 3,
		})
		g := cfg.Simplify(cfg.MustBuild(src))
		for mode, opt := range parallelMatrix() {
			name := fmt.Sprintf("seed%d/%s", seed, mode)
			t.Run(name, func(t *testing.T) {
				checkParallelEqual(t, name, g, opt)
			})
		}
	}
}

// TestParallelDeterministicFigures pins the property on the paper's own
// examples, whose automata are already golden-checked elsewhere.
func TestParallelDeterministicFigures(t *testing.T) {
	forceParallel(t)
	for name, src := range map[string]string{"listing4": listing4, "listing3": listing3} {
		g := graph(t, src)
		for mode, opt := range parallelMatrix() {
			t.Run(name+"/"+mode, func(t *testing.T) {
				checkParallelEqual(t, name+"/"+mode, g, opt)
			})
		}
	}
}
