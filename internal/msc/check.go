package msc

import (
	"fmt"

	"msc/internal/bitset"
)

// barrierSync implements the §2.6 filter: if every MIMD state in s is a
// barrier-wait state, all processors have arrived and the barrier
// releases (the all-barrier meta state is entered); otherwise the
// barrier states are removed — those PEs wait while the rest proceed.
// (The conversion hot path inlines this with scratch reuse in
// converter.commit; this allocating form serves the checker.)
func barrierSync(s, barriers *bitset.Set) *bitset.Set {
	waits := s.Intersect(barriers)
	if waits.Equal(s) {
		return waits
	}
	return s.Minus(waits)
}

// Check validates the structural invariants of a converted automaton:
//
//   - IDs are dense and the set index is consistent;
//   - every transition target exists;
//   - in paper barrier mode (§2.6) every meta state is either entirely
//     barrier states (a release state) or contains none;
//   - compressed automata have at most one exit arc per meta state
//     (transitions into compressed regions are unconditional, §2.5);
//   - the successor sets recomputed from the MIMD graph are covered by
//     the recorded transitions (dispatch closure).
func Check(a *Automaton) error {
	if a.State(a.Start) == nil {
		return fmt.Errorf("msc: start state %d missing", a.Start)
	}
	for i, s := range a.States {
		if s.ID != i {
			return fmt.Errorf("msc: state %d has ID %d", i, s.ID)
		}
		if got := a.Find(s.Set); got != s && !a.Opt.MergeSubsets {
			return fmt.Errorf("msc: set index inconsistent for ms%d %s", i, s.Set)
		}
		if s.Set.Empty() {
			return fmt.Errorf("msc: ms%d has empty MIMD state set", i)
		}
		for _, to := range s.Trans {
			if a.State(to) == nil {
				return fmt.Errorf("msc: ms%d has dangling transition to %d", i, to)
			}
		}
		if !a.Opt.BarrierExact && !a.Barriers.Empty() {
			inter := s.Set.Intersect(a.Barriers)
			if !inter.Empty() && !inter.Equal(s.Set) {
				return fmt.Errorf("msc: ms%d %s mixes barrier and non-barrier states in paper mode", i, s.Set)
			}
		}
		if a.Opt.Compress {
			// Unconditional except for barrier-release arcs (§3.2.4): at
			// most one arc may lead to a state holding non-barrier work.
			normal := 0
			for _, to := range s.Trans {
				if !a.States[to].Set.Subset(a.Barriers) {
					normal++
				}
			}
			if normal > 1 {
				return fmt.Errorf("msc: compressed ms%d has %d non-release exit arcs, want <= 1", i, normal)
			}
		}
	}

	// Dispatch closure: recompute each state's successor aggregates and
	// confirm each filtered target is a recorded transition. With
	// MergeSubsets, a superset target is acceptable.
	for _, s := range a.States {
		for _, raw := range a.RawSuccessors(s.Set) {
			if raw.Empty() {
				if !s.Exit && !a.Opt.MergeSubsets {
					return fmt.Errorf("msc: ms%d can complete but has no exit flag", s.ID)
				}
				continue
			}
			target := raw
			if !a.Opt.BarrierExact {
				target = barrierSync(raw, a.Barriers)
			}
			found := false
			for _, to := range s.Trans {
				tset := a.States[to].Set
				if tset.Equal(target) || (a.Opt.MergeSubsets && target.Subset(tset)) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("msc: ms%d %s has uncovered successor aggregate %s (target %s)",
					s.ID, s.Set, raw, target)
			}
		}
	}
	return nil
}
