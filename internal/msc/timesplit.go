package msc

import (
	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/ir"
)

// timeSplitState implements the §2.4 heuristic on one meta state. The
// meta-state automaton embodies an execution-time schedule: if MIMD
// states of widely varying cost are merged into one meta state, cheap
// threads idle while expensive ones run. The fix is to break each
// too-expensive MIMD state into a prefix of approximately the minimum
// cost, unconditionally followed by the remainder, and restart the
// conversion. Returns the IDs of the blocks it split (mutating g), or
// nil when nothing was split; the caller invalidates exactly those
// entries of the contribution memo on the warm restart.
func timeSplitState(g *cfg.Graph, set *bitset.Set, opt Options) []int {
	// Ignore zero-execution-time components: "you can't do anything
	// about them anyway".
	var members []*cfg.Block
	min, max := 0, 0
	for _, id := range set.Elems() {
		b := g.Block(id)
		t := b.Cost()
		if t == 0 {
			continue
		}
		if len(members) == 0 || t < min {
			min = t
		}
		if t > max {
			max = t
		}
		members = append(members, b)
	}
	if len(members) < 2 {
		return nil
	}

	// Is enough time wasted to be worth splitting? Not if the difference
	// is at noise level (split_delta), nor if utilization is already
	// above the acceptable percentage (split_percent).
	if min+opt.SplitDelta > max {
		return nil
	}
	if min > (opt.SplitPercent*max)/100 {
		return nil
	}

	var changed []int
	for _, b := range members {
		if b.Cost() > min && splitBlock(g, b, min) {
			changed = append(changed, b.ID)
		}
	}
	return changed
}

// splitBlock breaks b into a head of at most budget cycles followed
// unconditionally by a tail holding the remainder (Figure 4: β becomes
// β′ → β″). When the cut lands mid-expression, the evaluation stack is
// spilled to fresh temp slots in the head and reloaded in the tail, so
// both pieces remain self-contained balanced blocks — the invariant the
// verifier and the CSI pass rely on. Returns false when no instruction
// boundary allows a non-empty head and a non-trivial tail.
func splitBlock(g *cfg.Graph, b *cfg.Block, budget int) bool {
	cut, cost := 0, 0
	for i, in := range b.Code {
		if cost+in.Cost() > budget {
			break
		}
		cost += in.Cost()
		cut = i + 1
	}
	if cut == 0 && len(b.Code) > 1 {
		// Even the first instruction exceeds the budget; instruction
		// granularity is the floor, so peel it off alone (the SplitDelta
		// tolerance absorbs the overshoot on the next pass).
		cut = 1
	}
	if cut == 0 || cut == len(b.Code) {
		// Either there is at most one instruction (nothing to split) or
		// everything fits and the cost excess is all in the terminator,
		// which cannot be split.
		return false
	}

	// Evaluation-stack depth at the cut: values pending across it are
	// spilled to fresh per-PE slots. Splitting must make progress — the
	// tail must get strictly cheaper than the original block even after
	// the reloads — or the restart loop would never converge; advance
	// the cut until the prefix outweighs the spill traffic.
	depthAt := func(n int) int {
		d := 0
		for _, in := range b.Code[:n] {
			d += in.Op.StackDelta(in.Imm)
		}
		return d
	}
	costAt := func(n int) int { return ir.CodeCost(b.Code[:n]) }
	total := ir.CodeCost(b.Code)
	progress := func(cut int) bool {
		d := depthAt(cut)
		if d < 0 {
			return false
		}
		// Tail must shrink: the prefix removed outweighs the reloads.
		// Head must shrink: prefix plus spill stores stays under the
		// original. Otherwise the piece is an irreducible unit and
		// re-splitting it would loop forever.
		return costAt(cut) > d*ir.LdLocal.Cost() &&
			costAt(cut)+d*ir.StLocal.Cost() < total
	}
	for cut < len(b.Code) && !progress(cut) {
		cut++
	}
	if cut >= len(b.Code) {
		return false
	}
	depth := depthAt(cut)
	spills := make([]int, depth)
	for i := range spills {
		spills[i] = g.Words
		g.Words++
	}

	head := append([]ir.Instr(nil), b.Code[:cut]...)
	for i := depth - 1; i >= 0; i-- { // pop order: top of stack first
		head = append(head, ir.Instr{Op: ir.StLocal, Imm: int64(spills[i]), Sym: "$split"})
	}
	tailCode := make([]ir.Instr, 0, depth+len(b.Code)-cut)
	for i := 0; i < depth; i++ {
		tailCode = append(tailCode, ir.Instr{Op: ir.LdLocal, Imm: int64(spills[i]), Sym: "$split"})
	}
	tailCode = append(tailCode, b.Code[cut:]...)

	tail := &cfg.Block{
		ID:         len(g.Blocks),
		Code:       tailCode,
		Term:       b.Term,
		Next:       b.Next,
		FNext:      b.FNext,
		RetTargets: b.RetTargets,
		SpawnNext:  b.SpawnNext,
		Label:      b.Label + "/tail",
	}
	g.Blocks = append(g.Blocks, tail)

	b.Code = head
	b.Term = cfg.Goto
	b.Next = tail.ID
	b.FNext = cfg.None
	b.RetTargets = nil
	b.SpawnNext = cfg.None
	b.Label += "/head"
	return true
}
