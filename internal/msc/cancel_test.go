package msc

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"msc/internal/cfg"
	"msc/internal/faultinject"
)

// cancelCorpusGraph loads a shipped program whose uncompressed
// automaton is large enough (28 meta states) that cancellation can land
// mid-conversion at several distinct points.
func cancelCorpusGraph(t *testing.T) *cfg.Graph {
	t.Helper()
	src, err := os.ReadFile("../../testdata/vet/barriers.mc")
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Simplify(cfg.MustBuild(string(src)))
}

// TestConvertCancelAtSeededPoints cancels the conversion after the k-th
// freshly interned meta state, for several seeded k, and requires: a
// context.Canceled error, no leaked workers, and a byte-identical
// automaton when the same conversion is re-run without interference.
func TestConvertCancelAtSeededPoints(t *testing.T) {
	forceParallel(t)
	g := cancelCorpusGraph(t)
	opt := DefaultOptions(false)
	opt.MaxStates = 1 << 14
	opt.Workers = 4

	pristine, err := Convert(g, opt)
	if err != nil {
		t.Fatalf("pristine conversion failed: %v", err)
	}
	want := fingerprint(pristine)
	total := pristine.NumStates()
	if total < 12 {
		t.Fatalf("corpus program too small for cancellation points: %d meta states", total)
	}

	for _, k := range []int{1, 3, 8, total / 2} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			leak := faultinject.LeakCheck()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			deactivate := faultinject.Activate(&faultinject.Plan{
				Fault:  faultinject.CancelAfterStates,
				States: k,
				Cancel: cancel,
			})
			_, err := ConvertContext(ctx, g, opt)
			deactivate()
			if err == nil {
				t.Fatalf("k=%d: conversion completed despite cancellation", k)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("k=%d: want context.Canceled in chain, got %v", k, err)
			}
			if lerr := leak(); lerr != nil {
				t.Fatalf("k=%d: %v", k, lerr)
			}

			// The interrupted conversion must leave no residue: a clean
			// re-run yields the pristine automaton byte for byte.
			a, err := Convert(g, opt)
			if err != nil {
				t.Fatalf("k=%d: re-run failed: %v", k, err)
			}
			if got := fingerprint(a); got != want {
				t.Fatalf("k=%d: re-run automaton differs from pristine", k)
			}
		})
	}
}

// TestConvertPreCanceledContext requires an already-canceled context to
// fail fast with context.Canceled and leak nothing.
func TestConvertPreCanceledContext(t *testing.T) {
	forceParallel(t)
	g := cancelCorpusGraph(t)
	opt := DefaultOptions(true)
	opt.Workers = 4

	leak := faultinject.LeakCheck()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ConvertContext(ctx, g, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if lerr := leak(); lerr != nil {
		t.Fatal(lerr)
	}
}

// TestConvertCancelManyWorkers drives the widest pool the matrix uses
// under mid-flight cancellation; with -race this doubles as a drain
// soundness check for the claim/commit protocol.
func TestConvertCancelManyWorkers(t *testing.T) {
	forceParallel(t)
	g := cancelCorpusGraph(t)
	opt := DefaultOptions(true)
	opt.Workers = 8

	for _, k := range []int{2, 5} {
		leak := faultinject.LeakCheck()
		ctx, cancel := context.WithCancel(context.Background())
		deactivate := faultinject.Activate(&faultinject.Plan{
			Fault:  faultinject.CancelAfterStates,
			States: k,
			Cancel: cancel,
		})
		_, err := ConvertContext(ctx, g, opt)
		deactivate()
		cancel()
		if err == nil {
			t.Fatalf("k=%d: conversion completed despite cancellation", k)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("k=%d: want context.Canceled, got %v", k, err)
		}
		if lerr := leak(); lerr != nil {
			t.Fatalf("k=%d: %v", k, lerr)
		}
	}
}
