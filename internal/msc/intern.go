package msc

import "msc/internal/bitset"

// internTable is the hash-consed meta-state index: an open-addressing
// table from 64-bit set hashes to meta-state IDs. It replaces the old
// map[string]int keyed by Set.Key() — interning a set costs one word
// hash and a probe instead of a heap-allocated string per lookup.
// Collisions are resolved by linear probing; slots cache the full hash
// so a probe only touches the candidate's Set on a hash match.
//
// The table is NOT safe for concurrent mutation. Conversion interns only
// from the single-threaded commit step (see convert.go's determinism
// argument); concurrent read-only lookups (Automaton.Find from the
// execution engines) are safe once conversion has finished.
type internTable struct {
	slots []internSlot
	n     int
}

type internSlot struct {
	hash uint64
	id   int32 // state ID, or internEmpty
}

const internEmpty = int32(-1)

// reset empties the table, keeping the allocated slot array (warm
// restarts reuse the capacity the previous conversion pass grew).
func (t *internTable) reset() {
	for i := range t.slots {
		t.slots[i].id = internEmpty
	}
	t.n = 0
}

// lookup returns the ID of the state whose set equals set, if interned.
func (t *internTable) lookup(hash uint64, set *bitset.Set, states []*MetaState) (int, bool) {
	if len(t.slots) == 0 {
		return 0, false
	}
	mask := uint64(len(t.slots) - 1)
	for i := hash & mask; ; i = (i + 1) & mask {
		s := t.slots[i]
		if s.id == internEmpty {
			return 0, false
		}
		if s.hash == hash && states[s.id].Set.Equal(set) {
			return int(s.id), true
		}
	}
}

// insert adds a (hash, id) pair. The caller must have established via
// lookup that no equal set is present.
func (t *internTable) insert(hash uint64, id int) {
	if len(t.slots) == 0 || t.n >= len(t.slots)*3/4 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	i := hash & mask
	for t.slots[i].id != internEmpty {
		i = (i + 1) & mask
	}
	t.slots[i] = internSlot{hash: hash, id: int32(id)}
	t.n++
}

func (t *internTable) grow() {
	newCap := 64
	if len(t.slots) > 0 {
		newCap = len(t.slots) * 2
	}
	old := t.slots
	t.slots = make([]internSlot, newCap)
	for i := range t.slots {
		t.slots[i].id = internEmpty
	}
	mask := uint64(newCap - 1)
	for _, s := range old {
		if s.id == internEmpty {
			continue
		}
		i := s.hash & mask
		for t.slots[i].id != internEmpty {
			i = (i + 1) & mask
		}
		t.slots[i] = s
	}
}

// setTable is the per-expansion dedup table for partial successor
// products: open addressing from set hashes to indices into the caller's
// slice of candidate sets. Slots are generation-stamped so reset() is
// O(1) between the members of one meta state instead of clearing.
type setTable struct {
	hashes []uint64
	vals   []int32
	stamps []uint32
	stamp  uint32
}

// reset prepares the table for up to n insertions.
func (t *setTable) reset(n int) {
	need := 64
	for need < n*2 {
		need *= 2
	}
	if len(t.hashes) < need {
		t.hashes = make([]uint64, need)
		t.vals = make([]int32, need)
		t.stamps = make([]uint32, need)
		t.stamp = 1
		return
	}
	t.stamp++
	if t.stamp == 0 { // stamp wrapped: clear and restart
		for i := range t.stamps {
			t.stamps[i] = 0
		}
		t.stamp = 1
	}
}

// lookupOrInsert returns (index, true) when an equal set is already
// present in pool, and otherwise records idx for the set and returns
// (idx, false).
func (t *setTable) lookupOrInsert(hash uint64, set *bitset.Set, pool []*bitset.Set, idx int) (int, bool) {
	mask := uint64(len(t.hashes) - 1)
	for i := hash & mask; ; i = (i + 1) & mask {
		if t.stamps[i] != t.stamp {
			t.hashes[i] = hash
			t.vals[i] = int32(idx)
			t.stamps[i] = t.stamp
			return idx, false
		}
		if t.hashes[i] == hash && pool[t.vals[i]].Equal(set) {
			return int(t.vals[i]), true
		}
	}
}
