package mimdc

import (
	"fmt"
	"strconv"

	"msc/internal/ir"
)

// Parser is a recursive-descent parser for MIMDC.
type Parser struct {
	toks []Token
	pos  int
	errs *ErrorList
}

// Parse parses src into a Program. The returned error aggregates all
// lexical and syntactic diagnostics.
func Parse(src string) (*Program, error) {
	var errs ErrorList
	toks := Tokenize(src, &errs)
	p := &Parser{toks: toks, errs: &errs}
	prog := p.parseProgram()
	if prog != nil {
		prog.Tokens = len(toks) - 1 // excluding the EOF sentinel
	}
	return prog, errs.Err()
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) Token {
	if p.at(k) {
		return p.next()
	}
	p.errs.Addf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return Token{Kind: k, Pos: p.cur().Pos}
}

// sync skips tokens until a likely statement boundary, for error recovery.
func (p *Parser) sync() {
	for !p.at(EOF) {
		if p.accept(Semi) {
			return
		}
		if p.at(RBrace) || p.at(LBrace) {
			return
		}
		p.next()
	}
}

func (p *Parser) parseProgram() *Program {
	prog := &Program{}
	for !p.at(EOF) {
		switch p.cur().Kind {
		case KwMono, KwPoly:
			decls := p.parseVarDecl()
			prog.Globals = append(prog.Globals, decls...)
		case KwInt, KwFloat, KwVoid:
			prog.Funcs = append(prog.Funcs, p.parseFunc())
		default:
			p.errs.Addf(p.cur().Pos, "expected declaration, found %s", p.cur())
			p.next() // always make progress before resyncing
			p.sync()
		}
	}
	return prog
}

func (p *Parser) parseType() ir.Type {
	switch p.cur().Kind {
	case KwInt:
		p.next()
		return ir.Int
	case KwFloat:
		p.next()
		return ir.Float
	case KwVoid:
		p.next()
		return ir.Void
	}
	p.errs.Addf(p.cur().Pos, "expected type, found %s", p.cur())
	p.next()
	return ir.Int
}

// parseVarDecl parses ("mono"|"poly") type declarator ("," declarator)* ";".
func (p *Parser) parseVarDecl() []*VarDecl {
	mono := p.cur().Kind == KwMono
	pos := p.next().Pos
	ty := p.parseType()
	if ty == ir.Void {
		p.errs.Addf(pos, "variables cannot have type void")
		ty = ir.Int
	}
	var out []*VarDecl
	for {
		name := p.expect(Ident)
		d := &VarDecl{Pos: name.Pos, Mono: mono, Ty: ty, Name: name.Text}
		if p.accept(LBracket) {
			lenTok := p.expect(IntLiteral)
			n, err := strconv.ParseInt(lenTok.Text, 10, 32)
			if err != nil || n <= 0 {
				p.errs.Addf(lenTok.Pos, "invalid array length %q", lenTok.Text)
				n = 1
			}
			d.ArrayLen = int(n)
			p.expect(RBracket)
		}
		if p.accept(AssignTok) {
			if d.ArrayLen > 0 {
				p.errs.Addf(d.Pos, "array %s cannot have an initializer", d.Name)
			}
			d.Init = p.parseAssignExpr()
		}
		out = append(out, d)
		if !p.accept(Comma) {
			break
		}
	}
	p.expect(Semi)
	return out
}

func (p *Parser) parseFunc() *FuncDecl {
	pos := p.cur().Pos
	ret := p.parseType()
	name := p.expect(Ident)
	f := &FuncDecl{Pos: pos, Ret: ret, Name: name.Text}
	p.expect(LParen)
	if !p.at(RParen) {
		for {
			pty := p.parseType()
			if pty == ir.Void {
				p.errs.Addf(p.cur().Pos, "parameters cannot have type void")
				pty = ir.Int
			}
			pname := p.expect(Ident)
			f.Params = append(f.Params, &VarDecl{
				Pos: pname.Pos, Ty: pty, Name: pname.Text, IsParam: true,
			})
			if !p.accept(Comma) {
				break
			}
		}
	}
	p.expect(RParen)
	f.Body = p.parseBlock()
	return f
}

func (p *Parser) parseBlock() *BlockStmt {
	pos := p.expect(LBrace).Pos
	blk := &BlockStmt{Pos: pos}
	for !p.at(RBrace) && !p.at(EOF) {
		blk.Stmts = append(blk.Stmts, p.parseStmt())
	}
	p.expect(RBrace)
	return blk
}

func (p *Parser) parseStmt() Stmt {
	switch p.cur().Kind {
	case LBrace:
		return p.parseBlock()
	case KwMono, KwPoly:
		pos := p.cur().Pos
		return &DeclStmt{Pos: pos, Decls: p.parseVarDecl()}
	case Semi:
		pos := p.next().Pos
		return &EmptyStmt{Pos: pos}
	case KwIf:
		pos := p.next().Pos
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		then := p.parseStmt()
		var els Stmt
		if p.accept(KwElse) {
			els = p.parseStmt()
		}
		return &IfStmt{Pos: pos, Cond: cond, Then: then, Else: els}
	case KwWhile:
		pos := p.next().Pos
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		body := p.parseStmt()
		return &WhileStmt{Pos: pos, Cond: cond, Body: body}
	case KwDo:
		pos := p.next().Pos
		body := p.parseStmt()
		p.expect(KwWhile)
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		p.expect(Semi)
		return &DoWhileStmt{Pos: pos, Body: body, Cond: cond}
	case KwFor:
		pos := p.next().Pos
		p.expect(LParen)
		var init, cond, post Expr
		if !p.at(Semi) {
			init = p.parseExpr()
		}
		p.expect(Semi)
		if !p.at(Semi) {
			cond = p.parseExpr()
		}
		p.expect(Semi)
		if !p.at(RParen) {
			post = p.parseExpr()
		}
		p.expect(RParen)
		body := p.parseStmt()
		return &ForStmt{Pos: pos, Init: init, Cond: cond, Post: post, Body: body}
	case KwReturn:
		pos := p.next().Pos
		var x Expr
		if !p.at(Semi) {
			x = p.parseExpr()
		}
		p.expect(Semi)
		return &ReturnStmt{Pos: pos, X: x}
	case KwWait:
		pos := p.next().Pos
		p.expect(Semi)
		return &WaitStmt{Pos: pos}
	case KwSpawn:
		pos := p.next().Pos
		name := p.expect(Ident)
		p.expect(LParen)
		p.expect(RParen)
		p.expect(Semi)
		return &SpawnStmt{Pos: pos, Name: name.Text}
	case KwHalt:
		pos := p.next().Pos
		p.expect(Semi)
		return &HaltStmt{Pos: pos}
	case KwBreak:
		pos := p.next().Pos
		p.expect(Semi)
		return &BreakStmt{Pos: pos}
	case KwContinue:
		pos := p.next().Pos
		p.expect(Semi)
		return &ContinueStmt{Pos: pos}
	default:
		pos := p.cur().Pos
		x := p.parseExpr()
		p.expect(Semi)
		return &ExprStmt{Pos: pos, X: x}
	}
}

// ---- Expressions ----------------------------------------------------------

func (p *Parser) parseExpr() Expr { return p.parseAssignExpr() }

// compoundOps maps compound-assignment tokens to their binary operator.
var compoundOps = map[Kind]Kind{
	PlusAssign: Plus, MinusAssign: Minus, StarAssign: Star,
	SlashAssign: Slash, PercentAssign: Percent,
}

func (p *Parser) parseAssignExpr() Expr {
	lhs := p.parseTernary()
	switch {
	case p.at(AssignTok):
		pos := p.next().Pos
		switch lhs.(type) {
		case *VarRef, *IndexRef, *RemoteRef:
		default:
			p.errs.Addf(pos, "left side of = is not assignable")
		}
		rhs := p.parseAssignExpr()
		return &Assign{Pos: pos, LHS: lhs, RHS: rhs}
	case compoundOps[p.cur().Kind] != 0:
		// x op= e desugars to x = x op e. The left side is re-read, so
		// only scalar variables are allowed (subscripts would evaluate
		// their index twice).
		tok := p.next()
		if _, ok := lhs.(*VarRef); !ok {
			p.errs.Addf(tok.Pos, "left side of %s must be a scalar variable", tok.Kind)
		}
		rhs := p.parseAssignExpr()
		return &Assign{Pos: tok.Pos, LHS: lhs,
			RHS: &Binary{Pos: tok.Pos, Op: compoundOps[tok.Kind], L: lhs, R: rhs}}
	case p.at(PlusPlus) || p.at(MinusMinus):
		tok := p.next()
		if _, ok := lhs.(*VarRef); !ok {
			p.errs.Addf(tok.Pos, "operand of %s must be a scalar variable", tok.Kind)
		}
		op := Plus
		if tok.Kind == MinusMinus {
			op = Minus
		}
		return &Assign{Pos: tok.Pos, LHS: lhs,
			RHS: &Binary{Pos: tok.Pos, Op: op, L: lhs, R: &IntLit{Pos: tok.Pos, Val: 1}}}
	}
	return lhs
}

// parseTernary parses c ? t : f (right-associative).
func (p *Parser) parseTernary() Expr {
	c := p.parseBinary(0)
	if !p.at(Question) {
		return c
	}
	pos := p.next().Pos
	t := p.parseExpr()
	p.expect(Colon)
	f := p.parseTernary()
	return &Cond{Pos: pos, C: c, T: t, F: f}
}

// binaryPrec returns the precedence of k as a binary operator (higher
// binds tighter), or -1 if k is not a binary operator.
func binaryPrec(k Kind) int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Or:
		return 3
	case Xor:
		return 4
	case And:
		return 5
	case EqEq, NotEq:
		return 6
	case Lt, LtEq, Gt, GtEq:
		return 7
	case Shl, Shr:
		return 8
	case Plus, Minus:
		return 9
	case Star, Slash, Percent:
		return 10
	}
	return -1
}

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		prec := binaryPrec(p.cur().Kind)
		if prec < 0 || prec < minPrec {
			return lhs
		}
		op := p.next()
		rhs := p.parseBinary(prec + 1) // all binary ops left-associative
		lhs = &Binary{Pos: op.Pos, Op: op.Kind, L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnary() Expr {
	switch p.cur().Kind {
	case Minus:
		pos := p.next().Pos
		return &Unary{Pos: pos, Op: Minus, X: p.parseUnary()}
	case Not:
		pos := p.next().Pos
		return &Unary{Pos: pos, Op: Not, X: p.parseUnary()}
	case Tilde:
		pos := p.next().Pos
		return &Unary{Pos: pos, Op: Tilde, X: p.parseUnary()}
	case Plus:
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case IntLiteral:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.errs.Addf(t.Pos, "invalid integer literal %q", t.Text)
		}
		return &IntLit{Pos: t.Pos, Val: v}
	case FloatLiteral:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.errs.Addf(t.Pos, "invalid float literal %q", t.Text)
		}
		return &FloatLit{Pos: t.Pos, Val: v}
	case KwIProc:
		p.next()
		return &IProc{Pos: t.Pos}
	case KwNProc:
		p.next()
		return &NProc{Pos: t.Pos}
	case LParen:
		p.next()
		x := p.parseExpr()
		p.expect(RParen)
		return x
	case Ident:
		p.next()
		switch {
		case p.at(LParen):
			p.next()
			call := &Call{Pos: t.Pos, Name: t.Text}
			if !p.at(RParen) {
				for {
					call.Args = append(call.Args, p.parseAssignExpr())
					if !p.accept(Comma) {
						break
					}
				}
			}
			p.expect(RParen)
			return call
		case p.at(LBracket) && p.peek().Kind == LBracket:
			// Parallel subscript y[[j]] — two consecutive brackets.
			p.next()
			p.next()
			pe := p.parseExpr()
			p.expect(RBracket)
			p.expect(RBracket)
			return &RemoteRef{Pos: t.Pos, Name: t.Text, PE: pe}
		case p.at(LBracket):
			p.next()
			idx := p.parseExpr()
			p.expect(RBracket)
			return &IndexRef{Pos: t.Pos, Name: t.Text, Idx: idx}
		default:
			return &VarRef{Pos: t.Pos, Name: t.Text}
		}
	}
	p.errs.Addf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &IntLit{Pos: t.Pos, Val: 0}
}

// MustParse parses src and panics on error; intended for tests and
// embedded example programs.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("mimdc.MustParse: %v", err))
	}
	return prog
}
