package mimdc

import (
	"testing"

	"msc/internal/ir"
)

// FuzzParse checks that arbitrary input never panics the front end and
// that anything that parses and analyzes cleanly also re-parses from
// its own formatted output.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"void main() { }",
		"poly int x; void main() { x = 1; }",
		"mono float f = 1.5; void main() { f = f * 2.0; }",
		`void main() { poly int x; if (x) { do { x = 1; } while (x); } else { do { x = 2; } while (x); } return; }`,
		"void w() { halt; } void main() { spawn w(); wait; return; }",
		"int f(int a) { return f(a - 1); } void main() { poly int r; r = f(3); }",
		"poly int a[4]; void main() { a[a[0]] = a[[iproc]]; }",
		"void main() { poly int x; x = 1 && 2 || !3; }",
		"void main() { for (;;) { break; } }",
		"/* unterminated",
		"void main() { poly int x; x = ((((1)))); }",
		"\x00\x01\x02",
		"void main() { 3e }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if err := Analyze(prog); err != nil {
			return
		}
		// Valid programs round-trip through the formatter.
		formatted := prog.Format()
		prog2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("formatted output fails to parse: %v\noriginal: %q\nformatted:\n%s", err, src, formatted)
		}
		if f2 := prog2.Format(); f2 != formatted {
			t.Fatalf("format not a fixed point for %q", src)
		}
	})
}

// FuzzStackBalance checks the balance analyzer never panics and agrees
// with a direct simulation of the deltas.
func FuzzStackBalance(f *testing.F) {
	f.Add([]byte{byte(ir.PushC), byte(ir.Add), byte(ir.Pop)})
	f.Add([]byte{byte(ir.Dup), byte(ir.StLocal)})
	f.Fuzz(func(t *testing.T, ops []byte) {
		code := make([]ir.Instr, 0, len(ops))
		for _, b := range ops {
			op := ir.Op(b % 40)
			imm := int64(b % 3)
			code = append(code, ir.Instr{Op: op, Imm: imm})
		}
		net, min := ir.StackBalance(code)
		if min > 0 {
			t.Fatalf("min depth %d > 0 is impossible", min)
		}
		if min > net {
			t.Fatalf("min %d greater than net %d", min, net)
		}
	})
}
