package mimdc

import (
	"msc/internal/ir"
)

// Analyze resolves names, type-checks the program, inserts implicit
// numeric conversions, and assigns memory slots: mono (replicated)
// variables occupy slots [0, MonoSlots), poly (private) variables and
// all function locals occupy slots [MonoSlots, MonoSlots+PolySlots).
//
// Function parameters and locals get static slots (the classic
// pre-stack-frame discipline): recursion is supported for control flow
// via the §2.2 return-token trick, but each function has one set of
// local storage shared by all simultaneously live activations. The
// analyzer does not reject recursion; programs that need per-activation
// locals must manage them explicitly.
func Analyze(prog *Program) error {
	a := &analyzer{prog: prog, errs: &ErrorList{}}
	a.run()
	return a.errs.Err()
}

// MustAnalyze parses and analyzes src, panicking on any diagnostic.
func MustAnalyze(src string) *Program {
	prog := MustParse(src)
	if err := Analyze(prog); err != nil {
		panic("mimdc.MustAnalyze: " + err.Error())
	}
	return prog
}

type scope struct {
	parent *scope
	vars   map[string]*VarDecl
}

func (s *scope) lookup(name string) *VarDecl {
	for sc := s; sc != nil; sc = sc.parent {
		if d, ok := sc.vars[name]; ok {
			return d
		}
	}
	return nil
}

type analyzer struct {
	prog      *Program
	errs      *ErrorList
	funcs     map[string]*FuncDecl
	globals   *scope
	cur       *FuncDecl
	curScope  *scope
	loopDepth int
	nextMono  int
	nextPoly  int
}

func (a *analyzer) run() {
	a.funcs = make(map[string]*FuncDecl, len(a.prog.Funcs))
	for _, f := range a.prog.Funcs {
		if prev, dup := a.funcs[f.Name]; dup {
			a.errs.Addf(f.Pos, "function %s redeclared (previous at %s)", f.Name, prev.Pos)
			continue
		}
		a.funcs[f.Name] = f
	}

	a.globals = &scope{vars: make(map[string]*VarDecl)}
	for _, g := range a.prog.Globals {
		a.declare(a.globals, g)
		if g.Init != nil {
			g.Init = a.checkExpr(g.Init)
			if !isConstExpr(g.Init) {
				a.errs.Addf(g.Pos, "initializer of global %s is not constant", g.Name)
			}
			g.Init = a.convert(g.Init, g.Ty, g.Pos)
		}
	}

	for _, f := range a.prog.Funcs {
		a.checkFunc(f)
	}

	// Slot counts are finalized only after every declaration is placed.
	// Mono slots were assigned in [0, nextMono); poly slots were assigned
	// relative and are now offset past the mono region.
	a.prog.MonoSlots = a.nextMono
	a.prog.PolySlots = a.nextPoly
	var shift func(d *VarDecl)
	shift = func(d *VarDecl) {
		if !d.Mono {
			d.Slot += a.nextMono
		}
	}
	for _, g := range a.prog.Globals {
		shift(g)
	}
	for _, f := range a.prog.Funcs {
		for _, d := range f.Locals {
			shift(d)
		}
	}
}

// declare places d into sc and assigns its slot.
func (a *analyzer) declare(sc *scope, d *VarDecl) {
	if prev, dup := sc.vars[d.Name]; dup {
		a.errs.Addf(d.Pos, "%s redeclared in this scope (previous at %s)", d.Name, prev.Pos)
	}
	sc.vars[d.Name] = d
	size := 1
	if d.ArrayLen > 0 {
		size = d.ArrayLen
	}
	if d.Mono {
		d.Slot = a.nextMono
		a.nextMono += size
	} else {
		d.Slot = a.nextPoly // offset by MonoSlots at the end of run()
		a.nextPoly += size
	}
}

func (a *analyzer) checkFunc(f *FuncDecl) {
	a.cur = f
	fnScope := &scope{parent: a.globals, vars: make(map[string]*VarDecl)}
	for _, prm := range f.Params {
		a.declare(fnScope, prm)
		f.Locals = append(f.Locals, prm)
	}
	a.curScope = fnScope
	a.checkBlock(f.Body)
	a.cur = nil
}

func (a *analyzer) checkBlock(b *BlockStmt) {
	saved := a.curScope
	a.curScope = &scope{parent: saved, vars: make(map[string]*VarDecl)}
	for _, s := range b.Stmts {
		a.checkStmt(s)
	}
	a.curScope = saved
}

func (a *analyzer) checkStmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		a.checkBlock(s)
	case *DeclStmt:
		for _, d := range s.Decls {
			a.declare(a.curScope, d)
			a.cur.Locals = append(a.cur.Locals, d)
			if d.Init != nil {
				d.Init = a.convert(a.checkExpr(d.Init), d.Ty, d.Pos)
			}
		}
	case *ExprStmt:
		s.X = a.checkExpr(s.X)
	case *IfStmt:
		s.Cond = a.checkCond(s.Cond, s.Pos)
		a.checkStmt(s.Then)
		if s.Else != nil {
			a.checkStmt(s.Else)
		}
	case *WhileStmt:
		s.Cond = a.checkCond(s.Cond, s.Pos)
		a.loopDepth++
		a.checkStmt(s.Body)
		a.loopDepth--
	case *DoWhileStmt:
		a.loopDepth++
		a.checkStmt(s.Body)
		a.loopDepth--
		s.Cond = a.checkCond(s.Cond, s.Pos)
	case *ForStmt:
		if s.Init != nil {
			s.Init = a.checkExpr(s.Init)
		}
		if s.Cond != nil {
			s.Cond = a.checkCond(s.Cond, s.Pos)
		}
		if s.Post != nil {
			s.Post = a.checkExpr(s.Post)
		}
		a.loopDepth++
		a.checkStmt(s.Body)
		a.loopDepth--
	case *ReturnStmt:
		if s.X != nil {
			if a.cur.Ret == ir.Void {
				a.errs.Addf(s.Pos, "return with value in void function %s", a.cur.Name)
				s.X = a.checkExpr(s.X)
			} else {
				s.X = a.convert(a.checkExpr(s.X), a.cur.Ret, s.Pos)
			}
		} else if a.cur.Ret != ir.Void {
			a.errs.Addf(s.Pos, "return without value in %s function %s", a.cur.Ret, a.cur.Name)
		}
	case *WaitStmt, *HaltStmt, *EmptyStmt:
	case *SpawnStmt:
		f, ok := a.funcs[s.Name]
		if !ok {
			a.errs.Addf(s.Pos, "spawn of undefined function %s", s.Name)
			return
		}
		if f.Ret != ir.Void || len(f.Params) != 0 {
			a.errs.Addf(s.Pos, "spawn target %s must be void with no parameters", s.Name)
		}
		s.Decl = f
	case *BreakStmt:
		if a.loopDepth == 0 {
			a.errs.Addf(s.Pos, "break outside loop")
		}
	case *ContinueStmt:
		if a.loopDepth == 0 {
			a.errs.Addf(s.Pos, "continue outside loop")
		}
	}
}

// checkCond checks a condition expression; any numeric type is allowed
// (the CFG builder lowers float truthiness to a != 0.0 comparison).
func (a *analyzer) checkCond(e Expr, pos Pos) Expr {
	e = a.checkExpr(e)
	if e.Type() == ir.Void {
		a.errs.Addf(pos, "condition has no value")
	}
	return e
}

// convert coerces e to ty, inserting an implicit Conv if needed.
func (a *analyzer) convert(e Expr, ty ir.Type, pos Pos) Expr {
	from := e.Type()
	if from == ty || from == ir.Void || ty == ir.Void {
		if from == ir.Void && ty != ir.Void {
			a.errs.Addf(pos, "void value used where %s is required", ty)
		}
		return e
	}
	return &Conv{typed: typed{Ty: ty}, X: e}
}

func isConstExpr(e Expr) bool {
	switch e := e.(type) {
	case *IntLit, *FloatLit:
		return true
	case *Unary:
		return e.Op == Minus && isConstExpr(e.X)
	case *Conv:
		return isConstExpr(e.X)
	}
	return false
}

func (a *analyzer) checkExpr(e Expr) Expr {
	switch e := e.(type) {
	case *IntLit:
		e.Ty = ir.Int
	case *FloatLit:
		e.Ty = ir.Float
	case *IProc, *NProc:
		setType(e, ir.Int)
	case *VarRef:
		d := a.lookupVar(e.Name, e.Pos)
		if d == nil {
			e.Ty = ir.Int
			return e
		}
		if d.ArrayLen > 0 {
			a.errs.Addf(e.Pos, "array %s used without subscript", e.Name)
		}
		e.Decl = d
		e.Ty = d.Ty
	case *IndexRef:
		d := a.lookupVar(e.Name, e.Pos)
		e.Idx = a.convert(a.checkExpr(e.Idx), ir.Int, e.Pos)
		if d == nil {
			e.Ty = ir.Int
			return e
		}
		if d.ArrayLen == 0 {
			a.errs.Addf(e.Pos, "%s is not an array", e.Name)
		}
		e.Decl = d
		e.Ty = d.Ty
	case *RemoteRef:
		d := a.lookupVar(e.Name, e.Pos)
		e.PE = a.convert(a.checkExpr(e.PE), ir.Int, e.Pos)
		if d == nil {
			e.Ty = ir.Int
			return e
		}
		if d.Mono {
			a.errs.Addf(e.Pos, "parallel subscript of mono variable %s (mono values are identical everywhere)", e.Name)
		}
		if d.ArrayLen > 0 {
			a.errs.Addf(e.Pos, "parallel subscript of array %s is not supported", e.Name)
		}
		e.Decl = d
		e.Ty = d.Ty
	case *Call:
		f, ok := a.funcs[e.Name]
		if !ok {
			a.errs.Addf(e.Pos, "call of undefined function %s", e.Name)
			e.Ty = ir.Int
			for i := range e.Args {
				e.Args[i] = a.checkExpr(e.Args[i])
			}
			return e
		}
		e.Decl = f
		e.Ty = f.Ret
		if len(e.Args) != len(f.Params) {
			a.errs.Addf(e.Pos, "call of %s with %d arguments, want %d",
				e.Name, len(e.Args), len(f.Params))
		}
		for i := range e.Args {
			e.Args[i] = a.checkExpr(e.Args[i])
			if i < len(f.Params) {
				e.Args[i] = a.convert(e.Args[i], f.Params[i].Ty, e.Pos)
			}
		}
	case *Unary:
		e.X = a.checkExpr(e.X)
		switch e.Op {
		case Minus:
			e.Ty = e.X.Type()
			if e.Ty == ir.Void {
				a.errs.Addf(e.Pos, "operand of - has no value")
				e.Ty = ir.Int
			}
		case Not:
			if e.X.Type() == ir.Void {
				a.errs.Addf(e.Pos, "operand of ! has no value")
			}
			e.Ty = ir.Int
		case Tilde:
			if e.X.Type() == ir.Float {
				a.errs.Addf(e.Pos, "operand of ~ must be int")
				e.X = a.convert(e.X, ir.Int, e.Pos)
			}
			e.Ty = ir.Int
		}
	case *Binary:
		e.L = a.checkExpr(e.L)
		e.R = a.checkExpr(e.R)
		lt, rt := e.L.Type(), e.R.Type()
		if lt == ir.Void || rt == ir.Void {
			a.errs.Addf(e.Pos, "operand of %s has no value", e.Op)
			e.Ty = ir.Int
			return e
		}
		switch e.Op {
		case Plus, Minus, Star, Slash:
			if lt == ir.Float || rt == ir.Float {
				e.L = a.convert(e.L, ir.Float, e.Pos)
				e.R = a.convert(e.R, ir.Float, e.Pos)
				e.Ty = ir.Float
			} else {
				e.Ty = ir.Int
			}
		case Percent, Shl, Shr, And, Or, Xor:
			if lt == ir.Float || rt == ir.Float {
				a.errs.Addf(e.Pos, "operands of %s must be int", e.Op)
			}
			e.L = a.convert(e.L, ir.Int, e.Pos)
			e.R = a.convert(e.R, ir.Int, e.Pos)
			e.Ty = ir.Int
		case EqEq, NotEq, Lt, LtEq, Gt, GtEq:
			if lt == ir.Float || rt == ir.Float {
				e.L = a.convert(e.L, ir.Float, e.Pos)
				e.R = a.convert(e.R, ir.Float, e.Pos)
			}
			e.Ty = ir.Int
		case AndAnd, OrOr:
			e.Ty = ir.Int // truthiness handled at lowering
		default:
			a.errs.Addf(e.Pos, "unknown binary operator %s", e.Op)
			e.Ty = ir.Int
		}
	case *Assign:
		e.LHS = a.checkExpr(e.LHS)
		e.RHS = a.checkExpr(e.RHS)
		switch e.LHS.(type) {
		case *VarRef, *IndexRef, *RemoteRef:
			e.RHS = a.convert(e.RHS, e.LHS.Type(), e.Pos)
			e.Ty = e.LHS.Type()
		default:
			a.errs.Addf(e.Pos, "left side of = is not assignable")
			e.Ty = ir.Int
		}
	case *Cond:
		e.C = a.checkCond(e.C, e.Pos)
		e.T = a.checkExpr(e.T)
		e.F = a.checkExpr(e.F)
		tt, ft := e.T.Type(), e.F.Type()
		if tt == ir.Void || ft == ir.Void {
			a.errs.Addf(e.Pos, "arm of ?: has no value")
			e.Ty = ir.Int
			return e
		}
		if tt == ir.Float || ft == ir.Float {
			e.T = a.convert(e.T, ir.Float, e.Pos)
			e.F = a.convert(e.F, ir.Float, e.Pos)
			e.Ty = ir.Float
		} else {
			e.Ty = ir.Int
		}
	case *Conv:
		e.X = a.checkExpr(e.X)
	}
	return e
}

func (a *analyzer) lookupVar(name string, pos Pos) *VarDecl {
	sc := a.curScope
	if sc == nil {
		sc = a.globals // global initializers are checked before any function
	}
	if d := sc.lookup(name); d != nil {
		return d
	}
	a.errs.Addf(pos, "undefined variable %s", name)
	return nil
}

func setType(e Expr, ty ir.Type) {
	switch e := e.(type) {
	case *IProc:
		e.Ty = ty
	case *NProc:
		e.Ty = ty
	}
}
