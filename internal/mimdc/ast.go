package mimdc

import (
	"fmt"
	"strconv"
	"strings"

	"msc/internal/ir"
)

// Program is a parsed (and, after Analyze, semantically checked) MIMDC
// translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl

	// Filled in by Analyze:
	MonoSlots int // words of replicated mono storage (slots [0,MonoSlots))
	PolySlots int // words of per-PE private storage (slots [MonoSlots,MonoSlots+PolySlots))

	// Tokens is the number of source tokens consumed by the parser
	// (compile-metrics counter; excludes the EOF sentinel).
	Tokens int
}

// Func returns the function named name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// VarDecl declares a global, local, or parameter variable.
type VarDecl struct {
	Pos      Pos
	Mono     bool // mono (shared/replicated) vs poly (private)
	Ty       ir.Type
	Name     string
	ArrayLen int  // 0 for scalars
	Init     Expr // optional initializer (globals: constant)
	Slot     int  // memory slot, assigned by Analyze
	IsParam  bool
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos    Pos
	Ret    ir.Type
	Name   string
	Params []*VarDecl
	Body   *BlockStmt
	Locals []*VarDecl // params + all block-local decls, set by Analyze
}

// Stmt is the statement interface.
type Stmt interface{ stmtNode() }

type (
	// BlockStmt is { ... }.
	BlockStmt struct {
		Pos   Pos
		Stmts []Stmt
	}
	// DeclStmt is a local variable declaration statement.
	DeclStmt struct {
		Pos   Pos
		Decls []*VarDecl
	}
	// ExprStmt is an expression evaluated for effect.
	ExprStmt struct {
		Pos Pos
		X   Expr
	}
	// IfStmt is if (Cond) Then [else Else].
	IfStmt struct {
		Pos        Pos
		Cond       Expr
		Then, Else Stmt
	}
	// WhileStmt is while (Cond) Body.
	WhileStmt struct {
		Pos  Pos
		Cond Expr
		Body Stmt
	}
	// DoWhileStmt is do Body while (Cond);.
	DoWhileStmt struct {
		Pos  Pos
		Body Stmt
		Cond Expr
	}
	// ForStmt is for (Init; Cond; Post) Body; any clause may be nil.
	ForStmt struct {
		Pos              Pos
		Init, Cond, Post Expr
		Body             Stmt
	}
	// ReturnStmt is return [X];.
	ReturnStmt struct {
		Pos Pos
		X   Expr
	}
	// WaitStmt is the barrier statement wait;.
	WaitStmt struct{ Pos Pos }
	// SpawnStmt is spawn f(); — restricted dynamic process creation.
	SpawnStmt struct {
		Pos  Pos
		Name string
		Decl *FuncDecl // resolved by Analyze
	}
	// HaltStmt releases this PE back to the free pool.
	HaltStmt struct{ Pos Pos }
	// BreakStmt exits the innermost loop.
	BreakStmt struct{ Pos Pos }
	// ContinueStmt continues the innermost loop.
	ContinueStmt struct{ Pos Pos }
	// EmptyStmt is a lone semicolon.
	EmptyStmt struct{ Pos Pos }
)

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*WaitStmt) stmtNode()     {}
func (*SpawnStmt) stmtNode()    {}
func (*HaltStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*EmptyStmt) stmtNode()    {}

// Expr is the expression interface. Type() is ir.Void until Analyze runs.
type Expr interface {
	exprNode()
	Type() ir.Type
}

type typed struct{ Ty ir.Type }

func (t typed) Type() ir.Type { return t.Ty }

type (
	// IntLit is an integer literal.
	IntLit struct {
		typed
		Pos Pos
		Val int64
	}
	// FloatLit is a float literal.
	FloatLit struct {
		typed
		Pos Pos
		Val float64
	}
	// VarRef names a scalar variable.
	VarRef struct {
		typed
		Pos  Pos
		Name string
		Decl *VarDecl // resolved by Analyze
	}
	// IndexRef is arr[idx].
	IndexRef struct {
		typed
		Pos  Pos
		Name string
		Decl *VarDecl
		Idx  Expr
	}
	// RemoteRef is the parallel subscript y[[pe]] (§4.1): the value of
	// poly variable y on processor pe.
	RemoteRef struct {
		typed
		Pos  Pos
		Name string
		Decl *VarDecl
		PE   Expr
	}
	// IProc is the builtin processor index.
	IProc struct {
		typed
		Pos Pos
	}
	// NProc is the builtin machine width.
	NProc struct {
		typed
		Pos Pos
	}
	// Call is f(args). Calls are expanded in-line before conversion (§2.2).
	Call struct {
		typed
		Pos  Pos
		Name string
		Decl *FuncDecl
		Args []Expr
	}
	// Unary is -x, !x, ~x, +x.
	Unary struct {
		typed
		Pos Pos
		Op  Kind
		X   Expr
	}
	// Binary is L op R. && and || are short-circuit (lowered to control
	// flow by the CFG builder).
	Binary struct {
		typed
		Pos  Pos
		Op   Kind
		L, R Expr
	}
	// Assign is LHS = RHS; LHS is a VarRef, IndexRef, or RemoteRef.
	Assign struct {
		typed
		Pos Pos
		LHS Expr
		RHS Expr
	}
	// Cond is the C conditional expression c ? t : f, lowered to
	// control flow like the short-circuit operators.
	Cond struct {
		typed
		Pos     Pos
		C, T, F Expr
	}
	// Conv is an implicit numeric conversion inserted by Analyze.
	Conv struct {
		typed
		X Expr
	}
)

func (*IntLit) exprNode()    {}
func (*FloatLit) exprNode()  {}
func (*VarRef) exprNode()    {}
func (*IndexRef) exprNode()  {}
func (*RemoteRef) exprNode() {}
func (*IProc) exprNode()     {}
func (*NProc) exprNode()     {}
func (*Call) exprNode()      {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Assign) exprNode()    {}
func (*Cond) exprNode()      {}
func (*Conv) exprNode()      {}

// ---- Printer -------------------------------------------------------------

// Format renders the program as parseable MIMDC source.
func (p *Program) Format() string {
	var b strings.Builder
	for _, g := range p.Globals {
		b.WriteString(formatVarDecl(g))
		b.WriteString(";\n")
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, "%s %s(", f.Ret, f.Name)
		for i, prm := range f.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", prm.Ty, prm.Name)
		}
		b.WriteString(")\n")
		formatStmt(&b, f.Body, 0)
	}
	return b.String()
}

func formatVarDecl(v *VarDecl) string {
	cls := "poly"
	if v.Mono {
		cls = "mono"
	}
	s := fmt.Sprintf("%s %s %s", cls, v.Ty, v.Name)
	if v.ArrayLen > 0 {
		s += fmt.Sprintf("[%d]", v.ArrayLen)
	}
	if v.Init != nil {
		s += " = " + FormatExpr(v.Init)
	}
	return s
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("    ")
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *BlockStmt:
		indent(b, depth)
		b.WriteString("{\n")
		for _, inner := range s.Stmts {
			formatStmt(b, inner, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *DeclStmt:
		for _, d := range s.Decls {
			indent(b, depth)
			b.WriteString(formatVarDecl(d))
			b.WriteString(";\n")
		}
	case *ExprStmt:
		indent(b, depth)
		b.WriteString(FormatExpr(s.X))
		b.WriteString(";\n")
	case *IfStmt:
		indent(b, depth)
		fmt.Fprintf(b, "if (%s)\n", FormatExpr(s.Cond))
		formatStmt(b, blockify(s.Then), depth)
		if s.Else != nil {
			indent(b, depth)
			b.WriteString("else\n")
			formatStmt(b, blockify(s.Else), depth)
		}
	case *WhileStmt:
		indent(b, depth)
		fmt.Fprintf(b, "while (%s)\n", FormatExpr(s.Cond))
		formatStmt(b, blockify(s.Body), depth)
	case *DoWhileStmt:
		indent(b, depth)
		b.WriteString("do\n")
		formatStmt(b, blockify(s.Body), depth)
		indent(b, depth)
		fmt.Fprintf(b, "while (%s);\n", FormatExpr(s.Cond))
	case *ForStmt:
		indent(b, depth)
		b.WriteString("for (")
		if s.Init != nil {
			b.WriteString(FormatExpr(s.Init))
		}
		b.WriteString("; ")
		if s.Cond != nil {
			b.WriteString(FormatExpr(s.Cond))
		}
		b.WriteString("; ")
		if s.Post != nil {
			b.WriteString(FormatExpr(s.Post))
		}
		b.WriteString(")\n")
		formatStmt(b, blockify(s.Body), depth)
	case *ReturnStmt:
		indent(b, depth)
		if s.X != nil {
			fmt.Fprintf(b, "return %s;\n", FormatExpr(s.X))
		} else {
			b.WriteString("return;\n")
		}
	case *WaitStmt:
		indent(b, depth)
		b.WriteString("wait;\n")
	case *SpawnStmt:
		indent(b, depth)
		fmt.Fprintf(b, "spawn %s();\n", s.Name)
	case *HaltStmt:
		indent(b, depth)
		b.WriteString("halt;\n")
	case *BreakStmt:
		indent(b, depth)
		b.WriteString("break;\n")
	case *ContinueStmt:
		indent(b, depth)
		b.WriteString("continue;\n")
	case *EmptyStmt:
		indent(b, depth)
		b.WriteString(";\n")
	default:
		// Unknown node: emit a visible placeholder instead of panicking
		// so diagnostics can still render a partially-built AST.
		indent(b, depth)
		fmt.Fprintf(b, "/* unknown statement %T */;\n", s)
	}
}

func blockify(s Stmt) Stmt {
	if _, ok := s.(*BlockStmt); ok {
		return s
	}
	return &BlockStmt{Stmts: []Stmt{s}}
}

// FormatExpr renders an expression with full parenthesization (always
// reparseable; precedence-faithful by construction).
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return strconv.FormatInt(e.Val, 10)
	case *FloatLit:
		s := strconv.FormatFloat(e.Val, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *VarRef:
		return e.Name
	case *IndexRef:
		return fmt.Sprintf("%s[%s]", e.Name, FormatExpr(e.Idx))
	case *RemoteRef:
		return fmt.Sprintf("%s[[%s]]", e.Name, FormatExpr(e.PE))
	case *IProc:
		return "iproc"
	case *NProc:
		return "nproc"
	case *Call:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = FormatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	case *Unary:
		return fmt.Sprintf("(%s%s)", e.Op, FormatExpr(e.X))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(e.L), e.Op, FormatExpr(e.R))
	case *Assign:
		return fmt.Sprintf("%s = %s", FormatExpr(e.LHS), FormatExpr(e.RHS))
	case *Cond:
		return fmt.Sprintf("(%s ? %s : %s)", FormatExpr(e.C), FormatExpr(e.T), FormatExpr(e.F))
	case *Conv:
		return FormatExpr(e.X) // conversions are implicit in source
	default:
		// Unknown node: render a visible placeholder rather than taking
		// down the caller; formatters are used in diagnostics paths.
		return fmt.Sprintf("/* unknown expression %T */", e)
	}
}
