// Package mimdc implements the front end for MIMDC, the parallel C
// dialect accepted by the meta-state converter (§4.1 of the paper):
// mono (shared, replicated) and poly (private) int/float variables,
// parallel subscripting y[[j]], barrier synchronization via the wait
// statement, and restricted dynamic process creation via spawn/halt.
package mimdc

import (
	"fmt"

	"msc/internal/ir"
)

// Kind identifies a lexical token class.
type Kind uint8

const (
	EOF Kind = iota
	Ident
	IntLiteral
	FloatLiteral

	// Keywords.
	KwMono
	KwPoly
	KwInt
	KwFloat
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwDo
	KwFor
	KwReturn
	KwWait
	KwSpawn
	KwHalt
	KwBreak
	KwContinue
	KwIProc
	KwNProc

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semi
	Comma
	AssignTok
	OrOr
	AndAnd
	Or
	Xor
	And
	EqEq
	NotEq
	Lt
	LtEq
	Gt
	GtEq
	Shl
	Shr
	Plus
	Minus
	Star
	Slash
	Percent
	Not
	Tilde
	Question
	Colon
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	PlusPlus
	MinusMinus

	numKinds
)

var kindNames = [numKinds]string{
	EOF: "EOF", Ident: "identifier", IntLiteral: "int literal", FloatLiteral: "float literal",
	KwMono: "mono", KwPoly: "poly", KwInt: "int", KwFloat: "float", KwVoid: "void",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwDo: "do", KwFor: "for",
	KwReturn: "return", KwWait: "wait", KwSpawn: "spawn", KwHalt: "halt",
	KwBreak: "break", KwContinue: "continue", KwIProc: "iproc", KwNProc: "nproc",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",", AssignTok: "=",
	OrOr: "||", AndAnd: "&&", Or: "|", Xor: "^", And: "&",
	EqEq: "==", NotEq: "!=", Lt: "<", LtEq: "<=", Gt: ">", GtEq: ">=",
	Shl: "<<", Shr: ">>", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", Not: "!", Tilde: "~", Question: "?", Colon: ":",
	PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", PlusPlus: "++", MinusMinus: "--",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"mono": KwMono, "poly": KwPoly, "int": KwInt, "float": KwFloat,
	"void": KwVoid, "if": KwIf, "else": KwElse, "while": KwWhile,
	"do": KwDo, "for": KwFor, "return": KwReturn, "wait": KwWait,
	"spawn": KwSpawn, "halt": KwHalt, "break": KwBreak, "continue": KwContinue,
	"iproc": KwIProc, "nproc": KwNProc,
}

// Pos is a source position. It is the IR's position type, aliased so
// that AST positions flow into lowered instructions and CFG blocks
// without conversion (see ir.Pos).
type Pos = ir.Pos

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // raw text for Ident and literals
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLiteral, FloatLiteral:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
