package mimdc

import (
	"strings"
	"testing"

	"msc/internal/ir"
)

// listing1 is the paper's Listing 1 control skeleton as a full program
// (its Listing 4 realization).
const listing1 = `
void main()
{
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    return;
}
`

func TestParseListing1(t *testing.T) {
	prog, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 1 || prog.Funcs[0].Name != "main" {
		t.Fatalf("funcs = %v", prog.Funcs)
	}
	body := prog.Funcs[0].Body.Stmts
	if len(body) != 3 {
		t.Fatalf("body has %d statements, want 3", len(body))
	}
	ifs, ok := body[1].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 1 is %T, want *IfStmt", body[1])
	}
	if _, ok := ifs.Then.(*BlockStmt); !ok {
		t.Fatalf("then branch is %T", ifs.Then)
	}
	if ifs.Else == nil {
		t.Fatalf("else branch missing")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse(`void main() { poly int a, b, c; a = b + c * 2 == 1 || a << 3 & 7; }`)
	if err != nil {
		t.Fatal(err)
	}
	stmt := prog.Funcs[0].Body.Stmts[1].(*ExprStmt)
	// Fully parenthesized rendering exposes the tree shape.
	got := FormatExpr(stmt.X)
	want := "a = (((b + (c * 2)) == 1) || ((a << 3) & 7))"
	if got != want {
		t.Fatalf("precedence tree = %s, want %s", got, want)
	}
}

func TestParseAssociativity(t *testing.T) {
	prog := MustParse(`void main() { poly int a; a = a - 1 - 2; }`)
	got := FormatExpr(prog.Funcs[0].Body.Stmts[1].(*ExprStmt).X)
	if got != "a = ((a - 1) - 2)" {
		t.Fatalf("associativity = %s", got)
	}
}

func TestParseAssignRightAssoc(t *testing.T) {
	prog := MustParse(`void main() { poly int a, b; a = b = 3; }`)
	x := prog.Funcs[0].Body.Stmts[1].(*ExprStmt).X
	outer, ok := x.(*Assign)
	if !ok {
		t.Fatalf("not an assignment: %T", x)
	}
	if _, ok := outer.RHS.(*Assign); !ok {
		t.Fatalf("a = b = 3 not right-associative: rhs is %T", outer.RHS)
	}
}

func TestParseRemoteSubscript(t *testing.T) {
	prog := MustParse(`void main() { poly int x, y, i, j, z; x[[i]] = y[[j]] + z; }`)
	x := prog.Funcs[0].Body.Stmts[1].(*ExprStmt).X.(*Assign)
	if _, ok := x.LHS.(*RemoteRef); !ok {
		t.Fatalf("lhs is %T, want *RemoteRef", x.LHS)
	}
	bin := x.RHS.(*Binary)
	if _, ok := bin.L.(*RemoteRef); !ok {
		t.Fatalf("rhs.L is %T, want *RemoteRef", bin.L)
	}
}

func TestParseNestedIndexNotRemote(t *testing.T) {
	// a[b[0]] ends in "]]" which must NOT lex/parse as a remote close.
	prog := MustParse(`void main() { poly int a[4], b[4]; a[b[0]] = 1; }`)
	x := prog.Funcs[0].Body.Stmts[1].(*ExprStmt).X.(*Assign)
	outer, ok := x.LHS.(*IndexRef)
	if !ok {
		t.Fatalf("lhs is %T, want *IndexRef", x.LHS)
	}
	if _, ok := outer.Idx.(*IndexRef); !ok {
		t.Fatalf("index is %T, want *IndexRef", outer.Idx)
	}
}

func TestParseAllStatementForms(t *testing.T) {
	src := `
mono int total;
poly float w = 1.5;
void worker() { halt; }
int f(int a, float b) { return a; }
void main()
{
    poly int i, x;
    for (i = 0; i < 10; i = i + 1) { x = x + i; }
    while (x) { x = x - 1; if (x == 3) break; else continue; }
    do { x = f(x, w); } while (x > 0);
    wait;
    spawn worker();
    ;
    return;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 3 || len(prog.Globals) != 2 {
		t.Fatalf("funcs=%d globals=%d", len(prog.Funcs), len(prog.Globals))
	}
	if prog.Globals[0].Name != "total" || !prog.Globals[0].Mono {
		t.Fatalf("global 0 = %+v", prog.Globals[0])
	}
	if prog.Globals[1].Ty != ir.Float || prog.Globals[1].Init == nil {
		t.Fatalf("global 1 = %+v", prog.Globals[1])
	}
	f := prog.Func("f")
	if f == nil || len(f.Params) != 2 || f.Params[1].Ty != ir.Float {
		t.Fatalf("func f = %+v", f)
	}
	if prog.Func("missing") != nil {
		t.Fatalf("Func(missing) should be nil")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantMsg string
	}{
		{`void main() { 3 = x; }`, "not assignable"},
		{`void main() { if x) {} }`, "expected ("},
		{`void main() { poly int a[0]; }`, "invalid array length"},
		{`void main() { poly int a[2] = 3; }`, "cannot have an initializer"},
		{`void main() { return }`, "expected ;"},
		{`poly void v;`, "cannot have type void"},
		{`void f(void x) {}`, "parameters cannot have type void"},
		{`int`, "expected identifier, found EOF"},
		{`@`, "unexpected character"},
		{`void main() {`, "expected }"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantMsg)
			continue
		}
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.wantMsg)
		}
	}
}

func TestParseFormatReparse(t *testing.T) {
	// Format must emit source that reparses to an identical rendering.
	srcs := []string{
		listing1,
		`mono int m = 4;
poly float y;
void helper() { y = y * 2.0; halt; }
int add(int a, int b) { return a + b; }
void main()
{
    poly int i;
    for (i = 0; i < m; i = i + 1) { y = y + 0.25; }
    if (i == 4 && m > 1 || !i) { wait; } else { spawn helper(); }
    do { i = add(i, -1); } while (i > 0);
    while (i < 3) { i = i + 1; continue; }
    y = y / (2.0 + i);
    y[[i % 4]] = y;
    return;
}
`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		f1 := p1.Format()
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("reparse failed: %v\nsource:\n%s", err, f1)
		}
		if f2 := p2.Format(); f1 != f2 {
			t.Fatalf("format not a fixed point:\n--- first\n%s\n--- second\n%s", f1, f2)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of invalid source did not panic")
		}
	}()
	MustParse("not a program @@")
}

func TestParseTernary(t *testing.T) {
	prog := MustParse(`void main() { poly int a, b; a = b > 0 ? b : -b; }`)
	x := prog.Funcs[0].Body.Stmts[1].(*ExprStmt).X.(*Assign)
	c, ok := x.RHS.(*Cond)
	if !ok {
		t.Fatalf("rhs is %T, want *Cond", x.RHS)
	}
	if FormatExpr(c) != "((b > 0) ? b : (-b))" {
		t.Fatalf("ternary tree = %s", FormatExpr(c))
	}
	// Right associativity: a ? b : c ? d : e == a ? b : (c ? d : e).
	prog2 := MustParse(`void main() { poly int a; a = a ? 1 : a ? 2 : 3; }`)
	outer := prog2.Funcs[0].Body.Stmts[1].(*ExprStmt).X.(*Assign).RHS.(*Cond)
	if _, ok := outer.F.(*Cond); !ok {
		t.Fatalf("ternary not right-associative: F is %T", outer.F)
	}
}

func TestParseCompoundAssign(t *testing.T) {
	prog := MustParse(`void main() { poly int x; x += 2; x -= 1; x *= 3; x /= 2; x %= 5; }`)
	for i, wantOp := range []Kind{Plus, Minus, Star, Slash, Percent} {
		asg, ok := prog.Funcs[0].Body.Stmts[1+i].(*ExprStmt).X.(*Assign)
		if !ok {
			t.Fatalf("stmt %d not an assignment", i)
		}
		bin, ok := asg.RHS.(*Binary)
		if !ok || bin.Op != wantOp {
			t.Fatalf("stmt %d: rhs = %v, want binary %v", i, asg.RHS, wantOp)
		}
	}
}

func TestParseIncDec(t *testing.T) {
	prog := MustParse(`void main() { poly int x; x++; x--; }`)
	inc := prog.Funcs[0].Body.Stmts[1].(*ExprStmt).X.(*Assign).RHS.(*Binary)
	dec := prog.Funcs[0].Body.Stmts[2].(*ExprStmt).X.(*Assign).RHS.(*Binary)
	if inc.Op != Plus || dec.Op != Minus {
		t.Fatalf("inc/dec ops = %v, %v", inc.Op, dec.Op)
	}
}

func TestCompoundAssignRequiresScalar(t *testing.T) {
	for _, src := range []string{
		`poly int a[3]; void main() { a[0] += 1; }`,
		`poly int v; void main() { v[[0]] += 1; }`,
		`poly int a[3]; void main() { a[0]++; }`,
	} {
		if _, err := Parse(src); err == nil ||
			!strings.Contains(err.Error(), "scalar variable") {
			t.Errorf("Parse(%q) err = %v, want scalar restriction", src, err)
		}
	}
}
