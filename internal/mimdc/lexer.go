package mimdc

import (
	"fmt"
	"sort"
	"strings"
)

// Lexer scans MIMDC source into tokens. It supports // line comments and
// /* block */ comments, decimal integer and float literals.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs *ErrorList
}

// ErrorList accumulates front-end diagnostics. Err() reports them in
// source order regardless of the order the phases discovered them, so
// multi-error output is stable under parser and analyzer refactors.
type ErrorList struct {
	Errs []Error
}

// Error is one positioned front-end diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

func (e Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Addf records a formatted diagnostic at pos.
func (el *ErrorList) Addf(pos Pos, format string, args ...any) {
	el.Errs = append(el.Errs, Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Err returns the accumulated diagnostics as a single error, or nil.
// Diagnostics are sorted by source position (stable, so diagnostics at
// the same position keep discovery order) and exact duplicates —
// same position, same message — are dropped.
func (el *ErrorList) Err() error {
	if len(el.Errs) == 0 {
		return nil
	}
	errs := append([]Error(nil), el.Errs...)
	sort.SliceStable(errs, func(i, j int) bool { return errs[i].Pos.Before(errs[j].Pos) })
	seen := make(map[Error]bool, len(errs))
	msgs := make([]string, 0, len(errs))
	for _, e := range errs {
		if seen[e] {
			continue
		}
		seen[e] = true
		msgs = append(msgs, e.Error())
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n"))
}

// NewLexer returns a lexer over src reporting errors into errs.
func NewLexer(src string, errs *ErrorList) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, errs: errs}
}

func (lx *Lexer) peek() byte {
	if lx.off < len(lx.src) {
		return lx.src[lx.off]
	}
	return 0
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 < len(lx.src) {
		return lx.src[lx.off+1]
	}
	return 0
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errs.Addf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token, or an EOF token at end of input.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}
	}
	c := lx.advance()
	switch {
	case isAlpha(c):
		start := lx.off - 1
		for lx.off < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}
		}
		return Token{Kind: Ident, Text: text, Pos: pos}
	case isDigit(c) || (c == '.' && isDigit(lx.peek())):
		start := lx.off - 1
		isFloat := c == '.'
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if !isFloat && lx.peek() == '.' {
			isFloat = true
			lx.advance()
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			save := lx.off
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			if isDigit(lx.peek()) {
				isFloat = true
				for lx.off < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			} else {
				// Not an exponent after all; un-consume (no newline can
				// appear inside a number, so column math is safe).
				lx.col -= lx.off - save
				lx.off = save
			}
		}
		kind := IntLiteral
		if isFloat {
			kind = FloatLiteral
		}
		return Token{Kind: kind, Text: lx.src[start:lx.off], Pos: pos}
	}

	two := func(next byte, with, without Kind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: with, Pos: pos}
		}
		return Token{Kind: without, Pos: pos}
	}

	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}
	case ')':
		return Token{Kind: RParen, Pos: pos}
	case '{':
		return Token{Kind: LBrace, Pos: pos}
	case '}':
		return Token{Kind: RBrace, Pos: pos}
	case '[':
		return Token{Kind: LBracket, Pos: pos}
	case ']':
		return Token{Kind: RBracket, Pos: pos}
	case ';':
		return Token{Kind: Semi, Pos: pos}
	case ',':
		return Token{Kind: Comma, Pos: pos}
	case '=':
		return two('=', EqEq, AssignTok)
	case '|':
		return two('|', OrOr, Or)
	case '&':
		return two('&', AndAnd, And)
	case '^':
		return Token{Kind: Xor, Pos: pos}
	case '!':
		return two('=', NotEq, Not)
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return Token{Kind: Shl, Pos: pos}
		}
		return two('=', LtEq, Lt)
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: Shr, Pos: pos}
		}
		return two('=', GtEq, Gt)
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: PlusPlus, Pos: pos}
		}
		return two('=', PlusAssign, Plus)
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return Token{Kind: MinusMinus, Pos: pos}
		}
		return two('=', MinusAssign, Minus)
	case '*':
		return two('=', StarAssign, Star)
	case '/':
		return two('=', SlashAssign, Slash)
	case '%':
		return two('=', PercentAssign, Percent)
	case '~':
		return Token{Kind: Tilde, Pos: pos}
	case '?':
		return Token{Kind: Question, Pos: pos}
	case ':':
		return Token{Kind: Colon, Pos: pos}
	}
	lx.errs.Addf(pos, "unexpected character %q", c)
	return lx.Next()
}

// Tokenize scans all of src and returns the token stream ending in EOF.
func Tokenize(src string, errs *ErrorList) []Token {
	lx := NewLexer(src, errs)
	var out []Token
	for {
		t := lx.Next()
		out = append(out, t)
		if t.Kind == EOF {
			return out
		}
	}
}
