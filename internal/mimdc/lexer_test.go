package mimdc

import (
	"strings"
	"testing"
)

func lex(t *testing.T, src string) []Token {
	t.Helper()
	var errs ErrorList
	toks := Tokenize(src, &errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("lex error: %v", err)
	}
	return toks
}

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexKeywordsAndIdents(t *testing.T) {
	toks := lex(t, "mono poly int float void if else while do for return wait spawn halt break continue iproc nproc foo _bar x9")
	want := []Kind{KwMono, KwPoly, KwInt, KwFloat, KwVoid, KwIf, KwElse, KwWhile,
		KwDo, KwFor, KwReturn, KwWait, KwSpawn, KwHalt, KwBreak, KwContinue,
		KwIProc, KwNProc, Ident, Ident, Ident, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks := lex(t, "|| | && & == = != ! <= << < >= >> > + - * / % ^ ~ ; , ( ) { } [ ]")
	want := []Kind{OrOr, Or, AndAnd, And, EqEq, AssignTok, NotEq, Not,
		LtEq, Shl, Lt, GtEq, Shr, Gt, Plus, Minus, Star, Slash, Percent,
		Xor, Tilde, Semi, Comma, LParen, RParen, LBrace, RBrace,
		LBracket, RBracket, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
		text string
	}{
		{"0", IntLiteral, "0"},
		{"12345", IntLiteral, "12345"},
		{"1.5", FloatLiteral, "1.5"},
		{".5", FloatLiteral, ".5"},
		{"2.", FloatLiteral, "2."},
		{"1e9", FloatLiteral, "1e9"},
		{"1.5e-3", FloatLiteral, "1.5e-3"},
		{"2E+4", FloatLiteral, "2E+4"},
	}
	for _, c := range cases {
		toks := lex(t, c.src)
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("lex(%q) = %v %q, want %v %q", c.src, toks[0].Kind, toks[0].Text, c.kind, c.text)
		}
	}
}

func TestLexNonExponentE(t *testing.T) {
	// "3e" is int 3 followed by identifier e — the lexer must back off.
	toks := lex(t, "3e + 1")
	want := []Kind{IntLiteral, Ident, Plus, IntLiteral, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lex(3e + 1) = %v", toks)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lex(t, "a // line comment\nb /* block\n comment */ c")
	want := []Kind{Ident, Ident, Ident, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("lex with comments = %v", toks)
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("token c at line %d, want 3", toks[2].Pos.Line)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	var errs ErrorList
	Tokenize("a /* never closed", &errs)
	if errs.Err() == nil {
		t.Fatalf("unterminated comment not diagnosed")
	}
}

func TestLexBadChar(t *testing.T) {
	var errs ErrorList
	toks := Tokenize("a @ b", &errs)
	if errs.Err() == nil || !strings.Contains(errs.Err().Error(), "unexpected character") {
		t.Fatalf("bad char not diagnosed: %v", errs.Err())
	}
	// Lexing continues past the error.
	if len(toks) != 3 || toks[1].Text != "b" {
		t.Fatalf("recovery failed: %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks := lex(t, "ab\n  cd")
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("ab at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("cd at %v, want 2:3", toks[1].Pos)
	}
	if toks[1].Pos.String() != "2:3" {
		t.Errorf("Pos.String = %q", toks[1].Pos.String())
	}
}

func TestTokenString(t *testing.T) {
	if got := (Token{Kind: Ident, Text: "x"}).String(); got != `identifier "x"` {
		t.Errorf("Token.String = %q", got)
	}
	if got := (Token{Kind: Plus}).String(); got != "+" {
		t.Errorf("Token.String = %q", got)
	}
}
