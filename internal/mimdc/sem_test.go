package mimdc

import (
	"strings"
	"testing"

	"msc/internal/ir"
)

func analyze(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Analyze(prog); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return prog
}

func TestAnalyzeSlotLayout(t *testing.T) {
	prog := analyze(t, `
mono int m1;
poly int p1;
mono float m2[3];
poly float p2[2];
void main() { poly int local; local = p1; }
`)
	// Mono region first: m1 at 0, m2 at 1..3 → MonoSlots = 4.
	if prog.MonoSlots != 4 {
		t.Fatalf("MonoSlots = %d, want 4", prog.MonoSlots)
	}
	// Poly region: p1, p2[2], local → 4 slots, offset by MonoSlots.
	if prog.PolySlots != 4 {
		t.Fatalf("PolySlots = %d, want 4", prog.PolySlots)
	}
	g := prog.Globals
	if g[0].Slot != 0 || g[2].Slot != 1 {
		t.Errorf("mono slots = %d, %d; want 0, 1", g[0].Slot, g[2].Slot)
	}
	if g[1].Slot != 4 || g[3].Slot != 5 {
		t.Errorf("poly slots = %d, %d; want 4, 5", g[1].Slot, g[3].Slot)
	}
	local := prog.Func("main").Locals[0]
	if local.Slot != 7 {
		t.Errorf("local slot = %d, want 7", local.Slot)
	}
}

func TestAnalyzeTypeAnnotation(t *testing.T) {
	prog := analyze(t, `
poly float f;
poly int i;
void main() { f = i + 1; i = f > 0.5; }
`)
	asg := prog.Func("main").Body.Stmts[0].(*ExprStmt).X.(*Assign)
	if asg.Type() != ir.Float {
		t.Fatalf("f = i+1 has type %v, want float", asg.Type())
	}
	// RHS must be wrapped in a Conv to float.
	if _, ok := asg.RHS.(*Conv); !ok {
		t.Fatalf("rhs is %T, want *Conv", asg.RHS)
	}
	asg2 := prog.Func("main").Body.Stmts[1].(*ExprStmt).X.(*Assign)
	// f > 0.5 is an int (0/1); no conversion needed on assignment to i.
	if asg2.RHS.Type() != ir.Int {
		t.Fatalf("f > 0.5 has type %v, want int", asg2.RHS.Type())
	}
	cmp := asg2.RHS.(*Binary)
	if cmp.L.Type() != ir.Float || cmp.R.Type() != ir.Float {
		t.Fatalf("comparison operands not unified to float: %v, %v", cmp.L.Type(), cmp.R.Type())
	}
}

func TestAnalyzeCallConversion(t *testing.T) {
	prog := analyze(t, `
float half(float x) { return x / 2.0; }
void main() { poly float r; r = half(3); }
`)
	call := prog.Func("main").Body.Stmts[1].(*ExprStmt).X.(*Assign).RHS.(*Call)
	if call.Decl == nil || call.Decl.Name != "half" {
		t.Fatalf("call not resolved: %+v", call)
	}
	if _, ok := call.Args[0].(*Conv); !ok {
		t.Fatalf("int arg to float param not converted: %T", call.Args[0])
	}
}

func TestAnalyzeShadowing(t *testing.T) {
	prog := analyze(t, `
poly int x;
void main()
{
    poly int y;
    y = x;
    {
        poly float x;
        x = 1.5;
    }
    y = x;
}
`)
	main := prog.Func("main")
	outer := main.Body.Stmts[1].(*ExprStmt).X.(*Assign).RHS.(*VarRef)
	if outer.Decl.Ty != ir.Int || outer.Decl.Mono {
		t.Fatalf("outer x resolved wrong: %+v", outer.Decl)
	}
	inner := main.Body.Stmts[2].(*BlockStmt).Stmts[1].(*ExprStmt).X.(*Assign).LHS.(*VarRef)
	if inner.Decl.Ty != ir.Float {
		t.Fatalf("inner x resolved to outer decl")
	}
	after := main.Body.Stmts[3].(*ExprStmt).X.(*Assign).RHS.(*VarRef)
	if after.Decl != outer.Decl {
		t.Fatalf("x after block resolved to inner decl")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantMsg string
	}{
		{`void main() { x = 1; }`, "undefined variable x"},
		{`void main() { poly int x, x; }`, "redeclared"},
		{`poly int g; poly float g;`, "redeclared"},
		{`void f() {} void f() {}`, "function f redeclared"},
		{`void main() { f(); }`, "undefined function f"},
		{`int f(int a) { return a; } void main() { f(); }`, "0 arguments, want 1"},
		{`void main() { break; }`, "break outside loop"},
		{`void main() { continue; }`, "continue outside loop"},
		{`int f() { return; }`, "return without value"},
		{`void f() { return 3; }`, "return with value in void function"},
		{`mono int g; void main() { g[[0]] = 1; }`, "parallel subscript of mono variable"},
		{`poly int a[2]; void main() { a[[0]] = 1; }`, "parallel subscript of array"},
		{`poly int a[2]; void main() { a = 1; }`, "array a used without subscript"},
		{`poly int x; void main() { x[0] = 1; }`, "x is not an array"},
		{`poly float f; void main() { f = f % 2.0; }`, "operands of % must be int"},
		{`poly float f; void main() { f = ~f; }`, "operand of ~ must be int"},
		{`void v() {} void main() { poly int x; x = v(); }`, "void value used"},
		{`poly int x; mono int g = x;`, "not constant"},
		{`void main() { spawn nosuch(); }`, "spawn of undefined function"},
		{`int f(int a) { return a; } void main() { spawn f(); }`, "must be void with no parameters"},
		{`void v() {} void main() { if (v()) {} }`, "condition has no value"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q) failed: %v", c.src, err)
			continue
		}
		err = Analyze(prog)
		if err == nil {
			t.Errorf("Analyze(%q) succeeded, want error containing %q", c.src, c.wantMsg)
			continue
		}
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("Analyze(%q) error = %v, want containing %q", c.src, err, c.wantMsg)
		}
	}
}

func TestAnalyzeSpawnResolved(t *testing.T) {
	prog := analyze(t, `
void worker() { halt; }
void main() { spawn worker(); }
`)
	sp := prog.Func("main").Body.Stmts[0].(*SpawnStmt)
	if sp.Decl == nil || sp.Decl.Name != "worker" {
		t.Fatalf("spawn not resolved: %+v", sp)
	}
}

func TestAnalyzeGlobalConstInit(t *testing.T) {
	prog := analyze(t, `
mono int a = -3;
mono float b = 2.5;
poly float c = 1;
void main() {}
`)
	if prog.Globals[0].Init == nil || prog.Globals[1].Init == nil {
		t.Fatalf("inits dropped")
	}
	// int literal 1 assigned to float c must be wrapped in Conv.
	if _, ok := prog.Globals[2].Init.(*Conv); !ok {
		t.Fatalf("poly float c = 1 not converted: %T", prog.Globals[2].Init)
	}
}

func TestMustAnalyzePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAnalyze of bad program did not panic")
		}
	}()
	MustAnalyze(`void main() { undefined = 1; }`)
}
