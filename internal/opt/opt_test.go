package opt_test

import (
	"testing"

	"msc/internal/cfg"
	"msc/internal/ir"
	"msc/internal/mimdsim"
	"msc/internal/opt"
)

// build lowers and simplifies source the way the pipeline hands
// graphs to the optimizer.
func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	g := cfg.MustBuild(src)
	cfg.Simplify(g)
	return g
}

// run executes g on the MIMD reference machine with n PEs.
func run(t *testing.T, g *cfg.Graph, n int) *mimdsim.Result {
	t.Helper()
	res, err := mimdsim.Run(g, mimdsim.Config{N: n})
	if err != nil {
		t.Fatalf("mimdsim: %v", err)
	}
	return res
}

// optimize runs the optimizer with per-pass verification on.
func optimize(t *testing.T, g *cfg.Graph, level int) opt.Stats {
	t.Helper()
	st, err := opt.Run(g, opt.Options{Level: level, Verify: true})
	if err != nil {
		t.Fatalf("opt.Run: %v", err)
	}
	return st
}

// sameObservables asserts the driver-visible memory (globals and
// return slots) agrees between two runs of the same source.
func sameObservables(t *testing.T, g *cfg.Graph, a, b *mimdsim.Result) {
	t.Helper()
	for name, slot := range g.VarSlot {
		for pe := range a.Mem {
			if a.Mem[pe][slot] != b.Mem[pe][slot] {
				t.Errorf("PE %d: %s = %d optimized vs %d baseline",
					pe, name, b.Mem[pe][slot], a.Mem[pe][slot])
			}
		}
	}
}

func TestConstMaterializeAndBranchFold(t *testing.T) {
	src := `
poly int x;
void main()
{
    poly int a;
    a = 3;
    if (a < 10) {
        x = a + 1;
    } else {
        x = 99;
    }
    return;
}
`
	g := build(t, src)
	before := g.NumBlocks()
	baseline := run(t, build(t, src), 2)

	st := optimize(t, g, 2)
	if st.ConstFolds == 0 {
		t.Error("expected constant materializations")
	}
	if st.BranchesPruned == 0 {
		t.Error("expected the decided branch to fold")
	}
	if g.NumBlocks() >= before {
		t.Errorf("blocks %d -> %d, want fewer (dead arm pruned)", before, g.NumBlocks())
	}
	// No Branch terminator survives: the one branch was decided.
	for _, b := range g.Blocks {
		if b.Term == cfg.Branch {
			t.Errorf("state %d still branches", b.ID)
		}
	}
	sameObservables(t, g, baseline, run(t, g, 2))
}

func TestBranchOnDataNotFolded(t *testing.T) {
	g := build(t, `
poly int x;
void main()
{
    if (iproc < 2) {
        x = 1;
    } else {
        x = 2;
    }
    return;
}
`)
	optimize(t, g, 2)
	branches := 0
	for _, b := range g.Blocks {
		if b.Term == cfg.Branch {
			branches++
		}
	}
	if branches == 0 {
		t.Fatal("data-dependent branch must survive")
	}
}

// TestDeadStoreAfterStoreLoadForward is the regression test for the
// cfg.Fold interaction: the store-load forward rewrites
// `StLocal t; LdLocal t` into `Dup; StLocal t`, which leaves a dead
// store behind when t is never read again. Liveness-driven DSE must
// remove the store AND the Dup feeding it.
func TestDeadStoreAfterStoreLoadForward(t *testing.T) {
	src := `
poly int y;
void main()
{
    poly int t;
    t = iproc + 1;
    y = t;
    return;
}
`
	g := build(t, src)
	// Precondition: Simplify's store-load forward left a Dup;StLocal t
	// pair (the shape this regression is about).
	tSlot := findStoreSlot(t, g, "t")
	if !hasDupStorePair(g, tSlot) {
		t.Fatalf("precondition: expected Dup;StLocal t after Simplify, code: %v", allCode(g))
	}

	baseline := run(t, build(t, src), 3)
	st := optimize(t, g, 1)
	if st.DeadStores == 0 {
		t.Error("expected the forwarded store to die")
	}
	for _, b := range g.Blocks {
		for _, in := range b.Code {
			if in.Op == ir.StLocal && int(in.Imm) == tSlot {
				t.Errorf("dead store to t survived in state %d: %v", b.ID, b.Code)
			}
			if in.Op == ir.Dup {
				t.Errorf("orphaned Dup survived in state %d: %v", b.ID, b.Code)
			}
		}
	}
	sameObservables(t, g, baseline, run(t, g, 3))
}

func TestDeadStoreChainErased(t *testing.T) {
	// The whole computation feeding a dead store evaporates, not just
	// the store: iproc+1 is pure.
	g := build(t, `
void main()
{
    poly int t;
    t = iproc + 1;
    return;
}
`)
	st := optimize(t, g, 1)
	if st.DeadStores != 1 {
		t.Fatalf("DeadStores = %d, want 1", st.DeadStores)
	}
	for _, b := range g.Blocks {
		if len(b.Code) != 0 {
			t.Errorf("state %d still carries code: %v", b.ID, b.Code)
		}
	}
}

func TestGlobalStoresNotDead(t *testing.T) {
	// Globals are driver-observable (ExitLive): the last store must
	// survive even though the program never reads it.
	g := build(t, `
poly int x;
void main()
{
    x = 42;
    return;
}
`)
	optimize(t, g, 2)
	found := false
	for _, b := range g.Blocks {
		for _, in := range b.Code {
			if in.Op == ir.StLocal && in.Sym == "x" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("store to observable global x was eliminated")
	}
}

func TestArrayStoresRespected(t *testing.T) {
	// t aliases nothing, but arr's interior is read via LdIndex with a
	// dynamic index: stores into the array region must survive.
	src := `
poly int arr[4];
poly int out;
void main()
{
    poly int i;
    for (i = 0; i < 4; i = i + 1) {
        arr[i] = i * 2;
    }
    out = arr[3];
    return;
}
`
	g := build(t, src)
	baseline := run(t, build(t, src), 2)
	optimize(t, g, 2)
	got := run(t, g, 2)
	sameObservables(t, g, baseline, got)
	for pe := range got.Mem {
		if v := got.Mem[pe][g.VarSlot["out"]]; v != 6 {
			t.Fatalf("PE %d: out = %d, want 6", pe, v)
		}
	}
}

func TestCopyPropagationEnablesDSE(t *testing.T) {
	// b = a with later uses of b in other blocks: copy propagation
	// redirects the loads of b to a, which makes the store to b dead.
	// (The intervening use of a keeps cfg.Fold's store-load forward
	// from consuming the copy's load.)
	src := `
poly int y, z;
void main()
{
    poly int a, b;
    a = iproc + 1;
    y = a * 2;
    b = a;
    if (iproc < 2) {
        z = b;
    } else {
        z = b + 1;
    }
    return;
}
`
	g := build(t, src)
	baseline := run(t, build(t, src), 3)
	st := optimize(t, g, 2)
	if st.CopiesPropagated == 0 {
		t.Error("expected the load of b to redirect to a")
	}
	if st.DeadStores == 0 {
		t.Error("expected the store to b to die after redirect")
	}
	sameObservables(t, g, baseline, run(t, g, 3))
}

func TestMonoStoresNeverEliminated(t *testing.T) {
	// A mono store is a broadcast: divergent PEs may observe it from CFG
	// points not connected to the store, so DSE must leave it alone even
	// when no path reads it.
	g := build(t, `
mono int m;
poly int x;
void main()
{
    if (iproc == 0) {
        m = 7;
    }
    x = iproc;
    return;
}
`)
	optimize(t, g, 2)
	found := false
	for _, b := range g.Blocks {
		for _, in := range b.Code {
			if in.Op == ir.StMono && in.Sym == "m" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("mono store was eliminated")
	}
}

func TestRemoteSlotsNeverTouched(t *testing.T) {
	// Slots involved in router traffic are excluded from every rewrite.
	src := `
poly int v, got;
void main()
{
    v = iproc * 10;
    wait;
    got = v[[(iproc + 1) % nproc]];
    wait;
    return;
}
`
	g := build(t, src)
	baseline := run(t, build(t, src), 4)
	optimize(t, g, 2)
	sameObservables(t, g, baseline, run(t, g, 4))
}

func TestLevelZeroIsIdentity(t *testing.T) {
	g := build(t, `
poly int x;
void main()
{
    x = 1 + 2;
    return;
}
`)
	beforeCode := allCode(g)
	st := optimize(t, g, 0)
	if st.Changed() || st.Rounds != 0 {
		t.Fatalf("level 0 did work: %+v", st)
	}
	if got := allCode(g); got != beforeCode {
		t.Fatalf("level 0 changed code:\n%s\nvs\n%s", got, beforeCode)
	}
}

func TestLoopWithConstantBoundSurvives(t *testing.T) {
	// Loop-carried variables are not constants; the loop must survive
	// and compute the same result.
	src := `
poly int sum;
void main()
{
    poly int i;
    sum = 0;
    for (i = 0; i < 5; i = i + 1) {
        sum = sum + i;
    }
    return;
}
`
	g := build(t, src)
	baseline := run(t, build(t, src), 2)
	optimize(t, g, 2)
	got := run(t, g, 2)
	sameObservables(t, g, baseline, got)
	for pe := range got.Mem {
		if v := got.Mem[pe][g.VarSlot["sum"]]; v != 10 {
			t.Fatalf("PE %d: sum = %d, want 10", pe, v)
		}
	}
}

func TestVerifyCatchesCorruptingPass(t *testing.T) {
	// A hand-corrupted graph must be rejected by the per-pass verifier,
	// not silently optimized.
	g := build(t, `
poly int x;
void main()
{
    x = 1;
    return;
}
`)
	g.Blocks[0].Code = append(g.Blocks[0].Code, ir.Instr{Op: ir.PushC, Imm: 1, Ty: ir.Int})
	if _, err := opt.Run(g, opt.Options{Level: 1, Verify: true}); err == nil {
		t.Fatal("optimizer accepted a stack-imbalanced graph under Verify")
	}
}

// --- helpers ---

func findStoreSlot(t *testing.T, g *cfg.Graph, sym string) int {
	t.Helper()
	for _, b := range g.Blocks {
		for _, in := range b.Code {
			if in.Op == ir.StLocal && in.Sym == sym {
				return int(in.Imm)
			}
		}
	}
	t.Fatalf("no StLocal %s in graph", sym)
	return -1
}

func hasDupStorePair(g *cfg.Graph, slot int) bool {
	for _, b := range g.Blocks {
		for i := 1; i < len(b.Code); i++ {
			if b.Code[i].Op == ir.StLocal && int(b.Code[i].Imm) == slot &&
				b.Code[i-1].Op == ir.Dup {
				return true
			}
		}
	}
	return false
}

func allCode(g *cfg.Graph) string {
	s := ""
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		for _, in := range b.Code {
			s += in.String() + ";"
		}
		s += "|"
	}
	return s
}
