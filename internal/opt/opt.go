// Package opt is the dataflow-driven optimizer over the MIMD state
// graph: it turns the facts internal/analysis computes for diagnostics
// into transformations. Every pass preserves the observable semantics
// of all three execution engines bit for bit — the differential gate
// in the root package proves it over the whole example corpus — while
// shrinking straight-line code and pruning statically-dead control
// flow, which shrinks the meta-state automaton the converter builds.
//
// The passes, in the order one round runs them:
//
//   - constant materialization: loads of slots the must-constant
//     fixpoint (analysis.ConstFacts) proves constant become PushC,
//     feeding the cfg.Fold peepholes;
//   - branch folding: Branch terminators whose condition the constant
//     replay decides become Goto to the taken arm (the dead arm is
//     pruned by cfg.Simplify);
//   - copy propagation: loads of a slot provably equal to another
//     private slot are redirected to the copy source, making the
//     intermediate stores eligible for dead-store elimination;
//   - dead-store elimination: stores no path can observe (per an
//     array- and router-aware liveness) become Pop(1);
//   - cleanup: pure-producer/Pop peepholes erase the computation
//     chains the other passes orphaned;
//   - cfg.Simplify: straightening, folding, and unreachable pruning
//     feed the next round's analyses.
//
// Meta-state caveat: shrinking and merging blocks usually shrinks the
// converted automaton, but conversion is alignment-sensitive — deleting
// a reachable block shortens one path's generation count, and two
// divergent arms that used to reconverge in the same generation may
// stop doing so. On rare programs that costs a meta state or two even
// though every block got smaller. The differential gate therefore
// requires fewer-or-equal meta states on the committed corpus and
// bounds the drift on generated programs.
//
// Level 1 runs one round; level 2 iterates rounds (copy propagation
// included) to a fixed point. Under Options.Verify — and always in
// -race builds — cfg.VerifyAll runs after every pass, so a pass that
// corrupts the graph fails immediately instead of miscompiling
// downstream.
package opt

import (
	"fmt"

	"msc/internal/cfg"
)

// Options selects the optimization level and checking strictness.
type Options struct {
	// Level is the optimization level: 0 does nothing, 1 runs one round
	// of every pass, 2 iterates rounds to a fixed point.
	Level int
	// Verify runs cfg.VerifyAll after every pass (always on in -race
	// builds regardless of this flag).
	Verify bool
}

// Stats reports what a Run did, per rewrite kind.
type Stats struct {
	// ConstFolds counts loads materialized into PushC constants.
	ConstFolds int
	// BranchesPruned counts Branch terminators folded to Goto (their
	// dead arm is pruned by the Simplify feedback).
	BranchesPruned int
	// DeadStores counts stores eliminated.
	DeadStores int
	// CopiesPropagated counts loads redirected to a copy source.
	CopiesPropagated int
	// Rounds counts fixed-point rounds run (including the final
	// no-change round at level 2).
	Rounds int
}

// Changed reports whether any pass rewrote anything.
func (s Stats) Changed() bool {
	return s.ConstFolds+s.BranchesPruned+s.DeadStores+s.CopiesPropagated > 0
}

// maxRounds caps the level-2 fixed-point iteration. Each productive
// round strictly removes instructions or blocks, so the cap is a
// backstop against a pass oscillation bug, not a tuning knob.
const maxRounds = 16

// Run optimizes g in place and reports the rewrite counts. The graph
// must already satisfy cfg.Verify (the pipeline runs it after
// Simplify); Run keeps cfg.VerifyAll holding between passes and
// returns an error naming the offending pass if a transform ever
// breaks it.
func Run(g *cfg.Graph, o Options) (Stats, error) {
	var st Stats
	if o.Level <= 0 {
		return st, nil
	}
	check := func(pass string) error {
		if !o.Verify && !raceEnabled {
			return nil
		}
		if err := cfg.VerifyAll(g); err != nil {
			return fmt.Errorf("opt: graph corrupt after %s: %w", pass, err)
		}
		return nil
	}

	rounds := 1
	if o.Level >= 2 {
		rounds = maxRounds
	}
	for r := 0; r < rounds; r++ {
		st.Rounds++
		before := st

		n := materializeConsts(g)
		st.ConstFolds += n
		if err := check("const-materialize"); err != nil {
			return st, err
		}

		n = foldBranches(g)
		st.BranchesPruned += n
		if err := check("branch-fold"); err != nil {
			return st, err
		}

		if o.Level >= 2 {
			n = propagateCopies(g)
			st.CopiesPropagated += n
			if err := check("copy-propagate"); err != nil {
				return st, err
			}
		}

		n = elimDeadStores(g)
		st.DeadStores += n
		if err := check("dead-store-elim"); err != nil {
			return st, err
		}

		cleaned := cleanup(g)
		if err := check("cleanup"); err != nil {
			return st, err
		}

		changed := st != before || cleaned
		if changed {
			// Feed the rewrites back into the block-level simplifier: it
			// folds the constant chains materialization exposed, prunes the
			// arms branch folding disconnected, and re-straightens — giving
			// the next round's analyses a smaller, more precise graph.
			cfg.Simplify(g)
			if err := check("simplify"); err != nil {
				return st, err
			}
		}
		if !changed {
			break
		}
	}
	return st, nil
}
