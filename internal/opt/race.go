//go:build race

package opt

// raceEnabled forces cfg.VerifyAll after every pass in -race test
// builds, so the heavyweight invariant checks ride along with the
// builds CI already runs for data-race detection.
const raceEnabled = true
