//go:build !race

package opt

// raceEnabled is false in regular builds; Options.Verify opts in to
// the per-pass invariant checks explicitly.
const raceEnabled = false
