package opt

import (
	"msc/internal/analysis"
	"msc/internal/cfg"
	"msc/internal/ir"
)

// materializeConsts rewrites loads of provably-constant slots into
// PushC, using the must-constant fixpoint plus an in-block replay so
// block-local stores count too. Only integer constants exist in the
// lattice (float stores are never tracked), and excluded slots —
// router-touched, or mono slots stored outside the prologue — read as
// unknown, so a materialized constant is one every PE agrees on at
// that point on every path.
func materializeConsts(g *cfg.Graph) int {
	vars := analysis.CollectVars(g)
	consts := analysis.ConstFacts(g, vars)
	n := 0
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		env := consts.EnvAt(b.ID)
		for i, in := range b.Code {
			if (in.Op == ir.LdLocal || in.Op == ir.LdMono) && in.Ty != ir.Float {
				if v := env.Slot(int(in.Imm)); v.Known {
					b.Code[i] = ir.Instr{Op: ir.PushC, Imm: v.Val, Ty: ir.Int, Sym: in.Sym, Pos: in.Pos}
					n++
				}
			}
			// Step the original instruction: the replacement pushes the
			// identical value, so the replay state stays faithful.
			env.Step(in)
		}
	}
	return n
}

// foldBranches rewrites Branch terminators whose condition is decided
// at compile time into Goto to the taken arm, discarding the condition
// with a Pop. Branches whose arms coincide fold unconditionally. The
// Simplify feedback in the driver then prunes the disconnected arm and
// re-straightens, which is where the meta-state reduction comes from:
// a pruned MIMD state can never occupy an aggregate again.
func foldBranches(g *cfg.Graph) int {
	vars := analysis.CollectVars(g)
	consts := analysis.ConstFacts(g, vars)
	n := 0
	for _, b := range g.Blocks {
		if b == nil || b.Term != cfg.Branch {
			continue
		}
		take := cfg.None
		if b.Next == b.FNext {
			take = b.Next
		} else {
			env := consts.EnvAt(b.ID)
			for _, in := range b.Code {
				env.Step(in)
			}
			if c := env.Top(); c.Known {
				if c.Val != 0 {
					take = b.Next
				} else {
					take = b.FNext
				}
			}
		}
		if take == cfg.None {
			continue
		}
		b.Term = cfg.Goto
		b.Next = take
		b.FNext = cfg.None
		// The condition value is still on the stack; a Goto block must be
		// stack-neutral. Cleanup erases the whole condition chain when it
		// is pure.
		b.Code = append(b.Code, ir.Instr{Op: ir.Pop, Imm: 1, Pos: b.Pos})
		n++
	}
	return n
}
