package opt

import (
	"msc/internal/analysis"
	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/ir"
)

// optLiveness solves the transform-grade liveness problem. It is
// stricter than analysis.Liveness, whose transfer may ignore indexed
// accesses because the dead-store *check* only reports named scalars:
// a transform that deletes stores must also respect
//
//   - indexed reads: LdIndex with base b reads mem[b+i] for a dynamic
//     i, so it keeps every slot in [b, Words) alive;
//   - indexed writes: StIndex's target is dynamic, so it kills
//     nothing;
//   - mono slots: a divergent PE's broadcast store/load pair need not
//     be connected by a CFG path, so mono slots are permanently live;
//   - router slots: another PE can read them at any time (boundary,
//     as in analysis.Liveness).
func optLiveness(g *cfg.Graph, vars *analysis.Vars) *analysis.Result {
	boundary := vars.ExitLive.Union(vars.Remote)
	for s := 0; s < g.MonoSlots; s++ {
		boundary.Add(s)
	}
	return analysis.Solve(g, analysis.Problem{
		Dir:      analysis.Backward,
		Meet:     analysis.Union,
		Universe: g.Words,
		Boundary: boundary,
		Transfer: func(b *cfg.Block, out *bitset.Set) *bitset.Set {
			live := out.Clone()
			for i := len(b.Code) - 1; i >= 0; i-- {
				stepLive(g, vars, b.Code[i], live)
			}
			return live
		},
	})
}

// stepLive applies one instruction's (backward) liveness effect. The
// in-block replay in elimDeadStores must use exactly this function so
// the per-instruction facts agree with the fixpoint.
func stepLive(g *cfg.Graph, vars *analysis.Vars, in ir.Instr, live *bitset.Set) {
	slot := int(in.Imm)
	switch in.Op {
	case ir.StLocal:
		if !vars.Remote.Has(slot) && slot >= g.MonoSlots {
			live.Remove(slot)
		}
	case ir.StMono:
		// Broadcast store: never a kill (a divergent PE may observe the
		// old value at a CFG point not connected to this one).
	case ir.LdLocal, ir.LdMono, ir.LdRemote, ir.StRemote:
		live.Add(slot)
	case ir.LdIndex:
		for s := slot; s < g.Words; s++ {
			live.Add(s)
		}
	case ir.StIndex:
		// Dynamic target: cannot kill anything.
	}
}

// elimDeadStores replaces stores no path can observe with Pop(1),
// preserving the stack shape; cleanup then erases the orphaned value
// chain. Only private, non-router StLocal stores are candidates — the
// mono and remote cases are unobservable to per-path liveness (see
// optLiveness). Cascades are handled in one sweep: an overwritten
// store killed by a later (also dead) store stays dead after both are
// removed, because removal never introduces a read.
func elimDeadStores(g *cfg.Graph) int {
	vars := analysis.CollectVars(g)
	live := optLiveness(g, vars)
	n := 0
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		cur := live.Out[b.ID].Clone()
		for i := len(b.Code) - 1; i >= 0; i-- {
			in := b.Code[i]
			slot := int(in.Imm)
			if in.Op == ir.StLocal && slot >= g.MonoSlots &&
				!vars.Remote.Has(slot) && !cur.Has(slot) {
				b.Code[i] = ir.Instr{Op: ir.Pop, Imm: 1, Pos: in.Pos}
				n++
			}
			// Replay the ORIGINAL instruction: the removed store's kill
			// still applies (see the cascade note above).
			stepLive(g, vars, in, cur)
		}
	}
	return n
}
