package opt

import (
	"msc/internal/cfg"
	"msc/internal/ir"
)

// cleanup erases the computation chains the other passes orphan: a
// dead store becomes Pop(1), and the pops then eat their way backward
// through the pure producers that fed the store. Patterns, applied
// left-to-right to a fixed point per block:
//
//	Pop(0)                    → (nothing)
//	Pop(a); Pop(b)            → Pop(a+b)
//	<pure producer>; Pop(n)   → Pop(n-1)   (PushC, Dup, IProc, NProc, LdLocal, LdMono)
//	<unary ALU>; Pop(n)       → Pop(n)
//	<binary ALU>; Pop(n)      → Pop(n+1)
//	A; B; <store>; Pop(n)     → B; <store>; Pop(n-1)   (A, B pure producers)
//
// The last pattern sinks a pop through a scalar store: StLocal/StMono
// consume exactly the value B pushed, so the word the pop removes is
// the one A pushed beneath it. Branch folding leaves this shape behind
// when the folded condition sat on top of a stored value.
//
// Indexed and router loads are deliberately not "pure" here: they are
// reads, but eliding them would change which memory an execution
// touches, and the optimizer's contract is bit-identical observable
// behavior including failure behavior. Every pattern preserves the
// block's net stack effect and never deepens its minimum entry depth.
func cleanup(g *cfg.Graph) bool {
	changed := false
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		for cleanBlock(b) {
			changed = true
		}
	}
	return changed
}

// pureProducer reports ops that push exactly one value with no side
// effect and no possibility of runtime failure.
func pureProducer(op ir.Op) bool {
	switch op {
	case ir.PushC, ir.Dup, ir.IProc, ir.NProc, ir.LdLocal, ir.LdMono:
		return true
	}
	return false
}

// cleanBlock performs one left-to-right sweep; reports whether it
// rewrote anything.
func cleanBlock(b *cfg.Block) bool {
	out := b.Code[:0]
	changed := false
	emitPop := func(count int64, pos ir.Pos) {
		if count > 0 {
			out = append(out, ir.Instr{Op: ir.Pop, Imm: count, Pos: pos})
		}
	}
	for _, in := range b.Code {
		n := len(out)
		switch {
		case in.Op == ir.Pop && in.Imm == 0:
			changed = true
		case in.Op == ir.Pop && n >= 1 && out[n-1].Op == ir.Pop:
			out[n-1].Imm += in.Imm
			changed = true
		case in.Op == ir.Pop && n >= 1 && pureProducer(out[n-1].Op):
			out = out[:n-1]
			emitPop(in.Imm-1, in.Pos)
			changed = true
		case in.Op == ir.Pop && n >= 1 && ir.IsUnary(out[n-1].Op):
			out = out[:n-1]
			emitPop(in.Imm, in.Pos)
			changed = true
		case in.Op == ir.Pop && n >= 1 && ir.IsBinary(out[n-1].Op):
			out = out[:n-1]
			emitPop(in.Imm+1, in.Pos)
			changed = true
		case in.Op == ir.Pop && n >= 3 &&
			(out[n-1].Op == ir.StLocal || out[n-1].Op == ir.StMono) &&
			pureProducer(out[n-2].Op) && pureProducer(out[n-3].Op) &&
			out[n-2].Op != ir.Dup: // Dup reads the value A pushed
			out[n-3], out[n-2] = out[n-2], out[n-1]
			out = out[:n-1]
			emitPop(in.Imm-1, in.Pos)
			changed = true
		default:
			out = append(out, in)
		}
	}
	b.Code = out
	return changed
}
