package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// PromName sanitizes an internal metric name into a valid Prometheus
// metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. The pipeline's dotted names
// ("convert.meta_states") become underscore form ("convert_meta_states");
// any other invalid rune also maps to '_', and a leading digit gains a
// '_' prefix. The mapping is stable, so the exposition format is
// golden-lockable.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	sb.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			sb.WriteByte('_')
			sb.WriteRune(r)
			continue
		}
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promLabelName sanitizes a label name ([a-zA-Z_][a-zA-Z0-9_]*; the
// leading "__" prefix is reserved by Prometheus, so it is folded to a
// single underscore).
func promLabelName(name string) string {
	n := PromName(name)
	n = strings.ReplaceAll(n, ":", "_")
	for strings.HasPrefix(n, "__") {
		n = n[1:]
	}
	if n == "" {
		n = "_"
	}
	return n
}

// promEscape escapes a label value or HELP text per the Prometheus text
// format: backslash, double quote (label values only), and newline.
func promEscape(v string, quoted bool) string {
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '"':
			if quoted {
				sb.WriteString(`\"`)
			} else {
				sb.WriteRune(r)
			}
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// promLabels renders a label set as {a="b",c="d"} (empty string for no
// labels). extra is appended after the registered labels (used for the
// histogram "le" bound).
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", promLabelName(l.Name), promEscape(l.Value, true))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promBound formats a histogram upper bound the way Prometheus clients
// do: +Inf for the overflow bucket, shortest float form otherwise.
func promBound(b float64) string {
	if b == inf {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%g", b), "0"), ".")
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order, one HELP
// and TYPE header per family. The output for a fixed registry state is
// byte-stable and locked by testdata/telemetry/metrics.prom.golden.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snaps := r.Snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	seenHeader := make(map[string]bool)
	for _, s := range snaps {
		name := PromName(s.Name)
		if !seenHeader[name] {
			seenHeader[name] = true
			if h := help[s.Name]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, promEscape(h, false)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, s.Kind); err != nil {
				return err
			}
		}
		switch s.Kind {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %d\n", name, promLabels(s.Labels), s.Value); err != nil {
				return err
			}
		case "histogram":
			var cum int64
			for i, c := range s.BucketCounts {
				cum += c
				bound := inf
				if i < len(s.Bounds) {
					bound = s.Bounds[i]
				}
				le := Label{Name: "le", Value: promBound(bound)}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.Labels, le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, promLabels(s.Labels), s.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.Labels), s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Handler serves the registry in Prometheus text format; mount it at
// /metrics (obs.DebugServer.MountMetrics does).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ValidPromLine loosely validates one exposition line, for the escaping
// fuzz test: comment lines must be HELP/TYPE, sample lines must carry a
// valid metric name, balanced quoting in the label block, and a value.
func ValidPromLine(line string) error {
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
			return fmt.Errorf("comment line is neither HELP nor TYPE: %q", line)
		}
		return nil
	}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i <= 0 {
		return fmt.Errorf("no metric name: %q", line)
	}
	name := rest[:i]
	if PromName(name) != name {
		return fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, escaped := false, false
		for j := 1; j < len(rest); j++ {
			c := rest[j]
			switch {
			case escaped:
				escaped = false
			case inQuote && c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = j
			case !inQuote && c == '\n':
				return fmt.Errorf("raw newline in label block: %q", line)
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label block: %q", line)
		}
		rest = rest[end+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		return fmt.Errorf("no value separator: %q", line)
	}
	val := strings.TrimSpace(rest)
	if val == "" {
		return fmt.Errorf("missing value: %q", line)
	}
	return nil
}
