package telemetry

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = os.Getenv("UPDATE_TELEMETRY_GOLDEN") != ""

// goldenPath points into the repository-root corpus (the issue's
// testdata/telemetry/), shared with the root package's end-to-end
// telemetry tests.
func goldenPath(name string) string {
	return filepath.Join("..", "..", "testdata", "telemetry", name)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (set UPDATE_TELEMETRY_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// goldenRegistry builds the fixed registry state the exposition golden
// locks: one of each metric kind, dotted names, labels needing escaping.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("convert.meta_states", "meta states in the final automaton").Set(17)
	r.Counter("compile.total", "compiles started").Add(3)
	r.Gauge("convert.workers", "conversion worker-pool size").Set(8)
	h := r.Histogram("compile.latency_ns", "compile wall time", ExpBuckets(1000, 10, 4))
	for _, v := range []int64{500, 5_000, 50_000, 5_000_000, 12_000_000} {
		h.Observe(v)
	}
	r.Counter("engine.cycles", "engine cycles run", Label{"engine", "simd"}).Add(1234)
	r.Counter("engine.cycles", "engine cycles run", Label{"engine", "mimd"}).Add(987)
	r.Counter("weird.name-with/chars", `label escaping`, Label{"path", `a\b"c` + "\nd"}).Add(1)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom.golden", buf.Bytes())
	for _, line := range strings.Split(buf.String(), "\n") {
		if err := ValidPromLine(line); err != nil {
			t.Fatalf("golden output is not valid exposition: %v", err)
		}
	}
}

func TestPromHandler(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "convert_meta_states 17") {
		t.Fatalf("handler output missing sanitized counter:\n%s", buf.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"convert.meta_states": "convert_meta_states",
		"budget.wall_clock":   "budget_wall_clock",
		"9lives":              "_9lives",
		"a b":                 "a_b",
		"":                    "_",
		"ok_name:sub":         "ok_name:sub",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// FuzzPromEscape drives arbitrary metric names, label names, and label
// values through the exposition writer and asserts every emitted line
// still parses as Prometheus text format — the name/label escaping can
// never be broken by hostile input. Seeds cover the dotted pipeline
// names and the standard escape triggers.
func FuzzPromEscape(f *testing.F) {
	f.Add("convert.meta_states", "engine", "simd")
	f.Add("budget.wall_clock", "resource", "wall clock")
	f.Add("weird.name-with/chars", "path", "a\\b\"c\nd")
	f.Add("", "", "")
	f.Add("9起", "label名", "value\nwith\nnewlines\"and\\slashes")
	f.Fuzz(func(t *testing.T, name, lname, lvalue string) {
		r := NewRegistry()
		r.Counter(name, "fuzzed metric", Label{Name: lname, Value: lvalue}).Add(1)
		h := r.Histogram(name+".hist", lvalue, []float64{1, 10})
		h.Observe(5)
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(buf.String(), "\n") {
			if err := ValidPromLine(line); err != nil {
				t.Fatalf("name=%q lname=%q lvalue=%q: %v\nfull output:\n%s", name, lname, lvalue, err, buf.String())
			}
		}
	})
}
