package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"msc/internal/ir"
)

func TestProfilerExact(t *testing.T) {
	p := NewProfiler(1)
	p.Add(0, 3, ir.Pos{Line: 10, Col: 1}, 5)
	p.Add(0, 3, ir.Pos{Line: 10, Col: 1}, 7)
	p.Add(1, NoBlock, ir.Pos{}, 4)      // dispatch: attributed to ms1
	p.Add(NoMeta, NoBlock, ir.Pos{}, 4) // anonymous overhead: unattributed
	if p.Total() != 20 || p.Sampled() != 20 {
		t.Fatalf("total = %d, sampled = %d, want 20/20", p.Total(), p.Sampled())
	}
	frames := p.Frames()
	if len(frames) != 3 {
		t.Fatalf("frames = %d, want 3", len(frames))
	}
	if frames[0].Cycles != 12 || frames[0].Frame.Block != 3 {
		t.Fatalf("hot frame = %+v", frames[0])
	}
	if got := p.AttributedFraction(); got != 16.0/20.0 {
		t.Fatalf("attributed fraction = %v, want 0.8", got)
	}
}

func TestProfilerSampling(t *testing.T) {
	p := NewProfiler(100)
	// 1000 cycles in 10-cycle chunks: exactly 10 samples of 100 cycles.
	for i := 0; i < 100; i++ {
		p.Add(0, 1, ir.Pos{Line: 2}, 10)
	}
	if p.Total() != 1000 {
		t.Fatalf("total = %d", p.Total())
	}
	if p.Sampled() != 1000 {
		t.Fatalf("sampled = %d, want 1000 (10 boundary crossings x 100)", p.Sampled())
	}
	// A partial period leaves a residue below one period.
	p.Add(0, 1, ir.Pos{Line: 2}, 99)
	if p.Sampled() != 1000 || p.Total() != 1099 {
		t.Fatalf("sampled = %d total = %d, want 1000/1099", p.Sampled(), p.Total())
	}
	if p.Total()-p.Sampled() >= 100 {
		t.Fatal("residue must stay below one period")
	}
}

func TestWriteFolded(t *testing.T) {
	p := NewProfiler(1)
	p.Add(2, 5, ir.Pos{Line: 12, Col: 3}, 100)
	p.Add(2, NoBlock, ir.Pos{}, 13)
	p.Add(NoMeta, 4, ir.Pos{}, 7)
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf, "simd"); err != nil {
		t.Fatal(err)
	}
	want := "simd;ms2;b5;line_12 100\nsimd;ms2;<dispatch> 13\nsimd;b4 7\n"
	if buf.String() != want {
		t.Fatalf("folded output:\n%s\nwant:\n%s", buf.String(), want)
	}
	// Folded lines must be exactly "stack count" with ';' separators.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		i := strings.LastIndex(line, " ")
		if i <= 0 || strings.ContainsAny(line[:i], " \t") {
			t.Fatalf("not a folded-stack line: %q", line)
		}
	}
}

func TestProfilerNil(t *testing.T) {
	var p *Profiler
	p.Add(0, 0, ir.Pos{}, 10)
	if p.Total() != 0 || p.Sampled() != 0 || p.Frames() != nil {
		t.Fatal("nil profiler must read zero")
	}
	if err := p.WriteFolded(&bytes.Buffer{}, "simd"); err != nil {
		t.Fatal(err)
	}
	if p.AttributedFraction() != 0 {
		t.Fatal("nil profiler fraction must be 0")
	}
}
