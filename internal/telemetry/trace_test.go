package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildTestTrace constructs the fixed span tree the export goldens
// lock: a compile root with two phases, a conversion phase with two
// parallel worker spans on their own lanes, and budget/panic events.
func buildTestTrace() *Tracer {
	tr := NewTestTracer("golden-trace", time.Millisecond)
	root := tr.StartSpan("compile", 0, String("source", "golden.mc"))
	parse := root.StartChild("phase.parse")
	parse.SetAttr(Int("tokens", 42))
	parse.End()
	conv := root.StartChild("phase.convert")
	gen := conv.StartChild("convert.generation", Int("gen", 0), Int("frontier", 2))
	w0 := gen.StartChild("convert.worker", Int("worker", 0))
	w0.Lane = 101
	w1 := gen.StartChild("convert.worker", Int("worker", 1))
	w1.Lane = 102
	w1.End()
	w0.End()
	gen.End()
	conv.Event("budget_overrun", String("resource", "meta_states"), Int("limit", 64))
	conv.End()
	root.Event("degrade", String("action", "csi off (linear schedule)"))
	root.End()
	run := tr.StartSpan("run.simd", 0, Int("n", 16))
	run.SetAttr(Int("cycles", 1234))
	run.End()
	return tr
}

func TestWriteJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestTrace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "spans.jsonl.golden", buf.Bytes())
	// Every line must decode and carry the trace ID.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if m["trace"] != "golden-trace" {
			t.Fatalf("line %q missing trace id", line)
		}
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.chrome.golden", buf.Bytes())
	// The document must be loadable JSON with the trace_event shape
	// Perfetto expects: a traceEvents array of X/i phases.
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	lanes := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" && e.Ph != "i" {
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		lanes[e.TID] = true
	}
	// The two worker spans must land on their own lanes.
	if !lanes[101] || !lanes[102] {
		t.Fatalf("worker lanes missing from chrome export: %v", lanes)
	}
}

func TestSpanTreeParents(t *testing.T) {
	tr := buildTestTrace()
	byID := map[SpanID]*Span{}
	for _, s := range tr.Spans() {
		byID[s.ID] = s
	}
	var workers, roots int
	for _, s := range tr.Spans() {
		if s.Parent == 0 {
			roots++
			continue
		}
		if byID[s.Parent] == nil {
			t.Fatalf("span %d (%s) has dangling parent %d", s.ID, s.Name, s.Parent)
		}
		if s.Name == "convert.worker" {
			workers++
			if byID[s.Parent].Name != "convert.generation" {
				t.Fatalf("worker span parent = %s", byID[s.Parent].Name)
			}
		}
	}
	if roots != 2 || workers != 2 {
		t.Fatalf("roots = %d, workers = %d", roots, workers)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("x", 0)
	s.SetAttr(Int("a", 1))
	s.Event("e")
	c := s.StartChild("y")
	c.End()
	s.End()
	if tr.Spans() != nil {
		t.Fatal("nil tracer must have no spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil tracer JSONL must be empty")
	}
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatal("nil tracer chrome export must still be a valid document")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	s := tr.StartSpan("x", 0)
	s.End()
	s.End()
	if n := len(tr.Spans()); n != 1 {
		t.Fatalf("double End recorded %d spans", n)
	}
}

// TestConcurrentSpans exercises tracer and span mutation from many
// goroutines under the race detector — the conversion worker pattern.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("root", 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := root.StartChild("worker", Int("worker", int64(w)))
			for i := 0; i < 100; i++ {
				s.Event("tick", Int("i", int64(i)))
				s.SetAttr(Int("last", int64(i)))
			}
			s.End()
		}(w)
	}
	wg.Wait()
	root.End()
	if n := len(tr.Spans()); n != 9 {
		t.Fatalf("spans = %d, want 9", n)
	}
}

func TestStreamExporter(t *testing.T) {
	tr := NewTestTracer("stream", time.Millisecond)
	var buf syncBuffer
	exp := NewStreamExporter(tr, &buf)
	tr.Exporter = exp
	s := tr.StartSpan("a", 0)
	s.StartChild("b").End()
	s.End()
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("exporter wrote %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the exporter goroutine
// writes while the test goroutine may read after Close.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
