package telemetry

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("convert.meta_states", "meta states")
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	c.Set(5)
	c.Max(9)
	c.Max(2)
	if got := c.Value(); got != 9 {
		t.Fatalf("counter after Set/Max = %d, want 9", got)
	}
	g := r.Gauge("pool.size", "pool size")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// Same name and labels yields the same instrument.
	if r.Counter("convert.meta_states", "meta states") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", ExpBuckets(1, 10, 3)) // 1, 10, 100
	for _, v := range []int64{0, 1, 2, 10, 99, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 1212 {
		t.Fatalf("sum = %d, want 1212", h.Sum())
	}
	s := r.Snapshot()
	if len(s) != 1 {
		t.Fatalf("snapshot has %d metrics, want 1", len(s))
	}
	// Buckets: <=1: {0,1}; <=10: {2,10}; <=100: {99,100}; +Inf: {1000}.
	want := []int64{2, 2, 2, 1}
	for i, w := range want {
		if s[0].BucketCounts[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (%v)", i, s[0].BucketCounts[i], w, s[0].BucketCounts)
		}
	}
}

func TestLabeledChildren(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("engine.cycles", "cycles", Label{"engine", "simd"})
	b := r.Counter("engine.cycles", "cycles", Label{"engine", "mimd"})
	if a == b {
		t.Fatal("distinct label sets shared one instrument")
	}
	a.Add(1)
	b.Add(2)
	s := r.Snapshot()
	if len(s) != 2 || s[0].Value != 1 || s[1].Value != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x", "")
	h := r.Histogram("h", "", []float64{10})
	g := r.Gauge("g", "")
	c.Add(5)
	h.Observe(3)
	g.Set(100)
	prev := r.Snapshot()
	c.Add(2)
	h.Observe(30)
	g.Set(50)
	d := Delta(r.Snapshot(), prev)
	if d[0].Value != 2 {
		t.Fatalf("counter delta = %d, want 2", d[0].Value)
	}
	if d[1].Count != 1 || d[1].Sum != 30 || d[1].BucketCounts[0] != 0 || d[1].BucketCounts[1] != 1 {
		t.Fatalf("histogram delta = %+v", d[1])
	}
	if d[2].Value != 50 {
		t.Fatalf("gauge delta should pass through current value, got %d", d[2].Value)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Add(1)
	c.Set(2)
	c.Max(3)
	r.Gauge("g", "").Set(1)
	r.Histogram("h", "", nil).Observe(1)
	if c.Value() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("nil registry instruments must read zero")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentUpdates exercises the atomic hot path under the race
// detector: registration from many goroutines returns one instrument,
// and updates never lose increments.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared", "")
			h := r.Histogram("hist", "", ExpBuckets(1, 2, 8))
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				h.Observe(int64(i % 100))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("hist", "", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}
