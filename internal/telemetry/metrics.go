// Package telemetry is the service-grade observability backbone of the
// pipeline: a metrics registry (typed counters, gauges, and
// exponential-bucket histograms with atomic hot-path updates and
// Prometheus text exposition), hierarchical tracing (trace/span IDs
// with parent links, typed attributes, span events, JSONL and Chrome
// trace_event export), and a low-overhead sampling profiler that
// attributes engine cycles to meta states and source blocks.
//
// The package is standard library only (plus the leaf internal/ir for
// source positions) so every internal package may depend on it. All
// hot-path mutators are safe on nil receivers: disabled telemetry costs
// one nil check per call site and nothing else. internal/obs layers its
// Recorder on top of the Registry, so compile metrics, /metrics
// exposition, and mscbench reports all read from one source of truth.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric at
// registration time.
type Label struct {
	Name, Value string
}

// Kind classifies a registered metric for exposition.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Counter is a monotonic int64 with atomic updates. The Set and Max
// mutators exist for migration of the obs.Recorder semantics (absolute
// counters and high-water marks); Prometheus exposition still reports
// the metric as a counter. All methods no-op on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Set stores v.
func (c *Counter) Set(v int64) {
	if c != nil {
		c.v.Store(v)
	}
}

// Max raises the value to v if v is larger.
func (c *Counter) Max(v int64) {
	if c == nil {
		return
	}
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 with atomic updates.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (zero on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution with atomic hot-path
// updates. Bounds are inclusive upper bounds in ascending order; an
// implicit +Inf bucket catches the tail. Observations are int64 (the
// pipeline measures cycles, nanoseconds, and counts).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, float64(v))
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// start (factor > 1): start, start*factor, ... — the standard shape for
// latency and cycle-count distributions spanning orders of magnitude.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("telemetry: ExpBuckets(%g, %g, %d): need start > 0, factor > 1, n >= 1", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric is one registered instrument with its identity.
type metric struct {
	name   string
	help   string
	kind   Kind
	labels []Label

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// key builds the registry index key: name plus canonical label pairs.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	k := name
	for _, l := range labels {
		k += "\x00" + l.Name + "\x01" + l.Value
	}
	return k
}

// Registry holds registered metrics in registration order (so snapshot
// and exposition output are deterministic). Registration takes a lock;
// updates on the returned instruments are lock-free atomics.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
	help    map[string]string // first help string per family name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric), help: make(map[string]string)}
}

// register finds or creates a metric, instrument included, under the
// registry lock — concurrent first-use of one name races otherwise.
func (r *Registry) register(name, help string, kind Kind, labels []Label, bounds []float64) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := metricKey(name, labels)
	if m, ok := r.index[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %q re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: append([]Label(nil), labels...)}
	switch kind {
	case KindCounter:
		m.counter = &Counter{}
	case KindGauge:
		m.gauge = &Gauge{}
	case KindHistogram:
		b := append([]float64(nil), bounds...)
		if !sort.Float64sAreSorted(b) {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending: %v", name, b))
		}
		m.hist = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	if _, ok := r.help[name]; !ok {
		r.help[name] = help
	}
	return m
}

// Counter returns the named counter, registering it on first use.
// Re-requesting the same name and labels returns the same instrument.
// Safe on a nil registry (returns a nil instrument whose methods
// no-op), so instrumented code never guards the registry itself.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindCounter, labels, nil).counter
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindGauge, labels, nil).gauge
}

// Histogram returns the named histogram, registering it with the given
// bucket upper bounds on first use. Later calls reuse the first
// registration's buckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindHistogram, labels, bounds).hist
}

// MetricSnapshot is one metric's point-in-time reading.
type MetricSnapshot struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Labels []Label `json:"labels,omitempty"`
	// Value is the counter/gauge reading.
	Value int64 `json:"value,omitempty"`
	// Histogram readings.
	Count        int64     `json:"count,omitempty"`
	Sum          int64     `json:"sum,omitempty"`
	Bounds       []float64 `json:"bounds,omitempty"`
	BucketCounts []int64   `json:"bucket_counts,omitempty"`
}

// Snapshot returns every metric's current reading in registration
// order. Individual reads are atomic; the snapshot as a whole is not a
// consistent cut (updates may land between reads), which is the usual
// contract for scrape-style metrics.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		s := MetricSnapshot{Name: m.name, Kind: m.kind.String(), Labels: m.labels}
		switch m.kind {
		case KindCounter:
			s.Value = m.counter.Value()
		case KindGauge:
			s.Value = m.gauge.Value()
		case KindHistogram:
			s.Count = m.hist.count.Load()
			s.Sum = m.hist.sum.Load()
			s.Bounds = m.hist.bounds
			s.BucketCounts = make([]int64, len(m.hist.counts))
			for i := range m.hist.counts {
				s.BucketCounts[i] = m.hist.counts[i].Load()
			}
		}
		out = append(out, s)
	}
	return out
}

// Delta returns cur minus prev, matched by name and labels: the
// interval reading between two snapshots. Metrics absent from prev are
// returned as-is; gauges are passed through at their current value
// (deltas of instantaneous values are not meaningful).
func Delta(cur, prev []MetricSnapshot) []MetricSnapshot {
	idx := make(map[string]*MetricSnapshot, len(prev))
	for i := range prev {
		idx[metricKey(prev[i].Name, prev[i].Labels)] = &prev[i]
	}
	out := make([]MetricSnapshot, len(cur))
	for i := range cur {
		d := cur[i]
		p, ok := idx[metricKey(d.Name, d.Labels)]
		if ok && d.Kind != KindGauge.String() {
			d.Value -= p.Value
			d.Count -= p.Count
			d.Sum -= p.Sum
			if len(p.BucketCounts) == len(d.BucketCounts) {
				bc := append([]int64(nil), d.BucketCounts...)
				for j := range bc {
					bc[j] -= p.BucketCounts[j]
				}
				d.BucketCounts = bc
			}
		}
		out[i] = d
	}
	return out
}

// Inf is the +Inf bucket bound alias used in exposition.
var inf = math.Inf(1)
