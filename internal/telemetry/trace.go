package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SpanID identifies a span within one Tracer; 0 is "no span" (a root).
// IDs are assigned sequentially in start order, which makes traces of
// deterministic runs deterministic apart from timestamps.
type SpanID int64

// Attr is one typed span attribute. Values should be strings, integers,
// floats, or bools so both export formats encode them faithfully.
type Attr struct {
	Key   string
	Value any
}

// String, Int, and Bool are Attr constructors for the common cases.
func String(k, v string) Attr    { return Attr{Key: k, Value: v} }
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// SpanEvent is one timestamped point event attached to a span —
// budget overruns, degradation rungs, contained panics, fault
// injections.
type SpanEvent struct {
	Name  string
	Time  time.Duration // offset from the tracer epoch
	Attrs []Attr
}

// Span is one timed operation in a trace tree. Starting and ending are
// cheap (two clock reads and one append under the tracer lock); Event
// and SetAttr are safe for concurrent use, so conversion workers may
// annotate their spans freely. All methods no-op on a nil receiver.
type Span struct {
	tracer *Tracer
	ID     SpanID
	Parent SpanID
	Name   string
	// Lane groups spans into display tracks in the Chrome export:
	// spans that genuinely overlap in time (parallel conversion
	// workers) must live on different lanes. Inherited from the parent
	// by default.
	Lane int

	mu     sync.Mutex
	start  time.Duration // offset from tracer epoch
	dur    time.Duration // valid after End
	ended  bool
	attrs  []Attr
	events []SpanEvent
}

// Tracer collects spans for one logical operation (a compile, a run, or
// a whole CLI invocation). It is safe for concurrent use. The zero
// value is not usable; construct with NewTracer. A nil *Tracer no-ops
// on every method, so instrumented code threads an optional tracer
// without guards.
type Tracer struct {
	// TraceID names the trace in exports. NewTracer derives one from
	// the epoch; tests overwrite it for golden stability.
	TraceID string
	// Exporter, when non-nil, additionally receives every span at End
	// (the streaming path; see NewStreamExporter).
	Exporter SpanExporter

	mu     sync.Mutex
	spans  []*Span // finished spans, End order
	nextID SpanID
	epoch  time.Time
	// now returns the offset since epoch; tests replace it with a
	// deterministic fake for golden output.
	now func() time.Duration
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	epoch := time.Now()
	return &Tracer{
		TraceID: fmt.Sprintf("msc-%d", epoch.UnixNano()),
		epoch:   epoch,
		now:     func() time.Duration { return time.Since(epoch) },
	}
}

// NewTestTracer returns a tracer whose clock advances by step on every
// reading and whose TraceID is fixed — deterministic output for golden
// tests.
func NewTestTracer(id string, step time.Duration) *Tracer {
	var mu sync.Mutex
	var t time.Duration
	return &Tracer{
		TraceID: id,
		epoch:   time.Unix(0, 0),
		now: func() time.Duration {
			mu.Lock()
			defer mu.Unlock()
			t += step
			return t
		},
	}
}

// StartSpan opens a span under parent (0 for a root span). The span
// must be closed with End; spans never closed are dropped from exports.
func (t *Tracer) StartSpan(name string, parent SpanID, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{
		tracer: t,
		ID:     id,
		Parent: parent,
		Name:   name,
		start:  t.now(),
		attrs:  attrs,
	}
}

// StartChild opens a child of s on the same lane.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := s.tracer.StartSpan(name, s.ID, attrs...)
	c.Lane = s.Lane
	return c
}

// SetAttr attaches (or appends) an attribute.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Event attaches a timestamped point event.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	now := s.tracer.now()
	s.mu.Lock()
	s.events = append(s.events, SpanEvent{Name: name, Time: now, Attrs: attrs})
	s.mu.Unlock()
}

// End closes the span and hands it to the tracer (and the exporter, if
// any). End is idempotent: closing an already closed span is a no-op,
// so deferred Ends compose with early explicit ones.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tracer.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = now - s.start
	s.mu.Unlock()
	t := s.tracer
	t.mu.Lock()
	t.spans = append(t.spans, s)
	exp := t.Exporter
	t.mu.Unlock()
	if exp != nil {
		exp.ExportSpan(s)
	}
}

// Spans returns the finished spans in End order.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// jsonSpan is the JSONL wire form of a finished span.
type jsonSpan struct {
	Trace   string          `json:"trace"`
	Span    SpanID          `json:"span"`
	Parent  SpanID          `json:"parent,omitempty"`
	Name    string          `json:"name"`
	Lane    int             `json:"lane,omitempty"`
	StartNS int64           `json:"start_ns"`
	DurNS   int64           `json:"dur_ns"`
	Attrs   map[string]any  `json:"attrs,omitempty"`
	Events  []jsonSpanEvent `json:"events,omitempty"`
}

type jsonSpanEvent struct {
	Name  string         `json:"name"`
	TNS   int64          `json:"t_ns"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// attrMap folds attrs into a map (later keys win); encoding/json sorts
// map keys, so the encoded form is deterministic.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func (t *Tracer) jsonSpan(s *Span) jsonSpan {
	s.mu.Lock()
	defer s.mu.Unlock()
	js := jsonSpan{
		Trace:   t.TraceID,
		Span:    s.ID,
		Parent:  s.Parent,
		Name:    s.Name,
		Lane:    s.Lane,
		StartNS: s.start.Nanoseconds(),
		DurNS:   s.dur.Nanoseconds(),
		Attrs:   attrMap(s.attrs),
	}
	for _, e := range s.events {
		js.Events = append(js.Events, jsonSpanEvent{Name: e.Name, TNS: e.Time.Nanoseconds(), Attrs: attrMap(e.Attrs)})
	}
	return js
}

// WriteJSONL writes every finished span as one JSON object per line, in
// span-ID (start) order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, s := range t.sortedSpans() {
		b, err := json.Marshal(t.jsonSpan(s))
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// sortedSpans returns finished spans in ID order (IDs are start order).
func (t *Tracer) sortedSpans() []*Span {
	spans := t.Spans()
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].ID < spans[j-1].ID; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	return spans
}

// SpanExporter receives finished spans as they end.
type SpanExporter interface {
	ExportSpan(s *Span)
}

// StreamExporter writes finished spans as JSONL from a background
// goroutine, so End never blocks on the writer. Close flushes and joins
// the goroutine; faultinject.LeakCheck covers it in the robustness
// tests (an exporter goroutine must never outlive Close).
type StreamExporter struct {
	t    *Tracer
	ch   chan *Span
	done chan struct{}
	mu   sync.Mutex
	err  error
	w    io.Writer
}

// NewStreamExporter starts the exporter goroutine. Attach it with
// tracer.Exporter = e; call Close when the trace is complete.
func NewStreamExporter(t *Tracer, w io.Writer) *StreamExporter {
	e := &StreamExporter{t: t, ch: make(chan *Span, 64), done: make(chan struct{}), w: w}
	go e.loop()
	return e
}

func (e *StreamExporter) loop() {
	defer close(e.done)
	for s := range e.ch {
		b, err := json.Marshal(e.t.jsonSpan(s))
		if err == nil {
			b = append(b, '\n')
			_, err = e.w.Write(b)
		}
		if err != nil {
			e.mu.Lock()
			if e.err == nil {
				e.err = err
			}
			e.mu.Unlock()
		}
	}
}

// ExportSpan enqueues the span (blocking when the writer falls behind —
// traces must be complete, not sampled).
func (e *StreamExporter) ExportSpan(s *Span) { e.ch <- s }

// Close flushes pending spans, stops the goroutine, and returns the
// first write error.
func (e *StreamExporter) Close() error {
	close(e.ch)
	<-e.done
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
