package telemetry

import (
	"fmt"
	"io"
	"sort"

	"msc/internal/ir"
)

// Frame identifies where engine cycles were spent: the meta state (or
// -1 outside any meta state, e.g. on the MIMD reference machine), the
// MIMD state / source block (or -1 for engine work not attributable to
// a block, such as transition dispatch and interpreter fetch/decode),
// and the source position threaded from the front end (zero when the
// block has no position).
type Frame struct {
	Meta  int
	Block int
	Pos   ir.Pos
}

// NoBlock and NoMeta are the reserved Frame values for engine work that
// belongs to no source block (dispatch, interpreter fetch/decode) or to
// no meta state (the MIMD reference machine).
const (
	NoBlock = -1
	NoMeta  = -1
)

// Profiler attributes engine cycles to Frames by sampling: one sample
// is taken every Period cycles, each sample crediting Period cycles to
// the frame executing when the boundary was crossed. Period 1 degrades
// to exact attribution (the engines are deterministic simulators, so
// exactness is affordable); larger periods make the hot path one
// integer add in the common case.
//
// A Profiler is single-consumer: each engine run owns one (the engines
// are single-goroutine). All methods no-op on a nil receiver, so the
// disabled path costs one nil check.
type Profiler struct {
	period  int64
	residue int64
	samples map[Frame]int64
	total   int64 // cycles offered to Add, sampled or not
}

// NewProfiler returns a profiler sampling every period cycles;
// period <= 1 means exact attribution.
func NewProfiler(period int64) *Profiler {
	if period < 1 {
		period = 1
	}
	return &Profiler{period: period, samples: make(map[Frame]int64)}
}

// Add advances the cycle cursor by cycles, crediting the frame with one
// Period's worth of cycles for every sampling boundary crossed. The
// no-sample path is two adds and a compare.
func (p *Profiler) Add(meta, block int, pos ir.Pos, cycles int64) {
	if p == nil || cycles <= 0 {
		return
	}
	p.total += cycles
	p.residue += cycles
	if p.residue < p.period {
		return
	}
	n := p.residue / p.period
	p.residue -= n * p.period
	p.samples[Frame{Meta: meta, Block: block, Pos: pos}] += n * p.period
}

// Sampled returns the total cycles credited to frames; Total the cycles
// offered. Sampled <= Total, with equality at period 1.
func (p *Profiler) Sampled() int64 {
	if p == nil {
		return 0
	}
	var s int64
	for _, v := range p.samples {
		s += v
	}
	return s
}

// Total returns the cycles offered to Add.
func (p *Profiler) Total() int64 {
	if p == nil {
		return 0
	}
	return p.total
}

// AttributedFraction reports the fraction of sampled cycles credited to
// a meta state or a source block (Meta >= 0 || Block >= 0) — the
// `msc profile -folded` acceptance metric. SIMD dispatch cycles count
// as attributed (they belong to the dispatching meta state and render
// as "ms<N>;<dispatch>" frames); only fully anonymous engine overhead
// such as interpreter fetch/decode is unattributed.
func (p *Profiler) AttributedFraction() float64 {
	s := p.Sampled()
	if s == 0 {
		return 0
	}
	var attributed int64
	for f, v := range p.samples {
		if f.Meta >= 0 || f.Block >= 0 {
			attributed += v
		}
	}
	return float64(attributed) / float64(s)
}

// FrameCount is one folded-stack row.
type FrameCount struct {
	Frame  Frame
	Cycles int64
}

// Frames returns the sampled frames sorted by descending cycles (ties
// by meta, block, position) — deterministic output for a deterministic
// run.
func (p *Profiler) Frames() []FrameCount {
	if p == nil {
		return nil
	}
	out := make([]FrameCount, 0, len(p.samples))
	for f, v := range p.samples {
		out = append(out, FrameCount{Frame: f, Cycles: v})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.Frame.Meta != b.Frame.Meta {
			return a.Frame.Meta < b.Frame.Meta
		}
		if a.Frame.Block != b.Frame.Block {
			return a.Frame.Block < b.Frame.Block
		}
		return a.Frame.Pos.Before(b.Frame.Pos)
	})
	return out
}

// foldedFrame renders one stack frame path for a sample: engine root,
// meta state, block, source line. Frames use ';' as the flamegraph
// stack separator, so none of the components may contain one.
func foldedFrame(root string, f Frame) string {
	s := root
	if f.Meta >= 0 {
		s += fmt.Sprintf(";ms%d", f.Meta)
	}
	if f.Block >= 0 {
		s += fmt.Sprintf(";b%d", f.Block)
		if f.Pos.IsValid() {
			s += fmt.Sprintf(";line_%d", f.Pos.Line)
		}
	} else {
		s += ";<dispatch>"
	}
	return s
}

// WriteFolded writes the profile in folded-stack form — one
// "frame;frame;frame cycles" line per distinct stack, descending — the
// input format of Brendan Gregg's flamegraph.pl and of speedscope.
// root names the engine (e.g. "simd"). Frames that render to the same
// stack (same line, different column) are merged.
func (p *Profiler) WriteFolded(w io.Writer, root string) error {
	if p == nil {
		return nil
	}
	cycles := map[string]int64{}
	order := []string{} // first-seen order of stacks, already cycle-sorted
	for _, fc := range p.Frames() {
		s := foldedFrame(root, fc.Frame)
		if _, seen := cycles[s]; !seen {
			order = append(order, s)
		}
		cycles[s] += fc.Cycles
	}
	sort.SliceStable(order, func(i, j int) bool {
		return cycles[order[i]] > cycles[order[j]]
	})
	for _, s := range order {
		if _, err := fmt.Fprintf(w, "%s %d\n", s, cycles[s]); err != nil {
			return err
		}
	}
	return nil
}
