package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one Chrome trace_event record. The exporter emits
// complete ("X") events for spans and instant ("i") events for span
// events; Perfetto and chrome://tracing both load the array form.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes every finished span as Chrome trace_event
// JSON ({"traceEvents": [...]}), viewable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Spans become complete
// events on their lane's track; span events become instant events at
// their timestamp. Timestamps are microseconds from the tracer epoch.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	var events []chromeEvent
	for _, s := range t.sortedSpans() {
		js := t.jsonSpan(s)
		args := js.Attrs
		if args == nil {
			args = map[string]any{}
		}
		args["span"] = int64(js.Span)
		if js.Parent != 0 {
			args["parent"] = int64(js.Parent)
		}
		tid := js.Lane
		if tid == 0 {
			tid = 1
		}
		events = append(events, chromeEvent{
			Name: js.Name,
			Cat:  "msc",
			Ph:   "X",
			TS:   float64(js.StartNS) / 1e3,
			Dur:  float64(js.DurNS) / 1e3,
			PID:  1,
			TID:  tid,
		})
		events[len(events)-1].Args = args
		for _, e := range js.Events {
			events = append(events, chromeEvent{
				Name: e.Name,
				Cat:  "msc.event",
				Ph:   "i",
				TS:   float64(e.TNS) / 1e3,
				PID:  1,
				TID:  tid,
				S:    "t",
				Args: e.Attrs,
			})
		}
	}
	doc := struct {
		TraceEvents     []chromeEvent     `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"trace": t.TraceID},
	}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	return nil
}
