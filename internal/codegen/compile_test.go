package codegen

import (
	"fmt"
	"strings"
	"testing"

	"msc/internal/cfg"
	"msc/internal/mimdsim"
	"msc/internal/msc"
	"msc/internal/progen"
	"msc/internal/simd"
)

const listing4 = `
void main()
{
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    return;
}
`

// runnable variant of Listing 1 used for execution tests (Listing 4's
// loops never terminate at run time; MSC is static so the paper did not
// need them to).
const listing1Run = `
poly int x;
void main()
{
    x = iproc % 3;
    if (x) {
        do { x = x - 1; } while (x);
    } else {
        do { x = x + 2; } while (x < 4);
    }
    x = x + 100;
    return;
}
`

func buildGraph(t testing.TB, src string) *cfg.Graph {
	t.Helper()
	g := cfg.Simplify(cfg.MustBuild(src))
	if err := cfg.Verify(g); err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return g
}

// modes enumerates every conversion × encoding combination exercised by
// the equivalence tests.
var modes = []struct {
	name string
	conv func() msc.Options
	code Options
}{
	{"base", func() msc.Options { return msc.DefaultOptions(false) }, Options{}},
	{"base+hash", func() msc.Options { return msc.DefaultOptions(false) }, Options{Hash: true}},
	{"base+csi", func() msc.Options { return msc.DefaultOptions(false) }, Options{CSI: true}},
	{"base+hash+csi", func() msc.Options { return msc.DefaultOptions(false) }, Options{Hash: true, CSI: true}},
	{"compress", func() msc.Options { return msc.DefaultOptions(true) }, Options{}},
	{"compress+csi", func() msc.Options { return msc.DefaultOptions(true) }, Options{CSI: true}},
	{"base+timesplit", func() msc.Options {
		o := msc.DefaultOptions(false)
		o.TimeSplit = true
		return o
	}, Options{}},
	{"exactbarrier", func() msc.Options {
		o := msc.DefaultOptions(false)
		o.BarrierExact = true
		return o
	}, Options{}},
}

// checkEquivalence runs src on the MIMD reference machine and on the
// SIMD machine under every mode, and requires bit-identical memory.
// initialActive == 0 means all PEs start in main.
func checkEquivalence(t *testing.T, name, src string, n int, initialActive ...int) {
	t.Helper()
	ia := 0
	if len(initialActive) > 0 {
		ia = initialActive[0]
	}
	g := buildGraph(t, src)
	ref, err := mimdsim.Run(g, mimdsim.Config{N: n, InitialActive: ia})
	if err != nil {
		t.Fatalf("%s: mimdsim: %v", name, err)
	}
	for _, m := range modes {
		conv := m.conv()
		if conv.MaxStates > 4000 {
			conv.MaxStates = 4000 // keep explosion bail-outs fast in tests
		}
		a, err := msc.Convert(g, conv)
		if err != nil {
			if strings.Contains(err.Error(), "exceeded") {
				// The §1.2 state explosion guard fired: this program is
				// exactly why compression exists. Not an equivalence bug.
				t.Logf("%s/%s: skipped (state explosion guard): %v", name, m.name, err)
				continue
			}
			t.Fatalf("%s/%s: convert: %v", name, m.name, err)
		}
		if err := msc.Check(a); err != nil {
			t.Fatalf("%s/%s: check: %v", name, m.name, err)
		}
		p, err := Compile(a, m.code)
		if err != nil {
			t.Fatalf("%s/%s: compile: %v", name, m.name, err)
		}
		res, err := simd.Run(p, simd.Config{N: n, InitialActive: ia, Strict: true})
		if err != nil {
			t.Fatalf("%s/%s: simd run: %v\n%s", name, m.name, err, a)
		}
		for pe := 0; pe < n; pe++ {
			for slot := range ref.Mem[pe] {
				if ref.Mem[pe][slot] != res.Mem[pe][slot] {
					t.Fatalf("%s/%s: PE %d slot %d: simd %d != mimd %d",
						name, m.name, pe, slot, res.Mem[pe][slot], ref.Mem[pe][slot])
				}
			}
			if ref.Done[pe] != res.Done[pe] {
				t.Fatalf("%s/%s: PE %d done: simd %v != mimd %v",
					name, m.name, pe, res.Done[pe], ref.Done[pe])
			}
		}
	}
}

func TestEquivalenceListing1(t *testing.T) {
	checkEquivalence(t, "listing1", listing1Run, 7)
}

func TestEquivalenceBarrierReduction(t *testing.T) {
	checkEquivalence(t, "reduction", `
poly int val, sum;
void main()
{
    poly int j;
    val = iproc + 1;
    wait;
    sum = 0;
    for (j = 0; j < nproc; j = j + 1) {
        sum = sum + val[[j]];
    }
    return;
}
`, 8)
}

func TestEquivalenceCallsAndFloats(t *testing.T) {
	checkEquivalence(t, "calls", `
poly float y;
float scale(float v, int k) { return v * k + 0.5; }
int gcd(int a, int b) { if (b == 0) { return a; } return gcd(b, a % b); }
void main()
{
    poly int r;
    r = gcd(iproc + 12, 18);
    y = scale(1.5, r);
    return;
}
`, 6)
}

func TestEquivalenceSpawn(t *testing.T) {
	checkEquivalence(t, "spawn", `
poly int out;
void worker() { out = iproc * 7 + 1; halt; }
void main()
{
    spawn worker();
    spawn worker();
    return;
}
`, 4, 1)
}

func TestEquivalenceRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("random sweep skipped in -short")
	}
	for seed := int64(0); seed < 12; seed++ {
		for _, variant := range []progen.Params{
			{Seed: seed, MaxDepth: 2, MaxStmts: 4},
			{Seed: seed, MaxDepth: 2, MaxStmts: 4, Barriers: true},
			{Seed: seed, MaxDepth: 2, MaxStmts: 4, Floats: true},
			{Seed: seed, MaxDepth: 2, MaxStmts: 4, Calls: true},
			{Seed: seed, MaxDepth: 2, MaxStmts: 4, Barriers: true, Floats: true, Calls: true},
		} {
			src := progen.Source(variant)
			name := fmt.Sprintf("seed%d/b%vf%vc%v", seed, variant.Barriers, variant.Floats, variant.Calls)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic: %v\nsource:\n%s", name, r, src)
					}
				}()
				checkEquivalence(t, name, src, 5)
			}()
		}
	}
}

// TestListing5MPL checks the MPL emission for Listing 4 against the
// structure of the paper's Listing 5: eight labeled meta states,
// guarded stack code, JumpF pc updates, a globalor aggregate, and
// hashed switch dispatch.
func TestListing5MPL(t *testing.T) {
	g := buildGraph(t, listing4)
	a := msc.MustConvert(g, msc.DefaultOptions(false))
	p := MustCompile(a, Options{Hash: true, CSI: true})
	mpl := EmitMPL(p)

	if got := strings.Count(mpl, "ms_"); got < 8 {
		t.Fatalf("MPL has %d ms_ references, want >= 8 meta states:\n%s", got, mpl)
	}
	for _, want := range []string{
		"if (pc & BIT(", // guarded thread code
		"JumpF(",        // conditional pc update
		"apc = globalor(pc);",
		"switch (",
		"exit(0);",
		"goto ms_",
	} {
		if !strings.Contains(mpl, want) {
			t.Fatalf("MPL missing %q:\n%s", want, mpl)
		}
	}
	// The widest state ms_a_b_c exists (three MIMD states merged).
	found := false
	for _, line := range strings.Split(mpl, "\n") {
		if strings.HasSuffix(line, ":") && strings.Count(line, "_") == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no three-state meta label in MPL:\n%s", mpl)
	}
}

func TestHashedDispatchUsedAndExecuted(t *testing.T) {
	g := buildGraph(t, listing1Run)
	a := msc.MustConvert(g, msc.DefaultOptions(false))
	p := MustCompile(a, Options{Hash: true})
	hashed := 0
	for _, mc := range p.Meta {
		if mc.Trans.Hash != nil {
			hashed++
			for _, e := range mc.Trans.Entries {
				w, ok := e.Key.Word()
				if !ok {
					t.Fatalf("key exceeds word")
				}
				if got := mc.Trans.Hash.Table[mc.Trans.Hash.Index(w)]; got != e.To {
					t.Fatalf("hash table maps %s to %d, want %d", e.Key, got, e.To)
				}
			}
		}
	}
	if hashed == 0 {
		t.Fatalf("no hashed multiway branches generated")
	}
	// Execution through the hash tables matches the reference.
	checkEquivalence(t, "hashed", listing1Run, 7)
}

func TestCSIReducesMetaStateCost(t *testing.T) {
	g := buildGraph(t, listing1Run)
	a := msc.MustConvert(g, msc.DefaultOptions(false))
	plain := MustCompile(a, Options{})
	shared := MustCompile(a, Options{CSI: true})
	var plainCost, sharedCost int
	for i := range plain.Meta {
		plainCost += plain.Meta[i].Cost()
		sharedCost += shared.Meta[i].Cost()
	}
	if sharedCost >= plainCost {
		t.Fatalf("CSI static cost %d, plain %d; want reduction", sharedCost, plainCost)
	}
}

func TestCompressedNeedsNoGlobalor(t *testing.T) {
	g := buildGraph(t, listing4)
	a := msc.MustConvert(g, msc.DefaultOptions(true))
	p := MustCompile(a, Options{})
	// §2.5: transitions into compressed portions are unconditional —
	// dispatch is TransGoto everywhere (the exit check is separate).
	for _, mc := range p.Meta {
		if mc.Trans.Kind == simd.TransSwitch {
			t.Fatalf("compressed ms%d uses switch dispatch", mc.ID)
		}
	}
}

func TestProgramStringer(t *testing.T) {
	g := buildGraph(t, listing4)
	p := MustCompile(msc.MustConvert(g, msc.DefaultOptions(false)), Options{})
	s := p.String()
	if !strings.Contains(s, "meta states") {
		t.Fatalf("Program.String = %q", s)
	}
}

func TestOverApproxFallbackRunsCorrectly(t *testing.T) {
	// Many call sites with a tiny MaxRetSubsets force the all-targets
	// fallback in base mode; dispatch must then accept covering
	// supersets and still compute the right answers.
	src := `
poly int r;
int id(int v) { return v + 1; }
void main()
{
    r = id(iproc);
    r = r + id(r);
    r = r + id(r + 2);
    r = r + id(r % 7);
    return;
}
`
	g := buildGraph(t, src)
	opt := msc.DefaultOptions(false)
	opt.MaxRetSubsets = 2
	a, err := msc.Convert(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !a.OverApprox {
		t.Fatal("expected over-approximation flag")
	}
	p := MustCompile(a, Options{Hash: true})
	if !p.SupersetDispatch {
		t.Fatal("superset dispatch not enabled for over-approximated automaton")
	}
	for _, mc := range p.Meta {
		if mc.Trans.Hash != nil {
			t.Fatal("hash attached despite superset dispatch")
		}
	}
	res, err := simd.Run(p, simd.Config{N: 6, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mimdsim.Run(g, mimdsim.Config{N: 6})
	if err != nil {
		t.Fatal(err)
	}
	slot := g.VarSlot["r"]
	for pe := 0; pe < 6; pe++ {
		if res.Mem[pe][slot] != ref.Mem[pe][slot] {
			t.Fatalf("PE %d: %d != %d", pe, res.Mem[pe][slot], ref.Mem[pe][slot])
		}
	}
}

func TestEquivalenceTernaryAndSugar(t *testing.T) {
	checkEquivalence(t, "sugar", `
poly int a, b, m;
poly float f;
void main()
{
    a = iproc % 5;
    b = 7 - a;
    m = a > b ? a : b;
    m += a ? 1 : 2;
    m *= 2;
    m--;
    f = a > 2 ? 1.5 : 0.25;
    a++;
    return;
}
`, 8)
}

func TestEquivalenceDivergentBarrier(t *testing.T) {
	// Only odd PEs reach the barrier; even PEs run to completion. The
	// barrier must release once every still-live PE is waiting (§3.2.4:
	// done PEs contribute no aggregate bits).
	checkEquivalence(t, "divergent-barrier", `
poly int x;
void main()
{
    if (iproc % 2) {
        wait;
        x = 100;
    } else {
        x = iproc;
    }
    x = x + 1;
    return;
}
`, 6)
}

func TestEquivalenceBarrierInLoop(t *testing.T) {
	// The same barrier state is re-entered every iteration; fast PEs
	// that loop around early wait for the stragglers each round.
	checkEquivalence(t, "barrier-loop", `
poly int acc;
void main()
{
    poly int r, i;
    for (r = 0; r < 3; r = r + 1) {
        for (i = 0; i < iproc % 3; i = i + 1) { acc = acc + i; }
        wait;
        acc = acc + 10;
    }
    return;
}
`, 6)
}

func TestMPLMapDispatchAndBarrierComment(t *testing.T) {
	// Without -hash the multiway switch dispatches on the raw aggregate;
	// barrier programs additionally emit the §3.2.4 subtraction.
	g := buildGraph(t, `
void main()
{
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    wait;
    return;
}
`)
	a := msc.MustConvert(g, msc.DefaultOptions(false))
	p := MustCompile(a, Options{}) // no hash
	mpl := EmitMPL(p)
	for _, want := range []string{"switch (apc)", "case BIT(", "§3.2.4", "BARRIERS"} {
		if !strings.Contains(mpl, want) {
			t.Fatalf("MPL missing %q:\n%s", want, mpl)
		}
	}
}
