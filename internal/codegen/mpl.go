package codegen

import (
	"fmt"
	"strings"

	"msc/internal/bitset"
	"msc/internal/simd"
)

// EmitMPL renders a compiled program in the MPL-like form of the paper's
// Listing 5: one labeled block per meta state, pc-guarded stack code,
// JumpF/Ret pc updates, a globalor aggregate, and the (optionally
// hashed) multiway switch.
func EmitMPL(p *simd.Program) string {
	var sb strings.Builder
	sb.WriteString("/* meta-state converted SIMD program (MPL-like; cf. Listing 5) */\n")
	for _, mc := range p.Meta {
		fmt.Fprintf(&sb, "%s:\n", msName(mc.Set))
		emitSlots(&sb, mc)
		emitTrans(&sb, p, mc)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// msName renders a meta state label like ms_2_6.
func msName(set *bitset.Set) string {
	parts := make([]string, 0, set.Len())
	for _, e := range set.Elems() {
		parts = append(parts, fmt.Sprintf("%d", e))
	}
	return "ms_" + strings.Join(parts, "_")
}

// guardExpr renders "pc & (BIT(2) | BIT(6))".
func guardExpr(g *bitset.Set) string {
	parts := make([]string, 0, g.Len())
	for _, e := range g.Elems() {
		parts = append(parts, fmt.Sprintf("BIT(%d)", e))
	}
	if len(parts) == 1 {
		return "pc & " + parts[0]
	}
	return "pc & (" + strings.Join(parts, " | ") + ")"
}

// emitSlots groups consecutive slots with identical guards into one
// if-block, the way Listing 5 batches each thread's stack macros.
func emitSlots(sb *strings.Builder, mc *simd.MetaCode) {
	i := 0
	for i < len(mc.Slots) {
		g := mc.Slots[i].Guard
		j := i
		for j < len(mc.Slots) && mc.Slots[j].Guard.Equal(g) && mc.Slots[j].Kind == simd.SlotExec && mc.Slots[i].Kind == simd.SlotExec {
			j++
		}
		if j > i { // run of plain instructions
			fmt.Fprintf(sb, "    if (%s) {\n        ", guardExpr(g))
			var ops []string
			for _, s := range mc.Slots[i:j] {
				ops = append(ops, s.Instr.String())
			}
			sb.WriteString(strings.Join(ops, " "))
			sb.WriteString("\n    }\n")
			i = j
			continue
		}
		s := &mc.Slots[i]
		fmt.Fprintf(sb, "    if (%s) {\n        ", guardExpr(g))
		switch s.Kind {
		case simd.SlotSetPC:
			fmt.Fprintf(sb, "Jump(%d)", s.To)
		case simd.SlotJumpF:
			// Listing 5 order: JumpF(false, true).
			fmt.Fprintf(sb, "JumpF(%d,%d)", s.FTo, s.To)
		case simd.SlotEnd:
			sb.WriteString("Ret(0)")
		case simd.SlotHalt:
			sb.WriteString("Halt()")
		case simd.SlotRetBr:
			sb.WriteString("RetBr()")
		case simd.SlotSpawn:
			fmt.Fprintf(sb, "Spawn(%d,%d)", s.To, s.ChildTo)
		}
		sb.WriteString("\n    }\n")
		i++
	}
}

func emitTrans(sb *strings.Builder, p *simd.Program, mc *simd.MetaCode) {
	tr := &mc.Trans
	switch tr.Kind {
	case simd.TransNone:
		sb.WriteString("    /* no next meta state */\n    exit(0);\n")
	case simd.TransGoto:
		if tr.ExitCheck {
			sb.WriteString("    apc = globalor(pc);\n    if (apc == 0) exit(0);\n")
		}
		fmt.Fprintf(sb, "    goto %s;\n", msName(p.Meta[tr.Entries[0].To].Set))
	case simd.TransSwitch:
		sb.WriteString("    apc = globalor(pc);\n    if (apc == 0) exit(0);\n")
		if !p.Barriers.Empty() {
			fmt.Fprintf(sb, "    if ((apc & ~BARRIERS) != 0) apc &= ~BARRIERS; /* §3.2.4 */\n")
		}
		if tr.Hash != nil {
			fmt.Fprintf(sb, "    switch (%s) {\n", tr.Hash.String())
			for idx, to := range tr.Hash.Table {
				if to < 0 {
					continue
				}
				fmt.Fprintf(sb, "    case %d: goto %s;\n", idx, msName(p.Meta[to].Set))
			}
		} else {
			sb.WriteString("    switch (apc) {\n")
			for _, e := range tr.Entries {
				fmt.Fprintf(sb, "    case %s: goto %s;\n",
					strings.ReplaceAll(strings.TrimPrefix(guardExpr(e.Key), "pc & "), "pc & ", ""),
					msName(p.Meta[e.To].Set))
			}
		}
		sb.WriteString("    }\n")
	}
}
