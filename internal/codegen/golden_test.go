package codegen

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"msc/internal/msc"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestListing4Golden pins the full MPL emission for the paper's example
// program. Regenerate with `go test ./internal/codegen -run Golden -update`
// after an intentional change.
func TestListing4Golden(t *testing.T) {
	g := buildGraph(t, listing4)
	a := msc.MustConvert(g, msc.DefaultOptions(false))
	p := MustCompile(a, Options{Hash: true, CSI: true})
	got := EmitMPL(p)

	path := filepath.Join("testdata", "listing4.mpl.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("MPL emission drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
