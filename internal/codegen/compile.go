// Package codegen compiles a meta-state automaton into an executable
// SIMD program (§3): each meta state becomes a sequence of pc-guarded
// slots (the Listing 5 `if (pc & BIT(n))` blocks), block terminators
// become pc updates (JumpF and friends), and the multiway transitions
// become global-or dispatches, optionally through customized hash
// functions ([Die92a]) and optionally with common subexpression
// induction ([Die92]) applied to each meta state's body.
package codegen

import (
	"errors"
	"fmt"

	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/csi"
	"msc/internal/hashgen"
	"msc/internal/msc"
	"msc/internal/mscerr"
	"msc/internal/obs"
	"msc/internal/simd"
)

// Options selects the §3 encoding optimizations.
type Options struct {
	// Hash attaches customized hash functions to multiway branches so
	// they dispatch through dense jump tables (§3.2.3, [Die92a]).
	// Requires the MIMD pc domain to fit 64 states; wider programs fall
	// back to map dispatch per state.
	Hash bool
	// CSI applies common subexpression induction to each meta state
	// body, factoring operations shared by multiple threads into single
	// broadcast slots (§3.1, [Die92]).
	CSI bool
	// MaxCSICandidates bounds the total merge candidates the CSI
	// permutation search may examine per meta state (0 = unlimited).
	// Exceeding it returns an *mscerr.BudgetError so callers can fall
	// back to the linear schedule deliberately.
	MaxCSICandidates int64
	// Metrics, when non-nil, receives coding counters: CSI cycles and
	// slots saved, hash-search candidates tried, hash tables built, and
	// total dispatch entries.
	Metrics *obs.Recorder
}

// Compile lowers an automaton to a SIMD program.
func Compile(a *msc.Automaton, opt Options) (*simd.Program, error) {
	p := &simd.Program{
		Start:            a.Start,
		Words:            a.G.Words,
		NStates:          len(a.G.Blocks),
		Barriers:         a.Barriers.Clone(),
		SupersetDispatch: a.Opt.Compress || a.Opt.MergeSubsets || a.OverApprox,
		VarSlot:          a.G.VarSlot,
		RetSlot:          a.G.RetSlot,
	}
	for _, ms := range a.States {
		mc, err := compileMeta(a, ms, opt)
		if err != nil {
			return nil, err
		}
		p.Meta = append(p.Meta, mc)
	}
	return p, nil
}

// MustCompile compiles and panics on error; for tests and examples.
func MustCompile(a *msc.Automaton, opt Options) *simd.Program {
	p, err := Compile(a, opt)
	if err != nil {
		panic("codegen.MustCompile: " + err.Error())
	}
	return p
}

func compileMeta(a *msc.Automaton, ms *msc.MetaState, opt Options) (*simd.MetaCode, error) {
	mc := &simd.MetaCode{ID: ms.ID, Set: ms.Set.Clone()}

	// Which members execute: in exact barrier mode, barrier-wait states
	// inside a mixed meta state just wait (§2.6); in paper mode mixed
	// states never exist and all-barrier states execute on release.
	allBarrier := ms.Set.Subset(a.Barriers)
	var members []*cfg.Block
	for _, id := range ms.Set.Elems() {
		b := a.G.Block(id)
		if b == nil {
			return nil, fmt.Errorf("codegen: ms%d references missing MIMD state %d", ms.ID, id)
		}
		if b.Barrier && !allBarrier {
			continue // waiting: contributes no code, pc unchanged
		}
		members = append(members, b)
	}

	// Body: one guarded slot per instruction, optionally CSI-merged.
	if opt.CSI {
		threads := make([]csi.Thread, len(members))
		for i, b := range members {
			threads[i] = csi.Thread{Guard: bitset.Of(b.ID), Code: b.Code}
		}
		sched, err := csi.InduceLimited(threads, csi.Limits{MaxCandidates: opt.MaxCSICandidates})
		if err != nil {
			var be *mscerr.BudgetError
			if errors.As(err, &be) {
				// Attribute the overrun to the codegen phase the pipeline
				// reports; the resource name still says csi_candidates.
				be.Phase = "codegen"
				return nil, be
			}
			return nil, fmt.Errorf("codegen: ms%d: %w", ms.ID, err)
		}
		opt.Metrics.Add(obs.CounterCSISavedCycles, int64(sched.Saved()))
		opt.Metrics.Add(obs.CounterCSISlotsSaved, int64(sched.SlotsSaved()))
		for _, sl := range sched.Slots {
			// A CSI-merged slot serves every state in its guard; the
			// minimum member is the deterministic representative the
			// profiler attributes its cycles to.
			mc.Slots = append(mc.Slots, simd.Slot{
				Kind:  simd.SlotExec,
				Guard: sl.Guard,
				Instr: sl.Instr,
				Block: sl.Guard.Min(),
				Pos:   sl.Instr.Pos,
			})
		}
	} else {
		for _, b := range members {
			guard := bitset.Of(b.ID)
			for _, in := range b.Code {
				mc.Slots = append(mc.Slots, simd.Slot{
					Kind:  simd.SlotExec,
					Guard: guard,
					Instr: in,
					Block: b.ID,
					Pos:   in.Pos,
				})
			}
		}
	}

	// Terminators, in member order (Listing 5 places all pc updates
	// after the shared body).
	exitCheck := false
	for _, b := range members {
		guard := bitset.Of(b.ID)
		switch b.Term {
		case cfg.End:
			mc.Slots = append(mc.Slots, simd.Slot{Kind: simd.SlotEnd, Guard: guard, Block: b.ID, Pos: b.Pos})
			exitCheck = true
		case cfg.Halt:
			mc.Slots = append(mc.Slots, simd.Slot{Kind: simd.SlotHalt, Guard: guard, Block: b.ID, Pos: b.Pos})
			exitCheck = true
		case cfg.Goto:
			mc.Slots = append(mc.Slots, simd.Slot{Kind: simd.SlotSetPC, Guard: guard, To: b.Next, Block: b.ID, Pos: b.Pos})
		case cfg.Branch:
			mc.Slots = append(mc.Slots, simd.Slot{
				Kind: simd.SlotJumpF, Guard: guard, To: b.Next, FTo: b.FNext, Block: b.ID, Pos: b.Pos,
			})
		case cfg.RetBr:
			mc.Slots = append(mc.Slots, simd.Slot{Kind: simd.SlotRetBr, Guard: guard, Block: b.ID, Pos: b.Pos})
		case cfg.Spawn:
			mc.Slots = append(mc.Slots, simd.Slot{
				Kind: simd.SlotSpawn, Guard: guard, To: b.Next, ChildTo: b.SpawnNext, Block: b.ID, Pos: b.Pos,
			})
		}
	}

	// Transition encoding (§3.2).
	for _, to := range ms.Trans {
		mc.Trans.Entries = append(mc.Trans.Entries, simd.DispatchEntry{
			Key: a.States[to].Set.Clone(),
			To:  to,
		})
	}
	opt.Metrics.Add(obs.CounterDispatchEntries, int64(len(mc.Trans.Entries)))
	switch {
	case len(mc.Trans.Entries) == 0:
		mc.Trans.Kind = simd.TransNone
	case len(mc.Trans.Entries) == 1:
		mc.Trans.Kind = simd.TransGoto
		mc.Trans.ExitCheck = exitCheck
	default:
		mc.Trans.Kind = simd.TransSwitch
		if opt.Hash && !(a.Opt.Compress || a.Opt.MergeSubsets || a.OverApprox) {
			// Superset dispatch cannot go through an exact hash table.
			if h := hashTable(mc.Trans.Entries, opt.Metrics); h != nil {
				mc.Trans.Hash = h
				opt.Metrics.Add(obs.CounterHashTables, 1)
			}
		}
	}
	return mc, nil
}

// maxHashedWays bounds the switch width worth a customized hash: wider
// dispatches keep the generic map lookup ([Die92a] targets the small
// switches real meta states produce).
const maxHashedWays = 32

// hashTable builds a customized hash function over the dispatch keys, or
// nil when the keys exceed the one-bit-per-pc word or no function is
// found. Search effort is recorded on rec even when the search fails.
func hashTable(entries []simd.DispatchEntry, rec *obs.Recorder) *simd.HashFn {
	if len(entries) > maxHashedWays {
		return nil
	}
	keys := make([]uint64, len(entries))
	tos := make([]int, len(entries))
	for i, e := range entries {
		w, ok := e.Key.Word()
		if !ok {
			return nil
		}
		keys[i] = w
		tos[i] = e.To
	}
	h, tried, err := hashgen.Search(keys)
	rec.Add(obs.CounterHashTried, int64(tried))
	if err != nil {
		return nil
	}
	table := make([]int, h.Mask+1)
	for i := range table {
		table[i] = -1
	}
	for i, k := range keys {
		table[h.Index(k)] = tos[i]
	}
	h.Table = table
	return h
}
