package gobackend

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"msc/internal/cfg"
	"msc/internal/codegen"
	"msc/internal/mimdsim"
	"msc/internal/msc"
)

func compileProgram(t *testing.T, src string, conf msc.Options, code codegen.Options) (*cfg.Graph, string) {
	t.Helper()
	g := cfg.Simplify(cfg.MustBuild(src))
	a, err := msc.Convert(g, conf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Compile(a, code)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Emit(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g, out
}

// TestEmittedSourceParses checks the generated program is valid Go for
// every conversion flavor.
func TestEmittedSourceParses(t *testing.T) {
	src := `
poly int val, sum;
void main()
{
    poly int j;
    val = iproc + 1;
    wait;
    sum = 0;
    for (j = 0; j < nproc; j = j + 1) {
        sum = sum + val[[j]];
    }
    return;
}
`
	for _, conf := range []msc.Options{
		msc.DefaultOptions(false),
		msc.DefaultOptions(true),
	} {
		for _, code := range []codegen.Options{{}, {Hash: true, CSI: true}} {
			_, out := compileProgram(t, src, conf, code)
			fset := token.NewFileSet()
			if _, err := parser.ParseFile(fset, "gen.go", out, 0); err != nil {
				t.Fatalf("generated code does not parse: %v\n%s", err, out)
			}
			for _, want := range []string{"func run(", "apcOf", "switch ms {"} {
				if !strings.Contains(out, want) {
					t.Fatalf("generated code missing %q", want)
				}
			}
		}
	}
}

// TestEmittedProgramRuns builds and executes generated programs with the
// Go toolchain and compares their printed variables against the MIMD
// reference simulation.
func TestEmittedProgramRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain invocation skipped in -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	workloads := []struct {
		name, src string
		n         int
	}{
		{"collatz", `
poly int n, steps;
void main()
{
    n = iproc * 7 + 27;
    steps = 0;
    while (n != 1) {
        if (n % 2) { n = 3 * n + 1; } else { n = n / 2; }
        steps = steps + 1;
    }
    return;
}
`, 6},
		{"reduction", `
poly int val, sum;
void main()
{
    poly int j;
    val = iproc + 1;
    wait;
    sum = 0;
    for (j = 0; j < nproc; j = j + 1) {
        sum = sum + val[[j]];
    }
    return;
}
`, 5},
		{"calls", `
poly int r;
int gcd(int a, int b) { if (b == 0) { return a; } return gcd(b, a % b); }
void main()
{
    r = gcd(iproc * 6 + 12, 18);
    return;
}
`, 4},
	}
	for _, wl := range workloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			g, out := compileProgram(t, wl.src,
				msc.DefaultOptions(true), codegen.Options{CSI: true})
			dir := t.TempDir()
			path := filepath.Join(dir, "gen.go")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command("go", "run", path, "-n", fmt.Sprint(wl.n))
			cmd.Env = append(os.Environ(), "GO111MODULE=off", "GOFLAGS=")
			raw, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run failed: %v\n%s\n--- generated ---\n%s", err, raw, out)
			}

			ref, err := mimdsim.Run(g, mimdsim.Config{N: wl.n})
			if err != nil {
				t.Fatal(err)
			}
			got := parseDump(t, string(raw))
			for name, slot := range g.VarSlot {
				vals, ok := got[name]
				if !ok {
					t.Fatalf("variable %s missing from output:\n%s", name, raw)
				}
				for pe := 0; pe < wl.n; pe++ {
					if vals[pe] != int64(ref.Mem[pe][slot]) {
						t.Fatalf("%s PE %d: native %d != reference %d",
							name, pe, vals[pe], ref.Mem[pe][slot])
					}
				}
			}
		})
	}
}

func parseDump(t *testing.T, out string) map[string][]int64 {
	t.Helper()
	res := make(map[string][]int64)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		var vals []int64
		for _, f := range fields[1:] {
			var v int64
			if _, err := fmt.Sscan(f, &v); err != nil {
				t.Fatalf("bad dump line %q", line)
			}
			vals = append(vals, v)
		}
		res[fields[0]] = vals
	}
	return res
}

func TestEmitRejectsWidePrograms(t *testing.T) {
	// Fake a program with too many states.
	g, _ := compileProgram(t, `void main() { return; }`, msc.DefaultOptions(false), codegen.Options{})
	_ = g
	a, err := msc.Convert(cfg.Simplify(cfg.MustBuild(`void main() { return; }`)), msc.DefaultOptions(false))
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Compile(a, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.NStates = 65
	if _, err := Emit(p, 4); err == nil {
		t.Fatal("wide program accepted")
	}
}

// TestEmittedDispatchVariants runs generated programs through the
// remaining dispatch shapes: hashed base-mode switches, barrier
// subtraction, spawn over the free pool, and superset fallback.
func TestEmittedDispatchVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain invocation skipped in -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	cases := []struct {
		name, src string
		n, active int
		conf      msc.Options
		code      codegen.Options
	}{
		{
			name: "hashed-base",
			src: `
poly int x;
void main()
{
    x = iproc % 3;
    if (x) {
        do { x = x - 1; } while (x);
    } else {
        do { x = x + 2; } while (x < 4);
    }
    x = x + 100;
    return;
}
`,
			n: 7, conf: msc.DefaultOptions(false), code: codegen.Options{Hash: true},
		},
		{
			name: "barrier-stencil",
			src: `
poly int cell, left, right;
void main()
{
    poly int round;
    cell = (iproc * 13) % 31;
    for (round = 0; round < 3; round = round + 1) {
        wait;
        left = cell[[iproc - 1]];
        right = cell[[iproc + 1]];
        wait;
        cell = (left + 2 * cell + right) / 4;
    }
    return;
}
`,
			n: 6, conf: msc.DefaultOptions(false), code: codegen.Options{Hash: true, CSI: true},
		},
		{
			name: "spawn-farm",
			src: `
poly int result;
void worker()
{
    poly int k;
    for (k = 0; k < iproc + 2; k = k + 1) { result = result + k * k; }
    halt;
}
void main()
{
    spawn worker();
    spawn worker();
    return;
}
`,
			n: 5, active: 1, conf: msc.DefaultOptions(true), code: codegen.Options{CSI: true},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			g, out := compileProgram2(t, c.src, c.conf, c.code)
			dir := t.TempDir()
			path := filepath.Join(dir, "gen.go")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				t.Fatal(err)
			}
			args := []string{"run", path, "-n", fmt.Sprint(c.n)}
			if c.active != 0 {
				args = append(args, "-active", fmt.Sprint(c.active))
			}
			cmd := exec.Command("go", args...)
			cmd.Env = append(os.Environ(), "GO111MODULE=off", "GOFLAGS=")
			raw, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run failed: %v\n%s", err, raw)
			}
			ref, err := mimdsim.Run(g, mimdsim.Config{N: c.n, InitialActive: c.active})
			if err != nil {
				t.Fatal(err)
			}
			got := parseDump(t, string(raw))
			for name, slot := range g.VarSlot {
				for pe := 0; pe < c.n; pe++ {
					if got[name][pe] != int64(ref.Mem[pe][slot]) {
						t.Fatalf("%s PE %d: native %d != reference %d",
							name, pe, got[name][pe], ref.Mem[pe][slot])
					}
				}
			}
		})
	}
}

// compileProgram2 mirrors compileProgram but takes explicit options.
func compileProgram2(t *testing.T, src string, conf msc.Options, code codegen.Options) (*cfg.Graph, string) {
	t.Helper()
	return compileProgram(t, src, conf, code)
}

// TestEmittedDivergentBarrier: the native program must release barrier
// waiters that were stranded by threads ending elsewhere — the global
// release() path.
func TestEmittedDivergentBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain invocation skipped in -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	src := `
poly int x;
void main()
{
    if (iproc % 2) {
        wait;
        x = 100;
    } else {
        x = iproc;
    }
    x = x + 1;
    return;
}
`
	g, out := compileProgram(t, src, msc.DefaultOptions(false), codegen.Options{Hash: true})
	if !strings.Contains(out, "func release(") {
		t.Fatalf("generated code missing release()")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "gen.go")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", path, "-n", "6")
	cmd.Env = append(os.Environ(), "GO111MODULE=off", "GOFLAGS=")
	raw, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s", err, raw)
	}
	ref, err := mimdsim.Run(g, mimdsim.Config{N: 6})
	if err != nil {
		t.Fatal(err)
	}
	got := parseDump(t, string(raw))
	slot := g.VarSlot["x"]
	for pe := 0; pe < 6; pe++ {
		if got["x"][pe] != int64(ref.Mem[pe][slot]) {
			t.Fatalf("PE %d: native %d != reference %d", pe, got["x"][pe], ref.Mem[pe][slot])
		}
	}
}

// TestEmittedOpZoo pushes every opcode family through the backend and
// runs the result natively: arrays, bitwise ops, shifts, floats,
// conversions, mono broadcast, remote writes, ternary, and unary ops.
func TestEmittedOpZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("toolchain invocation skipped in -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	src := `
mono int scale;
poly int a[4], bits, outv;
poly float f;
void main()
{
    poly int i, t;
    if (iproc == 0) { scale = 3; }
    wait;
    for (i = 0; i < 4; i = i + 1) { a[i] = (i * scale) ^ 5; }
    bits = ((a[1] << 2) | (a[2] >> 1)) & 255;
    bits = ~bits % 97;
    f = bits * 1.5 + 0.25;
    t = f;
    outv = t > 0 ? t : -t;
    outv = outv + !bits;
    outv[[iproc + 1]] = outv;
    wait;
    return;
}
`
	g, out := compileProgram(t, src, msc.DefaultOptions(true), codegen.Options{CSI: true})
	dir := t.TempDir()
	path := filepath.Join(dir, "gen.go")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", path, "-n", "4")
	cmd.Env = append(os.Environ(), "GO111MODULE=off", "GOFLAGS=")
	raw, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s", err, raw)
	}
	ref, err := mimdsim.Run(g, mimdsim.Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := parseDump(t, string(raw))
	for name, slot := range g.VarSlot {
		for pe := 0; pe < 4; pe++ {
			if got[name][pe] != int64(ref.Mem[pe][slot]) {
				t.Fatalf("%s PE %d: native %d != reference %d",
					name, pe, got[name][pe], ref.Mem[pe][slot])
			}
		}
	}
}
