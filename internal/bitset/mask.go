package bitset

import "math/bits"

// Mask is a fixed-width bit mask: one bit per item, 64 items per word,
// indexed directly by word for hot loops. Unlike Set it never grows and
// exposes its words, so engines can fuse per-item tests into word ANDs,
// ORs, and popcounts — the representation the SIMD VM uses for its
// per-PE enable/idle/done/dirty masks. Bits at or beyond the width it
// was created with must stay zero; every helper preserves that.
type Mask []uint64

// MaskWords returns the number of 64-bit words a width-n Mask needs.
func MaskWords(n int) int {
	return (n + wordBits - 1) / wordBits
}

// NewMask returns an all-zero mask for n items.
func NewMask(n int) Mask {
	return make(Mask, MaskWords(n))
}

// Set sets bit i.
func (m Mask) Set(i int) {
	m[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (m Mask) Clear(i int) {
	m[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports bit i.
func (m Mask) Has(i int) bool {
	return m[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits (one popcount per word).
func (m Mask) Count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountRange returns the number of set bits in words [w0, w1).
func (m Mask) CountRange(w0, w1 int) int {
	n := 0
	for _, w := range m[w0:w1] {
		n += bits.OnesCount64(w)
	}
	return n
}

// Zero clears every bit, keeping the backing array.
func (m Mask) Zero() {
	for i := range m {
		m[i] = 0
	}
}

// FillFirst sets bits [0, k) and clears the rest.
func (m Mask) FillFirst(k int) {
	for w := range m {
		switch {
		case k >= (w+1)*wordBits:
			m[w] = ^uint64(0)
		case k <= w*wordBits:
			m[w] = 0
		default:
			m[w] = (1 << (uint(k) % wordBits)) - 1
		}
	}
}

// OrWith ors t into m word-wise. t must have the same width.
func (m Mask) OrWith(t Mask) {
	for i, w := range t {
		m[i] |= w
	}
}

// CopyFrom overwrites m with t word-wise. t must have the same width.
func (m Mask) CopyFrom(t Mask) {
	copy(m, t)
}
