package bitset

import (
	"math/rand"
	"testing"
)

func TestMaskBasics(t *testing.T) {
	m := NewMask(130)
	if len(m) != 3 {
		t.Fatalf("MaskWords(130) = %d words, want 3", len(m))
	}
	for _, i := range []int{0, 1, 63, 64, 127, 128, 129} {
		m.Set(i)
		if !m.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if m.Count() != 7 {
		t.Fatalf("Count = %d, want 7", m.Count())
	}
	m.Clear(64)
	if m.Has(64) || m.Count() != 6 {
		t.Fatalf("Clear(64) failed: count %d", m.Count())
	}
	if got := m.CountRange(0, 1); got != 3 {
		t.Fatalf("CountRange(0,1) = %d, want 3", got)
	}
	m.Zero()
	if m.Count() != 0 {
		t.Fatal("Zero left bits set")
	}
}

func TestMaskFillFirst(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 200} {
		m := NewMask(n)
		for k := 0; k <= n; k += max(1, n/7) {
			m.FillFirst(k)
			if m.Count() != k {
				t.Fatalf("n=%d FillFirst(%d): count %d", n, k, m.Count())
			}
			if k < n && m.Has(k) {
				t.Fatalf("n=%d FillFirst(%d): bit %d set", n, k, k)
			}
			if k > 0 && !m.Has(k-1) {
				t.Fatalf("n=%d FillFirst(%d): bit %d clear", n, k, k-1)
			}
		}
	}
}

func TestMaskOrCopyMatchesSet(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 300
	a, b := NewMask(n), NewMask(n)
	sa, sb := New(n), New(n)
	for i := 0; i < 120; i++ {
		x, y := r.Intn(n), r.Intn(n)
		a.Set(x)
		sa.Add(x)
		b.Set(y)
		sb.Add(y)
	}
	a.OrWith(b)
	sa.UnionWith(sb)
	for i := 0; i < n; i++ {
		if a.Has(i) != sa.Has(i) {
			t.Fatalf("OrWith disagrees with Set union at bit %d", i)
		}
	}
	c := NewMask(n)
	c.CopyFrom(a)
	for i := 0; i < n; i++ {
		if c.Has(i) != a.Has(i) {
			t.Fatalf("CopyFrom disagrees at bit %d", i)
		}
	}
	if c.Count() != sa.Len() {
		t.Fatalf("Count %d != Set.Len %d", c.Count(), sa.Len())
	}
}
