package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(10)
	if !s.Empty() {
		t.Fatalf("new set not empty")
	}
	s.Add(3)
	s.Add(200) // forces growth past one word
	s.Add(3)   // duplicate add is a no-op
	if !s.Has(3) || !s.Has(200) {
		t.Fatalf("missing added elements: %v", s)
	}
	if s.Has(4) || s.Has(199) || s.Has(-1) {
		t.Fatalf("spurious elements: %v", s)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	s.Remove(3)
	if s.Has(3) {
		t.Fatalf("Remove failed")
	}
	s.Remove(3)    // removing absent id is a no-op
	s.Remove(5000) // beyond allocated words is a no-op
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Add(-1) did not panic")
		}
	}()
	New(0).Add(-1)
}

func TestOfAndElems(t *testing.T) {
	s := Of(9, 2, 6, 2)
	want := []int{2, 6, 9}
	if got := s.Elems(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %d/%d, want 2/9", s.Min(), s.Max())
	}
	if s.String() != "{2,6,9}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestEmptyMinMax(t *testing.T) {
	s := New(0)
	if s.Min() != -1 || s.Max() != -1 {
		t.Fatalf("empty Min/Max = %d/%d, want -1/-1", s.Min(), s.Max())
	}
	if s.String() != "{}" {
		t.Fatalf("empty String = %q", s.String())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(1, 2, 3, 70)
	b := Of(3, 4, 70, 130)
	if got := a.Union(b).Elems(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 70, 130}) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b).Elems(); !reflect.DeepEqual(got, []int{3, 70}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Minus(b).Elems(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Minus = %v", got)
	}
	if !a.Intersects(b) || a.Intersects(Of(99)) {
		t.Fatalf("Intersects wrong")
	}
	if !Of(3).Subset(a) || Of(3, 5).Subset(a) {
		t.Fatalf("Subset wrong")
	}
	c := a.Clone()
	c.UnionWith(b)
	if !c.Equal(a.Union(b)) {
		t.Fatalf("UnionWith = %v", c)
	}
	if !a.Equal(Of(70, 3, 2, 1)) {
		t.Fatalf("Equal order-sensitive")
	}
}

func TestEqualDifferentWordLengths(t *testing.T) {
	a := Of(1)
	b := Of(1)
	b.Add(200)
	b.Remove(200) // leaves trailing zero words allocated
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatalf("Equal should ignore trailing zero words")
	}
	if a.Key() != b.Key() {
		t.Fatalf("Key should ignore trailing zero words")
	}
}

func TestWordFastPath(t *testing.T) {
	s := Of(0, 5, 63)
	w, ok := s.Word()
	if !ok || w != 1|1<<5|1<<63 {
		t.Fatalf("Word = %x, %v", w, ok)
	}
	s.Add(64)
	if _, ok := s.Word(); ok {
		t.Fatalf("Word should report overflow past bit 63")
	}
	if w2, ok := FromWord(w).Word(); !ok || w2 != w {
		t.Fatalf("FromWord roundtrip = %x, %v", w2, ok)
	}
	if !FromWord(0).Empty() {
		t.Fatalf("FromWord(0) not empty")
	}
}

// randomIDs converts quick-generated raw values into small non-negative ids.
func randomIDs(raw []uint16) []int {
	ids := make([]int, len(raw))
	for i, v := range raw {
		ids[i] = int(v % 300)
	}
	return ids
}

func TestQuickElemsSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		s := Of(randomIDs(raw)...)
		e := s.Elems()
		return sort.IntsAreSorted(e) && len(e) == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionCommutes(t *testing.T) {
	f := func(ra, rb []uint16) bool {
		a, b := Of(randomIDs(ra)...), Of(randomIDs(rb)...)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// a − (b ∪ c) == (a − b) − c
	f := func(ra, rb, rc []uint16) bool {
		a, b, c := Of(randomIDs(ra)...), Of(randomIDs(rb)...), Of(randomIDs(rc)...)
		return a.Minus(b.Union(c)).Equal(a.Minus(b).Minus(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectViaMinus(t *testing.T) {
	// a ∩ b == a − (a − b)
	f := func(ra, rb []uint16) bool {
		a, b := Of(randomIDs(ra)...), Of(randomIDs(rb)...)
		return a.Intersect(b).Equal(a.Minus(a.Minus(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyCanonical(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		ids := randomIDs(raw)
		a := Of(ids...)
		// Insert in a different order; keys must match.
		r := rand.New(rand.NewSource(seed))
		b := New(0)
		for _, i := range r.Perm(len(ids)) {
			b.Add(ids[i])
		}
		return a.Key() == b.Key() && a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetUnion(t *testing.T) {
	f := func(ra, rb []uint16) bool {
		a, b := Of(randomIDs(ra)...), Of(randomIDs(rb)...)
		u := a.Union(b)
		return a.Subset(u) && b.Subset(u) && a.Intersect(b).Subset(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnion(b *testing.B) {
	x := Of(1, 5, 9, 64, 128, 200)
	y := Of(2, 5, 70, 199)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Union(y)
	}
}

func BenchmarkKey(b *testing.B) {
	x := Of(1, 5, 9, 64, 128, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Key()
	}
}
