package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(10)
	if !s.Empty() {
		t.Fatalf("new set not empty")
	}
	s.Add(3)
	s.Add(200) // forces growth past one word
	s.Add(3)   // duplicate add is a no-op
	if !s.Has(3) || !s.Has(200) {
		t.Fatalf("missing added elements: %v", s)
	}
	if s.Has(4) || s.Has(199) || s.Has(-1) {
		t.Fatalf("spurious elements: %v", s)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	s.Remove(3)
	if s.Has(3) {
		t.Fatalf("Remove failed")
	}
	s.Remove(3)    // removing absent id is a no-op
	s.Remove(5000) // beyond allocated words is a no-op
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Add(-1) did not panic")
		}
	}()
	New(0).Add(-1)
}

func TestOfAndElems(t *testing.T) {
	s := Of(9, 2, 6, 2)
	want := []int{2, 6, 9}
	if got := s.Elems(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %d/%d, want 2/9", s.Min(), s.Max())
	}
	if s.String() != "{2,6,9}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestEmptyMinMax(t *testing.T) {
	s := New(0)
	if s.Min() != -1 || s.Max() != -1 {
		t.Fatalf("empty Min/Max = %d/%d, want -1/-1", s.Min(), s.Max())
	}
	if s.String() != "{}" {
		t.Fatalf("empty String = %q", s.String())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(1, 2, 3, 70)
	b := Of(3, 4, 70, 130)
	if got := a.Union(b).Elems(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 70, 130}) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b).Elems(); !reflect.DeepEqual(got, []int{3, 70}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Minus(b).Elems(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Minus = %v", got)
	}
	if !a.Intersects(b) || a.Intersects(Of(99)) {
		t.Fatalf("Intersects wrong")
	}
	if !Of(3).Subset(a) || Of(3, 5).Subset(a) {
		t.Fatalf("Subset wrong")
	}
	c := a.Clone()
	c.UnionWith(b)
	if !c.Equal(a.Union(b)) {
		t.Fatalf("UnionWith = %v", c)
	}
	if !a.Equal(Of(70, 3, 2, 1)) {
		t.Fatalf("Equal order-sensitive")
	}
}

func TestEqualDifferentWordLengths(t *testing.T) {
	a := Of(1)
	b := Of(1)
	b.Add(200)
	b.Remove(200) // leaves trailing zero words allocated
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatalf("Equal should ignore trailing zero words")
	}
	if a.Key() != b.Key() {
		t.Fatalf("Key should ignore trailing zero words")
	}
}

func TestWordFastPath(t *testing.T) {
	s := Of(0, 5, 63)
	w, ok := s.Word()
	if !ok || w != 1|1<<5|1<<63 {
		t.Fatalf("Word = %x, %v", w, ok)
	}
	s.Add(64)
	if _, ok := s.Word(); ok {
		t.Fatalf("Word should report overflow past bit 63")
	}
	if w2, ok := FromWord(w).Word(); !ok || w2 != w {
		t.Fatalf("FromWord roundtrip = %x, %v", w2, ok)
	}
	if !FromWord(0).Empty() {
		t.Fatalf("FromWord(0) not empty")
	}
}

// randomIDs converts quick-generated raw values into small non-negative ids.
func randomIDs(raw []uint16) []int {
	ids := make([]int, len(raw))
	for i, v := range raw {
		ids[i] = int(v % 300)
	}
	return ids
}

func TestQuickElemsSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		s := Of(randomIDs(raw)...)
		e := s.Elems()
		return sort.IntsAreSorted(e) && len(e) == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionCommutes(t *testing.T) {
	f := func(ra, rb []uint16) bool {
		a, b := Of(randomIDs(ra)...), Of(randomIDs(rb)...)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// a − (b ∪ c) == (a − b) − c
	f := func(ra, rb, rc []uint16) bool {
		a, b, c := Of(randomIDs(ra)...), Of(randomIDs(rb)...), Of(randomIDs(rc)...)
		return a.Minus(b.Union(c)).Equal(a.Minus(b).Minus(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectViaMinus(t *testing.T) {
	// a ∩ b == a − (a − b)
	f := func(ra, rb []uint16) bool {
		a, b := Of(randomIDs(ra)...), Of(randomIDs(rb)...)
		return a.Intersect(b).Equal(a.Minus(a.Minus(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyCanonical(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		ids := randomIDs(raw)
		a := Of(ids...)
		// Insert in a different order; keys must match.
		r := rand.New(rand.NewSource(seed))
		b := New(0)
		for _, i := range r.Perm(len(ids)) {
			b.Add(ids[i])
		}
		return a.Key() == b.Key() && a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetUnion(t *testing.T) {
	f := func(ra, rb []uint16) bool {
		a, b := Of(randomIDs(ra)...), Of(randomIDs(rb)...)
		u := a.Union(b)
		return a.Subset(u) && b.Subset(u) && a.Intersect(b).Subset(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnion(b *testing.B) {
	x := Of(1, 5, 9, 64, 128, 200)
	y := Of(2, 5, 70, 199)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Union(y)
	}
}

func BenchmarkKey(b *testing.B) {
	x := Of(1, 5, 9, 64, 128, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Key()
	}
}

func TestQuickHashMatchesEqual(t *testing.T) {
	if err := quick.Check(func(ra, rb []uint16) bool {
		a, b := Of(randomIDs(ra)...), Of(randomIDs(rb)...)
		if a.Equal(b) && a.Hash() != b.Hash() {
			return false
		}
		// Capacity padding must not change the hash.
		c := a.Clone()
		c.grow(len(c.words) + 3)
		return c.Hash() == a.Hash()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareMatchesKeyOrder(t *testing.T) {
	if err := quick.Check(func(ra, rb []uint16) bool {
		a, b := Of(randomIDs(ra)...), Of(randomIDs(rb)...)
		want := strings.Compare(a.Key(), b.Key())
		if a.Compare(b) != want || b.Compare(a) != -want {
			return false
		}
		// Padding must not change the order either.
		c := a.Clone()
		c.grow(len(c.words) + 2)
		return c.Compare(b) == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortMatchesKeyOrder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var ss []*Set
	for i := 0; i < 100; i++ {
		s := New(0)
		for j := 0; j < r.Intn(8); j++ {
			s.Add(r.Intn(200))
		}
		ss = append(ss, s)
	}
	byKey := append([]*Set(nil), ss...)
	sort.Slice(byKey, func(i, j int) bool { return byKey[i].Key() < byKey[j].Key() })
	Sort(ss)
	for i := range ss {
		if !ss[i].Equal(byKey[i]) {
			t.Fatalf("Sort order diverges from Key order at %d: %s vs %s", i, ss[i], byKey[i])
		}
	}
}

func TestInPlaceOps(t *testing.T) {
	a, b := Of(1, 2, 65, 130), Of(2, 3, 65)
	dst := New(0)
	dst.UnionOf(a, b)
	if !dst.Equal(a.Union(b)) {
		t.Fatalf("UnionOf = %s, want %s", dst, a.Union(b))
	}
	// Reuse with a now-larger backing array: stale high words must clear.
	dst.UnionOf(Of(1), Of(2))
	if !dst.Equal(Of(1, 2)) {
		t.Fatalf("UnionOf reuse = %s, want {1,2}", dst)
	}
	dst.IntersectOf(a, b)
	if !dst.Equal(a.Intersect(b)) {
		t.Fatalf("IntersectOf = %s, want %s", dst, a.Intersect(b))
	}
	dst.MinusOf(a, b)
	if !dst.Equal(a.Minus(b)) {
		t.Fatalf("MinusOf = %s, want %s", dst, a.Minus(b))
	}
	dst.CopyFrom(a)
	if !dst.Equal(a) {
		t.Fatalf("CopyFrom = %s, want %s", dst, a)
	}
	dst.Reset()
	if !dst.Empty() || dst.Hash() != New(0).Hash() {
		t.Fatalf("Reset left elements behind: %s", dst)
	}
}

func TestForEachMatchesElems(t *testing.T) {
	s := Of(0, 7, 63, 64, 129)
	var got []int
	s.ForEach(func(id int) { got = append(got, id) })
	want := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}
