// Package bitset implements dense bit sets used to represent meta states:
// aggregate sets of MIMD state IDs. A meta state is exactly the "apc"
// (aggregate program counter) of the paper's §3.2.3 — the global-or of
// 1<<pc over all processing elements — generalized past 64 states.
package bitset

import (
	"fmt"
	"math/bits"
	"slices"
	"strings"
)

const wordBits = 64

// Set is a dense bit set. The zero value is an empty set ready to use.
// Methods that mutate the receiver have pointer receivers; all others
// accept value receivers and never modify their operands.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity hints for ids < n.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Of returns a set containing exactly the given ids.
func Of(ids ...int) *Set {
	s := &Set{}
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// FromWord returns a set whose first 64 bits are w (the uint64 apc fast
// path of §3.2.3).
func FromWord(w uint64) *Set {
	if w == 0 {
		return &Set{}
	}
	return &Set{words: []uint64{w}}
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts id into the set. id must be non-negative.
func (s *Set) Add(id int) {
	if id < 0 {
		panic(fmt.Sprintf("bitset: negative id %d", id))
	}
	w := id / wordBits
	s.grow(w)
	s.words[w] |= 1 << (uint(id) % wordBits)
}

// Remove deletes id from the set; removing an absent id is a no-op.
func (s *Set) Remove(id int) {
	w := id / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(id) % wordBits)
	}
}

// Has reports whether id is in the set.
func (s *Set) Has(id int) bool {
	if id < 0 {
		return false
	}
	w := id / wordBits
	return w < len(s.words) && s.words[w]&(1<<(uint(id)%wordBits)) != 0
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of elements.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Union returns a new set s ∪ t.
func (s *Set) Union(t *Set) *Set {
	longer, shorter := s.words, t.words
	if len(shorter) > len(longer) {
		longer, shorter = shorter, longer
	}
	out := make([]uint64, len(longer))
	copy(out, longer)
	for i, w := range shorter {
		out[i] |= w
	}
	return &Set{words: out}
}

// Intersect returns a new set s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	n := min(len(s.words), len(t.words))
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = s.words[i] & t.words[i]
	}
	return &Set{words: out}
}

// Minus returns a new set s − t.
func (s *Set) Minus(t *Set) *Set {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	for i := 0; i < len(out) && i < len(t.words); i++ {
		out[i] &^= t.words[i]
	}
	return &Set{words: out}
}

// UnionWith adds every element of t to s in place.
func (s *Set) UnionWith(t *Set) {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// setLen resizes s.words to exactly n entries, reusing the backing array
// when it is large enough. Newly exposed entries are NOT cleared; every
// caller overwrites them.
func (s *Set) setLen(n int) {
	if cap(s.words) < n {
		s.words = make([]uint64, n)
		return
	}
	s.words = s.words[:n]
}

// Reset empties the set in place, keeping the backing array for reuse.
func (s *Set) Reset() {
	s.words = s.words[:0]
}

// CopyFrom makes s an exact copy of t, reusing s's backing array.
func (s *Set) CopyFrom(t *Set) {
	s.setLen(len(t.words))
	copy(s.words, t.words)
}

// UnionOf makes s = a ∪ b, reusing s's backing array. s must not alias
// a or b.
func (s *Set) UnionOf(a, b *Set) {
	longer, shorter := a.words, b.words
	if len(shorter) > len(longer) {
		longer, shorter = shorter, longer
	}
	s.setLen(len(longer))
	copy(s.words, longer)
	for i, w := range shorter {
		s.words[i] |= w
	}
}

// IntersectOf makes s = a ∩ b, reusing s's backing array. s must not
// alias a or b.
func (s *Set) IntersectOf(a, b *Set) {
	n := min(len(a.words), len(b.words))
	s.setLen(n)
	for i := 0; i < n; i++ {
		s.words[i] = a.words[i] & b.words[i]
	}
}

// MinusOf makes s = a − b, reusing s's backing array. s must not alias
// a or b.
func (s *Set) MinusOf(a, b *Set) {
	s.setLen(len(a.words))
	copy(s.words, a.words)
	for i := 0; i < len(s.words) && i < len(b.words); i++ {
		s.words[i] &^= b.words[i]
	}
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	longer, shorter := s.words, t.words
	if len(shorter) > len(longer) {
		longer, shorter = shorter, longer
	}
	for i := range shorter {
		if longer[i] != shorter[i] {
			return false
		}
	}
	for _, w := range longer[len(shorter):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Subset reports whether every element of s is in t.
func (s *Set) Subset(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t is non-empty.
func (s *Set) Intersects(t *Set) bool {
	n := min(len(s.words), len(t.words))
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Elems returns the elements in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// Word returns the first 64 bits of the set and whether the set fits
// entirely within them. This is the §3.2.3 one-bit-per-pc apc word used
// by the hashed multiway-branch fast path.
func (s *Set) Word() (uint64, bool) {
	var w uint64
	if len(s.words) > 0 {
		w = s.words[0]
	}
	for _, hi := range s.words[1:] {
		if hi != 0 {
			return w, false
		}
	}
	return w, true
}

// Words returns the set's canonical backing words — trailing zero
// words trimmed, so Equal sets return equal slices. The slice aliases
// the set's storage and must not be mutated; it exists for serializers
// (the artifact codec) that need the dense representation without the
// per-element cost of Elems.
func (s *Set) Words() []uint64 {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	return s.words[:n]
}

// FromWords returns a set backed by a copy of the given words (the
// inverse of Words; the codec's deserialization path).
func FromWords(words []uint64) *Set {
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	if n == 0 {
		return &Set{}
	}
	return &Set{words: append([]uint64(nil), words[:n]...)}
}

// Key returns a canonical string key usable as a map key. Two sets have
// equal keys iff they are Equal.
func (s *Set) Key() string {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	var b strings.Builder
	b.Grow(n * 8)
	for i := 0; i < n; i++ {
		w := s.words[i]
		for j := 0; j < 8; j++ {
			b.WriteByte(byte(w >> (8 * j)))
		}
	}
	return b.String()
}

// FNV-1a parameters, applied one 64-bit word at a time instead of per
// byte: meta-state conversion hashes millions of sets, and word-at-a-time
// folding keeps the cost at one xor+multiply per 64 states.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash returns a 64-bit hash of the set's contents. Equal sets hash
// equally regardless of backing-array capacity (trailing zero words are
// ignored). This is the hot-path replacement for hashing Key(): no
// allocation, one multiply per word.
func (s *Set) Hash() uint64 {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	h := uint64(fnvOffset64)
	for _, w := range s.words[:n] {
		h ^= w
		h *= fnvPrime64
	}
	return h
}

// Compare orders sets exactly as strings.Compare orders their Key()
// serializations (the canonical order used for transition sorting and
// golden output), without materializing the keys: -1, 0, or +1. Key()
// writes each word little-endian, so byte-lexicographic order within a
// word is the numeric order of the byte-reversed word.
func (s *Set) Compare(t *Set) int {
	ns, nt := len(s.words), len(t.words)
	for ns > 0 && s.words[ns-1] == 0 {
		ns--
	}
	for nt > 0 && t.words[nt-1] == 0 {
		nt--
	}
	n := min(ns, nt)
	for i := 0; i < n; i++ {
		if s.words[i] != t.words[i] {
			if bits.ReverseBytes64(s.words[i]) < bits.ReverseBytes64(t.words[i]) {
				return -1
			}
			return 1
		}
	}
	switch {
	case ns < nt:
		return -1
	case ns > nt:
		return 1
	}
	return 0
}

// Sort sorts sets into the canonical Compare order (identical to sorting
// by Key(), without the key allocations).
func Sort(ss []*Set) {
	slices.SortFunc(ss, (*Set).Compare)
}

// ForEach calls f for each element in increasing order. It is the
// allocation-free alternative to ranging over Elems().
func (s *Set) ForEach(f func(id int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// String formats the set as {a,b,c} with elements in increasing order.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s.Elems() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", e)
	}
	b.WriteByte('}')
	return b.String()
}
