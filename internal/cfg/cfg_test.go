package cfg

import (
	"strings"
	"testing"

	"msc/internal/ir"
)

// Listing4 is the paper's complete example program (Listing 4), whose
// control structure is Listing 1.
const Listing4 = `
void main()
{
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    return;
}
`

func build(t *testing.T, src string) *Graph {
	t.Helper()
	g := MustBuild(src)
	Simplify(g)
	if err := Verify(g); err != nil {
		t.Fatalf("verify: %v\n%s", err, g)
	}
	return g
}

// TestFigure1 reproduces Figure 1: the MIMD state graph for Listing 1
// has exactly four states — A (the if test), B;C and D;E (the two
// do-while bodies fused with their tests), and F (the join) — with the
// branch/loop arcs of the figure.
func TestFigure1(t *testing.T) {
	g := build(t, Listing4)
	if got := g.NumBlocks(); got != 4 {
		t.Fatalf("state count = %d, want 4 (Figure 1)\n%s", got, g)
	}
	a := g.Block(g.Entry)
	if a.Term != Branch {
		t.Fatalf("state A terminator = %v, want branch", a.Term)
	}
	b, d := g.Block(a.Next), g.Block(a.FNext)
	if b.Term != Branch || d.Term != Branch {
		t.Fatalf("loop states not branches: %v, %v", b.Term, d.Term)
	}
	// Each do-while state loops to itself on TRUE and exits to F on FALSE.
	if b.Next != b.ID || d.Next != d.ID {
		t.Fatalf("do-while states do not self-loop: B true->%d, D true->%d", b.Next, d.Next)
	}
	if b.FNext != d.FNext {
		t.Fatalf("loops exit to different joins: %d vs %d", b.FNext, d.FNext)
	}
	f := g.Block(b.FNext)
	if f.Term != End {
		t.Fatalf("state F terminator = %v, want end", f.Term)
	}
}

func TestWhileNormalization(t *testing.T) {
	// while (c) s  must become  if (c) { do s while (c) } — the entry
	// test is replicated, so the loop body+test is a single state with a
	// self-loop, not a separate test state visited every iteration.
	g := build(t, `
void main()
{
    poly int i;
    while (i < 10) { i = i + 1; }
    return;
}
`)
	if got := g.NumBlocks(); got != 3 {
		t.Fatalf("state count = %d, want 3 (test, body+test, exit)\n%s", got, g)
	}
	entry := g.Block(g.Entry)
	body := g.Block(entry.Next)
	if body.Next != body.ID {
		t.Fatalf("loop body does not self-loop\n%s", g)
	}
	if body.FNext != entry.FNext {
		t.Fatalf("loop exits diverge\n%s", g)
	}
}

func TestForLoweringAndBreakContinue(t *testing.T) {
	g := build(t, `
void main()
{
    poly int i, s;
    for (i = 0; i < 8; i = i + 1) {
        if (i == 3) continue;
        if (i == 6) break;
        s = s + i;
    }
    return;
}
`)
	// Just structural sanity: verification passed, entry branches, and
	// there is exactly one End state.
	ends := 0
	for _, b := range g.Blocks {
		if b.Term == End {
			ends++
		}
	}
	if ends != 1 {
		t.Fatalf("end states = %d, want 1\n%s", ends, g)
	}
}

func TestInfiniteForHasNoEnd(t *testing.T) {
	g := build(t, `void main() { poly int x; for (;;) { x = x + 1; } }`)
	for _, b := range g.Blocks {
		if b.Term == End {
			t.Fatalf("infinite loop should prune the end state\n%s", g)
		}
	}
}

func TestBarrierState(t *testing.T) {
	g := build(t, `
void main()
{
    poly int x;
    x = 1;
    wait;
    x = 2;
    return;
}
`)
	var barriers []*Block
	for _, b := range g.Blocks {
		if b.Barrier {
			barriers = append(barriers, b)
		}
	}
	if len(barriers) != 1 {
		t.Fatalf("barrier states = %d, want 1\n%s", len(barriers), g)
	}
	// Straightening may fold post-barrier code into the barrier state,
	// but never pre-barrier code.
	w := barriers[0]
	entry := g.Block(g.Entry)
	if entry.Barrier {
		t.Fatalf("pre-barrier code merged into barrier state\n%s", g)
	}
	if w.Term == Branch {
		t.Fatalf("barrier state should not branch")
	}
}

func TestCallLoweringSharedBody(t *testing.T) {
	g := build(t, `
int twice(int v) { return v * 2; }
void main()
{
    poly int a, b;
    a = twice(3);
    b = twice(a) + twice(b);
    return;
}
`)
	// One RetBr state (the shared exit of twice) with three return sites.
	var retbrs []*Block
	for _, b := range g.Blocks {
		if b.Term == RetBr {
			retbrs = append(retbrs, b)
		}
	}
	if len(retbrs) != 1 {
		t.Fatalf("retbr states = %d, want 1\n%s", len(retbrs), g)
	}
	if got := len(retbrs[0].RetTargets); got != 3 {
		t.Fatalf("return sites = %d, want 3\n%s", got, g)
	}
	// Every PushRet token is listed.
	tokens := map[int]bool{}
	for _, b := range g.Blocks {
		for _, in := range b.Code {
			if in.Op == ir.PushRet {
				tokens[int(in.Imm)] = true
			}
		}
	}
	if len(tokens) != 3 {
		t.Fatalf("distinct PushRet tokens = %d, want 3", len(tokens))
	}
}

func TestRecursionLowers(t *testing.T) {
	g := build(t, `
int fact(int n)
{
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
void main()
{
    poly int r;
    r = fact(5);
    return;
}
`)
	var retbr *Block
	for _, b := range g.Blocks {
		if b.Term == RetBr {
			retbr = b
		}
	}
	if retbr == nil {
		t.Fatalf("no retbr state for recursive function\n%s", g)
	}
	// Two call sites: main and the recursive one.
	if len(retbr.RetTargets) != 2 {
		t.Fatalf("return sites = %d, want 2\n%s", len(retbr.RetTargets), g)
	}
}

func TestSpawnLowering(t *testing.T) {
	g := build(t, `
void worker() { poly int w; w = 1; halt; }
void main()
{
    spawn worker();
    return;
}
`)
	var spawn *Block
	halts := 0
	for _, b := range g.Blocks {
		if b.Term == Spawn {
			spawn = b
		}
		if b.Term == Halt {
			halts++
		}
	}
	if spawn == nil {
		t.Fatalf("no spawn state\n%s", g)
	}
	if g.Block(spawn.SpawnNext) == nil {
		t.Fatalf("spawn child entry missing")
	}
	if halts == 0 {
		t.Fatalf("spawned worker has no halt state\n%s", g)
	}
}

func TestSpawnAndCallConflict(t *testing.T) {
	_, err := buildErr(`
void w() { halt; }
void main() { spawn w(); w(); return; }
`)
	if err == nil || !strings.Contains(err.Error(), "both called and spawned") {
		t.Fatalf("err = %v, want spawn/call conflict", err)
	}
}

func TestNoMain(t *testing.T) {
	_, err := buildErr(`void notmain() { return; }`)
	if err == nil || !strings.Contains(err.Error(), "no main") {
		t.Fatalf("err = %v, want no-main error", err)
	}
}

func TestMainWithParams(t *testing.T) {
	_, err := buildErr(`void main(int x) { return; }`)
	if err == nil || !strings.Contains(err.Error(), "no parameters") {
		t.Fatalf("err = %v, want params error", err)
	}
}

func TestShortCircuitValueContext(t *testing.T) {
	g := build(t, `
void main()
{
    poly int a, b, c;
    c = a && b;
    c = a || (b && c);
    return;
}
`)
	// Value-context short circuits become control flow; at least two
	// Branch states must exist and all blocks verify (stack balance).
	branches := 0
	for _, b := range g.Blocks {
		if b.Term == Branch {
			branches++
		}
	}
	if branches < 3 {
		t.Fatalf("branches = %d, want >= 3\n%s", branches, g)
	}
}

func TestGlobalInitsInPrologue(t *testing.T) {
	g := build(t, `
mono int m = 7;
poly float p = 1.5;
void main() { return; }
`)
	entry := g.Block(g.Entry)
	var sawMono, sawPoly bool
	for _, in := range entry.Code {
		if in.Op == ir.StMono {
			sawMono = true
		}
		if in.Op == ir.StLocal {
			sawPoly = true
		}
	}
	if !sawMono || !sawPoly {
		t.Fatalf("prologue missing inits: mono=%v poly=%v\n%s", sawMono, sawPoly, g)
	}
	if g.VarSlot["m"] != 0 {
		t.Fatalf("mono slot = %d, want 0", g.VarSlot["m"])
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	g := build(t, Listing4)
	before := g.String()
	Simplify(g)
	if after := g.String(); before != after {
		t.Fatalf("Simplify not idempotent:\n%s\nvs\n%s", before, after)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := build(t, Listing4)
	c := g.Clone()
	c.Block(0).Code = append(c.Block(0).Code, ir.Instr{Op: ir.Nop})
	c.Block(0).Next = 99
	if len(g.Block(0).Code) == len(c.Block(0).Code) {
		t.Fatalf("clone shares code slices")
	}
	if g.Block(0).Next == 99 {
		t.Fatalf("clone shares blocks")
	}
}

func TestDotOutput(t *testing.T) {
	g := build(t, Listing4)
	dot := g.Dot("fig1")
	for _, want := range []string{"digraph", "label=\"T\"", "label=\"F\"", "start ->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestTermKindString(t *testing.T) {
	kinds := []TermKind{End, Halt, Goto, Branch, RetBr, Spawn}
	for _, k := range kinds {
		if strings.HasPrefix(k.String(), "term(") {
			t.Errorf("TermKind %d has no name", k)
		}
	}
	if TermKind(99).String() != "term(99)" {
		t.Errorf("unknown TermKind formatting wrong")
	}
}

func TestBlockCost(t *testing.T) {
	b := &Block{Code: []ir.Instr{{Op: ir.PushC, Imm: 1}, {Op: ir.StLocal}}, Term: Branch}
	want := ir.PushC.Cost() + ir.StLocal.Cost() + 2
	if got := b.Cost(); got != want {
		t.Fatalf("Cost = %d, want %d", got, want)
	}
}

func buildErr(src string) (*Graph, error) {
	prog, err := parseAnalyze(src)
	if err != nil {
		return nil, err
	}
	return Build(prog)
}
