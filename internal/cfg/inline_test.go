package cfg_test

import (
	"testing"

	"msc/internal/cfg"
	"msc/internal/ir"
	"msc/internal/mimdc"
	"msc/internal/mimdsim"
)

func parseAnalyze(src string) (*mimdc.Program, error) {
	prog, err := mimdc.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := mimdc.Analyze(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func buildExpanded(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	prog, err := parseAnalyze(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.BuildWith(prog, cfg.Options{ExpandCalls: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Simplify(g)
	if err := cfg.Verify(g); err != nil {
		t.Fatalf("verify: %v\n%s", err, g)
	}
	return g
}

const multiCallSrc = `
poly int a, b;
int twice(int v) { return v * 2; }
void main()
{
    a = twice(3);
    b = twice(a) + twice(b);
    return;
}
`

// TestExpandEliminatesReturnBranches: §2.2 — in-line expansion of
// non-recursive calls turns every return into unconditional sequencing,
// so no RetBr states and no PushRet tokens remain.
func TestExpandEliminatesReturnBranches(t *testing.T) {
	g := buildExpanded(t, multiCallSrc)
	for _, blk := range g.Blocks {
		if blk.Term == cfg.RetBr {
			t.Fatalf("expanded graph still has a RetBr state\n%s", g)
		}
		for _, in := range blk.Code {
			if in.Op == ir.PushRet {
				t.Fatalf("expanded graph still pushes return tokens\n%s", g)
			}
		}
	}
}

func TestExpandRecursiveFallsBackToTokens(t *testing.T) {
	g := buildExpanded(t, `
poly int r;
int fact(int n)
{
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
void main()
{
    r = fact(1);
    return;
}
`)
	// The recursive call needs the shared copy: exactly one RetBr state.
	retbrs := 0
	for _, blk := range g.Blocks {
		if blk.Term == cfg.RetBr {
			retbrs++
		}
	}
	if retbrs != 1 {
		t.Fatalf("RetBr states = %d, want 1 (recursive shared copy)\n%s", retbrs, g)
	}
}

func TestExpandAndSharedAgreeOnResults(t *testing.T) {
	srcs := []string{
		multiCallSrc,
		`
poly int r;
int add(int x, int y) { return x + y; }
int mix(int x) { return add(x, 1) * add(x, 2); }
void main()
{
    r = mix(iproc);
    return;
}
`,
	}
	for _, src := range srcs {
		prog, err := parseAnalyze(src)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := cfg.Build(prog)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Simplify(shared)
		prog2, _ := parseAnalyze(src)
		expanded, err := cfg.BuildWith(prog2, cfg.Options{ExpandCalls: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Simplify(expanded)

		rs, err := mimdsim.Run(shared, mimdsim.Config{N: 4})
		if err != nil {
			t.Fatal(err)
		}
		re, err := mimdsim.Run(expanded, mimdsim.Config{N: 4})
		if err != nil {
			t.Fatal(err)
		}
		for pe := 0; pe < 4; pe++ {
			for name, slot := range shared.VarSlot {
				es := expanded.VarSlot[name]
				if rs.Mem[pe][slot] != re.Mem[pe][es] {
					t.Fatalf("PE %d var %s: shared %d != expanded %d",
						pe, name, rs.Mem[pe][slot], re.Mem[pe][es])
				}
			}
		}
	}
}

func TestExpandGrowsStateSpace(t *testing.T) {
	prog, err := parseAnalyze(multiCallSrc)
	if err != nil {
		t.Fatal(err)
	}
	shared, _ := cfg.Build(prog)
	cfg.Simplify(shared)
	prog2, _ := parseAnalyze(multiCallSrc)
	expanded, _ := cfg.BuildWith(prog2, cfg.Options{ExpandCalls: true})
	cfg.Simplify(expanded)
	// Three call sites expand to three copies, but each copy straightens
	// into its caller: the expanded graph has no more states than the
	// shared one, which must keep entry/exit/continuation states.
	if expanded.NumBlocks() > shared.NumBlocks() {
		t.Logf("note: expanded %d states, shared %d", expanded.NumBlocks(), shared.NumBlocks())
	}
	if shared.NumBlocks() < 2 || expanded.NumBlocks() < 1 {
		t.Fatalf("unexpected graph sizes: shared %d, expanded %d",
			shared.NumBlocks(), expanded.NumBlocks())
	}
}

func TestExpandSpawnAndCallCoexist(t *testing.T) {
	// With expansion, calling and spawning the same function is legal:
	// call sites get private copies, the spawn target gets the shared
	// halting copy.
	prog, err := parseAnalyze(`
poly int r;
void job() { r = r + 1; }
void main()
{
    job();
    spawn job();
    return;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.BuildWith(prog, cfg.Options{ExpandCalls: true})
	if err != nil {
		t.Fatalf("expand mode rejected call+spawn: %v", err)
	}
	cfg.Simplify(g)
	if err := cfg.Verify(g); err != nil {
		t.Fatal(err)
	}
	halts := 0
	for _, blk := range g.Blocks {
		if blk.Term == cfg.Halt {
			halts++
		}
	}
	if halts == 0 {
		t.Fatalf("spawned copy lost its halt\n%s", g)
	}
}
