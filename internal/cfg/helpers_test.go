package cfg

import "msc/internal/mimdc"

func parseAnalyze(src string) (*mimdc.Program, error) {
	prog, err := mimdc.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := mimdc.Analyze(prog); err != nil {
		return nil, err
	}
	return prog, nil
}
