package cfg

import (
	"fmt"

	"msc/internal/ir"
	"msc/internal/mimdc"
)

// Build lowers an analyzed MIMDC program into a MIMD state graph.
//
// Lowering maintains the invariant that every block's stack code is
// balanced: a block begins and ends with an empty evaluation stack
// (Branch blocks end with exactly the condition value, which the
// terminator pops). When a function call or a value-context short
// circuit must split a block mid-expression, pending operands are
// spilled to fresh temp slots and reloaded in the continuation. This
// keeps every MIMD state self-contained, which both the CSI pass (§3.1)
// and the verifier rely on.
//
// Function calls are NOT left in the graph: each function body is
// lowered once, call sites push a return-site token and jump to the
// entry, and the function's single exit block performs the paper's
// return-as-multiway-branch (§2.2) over all recorded return sites.
// Use inline.Expand for the paper's per-call-site expansion of
// non-recursive calls.
func Build(prog *mimdc.Program) (*Graph, error) {
	return BuildWith(prog, Options{})
}

// Options selects builder variants.
type Options struct {
	// ExpandCalls applies the paper's §2.2 treatment literally: every
	// non-recursive call site receives its own in-line copy of the
	// callee's state graph, so its return is an ordinary goto. Calls
	// that are recursive at the point of expansion fall back to the
	// shared-copy return-token mechanism (which is also how the paper's
	// trick handles them: returns become multiway branches). Expansion
	// trades a larger MIMD state space for narrower return dispatch.
	ExpandCalls bool
}

// BuildWith is Build with explicit options.
func BuildWith(prog *mimdc.Program, opts Options) (*Graph, error) {
	b := &builder{
		prog: prog,
		opts: opts,
		g: &Graph{
			MonoSlots: prog.MonoSlots,
			RetSlot:   make(map[string]int),
			VarSlot:   make(map[string]int),
		},
		nextSlot:   prog.MonoSlots + prog.PolySlots,
		funcs:      make(map[string]*funcInfo),
		called:     make(map[string]bool),
		spawned:    make(map[string]bool),
		inProgress: make(map[string]bool),
		retSlots:   make(map[string]int),
	}
	b.run()
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	b.g.Words = b.nextSlot
	return b.g, nil
}

// MustBuild parses, analyzes, and lowers src, panicking on any error.
// Intended for tests and embedded example programs.
func MustBuild(src string) *Graph {
	g, err := Build(mimdc.MustAnalyze(src))
	if err != nil {
		panic("cfg.MustBuild: " + err.Error())
	}
	return g
}

type funcInfo struct {
	decl    *mimdc.FuncDecl
	entry   int
	exit    *Block
	retSlot int // None for void
}

type loopCtx struct {
	brk, cont int
}

type builder struct {
	prog     *mimdc.Program
	opts     Options
	g        *Graph
	errs     []error
	cur      *Block // nil when the current path is terminated
	depth    int    // static evaluation-stack depth within cur
	curPos   ir.Pos // source position of the construct being lowered
	nextSlot int
	funcs    map[string]*funcInfo
	called   map[string]bool
	spawned  map[string]bool
	curFn    *funcInfo
	loops    []loopCtx
	// inProgress tracks functions on the expansion stack (recursion
	// detection); retSlots memoizes per-function return slots so every
	// in-line copy shares one (static activation records).
	inProgress map[string]bool
	retSlots   map[string]int
}

func (b *builder) errorf(pos mimdc.Pos, format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (b *builder) run() {
	main := b.prog.Func("main")
	if main == nil {
		b.errs = append(b.errs, fmt.Errorf("program has no main function"))
		return
	}
	if len(main.Params) != 0 {
		b.errorf(main.Pos, "main must take no parameters")
		return
	}

	prologue := b.g.newBlock("prologue")
	b.g.Entry = prologue.ID
	b.cur = prologue

	for _, gv := range b.prog.Globals {
		b.g.VarSlot[gv.Name] = gv.Slot
		if gv.Init != nil {
			b.at(gv.Pos)
			b.lowerValue(gv.Init)
			b.at(gv.Pos)
			b.storeScalar(gv)
		}
	}

	exit := b.g.newBlock("exit:main")
	exit.Term = End
	mi := &funcInfo{decl: main, entry: prologue.ID, exit: exit, retSlot: b.retSlotFor(main)}
	b.funcs["main"] = mi
	b.curFn = mi

	b.stmt(main.Body)
	b.sealGoto(exit.ID)

	// Finalize every lowered function's exit terminator now that all
	// call and spawn sites are known.
	for name, fi := range b.funcs {
		if name == "main" {
			continue
		}
		switch {
		case b.called[name] && b.spawned[name]:
			b.errorf(fi.decl.Pos,
				"function %s is both called and spawned; a spawn target's exit releases the PE and cannot also return", name)
		case b.spawned[name]:
			fi.exit.Term = Halt
		default:
			fi.exit.Term = RetBr
		}
	}
}

// fn lowers the named function on first use and returns its info.
func (b *builder) fn(decl *mimdc.FuncDecl) *funcInfo {
	if fi, ok := b.funcs[decl.Name]; ok {
		return fi
	}
	entry := b.g.newBlock("fn:" + decl.Name)
	exit := b.g.newBlock("exit:" + decl.Name)
	exit.Term = RetBr // provisional; finalized in run
	fi := &funcInfo{decl: decl, entry: entry.ID, exit: exit, retSlot: b.retSlotFor(decl)}
	b.funcs[decl.Name] = fi

	// Lower the body with fresh statement context.
	savedCur, savedDepth, savedFn, savedLoops, savedPos := b.cur, b.depth, b.curFn, b.loops, b.curPos
	b.cur, b.depth, b.curFn, b.loops = entry, 0, fi, nil
	b.at(decl.Pos)
	b.stmt(decl.Body)
	b.sealGoto(exit.ID)
	b.cur, b.depth, b.curFn, b.loops, b.curPos = savedCur, savedDepth, savedFn, savedLoops, savedPos
	return fi
}

func (b *builder) newTemp() int {
	s := b.nextSlot
	b.nextSlot++
	return s
}

// retSlotFor returns the (shared, static) return-value slot of a
// function, allocating it on first use; None for void functions.
func (b *builder) retSlotFor(decl *mimdc.FuncDecl) int {
	if decl.Ret == ir.Void {
		return None
	}
	if s, ok := b.retSlots[decl.Name]; ok {
		return s
	}
	s := b.newTemp()
	b.retSlots[decl.Name] = s
	b.g.RetSlot[decl.Name] = s
	return s
}

// ensureCur guarantees a current block, creating an unreachable one for
// code that follows a terminator (pruned later).
func (b *builder) ensureCur() {
	if b.cur == nil {
		b.cur = b.g.newBlock("dead")
		b.depth = 0
	}
}

// at updates the lowering position; invalid (zero) positions are
// ignored so synthesized nodes inherit the enclosing construct's.
func (b *builder) at(pos ir.Pos) {
	if pos.IsValid() {
		b.curPos = pos
	}
}

func (b *builder) emit(in ir.Instr) {
	b.ensureCur()
	if !in.Pos.IsValid() {
		in.Pos = b.curPos
	}
	if !b.cur.Pos.IsValid() {
		b.cur.Pos = in.Pos
	}
	b.cur.Code = append(b.cur.Code, in)
	b.depth += in.Op.StackDelta(in.Imm)
}

// seal terminates the current block. The builder's stack-balance
// invariant is checked here: any violation is a lowering bug.
func (b *builder) seal(term TermKind, next, fnext int) {
	if b.cur == nil {
		return
	}
	want := 0
	if term == Branch {
		want = 1
	}
	if b.depth != want {
		panic(fmt.Sprintf("cfg: block %d sealed with stack depth %d, want %d",
			b.cur.ID, b.depth, want))
	}
	if !b.cur.Pos.IsValid() {
		b.cur.Pos = b.curPos
	}
	b.cur.Term = term
	b.cur.Next = next
	b.cur.FNext = fnext
	b.cur = nil
	b.depth = 0
}

func (b *builder) sealGoto(next int) { b.seal(Goto, next, None) }

// enter makes blk the current block.
func (b *builder) enter(blk *Block) {
	b.cur = blk
	b.depth = 0
}

// ---- Statements ------------------------------------------------------------

// stmtPos extracts a statement's source position.
func stmtPos(s mimdc.Stmt) ir.Pos {
	switch s := s.(type) {
	case *mimdc.BlockStmt:
		return s.Pos
	case *mimdc.DeclStmt:
		return s.Pos
	case *mimdc.EmptyStmt:
		return s.Pos
	case *mimdc.ExprStmt:
		return s.Pos
	case *mimdc.IfStmt:
		return s.Pos
	case *mimdc.WhileStmt:
		return s.Pos
	case *mimdc.DoWhileStmt:
		return s.Pos
	case *mimdc.ForStmt:
		return s.Pos
	case *mimdc.ReturnStmt:
		return s.Pos
	case *mimdc.WaitStmt:
		return s.Pos
	case *mimdc.SpawnStmt:
		return s.Pos
	case *mimdc.HaltStmt:
		return s.Pos
	case *mimdc.BreakStmt:
		return s.Pos
	case *mimdc.ContinueStmt:
		return s.Pos
	}
	return ir.Pos{}
}

// exprPos extracts an expression's source position (zero for
// synthesized nodes such as implicit conversions).
func exprPos(e mimdc.Expr) ir.Pos {
	switch e := e.(type) {
	case *mimdc.IntLit:
		return e.Pos
	case *mimdc.FloatLit:
		return e.Pos
	case *mimdc.IProc:
		return e.Pos
	case *mimdc.NProc:
		return e.Pos
	case *mimdc.VarRef:
		return e.Pos
	case *mimdc.IndexRef:
		return e.Pos
	case *mimdc.RemoteRef:
		return e.Pos
	case *mimdc.Unary:
		return e.Pos
	case *mimdc.Binary:
		return e.Pos
	case *mimdc.Assign:
		return e.Pos
	case *mimdc.Cond:
		return e.Pos
	case *mimdc.Call:
		return e.Pos
	}
	return ir.Pos{}
}

func (b *builder) stmt(s mimdc.Stmt) {
	b.at(stmtPos(s))
	switch s := s.(type) {
	case *mimdc.BlockStmt:
		for _, inner := range s.Stmts {
			b.stmt(inner)
		}
	case *mimdc.DeclStmt:
		for _, d := range s.Decls {
			if d.Init != nil {
				b.at(d.Pos)
				b.lowerValue(d.Init)
				b.at(d.Pos)
				b.storeScalar(d)
			}
		}
	case *mimdc.EmptyStmt:
	case *mimdc.ExprStmt:
		b.lowerEffect(s.X)
	case *mimdc.IfStmt:
		b.ensureCur()
		thenB := b.g.newBlock("then")
		join := b.g.newBlock("join")
		elseID := join.ID
		var elseB *Block
		if s.Else != nil {
			elseB = b.g.newBlock("else")
			elseID = elseB.ID
		}
		b.lowerCond(s.Cond, thenB.ID, elseID)
		b.enter(thenB)
		b.stmt(s.Then)
		b.sealGoto(join.ID)
		if s.Else != nil {
			b.enter(elseB)
			b.stmt(s.Else)
			b.sealGoto(join.ID)
		}
		b.enter(join)
	case *mimdc.WhileStmt:
		// Normalized form (§4.2): the loop body executes one or more
		// times, guarded by a replicated entry test — while (c) s
		// becomes if (c) { do s while (c) }.
		b.ensureCur()
		body := b.g.newBlock("loop-body")
		latch := b.g.newBlock("loop-latch")
		exit := b.g.newBlock("loop-exit")
		b.lowerCond(s.Cond, body.ID, exit.ID)
		b.enter(body)
		b.loops = append(b.loops, loopCtx{brk: exit.ID, cont: latch.ID})
		b.stmt(s.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.sealGoto(latch.ID)
		b.enter(latch)
		b.lowerCond(s.Cond, body.ID, exit.ID)
		b.enter(exit)
	case *mimdc.DoWhileStmt:
		b.ensureCur()
		body := b.g.newBlock("do-body")
		latch := b.g.newBlock("do-latch")
		exit := b.g.newBlock("do-exit")
		b.sealGoto(body.ID)
		b.enter(body)
		b.loops = append(b.loops, loopCtx{brk: exit.ID, cont: latch.ID})
		b.stmt(s.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.sealGoto(latch.ID)
		b.enter(latch)
		b.lowerCond(s.Cond, body.ID, exit.ID)
		b.enter(exit)
	case *mimdc.ForStmt:
		b.ensureCur()
		if s.Init != nil {
			b.lowerEffect(s.Init)
		}
		body := b.g.newBlock("for-body")
		latch := b.g.newBlock("for-latch")
		exit := b.g.newBlock("for-exit")
		if s.Cond != nil {
			b.lowerCond(s.Cond, body.ID, exit.ID)
		} else {
			b.sealGoto(body.ID)
		}
		b.enter(body)
		b.loops = append(b.loops, loopCtx{brk: exit.ID, cont: latch.ID})
		b.stmt(s.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.sealGoto(latch.ID)
		b.enter(latch)
		if s.Post != nil {
			b.lowerEffect(s.Post)
		}
		if s.Cond != nil {
			b.lowerCond(s.Cond, body.ID, exit.ID)
		} else {
			b.sealGoto(body.ID)
		}
		b.enter(exit)
	case *mimdc.ReturnStmt:
		b.ensureCur()
		if s.X != nil {
			b.lowerValue(s.X)
			b.emit(ir.Instr{Op: ir.StLocal, Imm: int64(b.curFn.retSlot), Sym: "$ret"})
		}
		b.sealGoto(b.curFn.exit.ID)
	case *mimdc.WaitStmt:
		// A dedicated empty barrier-wait state (§2.6): PEs whose pc is
		// here are "at the barrier".
		b.ensureCur()
		w := b.g.newBlock("wait")
		w.Barrier = true
		w.Pos = s.Pos
		cont := b.g.newBlock("after-wait")
		b.sealGoto(w.ID)
		b.enter(w)
		b.sealGoto(cont.ID)
		b.enter(cont)
	case *mimdc.SpawnStmt:
		b.ensureCur()
		fi := b.fn(s.Decl) // saves/restores the current block
		b.spawned[s.Name] = true
		spawnBlk := b.cur
		cont := b.g.newBlock("after-spawn")
		b.seal(Spawn, cont.ID, None)
		spawnBlk.SpawnNext = fi.entry // child entry rides in SpawnNext
		b.enter(cont)
	case *mimdc.HaltStmt:
		b.ensureCur()
		b.seal(Halt, None, None)
	case *mimdc.BreakStmt:
		b.ensureCur()
		b.sealGoto(b.loops[len(b.loops)-1].brk)
	case *mimdc.ContinueStmt:
		b.ensureCur()
		b.sealGoto(b.loops[len(b.loops)-1].cont)
	default:
		panic(fmt.Sprintf("cfg: unknown statement %T", s))
	}
}

// storeScalar emits the store for a scalar variable declaration.
func (b *builder) storeScalar(d *mimdc.VarDecl) {
	op := ir.StLocal
	if d.Mono {
		op = ir.StMono
	}
	b.emit(ir.Instr{Op: op, Imm: int64(d.Slot), Sym: d.Name})
}

// ---- Conditions ------------------------------------------------------------

// lowerCond lowers e as a branch condition: control reaches tID when e
// is true and fID when false. Short-circuit operators become control
// flow, exactly the multiple-exit-arc states of §2.3.
func (b *builder) lowerCond(e mimdc.Expr, tID, fID int) {
	b.at(exprPos(e))
	switch e := e.(type) {
	case *mimdc.Binary:
		switch e.Op {
		case mimdc.AndAnd:
			mid := b.g.newBlock("and-rhs")
			b.lowerCond(e.L, mid.ID, fID)
			b.enter(mid)
			b.lowerCond(e.R, tID, fID)
			return
		case mimdc.OrOr:
			mid := b.g.newBlock("or-rhs")
			b.lowerCond(e.L, tID, mid.ID)
			b.enter(mid)
			b.lowerCond(e.R, tID, fID)
			return
		}
	case *mimdc.Unary:
		if e.Op == mimdc.Not {
			b.lowerCond(e.X, fID, tID)
			return
		}
	case *mimdc.IntLit:
		if e.Val != 0 {
			b.sealGoto(tID)
		} else {
			b.sealGoto(fID)
		}
		return
	case *mimdc.FloatLit:
		if e.Val != 0 {
			b.sealGoto(tID)
		} else {
			b.sealGoto(fID)
		}
		return
	}
	b.lowerValue(e)
	b.truthify(e.Type())
	b.seal(Branch, tID, fID)
}

// truthify normalizes a float condition value to an int 0/1; int values
// branch on nonzero directly.
func (b *builder) truthify(ty ir.Type) {
	if ty == ir.Float {
		b.emit(ir.Instr{Op: ir.PushC, Imm: int64(ir.FloatWord(0)), Ty: ir.Float})
		b.emit(ir.Instr{Op: ir.FCmpNe})
	}
}

// ---- Expressions -----------------------------------------------------------

// lowerEffect evaluates e for its side effects only.
func (b *builder) lowerEffect(e mimdc.Expr) {
	switch e := e.(type) {
	case *mimdc.Assign:
		b.lowerAssign(e, false)
	case *mimdc.Call:
		b.lowerCall(e)
	default:
		b.lowerValue(e)
		b.emit(ir.Instr{Op: ir.Pop, Imm: 1})
	}
}

// lowerValue evaluates e, leaving exactly one value on the stack.
func (b *builder) lowerValue(e mimdc.Expr) {
	b.at(exprPos(e))
	switch e := e.(type) {
	case *mimdc.IntLit:
		b.emit(ir.Instr{Op: ir.PushC, Imm: e.Val, Ty: ir.Int})
	case *mimdc.FloatLit:
		b.emit(ir.Instr{Op: ir.PushC, Imm: int64(ir.FloatWord(e.Val)), Ty: ir.Float})
	case *mimdc.IProc:
		b.emit(ir.Instr{Op: ir.IProc})
	case *mimdc.NProc:
		b.emit(ir.Instr{Op: ir.NProc})
	case *mimdc.VarRef:
		op := ir.LdLocal
		if e.Decl.Mono {
			op = ir.LdMono
		}
		b.emit(ir.Instr{Op: op, Imm: int64(e.Decl.Slot), Ty: e.Type(), Sym: e.Name})
	case *mimdc.IndexRef:
		b.lowerValue(e.Idx)
		b.emit(ir.Instr{Op: ir.LdIndex, Imm: int64(e.Decl.Slot), Ty: e.Type(), Sym: e.Name})
	case *mimdc.RemoteRef:
		b.lowerValue(e.PE)
		b.emit(ir.Instr{Op: ir.LdRemote, Imm: int64(e.Decl.Slot), Ty: e.Type(), Sym: e.Name})
	case *mimdc.Conv:
		b.lowerValue(e.X)
		from, to := e.X.Type(), e.Type()
		switch {
		case from == ir.Int && to == ir.Float:
			b.emit(ir.Instr{Op: ir.I2F})
		case from == ir.Float && to == ir.Int:
			b.emit(ir.Instr{Op: ir.F2I})
		}
	case *mimdc.Unary:
		switch e.Op {
		case mimdc.Minus:
			b.lowerValue(e.X)
			if e.Type() == ir.Float {
				b.emit(ir.Instr{Op: ir.FNeg})
			} else {
				b.emit(ir.Instr{Op: ir.Neg})
			}
		case mimdc.Not:
			b.lowerValue(e.X)
			if e.X.Type() == ir.Float {
				b.emit(ir.Instr{Op: ir.PushC, Imm: int64(ir.FloatWord(0)), Ty: ir.Float})
				b.emit(ir.Instr{Op: ir.FCmpEq})
			} else {
				b.emit(ir.Instr{Op: ir.LNot})
			}
		case mimdc.Tilde:
			b.lowerValue(e.X)
			b.emit(ir.Instr{Op: ir.BitNot})
		default:
			panic(fmt.Sprintf("cfg: unknown unary op %v", e.Op))
		}
	case *mimdc.Binary:
		if e.Op == mimdc.AndAnd || e.Op == mimdc.OrOr {
			b.lowerShortCircuitValue(e)
			return
		}
		b.lowerValue(e.L)
		b.lowerValue(e.R)
		b.emit(ir.Instr{Op: binaryOp(e.Op, e.L.Type())})
	case *mimdc.Assign:
		b.lowerAssign(e, true)
	case *mimdc.Cond:
		b.lowerCondValue(e)
	case *mimdc.Call:
		retSlot := b.lowerCall(e)
		b.emit(ir.Instr{Op: ir.LdLocal, Imm: int64(retSlot), Ty: e.Type(), Sym: "$ret:" + e.Name})
	default:
		panic(fmt.Sprintf("cfg: unknown expression %T", e))
	}
}

// binaryOp maps a source operator and operand type to the IR opcode.
func binaryOp(op mimdc.Kind, operand ir.Type) ir.Op {
	f := operand == ir.Float
	switch op {
	case mimdc.Plus:
		if f {
			return ir.FAdd
		}
		return ir.Add
	case mimdc.Minus:
		if f {
			return ir.FSub
		}
		return ir.Sub
	case mimdc.Star:
		if f {
			return ir.FMul
		}
		return ir.Mul
	case mimdc.Slash:
		if f {
			return ir.FDiv
		}
		return ir.Div
	case mimdc.Percent:
		return ir.Mod
	case mimdc.And:
		return ir.BitAnd
	case mimdc.Or:
		return ir.BitOr
	case mimdc.Xor:
		return ir.BitXor
	case mimdc.Shl:
		return ir.Shl
	case mimdc.Shr:
		return ir.Shr
	case mimdc.EqEq:
		if f {
			return ir.FCmpEq
		}
		return ir.CmpEq
	case mimdc.NotEq:
		if f {
			return ir.FCmpNe
		}
		return ir.CmpNe
	case mimdc.Lt:
		if f {
			return ir.FCmpLt
		}
		return ir.CmpLt
	case mimdc.LtEq:
		if f {
			return ir.FCmpLe
		}
		return ir.CmpLe
	case mimdc.Gt:
		if f {
			return ir.FCmpGt
		}
		return ir.CmpGt
	case mimdc.GtEq:
		if f {
			return ir.FCmpGe
		}
		return ir.CmpGe
	}
	panic(fmt.Sprintf("cfg: unknown binary op %v", op))
}

// lowerAssign lowers an assignment; when wantValue is set the assigned
// value is left on the stack (C assignment-expression semantics).
func (b *builder) lowerAssign(a *mimdc.Assign, wantValue bool) {
	switch lhs := a.LHS.(type) {
	case *mimdc.VarRef:
		b.lowerValue(a.RHS)
		b.at(a.Pos)
		if wantValue {
			b.emit(ir.Instr{Op: ir.Dup})
		}
		b.storeScalar(lhs.Decl)
	case *mimdc.IndexRef:
		// StIndex pops value then index, so stage the value in a temp to
		// get [index, value] on the stack in order.
		t := b.newTemp()
		b.lowerValue(a.RHS)
		b.emit(ir.Instr{Op: ir.StLocal, Imm: int64(t), Sym: "$t"})
		b.lowerValue(lhs.Idx)
		b.at(a.Pos)
		b.emit(ir.Instr{Op: ir.LdLocal, Imm: int64(t), Sym: "$t"})
		b.emit(ir.Instr{Op: ir.StIndex, Imm: int64(lhs.Decl.Slot), Sym: lhs.Name})
		if wantValue {
			b.emit(ir.Instr{Op: ir.LdLocal, Imm: int64(t), Ty: a.Type(), Sym: "$t"})
		}
	case *mimdc.RemoteRef:
		t := b.newTemp()
		b.lowerValue(a.RHS)
		b.emit(ir.Instr{Op: ir.StLocal, Imm: int64(t), Sym: "$t"})
		b.lowerValue(lhs.PE)
		b.at(a.Pos)
		b.emit(ir.Instr{Op: ir.LdLocal, Imm: int64(t), Sym: "$t"})
		b.emit(ir.Instr{Op: ir.StRemote, Imm: int64(lhs.Decl.Slot), Sym: lhs.Name})
		if wantValue {
			b.emit(ir.Instr{Op: ir.LdLocal, Imm: int64(t), Ty: a.Type(), Sym: "$t"})
		}
	default:
		panic(fmt.Sprintf("cfg: unassignable LHS %T survived analysis", a.LHS))
	}
}

// lowerShortCircuitValue materializes a && / || value (0 or 1) via
// control flow, preserving C short-circuit evaluation.
func (b *builder) lowerShortCircuitValue(e *mimdc.Binary) {
	t := b.newTemp()
	spills := b.spillAll()
	thenB := b.g.newBlock("sc-true")
	elseB := b.g.newBlock("sc-false")
	join := b.g.newBlock("sc-join")
	b.lowerCond(e, thenB.ID, elseB.ID)
	b.enter(thenB)
	b.emit(ir.Instr{Op: ir.PushC, Imm: 1, Ty: ir.Int})
	b.emit(ir.Instr{Op: ir.StLocal, Imm: int64(t), Sym: "$sc"})
	b.sealGoto(join.ID)
	b.enter(elseB)
	b.emit(ir.Instr{Op: ir.PushC, Imm: 0, Ty: ir.Int})
	b.emit(ir.Instr{Op: ir.StLocal, Imm: int64(t), Sym: "$sc"})
	b.sealGoto(join.ID)
	b.enter(join)
	b.reload(spills)
	b.emit(ir.Instr{Op: ir.LdLocal, Imm: int64(t), Ty: ir.Int, Sym: "$sc"})
}

// lowerCondValue materializes c ? t : f via control flow, evaluating
// only the selected arm (C semantics), with pending operands spilled
// across the split.
func (b *builder) lowerCondValue(e *mimdc.Cond) {
	tmp := b.newTemp()
	spills := b.spillAll()
	thenB := b.g.newBlock("cond-true")
	elseB := b.g.newBlock("cond-false")
	join := b.g.newBlock("cond-join")
	b.lowerCond(e.C, thenB.ID, elseB.ID)
	b.enter(thenB)
	b.lowerValue(e.T)
	b.emit(ir.Instr{Op: ir.StLocal, Imm: int64(tmp), Sym: "$cond"})
	b.sealGoto(join.ID)
	b.enter(elseB)
	b.lowerValue(e.F)
	b.emit(ir.Instr{Op: ir.StLocal, Imm: int64(tmp), Sym: "$cond"})
	b.sealGoto(join.ID)
	b.enter(join)
	b.reload(spills)
	b.emit(ir.Instr{Op: ir.LdLocal, Imm: int64(tmp), Ty: e.Type(), Sym: "$cond"})
}

// lowerCall lowers a call and returns the callee's return-value slot
// (None for void). Arguments are staged in temps (so that argument
// sub-calls to the same function cannot clobber parameter slots) and
// copied to the parameter slots. Pending operands are spilled across
// the split.
//
// With Options.ExpandCalls the callee's state graph is copied in-line
// at the site (§2.2) and its returns become plain gotos; otherwise —
// and always for calls that are recursive at the point of expansion —
// control transfers to the shared copy with a return-site token pushed
// and the callee exit's multiway return branch dispatches back.
func (b *builder) lowerCall(c *mimdc.Call) int {
	b.ensureCur()
	if b.opts.ExpandCalls && !b.inProgress[c.Name] {
		return b.inlineCall(c)
	}
	fi := b.fn(c.Decl)
	b.called[c.Name] = true

	b.stageArgs(c, fi.decl)
	spills := b.spillAll()
	cont := b.g.newBlock("ret:" + c.Name)
	b.emit(ir.Instr{Op: ir.PushRet, Imm: int64(cont.ID)})
	b.sealGoto(fi.entry)
	fi.exit.RetTargets = appendUnique(fi.exit.RetTargets, cont.ID)
	b.enter(cont)
	b.reload(spills)
	return fi.retSlot
}

// inlineCall expands the callee's body at the call site.
func (b *builder) inlineCall(c *mimdc.Call) int {
	retSlot := b.retSlotFor(c.Decl)
	b.stageArgs(c, c.Decl)
	spills := b.spillAll()
	cont := b.g.newBlock("inlret:" + c.Name)

	b.inProgress[c.Name] = true
	savedFn, savedLoops := b.curFn, b.loops
	b.curFn = &funcInfo{decl: c.Decl, exit: cont, retSlot: retSlot}
	b.loops = nil
	b.stmt(c.Decl.Body)
	b.sealGoto(cont.ID)
	b.curFn, b.loops = savedFn, savedLoops
	delete(b.inProgress, c.Name)

	b.enter(cont)
	b.reload(spills)
	return retSlot
}

// stageArgs evaluates arguments into temps then copies them into the
// callee's parameter slots.
func (b *builder) stageArgs(c *mimdc.Call, decl *mimdc.FuncDecl) {
	argTemps := make([]int, len(c.Args))
	for i, arg := range c.Args {
		b.lowerValue(arg)
		argTemps[i] = b.newTemp()
		b.emit(ir.Instr{Op: ir.StLocal, Imm: int64(argTemps[i]), Sym: "$arg"})
	}
	for i, prm := range decl.Params {
		b.emit(ir.Instr{Op: ir.LdLocal, Imm: int64(argTemps[i]), Sym: "$arg"})
		b.emit(ir.Instr{Op: ir.StLocal, Imm: int64(prm.Slot), Sym: prm.Name})
	}
}

// spillAll pops every pending operand into fresh temps; reload restores
// them in original order.
func (b *builder) spillAll() []int {
	n := b.depth
	spills := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		spills[i] = b.newTemp()
		b.emit(ir.Instr{Op: ir.StLocal, Imm: int64(spills[i]), Sym: "$spill"})
	}
	return spills
}

func (b *builder) reload(spills []int) {
	for _, s := range spills {
		b.emit(ir.Instr{Op: ir.LdLocal, Imm: int64(s), Sym: "$spill"})
	}
}

func appendUnique(xs []int, x int) []int {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}
