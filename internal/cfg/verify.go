package cfg

import (
	"fmt"

	"msc/internal/ir"
)

// Verify checks the structural invariants of a MIMD state graph:
//
//   - the entry state exists;
//   - every successor reference points at a live block;
//   - every block's stack code is balanced: it never pops below its own
//     entry depth, and its net effect is exactly one value for Branch
//     blocks (the condition) and zero otherwise;
//   - RetBr blocks enumerate at least one return site, and every
//     PushRet token names a live block listed by some RetBr.
//
// The meta-state converter and the code generator both assume these
// invariants. VerifyAll additionally checks the deeper structural
// invariants the optimizer relies on.
func Verify(g *Graph) error {
	if g.Block(g.Entry) == nil {
		return fmt.Errorf("cfg: entry state %d does not exist", g.Entry)
	}
	retTargets := make(map[int]bool)
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		for _, t := range b.RetTargets {
			retTargets[t] = true
		}
	}
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		for _, s := range b.Succs() {
			if g.Block(s) == nil {
				return fmt.Errorf("cfg: state %d has dangling successor %d", b.ID, s)
			}
		}
		net, minDepth := ir.StackBalance(b.Code)
		if minDepth < 0 {
			return fmt.Errorf("cfg: state %d pops below its entry stack depth (min %d)", b.ID, minDepth)
		}
		want := 0
		if b.Term == Branch {
			want = 1
		}
		if net != want {
			return fmt.Errorf("cfg: state %d has net stack effect %d, want %d (%s terminator)",
				b.ID, net, want, b.Term)
		}
		if b.Term == RetBr && len(b.RetTargets) == 0 {
			return fmt.Errorf("cfg: state %d is a return branch with no return sites", b.ID)
		}
		for _, in := range b.Code {
			if in.Op == ir.PushRet {
				t := int(in.Imm)
				if g.Block(t) == nil {
					return fmt.Errorf("cfg: state %d pushes return site %d which does not exist", b.ID, t)
				}
				if !retTargets[t] {
					return fmt.Errorf("cfg: state %d pushes return site %d not listed by any return branch", b.ID, t)
				}
			}
		}
	}
	return nil
}

// VerifyAll is the full cross-phase invariant checker: everything
// Verify checks plus the deeper structural invariants every transform
// (Simplify, Fold, the optimizer passes) must preserve. It runs after
// every optimizer pass in race and fuzz builds and between pipeline
// phases under Config.Verify, so a pass that corrupts the graph fails
// immediately instead of miscompiling downstream:
//
//   - index consistency: every live block's ID equals its slice index;
//   - memory-layout sanity: mono operands address [0, MonoSlots) and
//     all other memory operands address [0, Words);
//   - operand/def-use sanity: every Pop count is non-negative and every
//     PushC carries a concrete (non-void) constant type;
//   - successor symmetry: terminator kinds use exactly their own
//     successor fields (a Branch has both arms, a RetBr has targets and
//     no Next, Spawn has both continuations);
//   - position sanity: source positions carry no negative coordinates
//     (full monotonicity cannot hold after straightening and in-line
//     call expansion reorder source lines within one block).
func VerifyAll(g *Graph) error {
	if err := Verify(g); err != nil {
		return err
	}
	for i, b := range g.Blocks {
		if b == nil {
			continue
		}
		if b.ID != i {
			return fmt.Errorf("cfg: block at index %d carries ID %d", i, b.ID)
		}
		if err := verifyBlock(g, b); err != nil {
			return err
		}
	}
	return nil
}

// verifyBlock checks one block's operand and terminator invariants.
func verifyBlock(g *Graph, b *Block) error {
	if b.Pos.Line < 0 || b.Pos.Col < 0 {
		return fmt.Errorf("cfg: state %d has negative source position %v", b.ID, b.Pos)
	}
	for i, in := range b.Code {
		if in.Pos.Line < 0 || in.Pos.Col < 0 {
			return fmt.Errorf("cfg: state %d instr %d has negative source position %v", b.ID, i, in.Pos)
		}
		slot := int(in.Imm)
		switch in.Op {
		case ir.LdMono, ir.StMono:
			if slot < 0 || slot >= g.MonoSlots {
				return fmt.Errorf("cfg: state %d instr %d (%s) addresses mono slot %d outside [0,%d)",
					b.ID, i, in, slot, g.MonoSlots)
			}
		case ir.LdLocal, ir.StLocal, ir.LdIndex, ir.StIndex, ir.LdRemote, ir.StRemote:
			if slot < 0 || slot >= g.Words {
				return fmt.Errorf("cfg: state %d instr %d (%s) addresses slot %d outside [0,%d)",
					b.ID, i, in, slot, g.Words)
			}
		case ir.Pop:
			if in.Imm < 0 {
				return fmt.Errorf("cfg: state %d instr %d pops a negative count %d", b.ID, i, in.Imm)
			}
		case ir.PushC:
			if in.Ty == ir.Void {
				return fmt.Errorf("cfg: state %d instr %d pushes a void constant", b.ID, i)
			}
		}
	}
	// Successor symmetry: each terminator uses exactly its own fields.
	switch b.Term {
	case End, Halt:
		// No successors; stale Next/FNext values are ignored by Succs,
		// but a RetTargets list on a non-RetBr block is a transform bug.
		if len(b.RetTargets) != 0 {
			return fmt.Errorf("cfg: state %d (%s) carries return targets", b.ID, b.Term)
		}
	case Goto:
		if b.Next == None {
			return fmt.Errorf("cfg: state %d is a goto with no successor", b.ID)
		}
		if len(b.RetTargets) != 0 {
			return fmt.Errorf("cfg: state %d (goto) carries return targets", b.ID)
		}
	case Branch:
		if b.Next == None || b.FNext == None {
			return fmt.Errorf("cfg: state %d is a branch with a missing arm (true %d, false %d)",
				b.ID, b.Next, b.FNext)
		}
		if len(b.RetTargets) != 0 {
			return fmt.Errorf("cfg: state %d (branch) carries return targets", b.ID)
		}
	case RetBr:
		// Verify already requires a non-empty, live RetTargets list.
	case Spawn:
		if b.Next == None || b.SpawnNext == None {
			return fmt.Errorf("cfg: state %d is a spawn with a missing continuation (parent %d, child %d)",
				b.ID, b.Next, b.SpawnNext)
		}
		if len(b.RetTargets) != 0 {
			return fmt.Errorf("cfg: state %d (spawn) carries return targets", b.ID)
		}
	default:
		return fmt.Errorf("cfg: state %d has unknown terminator %d", b.ID, uint8(b.Term))
	}
	return nil
}
