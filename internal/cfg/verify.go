package cfg

import (
	"fmt"

	"msc/internal/ir"
)

// Verify checks the structural invariants of a MIMD state graph:
//
//   - the entry state exists;
//   - every successor reference points at a live block;
//   - every block's stack code is balanced: it never pops below its own
//     entry depth, and its net effect is exactly one value for Branch
//     blocks (the condition) and zero otherwise;
//   - RetBr blocks enumerate at least one return site, and every
//     PushRet token names a live block listed by some RetBr.
//
// The meta-state converter and the code generator both assume these
// invariants.
func Verify(g *Graph) error {
	if g.Block(g.Entry) == nil {
		return fmt.Errorf("cfg: entry state %d does not exist", g.Entry)
	}
	retTargets := make(map[int]bool)
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		for _, t := range b.RetTargets {
			retTargets[t] = true
		}
	}
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		for _, s := range b.Succs() {
			if g.Block(s) == nil {
				return fmt.Errorf("cfg: state %d has dangling successor %d", b.ID, s)
			}
		}
		net, minDepth := ir.StackBalance(b.Code)
		if minDepth < 0 {
			return fmt.Errorf("cfg: state %d pops below its entry stack depth (min %d)", b.ID, minDepth)
		}
		want := 0
		if b.Term == Branch {
			want = 1
		}
		if net != want {
			return fmt.Errorf("cfg: state %d has net stack effect %d, want %d (%s terminator)",
				b.ID, net, want, b.Term)
		}
		if b.Term == RetBr && len(b.RetTargets) == 0 {
			return fmt.Errorf("cfg: state %d is a return branch with no return sites", b.ID)
		}
		for _, in := range b.Code {
			if in.Op == ir.PushRet {
				t := int(in.Imm)
				if g.Block(t) == nil {
					return fmt.Errorf("cfg: state %d pushes return site %d which does not exist", b.ID, t)
				}
				if !retTargets[t] {
					return fmt.Errorf("cfg: state %d pushes return site %d not listed by any return branch", b.ID, t)
				}
			}
		}
	}
	return nil
}
