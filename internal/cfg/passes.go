package cfg

import "msc/internal/ir"

// SimplifyStats reports what a Simplify run did, for the compile
// metrics.
type SimplifyStats struct {
	// BlocksBefore/BlocksAfter count non-nil blocks at entry and exit.
	BlocksBefore int
	BlocksAfter  int
	// Iterations is the number of fixed-point rounds (including the
	// final no-change round).
	Iterations int
}

// Simplify applies code straightening, empty-node removal, and
// unreachable-state pruning to a fixed point, then renumbers the blocks
// compactly (§2.1: "code straightening and removal of empty nodes are
// applied to obtain the simplest possible graph", maximizing basic
// blocks). It returns g for chaining.
func Simplify(g *Graph) *Graph {
	SimplifyWithStats(g)
	return g
}

// SimplifyWithStats is Simplify plus pass observability.
func SimplifyWithStats(g *Graph) SimplifyStats {
	st := SimplifyStats{BlocksBefore: g.NumBlocks()}
	for {
		st.Iterations++
		changed := straighten(g)
		changed = Fold(g) || changed
		changed = removeEmpty(g) || changed
		changed = pruneUnreachable(g) || changed
		if !changed {
			break
		}
	}
	Renumber(g)
	st.BlocksAfter = g.NumBlocks()
	return st
}

// preds returns the predecessor count of every block, counting the
// program entry as having one implicit predecessor.
func preds(g *Graph) []int {
	n := make([]int, len(g.Blocks))
	if g.Entry >= 0 && g.Entry < len(n) {
		n[g.Entry]++
	}
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		for _, s := range b.Succs() {
			if s >= 0 && s < len(n) {
				n[s]++
			}
		}
	}
	return n
}

// straighten merges each block with its unique Goto successor when that
// successor has no other predecessors. A barrier block is never merged
// into its predecessor (PEs must be able to wait *before* executing the
// code that follows the barrier), but post-barrier code may be merged
// into the barrier block itself.
func straighten(g *Graph) bool {
	changed := false
	for {
		p := preds(g)
		merged := false
		for _, a := range g.Blocks {
			if a == nil || a.Term != Goto {
				continue
			}
			bID := a.Next
			b := g.Block(bID)
			if b == nil || bID == a.ID || bID == g.Entry || p[bID] != 1 || b.Barrier {
				continue
			}
			a.Code = append(a.Code, b.Code...)
			if !a.Pos.IsValid() {
				a.Pos = b.Pos
			}
			a.Term = b.Term
			a.Next = b.Next
			a.FNext = b.FNext
			a.RetTargets = b.RetTargets
			a.SpawnNext = b.SpawnNext
			if a.Label != "" && b.Label != "" {
				a.Label = a.Label + "+" + b.Label
			} else if b.Label != "" {
				a.Label = b.Label
			}
			g.Blocks[bID] = nil
			merged = true
		}
		if !merged {
			return changed
		}
		changed = true
	}
}

// removeEmpty bypasses blocks that hold no code and just jump onward.
// Barrier-wait states are semantic and never removed.
func removeEmpty(g *Graph) bool {
	// forward chases chains of empty gotos with cycle protection.
	memo := make(map[int]int)
	var forward func(id int, seen map[int]bool) int
	forward = func(id int, seen map[int]bool) int {
		if f, ok := memo[id]; ok {
			return f
		}
		b := g.Block(id)
		if b == nil || b.Term != Goto || len(b.Code) > 0 || b.Barrier || seen[id] {
			memo[id] = id
			return id
		}
		seen[id] = true
		f := forward(b.Next, seen)
		memo[id] = f
		return f
	}
	redirect := func(id int) int {
		if id < 0 {
			return id
		}
		return forward(id, make(map[int]bool))
	}

	changed := false
	apply := func(ref *int) {
		nv := redirect(*ref)
		if nv != *ref {
			*ref = nv
			changed = true
		}
	}
	apply(&g.Entry)
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		switch b.Term {
		case Goto:
			apply(&b.Next)
		case Branch:
			apply(&b.Next)
			apply(&b.FNext)
		case Spawn:
			apply(&b.Next)
			apply(&b.SpawnNext)
		case RetBr:
			for i := range b.RetTargets {
				apply(&b.RetTargets[i])
			}
			b.RetTargets = dedupe(b.RetTargets)
		}
		for i := range b.Code {
			if b.Code[i].Op == ir.PushRet {
				old := int(b.Code[i].Imm)
				if nv := redirect(old); nv != old {
					b.Code[i].Imm = int64(nv)
					changed = true
				}
			}
		}
	}
	return changed
}

func dedupe(xs []int) []int {
	out := xs[:0]
	for _, x := range xs {
		dup := false
		for _, y := range out {
			if y == x {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

// pruneUnreachable removes blocks not reachable from the entry state
// (spawn children and return sites count as reachable).
func pruneUnreachable(g *Graph) bool {
	seen := make([]bool, len(g.Blocks))
	stack := []int{g.Entry}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id < 0 || id >= len(seen) || seen[id] || g.Blocks[id] == nil {
			continue
		}
		seen[id] = true
		stack = append(stack, g.Blocks[id].Succs()...)
	}
	changed := false
	for i, b := range g.Blocks {
		if b != nil && !seen[i] {
			g.Blocks[i] = nil
			changed = true
		}
	}
	return changed
}

// Renumber compacts block IDs to 0..n-1 (in the existing order) and
// rewrites every reference, including PushRet return-site tokens.
func Renumber(g *Graph) {
	remap := make(map[int]int)
	var live []*Block
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		remap[b.ID] = len(live)
		live = append(live, b)
	}
	ref := func(id int) int {
		if id < 0 {
			return id
		}
		return remap[id]
	}
	for _, b := range live {
		b.ID = remap[b.ID]
		b.Next = ref(b.Next)
		b.FNext = ref(b.FNext)
		b.SpawnNext = ref(b.SpawnNext)
		for i := range b.RetTargets {
			b.RetTargets[i] = ref(b.RetTargets[i])
		}
		for i := range b.Code {
			if b.Code[i].Op == ir.PushRet {
				b.Code[i].Imm = int64(ref(int(b.Code[i].Imm)))
			}
		}
	}
	g.Entry = ref(g.Entry)
	g.Blocks = live
}
