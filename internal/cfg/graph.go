// Package cfg builds and transforms the MIMD state graph (§2.1): a
// control-flow graph whose nodes are maximal basic blocks of stack code.
// Each block is one MIMD state with zero, one, or two exit arcs; barrier
// synchronization points and spawn points are flagged states. The graph
// is what the meta-state converter consumes.
package cfg

import (
	"fmt"
	"strings"

	"msc/internal/ir"
)

// TermKind classifies a block's terminator: how control leaves the state.
type TermKind uint8

const (
	// End marks the end of the process (§2.3: a MIMD state with no exit
	// arcs). The PE becomes done and contributes no further apc bits.
	End TermKind = iota
	// Halt releases the PE back to the free-processor pool (§3.2.5).
	Halt
	// Goto is unconditional sequencing to Next.
	Goto
	// Branch pops the condition: nonzero goes to Next (the TRUE
	// successor), zero to FNext (the FALSE successor). This is the
	// JumpF(false,true) of Listing 5.
	Branch
	// RetBr pops a return-site token from the PE's return stack and
	// branches to that block: the paper's return-as-multiway-branch
	// (§2.2). RetTargets enumerates every possible destination.
	RetBr
	// Spawn takes both paths (§3.2.5): the original process continues at
	// Next while newly created processes begin at SpawnNext.
	Spawn
)

func (k TermKind) String() string {
	switch k {
	case End:
		return "end"
	case Halt:
		return "halt"
	case Goto:
		return "goto"
	case Branch:
		return "branch"
	case RetBr:
		return "retbr"
	case Spawn:
		return "spawn"
	}
	return fmt.Sprintf("term(%d)", uint8(k))
}

// None marks an unused successor field.
const None = -1

// Block is one MIMD state: a maximal basic block of straight-line stack
// code plus a terminator.
type Block struct {
	ID         int
	Code       []ir.Instr
	Term       TermKind
	Next       int   // Goto/Branch/Spawn successor (Branch: TRUE arm)
	FNext      int   // Branch only: FALSE arm
	RetTargets []int // RetBr only: all possible return sites
	SpawnNext  int   // Spawn only: entry state of created processes
	Barrier    bool  // barrier-wait state (§2.6)
	Label      string
	// Pos is the source position of the statement the block's code
	// begins at (for barrier states: the wait statement); diagnostics
	// anchor here when no finer instruction position applies.
	Pos ir.Pos
}

// Cost returns the block's execution time in cycles: code cost plus the
// terminator's dispatch cost. Barrier-wait states report their true
// (usually zero) cost; waiting time is a property of the schedule, not
// the state.
func (b *Block) Cost() int {
	return ir.CodeCost(b.Code) + termCost(b.Term)
}

func termCost(k TermKind) int {
	switch k {
	case End:
		return 0
	case Halt, Goto:
		return 1
	case Branch, Spawn:
		return 2
	case RetBr:
		return 3
	}
	return 0
}

// Succs returns every possible successor state of b.
func (b *Block) Succs() []int {
	switch b.Term {
	case Goto:
		return []int{b.Next}
	case Branch:
		if b.Next == b.FNext {
			return []int{b.Next}
		}
		return []int{b.Next, b.FNext}
	case RetBr:
		return append([]int(nil), b.RetTargets...)
	case Spawn:
		return []int{b.Next, b.SpawnNext}
	}
	return nil
}

// Graph is the MIMD state graph for a whole program. Blocks is indexed
// by block ID after Renumber; before that, IDs are stable but the slice
// may contain nil holes left by removed blocks.
type Graph struct {
	Blocks []*Block
	Entry  int // the MIMD start state all PEs begin in (SPMD)

	// Memory layout inherited from the front end plus builder temps.
	MonoSlots int // replicated slots [0, MonoSlots)
	Words     int // total per-PE memory words

	// RetSlot maps a function name to the slot holding its return value;
	// used by drivers to read back results.
	RetSlot map[string]int
	// VarSlot maps a global variable name to its slot.
	VarSlot map[string]int
}

// Block returns the block with the given ID, or nil.
func (g *Graph) Block(id int) *Block {
	if id < 0 || id >= len(g.Blocks) {
		return nil
	}
	return g.Blocks[id]
}

// NumBlocks counts live (non-nil) blocks.
func (g *Graph) NumBlocks() int {
	n := 0
	for _, b := range g.Blocks {
		if b != nil {
			n++
		}
	}
	return n
}

// newBlock appends a fresh empty block and returns it.
func (g *Graph) newBlock(label string) *Block {
	b := &Block{ID: len(g.Blocks), Term: End, Next: None, FNext: None, SpawnNext: None, Label: label}
	g.Blocks = append(g.Blocks, b)
	return b
}

// String renders the graph as readable text, one block per stanza.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "entry: %d\n", g.Entry)
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		flags := ""
		if b.Barrier {
			flags = " [barrier]"
		}
		fmt.Fprintf(&sb, "state %d%s (%s, cost %d):\n", b.ID, flags, b.Label, b.Cost())
		for _, in := range b.Code {
			fmt.Fprintf(&sb, "    %s\n", in)
		}
		switch b.Term {
		case End:
			sb.WriteString("    end\n")
		case Halt:
			sb.WriteString("    halt\n")
		case Goto:
			fmt.Fprintf(&sb, "    goto %d\n", b.Next)
		case Branch:
			fmt.Fprintf(&sb, "    branch true->%d false->%d\n", b.Next, b.FNext)
		case RetBr:
			fmt.Fprintf(&sb, "    retbr %v\n", b.RetTargets)
		case Spawn:
			fmt.Fprintf(&sb, "    spawn parent->%d child->%d\n", b.Next, b.SpawnNext)
		}
	}
	return sb.String()
}

// Dot renders the graph in Graphviz dot format (Figure 1 style).
func (g *Graph) Dot(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", title)
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		shape := "circle"
		if b.Barrier {
			shape = "doublecircle"
		}
		fmt.Fprintf(&sb, "  n%d [label=\"%d\" shape=%s];\n", b.ID, b.ID, shape)
		switch b.Term {
		case Goto:
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", b.ID, b.Next)
		case Branch:
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"T\"];\n  n%d -> n%d [label=\"F\"];\n",
				b.ID, b.Next, b.ID, b.FNext)
		case RetBr:
			for _, t := range b.RetTargets {
				fmt.Fprintf(&sb, "  n%d -> n%d [label=\"ret\"];\n", b.ID, t)
			}
		case Spawn:
			fmt.Fprintf(&sb, "  n%d -> n%d;\n  n%d -> n%d [label=\"spawn\" style=dashed];\n",
				b.ID, b.Next, b.ID, b.SpawnNext)
		}
	}
	fmt.Fprintf(&sb, "  start [shape=point];\n  start -> n%d;\n}\n", g.Entry)
	return sb.String()
}

// Clone returns a deep copy of the graph (blocks, code, maps).
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Blocks:    make([]*Block, len(g.Blocks)),
		Entry:     g.Entry,
		MonoSlots: g.MonoSlots,
		Words:     g.Words,
		RetSlot:   make(map[string]int, len(g.RetSlot)),
		VarSlot:   make(map[string]int, len(g.VarSlot)),
	}
	for i, b := range g.Blocks {
		if b == nil {
			continue
		}
		nb := *b
		nb.Code = append([]ir.Instr(nil), b.Code...)
		nb.RetTargets = append([]int(nil), b.RetTargets...)
		ng.Blocks[i] = &nb
	}
	for k, v := range g.RetSlot {
		ng.RetSlot[k] = v
	}
	for k, v := range g.VarSlot {
		ng.VarSlot[k] = v
	}
	return ng
}
