package cfg

import (
	"strings"
	"testing"

	"msc/internal/ir"
)

// mimdRun executes a graph single-threaded via a minimal interpreter
// local to this test file (the real engines live in other packages that
// import cfg, so they cannot be used here).
func mimdRun(g *Graph, n int) (*miniResult, error) {
	return runMini(g, n)
}

// hand-built graphs exercise pass edge cases the builder never produces.

func TestRemoveEmptyChain(t *testing.T) {
	g := &Graph{RetSlot: map[string]int{}, VarSlot: map[string]int{}}
	a := g.newBlock("a")
	e1 := g.newBlock("e1")
	e2 := g.newBlock("e2")
	end := g.newBlock("end")
	a.Code = []ir.Instr{{Op: ir.PushC, Imm: 1}, {Op: ir.Pop, Imm: 1}}
	a.Term = Goto
	a.Next = e1.ID
	e1.Term = Goto
	e1.Next = e2.ID
	e2.Term = Goto
	e2.Next = end.ID
	end.Term = End
	g.Entry = a.ID

	Simplify(g)
	if err := Verify(g); err != nil {
		t.Fatal(err)
	}
	// a and end merge through the bypassed chain.
	if g.NumBlocks() != 1 {
		t.Fatalf("blocks = %d, want 1\n%s", g.NumBlocks(), g)
	}
}

func TestRemoveEmptyCycleProtection(t *testing.T) {
	// Two empty gotos forming a cycle, reachable from entry: the chaser
	// must not loop forever; the states stay (an empty infinite loop).
	g := &Graph{RetSlot: map[string]int{}, VarSlot: map[string]int{}}
	a := g.newBlock("a")
	b := g.newBlock("b")
	a.Term = Goto
	a.Next = b.ID
	b.Term = Goto
	b.Next = a.ID
	g.Entry = a.ID

	Simplify(g)
	if err := Verify(g); err != nil {
		t.Fatal(err)
	}
	if g.NumBlocks() == 0 {
		t.Fatalf("cycle erased entirely")
	}
}

func TestSelfLoopNotStraightened(t *testing.T) {
	g := &Graph{RetSlot: map[string]int{}, VarSlot: map[string]int{}}
	a := g.newBlock("a")
	a.Code = []ir.Instr{{Op: ir.PushC, Imm: 1}, {Op: ir.Pop, Imm: 1}}
	a.Term = Goto
	a.Next = a.ID
	g.Entry = a.ID
	Simplify(g)
	if g.NumBlocks() != 1 || g.Block(g.Entry).Next != g.Entry {
		t.Fatalf("self-loop mangled:\n%s", g)
	}
}

func TestEntryNotMergedAway(t *testing.T) {
	// b gotos the entry; the entry must survive straightening even with
	// a single predecessor.
	g := &Graph{RetSlot: map[string]int{}, VarSlot: map[string]int{}}
	entry := g.newBlock("entry")
	entry.Code = []ir.Instr{{Op: ir.PushC, Imm: 1}}
	entry.Term = Branch
	b := g.newBlock("b")
	b.Code = []ir.Instr{{Op: ir.PushC, Imm: 2}, {Op: ir.Pop, Imm: 1}}
	b.Term = Goto
	b.Next = entry.ID
	end := g.newBlock("end")
	end.Term = End
	entry.Next = b.ID
	entry.FNext = end.ID
	g.Entry = entry.ID

	Simplify(g)
	if err := Verify(g); err != nil {
		t.Fatal(err)
	}
	if g.Block(g.Entry).Term != Branch {
		t.Fatalf("entry merged away:\n%s", g)
	}
}

func TestUnreachableSpawnChildKept(t *testing.T) {
	g := &Graph{RetSlot: map[string]int{}, VarSlot: map[string]int{}}
	a := g.newBlock("a")
	child := g.newBlock("child")
	orphan := g.newBlock("orphan")
	a.Term = Spawn
	a.Next = child.ID // parent continues into child's code? no: use separate
	a.SpawnNext = child.ID
	child.Term = Halt
	orphan.Term = End
	g.Entry = a.ID

	Simplify(g)
	if g.Block(g.Entry) == nil {
		t.Fatalf("entry vanished")
	}
	found := false
	for _, blk := range g.Blocks {
		if blk.Term == Halt {
			found = true
		}
	}
	if !found {
		t.Fatalf("spawn child pruned:\n%s", g)
	}
	for _, blk := range g.Blocks {
		if blk.Label == "orphan" {
			t.Fatalf("orphan survived pruning")
		}
	}
}

func TestDotRendersAllTermKinds(t *testing.T) {
	g := MustBuild(`
poly int r;
int f(int v) { return v + 1; }
void w() { halt; }
void main()
{
    poly int x;
    if (x) { r = f(1); } else { r = f(2); }
    spawn w();
    return;
}
`)
	Simplify(g)
	dot := g.Dot("all-terms")
	for _, want := range []string{"label=\"ret\"", "label=\"spawn\"", "label=\"T\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
	s := g.String()
	for _, want := range []string{"retbr", "spawn parent->", "halt"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestBranchSameTargetSuccs(t *testing.T) {
	b := &Block{Term: Branch, Next: 3, FNext: 3}
	if got := b.Succs(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Succs = %v", got)
	}
}

func TestFoldConstants(t *testing.T) {
	g := MustBuild(`
poly int x;
poly float f;
void main()
{
    x = 2 + 3 * 4;
    x = x + (10 / 2 - 1);
    f = 1.5 * 2.0;
    x = -(7);
    return;
}
`)
	Simplify(g)
	if err := Verify(g); err != nil {
		t.Fatal(err)
	}
	// Every constant expression folds to a single PushC; no arithmetic
	// on constants survives.
	for _, b := range g.Blocks {
		for i, in := range b.Code {
			if ir.IsBinary(in.Op) || ir.IsUnary(in.Op) {
				// Operands must not both be constants.
				if i >= 2 && b.Code[i-1].Op == ir.PushC && b.Code[i-2].Op == ir.PushC {
					t.Fatalf("unfolded constant binary at %v: %v", b.ID, b.Code)
				}
			}
		}
	}
	// Check folded values via execution.
	res, err := mimdRun(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mem[0][g.VarSlot["x"]]; got != -7 {
		t.Fatalf("x = %d, want -7", got)
	}
	if got := res.Mem[0][g.VarSlot["f"]].Float(); got != 3.0 {
		t.Fatalf("f = %g, want 3", got)
	}
}

func TestFoldMixedTypesNotConfused(t *testing.T) {
	// int 2 converted to float then multiplied: the I2F fold must carry
	// the float encoding, not reinterpret bits.
	g := MustBuild(`
poly float f;
void main()
{
    f = 2 * 1.5;
    return;
}
`)
	Simplify(g)
	res, err := mimdRun(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mem[0][g.VarSlot["f"]].Float(); got != 3.0 {
		t.Fatalf("f = %g, want 3", got)
	}
}

func TestFoldRefusesDivByConstZero(t *testing.T) {
	// 7 / 0 is totalized to 0 at runtime, but the compile-time fold must
	// not bake that in silently: the Div survives to execution (where
	// the machine semantics produce 0) and vet gets to warn about it.
	g := MustBuild(`
poly int x;
void main()
{
    x = 7 / 0;
    return;
}
`)
	Simplify(g)
	divs := 0
	for _, b := range g.Blocks {
		for _, in := range b.Code {
			if in.Op == ir.Div {
				divs++
			}
		}
	}
	if divs != 1 {
		t.Fatalf("Div count after Simplify = %d, want 1 (fold must refuse /0)", divs)
	}
	res, err := mimdRun(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mem[0][g.VarSlot["x"]]; got != 0 {
		t.Fatalf("x = %d, want 0 (total machine semantics)", got)
	}
}

func TestFoldStoreLoadForward(t *testing.T) {
	g := MustBuild(`
poly int x, y;
void main()
{
    x = iproc + 1;
    y = x;
    do { x = x - 1; } while (x);
    return;
}
`)
	Simplify(g)
	// No StLocal immediately followed by LdLocal of the same slot remains.
	for _, b := range g.Blocks {
		for i := 1; i < len(b.Code); i++ {
			if b.Code[i].Op == ir.LdLocal && b.Code[i-1].Op == ir.StLocal &&
				b.Code[i].Imm == b.Code[i-1].Imm {
				t.Fatalf("store-load pair survived in state %d: %v", b.ID, b.Code)
			}
		}
	}
	res, err := mimdRun(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < 3; pe++ {
		if got := res.Mem[pe][g.VarSlot["y"]]; got != ir.Word(pe+1) {
			t.Fatalf("PE %d: y = %d, want %d", pe, got, pe+1)
		}
		if got := res.Mem[pe][g.VarSlot["x"]]; got != 0 {
			t.Fatalf("PE %d: x = %d, want 0", pe, got)
		}
	}
}
