package cfg

import (
	"strings"
	"testing"

	"msc/internal/ir"
)

// verifyGraph builds a minimal well-formed two-block graph that passes
// VerifyAll, for the corruption tests to break one invariant at a time.
func verifyGraph() *Graph {
	g := &Graph{MonoSlots: 1, Words: 4}
	b0 := g.newBlock("entry")
	b1 := g.newBlock("exit")
	b0.Code = []ir.Instr{
		{Op: ir.PushC, Imm: 1, Ty: ir.Int},
		{Op: ir.StLocal, Imm: 2},
		{Op: ir.LdLocal, Imm: 2},
	}
	b0.Term = Branch
	b0.Next = b1.ID
	b0.FNext = b1.ID
	b1.Term = End
	g.Entry = b0.ID
	return g
}

func TestVerifyAllAcceptsWellFormed(t *testing.T) {
	if err := VerifyAll(verifyGraph()); err != nil {
		t.Fatalf("VerifyAll rejected a well-formed graph: %v", err)
	}
}

func TestVerifyAllCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(g *Graph)
		want    string
	}{
		{"id-index-mismatch", func(g *Graph) { g.Blocks[1].ID = 7 }, "carries ID"},
		{"mono-slot-out-of-range", func(g *Graph) {
			g.Blocks[1].Code = []ir.Instr{{Op: ir.LdMono, Imm: 3}, {Op: ir.Pop, Imm: 1}}
		}, "mono slot"},
		{"local-slot-out-of-range", func(g *Graph) {
			g.Blocks[1].Code = []ir.Instr{{Op: ir.LdLocal, Imm: 99}, {Op: ir.Pop, Imm: 1}}
		}, "outside"},
		{"negative-pop", func(g *Graph) {
			// Balanced overall so the structural check (not the stack
			// balance check) is what trips.
			g.Blocks[1].Code = []ir.Instr{
				{Op: ir.PushC, Imm: 1, Ty: ir.Int}, {Op: ir.Pop, Imm: -1}, {Op: ir.Pop, Imm: 2}}
		}, "negative count"},
		{"void-constant", func(g *Graph) {
			g.Blocks[1].Code = []ir.Instr{{Op: ir.PushC, Imm: 0, Ty: ir.Void}, {Op: ir.Pop, Imm: 1}}
		}, "void constant"},
		{"branch-missing-arm", func(g *Graph) { g.Blocks[0].FNext = None }, "dangling successor"},
		{"goto-no-successor", func(g *Graph) {
			// Caught as a dangling successor by the base Verify.
			g.Blocks[0].Code = g.Blocks[0].Code[:2] // drop the condition load
			g.Blocks[0].Term = Goto
			g.Blocks[0].Next = None
		}, "dangling successor"},
		{"stale-ret-targets", func(g *Graph) { g.Blocks[1].RetTargets = []int{0} }, "carries return targets"},
		{"negative-position", func(g *Graph) {
			g.Blocks[1].Code = []ir.Instr{{Op: ir.Nop, Pos: ir.Pos{Line: -1, Col: 2}}}
		}, "negative source position"},
		{"stack-imbalance", func(g *Graph) {
			g.Blocks[1].Code = []ir.Instr{{Op: ir.PushC, Imm: 5, Ty: ir.Int}}
		}, "net stack effect"},
		{"pops-below-entry", func(g *Graph) {
			g.Blocks[1].Code = []ir.Instr{{Op: ir.Pop, Imm: 1}, {Op: ir.PushC, Imm: 1, Ty: ir.Int}, {Op: ir.Pop, Imm: 1}}
		}, "below its entry"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := verifyGraph()
			c.corrupt(g)
			err := VerifyAll(g)
			if err == nil {
				t.Fatalf("VerifyAll accepted corrupted graph (%s)", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("VerifyAll error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestVerifyAllOnBuiltGraphs checks the invariants hold for real
// lowered programs, raw and simplified, with and without call
// expansion — the states VerifyAll is run against in the pipeline.
func TestVerifyAllOnBuiltGraphs(t *testing.T) {
	const src = `
mono int total;
poly int x;
int double(int v) { return v * 2; }
void main()
{
    poly int i;
    x = 0;
    for (i = 0; i < 3; i = i + 1) {
        x = x + double(i);
    }
    wait;
    total = x;
    return;
}
`
	prog, err := parseAnalyze(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, expand := range []bool{false, true} {
		g, err := BuildWith(prog, Options{ExpandCalls: expand})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAll(g); err != nil {
			t.Errorf("raw graph (expand=%v): %v", expand, err)
		}
		Simplify(g)
		if err := VerifyAll(g); err != nil {
			t.Errorf("simplified graph (expand=%v): %v", expand, err)
		}
	}
}
