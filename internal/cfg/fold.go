package cfg

import "msc/internal/ir"

// Fold applies constant-folding peepholes to every block's stack code:
//
//	PushC a; PushC b; <binary op>  →  PushC (a op b)
//	PushC a; <unary op>            →  PushC (op a)
//	PushC a; Pop(1)                →  (nothing)
//	StLocal s; LdLocal s           →  Dup; StLocal s   (store-load forward)
//
// Folding shortens blocks, which matters to the meta-state cost model:
// block costs drive the §2.4 time-splitting heuristic and every cycle
// of straight-line code is broadcast to the whole machine. Run by
// Simplify until a fixed point. Reports whether anything changed.
func Fold(g *Graph) bool {
	changed := false
	for _, b := range g.Blocks {
		if b == nil {
			continue
		}
		for foldBlock(b) {
			changed = true
		}
	}
	return changed
}

// foldBlock performs one left-to-right folding sweep; reports whether it
// rewrote anything.
func foldBlock(b *Block) bool {
	out := b.Code[:0]
	changed := false
	for _, in := range b.Code {
		n := len(out)
		switch {
		case ir.IsBinary(in.Op) && n >= 2 &&
			out[n-1].Op == ir.PushC && out[n-2].Op == ir.PushC &&
			typesMatchBinary(in.Op, out[n-2], out[n-1]):
			// FoldBinary refuses division by constant zero and integer
			// overflow: those degrade to the unfolded form (and a vet
			// diagnostic) rather than bake a suspicious constant in.
			v, ok := ir.FoldBinary(in.Op, ir.Word(out[n-2].Imm), ir.Word(out[n-1].Imm))
			if !ok {
				out = append(out, in)
				continue
			}
			out = out[:n-2]
			out = append(out, ir.Instr{Op: ir.PushC, Imm: int64(v), Ty: resultType(in.Op)})
			changed = true
		case ir.IsUnary(in.Op) && n >= 1 && out[n-1].Op == ir.PushC &&
			typesMatchUnary(in.Op, out[n-1]):
			v, ok := ir.FoldUnary(in.Op, ir.Word(out[n-1].Imm))
			if !ok {
				out = append(out, in)
				continue
			}
			out = out[:n-1]
			out = append(out, ir.Instr{Op: ir.PushC, Imm: int64(v), Ty: resultType(in.Op)})
			changed = true
		case in.Op == ir.Pop && in.Imm == 1 && n >= 1 && out[n-1].Op == ir.PushC:
			out = out[:n-1]
			changed = true
		case in.Op == ir.Dup && n >= 1 && out[n-1].Op == ir.PushC:
			c := out[n-1]
			out = append(out, c)
			changed = true
		case in.Op == ir.LdLocal && n >= 1 && out[n-1].Op == ir.StLocal &&
			out[n-1].Imm == in.Imm:
			// Forward the stored value instead of reloading it. Only for
			// private slots: a mono store's broadcast winner can differ
			// from a PE's own value under (undefined) racy writes.
			st := out[n-1]
			out = out[:n-1]
			out = append(out, ir.Instr{Op: ir.Dup}, st)
			changed = true
		default:
			out = append(out, in)
		}
	}
	b.Code = out
	return changed
}

// typesMatchBinary guards against folding a float operator over int
// constants or vice versa (the encodings differ).
func typesMatchBinary(op ir.Op, a, b ir.Instr) bool {
	if op.IsFloat() {
		return a.Ty == ir.Float && b.Ty == ir.Float
	}
	return a.Ty != ir.Float && b.Ty != ir.Float
}

func typesMatchUnary(op ir.Op, a ir.Instr) bool {
	switch op {
	case ir.FNeg, ir.F2I:
		return a.Ty == ir.Float
	case ir.I2F:
		return a.Ty != ir.Float
	default:
		return a.Ty != ir.Float
	}
}

// resultType gives the constant type an op's folded result carries.
func resultType(op ir.Op) ir.Type {
	switch op {
	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv, ir.FNeg, ir.I2F:
		return ir.Float
	}
	return ir.Int
}
