package cfg

import (
	"fmt"

	"msc/internal/ir"
)

// miniResult and runMini form a deliberately tiny single-pc interpreter
// used only by this package's tests (the real engines import cfg and
// would create an import cycle). It supports the subset of operations
// the pass tests need.
type miniResult struct {
	Mem [][]ir.Word
}

func runMini(g *Graph, n int) (*miniResult, error) {
	res := &miniResult{Mem: make([][]ir.Word, n)}
	for pe := 0; pe < n; pe++ {
		res.Mem[pe] = make([]ir.Word, g.Words)
		var stack []ir.Word
		pop := func() ir.Word {
			w := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			return w
		}
		pc := g.Entry
		for steps := 0; ; steps++ {
			if steps > 100000 {
				return nil, fmt.Errorf("mini: runaway execution")
			}
			b := g.Block(pc)
			if b == nil {
				return nil, fmt.Errorf("mini: no block %d", pc)
			}
			for _, in := range b.Code {
				switch {
				case in.Op == ir.PushC:
					stack = append(stack, ir.Word(in.Imm))
				case in.Op == ir.LdLocal || in.Op == ir.LdMono:
					stack = append(stack, res.Mem[pe][in.Imm])
				case in.Op == ir.StLocal || in.Op == ir.StMono:
					res.Mem[pe][in.Imm] = pop()
				case in.Op == ir.Pop:
					for k := int64(0); k < in.Imm; k++ {
						pop()
					}
				case in.Op == ir.Dup:
					stack = append(stack, stack[len(stack)-1])
				case in.Op == ir.IProc:
					stack = append(stack, ir.Word(pe))
				case ir.IsBinary(in.Op):
					rhs := pop()
					lhs := pop()
					stack = append(stack, ir.EvalBinary(in.Op, lhs, rhs))
				case ir.IsUnary(in.Op):
					stack = append(stack, ir.EvalUnary(in.Op, pop()))
				default:
					return nil, fmt.Errorf("mini: unsupported op %v", in.Op)
				}
			}
			switch b.Term {
			case End, Halt:
				goto done
			case Goto:
				pc = b.Next
			case Branch:
				if ir.Truth(pop()) {
					pc = b.Next
				} else {
					pc = b.FNext
				}
			default:
				return nil, fmt.Errorf("mini: unsupported terminator %v", b.Term)
			}
		}
	done:
	}
	return res, nil
}
