// Package faultinject is the deterministic fault-injection harness the
// robustness tests drive the pipeline's failure paths with. A Plan
// names one fault — panic at a phase, budget exhaustion at a phase,
// cancellation after the k-th interned meta state, or a slow phase —
// and the pipeline's phase runner and the conversion core call the
// cheap hooks below (one atomic load when no plan is active, so the
// hooks are build-tag-free and always compiled in).
//
// Plans are deterministic: an explicit Plan literal always fires the
// same way, and FromSeed derives the same plan from the same seed, so
// a failing fault-matrix case reproduces from its seed alone.
//
// The package is standard library only and imports only
// internal/mscerr, keeping it a dependency leaf every internal package
// may use.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"msc/internal/mscerr"
)

// Fault enumerates the injectable failure modes.
type Fault uint8

const (
	// None is the zero plan: all hooks are no-ops.
	None Fault = iota
	// PanicAtPhase panics on entry to the target phase; the phase
	// runner must contain it into an *mscerr.InternalError.
	PanicAtPhase
	// BudgetAtPhase returns an *mscerr.BudgetError (resource
	// "faultinject") from the target phase's entry hook.
	BudgetAtPhase
	// CancelAfterStates invokes Plan.Cancel once the converter has
	// interned Plan.States fresh meta states, exercising cooperative
	// cancellation mid-frontier.
	CancelAfterStates
	// SlowPhase sleeps Plan.Delay on entry to the target phase, so
	// wall-clock deadlines fire at a chosen point.
	SlowPhase

	// Filesystem faults for the artifact cache (internal/cache calls the
	// OnCache* hooks below). Each models one real-world failure the
	// crash-safe write discipline must absorb.

	// TornWrite truncates cache writes at Plan.Byte bytes: the rename
	// still lands, modeling a power loss after rename but before the
	// data blocks were durable. Detected by digest verification on read.
	TornWrite
	// WriteENOSPC fails the Plan.Nth cache write with ENOSPC.
	WriteENOSPC
	// BitFlipRead flips one bit (at Plan.Byte, modulo the data length)
	// in data read back from the cache, modeling silent media corruption.
	BitFlipRead
	// RenameFail fails the publishing rename of a cache write.
	RenameFail
	// CrashBeforeRename aborts a cache write after the temp file is
	// durable but before the rename, modeling a process crash in the
	// window: the entry must simply not exist, and the orphaned temp
	// file must be swept on the next store open.
	CrashBeforeRename
)

func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case PanicAtPhase:
		return "panic-at-phase"
	case BudgetAtPhase:
		return "budget-exhaust-at-phase"
	case CancelAfterStates:
		return "cancel-after-k-states"
	case SlowPhase:
		return "slow-phase"
	case TornWrite:
		return "torn-write-at-byte-k"
	case WriteENOSPC:
		return "enospc-at-write-n"
	case BitFlipRead:
		return "bit-flip-on-read"
	case RenameFail:
		return "rename-failure"
	case CrashBeforeRename:
		return "crash-between-temp-and-rename"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Plan is one deterministic fault. The zero value injects nothing.
type Plan struct {
	// Phase is the pipeline phase the fault targets (obs phase names;
	// CancelAfterStates ignores it and targets conversion).
	Phase string
	Fault Fault
	// States is the fresh-intern count after which CancelAfterStates
	// fires (the k in cancel-after-k-states).
	States int
	// Delay is the SlowPhase sleep.
	Delay time.Duration
	// Byte parameterizes the filesystem faults: the truncation offset
	// for TornWrite and the bit position (bit Byte of the data, modulo
	// its length in bits) for BitFlipRead.
	Byte int
	// Nth makes WriteENOSPC fire on the n-th cache write (1-based;
	// 0 means the first). The other filesystem faults fire on every
	// eligible operation, bounded by Times as usual.
	Nth int
	// Times bounds how often the fault fires; 0 means every time. A
	// degradation test uses Times=1 so only the first compile attempt
	// is sabotaged.
	Times int
	// Cancel is the hook CancelAfterStates invokes — normally the
	// context.CancelFunc of the compile under test.
	Cancel func()

	hits   atomic.Int64
	writes atomic.Int64
}

// FromSeed derives a deterministic plan from a seed: the same seed and
// phase list always produce the same plan, so the fault matrix can be
// swept reproducibly.
func FromSeed(seed int64, phases []string) *Plan {
	rng := rand.New(rand.NewSource(seed))
	return &Plan{
		Phase:  phases[rng.Intn(len(phases))],
		Fault:  Fault(1 + rng.Intn(4)),
		States: 1 + rng.Intn(64),
		Delay:  time.Duration(1+rng.Intn(5)) * time.Millisecond,
	}
}

// active is the installed plan; nil (the common case) makes every hook
// a single atomic load.
var active atomic.Pointer[Plan]

// Activate installs the plan and returns the deactivator. Tests defer
// the deactivator so no plan leaks across test cases; activation is
// process-global, so fault tests must not run in parallel with each
// other.
func Activate(p *Plan) (deactivate func()) {
	p.hits.Store(0)
	p.writes.Store(0)
	active.Store(p)
	return func() { active.CompareAndSwap(p, nil) }
}

// Active reports the installed plan, or nil.
func Active() *Plan { return active.Load() }

// fire consumes one firing, honoring the Times bound.
func (p *Plan) fire() bool {
	if p.Times <= 0 {
		return true
	}
	return p.hits.Add(1) <= int64(p.Times)
}

// OnPhase is the hook pipeline phase runners call on phase entry. It
// panics (PanicAtPhase), returns a budget error (BudgetAtPhase),
// sleeps (SlowPhase), or does nothing.
func OnPhase(phase string) error {
	p := active.Load()
	if p == nil || p.Phase != phase {
		return nil
	}
	switch p.Fault {
	case PanicAtPhase:
		if p.fire() {
			panic(fmt.Sprintf("faultinject: injected panic at phase %q", phase))
		}
	case BudgetAtPhase:
		if p.fire() {
			return &mscerr.BudgetError{Phase: phase, Resource: "faultinject", Limit: 0, Used: 1}
		}
	case SlowPhase:
		if p.fire() {
			time.Sleep(p.Delay)
		}
	}
	return nil
}

// OnState is the hook the conversion core calls once per freshly
// interned meta state; the k-th call fires CancelAfterStates.
func OnState() {
	p := active.Load()
	if p == nil || p.Fault != CancelAfterStates || p.Cancel == nil {
		return
	}
	if p.hits.Add(1) == int64(p.States) {
		p.Cancel()
	}
}

// ErrCrash is the sentinel OnCacheRename returns for CrashBeforeRename:
// the cache write path must abandon the entry exactly as a process
// crash would — temp file left behind, no rename, no index update.
var ErrCrash = errors.New("faultinject: simulated crash between temp write and rename")

// ErrNoSpace is the injected ENOSPC. A distinct sentinel (rather than
// syscall.ENOSPC) keeps the package OS-agnostic; the cache wraps it in
// a *mscerr.CacheError either way.
var ErrNoSpace = errors.New("faultinject: injected ENOSPC (no space left on device)")

// OnCacheWrite is the hook the cache store calls with the bytes about
// to be written. It may return a truncated copy (TornWrite) or an error
// (WriteENOSPC on the plan's n-th write); otherwise it returns data
// unchanged.
func OnCacheWrite(data []byte) ([]byte, error) {
	p := active.Load()
	if p == nil {
		return data, nil
	}
	switch p.Fault {
	case TornWrite:
		if p.fire() && p.Byte < len(data) {
			return data[:p.Byte], nil
		}
	case WriteENOSPC:
		n := p.writes.Add(1)
		nth := int64(p.Nth)
		if nth <= 0 {
			nth = 1
		}
		if n == nth && p.fire() {
			return nil, ErrNoSpace
		}
	}
	return data, nil
}

// OnCacheRead is the hook the cache store calls with bytes read back
// from disk, before verification. BitFlipRead returns a copy with one
// bit flipped; every other plan returns data unchanged.
func OnCacheRead(data []byte) []byte {
	p := active.Load()
	if p == nil || p.Fault != BitFlipRead || len(data) == 0 || !p.fire() {
		return data
	}
	flipped := append([]byte(nil), data...)
	bit := p.Byte % (len(flipped) * 8)
	if bit < 0 {
		bit = 0
	}
	flipped[bit/8] ^= 1 << (bit % 8)
	return flipped
}

// OnCacheRename is the hook the cache store calls immediately before
// the publishing rename. RenameFail returns a plain error (the write
// fails, temp is cleaned up); CrashBeforeRename returns ErrCrash (the
// write path must abandon everything in place, as a crash would).
func OnCacheRename() error {
	p := active.Load()
	if p == nil {
		return nil
	}
	switch p.Fault {
	case RenameFail:
		if p.fire() {
			return errors.New("faultinject: injected rename failure")
		}
	case CrashBeforeRename:
		if p.fire() {
			return ErrCrash
		}
	}
	return nil
}

// LeakCheck snapshots the goroutine count and returns a checker that
// waits (bounded, 5s) for the count to drop back to the baseline. Used
// after cancellation tests to prove worker pools drained: goroutines
// started by the canceled operation must exit, not leak.
func LeakCheck() func() error { return LeakCheckWithin(5 * time.Second) }

// LeakCheckWithin is LeakCheck with an explicit drain grace period, for
// teardown with a known bound tighter or looser than the default —
// e.g. a telemetry exporter goroutine that must join at Close, where a
// short grace keeps a leak from stalling the whole suite.
func LeakCheckWithin(grace time.Duration) func() error {
	before := runtime.NumGoroutine()
	return func() error {
		deadline := time.Now().Add(grace)
		for {
			n := runtime.NumGoroutine()
			if n <= before {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("faultinject: goroutine leak: %d at baseline, %d after drain", before, n)
			}
			runtime.Gosched()
			time.Sleep(2 * time.Millisecond)
		}
	}
}
