package faultinject

import (
	"errors"
	"testing"
	"time"

	"msc/internal/mscerr"
)

func TestFromSeedDeterministic(t *testing.T) {
	phases := []string{"parse", "analyze", "lower", "convert", "codegen"}
	for seed := int64(0); seed < 50; seed++ {
		a, b := FromSeed(seed, phases), FromSeed(seed, phases)
		if a.Phase != b.Phase || a.Fault != b.Fault || a.States != b.States || a.Delay != b.Delay {
			t.Fatalf("seed %d: plans differ: %+v vs %+v", seed, a, b)
		}
		if a.Fault == None {
			t.Fatalf("seed %d: FromSeed produced the no-op fault", seed)
		}
	}
}

func TestOnPhaseInactive(t *testing.T) {
	if err := OnPhase("convert"); err != nil {
		t.Fatalf("no plan active, got %v", err)
	}
}

func TestOnPhasePanic(t *testing.T) {
	defer Activate(&Plan{Phase: "convert", Fault: PanicAtPhase})()
	if err := OnPhase("parse"); err != nil {
		t.Fatalf("wrong phase should be a no-op, got %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("OnPhase(convert) did not panic")
		}
	}()
	OnPhase("convert")
}

func TestOnPhaseBudget(t *testing.T) {
	defer Activate(&Plan{Phase: "codegen", Fault: BudgetAtPhase})()
	err := OnPhase("codegen")
	var be *mscerr.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.Phase != "codegen" || be.Resource != "faultinject" {
		t.Fatalf("wrong attribution: %+v", be)
	}
}

func TestTimesBound(t *testing.T) {
	defer Activate(&Plan{Phase: "vet", Fault: BudgetAtPhase, Times: 2})()
	for i := 0; i < 2; i++ {
		if err := OnPhase("vet"); err == nil {
			t.Fatalf("firing %d: want error", i)
		}
	}
	if err := OnPhase("vet"); err != nil {
		t.Fatalf("Times=2 exhausted, want nil, got %v", err)
	}
}

func TestOnStateCancel(t *testing.T) {
	fired := 0
	defer Activate(&Plan{Fault: CancelAfterStates, States: 3, Cancel: func() { fired++ }})()
	for i := 0; i < 10; i++ {
		OnState()
	}
	if fired != 1 {
		t.Fatalf("cancel fired %d times, want exactly 1", fired)
	}
}

func TestDeactivateRestoresNoop(t *testing.T) {
	deactivate := Activate(&Plan{Phase: "parse", Fault: BudgetAtPhase})
	deactivate()
	if err := OnPhase("parse"); err != nil {
		t.Fatalf("deactivated plan still firing: %v", err)
	}
}

func TestLeakCheck(t *testing.T) {
	check := LeakCheck()
	done := make(chan struct{})
	go func() { <-done }()
	close(done)
	if err := check(); err != nil {
		t.Fatalf("drained goroutine reported as leak: %v", err)
	}
}

func TestLeakCheckDetectsLeak(t *testing.T) {
	// Shorten nothing: a genuinely stuck goroutine must be reported.
	// Use a tiny local copy of the wait by checking that the error text
	// names the counts after the 5s bound — too slow for the default
	// run, so only assert the immediate-positive path: baseline taken
	// after the goroutine starts means no leak is seen.
	block := make(chan struct{})
	go func() { <-block }()
	time.Sleep(5 * time.Millisecond) // let it start before the baseline
	check := LeakCheck()
	if err := check(); err != nil {
		t.Fatalf("goroutine predating the baseline flagged: %v", err)
	}
	close(block)
}
