// Package csi implements Common Subexpression Induction ("Common
// Subexpression Induction", Dietz, ICPP 1992; §3.1 of the MSC paper).
//
// A meta state that merged several MIMD states contains one instruction
// sequence per thread (per enabled set of SIMD PEs). A traditional SIMD
// machine must serialize different instructions, but any instruction
// that appears in more than one sequence can be executed by all of
// those threads at once: stack code makes this sound unconditionally,
// because a shared instruction operates on each PE's private stack and
// memory. CSI therefore searches for a schedule that interleaves the
// thread sequences, merging identical instructions under a union guard,
// to minimize total broadcast cycles.
//
// The implementation follows the paper's pipeline:
//
//   - the guarded precedence structure (its "guarded DAG") is each
//     thread's code in order, with guards naming the owning thread;
//   - inter-thread CSE is a progressive weighted alignment: each thread
//     is aligned against the schedule so far by dynamic programming that
//     maximizes the cycle cost of merged instructions (optimal for each
//     pair);
//   - the result seeds an improvement search in the spirit of the
//     paper's permutation-in-range pass: pairs of identical slots with
//     disjoint guards are merged whenever the precedence DAG admits a
//     common position (no path between them), until no merge helps;
//   - a theoretical lower bound (per-instruction-class maxima) is
//     computed for pruning and reporting.
package csi

import (
	"fmt"

	"msc/internal/bitset"
	"msc/internal/ir"
	"msc/internal/mscerr"
)

// Thread is one MIMD state's straight-line code within a meta state,
// guarded by the pc set that enables it (normally a single pc bit).
type Thread struct {
	Guard *bitset.Set
	Code  []ir.Instr
}

// Slot is one scheduled broadcast: the instruction and the union of the
// guards of every thread that executes it.
type Slot struct {
	Guard *bitset.Set
	Instr ir.Instr
}

// Schedule is the CSI result.
type Schedule struct {
	Slots []Slot
	// Cost is the schedule's total broadcast cycles; NaiveCost is the
	// fully serialized cost (no sharing); LowerBound is the theoretical
	// minimum over all schedules.
	Cost       int
	NaiveCost  int
	LowerBound int
	// NaiveSlots is the slot count of the fully serialized schedule
	// (one broadcast per thread instruction, no sharing).
	NaiveSlots int
}

// Saved returns the cycles CSI recovered versus full serialization.
func (s *Schedule) Saved() int { return s.NaiveCost - s.Cost }

// SlotsSaved returns how many broadcast slots CSI merged away versus
// full serialization.
func (s *Schedule) SlotsSaved() int { return s.NaiveSlots - len(s.Slots) }

// Limits bounds the schedule search.
type Limits struct {
	// MaxCandidates caps the merge-candidate pairs the improvement
	// search may examine across all rounds; 0 means unlimited.
	// Exceeding it aborts with an *mscerr.BudgetError (resource
	// "csi_candidates") rather than silently truncating the search, so
	// the caller can degrade to the linear (serialized) schedule
	// explicitly.
	MaxCandidates int64
}

// Induce computes a CSI schedule for the given threads. Thread guards
// must be pairwise disjoint.
func Induce(threads []Thread) (*Schedule, error) {
	return InduceLimited(threads, Limits{})
}

// InduceLimited is Induce under a search budget.
func InduceLimited(threads []Thread, lim Limits) (*Schedule, error) {
	// Instruction identity here is value identity: two instructions are
	// the same broadcast iff op/imm/type/symbol agree. Source positions
	// are diagnostic-only and must not split classes, so work on
	// canonicalized copies (the schedule's slots carry no positions).
	threads = append([]Thread(nil), threads...)
	for i := range threads {
		code := make([]ir.Instr, len(threads[i].Code))
		for j, in := range threads[i].Code {
			code[j] = in.Canon()
		}
		threads[i].Code = code
	}
	for i := range threads {
		if threads[i].Guard == nil || threads[i].Guard.Empty() {
			return nil, fmt.Errorf("csi: thread %d has empty guard", i)
		}
		for j := i + 1; j < len(threads); j++ {
			if threads[i].Guard.Intersects(threads[j].Guard) {
				return nil, fmt.Errorf("csi: thread guards %s and %s overlap",
					threads[i].Guard, threads[j].Guard)
			}
		}
	}

	naive, naiveSlots := 0, 0
	for _, t := range threads {
		naive += ir.CodeCost(t.Code)
		naiveSlots += len(t.Code)
	}

	sched := &Schedule{NaiveCost: naive, NaiveSlots: naiveSlots, LowerBound: lowerBound(threads)}
	g := buildGraph(threads)
	if err := g.improve(lim.MaxCandidates); err != nil {
		return nil, err
	}
	slots, err := g.linearize()
	if err != nil {
		return nil, err
	}
	sched.Slots = slots
	for _, sl := range sched.Slots {
		sched.Cost += sl.Instr.Cost()
	}
	return sched, nil
}

// lowerBound computes the classic class-count bound: for each distinct
// instruction value, at least max-per-thread occurrences must be
// broadcast no matter how threads share.
func lowerBound(threads []Thread) int {
	type class struct{ max, cur int }
	classes := make(map[ir.Instr]*class)
	for _, t := range threads {
		for k := range classes {
			classes[k].cur = 0
		}
		for _, in := range t.Code {
			c := classes[in]
			if c == nil {
				c = &class{}
				classes[in] = c
			}
			c.cur++
			if c.cur > c.max {
				c.max = c.cur
			}
		}
	}
	lb := 0
	for in, c := range classes {
		lb += c.max * in.Cost()
	}
	return lb
}

// ---- Precedence graph -------------------------------------------------------

type node struct {
	instr ir.Instr
	guard *bitset.Set
	// id is the node's index in graph.nodes (stable across merges; dead
	// nodes keep theirs), used to address reachability bitmaps.
	id int
	// seq[t] is the node's position in thread t's chain, or -1.
	seq  []int
	dead bool
}

type graph struct {
	nodes []*node
	// chains[t] lists thread t's nodes in program order.
	chains  [][]*node
	threads []Thread
}

// buildGraph seeds the schedule by progressive alignment: thread 0's
// code becomes the initial chain; each later thread is aligned against
// the current node order with a cost-weighted LCS.
func buildGraph(threads []Thread) *graph {
	g := &graph{threads: threads, chains: make([][]*node, len(threads))}
	order := []*node{}
	for t, th := range threads {
		order = g.alignThread(order, t, th)
	}
	return g
}

// alignThread merges thread t's code into the existing slot order,
// maximizing the cost of matched (shared) instructions; returns the new
// global order.
func (g *graph) alignThread(order []*node, t int, th Thread) []*node {
	n, m := len(order), len(th.Code)
	// dp[i][j]: best saved cost aligning order[i:] with code[j:].
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			best := dp[i+1][j] // leave slot unshared
			if v := dp[i][j+1]; v > best {
				best = v // emit instruction as its own new slot
			}
			if order[i].instr == th.Code[j] {
				if v := dp[i+1][j+1] + th.Code[j].Cost(); v > best {
					best = v
				}
			}
			dp[i][j] = best
		}
	}

	var out []*node
	chain := make([]*node, 0, m)
	i, j := 0, 0
	for i < n || j < m {
		switch {
		case i < n && j < m && order[i].instr == th.Code[j] &&
			dp[i][j] == dp[i+1][j+1]+th.Code[j].Cost():
			order[i].guard = order[i].guard.Union(th.Guard)
			order[i].seq[t] = len(chain)
			chain = append(chain, order[i])
			out = append(out, order[i])
			i, j = i+1, j+1
		case i < n && (j >= m || dp[i][j] == dp[i+1][j]):
			out = append(out, order[i])
			i++
		default:
			nd := g.newNode(th.Code[j], th.Guard)
			nd.seq[t] = len(chain)
			chain = append(chain, nd)
			out = append(out, nd)
			j++
		}
	}
	g.chains[t] = chain
	return out
}

func (g *graph) newNode(in ir.Instr, guard *bitset.Set) *node {
	nd := &node{instr: in, guard: guard.Clone(), id: len(g.nodes), seq: make([]int, len(g.threads))}
	for i := range nd.seq {
		nd.seq[i] = -1
	}
	g.nodes = append(g.nodes, nd)
	return nd
}

// succs returns the immediate per-thread successors of nd.
func (g *graph) succs(nd *node) []*node {
	var out []*node
	for t, pos := range nd.seq {
		if pos >= 0 && pos+1 < len(g.chains[t]) {
			out = append(out, g.chains[t][pos+1])
		}
	}
	return out
}

// reachability is the transitive closure of the precedence DAG as one
// bitmap per node: reach[a.id] has bit b.id set iff a path of precedence
// edges leads from a to b (excluding a itself). improve recomputes it
// once per merge instead of running a DFS per candidate pair — the old
// per-query DFS made each improvement round quadratic in pairs times
// linear in graph size.
type reachability struct {
	words int
	bits  [][]uint64
}

func (g *graph) closure() *reachability {
	n := len(g.nodes)
	r := &reachability{words: (n + 63) / 64, bits: make([][]uint64, n)}
	var dfs func(nd *node) []uint64
	dfs = func(nd *node) []uint64 {
		if r.bits[nd.id] != nil {
			return r.bits[nd.id]
		}
		b := make([]uint64, r.words)
		r.bits[nd.id] = b // written before recursing; sound on a DAG
		for _, s := range g.succs(nd) {
			b[s.id/64] |= 1 << (uint(s.id) % 64)
			for i, w := range dfs(s) {
				b[i] |= w
			}
		}
		return b
	}
	for _, nd := range g.nodes {
		if !nd.dead {
			dfs(nd)
		}
	}
	return r
}

// reaches reports whether a path of precedence edges leads from a to b
// (a == b counts as reached, matching the old DFS helper).
func (r *reachability) reaches(a, b *node) bool {
	if a == b {
		return true
	}
	return r.bits[a.id][b.id/64]>>(uint(b.id)%64)&1 == 1
}

// improve is the permutation-in-range search: repeatedly merge the most
// expensive pair of identical, guard-disjoint, order-independent slots.
// maxCandidates (0 = unlimited) bounds the total pairs examined; the
// overrun is a typed budget error so callers can fall back to the
// linear schedule deliberately.
func (g *graph) improve(maxCandidates int64) error {
	var candidates int64
	for {
		reach := g.closure()
		var bestA, bestB *node
		bestCost := 0
		for i, a := range g.nodes {
			if a.dead {
				continue
			}
			for _, b := range g.nodes[i+1:] {
				if b.dead || a.instr != b.instr || a.instr.Cost() <= bestCost {
					continue
				}
				if candidates++; maxCandidates > 0 && candidates > maxCandidates {
					return &mscerr.BudgetError{
						Phase: "csi", Resource: "csi_candidates",
						Limit: maxCandidates, Used: candidates,
					}
				}
				if a.guard.Intersects(b.guard) {
					continue
				}
				if reach.reaches(a, b) || reach.reaches(b, a) {
					continue
				}
				bestA, bestB = a, b
				bestCost = a.instr.Cost()
			}
		}
		if bestA == nil {
			return nil
		}
		// Merge bestB into bestA. The merge changes the precedence
		// relation (bestA inherits bestB's chain positions), so the
		// closure is recomputed on the next round.
		bestA.guard = bestA.guard.Union(bestB.guard)
		for t, pos := range bestB.seq {
			if pos >= 0 {
				bestA.seq[t] = pos
				g.chains[t][pos] = bestA
			}
		}
		bestB.dead = true
	}
}

// linearize topologically sorts the precedence DAG into the final slot
// order, preferring earlier positions in lower-numbered threads for
// determinism. A precedence cycle (impossible on a correct merge) is
// reported as an error rather than a panic so the pipeline stays up on
// the malformed meta state.
func (g *graph) linearize() ([]Slot, error) {
	next := make([]int, len(g.threads)) // next unscheduled position per chain
	var slots []Slot
	scheduled := map[*node]bool{}
	for {
		var pick *node
		for t := range g.chains {
			for next[t] < len(g.chains[t]) && scheduled[g.chains[t][next[t]]] {
				next[t]++
			}
			if next[t] >= len(g.chains[t]) {
				continue
			}
			cand := g.chains[t][next[t]]
			// cand is ready iff it is the next node in every chain it
			// belongs to.
			ready := true
			for ot, pos := range cand.seq {
				if pos >= 0 && (pos != next[ot] && !allScheduledBefore(g.chains[ot], pos, scheduled)) {
					ready = false
					break
				}
			}
			if ready && pick == nil {
				pick = cand
			}
		}
		if pick == nil {
			// Either done or stuck; stuck cannot happen on a DAG.
			allDone := true
			for t := range g.chains {
				if next[t] < len(g.chains[t]) {
					allDone = false
					break
				}
			}
			if allDone {
				return slots, nil
			}
			return nil, fmt.Errorf("csi: precedence cycle in linearize (merge bug; %d of %d nodes scheduled)",
				len(slots), len(g.nodes))
		}
		scheduled[pick] = true
		slots = append(slots, Slot{Guard: pick.guard, Instr: pick.instr})
	}
}

// allScheduledBefore reports whether every node before pos in chain is
// already scheduled.
func allScheduledBefore(chain []*node, pos int, scheduled map[*node]bool) bool {
	for i := 0; i < pos; i++ {
		if !scheduled[chain[i]] {
			return false
		}
	}
	return true
}
