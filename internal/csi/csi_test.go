package csi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"msc/internal/bitset"
	"msc/internal/ir"
)

func instr(op ir.Op, imm int64) ir.Instr { return ir.Instr{Op: op, Imm: imm} }

func thread(guardBit int, code ...ir.Instr) Thread {
	return Thread{Guard: bitset.Of(guardBit), Code: code}
}

// extract returns the per-thread projection of a schedule: the slots
// whose guard includes the thread's bit, in order.
func extract(s *Schedule, guardBit int) []ir.Instr {
	var out []ir.Instr
	for _, sl := range s.Slots {
		if sl.Guard.Has(guardBit) {
			out = append(out, sl.Instr)
		}
	}
	return out
}

func equalCode(a, b []ir.Instr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func induce(t *testing.T, threads ...Thread) *Schedule {
	t.Helper()
	s, err := Induce(threads)
	if err != nil {
		t.Fatal(err)
	}
	// Universal invariant: each thread's projection is its original code.
	for _, th := range threads {
		bitID := th.Guard.Min()
		if got := extract(s, bitID); !equalCode(got, th.Code) {
			t.Fatalf("thread %s projection corrupted:\n got %v\nwant %v", th.Guard, got, th.Code)
		}
	}
	if s.Cost > s.NaiveCost {
		t.Fatalf("CSI made things worse: cost %d > naive %d", s.Cost, s.NaiveCost)
	}
	if s.Cost < s.LowerBound {
		t.Fatalf("cost %d below lower bound %d (bound bug)", s.Cost, s.LowerBound)
	}
	return s
}

func TestIdenticalThreadsFullyShare(t *testing.T) {
	code := []ir.Instr{instr(ir.LdLocal, 0), instr(ir.PushC, 1), ir.Instr{Op: ir.Add}, instr(ir.StLocal, 0)}
	s := induce(t,
		Thread{Guard: bitset.Of(2), Code: code},
		Thread{Guard: bitset.Of(6), Code: code},
	)
	if s.Cost != ir.CodeCost(code) {
		t.Fatalf("identical threads cost %d, want %d (full sharing)", s.Cost, ir.CodeCost(code))
	}
	if len(s.Slots) != len(code) {
		t.Fatalf("slots = %d, want %d", len(s.Slots), len(code))
	}
	for _, sl := range s.Slots {
		if sl.Guard.Len() != 2 {
			t.Fatalf("slot guard %s, want both threads", sl.Guard)
		}
	}
	if s.Saved() != ir.CodeCost(code) {
		t.Fatalf("saved = %d, want %d", s.Saved(), ir.CodeCost(code))
	}
}

func TestDisjointThreadsSerialize(t *testing.T) {
	s := induce(t,
		thread(1, instr(ir.PushC, 1), instr(ir.StLocal, 0)),
		thread(2, instr(ir.PushC, 2), instr(ir.StLocal, 1)),
	)
	// PushC(1) vs PushC(2) and StLocal(0) vs StLocal(1) differ: nothing
	// shareable.
	if s.Saved() != 0 {
		t.Fatalf("saved = %d on disjoint code, want 0", s.Saved())
	}
}

// TestListing1Threads mirrors the paper's example: the two do-while
// bodies x=1;test and x=2;test share everything except the pushed
// constant (see Listing 5's ms_2_6, where the common LdL/StL/Pop/LdL
// sequence is factored and only Push(1)/Push(2) stay guarded).
func TestListing1Threads(t *testing.T) {
	mkBody := func(c int64) []ir.Instr {
		return []ir.Instr{
			instr(ir.PushC, c),
			instr(ir.StLocal, 4),
			instr(ir.LdLocal, 4),
		}
	}
	s := induce(t,
		Thread{Guard: bitset.Of(2), Code: mkBody(1)},
		Thread{Guard: bitset.Of(6), Code: mkBody(2)},
	)
	// Shared: StLocal, LdLocal. Guarded: the two PushC.
	wantCost := ir.PushC.Cost()*2 + ir.StLocal.Cost() + ir.LdLocal.Cost()
	if s.Cost != wantCost {
		t.Fatalf("cost = %d, want %d\nslots: %v", s.Cost, wantCost, s.Slots)
	}
	if s.Cost != s.LowerBound {
		t.Fatalf("optimal schedule not found: cost %d, bound %d", s.Cost, s.LowerBound)
	}
}

func TestExpensiveOpsPrioritized(t *testing.T) {
	// Both threads contain an expensive Div at different positions among
	// sharable neighbors; CSI must still share it.
	s := induce(t,
		thread(1, instr(ir.PushC, 9), instr(ir.LdLocal, 0), ir.Instr{Op: ir.Div}, instr(ir.StLocal, 0)),
		thread(2, instr(ir.LdLocal, 0), instr(ir.PushC, 9), ir.Instr{Op: ir.Div}, instr(ir.StLocal, 0)),
	)
	divShared := false
	for _, sl := range s.Slots {
		if sl.Instr.Op == ir.Div && sl.Guard.Len() == 2 {
			divShared = true
		}
	}
	if !divShared {
		t.Fatalf("Div not shared:\n%v", s.Slots)
	}
}

func TestThreeThreads(t *testing.T) {
	common := []ir.Instr{instr(ir.LdLocal, 3), instr(ir.PushC, 1), ir.Instr{Op: ir.Add}, instr(ir.StLocal, 3)}
	uniq := func(g int) []ir.Instr {
		return append([]ir.Instr{instr(ir.PushC, int64(g)), instr(ir.StLocal, int64(10+g))}, common...)
	}
	s := induce(t,
		Thread{Guard: bitset.Of(1), Code: uniq(1)},
		Thread{Guard: bitset.Of(2), Code: uniq(2)},
		Thread{Guard: bitset.Of(3), Code: uniq(3)},
	)
	// The common tail must be fully shared across all three threads.
	if s.Cost != s.LowerBound {
		t.Fatalf("three-way sharing suboptimal: cost %d, bound %d\n%v", s.Cost, s.LowerBound, s.Slots)
	}
}

func TestRepeatedInstructionsKeepMultiplicity(t *testing.T) {
	// Thread 1 has Add twice, thread 2 once: schedule needs two Adds,
	// one shared at most.
	s := induce(t,
		thread(1, instr(ir.PushC, 1), instr(ir.PushC, 2), ir.Instr{Op: ir.Add}, instr(ir.PushC, 3), ir.Instr{Op: ir.Add}, instr(ir.Pop, 1)),
		thread(2, instr(ir.PushC, 4), instr(ir.PushC, 5), ir.Instr{Op: ir.Add}, instr(ir.Pop, 1)),
	)
	adds := 0
	for _, sl := range s.Slots {
		if sl.Instr.Op == ir.Add {
			adds++
		}
	}
	if adds != 2 {
		t.Fatalf("Add slots = %d, want 2", adds)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	s := induce(t, thread(1))
	if len(s.Slots) != 0 || s.Cost != 0 {
		t.Fatalf("empty thread schedule = %v", s.Slots)
	}
	code := []ir.Instr{instr(ir.PushC, 7), instr(ir.StLocal, 2)}
	s = induce(t, Thread{Guard: bitset.Of(4), Code: code})
	if s.Cost != ir.CodeCost(code) || s.Saved() != 0 {
		t.Fatalf("single thread cost = %d", s.Cost)
	}
}

func TestGuardValidation(t *testing.T) {
	if _, err := Induce([]Thread{{Guard: bitset.New(0)}}); err == nil {
		t.Fatal("empty guard accepted")
	}
	if _, err := Induce([]Thread{thread(1), thread(1)}); err == nil {
		t.Fatal("overlapping guards accepted")
	}
}

// TestQuickProjectionPreserved is the core CSI soundness property: for
// random threads, every thread's projection of the schedule equals its
// original code, and the cost never exceeds naive serialization.
func TestQuickProjectionPreserved(t *testing.T) {
	ops := []ir.Instr{
		instr(ir.PushC, 1), instr(ir.PushC, 2), instr(ir.LdLocal, 0),
		instr(ir.LdLocal, 1), ir.Instr{Op: ir.Add}, ir.Instr{Op: ir.Mul}, instr(ir.StLocal, 0),
		instr(ir.StLocal, 1), ir.Instr{Op: ir.Dup}, instr(ir.Pop, 1),
	}
	f := func(seed int64, nThreadsRaw, lenRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nThreads := int(nThreadsRaw%4) + 1
		threads := make([]Thread, nThreads)
		for i := range threads {
			n := int(lenRaw%12) + 1
			code := make([]ir.Instr, n)
			for j := range code {
				code[j] = ops[r.Intn(len(ops))]
			}
			threads[i] = Thread{Guard: bitset.Of(i), Code: code}
		}
		s, err := Induce(threads)
		if err != nil {
			return false
		}
		for i, th := range threads {
			if !equalCode(extract(s, i), th.Code) {
				return false
			}
		}
		return s.Cost <= s.NaiveCost && s.Cost >= s.LowerBound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInduceTwoThreads(b *testing.B) {
	code := make([]ir.Instr, 40)
	for i := range code {
		code[i] = instr(ir.LdLocal, int64(i%5))
	}
	t1 := Thread{Guard: bitset.Of(1), Code: code}
	t2 := Thread{Guard: bitset.Of(2), Code: append([]ir.Instr{instr(ir.PushC, 1)}, code...)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Induce([]Thread{t1, t2}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestImproveMergesAcrossAlignmentOrder builds the case progressive
// pairwise alignment gets wrong: thread 3 shares its Mul with thread 2
// and its Div with thread 1, but by the time thread 3 is aligned the
// schedule is [Div{1}, Mul{2}] and the LCS can only match one of them.
// The permutation-in-range improvement pass must merge the other.
func TestImproveMergesAcrossAlignmentOrder(t *testing.T) {
	s := induce(t,
		thread(1, ir.Instr{Op: ir.Div}),
		thread(2, ir.Instr{Op: ir.Mul}),
		thread(3, ir.Instr{Op: ir.Mul}, ir.Instr{Op: ir.Div}),
	)
	divs, muls := 0, 0
	for _, sl := range s.Slots {
		switch sl.Instr.Op {
		case ir.Div:
			divs++
		case ir.Mul:
			muls++
		}
	}
	if divs != 1 || muls != 1 {
		t.Fatalf("slots: %d Div + %d Mul, want 1 + 1 (improve pass failed)\n%v", divs, muls, s.Slots)
	}
	if s.Cost != s.LowerBound {
		t.Fatalf("cost %d != lower bound %d", s.Cost, s.LowerBound)
	}
}

// TestImproveRespectsOrderConflicts: A;B in one thread and B;A in the
// other cannot share both — merging would need a position both before
// and after the other slot.
func TestImproveRespectsOrderConflicts(t *testing.T) {
	s := induce(t,
		thread(1, ir.Instr{Op: ir.Div}, ir.Instr{Op: ir.Mul}),
		thread(2, ir.Instr{Op: ir.Mul}, ir.Instr{Op: ir.Div}),
	)
	// Exactly one of Div/Mul can be shared; schedule needs 3 slots.
	if len(s.Slots) != 3 {
		t.Fatalf("slots = %d, want 3\n%v", len(s.Slots), s.Slots)
	}
}
