package harness

import (
	"bytes"
	"strings"
	"testing"

	"msc"
)

// TestAllExperiments runs every paper-artifact reproduction end to end;
// each experiment carries its own internal assertions (state counts,
// balance improvements, engine agreement, overhead ordering).
func TestAllExperiments(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s (%s): %v\noutput so far:\n%s", e.ID, e.Paper, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no report output", e.ID)
			}
		})
	}
}

func TestReportIsCompleteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "## "+e.ID+" — ") {
			t.Errorf("report missing section %s", e.ID)
		}
	}
	if !strings.Contains(out, "| --- |") {
		t.Errorf("report contains no markdown tables")
	}
}

func TestWorkloadsCompileAndRun(t *testing.T) {
	for _, wl := range Suite() {
		c, err := msc.Compile(wl.Source, msc.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		res, err := c.RunSIMD(msc.RunConfig{N: wl.Width, InitialActive: wl.InitialActive})
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if res.Time <= 0 {
			t.Fatalf("%s: no cycles executed", wl.Name)
		}
	}
}

func TestCollatzResults(t *testing.T) {
	c := msc.MustCompile(Collatz, msc.DefaultConfig())
	res, err := c.RunSIMD(msc.RunConfig{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	slotN, _ := c.Slot("n")
	slotSteps, _ := c.Slot("steps")
	// Collatz steps for seeds 27, 34, 41, 48.
	wantSteps := []int64{111, 13, 109, 11}
	for pe := 0; pe < 4; pe++ {
		if got := res.Mem[pe][slotN]; got != 1 {
			t.Errorf("PE %d: n = %d, want 1", pe, got)
		}
		if got := int64(res.Mem[pe][slotSteps]); got != wantSteps[pe] {
			t.Errorf("PE %d: steps = %d, want %d", pe, got, wantSteps[pe])
		}
	}
}

func TestStencilConverges(t *testing.T) {
	c := msc.MustCompile(Stencil, msc.DefaultConfig())
	res, err := c.RunSIMD(msc.RunConfig{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.RunMIMD(msc.RunConfig{N: 8})
	if err != nil {
		t.Fatal(err)
	}
	slot, _ := c.Slot("cell")
	for pe := 0; pe < 8; pe++ {
		if res.Mem[pe][slot] != ref.Mem[pe][slot] {
			t.Fatalf("PE %d: stencil disagreement simd %d vs mimd %d",
				pe, res.Mem[pe][slot], ref.Mem[pe][slot])
		}
	}
}

func TestPrimesCorrect(t *testing.T) {
	c := msc.MustCompile(Primes, msc.DefaultConfig())
	res, err := c.RunSIMD(msc.RunConfig{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Primes in [0,20), [20,40), [40,60): 8, 4, 5.
	wants := []int64{8, 4, 5}
	slot, _ := c.Slot("count")
	for pe, want := range wants {
		if got := int64(res.Mem[pe][slot]); got != want {
			t.Errorf("PE %d: primes = %d, want %d", pe, got, want)
		}
	}
}

func TestOddEvenSortSorts(t *testing.T) {
	const n = 12
	c := msc.MustCompile(OddEvenSort, msc.DefaultConfig())
	res, err := c.RunSIMD(msc.RunConfig{N: n})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.RunMIMD(msc.RunConfig{N: n})
	if err != nil {
		t.Fatal(err)
	}
	slot, _ := c.Slot("v")
	for pe := 0; pe < n; pe++ {
		if res.Mem[pe][slot] != ref.Mem[pe][slot] {
			t.Fatalf("PE %d: simd %d != mimd %d", pe, res.Mem[pe][slot], ref.Mem[pe][slot])
		}
		if pe > 0 && res.Mem[pe-1][slot] > res.Mem[pe][slot] {
			t.Fatalf("not sorted at PE %d: %d > %d", pe, res.Mem[pe-1][slot], res.Mem[pe][slot])
		}
	}
}
