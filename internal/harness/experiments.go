package harness

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"msc"
	"msc/internal/hashgen"
	"msc/internal/mimdsim"
)

// Experiment is one reproducible paper artifact: a figure, the listing,
// or a quantitative claim from the text.
type Experiment struct {
	ID    string
	Title string
	// Paper cites the paper artifact or claim being reproduced.
	Paper string
	Run   func(w io.Writer) error
}

// All returns every experiment in EXPERIMENTS.md order.
func All() []Experiment {
	return []Experiment{
		{"F1", "MIMD state graph for Listing 1", "Figure 1", runF1},
		{"F2", "Base meta-state conversion of Listing 1", "Figure 2", runF2},
		{"F3F4", "MIMD state time splitting", "Figures 3-4, §2.4", runF3F4},
		{"F5", "Meta-state compression of Listing 1", "Figure 5, §2.5", runF5},
		{"F6", "Barrier synchronization of Listing 3", "Figure 6, §2.6", runF6},
		{"L5", "SIMD coding of Listing 4", "Listing 5, §3/§4.3", runL5},
		{"E1", "Meta-state space explosion and its control", "§1.2, §2.5, §2.6", runE1},
		{"E2", "Processor utilization vs. cost imbalance", "§2.4 (5 vs 100 cycle example)", runE2},
		{"E3", "Interpretation overhead vs. meta-state execution", "§1.1 vs §1.2", runE3},
		{"E4", "Customized hash functions for multiway branches", "§3.2.3, [Die92a]", runE4},
		{"E5", "Common subexpression induction", "§3.1, [Die92]", runE5},
		{"E6", "Restricted dynamic process creation", "§3.2.5", runE6},
		{"E7", "Implicit synchronization", "§5", runE7},
		{"E8", "Whole-suite summary", "§5 future work: benchmark on real programs", runE8},
	}
}

// Report runs every experiment, writing a markdown report.
func Report(w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "## %s — %s\n\nReproduces: %s.\n\n", e.ID, e.Title, e.Paper)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func table(w io.Writer, header []string, rows [][]string) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | "))
	seps := make([]string, len(header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
}

// ---- Figures ---------------------------------------------------------------

func runF1(w io.Writer) error {
	c, err := msc.Compile(Listing4, msc.Config{})
	if err != nil {
		return err
	}
	if got := c.Graph.NumBlocks(); got != 4 {
		return fmt.Errorf("state count = %d, want 4", got)
	}
	fmt.Fprintf(w, "Paper: 4 MIMD states (0: A, 2: B;C, 6: D;E, 9: F). Measured: %d states.\n\n",
		c.Graph.NumBlocks())
	fmt.Fprintf(w, "```\n%s```\n", c.Graph.String())
	return nil
}

func runF2(w io.Writer) error {
	c, err := msc.Compile(Listing4, msc.Config{})
	if err != nil {
		return err
	}
	if got := c.MetaStates(); got != 8 {
		return fmt.Errorf("meta states = %d, want 8", got)
	}
	fmt.Fprintf(w, "Paper: 8 meta states. Measured: %d meta states, %d arcs, max width %d.\n\n",
		c.MetaStates(), c.Automaton.NumTransitions(), c.Automaton.MaxWidth())
	fmt.Fprintf(w, "```\n%s```\n", c.Automaton.String())
	return nil
}

func runF3F4(w io.Writer) error {
	src := Imbalance(40)
	plain, err := msc.Compile(src, msc.Config{})
	if err != nil {
		return err
	}
	split, err := msc.Compile(src, msc.Config{TimeSplit: true})
	if err != nil {
		return err
	}
	balance := func(c *msc.Compiled) (worst float64) {
		worst = 1
		for _, s := range c.Automaton.States {
			min, max := 0, 0
			for _, id := range s.Set.Elems() {
				t := c.Automaton.G.Block(id).Cost()
				if t == 0 {
					continue
				}
				if min == 0 || t < min {
					min = t
				}
				if t > max {
					max = t
				}
			}
			if min > 0 && max > 0 && float64(min)/float64(max) < worst {
				worst = float64(min) / float64(max)
			}
		}
		return worst
	}
	if split.Automaton.Splits == 0 {
		return fmt.Errorf("no states were split")
	}
	if balance(split) <= balance(plain) {
		return fmt.Errorf("splitting did not improve balance: %.3f vs %.3f",
			balance(split), balance(plain))
	}
	table(w, []string{"variant", "MIMD states", "meta states", "worst min/max cost ratio"},
		[][]string{
			{"no splitting", fmt.Sprint(plain.MIMDStates()), fmt.Sprint(plain.MetaStates()),
				fmt.Sprintf("%.3f", balance(plain))},
			{"time splitting", fmt.Sprint(split.MIMDStates()), fmt.Sprint(split.MetaStates()),
				fmt.Sprintf("%.3f", balance(split))},
		})
	fmt.Fprintf(w, "\n%d states split over %d conversion restarts; the imbalanced β state became a chain of ≈min-cost pieces (Figure 4's β′→β″).\n",
		split.Automaton.Splits, split.Automaton.Restarts)
	return nil
}

func runF5(w io.Writer) error {
	c, err := msc.Compile(Listing4, msc.Config{Compress: true})
	if err != nil {
		return err
	}
	if got := c.MetaStates(); got != 2 {
		return fmt.Errorf("compressed meta states = %d, want 2", got)
	}
	fmt.Fprintf(w, "Paper: compression reduces Listing 1 from 8 meta states to 2. Measured: %d.\n\n",
		c.MetaStates())
	fmt.Fprintf(w, "```\n%s```\n", c.Automaton.String())
	return nil
}

func runF6(w io.Writer) error {
	c, err := msc.Compile(Listing3, msc.Config{})
	if err != nil {
		return err
	}
	if got := c.MetaStates(); got != 5 {
		return fmt.Errorf("barrier meta states = %d, want 5", got)
	}
	fmt.Fprintf(w, "Paper: 5 meta states ({0},{2},{6},{2,6},{9}); the barrier removes wait states from mixed aggregates. Measured: %d.\n\n", c.MetaStates())
	fmt.Fprintf(w, "```\n%s```\n", c.Automaton.String())
	return nil
}

func runL5(w io.Writer) error {
	c, err := msc.Compile(Listing4, msc.Config{CSI: true, Hash: true})
	if err != nil {
		return err
	}
	mpl := c.MPL()
	for _, want := range []string{"JumpF(", "globalor", "switch", "exit(0);"} {
		if !strings.Contains(mpl, want) {
			return fmt.Errorf("MPL output missing %q", want)
		}
	}
	fmt.Fprintf(w, "Eight meta states, guarded stack code, globalor aggregate, hashed multiway switches — the Listing 5 shape:\n\n```c\n%s```\n", mpl)
	return nil
}

// ---- Quantitative claims ----------------------------------------------------

func runE1(w io.Writer) error {
	var rows [][]string
	for k := 2; k <= 7; k++ {
		base, err := msc.Compile(SeqLoops(k, false), msc.Config{MaxStates: 1 << 17})
		if err != nil {
			return err
		}
		comp, err := msc.Compile(SeqLoops(k, false), msc.Config{Compress: true})
		if err != nil {
			return err
		}
		barr, err := msc.Compile(SeqLoops(k, true), msc.Config{})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprint(k),
			fmt.Sprint(base.MetaStates()),
			fmt.Sprint(comp.MetaStates()),
			fmt.Sprint(barr.MetaStates()),
		})
		if k >= 4 && !(base.MetaStates() > 4*comp.MetaStates()) {
			return fmt.Errorf("k=%d: compression ineffective: base %d vs compressed %d",
				k, base.MetaStates(), comp.MetaStates())
		}
	}
	table(w, []string{"sequential loops k", "base meta states", "compressed", "barriers between loops"}, rows)
	fmt.Fprintf(w, "\nBase grows exponentially (the §1.2 S!/(S−N)! explosion); compression and barriers hold it linear (§2.5, §2.6).\n")
	return nil
}

func runE2(w io.Writer) error {
	var rows [][]string
	prevPlain := -1.0
	for _, ratio := range []int{1, 2, 5, 10, 20, 50} {
		src := Imbalance(ratio)
		run := func(timeSplit bool) (float64, int64, error) {
			c, err := msc.Compile(src, msc.Config{TimeSplit: timeSplit, CSI: true})
			if err != nil {
				return 0, 0, err
			}
			res, err := c.RunSIMD(msc.RunConfig{N: 16})
			if err != nil {
				return 0, 0, err
			}
			return res.WaitFraction(), res.Time, nil
		}
		wPlain, tPlain, err := run(false)
		if err != nil {
			return err
		}
		wSplit, tSplit, err := run(true)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprint(ratio),
			fmt.Sprintf("%.1f%%", wPlain*100), fmt.Sprint(tPlain),
			fmt.Sprintf("%.1f%%", wSplit*100), fmt.Sprint(tSplit),
		})
		if wPlain < prevPlain-0.01 {
			return fmt.Errorf("waiting did not grow with imbalance at ratio %d", ratio)
		}
		prevPlain = wPlain
		if ratio >= 10 && wSplit >= wPlain {
			return fmt.Errorf("time splitting did not reduce waiting at ratio %d (%.3f vs %.3f)",
				ratio, wSplit, wPlain)
		}
	}
	table(w, []string{"imbalance ratio", "wait fraction (no split)", "cycles",
		"wait fraction (split)", "cycles"}, rows)
	fmt.Fprintf(w, "\n§2.4's claim: merging a 5-cycle state with a 100-cycle state makes the cheap thread spend up to ~95%% of its live cycles \"simply waiting for the transition to the next meta state\"; splitting the expensive state frees it to proceed. The wait fraction is live-but-disabled PE cycles over live PE cycles within meta-state bodies.\n")
	return nil
}

func runE3(w io.Writer) error {
	var rows [][]string
	for _, wl := range Suite() {
		c, err := msc.Compile(wl.Source, msc.DefaultConfig())
		if err != nil {
			return fmt.Errorf("%s: %w", wl.Name, err)
		}
		rc := msc.RunConfig{N: wl.Width, InitialActive: wl.InitialActive}
		ideal, err := c.RunMIMD(rc)
		if err != nil {
			return fmt.Errorf("%s: mimd: %w", wl.Name, err)
		}
		in, err := c.RunInterp(rc)
		if err != nil {
			return fmt.Errorf("%s: interp: %w", wl.Name, err)
		}
		sd, err := c.RunSIMD(rc)
		if err != nil {
			return fmt.Errorf("%s: simd: %w", wl.Name, err)
		}
		// Correctness across all three engines.
		for pe := 0; pe < wl.Width; pe++ {
			for slot := range ideal.Mem[pe] {
				if ideal.Mem[pe][slot] != in.Mem[pe][slot] || ideal.Mem[pe][slot] != sd.Mem[pe][slot] {
					return fmt.Errorf("%s: engines disagree at PE %d slot %d", wl.Name, pe, slot)
				}
			}
		}
		if in.Time <= sd.Time {
			return fmt.Errorf("%s: interpreter (%d) not slower than MSC (%d)", wl.Name, in.Time, sd.Time)
		}
		rows = append(rows, []string{
			wl.Name,
			fmt.Sprint(ideal.Time),
			fmt.Sprint(sd.Time),
			fmt.Sprint(in.Time),
			fmt.Sprintf("%.2fx", float64(in.Time)/float64(sd.Time)),
			fmt.Sprint(in.ProgWordsPerPE),
			"0",
		})
	}
	table(w, []string{"workload", "ideal MIMD cycles", "MSC SIMD cycles", "interpreter cycles",
		"interp/MSC", "interp words/PE", "MSC words/PE"}, rows)
	fmt.Fprintf(w, "\nMeta-state code needs no per-PE fetch/decode and no per-PE program copy (§1.2); the interpreter pays both (§1.1).\n")
	return nil
}

func runE4(w io.Writer) error {
	var rows [][]string
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{3, 5, 8, 13, 21, 32} {
		keys := make([]uint64, 0, n)
		seen := map[uint64]bool{}
		for len(keys) < n {
			var k uint64
			for b := 0; b < 3; b++ {
				k |= 1 << uint(r.Intn(24))
			}
			if k != 0 && !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		h, err := hashgen.Find(keys)
		if err != nil {
			return fmt.Errorf("n=%d: %w", n, err)
		}
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(h.Mask + 1),
			fmt.Sprintf("%.0f%%", hashgen.TableDensity(h, n)*100),
			fmt.Sprint(h.EvalCost),
			fmt.Sprint(hashgen.LinearDispatchCost(n)),
		})
	}
	table(w, []string{"switch ways", "jump table size", "density", "hash cycles", "compare-chain cycles"}, rows)

	c, err := msc.Compile(Listing4, msc.Config{Hash: true})
	if err != nil {
		return err
	}
	hashed := 0
	for _, mc := range c.Program.Meta {
		if mc.Trans.Hash != nil {
			hashed++
		}
	}
	if hashed == 0 {
		return fmt.Errorf("no hashed dispatches in Listing 4")
	}
	fmt.Fprintf(w, "\nListing 4's automaton compiles %d of its multiway branches through customized hashes (Listing 5 uses ((apc>>6)^apc)&15 for the five-way switch).\n", hashed)
	return nil
}

func runE5(w io.Writer) error {
	var rows [][]string
	for _, wl := range Suite() {
		plain, err := msc.Compile(wl.Source, msc.Config{Hash: true})
		if err != nil {
			return err
		}
		shared, err := msc.Compile(wl.Source, msc.Config{Hash: true, CSI: true})
		if err != nil {
			return err
		}
		staticCost := func(c *msc.Compiled) (n int) {
			for _, mc := range c.Program.Meta {
				n += mc.Cost()
			}
			return
		}
		rc := msc.RunConfig{N: wl.Width, InitialActive: wl.InitialActive}
		rp, err := plain.RunSIMD(rc)
		if err != nil {
			return err
		}
		rs, err := shared.RunSIMD(rc)
		if err != nil {
			return err
		}
		if rs.Time > rp.Time {
			return fmt.Errorf("%s: CSI slowed execution: %d > %d", wl.Name, rs.Time, rp.Time)
		}
		rows = append(rows, []string{
			wl.Name,
			fmt.Sprint(staticCost(plain)), fmt.Sprint(staticCost(shared)),
			fmt.Sprint(rp.Time), fmt.Sprint(rs.Time),
			fmt.Sprintf("%.1f%%", 100*(1-float64(rs.Time)/float64(rp.Time))),
		})
	}
	table(w, []string{"workload", "static cycles (serial)", "static (CSI)",
		"run cycles (serial)", "run (CSI)", "saved"}, rows)
	fmt.Fprintf(w, "\nCSI factors operations shared by merged threads into single broadcasts (§3.1).\n")
	return nil
}

func runE6(w io.Writer) error {
	c, err := msc.Compile(Farm, msc.DefaultConfig())
	if err != nil {
		return err
	}
	res, err := c.RunSIMD(msc.RunConfig{N: 8, InitialActive: 1})
	if err != nil {
		return err
	}
	ref, err := c.RunMIMD(msc.RunConfig{N: 8, InitialActive: 1})
	if err != nil {
		return err
	}
	slot, _ := c.Slot("result")
	var rows [][]string
	for pe := 0; pe < 8; pe++ {
		if res.Mem[pe][slot] != ref.Mem[pe][slot] {
			return fmt.Errorf("PE %d: simd %d != mimd %d", pe, res.Mem[pe][slot], ref.Mem[pe][slot])
		}
		rows = append(rows, []string{fmt.Sprint(pe), fmt.Sprint(res.Mem[pe][slot])})
	}
	table(w, []string{"PE", "worker result"}, rows)
	fmt.Fprintf(w, "\nA spawn is encoded as a conditional jump whose both paths are taken: parents continue, claimed free-pool PEs start at the worker entry, and halting workers return to the pool (§3.2.5).\n")
	return nil
}

// runE8 is the capstone table: every suite workload through the full
// default pipeline, with sizes and all three engines' cycle counts.
func runE8(w io.Writer) error {
	var rows [][]string
	for _, wl := range Suite() {
		c, err := msc.Compile(wl.Source, msc.DefaultConfig())
		if err != nil {
			return fmt.Errorf("%s: %w", wl.Name, err)
		}
		rc := msc.RunConfig{N: wl.Width, InitialActive: wl.InitialActive}
		ideal, err := c.RunMIMD(rc)
		if err != nil {
			return err
		}
		in, err := c.RunInterp(rc)
		if err != nil {
			return err
		}
		sd, err := c.RunSIMD(rc)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			wl.Name,
			fmt.Sprint(wl.Width),
			fmt.Sprint(c.MIMDStates()),
			fmt.Sprint(c.MetaStates()),
			fmt.Sprint(ideal.Time),
			fmt.Sprint(sd.Time),
			fmt.Sprintf("%.2fx", float64(sd.Time)/float64(ideal.Time)),
			fmt.Sprint(in.Time),
			fmt.Sprintf("%.2fx", float64(in.Time)/float64(sd.Time)),
			fmt.Sprintf("%.0f%%", sd.Utilization(wl.Width)*100),
		})
	}
	table(w, []string{"workload", "PEs", "MIMD states", "meta states",
		"ideal MIMD", "MSC SIMD", "vs ideal", "interpreter", "interp/MSC", "MSC util"}, rows)
	fmt.Fprintf(w, "\nThe §5 goal realized: real control-parallel programs compiled mechanically to pure SIMD code, landing between ideal MIMD and the interpretation baseline. (A vs-ideal ratio below 1 is possible on barrier-heavy kernels: the MIMD reference pays an explicit runtime synchronization cost per barrier episode, which converted code does not — §5's central point.)\n")
	return nil
}

func runE7(w io.Writer) error {
	var rows [][]string
	for _, phases := range []int{1, 2, 4, 8} {
		src := BarrierPhases(phases)
		c, err := msc.Compile(src, msc.DefaultConfig())
		if err != nil {
			return err
		}
		g := c.Graph
		costly, err := mimdsim.Run(g, mimdsim.Config{N: 16, BarrierCost: 32})
		if err != nil {
			return err
		}
		free, err := mimdsim.Run(g, mimdsim.Config{N: 16, BarrierCost: 1})
		if err != nil {
			return err
		}
		sd, err := c.RunSIMD(msc.RunConfig{N: 16})
		if err != nil {
			return err
		}
		explicit := costly.Time - free.Time
		if explicit <= 0 {
			return fmt.Errorf("phases=%d: no explicit barrier cost measured", phases)
		}
		rows = append(rows, []string{
			fmt.Sprint(phases),
			fmt.Sprint(costly.Time),
			fmt.Sprint(explicit),
			fmt.Sprint(sd.Time),
			"0",
		})
	}
	table(w, []string{"barrier phases", "MIMD cycles (barrier=32)",
		"of which explicit sync", "MSC SIMD cycles", "MSC explicit sync"}, rows)
	fmt.Fprintf(w, "\n§5: synchronization is implicit in meta-state converted code — barriers constrain the automaton at compile time and cost no runtime synchronization operation.\n")
	return nil
}
