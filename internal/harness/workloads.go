// Package harness implements the evaluation: named SPMD workloads, the
// per-figure/per-claim experiments of EXPERIMENTS.md, and the report
// generator behind cmd/mscbench and the root-level benchmarks.
package harness

import (
	"fmt"
	"strings"
)

// Listing4 is the paper's complete example program (its control
// structure is Listing 1). Its loops are intentionally non-terminating
// at run time — meta-state conversion is static — so it is used for
// structural artifacts only (Figures 1, 2, 5 and Listing 5).
const Listing4 = `
void main()
{
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    return;
}
`

// Listing3 is Listing 1 plus the barrier synchronization of Listing 3.
const Listing3 = `
void main()
{
    poly int x;
    if (x) {
        do { x = 1; } while (x);
    } else {
        do { x = 2; } while (x);
    }
    wait;
    return;
}
`

// Divergent is a runnable Listing 1: processors take different branches
// and loop different numbers of times before rejoining.
const Divergent = `
poly int x;
void main()
{
    x = iproc % 3;
    if (x) {
        do { x = x - 1; } while (x);
    } else {
        do { x = x + 2; } while (x < 4);
    }
    x = x + 100;
    return;
}
`

// Collatz is the classic MIMD-friendly divergence workload: every PE
// iterates 3n+1 from a different seed, with wildly different trip
// counts and per-iteration branch outcomes.
const Collatz = `
poly int n, steps;
void main()
{
    n = iproc * 7 + 27;
    steps = 0;
    while (n != 1) {
        if (n % 2) {
            n = 3 * n + 1;
        } else {
            n = n / 2;
        }
        steps = steps + 1;
    }
    return;
}
`

// Reduction publishes a value per PE and folds every PE's value through
// the router after a barrier (§4.1 parallel subscripting).
const Reduction = `
poly int val, sum;
void main()
{
    poly int j;
    val = iproc + 1;
    wait;
    sum = 0;
    for (j = 0; j < nproc; j = j + 1) {
        sum = sum + val[[j]];
    }
    return;
}
`

// Stencil runs barrier-separated nearest-neighbor smoothing rounds over
// a ring of PEs: the archetypal data-parallel-with-communication SPMD
// kernel.
const Stencil = `
poly int cell, left, right;
void main()
{
    poly int round;
    cell = (iproc * 13) % 31;
    for (round = 0; round < 4; round = round + 1) {
        wait;
        left = cell[[iproc - 1]];
        right = cell[[iproc + 1]];
        wait;
        cell = (left + 2 * cell + right) / 4;
    }
    return;
}
`

// Farm is the §3.2.5 restricted-dynamic-process-creation workload: a
// coordinator PE spawns workers onto free processors; workers halt and
// return to the pool.
const Farm = `
poly int result;
void worker()
{
    poly int k;
    result = 0;
    for (k = 0; k < iproc + 2; k = k + 1) {
        result = result + k * k;
    }
    halt;
}
void main()
{
    spawn worker();
    spawn worker();
    spawn worker();
    return;
}
`

// GCD exercises function calls and the §2.2 recursion treatment.
const GCD = `
poly int r;
int gcd(int a, int b)
{
    if (b == 0) { return a; }
    return gcd(b, a % b);
}
void main()
{
    r = gcd(iproc * 6 + 12, 18);
    return;
}
`

// Primes counts primes in a per-PE range by trial division: doubly
// nested divergent loops whose inner trip counts depend on the data —
// a "real program" in the sense of §5's future-work benchmark goal.
const Primes = `
poly int count;
int isprime(int n)
{
    poly int d;
    if (n < 2) { return 0; }
    for (d = 2; d * d <= n; d = d + 1) {
        if (n % d == 0) { return 0; }
    }
    return 1;
}
void main()
{
    poly int lo, hi, k;
    lo = iproc * 20;
    hi = lo + 20;
    count = 0;
    for (k = lo; k < hi; k = k + 1) {
        count = count + isprime(k);
    }
    return;
}
`

// Imbalance builds the Figure 3 situation: a cheap branch merged with a
// branch roughly ratio times more expensive, followed by a modest join
// tail. Without splitting, the cheap thread idles inside the wide meta
// state waiting for the transition (§2.4); with splitting it proceeds
// into the tail while the expensive thread works through its pieces.
func Imbalance(ratio int) string {
	var sb strings.Builder
	sb.WriteString(`
poly int y;
void main()
{
    poly int x;
    x = iproc % 2;
    if (x) {
        y = y + 1;
    } else {
`)
	for i := 0; i < ratio; i++ {
		sb.WriteString("        y = y * 3 + 1;\n")
	}
	sb.WriteString(`    }
    y = y + x;
    y = y * 2 + 1;
    return;
}
`)
	return sb.String()
}

// SeqLoops builds k sequential data-dependent loops: processors
// desynchronize freely, so the base meta-state space grows
// exponentially in k (the §1.2 explosion). With barrier set, a wait
// between loops resynchronizes the processors and keeps it linear
// (§2.6).
func SeqLoops(k int, barrier bool) string {
	var sb strings.Builder
	sb.WriteString("void main() {\n    poly int x;\n    x = iproc % 4 + 1;\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, "    do { x = x - 1; } while (x > 0);\n")
		if barrier {
			sb.WriteString("    wait;\n")
		}
		fmt.Fprintf(&sb, "    x = iproc %% %d + 1;\n", i+2)
	}
	sb.WriteString("    return;\n}\n")
	return sb.String()
}

// BarrierPhases builds k compute+barrier phases with divergent
// per-phase work, for the barrier-cost experiment (E7).
func BarrierPhases(k int) string {
	var sb strings.Builder
	sb.WriteString("poly int acc;\nvoid main() {\n    poly int i;\n    acc = iproc;\n")
	for p := 0; p < k; p++ {
		fmt.Fprintf(&sb, "    for (i = 0; i < iproc %% 3 + 1; i = i + 1) { acc = acc + i; }\n")
		sb.WriteString("    wait;\n")
	}
	sb.WriteString("    return;\n}\n")
	return sb.String()
}

// Workload pairs a name with MIMDC source, for sweep-style experiments.
type Workload struct {
	Name   string
	Source string
	// Width is the default machine width the workload is run at.
	Width int
	// InitialActive for spawn workloads (0 = all PEs in main).
	InitialActive int
}

// Suite returns the standard runnable workload set used by E3/E5.
func Suite() []Workload {
	return []Workload{
		{Name: "divergent", Source: Divergent, Width: 16},
		{Name: "collatz", Source: Collatz, Width: 16},
		{Name: "reduction", Source: Reduction, Width: 16},
		{Name: "stencil", Source: Stencil, Width: 16},
		{Name: "gcd", Source: GCD, Width: 16},
		{Name: "primes", Source: Primes, Width: 16},
		{Name: "oddeven-sort", Source: OddEvenSort, Width: 16},
		{Name: "farm", Source: Farm, Width: 8, InitialActive: 1},
	}
}

// OddEvenSort is odd-even transposition sort with one key per PE: the
// classic distributed SPMD sorting network, alternating barrier-paced
// exchange phases through the router. After nproc phases the ring holds
// the keys in ascending PE order.
const OddEvenSort = `
poly int v, partner, tmp;
void main()
{
    poly int phase;
    v = (iproc * 31 + 17) % 97;
    for (phase = 0; phase < nproc; phase = phase + 1) {
        wait;
        if ((iproc + phase) % 2 == 0) {
            partner = iproc + 1;
        } else {
            partner = iproc - 1;
        }
        tmp = v[[partner]];
        wait;
        if (partner >= 0 && partner < nproc) {
            if (partner > iproc) {
                if (tmp < v) { v = tmp; }
            } else {
                if (tmp > v) { v = tmp; }
            }
        }
    }
    return;
}
`

// DebugGuards is the optimizer-demonstration workload: a compute loop
// carrying statically-disabled diagnostic arms (the classic
// compiled-out debug-flag pattern). At Opt:0 the dead arms — one with a
// barrier — stay in the state graph and every aggregate carries them;
// Opt:2 proves the guard constant, folds the branches, and prunes the
// arms, shrinking both the graph and the converted automaton.
const DebugGuards = `
poly int sum, dbg;
void main()
{
    poly int trace, i, k;
    trace = 0;
    sum = 0;
    for (i = 0; i < 8; i = i + 1) {
        if (trace == 1) {
            if (iproc % 2 == 0) {
                dbg = dbg + sum;
                wait;
                dbg = dbg * 2;
            } else {
                k = iproc;
                while (k > 0) {
                    dbg = dbg + k;
                    k = k - 1;
                }
                wait;
            }
            if (dbg > 100) {
                dbg = 0;
                wait;
            }
        }
        sum = sum + i + iproc;
    }
    return;
}
`

// ModeSelect is the second optimizer-demonstration workload: an
// algorithm selected by a configuration constant (compile-time
// specialization). Opt:2 decides the mode branch, deletes the untaken
// implementation — barrier and all — and leaves straight-line code.
const ModeSelect = `
poly int out;
void main()
{
    poly int mode, t, j;
    mode = 2;
    if (mode == 1) {
        out = iproc * 3;
        j = iproc;
        while (j > 0) {
            if (out % 2 == 0) {
                out = out / 2;
            } else {
                out = out * 3 + 1;
            }
            wait;
            j = j - 1;
        }
        out = out + 1;
        wait;
        out = out * out;
    } else {
        out = iproc + 1;
    }
    t = out;
    out = t * 2 + iproc;
    return;
}
`
