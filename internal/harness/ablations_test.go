package harness

import (
	"bytes"
	"testing"
)

func TestAblations(t *testing.T) {
	for _, e := range Ablations() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s: %v\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range AllWithAblations() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incompletely defined", e.ID)
		}
	}
	if len(seen) != len(All())+len(Ablations()) {
		t.Fatalf("AllWithAblations dropped experiments")
	}
}
