package harness

import (
	"fmt"
	"io"

	"msc"
	metastate "msc/internal/msc"
)

// Ablations returns the design-choice studies: not paper artifacts, but
// measurements of the alternatives DESIGN.md calls out.
func Ablations() []Experiment {
	return []Experiment{
		{"A1", "Call treatment: in-line expansion vs shared copy with return tokens", "§2.2 design choice", runA1},
		{"A2", "Barrier handling: §2.6 filtering vs exact occupancy", "§2.6 design choice", runA2},
		{"A3", "Subset merging in compressed automata", "§2.5 design choice", runA3},
		{"A4", "Hash function forms found across switch widths", "[Die92a] search order", runA4},
	}
}

// AllWithAblations returns the paper experiments followed by the
// ablation studies.
func AllWithAblations() []Experiment {
	return append(All(), Ablations()...)
}

// callHeavy calls one helper from several sites — the case where the
// §2.2 treatments diverge most.
const callHeavy = `
poly int a, b, c;
int step(int v) { return (v * 3 + 1) % 97; }
void main()
{
    a = step(iproc);
    b = step(a) + step(a + 1);
    c = step(b) + step(step(c));
    return;
}
`

func runA1(w io.Writer) error {
	shared, err := msc.Compile(callHeavy, msc.Config{Compress: true, CSI: true})
	if err != nil {
		return err
	}
	expanded, err := msc.Compile(callHeavy, msc.Config{Compress: true, CSI: true, ExpandCalls: true})
	if err != nil {
		return err
	}
	retWidth := func(c *msc.Compiled) int {
		max := 0
		for _, b := range c.Graph.Blocks {
			if b != nil && len(b.RetTargets) > max {
				max = len(b.RetTargets)
			}
		}
		return max
	}
	rc := msc.RunConfig{N: 8}
	rs, err := shared.RunSIMD(rc)
	if err != nil {
		return err
	}
	re, err := expanded.RunSIMD(rc)
	if err != nil {
		return err
	}
	// Same answers either way.
	for _, name := range []string{"a", "b", "c"} {
		ss, _ := shared.Slot(name)
		es, _ := expanded.Slot(name)
		for pe := 0; pe < 8; pe++ {
			if rs.Mem[pe][ss] != re.Mem[pe][es] {
				return fmt.Errorf("treatments disagree on %s at PE %d", name, pe)
			}
		}
	}
	if retWidth(expanded) != 0 {
		return fmt.Errorf("expansion left a multiway return (width %d)", retWidth(expanded))
	}
	table(w, []string{"treatment", "MIMD states", "meta states", "widest return branch", "run cycles"},
		[][]string{
			{"shared copy + return tokens", fmt.Sprint(shared.MIMDStates()),
				fmt.Sprint(shared.MetaStates()), fmt.Sprint(retWidth(shared)), fmt.Sprint(rs.Time)},
			{"per-site in-line expansion", fmt.Sprint(expanded.MIMDStates()),
				fmt.Sprint(expanded.MetaStates()), "0", fmt.Sprint(re.Time)},
		})
	fmt.Fprintf(w, "\nExpansion (the paper's literal §2.2) eliminates multiway returns; the shared copy keeps the graph smaller but every return dispatches over all sites.\n")
	return nil
}

func runA2(w io.Writer) error {
	var rows [][]string
	for _, phases := range []int{2, 4, 6} {
		src := BarrierPhases(phases)
		paper, err := msc.Compile(src, msc.Config{})
		if err != nil {
			return err
		}
		exact, err := msc.Compile(src, msc.Config{BarrierExact: true})
		if err != nil {
			return err
		}
		if exact.MetaStates() < paper.MetaStates() {
			return fmt.Errorf("exact mode produced fewer states than filtering at %d phases", phases)
		}
		rows = append(rows, []string{
			fmt.Sprint(phases),
			fmt.Sprint(paper.MetaStates()),
			fmt.Sprint(exact.MetaStates()),
		})
	}
	table(w, []string{"barrier phases", "meta states (§2.6 filtering)", "meta states (exact occupancy)"}, rows)
	fmt.Fprintf(w, "\nThe §2.6 filter hides waiting PEs from the automaton; exact mode keeps them, staying sound when several distinct barriers can be occupied at once, at the cost of state space.\n")
	return nil
}

func runA3(w io.Writer) error {
	var rows [][]string
	for _, k := range []int{2, 4, 6} {
		src := SeqLoops(k, false)
		g := msc.MustCompile(src, msc.Config{}).Graph
		merged, err := metastate.Convert(g, metastate.DefaultOptions(true))
		if err != nil {
			return err
		}
		opts := metastate.DefaultOptions(true)
		opts.MergeSubsets = false
		plain, err := metastate.Convert(g, opts)
		if err != nil {
			return err
		}
		if merged.NumStates() > plain.NumStates() {
			return fmt.Errorf("k=%d: merging increased states", k)
		}
		rows = append(rows, []string{
			fmt.Sprint(k),
			fmt.Sprint(plain.NumStates()),
			fmt.Sprint(merged.NumStates()),
		})
	}
	table(w, []string{"sequential loops k", "compressed, no merge", "compressed + subset merge"}, rows)
	fmt.Fprintf(w, "\nFigure 5's two-state result needs the merge: a meta state that is a subset of another is emulated by the superset (\"it has the code for both\").\n")
	return nil
}

func runA4(w io.Writer) error {
	// Count which hash form wins across the dispatch switches of the
	// workload suite (base automata have the interesting multiway
	// branches).
	counts := map[int]int{}
	total := 0
	for _, wl := range Suite() {
		c, err := msc.Compile(wl.Source, msc.Config{Hash: true})
		if err != nil {
			return err
		}
		for _, mc := range c.Program.Meta {
			if h := mc.Trans.Hash; h != nil {
				counts[h.EvalCost]++
				total++
			}
		}
	}
	if total == 0 {
		return fmt.Errorf("no hashed dispatches in the suite")
	}
	table(w, []string{"hash form", "eval cycles", "switches using it"},
		[][]string{
			{"(apc >> a) & m", "2", fmt.Sprint(counts[2])},
			{"((apc >> a) ^ (apc >> b)) & m", "4", fmt.Sprint(counts[4])},
			{"((apc * M) >> s) & m", "8", fmt.Sprint(counts[8])},
		})
	fmt.Fprintf(w, "\nThe search tries cheap forms first; Listing 5's xor-of-shifts form appears only when a plain shift cannot separate the aggregates.\n")
	return nil
}
