package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"msc"
	"msc/internal/obs"
	"msc/internal/simd"
)

// BenchResult is one workload's machine-readable measurement row: the
// converted program's size and timing on all three engines, plus the
// derived comparison ratios the evaluation quotes.
type BenchResult struct {
	Name          string `json:"name"`
	Width         int    `json:"width"`
	InitialActive int    `json:"initial_active,omitempty"`

	MIMDStates int `json:"mimd_states"`
	MetaStates int `json:"meta_states"`

	SIMDCycles   int64 `json:"simd_cycles"`
	MIMDCycles   int64 `json:"mimd_cycles"`
	InterpCycles int64 `json:"interp_cycles"`

	// SpeedupVsInterp is interp/simd: how much faster meta-state
	// converted code is than the §1.1 interpreter baseline.
	// SlowdownVsMIMD is simd/mimd: the residual cost against ideal MIMD.
	SpeedupVsInterp float64 `json:"speedup_vs_interp"`
	SlowdownVsMIMD  float64 `json:"slowdown_vs_mimd"`
	// Utilization is the SIMD run's mean enabled-PE fraction.
	Utilization float64 `json:"utilization"`

	// Compile carries the full compile-phase metrics for the workload.
	Compile *msc.CompileStats `json:"compile,omitempty"`

	// Opt:2 comparison build. The differential gate proves the optimized
	// build behaves identically; these fields quantify what it bought:
	// OptMetaStates vs MetaStates is the automaton shrink, OptConvertNS
	// vs ConvertNS the conversion-phase wall win (smaller graphs convert
	// faster). OptCompile carries the optimized build's full metrics,
	// including the per-pass rewrite counters.
	OptMetaStates int               `json:"opt_meta_states,omitempty"`
	ConvertNS     int64             `json:"convert_ns,omitempty"`
	OptConvertNS  int64             `json:"opt_convert_ns,omitempty"`
	OptCompile    *msc.CompileStats `json:"opt_compile,omitempty"`

	// Artifact-cache columns (docs/CACHE.md). CompileColdNS is the
	// workload's first compile against a fresh content-addressed cache
	// (full pipeline plus the store write); CompileCachedNS is the
	// immediately following warm hit served from the store (best of 5);
	// CacheSpeedup is cold/warm. All wall numbers, so benchdiff warns
	// on swings rather than gating.
	CompileColdNS   int64   `json:"compile_cold_ns,omitempty"`
	CompileCachedNS int64   `json:"compile_cached_ns,omitempty"`
	CacheSpeedup    float64 `json:"cache_speedup,omitempty"`

	// DegradeSteps and BudgetOverruns surface the robustness counters at
	// the top level so benchdiff can gate on them: a workload that
	// suddenly needs the degradation ladder (or trips a budget) is a
	// regression even when its cycle counts look fine.
	DegradeSteps   int64 `json:"degrade_steps"`
	BudgetOverruns int64 `json:"budget_overruns"`

	// Width-sweep rows only (BenchSweep; names look like "divergent@65536").
	// PESteps is the total issued PE-cycle count N×Time — every PE pays
	// every control cycle in SIMD — and CyclesPerPEStepMilli is issued
	// millicycles per *enabled* PE-cycle (inverse utilization, ≥1000,
	// lower is better). Both are deterministic and benchdiff gates them
	// hard. SIMDWallNS and NSPerPEStepMilli (milli-ns of wall time per
	// issued PE-cycle) are machine-noise wall numbers and only warn.
	// RefWallNS and SpeedupVsRef compare against the retired scalar
	// reference VM (simd.ReferenceRun) where it is cheap enough to run.
	PESteps              int64   `json:"pe_steps,omitempty"`
	CyclesPerPEStepMilli int64   `json:"cycles_per_pe_step_milli,omitempty"`
	SIMDWallNS           int64   `json:"simd_wall_ns,omitempty"`
	NSPerPEStepMilli     int64   `json:"ns_per_pe_step_milli,omitempty"`
	RefWallNS            int64   `json:"ref_wall_ns,omitempty"`
	SpeedupVsRef         float64 `json:"speedup_vs_ref,omitempty"`
}

// BenchReport is the whole suite's results in one JSON-encodable value.
type BenchReport struct {
	Config  string        `json:"config"`
	Results []BenchResult `json:"results"`
	// CacheHitRate is hits/(hits+misses) over the suite's whole cache
	// traffic: one cold miss plus the warm repeats per workload.
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
}

// BenchSuite is the benchmark corpus: the paper's workload suite plus
// the optimizer-demonstration workloads, which carry the
// statically-decidable branches the paper programs don't (their
// automata are already minimal, so they exercise the optimizer's
// no-regression side while these two show the reduction side).
func BenchSuite() []Workload {
	return append(Suite(),
		Workload{Name: "debug-guards", Source: DebugGuards, Width: 8},
		Workload{Name: "mode-select", Source: ModeSelect, Width: 8},
	)
}

// Bench compiles and runs every BenchSuite workload under DefaultConfig
// on all three engines and collects the measurement rows.
func Bench() (*BenchReport, error) {
	rep := &BenchReport{Config: "default (compress+csi+hash)"}
	cacheDir, err := os.MkdirTemp("", "mscbench-cache-")
	if err != nil {
		return nil, fmt.Errorf("bench: cache dir: %w", err)
	}
	defer os.RemoveAll(cacheDir)
	cc, err := msc.OpenCache(cacheDir)
	if err != nil {
		return nil, fmt.Errorf("bench: cache: %w", err)
	}
	for _, wl := range BenchSuite() {
		c, err := msc.Compile(wl.Source, msc.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("bench %s: compile: %w", wl.Name, err)
		}
		rc := msc.RunConfig{N: wl.Width, InitialActive: wl.InitialActive}
		simdRes, err := c.RunSIMD(rc)
		if err != nil {
			return nil, fmt.Errorf("bench %s: simd: %w", wl.Name, err)
		}
		mimdRes, err := c.RunMIMD(rc)
		if err != nil {
			return nil, fmt.Errorf("bench %s: mimd: %w", wl.Name, err)
		}
		interpRes, err := c.RunInterp(rc)
		if err != nil {
			return nil, fmt.Errorf("bench %s: interp: %w", wl.Name, err)
		}
		r := BenchResult{
			Name:          wl.Name,
			Width:         wl.Width,
			InitialActive: wl.InitialActive,
			MIMDStates:    c.MIMDStates(),
			MetaStates:    c.MetaStates(),
			SIMDCycles:    simdRes.Time,
			MIMDCycles:    mimdRes.Time,
			InterpCycles:  interpRes.Time,
			Utilization:   simdRes.Utilization(wl.Width),
			Compile:       c.Stats,
		}
		if c.Stats != nil {
			r.DegradeSteps = c.Stats.DegradeSteps
			r.BudgetOverruns = c.Stats.BudgetOverruns
			r.ConvertNS = phaseWall(c.Stats, obs.PhaseConvert)
		}
		optConf := msc.DefaultConfig()
		optConf.Opt = 2
		oc, err := msc.Compile(wl.Source, optConf)
		if err != nil {
			return nil, fmt.Errorf("bench %s: opt compile: %w", wl.Name, err)
		}
		r.OptMetaStates = oc.MetaStates()
		r.OptCompile = oc.Stats
		if oc.Stats != nil {
			r.OptConvertNS = phaseWall(oc.Stats, obs.PhaseConvert)
		}
		if simdRes.Time > 0 {
			r.SpeedupVsInterp = float64(interpRes.Time) / float64(simdRes.Time)
		}
		if mimdRes.Time > 0 {
			r.SlowdownVsMIMD = float64(simdRes.Time) / float64(mimdRes.Time)
		}
		cold, cached, err := cachedCompile(cc, wl.Source)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", wl.Name, err)
		}
		r.CompileColdNS, r.CompileCachedNS = cold, cached
		if cached > 0 {
			r.CacheSpeedup = float64(cold) / float64(cached)
		}
		rep.Results = append(rep.Results, r)
	}
	if st := cc.Stats(); st.Hits+st.Misses > 0 {
		rep.CacheHitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	return rep, nil
}

// cachedCompile measures the artifact cache's effect on one workload:
// the cold compile (pipeline plus store write, first sight of this
// key) and the best-of-5 warm hit. Both verify the cache outcome they
// claim to measure — a silent fall-through to an uncached compile
// would otherwise time the wrong path and report speedup 1x.
func cachedCompile(cc *msc.Cache, source string) (cold, cached int64, err error) {
	conf := msc.DefaultConfig()
	conf.Cache = cc
	start := time.Now()
	c, err := msc.Compile(source, conf)
	cold = time.Since(start).Nanoseconds()
	if err != nil {
		return 0, 0, fmt.Errorf("cold cached compile: %w", err)
	}
	if got := cacheOutcome(c); got != "stored" {
		return 0, 0, fmt.Errorf("cold compile cache outcome %q, want stored", got)
	}
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		wc, err := msc.Compile(source, conf)
		d := time.Since(start).Nanoseconds()
		if err != nil {
			return 0, 0, fmt.Errorf("warm cached compile: %w", err)
		}
		if got := cacheOutcome(wc); got != "hit" {
			return 0, 0, fmt.Errorf("warm compile cache outcome %q, want hit", got)
		}
		if cached == 0 || d < cached {
			cached = d
		}
	}
	return cold, cached, nil
}

func cacheOutcome(c *msc.Compiled) string {
	if c.Stats == nil {
		return ""
	}
	return c.Stats.CacheOutcome
}

// phaseWall returns the named phase's wall time from compile stats.
func phaseWall(s *msc.CompileStats, phase string) int64 {
	for _, p := range s.PhaseWall {
		if p.Name == phase {
			return int64(p.Wall)
		}
	}
	return 0
}

// WriteJSON encodes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SweepWorkloads is the width-sweep corpus: workloads whose per-PE work
// is independent of the machine width (every PE runs the same bounded
// program regardless of N), so their rows measure the VM's width
// scaling and nothing else. Collatz's trajectory lengths depend on
// iproc, so it is capped — see sweepCollatzMaxWidth.
func SweepWorkloads() []Workload {
	return []Workload{
		{Name: "divergent", Source: Divergent},
		{Name: "stencil", Source: Stencil},
		{Name: "collatz", Source: Collatz},
		{Name: "farm", Source: Farm, InitialActive: 1},
	}
}

// sweepCollatzMaxWidth caps collatz in the sweep: its per-PE trip count
// grows with iproc, so mega widths would dominate the sweep's wall time
// without adding width-scaling signal.
const sweepCollatzMaxWidth = 1 << 16

// sweepRefMaxWidth caps the scalar-reference comparison column: the
// retired per-PE VM is the denominator of SpeedupVsRef and is too slow
// to be worth running above this width.
const sweepRefMaxWidth = 1 << 16

// BenchSweep runs the width sweep: every SweepWorkloads program at
// every requested width on the vectorized SIMD VM, producing one
// "name@width" row per combination. Cycle-domain metrics (PESteps,
// CyclesPerPEStepMilli) are deterministic; wall metrics are best-of-3
// to damp scheduler noise.
func BenchSweep(widths []int) ([]BenchResult, error) {
	var rows []BenchResult
	for _, wl := range SweepWorkloads() {
		c, err := msc.Compile(wl.Source, msc.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("sweep %s: compile: %w", wl.Name, err)
		}
		for _, n := range widths {
			if wl.Name == "collatz" && n > sweepCollatzMaxWidth {
				continue
			}
			conf := simd.Config{N: n, InitialActive: wl.InitialActive}
			var res *simd.Result
			wall := int64(-1)
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				r, err := simd.Run(c.Program, conf)
				d := time.Since(start).Nanoseconds()
				if err != nil {
					return nil, fmt.Errorf("sweep %s@%d: %w", wl.Name, n, err)
				}
				if wall < 0 || d < wall {
					res, wall = r, d
				}
			}
			row := BenchResult{
				Name:          fmt.Sprintf("%s@%d", wl.Name, n),
				Width:         n,
				InitialActive: wl.InitialActive,
				MIMDStates:    c.MIMDStates(),
				MetaStates:    c.MetaStates(),
				SIMDCycles:    res.Time,
				Utilization:   res.Utilization(n),
				PESteps:       int64(n) * res.Time,
				SIMDWallNS:    wall,
			}
			if res.EnabledCycles > 0 {
				row.CyclesPerPEStepMilli = 1000 * row.PESteps / res.EnabledCycles
			}
			if row.PESteps > 0 {
				row.NSPerPEStepMilli = 1000 * wall / row.PESteps
			}
			if n <= sweepRefMaxWidth {
				start := time.Now()
				if _, err := simd.ReferenceRun(c.Program, conf); err != nil {
					return nil, fmt.Errorf("sweep %s@%d: reference: %w", wl.Name, n, err)
				}
				row.RefWallNS = time.Since(start).Nanoseconds()
				if wall > 0 {
					row.SpeedupVsRef = float64(row.RefWallNS) / float64(wall)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
