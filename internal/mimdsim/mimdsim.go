// Package mimdsim is the MIMD reference machine: it executes a MIMD
// state graph with one independent program counter per processor, the
// execution model the paper's meta-state conversion must reproduce on
// SIMD hardware. It provides golden outputs for cross-engine
// equivalence tests and the ideal-MIMD timing baseline (per-PE clocks,
// explicit runtime barrier cost) that the evaluation compares against.
package mimdsim

import (
	"context"
	"fmt"

	"msc/internal/cfg"
	"msc/internal/ir"
	"msc/internal/mscerr"
	"msc/internal/telemetry"
)

// Config controls a simulation run.
type Config struct {
	// N is the machine width (number of processors). Must be >= 1.
	N int
	// InitialActive is how many PEs begin executing at the program
	// entry; the rest are idle in the free pool until spawned into use
	// (§3.2.5). Zero means all N.
	InitialActive int
	// BarrierCost is the runtime cost in cycles a MIMD machine pays to
	// synchronize at each barrier episode (the cost meta-state converted
	// code avoids, §5). Defaults to DefaultBarrierCost when zero.
	BarrierCost int
	// MaxBlocks bounds the number of blocks a single PE may execute,
	// guarding against non-terminating programs. Defaults to
	// mscerr.DefaultMaxSteps; exceeding it returns an
	// *mscerr.StepLimitError.
	MaxBlocks int
	// Ctx, when non-nil, is checked every ctxCheckEvery blocks per PE
	// for cooperative cancellation.
	Ctx context.Context
	// Profiler, when non-nil, receives sampled attribution of useful
	// cycles to MIMD blocks (meta frame telemetry.NoMeta — this machine
	// has no meta states). The simulator runs PEs on one goroutine, so
	// the profiler's single-consumer contract holds.
	Profiler *telemetry.Profiler
}

// ctxCheckEvery is the per-PE block interval between cancellation
// checks.
const ctxCheckEvery = 1024

// DefaultBarrierCost models a software barrier on a fine-grain MIMD
// machine (the "cost of runtime synchronization" of §5).
const DefaultBarrierCost = 32

// Result reports the outcome of a run.
type Result struct {
	// Mem is the final per-PE memory image.
	Mem [][]ir.Word
	// Time is the makespan: the largest per-PE completion clock.
	Time int64
	// Useful is the total cycles spent executing block code and
	// terminators across all PEs (excludes barrier wait and barrier
	// runtime cost).
	Useful int64
	// Clocks holds each PE's final clock.
	Clocks []int64
	// Blocks counts blocks executed across all PEs.
	Blocks int64
	// BlockVisits[id] counts executions of MIMD state id across all PEs
	// (sums to Blocks); BlockCycles[id] is the useful cycles those
	// executions cost (sums to Useful). Together they locate the MIMD
	// hot spots the meta-state profile is compared against.
	BlockVisits []int64
	BlockCycles []int64
	// Barriers counts barrier release episodes.
	Barriers int
	// Done flags PEs that ran to End (as opposed to idle/halted).
	Done []bool
}

type peStatus uint8

const (
	peIdle peStatus = iota
	peActive
	peAtBarrier
	peDone
)

type pe struct {
	status   peStatus
	pc       int
	clock    int64
	stack    []ir.Word
	retStack []int
	released bool // barrier check suppressed once after release
	blocks   int
}

type machine struct {
	g   *cfg.Graph
	cfg Config
	mem [][]ir.Word
	pes []pe
	res *Result
}

// Run executes the graph to completion on the MIMD reference machine.
func Run(g *cfg.Graph, conf Config) (*Result, error) {
	if conf.N < 1 {
		return nil, fmt.Errorf("mimdsim: N must be >= 1, got %d", conf.N)
	}
	if conf.InitialActive == 0 {
		conf.InitialActive = conf.N
	}
	if conf.InitialActive < 1 || conf.InitialActive > conf.N {
		return nil, fmt.Errorf("mimdsim: InitialActive %d out of range [1,%d]", conf.InitialActive, conf.N)
	}
	if conf.BarrierCost == 0 {
		conf.BarrierCost = DefaultBarrierCost
	}
	if conf.MaxBlocks == 0 {
		conf.MaxBlocks = mscerr.DefaultMaxSteps
	}

	m := &machine{
		g:   g,
		cfg: conf,
		mem: make([][]ir.Word, conf.N),
		pes: make([]pe, conf.N),
		res: &Result{
			Clocks:      make([]int64, conf.N),
			Done:        make([]bool, conf.N),
			BlockVisits: make([]int64, len(g.Blocks)),
			BlockCycles: make([]int64, len(g.Blocks)),
		},
	}
	for i := range m.mem {
		m.mem[i] = make([]ir.Word, g.Words)
	}
	for i := 0; i < conf.InitialActive; i++ {
		m.pes[i] = pe{status: peActive, pc: g.Entry}
	}

	for {
		ran := false
		for i := range m.pes {
			if m.pes[i].status == peActive {
				if err := m.runPE(i); err != nil {
					return nil, err
				}
				ran = true
			}
		}
		if ran {
			continue
		}
		// Nobody is runnable: release a barrier episode or finish.
		var waiting []int
		for i := range m.pes {
			if m.pes[i].status == peAtBarrier {
				waiting = append(waiting, i)
			}
		}
		if len(waiting) == 0 {
			break
		}
		var release int64
		for _, i := range waiting {
			if m.pes[i].clock > release {
				release = m.pes[i].clock
			}
		}
		release += int64(m.cfg.BarrierCost)
		for _, i := range waiting {
			m.pes[i].clock = release
			m.pes[i].status = peActive
			m.pes[i].released = true
		}
		m.res.Barriers++
	}

	for i := range m.pes {
		m.res.Clocks[i] = m.pes[i].clock
		m.res.Done[i] = m.pes[i].status == peDone
		if m.pes[i].clock > m.res.Time {
			m.res.Time = m.pes[i].clock
		}
	}
	m.res.Mem = m.mem
	return m.res, nil
}

// runPE executes one PE until it blocks at a barrier, ends, or halts.
func (m *machine) runPE(i int) error {
	p := &m.pes[i]
	for {
		b := m.g.Block(p.pc)
		if b == nil {
			return fmt.Errorf("mimdsim: PE %d at nonexistent state %d", i, p.pc)
		}
		if b.Barrier && !p.released {
			p.status = peAtBarrier
			return nil
		}
		p.released = false
		p.blocks++
		if p.blocks > m.cfg.MaxBlocks {
			return &mscerr.StepLimitError{Engine: "mimd", Limit: int64(m.cfg.MaxBlocks), Steps: int64(p.blocks)}
		}
		// blocks was just incremented, so == 1 fires on the very first
		// block: a pre-canceled context must not execute the program.
		if m.cfg.Ctx != nil && p.blocks%ctxCheckEvery == 1 {
			if err := m.cfg.Ctx.Err(); err != nil {
				return fmt.Errorf("mimdsim: run canceled at PE %d block %d: %w", i, p.blocks, err)
			}
		}
		m.res.Blocks++
		m.res.BlockVisits[b.ID]++

		for _, in := range b.Code {
			if err := m.exec(i, in); err != nil {
				return fmt.Errorf("mimdsim: PE %d state %d: %w", i, b.ID, err)
			}
		}
		cost := int64(b.Cost())
		p.clock += cost
		m.res.Useful += cost
		m.res.BlockCycles[b.ID] += cost
		if m.cfg.Profiler != nil {
			m.cfg.Profiler.Add(telemetry.NoMeta, b.ID, b.Pos, cost)
		}

		switch b.Term {
		case cfg.End:
			p.status = peDone
			return nil
		case cfg.Halt:
			p.status = peIdle
			p.stack = p.stack[:0]
			p.retStack = p.retStack[:0]
			return nil
		case cfg.Goto:
			p.pc = b.Next
		case cfg.Branch:
			c, err := m.pop(i)
			if err != nil {
				return err
			}
			if ir.Truth(c) {
				p.pc = b.Next
			} else {
				p.pc = b.FNext
			}
		case cfg.RetBr:
			if len(p.retStack) == 0 {
				return fmt.Errorf("mimdsim: PE %d return with empty return stack", i)
			}
			p.pc = p.retStack[len(p.retStack)-1]
			p.retStack = p.retStack[:len(p.retStack)-1]
		case cfg.Spawn:
			child := -1
			for j := range m.pes {
				if m.pes[j].status == peIdle {
					child = j
					break
				}
			}
			if child < 0 {
				return fmt.Errorf("mimdsim: spawn with no free processor (width %d)", m.cfg.N)
			}
			m.pes[child] = pe{status: peActive, pc: b.SpawnNext, clock: p.clock}
			p.pc = b.Next
		}
	}
}

func (m *machine) push(i int, w ir.Word) {
	m.pes[i].stack = append(m.pes[i].stack, w)
}

func (m *machine) pop(i int) (ir.Word, error) {
	s := m.pes[i].stack
	if len(s) == 0 {
		return 0, fmt.Errorf("evaluation stack underflow")
	}
	w := s[len(s)-1]
	m.pes[i].stack = s[:len(s)-1]
	return w, nil
}

// slot validates a memory address.
func (m *machine) slot(addr int64) (int, error) {
	if addr < 0 || addr >= int64(m.g.Words) {
		return 0, fmt.Errorf("memory address %d out of range [0,%d)", addr, m.g.Words)
	}
	return int(addr), nil
}

// peIndex normalizes a parallel-subscript processor index by wrapping
// modulo the machine width (identical in every engine).
func peIndex(p ir.Word, n int) int {
	v := int(p) % n
	if v < 0 {
		v += n
	}
	return v
}

func (m *machine) exec(i int, in ir.Instr) error {
	switch in.Op {
	case ir.Nop:
	case ir.PushC:
		m.push(i, ir.Word(in.Imm))
	case ir.Dup:
		w, err := m.pop(i)
		if err != nil {
			return err
		}
		m.push(i, w)
		m.push(i, w)
	case ir.Pop:
		for k := int64(0); k < in.Imm; k++ {
			if _, err := m.pop(i); err != nil {
				return err
			}
		}
	case ir.LdLocal, ir.LdMono:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		m.push(i, m.mem[i][a])
	case ir.StLocal:
		w, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		m.mem[i][a] = w
	case ir.StMono:
		w, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		for q := range m.mem {
			m.mem[q][a] = w
		}
	case ir.LdIndex:
		idx, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm + int64(idx))
		if err != nil {
			return err
		}
		m.push(i, m.mem[i][a])
	case ir.StIndex:
		w, err := m.pop(i)
		if err != nil {
			return err
		}
		idx, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm + int64(idx))
		if err != nil {
			return err
		}
		m.mem[i][a] = w
	case ir.LdRemote:
		pw, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		m.push(i, m.mem[peIndex(pw, m.cfg.N)][a])
	case ir.StRemote:
		w, err := m.pop(i)
		if err != nil {
			return err
		}
		pw, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		m.mem[peIndex(pw, m.cfg.N)][a] = w
	case ir.IProc:
		m.push(i, ir.Word(i))
	case ir.NProc:
		m.push(i, ir.Word(m.cfg.N))
	case ir.PushRet:
		m.pes[i].retStack = append(m.pes[i].retStack, int(in.Imm))
	default:
		switch {
		case ir.IsBinary(in.Op):
			b, err := m.pop(i)
			if err != nil {
				return err
			}
			a, err := m.pop(i)
			if err != nil {
				return err
			}
			m.push(i, ir.EvalBinary(in.Op, a, b))
		case ir.IsUnary(in.Op):
			a, err := m.pop(i)
			if err != nil {
				return err
			}
			m.push(i, ir.EvalUnary(in.Op, a))
		default:
			return fmt.Errorf("unknown opcode %v", in.Op)
		}
	}
	return nil
}
