package mimdsim

import (
	"strings"
	"testing"

	"msc/internal/cfg"
	"msc/internal/ir"
)

func run(t *testing.T, src string, conf Config) (*cfg.Graph, *Result) {
	t.Helper()
	g := cfg.Simplify(cfg.MustBuild(src))
	if err := cfg.Verify(g); err != nil {
		t.Fatalf("verify: %v", err)
	}
	res, err := Run(g, conf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, g)
	}
	return g, res
}

func TestDivergentLoops(t *testing.T) {
	// The Listing 1 skeleton with terminating loop bodies: PEs diverge at
	// the if, loop different numbers of times, and join at F.
	g, res := run(t, `
poly int x;
void main()
{
    x = iproc % 3;
    if (x) {
        do { x = x - 1; } while (x);
    } else {
        do { x = x + 2; } while (x < 4);
    }
    x = x + 100;
    return;
}
`, Config{N: 7})
	slot := g.VarSlot["x"]
	for pe := 0; pe < 7; pe++ {
		want := ir.Word(100) // branch-takers count down to 0
		if pe%3 == 0 {
			want = 104 // 0 -> 2 -> 4, then +100
		}
		if got := res.Mem[pe][slot]; got != want {
			t.Errorf("PE %d: x = %d, want %d", pe, got, want)
		}
		if !res.Done[pe] {
			t.Errorf("PE %d not done", pe)
		}
	}
	if res.Time <= 0 || res.Useful <= 0 || res.Blocks <= 0 {
		t.Fatalf("metrics not populated: %+v", res)
	}
}

func TestBarrierReduction(t *testing.T) {
	// Classic SPMD reduction: every PE publishes a value, barriers, then
	// reads every other PE's value via parallel subscripting (§4.1).
	g, res := run(t, `
poly int val, sum;
void main()
{
    poly int j;
    val = iproc + 1;
    wait;
    sum = 0;
    for (j = 0; j < nproc; j = j + 1) {
        sum = sum + val[[j]];
    }
    return;
}
`, Config{N: 8})
	want := ir.Word(8 * 9 / 2)
	slot := g.VarSlot["sum"]
	for pe := 0; pe < 8; pe++ {
		if got := res.Mem[pe][slot]; got != want {
			t.Errorf("PE %d: sum = %d, want %d", pe, got, want)
		}
	}
	if res.Barriers != 1 {
		t.Errorf("barrier episodes = %d, want 1", res.Barriers)
	}
}

func TestBarrierCostCharged(t *testing.T) {
	src := `
void main()
{
    poly int i, x;
    for (i = 0; i < iproc; i = i + 1) { x = x + i; }
    wait;
    return;
}
`
	_, cheap := run(t, src, Config{N: 4, BarrierCost: 1})
	_, costly := run(t, src, Config{N: 4, BarrierCost: 500})
	if costly.Time-cheap.Time != 499 {
		t.Fatalf("barrier cost delta = %d, want 499", costly.Time-cheap.Time)
	}
	// All PEs leave the barrier at the same clock, so they finish together.
	for i := 1; i < 4; i++ {
		if costly.Clocks[i] != costly.Clocks[0] {
			t.Fatalf("clocks diverge after barrier: %v", costly.Clocks)
		}
	}
}

func TestTailRecursionGCD(t *testing.T) {
	g, res := run(t, `
poly int r;
int gcd(int a, int b)
{
    if (b == 0) { return a; }
    return gcd(b, a % b);
}
void main()
{
    r = gcd(12 + iproc * 6, 18);
    return;
}
`, Config{N: 4})
	slot := g.VarSlot["r"]
	wants := []ir.Word{6, 18, 6, 6} // gcd(12,18), gcd(18,18), gcd(24,18), gcd(30,18)
	for pe, want := range wants {
		if got := res.Mem[pe][slot]; got != want {
			t.Errorf("PE %d: gcd = %d, want %d", pe, got, want)
		}
	}
}

func TestFunctionCallsAndMainReturn(t *testing.T) {
	g, res := run(t, `
int sq(int v) { return v * v; }
int main()
{
    poly int a;
    a = sq(3) + sq(4);
    return a;
}
`, Config{N: 2})
	slot, ok := g.RetSlot["main"]
	if !ok {
		t.Fatalf("no main return slot")
	}
	for pe := 0; pe < 2; pe++ {
		if got := res.Mem[pe][slot]; got != 25 {
			t.Errorf("PE %d: main returned %d, want 25", pe, got)
		}
	}
}

func TestMonoBroadcast(t *testing.T) {
	g, res := run(t, `
mono int shared;
poly int seen;
void main()
{
    if (iproc == 0) { shared = 42; }
    wait;
    seen = shared;
    return;
}
`, Config{N: 5})
	slot := g.VarSlot["seen"]
	for pe := 0; pe < 5; pe++ {
		if got := res.Mem[pe][slot]; got != 42 {
			t.Errorf("PE %d: seen = %d, want 42", pe, got)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	g, res := run(t, `
poly float y;
void main()
{
    poly int i;
    y = 0.5;
    for (i = 0; i < 4; i = i + 1) { y = y * 2.0; }
    y = y + iproc;
    return;
}
`, Config{N: 3})
	slot := g.VarSlot["y"]
	for pe := 0; pe < 3; pe++ {
		if got := res.Mem[pe][slot].Float(); got != 8.0+float64(pe) {
			t.Errorf("PE %d: y = %g, want %g", pe, got, 8.0+float64(pe))
		}
	}
}

func TestArrays(t *testing.T) {
	g, res := run(t, `
poly int a[5], total;
void main()
{
    poly int i;
    for (i = 0; i < 5; i = i + 1) { a[i] = i * i; }
    total = 0;
    for (i = 0; i < 5; i = i + 1) { total = total + a[i]; }
    return;
}
`, Config{N: 2})
	slot := g.VarSlot["total"]
	if got := res.Mem[0][slot]; got != 30 {
		t.Fatalf("total = %d, want 30", got)
	}
}

func TestSpawnAndHalt(t *testing.T) {
	g, res := run(t, `
poly int r;
void worker() { r = iproc * 10 + 1; halt; }
void main()
{
    spawn worker();
    spawn worker();
    return;
}
`, Config{N: 4, InitialActive: 1})
	slot := g.VarSlot["r"]
	// PE 0 ran main; PEs 1 and 2 were spawned; PE 3 stayed idle.
	if res.Mem[1][slot] != 11 || res.Mem[2][slot] != 21 {
		t.Fatalf("worker results = %d, %d; want 11, 21", res.Mem[1][slot], res.Mem[2][slot])
	}
	if res.Mem[3][slot] != 0 {
		t.Fatalf("idle PE 3 has r = %d, want 0", res.Mem[3][slot])
	}
	if !res.Done[0] || res.Done[1] || res.Done[2] {
		t.Fatalf("done flags = %v, want only PE 0 (halted PEs are idle, not done)", res.Done)
	}
}

func TestSpawnExhaustion(t *testing.T) {
	g := cfg.Simplify(cfg.MustBuild(`
void worker() { halt; }
void main()
{
    spawn worker();
    spawn worker();
    return;
}
`))
	_, err := Run(g, Config{N: 2, InitialActive: 1})
	if err == nil || !strings.Contains(err.Error(), "no free processor") {
		t.Fatalf("err = %v, want spawn exhaustion", err)
	}
}

func TestHaltedPEReusable(t *testing.T) {
	// A halted worker returns its PE to the pool; a later spawn reuses it.
	g, res := run(t, `
poly int count;
void worker() { count = count + 1; halt; }
void main()
{
    spawn worker();
    wait;
    spawn worker();
    return;
}
`, Config{N: 2, InitialActive: 1})
	slot := g.VarSlot["count"]
	if got := res.Mem[1][slot]; got != 2 {
		t.Fatalf("reused PE count = %d, want 2", got)
	}
	_ = res
}

func TestNonTerminatingDetected(t *testing.T) {
	g := cfg.Simplify(cfg.MustBuild(`void main() { poly int x; for (;;) { x = x + 1; } }`))
	_, err := Run(g, Config{N: 1, MaxBlocks: 100})
	if err == nil || !strings.Contains(err.Error(), "non-terminating") {
		t.Fatalf("err = %v, want non-terminating guard", err)
	}
}

func TestBadConfig(t *testing.T) {
	g := cfg.Simplify(cfg.MustBuild(`void main() { return; }`))
	if _, err := Run(g, Config{N: 0}); err == nil {
		t.Fatalf("N=0 accepted")
	}
	if _, err := Run(g, Config{N: 2, InitialActive: 3}); err == nil {
		t.Fatalf("InitialActive > N accepted")
	}
}

func TestShortCircuitSemantics(t *testing.T) {
	// f() must not execute when the left side of && is false: g stays 0.
	g, res := run(t, `
poly int trace;
int f() { trace = trace + 1; return 1; }
void main()
{
    poly int c;
    c = 0 && f();
    c = c + (1 && f());
    c = c + (1 || f());
    return;
}
`, Config{N: 1})
	if got := res.Mem[0][g.VarSlot["trace"]]; got != 1 {
		t.Fatalf("f executed %d times, want 1 (short-circuit)", got)
	}
}

func TestRemoteWrite(t *testing.T) {
	// Each PE writes into its right neighbor's slot (wrapping), then all
	// barrier and read.
	g, res := run(t, `
poly int inbox, got;
void main()
{
    inbox[[iproc + 1]] = iproc;
    wait;
    got = inbox;
    return;
}
`, Config{N: 4})
	slot := g.VarSlot["got"]
	wants := []ir.Word{3, 0, 1, 2}
	for pe, want := range wants {
		if got := res.Mem[pe][slot]; got != want {
			t.Errorf("PE %d: got = %d, want %d", pe, got, want)
		}
	}
}

func TestIndexOutOfRange(t *testing.T) {
	g := cfg.Simplify(cfg.MustBuild(`
poly int a[3];
void main()
{
    poly int i;
    i = 10;
    a[i] = 1;
    return;
}
`))
	if _, err := Run(g, Config{N: 1}); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bounds check missing: %v", err)
	}
}

func TestMonoStoreRaceConvention(t *testing.T) {
	// All PEs store different values to a mono variable in the same
	// phase: the documented convention is last-writer (highest PE in
	// phase order) wins.
	g := cfg.Simplify(cfg.MustBuild(`
mono int m;
void main()
{
    m = iproc;
    return;
}
`))
	res, err := Run(g, Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mem[0][g.VarSlot["m"]]; got != 3 {
		t.Fatalf("mono race winner = %d, want 3 (highest PE)", got)
	}
}

func TestBarrierWithHaltedPEs(t *testing.T) {
	// Spawned workers halt; the remaining PEs' barrier must release
	// without counting the halted ones.
	g := cfg.Simplify(cfg.MustBuild(`
poly int done;
void worker() { halt; }
void main()
{
    spawn worker();
    wait;
    done = 1;
    return;
}
`))
	res, err := Run(g, Config{N: 3, InitialActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem[0][g.VarSlot["done"]] != 1 {
		t.Fatalf("barrier never released")
	}
}

func TestUsefulVersusTime(t *testing.T) {
	g := cfg.Simplify(cfg.MustBuild(`
void main()
{
    poly int i, s;
    for (i = 0; i < iproc + 1; i = i + 1) { s = s + i; }
    return;
}
`))
	res, err := Run(g, Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Useful sums all PEs' work; Time is the slowest PE's clock, so
	// Useful > Time on divergent work with N > 1.
	if res.Useful <= res.Time {
		t.Fatalf("useful %d <= makespan %d on divergent work", res.Useful, res.Time)
	}
	// Clocks are non-decreasing in iproc for this workload.
	for pe := 1; pe < 4; pe++ {
		if res.Clocks[pe] < res.Clocks[pe-1] {
			t.Fatalf("clock[%d]=%d < clock[%d]=%d", pe, res.Clocks[pe], pe-1, res.Clocks[pe-1])
		}
	}
}

func TestBlockCounters(t *testing.T) {
	g, res := run(t, `
poly int x;
void main()
{
    x = iproc % 3;
    if (x) {
        do { x = x - 1; } while (x);
    } else {
        do { x = x + 2; } while (x < 4);
    }
    x = x + 100;
    return;
}
`, Config{N: 7})

	if len(res.BlockVisits) != len(g.Blocks) || len(res.BlockCycles) != len(g.Blocks) {
		t.Fatalf("counter lengths %d/%d, want %d", len(res.BlockVisits), len(res.BlockCycles), len(g.Blocks))
	}
	var visits, cycles int64
	for id := range res.BlockVisits {
		visits += res.BlockVisits[id]
		cycles += res.BlockCycles[id]
		if res.BlockVisits[id] == 0 && res.BlockCycles[id] != 0 {
			t.Errorf("state %d has cycles without visits", id)
		}
	}
	if visits != res.Blocks {
		t.Errorf("sum(BlockVisits) = %d, want Blocks = %d", visits, res.Blocks)
	}
	if cycles != res.Useful {
		t.Errorf("sum(BlockCycles) = %d, want Useful = %d", cycles, res.Useful)
	}
	if res.BlockVisits[g.Entry] != 7 {
		t.Errorf("entry visits = %d, want 7", res.BlockVisits[g.Entry])
	}
}
