// Package progen generates random race-free SPMD programs in MIMDC,
// used by cross-engine equivalence tests (MIMD reference == interpreter
// == meta-state SIMD) and as workload generators for the benchmark
// harness.
//
// Race freedom by construction: programs only write private (poly)
// state, except in dedicated communication phases — bracketed by wait
// barriers — where receive variables (written by parallel-subscript
// reads) are disjoint from the data variables being read, so no engine
// ordering can observe a torn value.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Params controls generation. Zero values get sensible defaults.
type Params struct {
	Seed int64
	// Vars is the number of poly int data variables (v0..); Recv the
	// number of receive-only variables (r0..). Defaults 4 and 2.
	Vars, Recv int
	// MaxDepth bounds statement nesting; MaxStmts bounds block length.
	// Defaults 3 and 5.
	MaxDepth, MaxStmts int
	// Barriers enables wait/communication phases; Floats adds a float
	// variable and mixed arithmetic; Calls adds helper functions.
	Barriers bool
	Floats   bool
	Calls    bool
	// Spawns emits a halt-terminated worker function and that many
	// spawn sites at the end of main (each a single spawn or a short
	// spawn loop). Spawn-heavy programs should run with InitialActive
	// well below N — a spawn with no free processor is a runtime fault
	// (identical on every engine, so differentials still hold).
	Spawns int
	// LoopTrip bounds generated loop trip counts. Default 3.
	LoopTrip int
}

func (p *Params) fill() {
	if p.Vars == 0 {
		p.Vars = 4
	}
	if p.Recv == 0 {
		p.Recv = 2
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 3
	}
	if p.MaxStmts == 0 {
		p.MaxStmts = 5
	}
	if p.LoopTrip == 0 {
		p.LoopTrip = 3
	}
}

type gen struct {
	Params
	r       *rand.Rand
	sb      strings.Builder
	indent  int
	loopVar int
}

// Source generates a complete MIMDC program.
func Source(p Params) string {
	p.fill()
	g := &gen{Params: p, r: rand.New(rand.NewSource(p.Seed))}
	return g.program()
}

func (g *gen) line(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("    ", g.indent))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *gen) program() string {
	var decls []string
	for i := 0; i < g.Vars; i++ {
		decls = append(decls, fmt.Sprintf("v%d", i))
	}
	for i := 0; i < g.Recv; i++ {
		decls = append(decls, fmt.Sprintf("r%d", i))
	}
	g.line("poly int %s;", strings.Join(decls, ", "))
	if g.Floats {
		g.line("poly float f0, f1;")
	}
	if g.Calls {
		g.line("int helper1(int a) { return a * 3 + 1; }")
		g.line("int helper2(int a, int b) { if (a > b) { return a - b; } return b - a; }")
	}
	if g.Spawns > 0 {
		// Workers write only their own poly state and halt back into
		// the free pool — race-free like everything else here.
		g.line("void worker()")
		g.line("{")
		g.indent++
		g.line("poly int wk;")
		g.line("v0 = 0;")
		g.line("for (wk = 0; wk < iproc %% %d + 1; wk = wk + 1) {", g.r.Intn(5)+2)
		g.indent++
		g.line("v0 = v0 + wk * (iproc + %d);", g.r.Intn(7))
		g.indent--
		g.line("}")
		g.line("halt;")
		g.indent--
		g.line("}")
	}
	g.line("void main()")
	g.line("{")
	g.indent++
	g.line("poly int li0, li1, li2, li3, li4, li5, li6, li7;")
	// Seed state from the processor index so PEs diverge.
	for i := 0; i < g.Vars; i++ {
		g.line("v%d = (iproc + %d) %% %d;", i, g.r.Intn(7), g.r.Intn(5)+2)
	}
	if g.Floats {
		g.line("f0 = iproc + 0.5;")
		g.line("f1 = 1.25;")
	}
	g.block(0)
	for i := 0; i < g.Spawns; i++ {
		if lv := g.loopVar; lv < 8 && g.r.Intn(2) == 0 {
			g.loopVar++
			trip := g.r.Intn(g.LoopTrip) + 1
			g.line("for (li%d = 0; li%d < %d; li%d = li%d + 1) {", lv, lv, trip, lv, lv)
			g.indent++
			g.line("spawn worker();")
			g.indent--
			g.line("}")
			g.loopVar--
		} else {
			g.line("spawn worker();")
		}
	}
	g.line("return;")
	g.indent--
	g.line("}")
	return g.sb.String()
}

func (g *gen) block(depth int) {
	n := g.r.Intn(g.MaxStmts) + 1
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

func (g *gen) stmt(depth int) {
	roll := g.r.Intn(100)
	switch {
	case depth < g.MaxDepth && roll < 20:
		g.line("if (%s) {", g.cond())
		g.indent++
		g.block(depth + 1)
		g.indent--
		if g.r.Intn(2) == 0 {
			g.line("} else {")
			g.indent++
			g.block(depth + 1)
			g.indent--
		}
		g.line("}")
	case depth < g.MaxDepth && roll < 35 && g.loopVar < 8:
		lv := g.loopVar
		g.loopVar++
		trip := g.r.Intn(g.LoopTrip) + 1
		switch g.r.Intn(3) {
		case 0:
			g.line("li%d = %d + iproc %% 2;", lv, trip)
			g.line("do {")
			g.indent++
			g.block(depth + 1)
			g.line("li%d = li%d - 1;", lv, lv)
			g.indent--
			g.line("} while (li%d > 0);", lv)
		case 1:
			g.line("li%d = %d;", lv, trip)
			g.line("while (li%d > 0) {", lv)
			g.indent++
			g.block(depth + 1)
			g.line("li%d = li%d - 1;", lv, lv)
			g.indent--
			g.line("}")
		default:
			g.line("for (li%d = 0; li%d < %d; li%d = li%d + 1) {", lv, lv, trip, lv, lv)
			g.indent++
			g.block(depth + 1)
			g.indent--
			g.line("}")
		}
		g.loopVar--
	case g.Barriers && roll < 45 && depth == 0:
		// Communication only at the top level, where control flow is
		// uniform across PEs: every PE reaches the same barrier sequence
		// and the remote reads are cleanly phase-separated from writes.
		g.commPhase()
	case g.Floats && roll < 55:
		g.line("f%d = f%d %s %s;", g.r.Intn(2), g.r.Intn(2),
			[]string{"+", "-", "*"}[g.r.Intn(3)], g.fexpr())
		g.line("v%d = v%d + f%d;", g.r.Intn(g.Vars), g.r.Intn(g.Vars), g.r.Intn(2))
	case roll < 62:
		g.line("v%d += %s;", g.r.Intn(g.Vars), g.atom())
	case roll < 68:
		g.line("v%d = %s ? %s : %s;", g.r.Intn(g.Vars), g.cond(), g.expr(1), g.expr(1))
	default:
		g.line("v%d = %s;", g.r.Intn(g.Vars), g.expr(0))
	}
}

// commPhase emits a race-free communication phase: barrier, receive
// remote values into r-variables only, barrier, then fold them in.
func (g *gen) commPhase() {
	g.line("wait;")
	n := g.r.Intn(g.Recv) + 1
	for i := 0; i < n; i++ {
		g.line("r%d = v%d[[iproc + %d]];", i, g.r.Intn(g.Vars), g.r.Intn(3)+1)
	}
	g.line("wait;")
	for i := 0; i < n; i++ {
		g.line("v%d = (v%d + r%d) %% 1000;", g.r.Intn(g.Vars), g.r.Intn(g.Vars), i)
	}
}

func (g *gen) cond() string {
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("v%d %s v%d", g.r.Intn(g.Vars),
			[]string{"<", ">", "==", "!=", "<=", ">="}[g.r.Intn(6)], g.r.Intn(g.Vars))
	case 1:
		return fmt.Sprintf("v%d %% %d == %d", g.r.Intn(g.Vars), g.r.Intn(3)+2, g.r.Intn(2))
	case 2:
		return fmt.Sprintf("v%d > %d && v%d < %d",
			g.r.Intn(g.Vars), g.r.Intn(4), g.r.Intn(g.Vars), g.r.Intn(20)+5)
	case 3:
		return fmt.Sprintf("v%d == %d || v%d != %d",
			g.r.Intn(g.Vars), g.r.Intn(4), g.r.Intn(g.Vars), g.r.Intn(4))
	default:
		return fmt.Sprintf("!(v%d < %d)", g.r.Intn(g.Vars), g.r.Intn(5))
	}
}

func (g *gen) expr(depth int) string {
	if depth >= 2 {
		return g.atom()
	}
	switch g.r.Intn(6) {
	case 0:
		return g.atom()
	case 1:
		return fmt.Sprintf("(%s %s %s)", g.expr(depth+1),
			[]string{"+", "-", "*"}[g.r.Intn(3)], g.expr(depth+1))
	case 2:
		// Keep values bounded so long runs stay in range.
		return fmt.Sprintf("((%s) %% %d)", g.expr(depth+1), g.r.Intn(97)+3)
	case 3:
		return fmt.Sprintf("(%s %s %d)", g.atom(),
			[]string{"&", "|", "^", ">>", "<<"}[g.r.Intn(5)], g.r.Intn(4))
	case 4:
		if g.Calls {
			if g.r.Intn(2) == 0 {
				return fmt.Sprintf("helper1(%s)", g.atom())
			}
			return fmt.Sprintf("helper2(%s, %s)", g.atom(), g.atom())
		}
		return fmt.Sprintf("(-%s)", g.atom())
	default:
		return fmt.Sprintf("(%s / %d)", g.atom(), g.r.Intn(5)+1)
	}
}

func (g *gen) atom() string {
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("v%d", g.r.Intn(g.Vars))
	case 1:
		return fmt.Sprintf("%d", g.r.Intn(10))
	case 2:
		return "iproc"
	default:
		return fmt.Sprintf("v%d", g.r.Intn(g.Vars))
	}
}

func (g *gen) fexpr() string {
	switch g.r.Intn(3) {
	case 0:
		return "f0"
	case 1:
		return "f1"
	default:
		return fmt.Sprintf("%d.%d", g.r.Intn(3), g.r.Intn(10))
	}
}
