package progen

import (
	"strings"
	"testing"

	"msc/internal/cfg"
	"msc/internal/mimdc"
)

func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, p := range []Params{
			{Seed: seed},
			{Seed: seed, Barriers: true, Floats: true, Calls: true},
		} {
			src := Source(p)
			prog, err := mimdc.Parse(src)
			if err != nil {
				t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
			}
			if err := mimdc.Analyze(prog); err != nil {
				t.Fatalf("seed %d: analyze: %v\n%s", seed, err, src)
			}
			g, err := cfg.Build(prog)
			if err != nil {
				t.Fatalf("seed %d: build: %v\n%s", seed, err, src)
			}
			cfg.Simplify(g)
			if err := cfg.Verify(g); err != nil {
				t.Fatalf("seed %d: verify: %v\n%s", seed, err, src)
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := Source(Params{Seed: 7, Barriers: true})
	b := Source(Params{Seed: 7, Barriers: true})
	if a != b {
		t.Fatalf("same seed produced different programs")
	}
	c := Source(Params{Seed: 8, Barriers: true})
	if a == c {
		t.Fatalf("different seeds produced identical programs")
	}
}

func TestBarriersOnlyAtTopLevel(t *testing.T) {
	// Race-freedom argument requires wait statements to appear only in
	// the uniform top-level sequence: one level of indentation inside
	// main (main's body is indented once).
	for seed := int64(0); seed < 40; seed++ {
		src := Source(Params{Seed: seed, Barriers: true})
		for _, line := range strings.Split(src, "\n") {
			if strings.HasSuffix(strings.TrimSpace(line), "wait;") {
				if indent := len(line) - len(strings.TrimLeft(line, " ")); indent != 4 {
					t.Fatalf("seed %d: wait at indent %d (not top level):\n%s", seed, indent, src)
				}
			}
		}
	}
}

func TestVariantsProduceFeatures(t *testing.T) {
	var sawWait, sawFloat, sawCall bool
	for seed := int64(0); seed < 30; seed++ {
		src := Source(Params{Seed: seed, Barriers: true, Floats: true, Calls: true})
		sawWait = sawWait || strings.Contains(src, "wait;")
		sawFloat = sawFloat || strings.Contains(src, "float")
		sawCall = sawCall || strings.Contains(src, "helper1(")
	}
	if !sawWait || !sawFloat || !sawCall {
		t.Fatalf("features never generated: wait=%v float=%v call=%v", sawWait, sawFloat, sawCall)
	}
}
