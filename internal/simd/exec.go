package simd

import (
	"fmt"
	"math/bits"

	"msc/internal/bitset"
	"msc/internal/ir"
)

// execBody runs every slot of a meta state. Guards test the pc latched
// at meta-state entry; pc updates land in npc, marked in the dirty
// mask, and commit afterwards, so a PE can never fall through into
// another MIMD state's code within the same meta state. The occupancy
// masks reflect committed pcs for the whole body — they ARE the latch —
// which is what lets every slot's enable set be a word OR of its
// guard's occupied member states.
func (m *vm) execBody(mc *MetaCode) error {
	live := m.live
	st := &m.res.MetaStats[mc.ID]
	members := m.gm[mc.ID]
	for si := range mc.Slots {
		s := &mc.Slots[si]
		cost := int64(s.Cost())
		m.res.Time += cost
		m.res.BodyCycles += cost
		m.res.SlotExecs++
		st.Cycles += cost
		st.BodyCycles += cost
		st.LivePECycles += cost * live
		// Only this coordinator loop ever calls prof.Add — chunk workers
		// touch per-chunk scratch, never the profiler — so the profiler's
		// single-writer contract survives Workers > 1 untouched.
		if m.prof != nil {
			m.prof.Add(mc.ID, s.Block, s.Pos, cost)
		}

		e, en := m.enable(members[si])
		m.res.EnabledCycles += cost * int64(en)
		m.res.LiveIdleCycles += cost * (live - int64(en))
		st.EnabledPECycles += cost * int64(en)
		m.res.PEHist[PEHistIndex(m.n, en)] += cost
		if en == 0 {
			continue
		}
		if err := m.execSlot(s, e); err != nil {
			return err
		}
	}
	return m.commit()
}

// enable returns the slot's enable mask and census: the union of the
// occupancy masks of the guard's occupied member states. Since every
// live PE occupies exactly one MIMD state the masks are disjoint and
// the census is a sum of occupancy counts — no popcount, and a slot
// whose members are all empty is skipped without touching any mask.
// Single-member guards alias the occupancy mask directly (slots never
// mutate occupancy; only commit does).
func (m *vm) enable(members []int) (bitset.Mask, int) {
	en := int64(0)
	first, occupied := -1, 0
	for _, s := range members {
		if m.occCnt[s] == 0 {
			continue
		}
		en += m.occCnt[s]
		if first < 0 {
			first = s
		}
		occupied++
	}
	if occupied == 0 {
		return nil, 0
	}
	if occupied == 1 {
		return m.occ[first], int(en)
	}
	e := m.enab
	e.CopyFrom(m.occ[first])
	for _, s := range members {
		if s != first && m.occCnt[s] > 0 {
			e.OrWith(m.occ[s])
		}
	}
	return e, int(en)
}

// execSlot executes one slot over the enable mask e. Chunk-local work
// (own-PE stacks, own-PE memory, npc writes — chunks are word-aligned,
// so dirty/npc words are never shared) runs through forChunks; effects
// that cross chunks (spawn's free-PE claim, StMono's broadcast,
// StRemote's router writes) are serialized or buffered per chunk and
// replayed in chunk order so the outcome matches sequential ascending-
// PE execution exactly.
func (m *vm) execSlot(s *Slot, e bitset.Mask) error {
	switch s.Kind {
	case SlotExec:
		return m.execInstr(s.Instr, e)
	case SlotSetPC:
		to := int32(s.To)
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				if ew == 0 {
					continue
				}
				m.dirty[w] |= ew
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					m.npcs[base+b] = to
				}
			}
			return nil
		})
	case SlotJumpF:
		to, fto := int32(s.To), int32(s.FTo)
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				if ew == 0 {
					continue
				}
				m.dirty[w] |= ew
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := m.slens[pe] - 1
					if l < 0 {
						return underflow(pe)
					}
					m.slens[pe] = l
					cond := m.stacks[pe][l]
					if ir.Truth(cond) {
						m.npcs[pe] = to
					} else {
						m.npcs[pe] = fto
					}
				}
			}
			return nil
		})
	case SlotEnd:
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				if ew == 0 {
					continue
				}
				m.dirty[w] |= ew
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					m.npcs[base+b] = PCDone
				}
			}
			return nil
		})
	case SlotHalt:
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				if ew == 0 {
					continue
				}
				m.dirty[w] |= ew
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					m.npcs[pe] = PCIdle
					m.slens[pe] = 0
					m.rlens[pe] = 0
				}
			}
			return nil
		})
	case SlotRetBr:
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				if ew == 0 {
					continue
				}
				m.dirty[w] |= ew
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := m.rlens[pe] - 1
					if l < 0 {
						return fmt.Errorf("PE %d return with empty return stack", pe)
					}
					m.rlens[pe] = l
					m.npcs[pe] = m.rets[pe][l]
				}
			}
			return nil
		})
	case SlotSpawn:
		// Spawn claims free PEs in ascending order across the whole
		// machine — inherently serial, so the coordinator runs it alone.
		// The free cursor makes each claim O(words) worst case and O(1)
		// amortized (see claimFree).
		to, childTo := int32(s.To), int32(s.ChildTo)
		for w := 0; w < m.nw; w++ {
			ew := e[w]
			if ew == 0 {
				continue
			}
			base := w << 6
			for ew != 0 {
				b := bits.TrailingZeros64(ew)
				ew &= ew - 1
				parent := base + b
				child := m.claimFree()
				if child < 0 {
					return fmt.Errorf("spawn with no free processor (width %d)", m.n)
				}
				m.npcs[child] = childTo
				m.dirty.Set(child)
				m.npcs[parent] = to
				m.dirty.Set(parent)
			}
		}
		return nil
	}
	return nil
}

// claimFree returns the lowest free PE (committed idle, not yet claimed
// or retargeted this body) and marks nothing — the caller writes its
// npc and dirty bit, which removes it from the free set. The cursor
// invariant is that no word below freeHint holds a free bit; commit
// lowers the cursor when a halt parks a PE below it.
func (m *vm) claimFree() int {
	for w := m.freeHint; w < m.nw; w++ {
		if f := m.idle[w] &^ m.dirty[w]; f != 0 {
			m.freeHint = w
			return w<<6 + bits.TrailingZeros64(f)
		}
	}
	m.freeHint = m.nw
	return -1
}

// commit applies the body's latched pc updates: every dirty PE moves
// occ/idle/done mask bits from its old pc to its new one, chunk-local
// (words are not shared between chunks), with occupancy-count and
// live-count deltas accumulated per worker and reduced by the
// coordinator — the deltas commute, so worker interleaving cannot
// affect the result.
func (m *vm) commit() error {
	if err := m.forChunks(m.commitChunk); err != nil {
		return err
	}
	for _, ws := range m.wss {
		if ws.cntTouched {
			for s, d := range ws.cntDelta {
				if d != 0 {
					m.occCnt[s] += d
					ws.cntDelta[s] = 0
				}
			}
			ws.cntTouched = false
		}
		m.live += ws.liveDelta
		ws.liveDelta = 0
		if ws.minIdleW < m.freeHint {
			m.freeHint = ws.minIdleW
		}
		ws.minIdleW = int(^uint(0) >> 1)
	}
	return nil
}

func (m *vm) commitChunk(ws *wscratch, c int) error {
	w0, w1 := m.chunkWords(c)
	for w := w0; w < w1; w++ {
		dw := m.dirty[w]
		if dw == 0 {
			continue
		}
		m.dirty[w] = 0
		base := w << 6
		for dw != 0 {
			b := bits.TrailingZeros64(dw)
			dw &= dw - 1
			pe := base + b
			old, nv := int(m.pcs[pe]), int(m.npcs[pe])
			if old == nv {
				continue
			}
			bit := uint64(1) << uint(b)
			switch {
			case old >= 0:
				m.occ[old][w] &^= bit
				ws.cntDelta[old]--
				ws.cntTouched = true
				ws.liveDelta--
			case old == PCIdle:
				m.idle[w] &^= bit
			}
			switch {
			case nv >= 0:
				m.occ[nv][w] |= bit
				ws.cntDelta[nv]++
				ws.cntTouched = true
				ws.liveDelta++
			case nv == PCIdle:
				m.idle[w] |= bit
				if w < ws.minIdleW {
					ws.minIdleW = w
				}
			default: // PCDone
				m.doneM[w] |= bit
			}
			m.pcs[pe] = int32(nv)
		}
	}
	return nil
}

func (m *vm) push(pe int, w ir.Word) {
	l := m.slens[pe]
	if int(l) == len(m.stacks[pe]) {
		m.growStack(pe)
	}
	m.stacks[pe][l] = w
	m.slens[pe] = l + 1
}

func (m *vm) pop(pe int) (ir.Word, error) {
	l := m.slens[pe] - 1
	if l < 0 {
		return 0, underflow(pe)
	}
	m.slens[pe] = l
	return m.stacks[pe][l], nil
}

// growStack doubles pe's evaluation stack backing. The new slice is
// private to the PE; the old slab window is simply abandoned. Safe from
// chunk workers: each PE belongs to exactly one chunk.
func (m *vm) growStack(pe int) {
	old := m.stacks[pe]
	ns := make([]ir.Word, 2*len(old))
	copy(ns, old)
	m.stacks[pe] = ns
}

func (m *vm) growRet(pe int) {
	old := m.rets[pe]
	ns := make([]int32, 2*len(old))
	copy(ns, old)
	m.rets[pe] = ns
}

func (m *vm) slotAddr(addr int64) (int, error) {
	if addr < 0 || addr >= int64(m.wpp) {
		return 0, fmt.Errorf("memory address %d out of range [0,%d)", addr, m.wpp)
	}
	return int(addr), nil
}

func underflow(pe int) error {
	return fmt.Errorf("PE %d evaluation stack underflow", pe)
}

// execInstr runs one instruction on every enabled PE, ascending within
// each chunk. Ops that touch only a PE's own stack and memory row are
// chunk-parallel as-is; ops with cross-PE writes (StMono, StRemote)
// split into a chunk-parallel pop phase and a chunk-ordered replay so
// write-conflict outcomes (highest PE wins) match sequential execution.
//
// Every case carries its own bit loop with the stack manipulation
// fused: a binary op is one depth load, an in-place store over the
// second operand, and one depth store — no push/pop calls, no slice
// header writeback. This is the hottest code in the repo; measure
// before restructuring. Underflow checks collapse to one front check
// per PE, which reports the same error sequential pop-by-pop execution
// would.
func (m *vm) execInstr(in ir.Instr, e bitset.Mask) error {
	switch in.Op {
	case ir.Nop:
		return nil
	case ir.PushC:
		v := ir.Word(in.Imm)
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			slens, stacks := m.slens, m.stacks
			for w := w0; w < w1; w++ {
				ew := e[w]
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := slens[pe]
					if int(l) == len(stacks[pe]) {
						m.growStack(pe)
					}
					stacks[pe][l] = v
					slens[pe] = l + 1
				}
			}
			return nil
		})
	case ir.Dup:
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := m.slens[pe]
					if l == 0 {
						return underflow(pe)
					}
					if int(l) == len(m.stacks[pe]) {
						m.growStack(pe)
					}
					st := m.stacks[pe]
					st[l] = st[l-1]
					m.slens[pe] = l + 1
				}
			}
			return nil
		})
	case ir.Pop:
		k := int32(in.Imm)
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := m.slens[pe]
					if l < k {
						return underflow(pe)
					}
					m.slens[pe] = l - k
				}
			}
			return nil
		})
	case ir.LdLocal, ir.LdMono:
		a, err := m.slotAddr(in.Imm)
		if err != nil {
			return err
		}
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			slens, stacks, mem, wpp := m.slens, m.stacks, m.mem, m.wpp
			for w := w0; w < w1; w++ {
				ew := e[w]
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := slens[pe]
					if int(l) == len(stacks[pe]) {
						m.growStack(pe)
					}
					stacks[pe][l] = mem[pe*wpp+a]
					slens[pe] = l + 1
				}
			}
			return nil
		})
	case ir.StLocal:
		a, err := m.slotAddr(in.Imm)
		if err != nil {
			return err
		}
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			slens, stacks, mem, wpp := m.slens, m.stacks, m.mem, m.wpp
			for w := w0; w < w1; w++ {
				ew := e[w]
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := slens[pe] - 1
					if l < 0 {
						return underflow(pe)
					}
					mem[pe*wpp+a] = stacks[pe][l]
					slens[pe] = l
				}
			}
			return nil
		})
	case ir.StMono:
		return m.stMono(in, e)
	case ir.LdIndex:
		imm := in.Imm
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := m.slens[pe]
					if l == 0 {
						return underflow(pe)
					}
					st := m.stacks[pe]
					a, err := m.slotAddr(imm + int64(st[l-1]))
					if err != nil {
						return err
					}
					st[l-1] = m.mem[pe*m.wpp+a] // in place: pop idx, push val
				}
			}
			return nil
		})
	case ir.StIndex:
		imm := in.Imm
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := m.slens[pe]
					if l < 2 {
						return underflow(pe)
					}
					st := m.stacks[pe]
					v, idx := st[l-1], st[l-2]
					a, err := m.slotAddr(imm + int64(idx))
					if err != nil {
						return err
					}
					m.mem[pe*m.wpp+a] = v
					m.slens[pe] = l - 2
				}
			}
			return nil
		})
	case ir.LdRemote:
		a, err := m.slotAddr(in.Imm)
		if err != nil {
			return err
		}
		// Router reads are simultaneous, and no PE's memory changes
		// during this slot, so replacing the target with the fetched
		// value in place is equivalent to the reference's gather-then-
		// push.
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := m.slens[pe]
					if l == 0 {
						return underflow(pe)
					}
					st := m.stacks[pe]
					st[l-1] = m.mem[peIndex(st[l-1], m.n)*m.wpp+a]
				}
			}
			return nil
		})
	case ir.StRemote:
		return m.stRemote(in, e)
	case ir.IProc:
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := m.slens[pe]
					if int(l) == len(m.stacks[pe]) {
						m.growStack(pe)
					}
					m.stacks[pe][l] = ir.Word(pe)
					m.slens[pe] = l + 1
				}
			}
			return nil
		})
	case ir.NProc:
		v := ir.Word(m.n)
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := m.slens[pe]
					if int(l) == len(m.stacks[pe]) {
						m.growStack(pe)
					}
					m.stacks[pe][l] = v
					m.slens[pe] = l + 1
				}
			}
			return nil
		})
	case ir.PushRet:
		r := int32(in.Imm)
		return m.forChunks(func(_ *wscratch, c int) error {
			w0, w1 := m.chunkWords(c)
			for w := w0; w < w1; w++ {
				ew := e[w]
				base := w << 6
				for ew != 0 {
					b := bits.TrailingZeros64(ew)
					ew &= ew - 1
					pe := base + b
					l := m.rlens[pe]
					if int(l) == len(m.rets[pe]) {
						m.growRet(pe)
					}
					m.rets[pe][l] = r
					m.rlens[pe] = l + 1
				}
			}
			return nil
		})
	default:
		op := in.Op
		switch {
		case ir.IsBinary(op):
			return m.forChunks(func(_ *wscratch, c int) error {
				w0, w1 := m.chunkWords(c)
				slens, stacks := m.slens, m.stacks
				for w := w0; w < w1; w++ {
					ew := e[w]
					base := w << 6
					for ew != 0 {
						b := bits.TrailingZeros64(ew)
						ew &= ew - 1
						pe := base + b
						l := slens[pe]
						if l < 2 {
							return underflow(pe)
						}
						st := stacks[pe]
						st[l-2] = ir.EvalBinary(op, st[l-2], st[l-1])
						slens[pe] = l - 1
					}
				}
				return nil
			})
		case ir.IsUnary(op):
			return m.forChunks(func(_ *wscratch, c int) error {
				w0, w1 := m.chunkWords(c)
				for w := w0; w < w1; w++ {
					ew := e[w]
					base := w << 6
					for ew != 0 {
						b := bits.TrailingZeros64(ew)
						ew &= ew - 1
						pe := base + b
						l := m.slens[pe]
						if l == 0 {
							return underflow(pe)
						}
						st := m.stacks[pe]
						st[l-1] = ir.EvalUnary(op, st[l-1])
					}
				}
				return nil
			})
		}
		return fmt.Errorf("unknown opcode %v", in.Op)
	}
}

// stMono pops on every enabled PE (chunk-parallel, recording each
// chunk's last popped value), reduces chunk-ascending so the highest
// enabled PE's value wins exactly as in sequential execution, then
// broadcasts it to every PE's memory row chunk-parallel.
func (m *vm) stMono(in ir.Instr, e bitset.Mask) error {
	a, err := m.slotAddr(in.Imm)
	if err != nil {
		return err
	}
	err = m.forChunks(func(_ *wscratch, c int) error {
		w0, w1 := m.chunkWords(c)
		for w := w0; w < w1; w++ {
			ew := e[w]
			base := w << 6
			for ew != 0 {
				b := bits.TrailingZeros64(ew)
				ew &= ew - 1
				pe := base + b
				l := m.slens[pe] - 1
				if l < 0 {
					return underflow(pe)
				}
				m.monoVal[c] = m.stacks[pe][l]
				m.monoAny[c] = true
				m.slens[pe] = l
			}
		}
		return nil
	})
	var val ir.Word
	for c := 0; c < m.nChunks; c++ {
		if m.monoAny[c] {
			val = m.monoVal[c] // highest chunk with an enabled PE wins
			m.monoAny[c] = false
		}
	}
	if err != nil {
		return err
	}
	return m.forChunks(func(_ *wscratch, c int) error {
		w0, w1 := m.chunkWords(c)
		p0, p1 := w0<<6, w1<<6
		if p1 > m.n {
			p1 = m.n
		}
		for pe := p0; pe < p1; pe++ {
			m.mem[pe*m.wpp+a] = val
		}
		return nil
	})
}

// stRemote pops (value, target) on every enabled PE chunk-parallel,
// buffering the router writes per chunk, then replays them in chunk
// order on the coordinator — ascending-PE write order, so conflicting
// stores resolve exactly as in sequential execution.
func (m *vm) stRemote(in ir.Instr, e bitset.Mask) error {
	a, err := m.slotAddr(in.Imm)
	if err != nil {
		return err
	}
	err = m.forChunks(func(_ *wscratch, c int) error {
		buf := m.remBuf[c][:0]
		defer func() { m.remBuf[c] = buf }()
		w0, w1 := m.chunkWords(c)
		for w := w0; w < w1; w++ {
			ew := e[w]
			base := w << 6
			for ew != 0 {
				b := bits.TrailingZeros64(ew)
				ew &= ew - 1
				pe := base + b
				l := m.slens[pe]
				if l < 2 {
					return underflow(pe)
				}
				st := m.stacks[pe]
				v, p := st[l-1], st[l-2]
				m.slens[pe] = l - 2
				buf = append(buf, remWrite{idx: peIndex(p, m.n)*m.wpp + a, val: v})
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for c := 0; c < m.nChunks; c++ {
		for _, rw := range m.remBuf[c] {
			m.mem[rw.idx] = rw.val
		}
		m.remBuf[c] = m.remBuf[c][:0]
	}
	return nil
}
