// Package simd implements the SIMD target machine: a MasPar MP-1
// flavored virtual machine with a single control unit, N processing
// elements with private memory, activity (enable) masking, a global-or
// reduction network, a router for parallel subscripting, and broadcast
// mono stores. The control unit executes a Program — the compiled
// meta-state automaton — so PEs never fetch or decode instructions and
// hold no copy of the program, exactly the property §1.2 claims for
// meta-state converted code.
package simd

import (
	"fmt"
	"strings"

	"msc/internal/bitset"
	"msc/internal/ir"
)

// Machine cost model for control operations (cycles). The per-opcode
// costs live in package ir; these cover the control unit.
const (
	// GlobalOrCost is one global-or reduction over all PE pc bits
	// (§3.2.3's aggregate collection; MasPar's global OR network).
	GlobalOrCost = 12
	// MapDispatchCost models a multiway branch dispatched through a
	// generic lookup when no customized hash function is attached.
	MapDispatchCost = 16
	// GotoCost is an unconditional control-unit jump.
	GotoCost = 1
	// HashDispatchBaseCost is the jump-table indexed branch itself; the
	// attached hash function's evaluation cost is added on top
	// ([Die92a]-style coding).
	HashDispatchBaseCost = 2
)

// SlotKind says what a slot does besides (or instead of) executing a
// plain instruction.
type SlotKind uint8

const (
	// SlotExec executes Instr on the enabled PEs.
	SlotExec SlotKind = iota
	// SlotSetPC sets the next pc of enabled PEs to To.
	SlotSetPC
	// SlotJumpF pops the condition on enabled PEs and sets next pc to To
	// when TRUE, FTo when FALSE (Listing 5's JumpF).
	SlotJumpF
	// SlotEnd marks enabled PEs done: they stop contributing apc bits.
	SlotEnd
	// SlotHalt returns enabled PEs to the free pool (§3.2.5).
	SlotHalt
	// SlotRetBr pops each enabled PE's return-site token into its next
	// pc: the §2.2 return-as-multiway-branch.
	SlotRetBr
	// SlotSpawn sets enabled (parent) PEs' next pc to To and, for each
	// parent, claims one free-pool PE whose next pc becomes ChildTo.
	SlotSpawn
)

// Slot is one control-unit broadcast: a guard over entry pc values and
// an action. Every PE pays the cycle cost whether enabled or not — that
// is the essence of SIMD serialization.
type Slot struct {
	Kind    SlotKind
	Guard   *bitset.Set // enabled iff entry pc ∈ Guard
	Instr   ir.Instr    // SlotExec
	To, FTo int         // SlotSetPC/SlotJumpF/SlotSpawn targets
	ChildTo int         // SlotSpawn child entry
	// Block and Pos attribute the slot back to the MIMD source: Block is
	// the representative member state (the guard's minimum for CSI-merged
	// slots) and Pos the source position of the instruction or, for
	// terminator slots, the block. The sampling profiler folds engine
	// cycles onto these.
	Block int
	Pos   ir.Pos
}

// Cost returns the slot's cycle cost.
func (s *Slot) Cost() int {
	switch s.Kind {
	case SlotExec:
		return s.Instr.Cost()
	case SlotSetPC:
		return 1
	case SlotJumpF, SlotSpawn:
		return 2
	case SlotEnd:
		return 0
	case SlotHalt:
		return 1
	case SlotRetBr:
		return 3
	}
	return 0
}

// DispatchEntry maps one barrier-filtered aggregate to the next meta
// state.
type DispatchEntry struct {
	Key *bitset.Set
	To  int
}

// HashFn describes a customized hash function that maps the (≤64-state)
// apc words of this state's dispatch keys to dense, distinct indices so
// the multiway branch compiles to a jump table ([Die92a], §3.2).
type HashFn struct {
	// Index(w) = ((w >> ShiftA) ^ (w >> ShiftB) ^ (w * Mul >> ShiftM)) & Mask,
	// with unused components disabled via the flags below.
	ShiftA, ShiftB int
	UseB           bool
	Mul            uint64
	ShiftM         int
	UseMul         bool
	Mask           uint64
	// Table maps hash index to meta state ID; -1 entries are unreachable.
	Table []int
	// EvalCost is the hash evaluation cost in cycles.
	EvalCost int
}

// Index evaluates the hash on an apc word.
func (h *HashFn) Index(w uint64) uint64 {
	v := w >> uint(h.ShiftA)
	if h.UseB {
		v ^= w >> uint(h.ShiftB)
	}
	if h.UseMul {
		v ^= (w * h.Mul) >> uint(h.ShiftM)
	}
	return v & h.Mask
}

func (h *HashFn) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("(apc >> %d)", h.ShiftA))
	if h.UseB {
		parts = append(parts, fmt.Sprintf("(apc >> %d)", h.ShiftB))
	}
	if h.UseMul {
		parts = append(parts, fmt.Sprintf("((apc * %#x) >> %d)", h.Mul, h.ShiftM))
	}
	return fmt.Sprintf("(%s) & %#x", strings.Join(parts, " ^ "), h.Mask)
}

// TransKind classifies how a meta state transfers control (§3.2).
type TransKind uint8

const (
	// TransNone: no exit arc — the program ends here (§3.2.1).
	TransNone TransKind = iota
	// TransGoto: a single exit arc — an unconditional jump (§3.2.2);
	// entries has one element and no global-or is needed.
	TransGoto
	// TransSwitch: multiple exit arcs keyed by the aggregate pc
	// (§3.2.3/§3.2.4), optionally through a customized hash function.
	TransSwitch
)

// Trans is a meta state's compiled transition.
type Trans struct {
	Kind    TransKind
	Entries []DispatchEntry
	// ExitCheck forces a global-or to detect program completion even on
	// unconditional arcs (some member state has no exit arcs).
	ExitCheck bool
	// Hash, when non-nil, dispatches TransSwitch through a jump table.
	Hash *HashFn
}

// Cost returns the control cycles this transition costs per traversal.
func (t *Trans) Cost() int {
	switch t.Kind {
	case TransNone:
		return GlobalOrCost // still needs the aggregate to know everyone ended
	case TransGoto:
		c := GotoCost
		if t.ExitCheck {
			c += GlobalOrCost
		}
		return c
	case TransSwitch:
		c := GlobalOrCost
		if t.Hash != nil {
			c += HashDispatchBaseCost + t.Hash.EvalCost
		} else {
			c += MapDispatchCost
		}
		return c
	}
	return 0
}

// MetaCode is the compiled body of one meta state.
type MetaCode struct {
	ID    int
	Set   *bitset.Set // MIMD states merged into this meta state
	Slots []Slot
	Trans Trans
}

// Cost returns the body cost (slots) plus transition cost.
func (m *MetaCode) Cost() int {
	c := m.Trans.Cost()
	for i := range m.Slots {
		c += m.Slots[i].Cost()
	}
	return c
}

// Program is a compiled meta-state automaton ready for the SIMD machine.
type Program struct {
	Meta  []*MetaCode
	Start int
	// Words is the per-PE data memory size; NStates the MIMD pc domain.
	Words   int
	NStates int
	// Barriers is the set of barrier-wait pc values (§3.2.4 dispatch).
	Barriers *bitset.Set
	// SupersetDispatch permits dispatching an aggregate to the smallest
	// covering entry when no exact match exists (compressed/merged
	// automata, §2.5).
	SupersetDispatch bool
	// VarSlot/RetSlot mirror the source-level slot maps for drivers.
	VarSlot map[string]int
	RetSlot map[string]int
}

// String renders the program structure (not the MPL text; see the
// codegen package's EmitMPL for Listing 5 form).
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "start: ms%d; %d meta states; %d pc values; %d words/PE\n",
		p.Start, len(p.Meta), p.NStates, p.Words)
	for _, m := range p.Meta {
		fmt.Fprintf(&sb, "ms%d %s: %d slots, trans %d entries (cost %d)\n",
			m.ID, m.Set, len(m.Slots), len(m.Trans.Entries), m.Cost())
	}
	return sb.String()
}
