package simd

import (
	"fmt"
	"math/bits"
)

// PEHistExactMax is the largest machine width at which Result.PEHist is
// exact (length N+1, one bucket per possible enabled-PE count). Above
// it an exact histogram would cost O(N) memory per run for no analytic
// gain, so the histogram switches to log₂ buckets.
const PEHistExactMax = 4096

// ObsWidthCap is the largest machine width at which the per-PE
// observability features — Timeline rows, the typed event sink's
// EventTimeline stream, and Strict occupancy checking — are supported.
// Each is O(N) work per meta state; above the cap Run refuses with a
// *WidthLimitError instead of silently crawling. Trace (one line per
// meta state, no per-PE payload) stays available at any width.
const ObsWidthCap = 1 << 16

// WidthLimitError reports a Config feature requested above its
// supported machine width. Matchable with errors.As.
type WidthLimitError struct {
	Feature string // "Timeline", "Sink", or "Strict"
	N, Cap  int
}

func (e *WidthLimitError) Error() string {
	return fmt.Sprintf("simd: %s is unsupported above width %d (N=%d): per-PE observability is O(N) per meta state",
		e.Feature, e.Cap, e.N)
}

// PEHistLen returns the histogram length for machine width n: n+1 when
// exact, bits.Len(n)+1 when bucketed (bucket 0 plus one bucket per
// power of two up to n).
func PEHistLen(n int) int {
	if n <= PEHistExactMax {
		return n + 1
	}
	return bits.Len(uint(n)) + 1
}

// PEHistIndex returns the PEHist bucket for a slot with `enabled` PEs
// enabled on a width-n machine. Exact widths index directly; bucketed
// widths map 0 to bucket 0 and enabled ∈ [2^(k-1), 2^k) to bucket k,
// so the cycle mass invariant (sum(PEHist) == BodyCycles) holds in
// both modes.
func PEHistIndex(n, enabled int) int {
	if n <= PEHistExactMax {
		return enabled
	}
	return bits.Len(uint(enabled))
}
