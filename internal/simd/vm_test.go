package simd

import (
	"strings"
	"testing"

	"msc/internal/bitset"
	"msc/internal/ir"
)

// tiny hand-built program: one MIMD state (0) that stores iproc*2 into
// slot 0 and ends.
func tinyProgram() *Program {
	g0 := bitset.Of(0)
	return &Program{
		Start:    0,
		Words:    2,
		NStates:  1,
		Barriers: bitset.New(0),
		Meta: []*MetaCode{{
			ID:  0,
			Set: g0.Clone(),
			Slots: []Slot{
				{Kind: SlotExec, Guard: g0, Instr: ir.Instr{Op: ir.IProc}},
				{Kind: SlotExec, Guard: g0, Instr: ir.Instr{Op: ir.PushC, Imm: 2}},
				{Kind: SlotExec, Guard: g0, Instr: ir.Instr{Op: ir.Mul}},
				{Kind: SlotExec, Guard: g0, Instr: ir.Instr{Op: ir.StLocal, Imm: 0}},
				{Kind: SlotEnd, Guard: g0},
			},
			Trans: Trans{Kind: TransNone},
		}},
	}
}

func TestTinyProgram(t *testing.T) {
	res, err := Run(tinyProgram(), Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < 4; pe++ {
		if got := res.Mem[pe][0]; got != ir.Word(pe*2) {
			t.Errorf("PE %d: slot 0 = %d, want %d", pe, got, pe*2)
		}
		if !res.Done[pe] {
			t.Errorf("PE %d not done", pe)
		}
	}
	if res.MetaExecs != 1 || res.SlotExecs != 5 {
		t.Errorf("meta=%d slots=%d", res.MetaExecs, res.SlotExecs)
	}
	// Everyone enabled for every body slot: utilization is body/total.
	if u := res.Utilization(4); u <= 0 || u > 1 {
		t.Errorf("utilization = %f", u)
	}
	if res.Time != res.BodyCycles+res.DispatchCycles {
		t.Errorf("time decomposition broken: %d != %d+%d", res.Time, res.BodyCycles, res.DispatchCycles)
	}
}

// twoStateProgram: state 0 branches each PE by parity: odd -> state 1
// sets slot to 111; even -> state 2 sets slot to 222; both end. The meta
// automaton is {0} -> {1,2} (both) with a switch.
func twoStateProgram() *Program {
	g0, g1, g2 := bitset.Of(0), bitset.Of(1), bitset.Of(2)
	return &Program{
		Start:    0,
		Words:    1,
		NStates:  3,
		Barriers: bitset.New(0),
		Meta: []*MetaCode{
			{
				ID: 0, Set: g0.Clone(),
				Slots: []Slot{
					{Kind: SlotExec, Guard: g0, Instr: ir.Instr{Op: ir.IProc}},
					{Kind: SlotExec, Guard: g0, Instr: ir.Instr{Op: ir.PushC, Imm: 2}},
					{Kind: SlotExec, Guard: g0, Instr: ir.Instr{Op: ir.Mod}},
					{Kind: SlotJumpF, Guard: g0, To: 1, FTo: 2},
				},
				Trans: Trans{Kind: TransSwitch, Entries: []DispatchEntry{
					{Key: bitset.Of(1), To: 1},
					{Key: bitset.Of(2), To: 2},
					{Key: bitset.Of(1, 2), To: 3},
				}},
			},
			{
				ID: 1, Set: g1.Clone(),
				Slots: []Slot{
					{Kind: SlotExec, Guard: g1, Instr: ir.Instr{Op: ir.PushC, Imm: 111}},
					{Kind: SlotExec, Guard: g1, Instr: ir.Instr{Op: ir.StLocal, Imm: 0}},
					{Kind: SlotEnd, Guard: g1},
				},
				Trans: Trans{Kind: TransNone},
			},
			{
				ID: 2, Set: g2.Clone(),
				Slots: []Slot{
					{Kind: SlotExec, Guard: g2, Instr: ir.Instr{Op: ir.PushC, Imm: 222}},
					{Kind: SlotExec, Guard: g2, Instr: ir.Instr{Op: ir.StLocal, Imm: 0}},
					{Kind: SlotEnd, Guard: g2},
				},
				Trans: Trans{Kind: TransNone},
			},
			{
				ID: 3, Set: bitset.Of(1, 2),
				Slots: []Slot{
					{Kind: SlotExec, Guard: g1, Instr: ir.Instr{Op: ir.PushC, Imm: 111}},
					{Kind: SlotExec, Guard: g2, Instr: ir.Instr{Op: ir.PushC, Imm: 222}},
					{Kind: SlotExec, Guard: bitset.Of(1, 2), Instr: ir.Instr{Op: ir.StLocal, Imm: 0}},
					{Kind: SlotEnd, Guard: bitset.Of(1, 2)},
				},
				Trans: Trans{Kind: TransNone},
			},
		},
	}
}

func TestBranchDispatchAndGuards(t *testing.T) {
	res, err := Run(twoStateProgram(), Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < 4; pe++ {
		want := ir.Word(222)
		if pe%2 == 1 {
			want = 111
		}
		if got := res.Mem[pe][0]; got != want {
			t.Errorf("PE %d: slot 0 = %d, want %d", pe, got, want)
		}
	}
	if res.MetaExecs != 2 {
		t.Errorf("meta execs = %d, want 2 (start + merged)", res.MetaExecs)
	}
}

func TestSingleParityDispatch(t *testing.T) {
	// With one PE, only one branch arm is taken: dispatch must pick the
	// singleton entry, not the merged one.
	res, err := Run(twoStateProgram(), Config{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mem[0][0]; got != 222 {
		t.Fatalf("PE 0: slot 0 = %d, want 222", got)
	}
}

func TestEnabledCyclesAccounting(t *testing.T) {
	res, err := Run(twoStateProgram(), Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnabledCycles <= 0 || res.EnabledCycles > res.BodyCycles*4 {
		t.Fatalf("enabled cycles %d out of range (body %d, N=4)", res.EnabledCycles, res.BodyCycles)
	}
	// In the merged state, constant pushes run half-enabled: utilization
	// must be strictly below 1.
	if u := res.Utilization(4); u >= 1 {
		t.Fatalf("utilization = %f, want < 1", u)
	}
}

func TestDispatchErrors(t *testing.T) {
	p := twoStateProgram()
	// Remove the merged entry: mixed parity has nowhere to go.
	p.Meta[0].Trans.Entries = p.Meta[0].Trans.Entries[:2]
	if _, err := Run(p, Config{N: 4}); err == nil ||
		!strings.Contains(err.Error(), "no dispatch entry") {
		t.Fatalf("missing dispatch not detected: %v", err)
	}
}

func TestSupersetDispatch(t *testing.T) {
	p := twoStateProgram()
	// Remove singleton entries but allow superset dispatch: everything
	// funnels into the merged state, which guards correctly.
	p.Meta[0].Trans.Entries = p.Meta[0].Trans.Entries[2:]
	p.SupersetDispatch = true
	res, err := Run(p, Config{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mem[0][0]; got != 222 {
		t.Fatalf("superset dispatch result = %d, want 222", got)
	}
}

func TestConfigValidation(t *testing.T) {
	p := tinyProgram()
	if _, err := Run(p, Config{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Run(p, Config{N: 2, InitialActive: 3}); err == nil {
		t.Fatal("InitialActive > N accepted")
	}
	bad := tinyProgram()
	bad.Meta[0].Set = bitset.Of(0, 1)
	if _, err := Run(bad, Config{N: 1}); err == nil {
		t.Fatal("multi-state start accepted")
	}
}

func TestNonTerminationGuard(t *testing.T) {
	p := tinyProgram()
	// Make state 0 loop to itself forever.
	p.Meta[0].Slots[4] = Slot{Kind: SlotSetPC, Guard: bitset.Of(0), To: 0}
	p.Meta[0].Trans = Trans{Kind: TransGoto, Entries: []DispatchEntry{{Key: bitset.Of(0), To: 0}}}
	if _, err := Run(p, Config{N: 1, MaxMeta: 10}); err == nil ||
		!strings.Contains(err.Error(), "non-terminating") {
		t.Fatalf("non-termination guard missing: %v", err)
	}
}

func TestStackUnderflowReported(t *testing.T) {
	p := tinyProgram()
	p.Meta[0].Slots = []Slot{
		{Kind: SlotExec, Guard: bitset.Of(0), Instr: ir.Instr{Op: ir.Add}},
		{Kind: SlotEnd, Guard: bitset.Of(0)},
	}
	if _, err := Run(p, Config{N: 1}); err == nil ||
		!strings.Contains(err.Error(), "underflow") {
		t.Fatalf("underflow not reported: %v", err)
	}
}

func TestTransCostModel(t *testing.T) {
	goto1 := Trans{Kind: TransGoto, Entries: []DispatchEntry{{Key: bitset.Of(1), To: 1}}}
	if goto1.Cost() != GotoCost {
		t.Errorf("goto cost = %d", goto1.Cost())
	}
	goto1.ExitCheck = true
	if goto1.Cost() != GotoCost+GlobalOrCost {
		t.Errorf("goto+check cost = %d", goto1.Cost())
	}
	sw := Trans{Kind: TransSwitch}
	if sw.Cost() != GlobalOrCost+MapDispatchCost {
		t.Errorf("map switch cost = %d", sw.Cost())
	}
	sw.Hash = &HashFn{EvalCost: 4}
	if sw.Cost() != GlobalOrCost+HashDispatchBaseCost+4 {
		t.Errorf("hashed switch cost = %d", sw.Cost())
	}
}

func TestHashFnIndexAndString(t *testing.T) {
	h := &HashFn{ShiftA: 0, ShiftB: 6, UseB: true, Mask: 15}
	// The paper's ((apc >> 6) ^ apc) & 15 on BIT(2)|BIT(6).
	w := uint64(1<<2 | 1<<6)
	if got := h.Index(w); got != ((w>>0)^(w>>6))&15 {
		t.Errorf("Index = %d", got)
	}
	if !strings.Contains(h.String(), "^") {
		t.Errorf("String = %q", h.String())
	}
	hm := &HashFn{ShiftA: 64, UseMul: true, Mul: 3, ShiftM: 1, Mask: 7}
	if !strings.Contains(hm.String(), "*") {
		t.Errorf("mul String = %q", hm.String())
	}
}
