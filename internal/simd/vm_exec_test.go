package simd

import (
	"bytes"
	"strings"
	"testing"

	"msc/internal/bitset"
	"msc/internal/ir"
)

// execProgram wraps a code sequence in a single one-state program.
func execProgram(words int, code ...ir.Instr) *Program {
	g0 := bitset.Of(0)
	slots := make([]Slot, 0, len(code)+1)
	for _, in := range code {
		slots = append(slots, Slot{Kind: SlotExec, Guard: g0, Instr: in})
	}
	slots = append(slots, Slot{Kind: SlotEnd, Guard: g0})
	return &Program{
		Start: 0, Words: words, NStates: 1, Barriers: bitset.New(0),
		Meta: []*MetaCode{{ID: 0, Set: g0.Clone(), Slots: slots, Trans: Trans{Kind: TransNone}}},
	}
}

func TestExecMemoryOps(t *testing.T) {
	// mem[0]=iproc; mem[1+mem[0]%2]=42 via indexing; dup/pop exercise.
	p := execProgram(4,
		ir.Instr{Op: ir.IProc},
		ir.Instr{Op: ir.StLocal, Imm: 0},
		ir.Instr{Op: ir.LdLocal, Imm: 0},
		ir.Instr{Op: ir.PushC, Imm: 2},
		ir.Instr{Op: ir.Mod}, // index
		ir.Instr{Op: ir.PushC, Imm: 42},
		ir.Instr{Op: ir.StIndex, Imm: 1},
		ir.Instr{Op: ir.PushC, Imm: 7},
		ir.Instr{Op: ir.Dup},
		ir.Instr{Op: ir.Pop, Imm: 2},
	)
	res, err := Run(p, Config{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < 3; pe++ {
		if got := res.Mem[pe][1+pe%2]; got != 42 {
			t.Errorf("PE %d: indexed slot = %d, want 42", pe, got)
		}
	}
}

func TestExecLdIndex(t *testing.T) {
	p := execProgram(4,
		ir.Instr{Op: ir.PushC, Imm: 9},
		ir.Instr{Op: ir.StLocal, Imm: 2},
		ir.Instr{Op: ir.PushC, Imm: 2},
		ir.Instr{Op: ir.LdIndex, Imm: 0}, // mem[0+2]
		ir.Instr{Op: ir.StLocal, Imm: 3},
	)
	res, err := Run(p, Config{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem[0][3] != 9 {
		t.Fatalf("LdIndex result = %d", res.Mem[0][3])
	}
}

func TestExecMonoBroadcast(t *testing.T) {
	p := execProgram(2,
		ir.Instr{Op: ir.IProc},
		ir.Instr{Op: ir.StMono, Imm: 0},
		ir.Instr{Op: ir.LdMono, Imm: 0},
		ir.Instr{Op: ir.StLocal, Imm: 1},
	)
	res, err := Run(p, Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Highest enabled PE wins the broadcast race.
	for pe := 0; pe < 4; pe++ {
		if res.Mem[pe][0] != 3 || res.Mem[pe][1] != 3 {
			t.Fatalf("PE %d: mono = %d/%d, want 3", pe, res.Mem[pe][0], res.Mem[pe][1])
		}
	}
}

func TestExecRemoteRing(t *testing.T) {
	// Each PE publishes iproc*10 then reads its left neighbor (wrap).
	p := execProgram(2,
		ir.Instr{Op: ir.IProc},
		ir.Instr{Op: ir.PushC, Imm: 10},
		ir.Instr{Op: ir.Mul},
		ir.Instr{Op: ir.StLocal, Imm: 0},
		ir.Instr{Op: ir.IProc},
		ir.Instr{Op: ir.PushC, Imm: 1},
		ir.Instr{Op: ir.Sub},
		ir.Instr{Op: ir.LdRemote, Imm: 0},
		ir.Instr{Op: ir.StLocal, Imm: 1},
	)
	res, err := Run(p, Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	wants := []ir.Word{30, 0, 10, 20}
	for pe, want := range wants {
		if got := res.Mem[pe][1]; got != want {
			t.Errorf("PE %d: left = %d, want %d", pe, got, want)
		}
	}
}

func TestExecStRemote(t *testing.T) {
	// Each PE writes iproc into its right neighbor's slot 0.
	p := execProgram(1,
		ir.Instr{Op: ir.IProc},
		ir.Instr{Op: ir.PushC, Imm: 1},
		ir.Instr{Op: ir.Add}, // dest pe
		ir.Instr{Op: ir.IProc},
		ir.Instr{Op: ir.StRemote, Imm: 0},
	)
	res, err := Run(p, Config{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	wants := []ir.Word{2, 0, 1}
	for pe, want := range wants {
		if got := res.Mem[pe][0]; got != want {
			t.Errorf("PE %d: inbox = %d, want %d", pe, got, want)
		}
	}
}

func TestExecNProcAndUnary(t *testing.T) {
	p := execProgram(2,
		ir.Instr{Op: ir.NProc},
		ir.Instr{Op: ir.Neg},
		ir.Instr{Op: ir.StLocal, Imm: 0},
		ir.Instr{Op: ir.PushC, Imm: int64(ir.FloatWord(2.5))},
		ir.Instr{Op: ir.F2I},
		ir.Instr{Op: ir.StLocal, Imm: 1},
	)
	res, err := Run(p, Config{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem[0][0] != -5 || res.Mem[0][1] != 2 {
		t.Fatalf("got %d, %d", res.Mem[0][0], res.Mem[0][1])
	}
}

func TestExecOutOfRangeAddress(t *testing.T) {
	p := execProgram(1, ir.Instr{Op: ir.LdLocal, Imm: 99})
	if _, err := Run(p, Config{N: 1}); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("address check missing: %v", err)
	}
	p2 := execProgram(1,
		ir.Instr{Op: ir.PushC, Imm: -7},
		ir.Instr{Op: ir.LdIndex, Imm: 0},
	)
	if _, err := Run(p2, Config{N: 1}); err == nil {
		t.Fatalf("negative index accepted")
	}
}

func TestRetBrSlot(t *testing.T) {
	// State 0 pushes return site 1 and "calls" (SetPC) state 2, which
	// returns through RetBr; state 1 stores a marker and ends.
	g0, g1, g2 := bitset.Of(0), bitset.Of(1), bitset.Of(2)
	p := &Program{
		Start: 0, Words: 1, NStates: 3, Barriers: bitset.New(0),
		Meta: []*MetaCode{
			{ID: 0, Set: g0.Clone(), Slots: []Slot{
				{Kind: SlotExec, Guard: g0, Instr: ir.Instr{Op: ir.PushRet, Imm: 1}},
				{Kind: SlotSetPC, Guard: g0, To: 2},
			}, Trans: Trans{Kind: TransGoto, Entries: []DispatchEntry{{Key: g2, To: 1}}}},
			{ID: 1, Set: g2.Clone(), Slots: []Slot{
				{Kind: SlotRetBr, Guard: g2},
			}, Trans: Trans{Kind: TransGoto, Entries: []DispatchEntry{{Key: g1, To: 2}}}},
			{ID: 2, Set: g1.Clone(), Slots: []Slot{
				{Kind: SlotExec, Guard: g1, Instr: ir.Instr{Op: ir.PushC, Imm: 77}},
				{Kind: SlotExec, Guard: g1, Instr: ir.Instr{Op: ir.StLocal, Imm: 0}},
				{Kind: SlotEnd, Guard: g1},
			}, Trans: Trans{Kind: TransNone}},
		},
	}
	res, err := Run(p, Config{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem[0][0] != 77 || res.Mem[1][0] != 77 {
		t.Fatalf("retbr path result = %d, %d", res.Mem[0][0], res.Mem[1][0])
	}
}

func TestRetBrUnderflow(t *testing.T) {
	g0 := bitset.Of(0)
	p := &Program{
		Start: 0, Words: 1, NStates: 1, Barriers: bitset.New(0),
		Meta: []*MetaCode{{ID: 0, Set: g0.Clone(), Slots: []Slot{
			{Kind: SlotRetBr, Guard: g0},
		}, Trans: Trans{Kind: TransNone}}},
	}
	if _, err := Run(p, Config{N: 1}); err == nil ||
		!strings.Contains(err.Error(), "return stack") {
		t.Fatalf("return stack underflow not reported: %v", err)
	}
}

func TestTraceOutput(t *testing.T) {
	var buf bytes.Buffer
	_, err := Run(twoStateProgram(), Config{N: 4, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ms0") || !strings.Contains(out, "-> exit") {
		t.Fatalf("trace output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "apc=") || !strings.Contains(out, "live=") {
		t.Fatalf("trace missing fields:\n%s", out)
	}
}

func TestWaitFractionBounds(t *testing.T) {
	res, err := Run(twoStateProgram(), Config{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if w := res.WaitFraction(); w < 0 || w >= 1 {
		t.Fatalf("wait fraction = %f", w)
	}
	if b := res.BodyUtilization(4); b <= 0 || b > 1 {
		t.Fatalf("body utilization = %f", b)
	}
	empty := &Result{}
	if empty.WaitFraction() != 0 || empty.Utilization(4) != 0 || empty.BodyUtilization(4) != 0 {
		t.Fatalf("zero-result metrics should be 0")
	}
}

func TestUnknownOpcode(t *testing.T) {
	p := execProgram(1, ir.Instr{Op: ir.Op(250)})
	if _, err := Run(p, Config{N: 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown opcode") {
		t.Fatalf("unknown opcode not reported: %v", err)
	}
}

func TestTerminalWithLivePEsError(t *testing.T) {
	g0 := bitset.Of(0)
	p := &Program{
		Start: 0, Words: 1, NStates: 1, Barriers: bitset.New(0),
		Meta: []*MetaCode{{ID: 0, Set: g0.Clone(), Slots: []Slot{
			{Kind: SlotExec, Guard: g0, Instr: ir.Instr{Op: ir.Nop}},
		}, Trans: Trans{Kind: TransNone}}},
	}
	if _, err := Run(p, Config{N: 1}); err == nil ||
		!strings.Contains(err.Error(), "terminal meta state") {
		t.Fatalf("live PEs at terminal state not reported: %v", err)
	}
}

func TestTimelineOutput(t *testing.T) {
	var buf bytes.Buffer
	_, err := Run(twoStateProgram(), Config{N: 4, Timeline: &buf})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 { // two meta-state executions
		t.Fatalf("timeline rows = %d, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "ms0") || !strings.Contains(lines[0], "| 0 0 0 0 |") {
		t.Fatalf("first row unexpected: %q", lines[0])
	}
	// Second row: odd PEs at state 1, even at state 2.
	if !strings.Contains(lines[1], "| 2 1 2 1 |") {
		t.Fatalf("second row unexpected: %q", lines[1])
	}
}
