package simd

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"runtime"

	"msc/internal/bitset"
	"msc/internal/ir"
	"msc/internal/mscerr"
	"msc/internal/obs"
	"msc/internal/telemetry"
)

// Reserved pc values: a done PE finished its process (End); an idle PE
// is in the free pool (§3.2.5: "a pc value indicating that they are not
// in any meta state"). Neither contributes an apc bit.
const (
	PCDone = -1
	PCIdle = -2
)

// ctxCheckEvery is how many meta-state executions pass between
// cooperative cancellation checks — frequent enough that a canceled run
// stops within microseconds, rare enough to stay off the hot path.
const ctxCheckEvery = 1024

// chunkPEs is the number of PEs per execution chunk: the unit of work a
// pool worker claims. A multiple of 64 so chunk boundaries fall on mask
// words and no word is shared between chunks. Package-level so tests
// can shrink it to exercise multi-chunk execution at small widths.
var chunkPEs = 4096

// SetChunkPEsForTest overrides the PEs-per-chunk granularity and
// returns a restore func. n must be a positive multiple of 64. Tests
// use tiny chunks so widths like 1024 still stripe across many chunks
// (and workers); results must be byte-identical at every setting.
func SetChunkPEsForTest(n int) (restore func()) {
	if n <= 0 || n%64 != 0 {
		panic(fmt.Sprintf("simd: chunk size %d is not a positive multiple of 64", n))
	}
	old := chunkPEs
	chunkPEs = n
	return func() { chunkPEs = old }
}

// Config controls a SIMD run.
type Config struct {
	// N is the machine width. InitialActive PEs begin at the program
	// entry (zero means all).
	N             int
	InitialActive int
	// Workers is the number of goroutines that execute PE chunks: 0
	// means GOMAXPROCS, 1 forces the sequential path. The chunk pool
	// claims chunks from an atomic cursor and commits cross-chunk
	// effects in chunk-ID order, so the Result is byte-identical at any
	// worker count; only wall time changes.
	Workers int
	// MaxMeta bounds meta-state executions (the non-termination guard);
	// defaults to mscerr.DefaultMaxSteps. Exceeding it returns an
	// *mscerr.StepLimitError.
	MaxMeta int
	// Ctx, when non-nil, is checked every ctxCheckEvery meta states for
	// cooperative cancellation; a canceled run returns ctx's error
	// (matchable with errors.Is) with no state leaked.
	Ctx context.Context
	// Trace, when non-nil, receives one line per meta-state execution:
	// the state, its live/enabled census, and the aggregate that chose
	// the next state. It is shorthand for attaching an obs.TextSink.
	// Trace carries no per-PE payload and works at any width.
	Trace io.Writer
	// Strict verifies the conversion's occupancy invariant before every
	// meta state: each live PE's pc must be covered by the meta state's
	// set or be waiting at a barrier. Used by the test suites. O(N) per
	// meta state, so it is refused above ObsWidthCap with a
	// *WidthLimitError.
	Strict bool
	// Timeline, when non-nil, receives one row per meta-state execution
	// showing every PE's occupancy: its MIMD state number while active,
	// 'w' while waiting at a barrier, '-' when done, '.' when idle.
	// Shorthand for an obs.TextSink, like Trace. O(N) per meta state,
	// refused above ObsWidthCap with a *WidthLimitError.
	Timeline io.Writer
	// Sink, when non-nil, receives the typed trace event stream
	// (obs.EventTimeline at meta-state entry, obs.EventMeta/EventExit
	// after dispatch). It composes with Trace/Timeline: the text
	// writers are wrapped in an obs.TextSink and both receive every
	// event. EventTimeline rows are O(N), so Sink is refused above
	// ObsWidthCap with a *WidthLimitError.
	Sink obs.Sink
	// Profiler, when non-nil, receives sampled cycle attribution: body
	// slot cycles fold to (meta state, Slot.Block, Slot.Pos), dispatch
	// cycles to the meta state's dispatch frame. Only the coordinator
	// goroutine calls the profiler — chunk workers never do — so the
	// profiler's single-consumer contract holds at any worker count;
	// when nil the hot path pays one pointer compare per slot.
	Profiler *telemetry.Profiler
}

// Result reports a SIMD execution.
type Result struct {
	Mem [][]ir.Word
	// Time is the total control-unit cycle count: body slots plus
	// transition dispatch. In SIMD every PE pays every cycle.
	Time int64
	// BodyCycles and DispatchCycles decompose Time.
	BodyCycles     int64
	DispatchCycles int64
	// EnabledCycles sums slot cost × enabled PE count: the truly useful
	// PE-cycles. Utilization() relates it to N × Time.
	EnabledCycles int64
	// LiveIdleCycles sums slot cost × (live − enabled) PE count: cycles
	// live PEs spend disabled, "waiting for the transition to the next
	// meta state" (§2.4).
	LiveIdleCycles int64
	// MetaExecs counts meta states executed; SlotExecs counts slots.
	MetaExecs int64
	SlotExecs int64
	// MetaStats accumulates per-meta-state visit and cycle counts,
	// indexed by meta state ID. Cycles attributes every control-unit
	// cycle (body and dispatch) to the state that spent it, so the sum
	// over all states equals Time exactly — the invariant the `msc
	// profile` hot-spot table relies on.
	MetaStats []MetaStat
	// PEHist is the PE-utilization histogram: exact below PEHistExactMax
	// (PEHist[k] sums the body cycles spent in slots with exactly k PEs
	// enabled, length N+1) and log₂-bucketed above it (bucket 0 is zero
	// enabled, bucket k covers [2^(k-1), 2^k); see PEHistIndex). In both
	// modes the cycle mass invariant sum(PEHist) == BodyCycles holds.
	PEHist []int64
	// Done flags PEs that reached End.
	Done []bool
}

// MetaStat is the per-meta-state accumulation for hot-spot reporting.
type MetaStat struct {
	// Visits counts executions of this meta state.
	Visits int64
	// Cycles is every cycle attributed here: body slots plus the
	// transition dispatch that ended each visit.
	Cycles int64
	// BodyCycles is the slot-only part of Cycles.
	BodyCycles int64
	// EnabledPECycles sums slot cost × enabled PEs; LivePECycles sums
	// slot cost × live PEs. Divided by BodyCycles they give the mean
	// enabled and live PE counts over this state's body.
	EnabledPECycles int64
	LivePECycles    int64
}

// MeanEnabled returns the mean number of enabled PEs over the state's
// body cycles.
func (s *MetaStat) MeanEnabled() float64 {
	if s.BodyCycles == 0 {
		return 0
	}
	return float64(s.EnabledPECycles) / float64(s.BodyCycles)
}

// MeanLive returns the mean number of live PEs over the state's body
// cycles.
func (s *MetaStat) MeanLive() float64 {
	if s.BodyCycles == 0 {
		return 0
	}
	return float64(s.LivePECycles) / float64(s.BodyCycles)
}

// Utilization is the fraction of total PE-cycles (including dispatch)
// spent enabled on body slots.
func (r *Result) Utilization(n int) float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(r.EnabledCycles) / (float64(r.Time) * float64(n))
}

// BodyUtilization is the fraction of body PE-cycles spent enabled: the
// §2.4 idle-time metric (a 5-cycle state merged with a 100-cycle state
// idles the cheap thread ~95% of the body).
func (r *Result) BodyUtilization(n int) float64 {
	if r.BodyCycles == 0 {
		return 0
	}
	return float64(r.EnabledCycles) / (float64(r.BodyCycles) * float64(n))
}

// WaitFraction is the §2.4 waiting metric: of the PE-cycles spent by
// live processors inside meta-state bodies, the fraction spent disabled
// — waiting for other threads' code to pass so the transition can
// happen. The paper's 5-vs-100-cycle example wastes up to 95% of the
// cheap thread's cycles this way.
func (r *Result) WaitFraction() float64 {
	total := r.EnabledCycles + r.LiveIdleCycles
	if total == 0 {
		return 0
	}
	return float64(r.LiveIdleCycles) / float64(total)
}

// traceSink assembles the event sink from the config: the legacy
// Trace/Timeline writers become an obs.TextSink (byte-compatible with
// the historical Fprintf output) and compose with an explicit Sink.
func traceSink(conf Config) obs.Sink {
	var sinks obs.MultiSink
	if conf.Trace != nil || conf.Timeline != nil {
		sinks = append(sinks, &obs.TextSink{Trace: conf.Trace, Timeline: conf.Timeline})
	}
	if conf.Sink != nil {
		sinks = append(sinks, conf.Sink)
	}
	switch len(sinks) {
	case 0:
		return nil
	case 1:
		return sinks[0]
	}
	return sinks
}

// prepare validates a Config, applies defaults, and resolves the entry
// MIMD state. Shared by Run and ReferenceRun so both engines accept and
// reject exactly the same configurations with the same error text.
func prepare(p *Program, conf Config) (Config, int, error) {
	if conf.N < 1 {
		return conf, 0, fmt.Errorf("simd: N must be >= 1, got %d", conf.N)
	}
	if conf.InitialActive == 0 {
		conf.InitialActive = conf.N
	}
	if conf.InitialActive < 1 || conf.InitialActive > conf.N {
		return conf, 0, fmt.Errorf("simd: InitialActive %d out of range [1,%d]", conf.InitialActive, conf.N)
	}
	if conf.Workers < 0 {
		return conf, 0, fmt.Errorf("simd: Workers must be >= 0, got %d", conf.Workers)
	}
	if conf.MaxMeta == 0 {
		conf.MaxMeta = mscerr.DefaultMaxSteps
	}
	start := p.Meta[p.Start]
	if start.Set.Len() != 1 {
		return conf, 0, fmt.Errorf("simd: start meta state %s is not a single MIMD state", start.Set)
	}
	if conf.N > ObsWidthCap {
		switch {
		case conf.Timeline != nil:
			return conf, 0, &WidthLimitError{Feature: "Timeline", N: conf.N, Cap: ObsWidthCap}
		case conf.Sink != nil:
			return conf, 0, &WidthLimitError{Feature: "Sink", N: conf.N, Cap: ObsWidthCap}
		case conf.Strict:
			return conf, 0, &WidthLimitError{Feature: "Strict", N: conf.N, Cap: ObsWidthCap}
		}
	}
	return conf, start.Set.Min(), nil
}

// vm is the struct-of-arrays SIMD machine. PE state lives in flat
// parallel arrays (pcs/npcs, one memory slab indexed pe*words+addr) and
// per-MIMD-state occupancy masks with 64 PEs per word, so per-slot
// enablement is a word OR of the guard's occupied member states and the
// enable census is a running occupancy count — no per-PE scan. Slots
// execute over fixed-size PE chunks (chunkPEs wide, word-aligned) that
// a worker pool claims from an atomic cursor; cross-chunk effects
// (StMono broadcast value, StRemote router writes, occupancy-count
// deltas) are buffered per chunk and committed in chunk-ID order by the
// coordinator, so the Result is byte-identical at any worker count.
type vm struct {
	p    *Program
	conf Config
	n    int // machine width
	wpp  int // memory words per PE
	nw   int // mask words (ceil(n/64))
	cw   int // words per chunk (chunkPEs/64)

	mem  []ir.Word // slab: PE i's memory is mem[i*wpp : (i+1)*wpp]
	pcs  []int32   // committed pc per PE
	npcs []int32   // next pc per PE; equals pcs outside a body

	// Evaluation and return stacks: fixed full-capacity backing slices
	// (len == cap, growth reallocates) with the logical depth kept in
	// separate int32 arrays. Push/pop then never write a slice header
	// back — one data store and one int32 store, no write barrier —
	// which measures ~2x faster than append/reslice at mega widths.
	stacks [][]ir.Word // evaluation stack backing per PE
	slens  []int32     // evaluation stack depth per PE
	rets   [][]int32   // return stack backing per PE
	rlens  []int32     // return stack depth per PE

	occ    []bitset.Mask // per MIMD state: which PEs' committed pc is there
	occCnt []int64       // per MIMD state: popcount of occ, maintained incrementally
	idle   bitset.Mask   // committed pc == PCIdle
	doneM  bitset.Mask   // committed pc == PCDone
	dirty  bitset.Mask   // npc written this body; commit visits only these
	enab   bitset.Mask   // scratch for multi-member guard ORs
	live   int64         // number of PEs with committed pc >= 0

	freeHint int // first mask word that may hold a free (idle, not dirty) PE

	gm [][][]int // per meta state, per slot: the guard's member MIMD states

	// Per-chunk buffers for effects that must apply in global PE order:
	// StMono's last-popped value and StRemote's router writes.
	monoAny []bool
	monoVal []ir.Word
	remBuf  [][]remWrite

	nChunks int
	wss     []*wscratch
	pool    *chunkPool

	res    *Result
	sink   obs.Sink // nil when no tracing is attached
	emitTL bool     // build O(N) timeline events only when someone reads them
	prof   *telemetry.Profiler
}

// remWrite is one buffered StRemote store: slab index and value.
type remWrite struct {
	idx int
	val ir.Word
}

func newVM(p *Program, conf Config, entry int) *vm {
	n := conf.N
	m := &vm{
		p:    p,
		conf: conf,
		n:    n,
		wpp:  p.Words,
		nw:   bitset.MaskWords(n),
		cw:   chunkPEs / 64,

		mem:    make([]ir.Word, n*p.Words),
		pcs:    make([]int32, n),
		npcs:   make([]int32, n),
		stacks: make([][]ir.Word, n),
		slens:  make([]int32, n),
		rets:   make([][]int32, n),
		rlens:  make([]int32, n),

		occ:    make([]bitset.Mask, p.NStates),
		occCnt: make([]int64, p.NStates),
		idle:   bitset.NewMask(n),
		doneM:  bitset.NewMask(n),
		dirty:  bitset.NewMask(n),
		enab:   bitset.NewMask(n),

		res: &Result{
			Done:      make([]bool, n),
			MetaStats: make([]MetaStat, len(p.Meta)),
			PEHist:    make([]int64, PEHistLen(n)),
		},
	}
	for s := range m.occ {
		m.occ[s] = bitset.NewMask(n)
	}
	// Stack backings are carved out of two contiguous slabs,
	// stackCap/retCap entries per PE: deep enough for every corpus
	// program, so the hot path never allocates. A PE that outgrows its
	// window gets a private doubled slice (growStack/growRet); the slab
	// windows never overlap, so no PE can overwrite a neighbor.
	const stackCap, retCap = 8, 4
	sslab := make([]ir.Word, n*stackCap)
	rslab := make([]int32, n*retCap)
	for i := 0; i < n; i++ {
		m.stacks[i] = sslab[i*stackCap : (i+1)*stackCap]
		m.rets[i] = rslab[i*retCap : (i+1)*retCap]
	}
	ia := conf.InitialActive
	m.occ[entry].FillFirst(ia)
	m.occCnt[entry] = int64(ia)
	m.live = int64(ia)
	m.idle.FillFirst(n)
	for w := range m.idle {
		m.idle[w] &^= m.occ[entry][w]
	}
	m.freeHint = ia / 64
	for i := 0; i < n; i++ {
		if i < ia {
			m.pcs[i] = int32(entry)
		} else {
			m.pcs[i] = PCIdle
		}
	}
	copy(m.npcs, m.pcs)

	m.gm = make([][][]int, len(p.Meta))
	for _, mc := range p.Meta {
		sl := make([][]int, len(mc.Slots))
		for si := range mc.Slots {
			sl[si] = mc.Slots[si].Guard.Elems()
		}
		m.gm[mc.ID] = sl
	}

	m.nChunks = (m.nw + m.cw - 1) / m.cw
	if m.nChunks < 1 {
		m.nChunks = 1
	}
	m.monoAny = make([]bool, m.nChunks)
	m.monoVal = make([]ir.Word, m.nChunks)
	m.remBuf = make([][]remWrite, m.nChunks)

	workers := conf.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.nChunks {
		workers = m.nChunks
	}
	m.wss = make([]*wscratch, workers)
	for i := range m.wss {
		m.wss[i] = newWScratch(p.NStates, m.nw)
	}
	if workers > 1 {
		m.pool = newChunkPool(m, workers)
	}

	m.sink = traceSink(conf)
	m.emitTL = conf.Timeline != nil || conf.Sink != nil
	m.prof = conf.Profiler
	return m
}

// close releases the worker pool (no-op on the sequential path).
func (m *vm) close() {
	if m.pool != nil {
		m.pool.stop()
	}
}

// chunkWords returns the mask-word range [w0, w1) of chunk c.
func (m *vm) chunkWords(c int) (int, int) {
	w0 := c * m.cw
	w1 := w0 + m.cw
	if w1 > m.nw {
		w1 = m.nw
	}
	return w0, w1
}

// Run executes a compiled meta-state program on the SIMD machine.
func Run(p *Program, conf Config) (*Result, error) {
	conf, entry, err := prepare(p, conf)
	if err != nil {
		return nil, err
	}
	m := newVM(p, conf, entry)
	defer m.close()

	cur := p.Start
	for step := 0; ; step++ {
		if step >= conf.MaxMeta {
			return nil, &mscerr.StepLimitError{Engine: "simd", Limit: int64(conf.MaxMeta), Steps: int64(step)}
		}
		if conf.Ctx != nil && step%ctxCheckEvery == 0 {
			if err := conf.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("simd: run canceled at step %d: %w", step, err)
			}
		}
		mc := p.Meta[cur]
		m.res.MetaExecs++
		m.res.MetaStats[cur].Visits++
		if m.sink != nil && m.emitTL {
			if err := m.sink.Emit(m.timelineEvent(int64(step), cur)); err != nil {
				return nil, fmt.Errorf("simd: trace sink: %w", err)
			}
		}
		if conf.Strict {
			if pe, s := m.strictViolation(mc); pe >= 0 {
				return nil, fmt.Errorf("simd: ms%d %s: PE %d occupies uncovered state %d (conversion bug)",
					cur, mc.Set, pe, s)
			}
		}
		if err := m.execBody(mc); err != nil {
			return nil, fmt.Errorf("simd: ms%d: %w", cur, err)
		}
		next, done, err := m.dispatch(mc)
		if err != nil {
			return nil, fmt.Errorf("simd: ms%d: %w", cur, err)
		}
		if m.sink != nil {
			e := &obs.Event{
				Step: int64(step), Cycle: m.res.Time,
				Meta: cur, Set: mc.Set.String(),
			}
			if done {
				e.Kind = obs.EventExit
			} else {
				e.Kind = obs.EventMeta
				e.APC = m.apc().String()
				e.Live = int(m.live)
				e.Next = next
			}
			if err := m.sink.Emit(e); err != nil {
				return nil, fmt.Errorf("simd: trace sink: %w", err)
			}
		}
		if done {
			break
		}
		cur = next
	}

	for w := 0; w < m.nw; w++ {
		dw := m.doneM[w]
		for dw != 0 {
			b := bits.TrailingZeros64(dw)
			dw &= dw - 1
			m.res.Done[w<<6+b] = true
		}
	}
	mem := make([][]ir.Word, m.n)
	for i := range mem {
		mem[i] = m.mem[i*m.wpp : (i+1)*m.wpp : (i+1)*m.wpp]
	}
	m.res.Mem = mem
	return m.res, nil
}

// strictViolation returns the lowest-numbered live PE occupying a MIMD
// state not covered by mc's set or a barrier, with that state, or
// (-1, -1) when the occupancy invariant holds. Occupancy masks make
// this a per-state first-bit scan instead of a per-PE sweep.
func (m *vm) strictViolation(mc *MetaCode) (int, int) {
	minPE, state := -1, -1
	for s := 0; s < m.p.NStates; s++ {
		if m.occCnt[s] == 0 || mc.Set.Has(s) || m.p.Barriers.Has(s) {
			continue
		}
		pe := firstSet(m.occ[s])
		if pe >= 0 && (minPE < 0 || pe < minPE) {
			minPE, state = pe, s
		}
	}
	return minPE, state
}

// firstSet returns the index of the lowest set bit, or -1.
func firstSet(m bitset.Mask) int {
	for w, x := range m {
		if x != 0 {
			return w<<6 + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// timelineEvent captures one per-PE occupancy row as a typed event.
// Only built when a Timeline writer or typed Sink is attached (it is
// O(N)); width caps in prepare keep that affordable.
func (m *vm) timelineEvent(step int64, ms int) *obs.Event {
	pes := make([]int, m.n)
	for i := range pes {
		switch pc := int(m.pcs[i]); {
		case pc == PCDone:
			pes[i] = obs.PEDone
		case pc == PCIdle:
			pes[i] = obs.PEIdle
		case m.p.Barriers.Has(pc):
			pes[i] = obs.PEWait
		default:
			pes[i] = pc
		}
	}
	return &obs.Event{Kind: obs.EventTimeline, Step: step, Cycle: m.res.Time, Meta: ms, PEs: pes}
}

// apc computes the aggregate program counter: the global-or of one bit
// per live pc value (§3.2.3). With occupancy counts maintained at
// commit this is O(NStates), independent of machine width.
func (m *vm) apc() *bitset.Set {
	agg := bitset.New(m.p.NStates)
	for s := 0; s < m.p.NStates; s++ {
		if m.occCnt[s] > 0 {
			agg.Add(s)
		}
	}
	return agg
}

// dispatch selects the next meta state from the aggregate (§3.2).
func (m *vm) dispatch(mc *MetaCode) (next int, done bool, err error) {
	tr := &mc.Trans
	cost := int64(tr.Cost())
	m.res.Time += cost
	m.res.DispatchCycles += cost
	m.res.MetaStats[mc.ID].Cycles += cost
	if m.prof != nil {
		m.prof.Add(mc.ID, telemetry.NoBlock, ir.Pos{}, cost)
	}
	return dispatchAgg(m.p, tr, m.apc())
}

// dispatchAgg resolves a transition against an aggregate pc. Shared by
// both engines so dispatch semantics (and error text) cannot drift.
func dispatchAgg(p *Program, tr *Trans, agg *bitset.Set) (next int, done bool, err error) {
	if agg.Empty() {
		if tr.Kind == TransGoto && !tr.ExitCheck {
			return 0, false, fmt.Errorf("aggregate went empty on an unconditional arc without exit check (compiler bug)")
		}
		return 0, true, nil
	}

	// §3.2.4: if every live PE is waiting at a barrier, the barrier
	// releases — the transition "proceeds normally" by looking up the
	// aggregate itself, independent of this state's own arcs (waiters
	// may have been stranded by threads that ended elsewhere).
	if !p.Barriers.Empty() && agg.Subset(p.Barriers) {
		return releaseLookup(p, agg)
	}

	switch tr.Kind {
	case TransNone:
		return 0, false, fmt.Errorf("terminal meta state but %d PEs still live (apc %s)", agg.Len(), agg)
	case TransGoto:
		return tr.Entries[0].To, false, nil
	}

	// §3.2.4: proceed normally if the aggregate is all barrier states;
	// otherwise subtract them — those PEs wait.
	key := agg
	if !agg.Subset(p.Barriers) {
		key = agg.Minus(p.Barriers)
	}

	if tr.Hash != nil {
		w, ok := key.Word()
		if !ok {
			return 0, false, fmt.Errorf("hashed dispatch with > 64 MIMD states")
		}
		idx := tr.Hash.Index(w)
		if idx >= uint64(len(tr.Hash.Table)) || tr.Hash.Table[idx] < 0 {
			return 0, false, fmt.Errorf("hash dispatch miss for aggregate %s", key)
		}
		return tr.Hash.Table[idx], false, nil
	}

	best := -1
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if e.Key.Equal(key) {
			return e.To, false, nil
		}
		if p.SupersetDispatch && key.Subset(e.Key) {
			if best < 0 || e.Key.Len() < tr.Entries[best].Key.Len() {
				best = i
			}
		}
	}
	if best >= 0 {
		return tr.Entries[best].To, false, nil
	}
	return 0, false, fmt.Errorf("no dispatch entry for aggregate %s (key %s)", agg, key)
}

// releaseLookup finds the meta state for an all-barrier aggregate by
// global search: exact set match first, then — when the automaton
// over-approximates — the smallest covering state.
func releaseLookup(p *Program, agg *bitset.Set) (int, bool, error) {
	best := -1
	for _, mc := range p.Meta {
		if mc.Set.Equal(agg) {
			return mc.ID, false, nil
		}
		if p.SupersetDispatch && agg.Subset(mc.Set) &&
			(best < 0 || mc.Set.Len() < p.Meta[best].Set.Len()) {
			best = mc.ID
		}
	}
	if best >= 0 {
		return best, false, nil
	}
	return 0, false, fmt.Errorf("no release meta state for all-barrier aggregate %s (distinct barriers simultaneously occupied? convert with BarrierExact)", agg)
}

func peIndex(p ir.Word, n int) int {
	v := int(p) % n
	if v < 0 {
		v += n
	}
	return v
}
