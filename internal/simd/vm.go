package simd

import (
	"context"
	"fmt"
	"io"

	"msc/internal/bitset"
	"msc/internal/ir"
	"msc/internal/mscerr"
	"msc/internal/obs"
	"msc/internal/telemetry"
)

// Reserved pc values: a done PE finished its process (End); an idle PE
// is in the free pool (§3.2.5: "a pc value indicating that they are not
// in any meta state"). Neither contributes an apc bit.
const (
	PCDone = -1
	PCIdle = -2
)

// ctxCheckEvery is how many meta-state executions pass between
// cooperative cancellation checks — frequent enough that a canceled run
// stops within microseconds, rare enough to stay off the hot path.
const ctxCheckEvery = 1024

// Config controls a SIMD run.
type Config struct {
	// N is the machine width. InitialActive PEs begin at the program
	// entry (zero means all).
	N             int
	InitialActive int
	// MaxMeta bounds meta-state executions (the non-termination guard);
	// defaults to mscerr.DefaultMaxSteps. Exceeding it returns an
	// *mscerr.StepLimitError.
	MaxMeta int
	// Ctx, when non-nil, is checked every ctxCheckEvery meta states for
	// cooperative cancellation; a canceled run returns ctx's error
	// (matchable with errors.Is) with no state leaked.
	Ctx context.Context
	// Trace, when non-nil, receives one line per meta-state execution:
	// the state, its live/enabled census, and the aggregate that chose
	// the next state. It is shorthand for attaching an obs.TextSink.
	Trace io.Writer
	// Strict verifies the conversion's occupancy invariant before every
	// meta state: each live PE's pc must be covered by the meta state's
	// set or be waiting at a barrier. Used by the test suites.
	Strict bool
	// Timeline, when non-nil, receives one row per meta-state execution
	// showing every PE's occupancy: its MIMD state number while active,
	// 'w' while waiting at a barrier, '-' when done, '.' when idle.
	// Shorthand for an obs.TextSink, like Trace.
	Timeline io.Writer
	// Sink, when non-nil, receives the typed trace event stream
	// (obs.EventTimeline at meta-state entry, obs.EventMeta/EventExit
	// after dispatch). It composes with Trace/Timeline: the text
	// writers are wrapped in an obs.TextSink and both receive every
	// event.
	Sink obs.Sink
	// Profiler, when non-nil, receives sampled cycle attribution: body
	// slot cycles fold to (meta state, Slot.Block, Slot.Pos), dispatch
	// cycles to the meta state's dispatch frame. The VM is a single
	// goroutine, matching the profiler's single-consumer contract; when
	// nil the hot path pays one pointer compare per slot.
	Profiler *telemetry.Profiler
}

// Result reports a SIMD execution.
type Result struct {
	Mem [][]ir.Word
	// Time is the total control-unit cycle count: body slots plus
	// transition dispatch. In SIMD every PE pays every cycle.
	Time int64
	// BodyCycles and DispatchCycles decompose Time.
	BodyCycles     int64
	DispatchCycles int64
	// EnabledCycles sums slot cost × enabled PE count: the truly useful
	// PE-cycles. Utilization() relates it to N × Time.
	EnabledCycles int64
	// LiveIdleCycles sums slot cost × (live − enabled) PE count: cycles
	// live PEs spend disabled, "waiting for the transition to the next
	// meta state" (§2.4).
	LiveIdleCycles int64
	// MetaExecs counts meta states executed; SlotExecs counts slots.
	MetaExecs int64
	SlotExecs int64
	// MetaStats accumulates per-meta-state visit and cycle counts,
	// indexed by meta state ID. Cycles attributes every control-unit
	// cycle (body and dispatch) to the state that spent it, so the sum
	// over all states equals Time exactly — the invariant the `msc
	// profile` hot-spot table relies on.
	MetaStats []MetaStat
	// PEHist is the PE-utilization histogram: PEHist[k] sums the body
	// cycles spent in slots with exactly k PEs enabled (length N+1).
	PEHist []int64
	// Done flags PEs that reached End.
	Done []bool
}

// MetaStat is the per-meta-state accumulation for hot-spot reporting.
type MetaStat struct {
	// Visits counts executions of this meta state.
	Visits int64
	// Cycles is every cycle attributed here: body slots plus the
	// transition dispatch that ended each visit.
	Cycles int64
	// BodyCycles is the slot-only part of Cycles.
	BodyCycles int64
	// EnabledPECycles sums slot cost × enabled PEs; LivePECycles sums
	// slot cost × live PEs. Divided by BodyCycles they give the mean
	// enabled and live PE counts over this state's body.
	EnabledPECycles int64
	LivePECycles    int64
}

// MeanEnabled returns the mean number of enabled PEs over the state's
// body cycles.
func (s *MetaStat) MeanEnabled() float64 {
	if s.BodyCycles == 0 {
		return 0
	}
	return float64(s.EnabledPECycles) / float64(s.BodyCycles)
}

// MeanLive returns the mean number of live PEs over the state's body
// cycles.
func (s *MetaStat) MeanLive() float64 {
	if s.BodyCycles == 0 {
		return 0
	}
	return float64(s.LivePECycles) / float64(s.BodyCycles)
}

// Utilization is the fraction of total PE-cycles (including dispatch)
// spent enabled on body slots.
func (r *Result) Utilization(n int) float64 {
	if r.Time == 0 {
		return 0
	}
	return float64(r.EnabledCycles) / (float64(r.Time) * float64(n))
}

// BodyUtilization is the fraction of body PE-cycles spent enabled: the
// §2.4 idle-time metric (a 5-cycle state merged with a 100-cycle state
// idles the cheap thread ~95% of the body).
func (r *Result) BodyUtilization(n int) float64 {
	if r.BodyCycles == 0 {
		return 0
	}
	return float64(r.EnabledCycles) / (float64(r.BodyCycles) * float64(n))
}

// WaitFraction is the §2.4 waiting metric: of the PE-cycles spent by
// live processors inside meta-state bodies, the fraction spent disabled
// — waiting for other threads' code to pass so the transition can
// happen. The paper's 5-vs-100-cycle example wastes up to 95% of the
// cheap thread's cycles this way.
func (r *Result) WaitFraction() float64 {
	total := r.EnabledCycles + r.LiveIdleCycles
	if total == 0 {
		return 0
	}
	return float64(r.LiveIdleCycles) / float64(total)
}

type vmPE struct {
	pc, npc  int
	stack    []ir.Word
	retStack []int
}

type vm struct {
	p    *Program
	conf Config
	mem  [][]ir.Word
	pes  []vmPE
	res  *Result
	sink obs.Sink            // nil when no tracing is attached
	prof *telemetry.Profiler // nil when no profiling is attached
}

// traceSink assembles the event sink from the config: the legacy
// Trace/Timeline writers become an obs.TextSink (byte-compatible with
// the historical Fprintf output) and compose with an explicit Sink.
func traceSink(conf Config) obs.Sink {
	var sinks obs.MultiSink
	if conf.Trace != nil || conf.Timeline != nil {
		sinks = append(sinks, &obs.TextSink{Trace: conf.Trace, Timeline: conf.Timeline})
	}
	if conf.Sink != nil {
		sinks = append(sinks, conf.Sink)
	}
	switch len(sinks) {
	case 0:
		return nil
	case 1:
		return sinks[0]
	}
	return sinks
}

// Run executes a compiled meta-state program on the SIMD machine.
func Run(p *Program, conf Config) (*Result, error) {
	if conf.N < 1 {
		return nil, fmt.Errorf("simd: N must be >= 1, got %d", conf.N)
	}
	if conf.InitialActive == 0 {
		conf.InitialActive = conf.N
	}
	if conf.InitialActive < 1 || conf.InitialActive > conf.N {
		return nil, fmt.Errorf("simd: InitialActive %d out of range [1,%d]", conf.InitialActive, conf.N)
	}
	if conf.MaxMeta == 0 {
		conf.MaxMeta = mscerr.DefaultMaxSteps
	}
	start := p.Meta[p.Start]
	if start.Set.Len() != 1 {
		return nil, fmt.Errorf("simd: start meta state %s is not a single MIMD state", start.Set)
	}
	entry := start.Set.Min()

	m := &vm{
		p:    p,
		conf: conf,
		mem:  make([][]ir.Word, conf.N),
		pes:  make([]vmPE, conf.N),
		res: &Result{
			Done:      make([]bool, conf.N),
			MetaStats: make([]MetaStat, len(p.Meta)),
			PEHist:    make([]int64, conf.N+1),
		},
	}
	m.sink = traceSink(conf)
	m.prof = conf.Profiler
	for i := range m.pes {
		m.mem[i] = make([]ir.Word, p.Words)
		if i < conf.InitialActive {
			m.pes[i] = vmPE{pc: entry, npc: entry}
		} else {
			m.pes[i] = vmPE{pc: PCIdle, npc: PCIdle}
		}
	}

	cur := p.Start
	for step := 0; ; step++ {
		if step >= conf.MaxMeta {
			return nil, &mscerr.StepLimitError{Engine: "simd", Limit: int64(conf.MaxMeta), Steps: int64(step)}
		}
		if conf.Ctx != nil && step%ctxCheckEvery == 0 {
			if err := conf.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("simd: run canceled at step %d: %w", step, err)
			}
		}
		mc := p.Meta[cur]
		m.res.MetaExecs++
		m.res.MetaStats[cur].Visits++
		if m.sink != nil {
			if err := m.sink.Emit(m.timelineEvent(int64(step), cur)); err != nil {
				return nil, fmt.Errorf("simd: trace sink: %w", err)
			}
		}
		if conf.Strict {
			for i := range m.pes {
				if pc := m.pes[i].pc; pc >= 0 && !mc.Set.Has(pc) && !p.Barriers.Has(pc) {
					return nil, fmt.Errorf("simd: ms%d %s: PE %d occupies uncovered state %d (conversion bug)",
						cur, mc.Set, i, pc)
				}
			}
		}
		if err := m.execBody(mc); err != nil {
			return nil, fmt.Errorf("simd: ms%d: %w", cur, err)
		}
		next, done, err := m.dispatch(mc)
		if err != nil {
			return nil, fmt.Errorf("simd: ms%d: %w", cur, err)
		}
		if m.sink != nil {
			e := &obs.Event{
				Step: int64(step), Cycle: m.res.Time,
				Meta: cur, Set: mc.Set.String(),
			}
			if done {
				e.Kind = obs.EventExit
			} else {
				live := 0
				for i := range m.pes {
					if m.pes[i].pc >= 0 {
						live++
					}
				}
				e.Kind = obs.EventMeta
				e.APC = m.apc().String()
				e.Live = live
				e.Next = next
			}
			if err := m.sink.Emit(e); err != nil {
				return nil, fmt.Errorf("simd: trace sink: %w", err)
			}
		}
		if done {
			break
		}
		cur = next
	}

	for i := range m.pes {
		m.res.Done[i] = m.pes[i].pc == PCDone
	}
	m.res.Mem = m.mem
	return m.res, nil
}

// execBody runs every slot of a meta state. Guards test the pc latched
// at meta-state entry; pc updates land in npc and commit afterwards, so
// a PE can never fall through into another MIMD state's code within the
// same meta state.
func (m *vm) execBody(mc *MetaCode) error {
	for i := range m.pes {
		m.pes[i].npc = m.pes[i].pc
	}
	live := int64(0)
	for i := range m.pes {
		if m.pes[i].pc >= 0 {
			live++
		}
	}
	st := &m.res.MetaStats[mc.ID]
	for si := range mc.Slots {
		s := &mc.Slots[si]
		cost := int64(s.Cost())
		m.res.Time += cost
		m.res.BodyCycles += cost
		m.res.SlotExecs++
		st.Cycles += cost
		st.BodyCycles += cost
		st.LivePECycles += cost * live
		if m.prof != nil {
			m.prof.Add(mc.ID, s.Block, s.Pos, cost)
		}

		enabled := enabledPEs(m.pes, s.Guard)
		m.res.EnabledCycles += cost * int64(len(enabled))
		m.res.LiveIdleCycles += cost * (live - int64(len(enabled)))
		st.EnabledPECycles += cost * int64(len(enabled))
		m.res.PEHist[len(enabled)] += cost
		if len(enabled) == 0 {
			continue
		}
		switch s.Kind {
		case SlotExec:
			if err := m.exec(enabled, s.Instr); err != nil {
				return err
			}
		case SlotSetPC:
			for _, i := range enabled {
				m.pes[i].npc = s.To
			}
		case SlotJumpF:
			for _, i := range enabled {
				c, err := m.pop(i)
				if err != nil {
					return err
				}
				if ir.Truth(c) {
					m.pes[i].npc = s.To
				} else {
					m.pes[i].npc = s.FTo
				}
			}
		case SlotEnd:
			for _, i := range enabled {
				m.pes[i].npc = PCDone
			}
		case SlotHalt:
			for _, i := range enabled {
				m.pes[i].npc = PCIdle
				m.pes[i].stack = m.pes[i].stack[:0]
				m.pes[i].retStack = m.pes[i].retStack[:0]
			}
		case SlotRetBr:
			for _, i := range enabled {
				rs := m.pes[i].retStack
				if len(rs) == 0 {
					return fmt.Errorf("PE %d return with empty return stack", i)
				}
				m.pes[i].npc = rs[len(rs)-1]
				m.pes[i].retStack = rs[:len(rs)-1]
			}
		case SlotSpawn:
			for _, parent := range enabled {
				child := -1
				for j := range m.pes {
					if m.pes[j].pc == PCIdle && m.pes[j].npc == PCIdle {
						child = j
						break
					}
				}
				if child < 0 {
					return fmt.Errorf("spawn with no free processor (width %d)", m.conf.N)
				}
				m.pes[child].npc = s.ChildTo
				m.pes[parent].npc = s.To
			}
		}
	}
	for i := range m.pes {
		m.pes[i].pc = m.pes[i].npc
	}
	return nil
}

// timelineEvent captures one per-PE occupancy row as a typed event.
func (m *vm) timelineEvent(step int64, ms int) *obs.Event {
	pes := make([]int, len(m.pes))
	for i := range m.pes {
		switch pc := m.pes[i].pc; {
		case pc == PCDone:
			pes[i] = obs.PEDone
		case pc == PCIdle:
			pes[i] = obs.PEIdle
		case m.p.Barriers.Has(pc):
			pes[i] = obs.PEWait
		default:
			pes[i] = pc
		}
	}
	return &obs.Event{Kind: obs.EventTimeline, Step: step, Cycle: m.res.Time, Meta: ms, PEs: pes}
}

// apc computes the aggregate program counter: the global-or of one bit
// per live pc value (§3.2.3).
func (m *vm) apc() *bitset.Set {
	agg := bitset.New(m.p.NStates)
	for i := range m.pes {
		if m.pes[i].pc >= 0 {
			agg.Add(m.pes[i].pc)
		}
	}
	return agg
}

// dispatch selects the next meta state from the aggregate (§3.2).
func (m *vm) dispatch(mc *MetaCode) (next int, done bool, err error) {
	tr := &mc.Trans
	m.res.Time += int64(tr.Cost())
	m.res.DispatchCycles += int64(tr.Cost())
	m.res.MetaStats[mc.ID].Cycles += int64(tr.Cost())
	if m.prof != nil {
		m.prof.Add(mc.ID, telemetry.NoBlock, ir.Pos{}, int64(tr.Cost()))
	}

	agg := m.apc()
	if agg.Empty() {
		if tr.Kind == TransGoto && !tr.ExitCheck {
			return 0, false, fmt.Errorf("aggregate went empty on an unconditional arc without exit check (compiler bug)")
		}
		return 0, true, nil
	}

	// §3.2.4: if every live PE is waiting at a barrier, the barrier
	// releases — the transition "proceeds normally" by looking up the
	// aggregate itself, independent of this state's own arcs (waiters
	// may have been stranded by threads that ended elsewhere).
	if !m.p.Barriers.Empty() && agg.Subset(m.p.Barriers) {
		return m.releaseLookup(agg)
	}

	switch tr.Kind {
	case TransNone:
		return 0, false, fmt.Errorf("terminal meta state but %d PEs still live (apc %s)", agg.Len(), agg)
	case TransGoto:
		return tr.Entries[0].To, false, nil
	}

	// §3.2.4: proceed normally if the aggregate is all barrier states;
	// otherwise subtract them — those PEs wait.
	key := agg
	if !agg.Subset(m.p.Barriers) {
		key = agg.Minus(m.p.Barriers)
	}

	if tr.Hash != nil {
		w, ok := key.Word()
		if !ok {
			return 0, false, fmt.Errorf("hashed dispatch with > 64 MIMD states")
		}
		idx := tr.Hash.Index(w)
		if idx >= uint64(len(tr.Hash.Table)) || tr.Hash.Table[idx] < 0 {
			return 0, false, fmt.Errorf("hash dispatch miss for aggregate %s", key)
		}
		return tr.Hash.Table[idx], false, nil
	}

	best := -1
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if e.Key.Equal(key) {
			return e.To, false, nil
		}
		if m.p.SupersetDispatch && key.Subset(e.Key) {
			if best < 0 || e.Key.Len() < tr.Entries[best].Key.Len() {
				best = i
			}
		}
	}
	if best >= 0 {
		return tr.Entries[best].To, false, nil
	}
	return 0, false, fmt.Errorf("no dispatch entry for aggregate %s (key %s)", agg, key)
}

// releaseLookup finds the meta state for an all-barrier aggregate by
// global search: exact set match first, then — when the automaton
// over-approximates — the smallest covering state.
func (m *vm) releaseLookup(agg *bitset.Set) (int, bool, error) {
	best := -1
	for _, mc := range m.p.Meta {
		if mc.Set.Equal(agg) {
			return mc.ID, false, nil
		}
		if m.p.SupersetDispatch && agg.Subset(mc.Set) &&
			(best < 0 || mc.Set.Len() < m.p.Meta[best].Set.Len()) {
			best = mc.ID
		}
	}
	if best >= 0 {
		return best, false, nil
	}
	return 0, false, fmt.Errorf("no release meta state for all-barrier aggregate %s (distinct barriers simultaneously occupied? convert with BarrierExact)", agg)
}

// enabledPEs lists live PEs whose latched pc is in the guard.
func enabledPEs(pes []vmPE, guard *bitset.Set) []int {
	var out []int
	for i := range pes {
		if pc := pes[i].pc; pc >= 0 && guard.Has(pc) {
			out = append(out, i)
		}
	}
	return out
}

func (m *vm) push(i int, w ir.Word) { m.pes[i].stack = append(m.pes[i].stack, w) }

func (m *vm) pop(i int) (ir.Word, error) {
	s := m.pes[i].stack
	if len(s) == 0 {
		return 0, fmt.Errorf("PE %d evaluation stack underflow", i)
	}
	w := s[len(s)-1]
	m.pes[i].stack = s[:len(s)-1]
	return w, nil
}

func (m *vm) slot(addr int64) (int, error) {
	if addr < 0 || addr >= int64(m.p.Words) {
		return 0, fmt.Errorf("memory address %d out of range [0,%d)", addr, m.p.Words)
	}
	return int(addr), nil
}

func peIndex(p ir.Word, n int) int {
	v := int(p) % n
	if v < 0 {
		v += n
	}
	return v
}

// exec runs one instruction on every enabled PE (ascending order, which
// fixes the outcome of write conflicts deterministically: the highest
// enabled PE wins, matching the MIMD reference's phase order).
func (m *vm) exec(enabled []int, in ir.Instr) error {
	switch in.Op {
	case ir.Nop:
	case ir.PushC:
		for _, i := range enabled {
			m.push(i, ir.Word(in.Imm))
		}
	case ir.Dup:
		for _, i := range enabled {
			w, err := m.pop(i)
			if err != nil {
				return err
			}
			m.push(i, w)
			m.push(i, w)
		}
	case ir.Pop:
		for _, i := range enabled {
			for k := int64(0); k < in.Imm; k++ {
				if _, err := m.pop(i); err != nil {
					return err
				}
			}
		}
	case ir.LdLocal, ir.LdMono:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		for _, i := range enabled {
			m.push(i, m.mem[i][a])
		}
	case ir.StLocal:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		for _, i := range enabled {
			w, err := m.pop(i)
			if err != nil {
				return err
			}
			m.mem[i][a] = w
		}
	case ir.StMono:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		var val ir.Word
		for _, i := range enabled {
			w, err := m.pop(i)
			if err != nil {
				return err
			}
			val = w // highest enabled PE wins
		}
		for q := range m.mem {
			m.mem[q][a] = val
		}
	case ir.LdIndex:
		for _, i := range enabled {
			idx, err := m.pop(i)
			if err != nil {
				return err
			}
			a, err := m.slot(in.Imm + int64(idx))
			if err != nil {
				return err
			}
			m.push(i, m.mem[i][a])
		}
	case ir.StIndex:
		for _, i := range enabled {
			w, err := m.pop(i)
			if err != nil {
				return err
			}
			idx, err := m.pop(i)
			if err != nil {
				return err
			}
			a, err := m.slot(in.Imm + int64(idx))
			if err != nil {
				return err
			}
			m.mem[i][a] = w
		}
	case ir.LdRemote:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		// Router reads are simultaneous: gather first, then push.
		vals := make([]ir.Word, len(enabled))
		for k, i := range enabled {
			p, err := m.pop(i)
			if err != nil {
				return err
			}
			vals[k] = m.mem[peIndex(p, m.conf.N)][a]
		}
		for k, i := range enabled {
			m.push(i, vals[k])
		}
	case ir.StRemote:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		for _, i := range enabled {
			w, err := m.pop(i)
			if err != nil {
				return err
			}
			p, err := m.pop(i)
			if err != nil {
				return err
			}
			m.mem[peIndex(p, m.conf.N)][a] = w
		}
	case ir.IProc:
		for _, i := range enabled {
			m.push(i, ir.Word(i))
		}
	case ir.NProc:
		for _, i := range enabled {
			m.push(i, ir.Word(m.conf.N))
		}
	case ir.PushRet:
		for _, i := range enabled {
			m.pes[i].retStack = append(m.pes[i].retStack, int(in.Imm))
		}
	default:
		switch {
		case ir.IsBinary(in.Op):
			for _, i := range enabled {
				b, err := m.pop(i)
				if err != nil {
					return err
				}
				a, err := m.pop(i)
				if err != nil {
					return err
				}
				m.push(i, ir.EvalBinary(in.Op, a, b))
			}
		case ir.IsUnary(in.Op):
			for _, i := range enabled {
				a, err := m.pop(i)
				if err != nil {
					return err
				}
				m.push(i, ir.EvalUnary(in.Op, a))
			}
		default:
			return fmt.Errorf("unknown opcode %v", in.Op)
		}
	}
	return nil
}
