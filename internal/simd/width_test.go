package simd

import (
	"errors"
	"testing"

	"msc/internal/obs"
)

func TestPEHistShape(t *testing.T) {
	cases := []struct {
		n, wantLen int
		exact      bool
	}{
		{1, 2, true},
		{64, 65, true},
		{PEHistExactMax, PEHistExactMax + 1, true},
		{PEHistExactMax + 1, 14, false}, // bits.Len(4097)=13, +1
		{1 << 16, 18, false},
		{1 << 20, 22, false},
	}
	for _, c := range cases {
		if got := PEHistLen(c.n); got != c.wantLen {
			t.Errorf("PEHistLen(%d) = %d, want %d", c.n, got, c.wantLen)
		}
		if c.exact {
			for _, en := range []int{0, 1, c.n} {
				if got := PEHistIndex(c.n, en); got != en {
					t.Errorf("PEHistIndex(%d, %d) = %d, want identity", c.n, en, got)
				}
			}
			continue
		}
		// Bucketed: 0 stays bucket 0, enabled in [2^(k-1), 2^k) lands
		// in bucket k, and the top bucket is in range.
		if got := PEHistIndex(c.n, 0); got != 0 {
			t.Errorf("PEHistIndex(%d, 0) = %d, want 0", c.n, got)
		}
		for _, en := range []int{1, 2, 3, 4, 1000, c.n} {
			got := PEHistIndex(c.n, en)
			if got <= 0 || got >= PEHistLen(c.n) {
				t.Errorf("PEHistIndex(%d, %d) = %d out of range [1,%d)", c.n, en, got, PEHistLen(c.n))
			}
			lo := 1 << (got - 1)
			hi := 1 << got
			if en < lo || en >= hi {
				t.Errorf("PEHistIndex(%d, %d) = bucket %d covering [%d,%d)", c.n, en, got, lo, hi)
			}
		}
	}
}

// TestPEHistBucketedMass checks the cycle-mass invariant above the
// exact threshold: every body cycle lands in exactly one bucket.
func TestPEHistBucketedMass(t *testing.T) {
	p := testProgram(t)
	n := PEHistExactMax * 2
	res, err := Run(p, Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PEHist) != PEHistLen(n) {
		t.Fatalf("PEHist length %d, want %d", len(res.PEHist), PEHistLen(n))
	}
	var sum int64
	for _, c := range res.PEHist {
		sum += c
	}
	if sum != res.BodyCycles {
		t.Fatalf("sum(PEHist) = %d, want BodyCycles = %d", sum, res.BodyCycles)
	}
}

func TestWidthLimitErrors(t *testing.T) {
	p := testProgram(t)
	n := ObsWidthCap + 1
	cases := []struct {
		feature string
		conf    Config
	}{
		{"Timeline", Config{N: n, Timeline: &nullWriter{}}},
		{"Sink", Config{N: n, Sink: &obs.TextSink{Trace: &nullWriter{}}}},
		{"Strict", Config{N: n, Strict: true}},
	}
	for _, c := range cases {
		_, err := Run(p, c.conf)
		var wle *WidthLimitError
		if !errors.As(err, &wle) {
			t.Fatalf("%s at width %d: got %v, want *WidthLimitError", c.feature, n, err)
		}
		if wle.Feature != c.feature || wle.N != n || wle.Cap != ObsWidthCap {
			t.Errorf("%s: error fields %+v", c.feature, wle)
		}
	}
	// At the cap exactly, everything still works.
	for _, c := range cases {
		c.conf.N = ObsWidthCap
		c.conf.InitialActive = 4
		if _, err := Run(p, c.conf); err != nil {
			t.Errorf("%s at the cap: unexpected error %v", c.feature, err)
		}
	}
	// Trace has no per-PE payload and must work at any width.
	if _, err := Run(p, Config{N: n, InitialActive: 4, Trace: &nullWriter{}}); err != nil {
		t.Errorf("Trace above the cap: unexpected error %v", err)
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// testProgram returns the tiny hand-built one-state program shared
// with vm_test.go — enough to exercise Run's width-dependent paths.
func testProgram(t *testing.T) *Program {
	t.Helper()
	return tinyProgram()
}
