package simd

import (
	"fmt"

	"msc/internal/bitset"
	"msc/internal/ir"
	"msc/internal/mscerr"
	"msc/internal/obs"
	"msc/internal/telemetry"
)

// This file preserves the pre-vectorization VM — array-of-structs PE
// state, per-PE branch guards, O(N) scans — as the semantic reference
// for the struct-of-arrays engine in vm.go. ReferenceRun must stay
// observationally identical to Run (same Result bytes, same error
// text, same event stream); simd_vectorized_test.go at the repo root
// enforces that over the corpus, so treat this implementation as
// frozen: behavior changes belong in both engines or neither.

type refPE struct {
	pc, npc  int
	stack    []ir.Word
	retStack []int
}

type refVM struct {
	p    *Program
	conf Config
	mem  [][]ir.Word
	pes  []refPE
	res  *Result
	sink obs.Sink            // nil when no tracing is attached
	prof *telemetry.Profiler // nil when no profiling is attached
}

// ReferenceRun executes a compiled meta-state program on the scalar
// reference machine. It honors the same Config contract as Run except
// Workers (the reference is always sequential) and exists for
// differential testing and benchmarking against the vectorized engine.
func ReferenceRun(p *Program, conf Config) (*Result, error) {
	conf, entry, err := prepare(p, conf)
	if err != nil {
		return nil, err
	}

	m := &refVM{
		p:    p,
		conf: conf,
		mem:  make([][]ir.Word, conf.N),
		pes:  make([]refPE, conf.N),
		res: &Result{
			Done:      make([]bool, conf.N),
			MetaStats: make([]MetaStat, len(p.Meta)),
			PEHist:    make([]int64, PEHistLen(conf.N)),
		},
	}
	m.sink = traceSink(conf)
	m.prof = conf.Profiler
	emitTL := conf.Timeline != nil || conf.Sink != nil
	for i := range m.pes {
		m.mem[i] = make([]ir.Word, p.Words)
		if i < conf.InitialActive {
			m.pes[i] = refPE{pc: entry, npc: entry}
		} else {
			m.pes[i] = refPE{pc: PCIdle, npc: PCIdle}
		}
	}

	cur := p.Start
	for step := 0; ; step++ {
		if step >= conf.MaxMeta {
			return nil, &mscerr.StepLimitError{Engine: "simd", Limit: int64(conf.MaxMeta), Steps: int64(step)}
		}
		if conf.Ctx != nil && step%ctxCheckEvery == 0 {
			if err := conf.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("simd: run canceled at step %d: %w", step, err)
			}
		}
		mc := p.Meta[cur]
		m.res.MetaExecs++
		m.res.MetaStats[cur].Visits++
		if m.sink != nil && emitTL {
			if err := m.sink.Emit(m.timelineEvent(int64(step), cur)); err != nil {
				return nil, fmt.Errorf("simd: trace sink: %w", err)
			}
		}
		if conf.Strict {
			for i := range m.pes {
				if pc := m.pes[i].pc; pc >= 0 && !mc.Set.Has(pc) && !p.Barriers.Has(pc) {
					return nil, fmt.Errorf("simd: ms%d %s: PE %d occupies uncovered state %d (conversion bug)",
						cur, mc.Set, i, pc)
				}
			}
		}
		if err := m.execBody(mc); err != nil {
			return nil, fmt.Errorf("simd: ms%d: %w", cur, err)
		}
		next, done, err := m.dispatch(mc)
		if err != nil {
			return nil, fmt.Errorf("simd: ms%d: %w", cur, err)
		}
		if m.sink != nil {
			e := &obs.Event{
				Step: int64(step), Cycle: m.res.Time,
				Meta: cur, Set: mc.Set.String(),
			}
			if done {
				e.Kind = obs.EventExit
			} else {
				live := 0
				for i := range m.pes {
					if m.pes[i].pc >= 0 {
						live++
					}
				}
				e.Kind = obs.EventMeta
				e.APC = m.apc().String()
				e.Live = live
				e.Next = next
			}
			if err := m.sink.Emit(e); err != nil {
				return nil, fmt.Errorf("simd: trace sink: %w", err)
			}
		}
		if done {
			break
		}
		cur = next
	}

	for i := range m.pes {
		m.res.Done[i] = m.pes[i].pc == PCDone
	}
	m.res.Mem = m.mem
	return m.res, nil
}

// execBody runs every slot of a meta state. Guards test the pc latched
// at meta-state entry; pc updates land in npc and commit afterwards, so
// a PE can never fall through into another MIMD state's code within the
// same meta state.
func (m *refVM) execBody(mc *MetaCode) error {
	for i := range m.pes {
		m.pes[i].npc = m.pes[i].pc
	}
	live := int64(0)
	for i := range m.pes {
		if m.pes[i].pc >= 0 {
			live++
		}
	}
	st := &m.res.MetaStats[mc.ID]
	for si := range mc.Slots {
		s := &mc.Slots[si]
		cost := int64(s.Cost())
		m.res.Time += cost
		m.res.BodyCycles += cost
		m.res.SlotExecs++
		st.Cycles += cost
		st.BodyCycles += cost
		st.LivePECycles += cost * live
		if m.prof != nil {
			m.prof.Add(mc.ID, s.Block, s.Pos, cost)
		}

		enabled := enabledPEs(m.pes, s.Guard)
		m.res.EnabledCycles += cost * int64(len(enabled))
		m.res.LiveIdleCycles += cost * (live - int64(len(enabled)))
		st.EnabledPECycles += cost * int64(len(enabled))
		m.res.PEHist[PEHistIndex(m.conf.N, len(enabled))] += cost
		if len(enabled) == 0 {
			continue
		}
		switch s.Kind {
		case SlotExec:
			if err := m.exec(enabled, s.Instr); err != nil {
				return err
			}
		case SlotSetPC:
			for _, i := range enabled {
				m.pes[i].npc = s.To
			}
		case SlotJumpF:
			for _, i := range enabled {
				c, err := m.pop(i)
				if err != nil {
					return err
				}
				if ir.Truth(c) {
					m.pes[i].npc = s.To
				} else {
					m.pes[i].npc = s.FTo
				}
			}
		case SlotEnd:
			for _, i := range enabled {
				m.pes[i].npc = PCDone
			}
		case SlotHalt:
			for _, i := range enabled {
				m.pes[i].npc = PCIdle
				m.pes[i].stack = m.pes[i].stack[:0]
				m.pes[i].retStack = m.pes[i].retStack[:0]
			}
		case SlotRetBr:
			for _, i := range enabled {
				rs := m.pes[i].retStack
				if len(rs) == 0 {
					return fmt.Errorf("PE %d return with empty return stack", i)
				}
				m.pes[i].npc = rs[len(rs)-1]
				m.pes[i].retStack = rs[:len(rs)-1]
			}
		case SlotSpawn:
			for _, parent := range enabled {
				child := -1
				for j := range m.pes {
					if m.pes[j].pc == PCIdle && m.pes[j].npc == PCIdle {
						child = j
						break
					}
				}
				if child < 0 {
					return fmt.Errorf("spawn with no free processor (width %d)", m.conf.N)
				}
				m.pes[child].npc = s.ChildTo
				m.pes[parent].npc = s.To
			}
		}
	}
	for i := range m.pes {
		m.pes[i].pc = m.pes[i].npc
	}
	return nil
}

// timelineEvent captures one per-PE occupancy row as a typed event.
func (m *refVM) timelineEvent(step int64, ms int) *obs.Event {
	pes := make([]int, len(m.pes))
	for i := range m.pes {
		switch pc := m.pes[i].pc; {
		case pc == PCDone:
			pes[i] = obs.PEDone
		case pc == PCIdle:
			pes[i] = obs.PEIdle
		case m.p.Barriers.Has(pc):
			pes[i] = obs.PEWait
		default:
			pes[i] = pc
		}
	}
	return &obs.Event{Kind: obs.EventTimeline, Step: step, Cycle: m.res.Time, Meta: ms, PEs: pes}
}

// apc computes the aggregate program counter: the global-or of one bit
// per live pc value (§3.2.3).
func (m *refVM) apc() *bitset.Set {
	agg := bitset.New(m.p.NStates)
	for i := range m.pes {
		if m.pes[i].pc >= 0 {
			agg.Add(m.pes[i].pc)
		}
	}
	return agg
}

// dispatch selects the next meta state from the aggregate (§3.2).
func (m *refVM) dispatch(mc *MetaCode) (next int, done bool, err error) {
	tr := &mc.Trans
	m.res.Time += int64(tr.Cost())
	m.res.DispatchCycles += int64(tr.Cost())
	m.res.MetaStats[mc.ID].Cycles += int64(tr.Cost())
	if m.prof != nil {
		m.prof.Add(mc.ID, telemetry.NoBlock, ir.Pos{}, int64(tr.Cost()))
	}
	return dispatchAgg(m.p, tr, m.apc())
}

// enabledPEs lists live PEs whose latched pc is in the guard.
func enabledPEs(pes []refPE, guard *bitset.Set) []int {
	var out []int
	for i := range pes {
		if pc := pes[i].pc; pc >= 0 && guard.Has(pc) {
			out = append(out, i)
		}
	}
	return out
}

func (m *refVM) push(i int, w ir.Word) { m.pes[i].stack = append(m.pes[i].stack, w) }

func (m *refVM) pop(i int) (ir.Word, error) {
	s := m.pes[i].stack
	if len(s) == 0 {
		return 0, fmt.Errorf("PE %d evaluation stack underflow", i)
	}
	w := s[len(s)-1]
	m.pes[i].stack = s[:len(s)-1]
	return w, nil
}

func (m *refVM) slot(addr int64) (int, error) {
	if addr < 0 || addr >= int64(m.p.Words) {
		return 0, fmt.Errorf("memory address %d out of range [0,%d)", addr, m.p.Words)
	}
	return int(addr), nil
}

// exec runs one instruction on every enabled PE (ascending order, which
// fixes the outcome of write conflicts deterministically: the highest
// enabled PE wins, matching the MIMD reference's phase order).
func (m *refVM) exec(enabled []int, in ir.Instr) error {
	switch in.Op {
	case ir.Nop:
	case ir.PushC:
		for _, i := range enabled {
			m.push(i, ir.Word(in.Imm))
		}
	case ir.Dup:
		for _, i := range enabled {
			w, err := m.pop(i)
			if err != nil {
				return err
			}
			m.push(i, w)
			m.push(i, w)
		}
	case ir.Pop:
		for _, i := range enabled {
			for k := int64(0); k < in.Imm; k++ {
				if _, err := m.pop(i); err != nil {
					return err
				}
			}
		}
	case ir.LdLocal, ir.LdMono:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		for _, i := range enabled {
			m.push(i, m.mem[i][a])
		}
	case ir.StLocal:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		for _, i := range enabled {
			w, err := m.pop(i)
			if err != nil {
				return err
			}
			m.mem[i][a] = w
		}
	case ir.StMono:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		var val ir.Word
		for _, i := range enabled {
			w, err := m.pop(i)
			if err != nil {
				return err
			}
			val = w // highest enabled PE wins
		}
		for q := range m.mem {
			m.mem[q][a] = val
		}
	case ir.LdIndex:
		for _, i := range enabled {
			idx, err := m.pop(i)
			if err != nil {
				return err
			}
			a, err := m.slot(in.Imm + int64(idx))
			if err != nil {
				return err
			}
			m.push(i, m.mem[i][a])
		}
	case ir.StIndex:
		for _, i := range enabled {
			w, err := m.pop(i)
			if err != nil {
				return err
			}
			idx, err := m.pop(i)
			if err != nil {
				return err
			}
			a, err := m.slot(in.Imm + int64(idx))
			if err != nil {
				return err
			}
			m.mem[i][a] = w
		}
	case ir.LdRemote:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		// Router reads are simultaneous: gather first, then push.
		vals := make([]ir.Word, len(enabled))
		for k, i := range enabled {
			p, err := m.pop(i)
			if err != nil {
				return err
			}
			vals[k] = m.mem[peIndex(p, m.conf.N)][a]
		}
		for k, i := range enabled {
			m.push(i, vals[k])
		}
	case ir.StRemote:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		for _, i := range enabled {
			w, err := m.pop(i)
			if err != nil {
				return err
			}
			p, err := m.pop(i)
			if err != nil {
				return err
			}
			m.mem[peIndex(p, m.conf.N)][a] = w
		}
	case ir.IProc:
		for _, i := range enabled {
			m.push(i, ir.Word(i))
		}
	case ir.NProc:
		for _, i := range enabled {
			m.push(i, ir.Word(m.conf.N))
		}
	case ir.PushRet:
		for _, i := range enabled {
			m.pes[i].retStack = append(m.pes[i].retStack, int(in.Imm))
		}
	default:
		switch {
		case ir.IsBinary(in.Op):
			for _, i := range enabled {
				b, err := m.pop(i)
				if err != nil {
					return err
				}
				a, err := m.pop(i)
				if err != nil {
					return err
				}
				m.push(i, ir.EvalBinary(in.Op, a, b))
			}
		case ir.IsUnary(in.Op):
			for _, i := range enabled {
				a, err := m.pop(i)
				if err != nil {
					return err
				}
				m.push(i, ir.EvalUnary(in.Op, a))
			}
		default:
			return fmt.Errorf("unknown opcode %v", in.Op)
		}
	}
	return nil
}
