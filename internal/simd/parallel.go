package simd

import (
	"sync"
	"sync/atomic"
)

// wscratch is one worker's private accumulation between commits:
// occupancy-count and live-count deltas (commutative, reduced by the
// coordinator in any order), the lowest word where a PE newly went
// idle (lowers the spawn free cursor), and the first error with the
// chunk it came from.
type wscratch struct {
	cntDelta   []int64
	cntTouched bool
	liveDelta  int64
	minIdleW   int

	err      error
	errChunk int
}

func newWScratch(nStates, nw int) *wscratch {
	return &wscratch{
		cntDelta: make([]int64, nStates),
		minIdleW: int(^uint(0) >> 1),
	}
}

// chunkPool stripes chunk execution across worker goroutines. Each
// forChunks pass resets an atomic cursor; workers claim chunk IDs from
// it until exhausted. Chunks are word-aligned slices of the PE space,
// so chunk-local writes never share a mask word or cache-line-order
// dependency with another chunk, and all cross-chunk effects are
// buffered per chunk and replayed in chunk-ID order by the coordinator
// — results are byte-identical at any worker count.
//
// Error discipline: a failing chunk records (error, chunkID) in the
// worker's scratch and the pass keeps claiming — no short-circuit — so
// the chunk every sequential execution would fail first always runs,
// and the coordinator picks the error from the lowest chunk ID:
// exactly the error sequential ascending-PE execution reports. (The
// extra work after an error is harmless: Run discards all state on
// error.)
type chunkPool struct {
	m      *vm
	fn     func(ws *wscratch, c int) error
	cursor atomic.Int64
	wake   []chan struct{} // index 0 (the coordinator) unused
	done   chan struct{}
	wg     sync.WaitGroup
}

func newChunkPool(m *vm, workers int) *chunkPool {
	pl := &chunkPool{
		m:    m,
		wake: make([]chan struct{}, workers),
		done: make(chan struct{}, workers-1),
	}
	for i := 1; i < workers; i++ {
		ch := make(chan struct{})
		pl.wake[i] = ch
		ws := m.wss[i]
		pl.wg.Add(1)
		go func() {
			defer pl.wg.Done()
			for range ch {
				pl.work(ws)
				pl.done <- struct{}{}
			}
		}()
	}
	return pl
}

func (pl *chunkPool) work(ws *wscratch) {
	n := pl.m.nChunks
	for {
		c := int(pl.cursor.Add(1)) - 1
		if c >= n {
			return
		}
		if err := pl.fn(ws, c); err != nil {
			if ws.err == nil || c < ws.errChunk {
				ws.err, ws.errChunk = err, c
			}
		}
	}
}

// stop shuts the workers down; safe to call exactly once, after the
// final forChunks pass has fully drained.
func (pl *chunkPool) stop() {
	for i := 1; i < len(pl.wake); i++ {
		close(pl.wake[i])
	}
	pl.wg.Wait()
}

// forChunks runs fn once per chunk. Sequential when no pool exists
// (Workers <= 1 or a single chunk): ascending chunk order with
// early-exit on error — the canonical order the parallel path must
// reproduce. With a pool, the coordinator participates alongside the
// woken workers, joins them, and reduces the recorded errors to the
// lowest-chunk one.
func (m *vm) forChunks(fn func(ws *wscratch, c int) error) error {
	if m.pool == nil {
		ws := m.wss[0]
		for c := 0; c < m.nChunks; c++ {
			if err := fn(ws, c); err != nil {
				return err
			}
		}
		return nil
	}
	pl := m.pool
	pl.fn = fn
	pl.cursor.Store(0)
	for i := 1; i < len(m.wss); i++ {
		pl.wake[i] <- struct{}{}
	}
	pl.work(m.wss[0])
	for i := 1; i < len(m.wss); i++ {
		<-pl.done
	}
	var err error
	errChunk := int(^uint(0) >> 1)
	for _, ws := range m.wss {
		if ws.err != nil && ws.errChunk < errChunk {
			err, errChunk = ws.err, ws.errChunk
		}
		ws.err = nil
	}
	return err
}
