package artifact

// Section payload codecs for the three deterministic sections. Each
// decoder assumes checksum-verified input but still bounds-checks every
// read and validates cross-references (successor IDs, block indices) so
// a codec bug surfaces as a *CorruptError, never an index panic in the
// engines.

import (
	"msc/internal/cfg"
	"msc/internal/ir"
	metastate "msc/internal/msc"
	"msc/internal/simd"
)

// ---- graph -----------------------------------------------------------

func encodeGraph(g *cfg.Graph) []byte {
	w := &writer{}
	w.intv(g.Entry)
	w.intv(g.MonoSlots)
	w.intv(g.Words)
	w.slotMap(g.RetSlot)
	w.slotMap(g.VarSlot)
	w.uvarint(uint64(len(g.Blocks)))
	for _, b := range g.Blocks {
		if b == nil {
			w.boolval(false)
			continue
		}
		w.boolval(true)
		w.intv(b.ID)
		w.uvarint(uint64(len(b.Code)))
		for _, in := range b.Code {
			w.instr(in)
		}
		w.byteval(byte(b.Term))
		w.intv(b.Next)
		w.intv(b.FNext)
		w.ints(b.RetTargets)
		w.intv(b.SpawnNext)
		w.boolval(b.Barrier)
		w.str(b.Label)
		w.pos(b.Pos)
	}
	return w.buf
}

func decodeGraph(data []byte) (*cfg.Graph, error) {
	r := &reader{data: data}
	g := &cfg.Graph{
		Entry:     r.intv(),
		MonoSlots: r.intv(),
		Words:     r.intv(),
		RetSlot:   r.slotMap(),
		VarSlot:   r.slotMap(),
	}
	n := r.uvarint()
	if r.err != nil || n > uint64(r.rem())+1 {
		return nil, corrupt("graph: bad block count")
	}
	g.Blocks = make([]*cfg.Block, n)
	for i := range g.Blocks {
		if !r.boolval() {
			continue
		}
		b := &cfg.Block{ID: r.intv()}
		nc := r.uvarint()
		if nc > uint64(r.rem()) {
			return nil, corrupt("graph: bad code length in block %d", i)
		}
		if nc > 0 {
			b.Code = make([]ir.Instr, nc)
			for j := range b.Code {
				b.Code[j] = r.instr()
			}
		}
		b.Term = cfg.TermKind(r.byteval())
		b.Next = r.intv()
		b.FNext = r.intv()
		b.RetTargets = r.ints()
		b.SpawnNext = r.intv()
		b.Barrier = r.boolval()
		b.Label = r.str()
		b.Pos = r.pos()
		g.Blocks[i] = b
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.rem() != 0 {
		return nil, corrupt("graph: %d trailing bytes", r.rem())
	}
	if g.Entry < 0 || g.Entry >= len(g.Blocks) || g.Blocks[g.Entry] == nil {
		return nil, corrupt("graph: entry %d out of range", g.Entry)
	}
	for i, b := range g.Blocks {
		if b == nil {
			continue
		}
		if b.ID != i {
			return nil, corrupt("graph: block %d carries ID %d", i, b.ID)
		}
		for _, s := range b.Succs() {
			if s < 0 || s >= len(g.Blocks) || g.Blocks[s] == nil {
				return nil, corrupt("graph: block %d successor %d out of range", i, s)
			}
		}
	}
	return g, nil
}

func (w *writer) instr(in ir.Instr) {
	w.byteval(byte(in.Op))
	w.varint(in.Imm)
	w.byteval(byte(in.Ty))
	w.str(in.Sym)
	w.pos(in.Pos)
}

func (r *reader) instr() ir.Instr {
	return ir.Instr{
		Op:  ir.Op(r.byteval()),
		Imm: r.varint(),
		Ty:  ir.Type(r.byteval()),
		Sym: r.str(),
		Pos: r.pos(),
	}
}

// ---- automaton -------------------------------------------------------

// encodeAutomaton serializes the automaton. Its graph is usually the
// compiled graph (secGraph); when time splitting replaced it, the split
// copy is inlined here so the decoded automaton keeps its own graph
// exactly as conversion left it.
func encodeAutomaton(a *metastate.Automaton, compiledGraph *cfg.Graph) []byte {
	w := &writer{}
	shared := a.G == compiledGraph
	w.boolval(shared)
	if !shared {
		inner := encodeGraph(a.G)
		w.uvarint(uint64(len(inner)))
		w.buf = append(w.buf, inner...)
	}
	w.intv(a.Start)
	w.set(a.Barriers)
	w.boolval(a.Opt.Compress)
	w.boolval(a.Opt.MergeSubsets)
	w.boolval(a.Opt.TimeSplit)
	w.intv(a.Opt.SplitDelta)
	w.intv(a.Opt.SplitPercent)
	w.boolval(a.Opt.BarrierExact)
	w.intv(a.Opt.MaxStates)
	w.intv(a.Opt.MaxRestarts)
	w.intv(a.Opt.MaxRetSubsets)
	w.varint(a.Opt.MaxMemBytes)
	w.intv(a.Splits)
	w.intv(a.Restarts)
	w.boolval(a.OverApprox)
	w.uvarint(uint64(len(a.States)))
	for _, s := range a.States {
		w.set(s.Set)
		w.ints(s.Trans)
		w.boolval(s.Exit)
	}
	return w.buf
}

func decodeAutomaton(data []byte, compiledGraph *cfg.Graph) (*metastate.Automaton, error) {
	r := &reader{data: data}
	a := &metastate.Automaton{G: compiledGraph}
	if !r.boolval() {
		n := r.uvarint()
		if n > uint64(r.rem()) {
			return nil, corrupt("automaton: bad inline graph length")
		}
		g, err := decodeGraph(r.bytes(int(n)))
		if err != nil {
			return nil, err
		}
		a.G = g
	}
	a.Start = r.intv()
	a.Barriers = r.set()
	a.Opt.Compress = r.boolval()
	a.Opt.MergeSubsets = r.boolval()
	a.Opt.TimeSplit = r.boolval()
	a.Opt.SplitDelta = r.intv()
	a.Opt.SplitPercent = r.intv()
	a.Opt.BarrierExact = r.boolval()
	a.Opt.MaxStates = r.intv()
	a.Opt.MaxRestarts = r.intv()
	a.Opt.MaxRetSubsets = r.intv()
	a.Opt.MaxMemBytes = r.varint()
	a.Splits = r.intv()
	a.Restarts = r.intv()
	a.OverApprox = r.boolval()
	n := r.uvarint()
	if r.err != nil || n > uint64(r.rem())+1 {
		return nil, corrupt("automaton: bad state count")
	}
	a.States = make([]*metastate.MetaState, n)
	for i := range a.States {
		a.States[i] = &metastate.MetaState{
			ID:    i,
			Set:   r.set(),
			Trans: r.ints(),
			Exit:  r.boolval(),
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.rem() != 0 {
		return nil, corrupt("automaton: %d trailing bytes", r.rem())
	}
	if a.Start < 0 || a.Start >= len(a.States) {
		return nil, corrupt("automaton: start %d out of range", a.Start)
	}
	if a.Barriers == nil {
		return nil, corrupt("automaton: missing barrier set")
	}
	for i, s := range a.States {
		if s.Set == nil {
			return nil, corrupt("automaton: state %d missing set", i)
		}
		for _, to := range s.Trans {
			if to < 0 || to >= len(a.States) {
				return nil, corrupt("automaton: state %d transition %d out of range", i, to)
			}
		}
	}
	if err := a.Reindex(); err != nil {
		return nil, corrupt("automaton: %v", err)
	}
	return a, nil
}

// ---- program ---------------------------------------------------------

func encodeProgram(p *simd.Program) []byte {
	w := &writer{}
	w.intv(p.Start)
	w.intv(p.Words)
	w.intv(p.NStates)
	w.set(p.Barriers)
	w.boolval(p.SupersetDispatch)
	w.slotMap(p.VarSlot)
	w.slotMap(p.RetSlot)
	w.uvarint(uint64(len(p.Meta)))
	for _, m := range p.Meta {
		w.intv(m.ID)
		w.set(m.Set)
		w.uvarint(uint64(len(m.Slots)))
		for i := range m.Slots {
			w.slot(&m.Slots[i])
		}
		w.trans(&m.Trans)
	}
	return w.buf
}

func decodeProgram(data []byte) (*simd.Program, error) {
	r := &reader{data: data}
	p := &simd.Program{
		Start:            r.intv(),
		Words:            r.intv(),
		NStates:          r.intv(),
		Barriers:         r.set(),
		SupersetDispatch: r.boolval(),
		VarSlot:          r.slotMap(),
		RetSlot:          r.slotMap(),
	}
	n := r.uvarint()
	if r.err != nil || n > uint64(r.rem())+1 {
		return nil, corrupt("program: bad meta count")
	}
	p.Meta = make([]*simd.MetaCode, n)
	for i := range p.Meta {
		m := &simd.MetaCode{ID: r.intv(), Set: r.set()}
		ns := r.uvarint()
		if ns > uint64(r.rem()) {
			return nil, corrupt("program: bad slot count in meta %d", i)
		}
		if ns > 0 {
			m.Slots = make([]simd.Slot, ns)
			for j := range m.Slots {
				m.Slots[j] = r.slot()
			}
		}
		m.Trans = r.trans()
		p.Meta[i] = m
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.rem() != 0 {
		return nil, corrupt("program: %d trailing bytes", r.rem())
	}
	if p.Start < 0 || p.Start >= len(p.Meta) {
		return nil, corrupt("program: start %d out of range", p.Start)
	}
	if p.Barriers == nil {
		return nil, corrupt("program: missing barrier set")
	}
	for i, m := range p.Meta {
		if m.ID != i {
			return nil, corrupt("program: meta %d carries ID %d", i, m.ID)
		}
		if m.Set == nil {
			return nil, corrupt("program: meta %d missing set", i)
		}
		for _, e := range m.Trans.Entries {
			if e.To < 0 || e.To >= len(p.Meta) {
				return nil, corrupt("program: meta %d dispatches to %d, out of range", i, e.To)
			}
			if e.Key == nil {
				return nil, corrupt("program: meta %d has a nil dispatch key", i)
			}
		}
		if h := m.Trans.Hash; h != nil {
			for _, to := range h.Table {
				if to != -1 && (to < 0 || to >= len(p.Meta)) {
					return nil, corrupt("program: meta %d hash table entry %d out of range", i, to)
				}
			}
		}
	}
	return p, nil
}

func (w *writer) slot(s *simd.Slot) {
	w.byteval(byte(s.Kind))
	w.set(s.Guard)
	w.instr(s.Instr)
	w.intv(s.To)
	w.intv(s.FTo)
	w.intv(s.ChildTo)
	w.intv(s.Block)
	w.pos(s.Pos)
}

func (r *reader) slot() simd.Slot {
	return simd.Slot{
		Kind:    simd.SlotKind(r.byteval()),
		Guard:   r.set(),
		Instr:   r.instr(),
		To:      r.intv(),
		FTo:     r.intv(),
		ChildTo: r.intv(),
		Block:   r.intv(),
		Pos:     r.pos(),
	}
}

func (w *writer) trans(t *simd.Trans) {
	w.byteval(byte(t.Kind))
	w.boolval(t.ExitCheck)
	w.uvarint(uint64(len(t.Entries)))
	for _, e := range t.Entries {
		w.set(e.Key)
		w.intv(e.To)
	}
	if t.Hash == nil {
		w.boolval(false)
		return
	}
	w.boolval(true)
	h := t.Hash
	w.intv(h.ShiftA)
	w.intv(h.ShiftB)
	w.boolval(h.UseB)
	w.u64(h.Mul)
	w.intv(h.ShiftM)
	w.boolval(h.UseMul)
	w.u64(h.Mask)
	w.ints(h.Table)
	w.intv(h.EvalCost)
}

func (r *reader) trans() simd.Trans {
	t := simd.Trans{
		Kind:      simd.TransKind(r.byteval()),
		ExitCheck: r.boolval(),
	}
	n := r.uvarint()
	if n > uint64(r.rem()) {
		r.fail("dispatch entries")
		return t
	}
	if n > 0 {
		t.Entries = make([]simd.DispatchEntry, n)
		for i := range t.Entries {
			t.Entries[i] = simd.DispatchEntry{Key: r.set(), To: r.intv()}
		}
	}
	if r.boolval() {
		t.Hash = &simd.HashFn{
			ShiftA:   r.intv(),
			ShiftB:   r.intv(),
			UseB:     r.boolval(),
			Mul:      r.u64(),
			ShiftM:   r.intv(),
			UseMul:   r.boolval(),
			Mask:     r.u64(),
			Table:    r.ints(),
			EvalCost: r.intv(),
		}
	}
	return t
}
