package artifact

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"msc/internal/cfg"
	"msc/internal/codegen"
	metastate "msc/internal/msc"
	"msc/internal/mscerr"
	"msc/internal/progen"
)

// buildArtifact runs the internal pipeline (graph → automaton → SIMD
// program) on source and wraps the results like the cache layer will.
func buildArtifact(t *testing.T, src string, compress, hash, csiOn bool) *Artifact {
	t.Helper()
	g := cfg.MustBuild(src)
	a, err := metastate.Convert(g, metastate.DefaultOptions(compress))
	var be *mscerr.BudgetError
	if errors.As(err, &be) {
		// Some corpus programs only convert compressed; the codec has
		// nothing to prove on a compile that the pipeline itself rejects.
		return nil
	}
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	p, err := codegen.Compile(a, codegen.Options{Hash: hash, CSI: csiOn})
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return &Artifact{
		Graph:     g,
		Automaton: a,
		Program:   p,
		StatsJSON: []byte(`{"phase_wall":{"convert":1}}`),
	}
}

func corpusSources(t *testing.T) map[string]string {
	t.Helper()
	srcs := map[string]string{}
	paths, err := filepath.Glob("../../examples/mc/*.mc")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus found: %v", err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		srcs[filepath.Base(p)] = string(data)
	}
	for _, seed := range []int64{1, 7, 42} {
		srcs[fmt.Sprintf("progen-%d", seed)] = progen.Source(progen.Params{Seed: seed, Barriers: true, Calls: seed%2 == 1})
	}
	return srcs
}

func appendDigest(b []byte) []byte {
	d := sha256.Sum256(b)
	return append(b, d[:]...)
}

func testKey() Key {
	var k Key
	for i := range k.SourceHash {
		k.SourceHash[i] = byte(i)
		k.ConfigFP[i] = byte(255 - i)
	}
	return k
}

// TestRoundTrip proves the codec contract over the corpus: decode
// inverts encode structurally, re-encoding the decoded artifact is
// byte-identical (determinism), and the fingerprint survives the trip.
func TestRoundTrip(t *testing.T) {
	for name, src := range corpusSources(t) {
		for _, compress := range []bool{false, true} {
			a := buildArtifact(t, src, compress, true, true)
			if a == nil {
				continue
			}
			enc, err := Encode(a, testKey())
			if err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			dec, key, err := Decode(enc)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if key != testKey() {
				t.Fatalf("%s: key did not round-trip", name)
			}
			enc2, err := Encode(dec, key)
			if err != nil {
				t.Fatalf("%s: re-encode: %v", name, err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("%s: encode(decode(x)) differs from x", name)
			}
			if Fingerprint(a) != Fingerprint(dec) {
				t.Fatalf("%s: fingerprint changed across round trip", name)
			}
			if string(dec.StatsJSON) != string(a.StatsJSON) {
				t.Fatalf("%s: stats blob changed", name)
			}
		}
	}
}

// TestDecodedAutomatonDispatches proves a deserialized automaton is
// operational: Find locates every state by set (the index rebuilt by
// Reindex) and Lookup dispatches the start aggregate.
func TestDecodedAutomatonDispatches(t *testing.T) {
	a := buildArtifact(t, progen.Source(progen.Params{Seed: 3}), true, true, false)
	enc, err := Encode(a, testKey())
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a.Automaton.States {
		got := dec.Automaton.Find(s.Set)
		if got == nil || got.ID != s.ID {
			t.Fatalf("decoded automaton cannot find state %d %s", s.ID, s.Set)
		}
	}
	start := dec.Automaton.States[dec.Automaton.Start]
	ms, err := dec.Automaton.Lookup(start.Set)
	if err != nil || ms == nil || ms.ID != start.ID {
		t.Fatalf("decoded automaton Lookup(start) = %v, %v", ms, err)
	}
}

// TestCorruptionDetected flips every byte of an encoded artifact in
// turn and requires Decode to fail loudly each time — never to return
// a silently different artifact. This is the integrity property the
// cache's quarantine path relies on.
func TestCorruptionDetected(t *testing.T) {
	a := buildArtifact(t, "poly int x;\nvoid main() { x = 1; return; }", false, false, false)
	enc, err := Encode(a, testKey())
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte corruption must be detected: the whole-file
	// digest covers all bytes before it, and the digest bytes themselves
	// are compared against the recomputed hash.
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		if _, _, err := Decode(mut); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
	// Truncations must be detected too (torn writes).
	for _, n := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		if _, _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
		var ce *CorruptError
		_, _, err := Decode(enc[:n])
		if !errors.As(err, &ce) {
			t.Fatalf("truncation to %d bytes: got %v, want *CorruptError", n, err)
		}
	}
}

// TestVersionMismatchIsStaleNotCorrupt rewrites the header version and
// requires ErrVersion (a miss), not a CorruptError (a quarantine):
// upgrading the codec must not quarantine every existing entry.
func TestVersionMismatchIsStaleNotCorrupt(t *testing.T) {
	a := buildArtifact(t, "poly int x;\nvoid main() { x = 2; return; }", false, false, false)
	enc, err := Encode(a, testKey())
	if err != nil {
		t.Fatal(err)
	}
	// The version uvarint sits right after the magic; Version fits one
	// byte, so bumping it keeps the varint single-byte. Recompute the
	// digest so only the version differs.
	mut := append([]byte(nil), enc[:len(enc)-32]...)
	mut[len(magic)] = Version + 1
	mut = appendDigest(mut)
	_, _, err2 := Decode(mut)
	if !errors.Is(err2, ErrVersion) {
		t.Fatalf("version bump: got %v, want ErrVersion", err2)
	}
	var ce *CorruptError
	if errors.As(err2, &ce) {
		t.Fatalf("version bump misclassified as corruption: %v", err2)
	}
}

// TestFingerprintExcludesStats: two compiles of the same program with
// different wall-clock stats must share a fingerprint (cold ≡ warm).
func TestFingerprintExcludesStats(t *testing.T) {
	src := "poly int x;\nvoid main() { x = 3; return; }"
	a := buildArtifact(t, src, true, true, false)
	b := buildArtifact(t, src, true, true, false)
	b.StatsJSON = []byte(`{"phase_wall":{"convert":999}}`)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint depends on the stats section")
	}
	encA, _ := Encode(a, testKey())
	encB, _ := Encode(b, testKey())
	if bytes.Equal(encA, encB) {
		t.Fatal("encodings should differ when stats differ (digest covers stats)")
	}
}
