// Package artifact is the versioned, self-describing binary codec for
// compiled programs: everything a cache hit needs to serve a compile
// without rerunning the pipeline — the MIMD state graph, the meta-state
// automaton, the SIMD program (CSI schedules, hash dispatch tables),
// and the original compile's stats/diagnostics — in one deterministic
// byte stream with per-section checksums and a whole-file digest.
//
// Layout (all integers are varints unless noted; see docs/CACHE.md):
//
//	magic    "MSCART\x00"            fixed 7 bytes
//	version  uvarint                 codec Version; readers reject others
//	srcHash  32 bytes                sha256 of the MIMDC source
//	confFP   32 bytes                config fingerprint (root package)
//	nsec     uvarint
//	sections nsec × {id uvarint, len uvarint, crc32c 4 bytes LE, payload}
//	digest   32 bytes                sha256 of everything above
//
// Decoding verifies the digest first, then each section's CRC, then
// parses with bounds checks; any mismatch returns a *CorruptError so
// the cache can quarantine the entry. A version mismatch is NOT
// corruption — it returns ErrVersion and the cache treats the entry as
// a stale miss to overwrite.
//
// Determinism is the contract the cache's correctness rests on: two
// equal inputs encode to byte-identical streams (maps are serialized in
// sorted key order), and Encode(Decode(b)) == b for any valid b. The
// deterministic sections (graph, automaton, program) also define
// Fingerprint, the identity the recovery matrix asserts across cold,
// warm, and crash-recovered caches; the stats section carries wall
// times and is deliberately excluded from it.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"msc/internal/bitset"
	"msc/internal/cfg"
	"msc/internal/ir"
	metastate "msc/internal/msc"
	"msc/internal/simd"
)

// Version is the codec version. Bump it on ANY change to the encoding
// below — old entries then decode as ErrVersion and are recompiled,
// never misread. The versioning policy is documented in docs/CACHE.md.
const Version = 1

// magic identifies an artifact file. The trailing NUL guards against
// text files that happen to start with the letters.
const magic = "MSCART\x00"

// Section IDs. Unknown IDs are corruption at a matching version.
const (
	secGraph   = 1
	secAuto    = 2
	secProgram = 3
	secStats   = 4
)

// Artifact is the decoded form: the deserialized pipeline outputs plus
// the opaque stats payload (the root package's CompileStats +
// diagnostics JSON; this package does not depend on the root package,
// so the blob stays opaque here).
type Artifact struct {
	Graph     *cfg.Graph
	Automaton *metastate.Automaton
	Program   *simd.Program
	StatsJSON []byte
}

// Key identifies what an artifact was compiled from: the content
// address the cache stores it under.
type Key struct {
	SourceHash [32]byte
	ConfigFP   [32]byte
}

// CorruptError reports a structurally invalid or checksum-failing
// artifact stream. The cache quarantines the entry on sight.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string {
	return "artifact: corrupt stream: " + e.Reason
}

// ErrVersion reports a well-formed artifact written by a different
// codec version: stale, not corrupt. The cache treats it as a miss.
var ErrVersion = errors.New("artifact: codec version mismatch (stale entry)")

func corrupt(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the artifact under its key. The output is
// deterministic: equal inputs produce identical bytes.
func Encode(a *Artifact, key Key) ([]byte, error) {
	if a.Graph == nil || a.Automaton == nil || a.Program == nil {
		return nil, errors.New("artifact: Encode requires graph, automaton, and program")
	}
	out := make([]byte, 0, 4096)
	out = append(out, magic...)
	out = binary.AppendUvarint(out, Version)
	out = append(out, key.SourceHash[:]...)
	out = append(out, key.ConfigFP[:]...)

	sections := []struct {
		id      uint64
		payload []byte
	}{
		{secGraph, encodeGraph(a.Graph)},
		{secAuto, encodeAutomaton(a.Automaton, a.Graph)},
		{secProgram, encodeProgram(a.Program)},
		{secStats, a.StatsJSON},
	}
	out = binary.AppendUvarint(out, uint64(len(sections)))
	for _, s := range sections {
		out = binary.AppendUvarint(out, s.id)
		out = binary.AppendUvarint(out, uint64(len(s.payload)))
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(s.payload, castagnoli))
		out = append(out, s.payload...)
	}
	digest := sha256.Sum256(out)
	out = append(out, digest[:]...)
	return out, nil
}

// Fingerprint returns the hex digest of the deterministic sections
// (graph, automaton, program) — the compile-result identity that must
// agree byte for byte across cold, warm, and crash-recovered caches.
// Stats are excluded: wall times differ between identical compiles.
func Fingerprint(a *Artifact) string {
	h := sha256.New()
	h.Write(encodeGraph(a.Graph))
	h.Write(encodeAutomaton(a.Automaton, a.Graph))
	h.Write(encodeProgram(a.Program))
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Decode verifies and deserializes an artifact stream. It returns
// ErrVersion for a different codec version and *CorruptError for any
// integrity or structure failure.
func Decode(data []byte) (*Artifact, Key, error) {
	var key Key
	// Whole-file digest first: everything after this point may assume
	// the bytes are exactly what Encode produced (bounds checks stay,
	// truth does not depend on them).
	if len(data) < len(magic)+32 {
		return nil, key, corrupt("short stream: %d bytes", len(data))
	}
	body, tail := data[:len(data)-32], data[len(data)-32:]
	digest := sha256.Sum256(body)
	if string(digest[:]) != string(tail) {
		return nil, key, corrupt("whole-file digest mismatch")
	}
	r := &reader{data: body}
	if string(r.bytes(len(magic))) != magic {
		return nil, key, corrupt("bad magic")
	}
	if v := r.uvarint(); v != Version {
		if r.err != nil {
			return nil, key, corrupt("truncated header")
		}
		return nil, key, fmt.Errorf("%w: file version %d, codec version %d", ErrVersion, v, Version)
	}
	copy(key.SourceHash[:], r.bytes(32))
	copy(key.ConfigFP[:], r.bytes(32))

	a := &Artifact{}
	nsec := r.uvarint()
	if r.err != nil || nsec > 16 {
		return nil, key, corrupt("bad section count")
	}
	for i := uint64(0); i < nsec; i++ {
		id := r.uvarint()
		n := r.uvarint()
		crcWant := binary.LittleEndian.Uint32(r.bytes(4))
		payload := r.bytes(int(n))
		if r.err != nil {
			return nil, key, corrupt("truncated section %d", id)
		}
		if crc32.Checksum(payload, castagnoli) != crcWant {
			return nil, key, corrupt("section %d checksum mismatch", id)
		}
		var err error
		switch id {
		case secGraph:
			a.Graph, err = decodeGraph(payload)
		case secAuto:
			if a.Graph == nil {
				return nil, key, corrupt("automaton section before graph section")
			}
			a.Automaton, err = decodeAutomaton(payload, a.Graph)
		case secProgram:
			a.Program, err = decodeProgram(payload)
		case secStats:
			a.StatsJSON = append([]byte(nil), payload...)
		default:
			return nil, key, corrupt("unknown section id %d", id)
		}
		if err != nil {
			return nil, key, err
		}
	}
	if r.rem() != 0 {
		return nil, key, corrupt("%d trailing bytes after sections", r.rem())
	}
	if a.Graph == nil || a.Automaton == nil || a.Program == nil {
		return nil, key, corrupt("missing required section")
	}
	return a, key, nil
}

// ---- primitive writers ----------------------------------------------

type writer struct {
	buf []byte
}

func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) intv(v int)       { w.varint(int64(v)) }
func (w *writer) u64(v uint64)     { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) byteval(b byte)   { w.buf = append(w.buf, b) }
func (w *writer) boolval(b bool)   { w.buf = append(w.buf, boolByte(b)) }
func (w *writer) str(s string)     { w.uvarint(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *writer) pos(p ir.Pos)     { w.intv(p.Line); w.intv(p.Col) }
func (w *writer) ints(xs []int)    { w.uvarint(uint64(len(xs))); forEachInt(xs, w.intv) }
func (w *writer) set(s *bitset.Set) {
	if s == nil {
		w.uvarint(0)
		w.boolval(false)
		return
	}
	words := s.Words()
	w.uvarint(uint64(len(words)))
	w.boolval(true)
	for _, word := range words {
		w.u64(word)
	}
}

// sortedKeys returns the map's keys in sorted order: map iteration
// order must never leak into the encoding.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (w *writer) slotMap(m map[string]int) {
	w.uvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		w.str(k)
		w.intv(m[k])
	}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func forEachInt(xs []int, f func(int)) {
	for _, x := range xs {
		f(x)
	}
}

// ---- primitive readers ----------------------------------------------

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = corrupt("truncated %s at offset %d", what, r.off)
	}
}

func (r *reader) rem() int { return len(r.data) - r.off }

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.rem() < n {
		r.fail("bytes")
		return make([]byte, n)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) intv() int   { return int(r.varint()) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.bytes(8)) }
func (r *reader) byteval() byte {
	b := r.bytes(1)
	return b[0]
}
func (r *reader) boolval() bool { return r.byteval() != 0 }

func (r *reader) str() string {
	n := r.uvarint()
	if n > uint64(r.rem()) {
		r.fail("string")
		return ""
	}
	return string(r.bytes(int(n)))
}

func (r *reader) pos() ir.Pos { return ir.Pos{Line: r.intv(), Col: r.intv()} }

func (r *reader) ints() []int {
	n := r.uvarint()
	if n > uint64(r.rem()) {
		r.fail("int slice")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.intv()
	}
	return out
}

func (r *reader) set() *bitset.Set {
	n := r.uvarint()
	present := r.boolval()
	if n > uint64(r.rem()/8) {
		r.fail("bitset")
		return nil
	}
	if !present {
		return nil
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = r.u64()
	}
	return bitset.FromWords(words)
}

func (r *reader) slotMap() map[string]int {
	n := r.uvarint()
	if n > uint64(r.rem()) {
		r.fail("slot map")
		return nil
	}
	m := make(map[string]int, n)
	for i := uint64(0); i < n; i++ {
		k := r.str()
		m[k] = r.intv()
	}
	return m
}
