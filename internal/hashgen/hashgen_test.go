package hashgen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestListing5Keys(t *testing.T) {
	// The switch at the end of Listing 5's ms_0 dispatches on aggregates
	// BIT(2), BIT(6), and BIT(2)|BIT(6).
	keys := []uint64{1 << 2, 1 << 6, 1<<2 | 1<<6}
	h, err := Find(keys)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, k := range keys {
		idx := h.Index(k)
		if idx > h.Mask {
			t.Fatalf("index %d exceeds mask %d", idx, h.Mask)
		}
		if seen[idx] {
			t.Fatalf("collision at %d", idx)
		}
		seen[idx] = true
	}
	// Three keys fit a four-entry table: density >= 0.75.
	if d := TableDensity(h, len(keys)); d < 0.75 {
		t.Fatalf("table density = %.2f, want >= 0.75 (mask %#x)", d, h.Mask)
	}
}

func TestFiveWayFinalSwitch(t *testing.T) {
	// ms_2_6's five-way switch: {2,6}, {9}, {6,9}, {2,9}, {2,6,9}.
	bit := func(is ...int) (w uint64) {
		for _, i := range is {
			w |= 1 << uint(i)
		}
		return
	}
	keys := []uint64{bit(2, 6), bit(9), bit(6, 9), bit(2, 9), bit(2, 6, 9)}
	h, err := Find(keys)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, k := range keys {
		if idx := h.Index(k); seen[idx] {
			t.Fatalf("collision")
		} else {
			seen[idx] = true
		}
	}
	if h.Mask+1 > 16 {
		t.Fatalf("table size %d for 5 keys, want <= 16", h.Mask+1)
	}
}

func TestSingleKey(t *testing.T) {
	h, err := Find([]uint64{0xdeadbeef})
	if err != nil {
		t.Fatal(err)
	}
	if h.Mask != 0 || h.Index(0xdeadbeef) != 0 {
		t.Fatalf("single key should map to a one-entry table, got mask %d", h.Mask)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Find(nil); err == nil {
		t.Fatal("empty key set accepted")
	}
	if _, err := Find([]uint64{5, 5}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

func TestQuickPerfectOnRandomKeySets(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		r := rand.New(rand.NewSource(seed))
		keys := make([]uint64, 0, n)
		seen := map[uint64]bool{}
		for len(keys) < n {
			// Sparse aggregate-like keys: a few set bits.
			var w uint64
			for i := 0; i < 3; i++ {
				w |= 1 << uint(r.Intn(32))
			}
			if w != 0 && !seen[w] {
				seen[w] = true
				keys = append(keys, w)
			}
		}
		h, err := Find(keys)
		if err != nil {
			return false
		}
		idx := map[uint64]bool{}
		for _, k := range keys {
			i := h.Index(k)
			if i > h.Mask || idx[i] {
				return false
			}
			idx[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCheaperFormsPreferred(t *testing.T) {
	// Keys already distinct under a plain shift should get the cheapest
	// form (cost 2), never the multiplicative fallback.
	h, err := Find([]uint64{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if h.EvalCost != costShift {
		t.Fatalf("eval cost = %d, want %d (plain shift)", h.EvalCost, costShift)
	}
}

func TestLinearDispatchCostGrows(t *testing.T) {
	if LinearDispatchCost(1) != 2 {
		t.Fatalf("n=1 cost = %d", LinearDispatchCost(1))
	}
	prev := 0
	for n := 2; n <= 64; n *= 2 {
		c := LinearDispatchCost(n)
		if c <= prev {
			t.Fatalf("cost not increasing at n=%d", n)
		}
		prev = c
	}
}

func TestHashStringForm(t *testing.T) {
	h, err := Find([]uint64{1 << 2, 1 << 6, 1<<2 | 1<<6})
	if err != nil {
		t.Fatal(err)
	}
	if s := h.String(); s == "" {
		t.Fatal("empty hash description")
	}
}

func BenchmarkFindSmall(b *testing.B) {
	keys := []uint64{1 << 2, 1 << 6, 1<<2 | 1<<6, 1 << 9, 1<<2 | 1<<9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Find(keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashDispatch(b *testing.B) {
	keys := []uint64{1 << 2, 1 << 6, 1<<2 | 1<<6, 1 << 9, 1<<2 | 1<<9}
	h, err := Find(keys)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += h.Index(keys[i%len(keys)])
	}
	_ = sink
}
