// Package hashgen searches for customized hash functions that map a
// sparse set of aggregate-pc words to small, distinct indices, so that
// the N-way branch at the end of each meta state compiles to a dense
// jump table ("Coding Multiway Branches Using Customized Hash
// Functions", Dietz TR-EE 92-31; §3.2 of the MSC paper — e.g. the
// ((apc >> 6) ^ apc) & 15 switch of Listing 5).
//
// The search tries function forms in increasing evaluation-cost order
// within increasing table sizes, so the first hit is the cheapest
// perfect hash with the densest table:
//
//  1. (w >> a) & mask                      — 2 cycles
//  2. ((w >> a) ^ (w >> b)) & mask         — 4 cycles
//  3. ((w*M) >> s) & mask (Fibonacci mul)  — 8 cycles
package hashgen

import (
	"fmt"
	"math/bits"

	"msc/internal/simd"
)

// Costs of the candidate forms in control-unit cycles.
const (
	costShift = 2
	costXor   = 4
	costMul   = 8
)

// fibonacci multipliers tried for the multiplicative form (2^64/φ and a
// few standard mixers).
var multipliers = []uint64{
	0x9e3779b97f4a7c15,
	0xff51afd7ed558ccd,
	0xc4ceb9fe1a85ec53,
	0xbf58476d1ce4e5b9,
	0x94d049bb133111eb,
}

// Find returns the cheapest perfect hash over keys from the candidate
// family. Keys must be non-empty and distinct.
func Find(keys []uint64) (*simd.HashFn, error) {
	h, _, err := Search(keys)
	return h, err
}

// Search is Find plus observability: it also reports how many candidate
// functions were evaluated before the winner (or exhaustion), the
// search-effort number the compile metrics record.
func Search(keys []uint64) (*simd.HashFn, int, error) {
	tried := 0
	if len(keys) == 0 {
		return nil, tried, fmt.Errorf("hashgen: no keys")
	}
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			return nil, tried, fmt.Errorf("hashgen: duplicate key %#x", k)
		}
		seen[k] = true
	}

	minBits := bits.Len(uint(len(keys) - 1))
	if len(keys) == 1 {
		minBits = 0
	}
	for b := minBits; b <= minBits+4 && b <= 16; b++ {
		mask := uint64(1)<<uint(b) - 1

		// Form 1: single shift.
		for a := 0; a < 64; a++ {
			h := &simd.HashFn{ShiftA: a, Mask: mask, EvalCost: costShift}
			tried++
			if perfect(h, keys) {
				return h, tried, nil
			}
		}
		// Form 2: xor of two shifts (the Listing 5 shape).
		for a := 0; a < 64; a++ {
			for c := a + 1; c < 64; c++ {
				h := &simd.HashFn{ShiftA: a, ShiftB: c, UseB: true, Mask: mask, EvalCost: costXor}
				tried++
				if perfect(h, keys) {
					return h, tried, nil
				}
			}
		}
		// Form 3: multiplicative. ShiftA=64 zeroes the plain term.
		for _, m := range multipliers {
			for s := 64 - b; s >= 32; s -= 4 {
				h := &simd.HashFn{
					ShiftA: 64, UseMul: true, Mul: m, ShiftM: s,
					Mask: mask, EvalCost: costMul,
				}
				tried++
				if perfect(h, keys) {
					return h, tried, nil
				}
			}
		}
	}
	return nil, tried, fmt.Errorf("hashgen: no perfect hash found for %d keys within table size 2^%d",
		len(keys), minBits+4)
}

// perfect reports whether h maps every key to a distinct index.
func perfect(h *simd.HashFn, keys []uint64) bool {
	var small [64]bool
	var used map[uint64]bool
	if h.Mask >= uint64(len(small)) {
		used = make(map[uint64]bool, len(keys))
	}
	for _, k := range keys {
		idx := h.Index(k)
		if used != nil {
			if used[idx] {
				return false
			}
			used[idx] = true
		} else {
			if small[idx] {
				return false
			}
			small[idx] = true
		}
	}
	return true
}

// TableDensity reports how full the jump table is: keys / table size.
func TableDensity(h *simd.HashFn, nkeys int) float64 {
	return float64(nkeys) / float64(h.Mask+1)
}

// LinearDispatchCost models the naive alternative the hash replaces:
// a chain of compare-and-branch over n keys costs 2 cycles per probe
// and on average probes half the chain.
func LinearDispatchCost(n int) int {
	if n <= 1 {
		return 2
	}
	return 2 * ((n + 1) / 2)
}
