// Package ir defines the stack-code intermediate representation that MIMD
// basic blocks are lowered into, together with the cycle-cost model used
// for meta-state time splitting (§2.4) and for all SIMD/MIMD simulation.
//
// The IR deliberately mirrors the flavor of the MPL stack macros in the
// paper's Listing 5 (Push, LdL, StL, Pop, JumpF, Ret): each MIMD state is
// a straight-line sequence of stack operations, and all control transfer
// is expressed by the block terminator, never by an in-block instruction.
package ir

import (
	"fmt"
	"math"
)

// Pos is a source position (1-based line and column) threaded from the
// front end through lowering so that diagnostics — in particular the
// vet analyses of internal/analysis — can point at real source lines.
// The zero Pos means "no position known".
type Pos struct {
	Line, Col int
}

// IsValid reports whether the position carries real source coordinates.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Before reports whether p precedes q in source order.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Type is the value type of an operand or variable.
type Type uint8

const (
	Void  Type = iota
	Int        // 64-bit signed integer
	Float      // 64-bit IEEE float
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case Int:
		return "int"
	case Float:
		return "float"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Word is the universal machine cell. Floats are stored bit-cast.
type Word int64

// FloatWord returns f encoded as a Word.
func FloatWord(f float64) Word { return Word(math.Float64bits(f)) }

// Float returns the float64 encoded in w.
func (w Word) Float() float64 { return math.Float64frombits(uint64(w)) }

// Bool converts a truth value to the canonical Word encoding (1/0).
func Bool(b bool) Word {
	if b {
		return 1
	}
	return 0
}

// Op is a stack-machine opcode.
type Op uint8

const (
	Nop Op = iota

	// Constants and addressing.
	PushC // push Imm (already encoded; Ty says how to print it)
	Dup   // duplicate top of stack
	Pop   // pop Imm values

	// PE-local memory. Imm is the word slot.
	LdLocal // push mem[Imm]
	StLocal // pop v; mem[Imm] = v (value left off the stack)

	// Mono (replicated shared) memory. Loads are local-speed; stores
	// broadcast to every PE's copy (§4.1).
	LdMono
	StMono

	// Arrays: base slot in Imm, index on stack.
	LdIndex // pop i; push mem[Imm+i]
	StIndex // pop v; pop i; mem[Imm+i] = v

	// Parallel subscripting y[[j]] (§4.1): router communication.
	LdRemote // pop pe; push remote mem[Imm] of processor pe
	StRemote // pop v; pop pe; remote mem[Imm] of processor pe = v

	// Built-in SPMD identity.
	IProc // push this PE's index
	NProc // push the machine width

	// Integer arithmetic/logic. Two-operand ops pop rhs then lhs.
	Add
	Sub
	Mul
	Div
	Mod
	Neg
	BitAnd
	BitOr
	BitXor
	BitNot
	Shl
	Shr
	LNot // logical not: push 1 if popped value == 0 else 0

	// Integer comparisons producing 0/1.
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	CmpEq
	CmpNe

	// Float arithmetic and comparisons.
	FAdd
	FSub
	FMul
	FDiv
	FNeg
	FCmpLt
	FCmpLe
	FCmpGt
	FCmpGe
	FCmpEq
	FCmpNe

	// Conversions.
	I2F
	F2I

	// PushRet pushes the return-site token Imm onto the PE's return
	// stack; the matching block terminator RetBr pops it and performs
	// the paper's return-as-multiway-branch (§2.2).
	PushRet

	numOps
)

var opNames = [numOps]string{
	Nop: "Nop", PushC: "PushC", Dup: "Dup", Pop: "Pop",
	LdLocal: "LdLocal", StLocal: "StLocal",
	LdMono: "LdMono", StMono: "StMono",
	LdIndex: "LdIndex", StIndex: "StIndex",
	LdRemote: "LdRemote", StRemote: "StRemote",
	IProc: "IProc", NProc: "NProc",
	Add: "Add", Sub: "Sub", Mul: "Mul", Div: "Div", Mod: "Mod", Neg: "Neg",
	BitAnd: "BitAnd", BitOr: "BitOr", BitXor: "BitXor", BitNot: "BitNot",
	Shl: "Shl", Shr: "Shr", LNot: "LNot",
	CmpLt: "CmpLt", CmpLe: "CmpLe", CmpGt: "CmpGt", CmpGe: "CmpGe",
	CmpEq: "CmpEq", CmpNe: "CmpNe",
	FAdd: "FAdd", FSub: "FSub", FMul: "FMul", FDiv: "FDiv", FNeg: "FNeg",
	FCmpLt: "FCmpLt", FCmpLe: "FCmpLe", FCmpGt: "FCmpGt", FCmpGe: "FCmpGe",
	FCmpEq: "FCmpEq", FCmpNe: "FCmpNe",
	I2F: "I2F", F2I: "F2I",
	PushRet: "PushRet",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cost returns the cycle cost of the op under the MasPar MP-1-flavored
// model: 4-bit PE slices make multiplies and divides expensive, the
// router (LdRemote/StRemote) dominates everything, and mono stores pay a
// broadcast. The absolute numbers are a model, not the MP-1 datasheet;
// the paper's arguments depend only on their relative magnitudes.
func (o Op) Cost() int {
	switch o {
	case Nop:
		return 0
	case PushC, Dup, Pop, IProc, NProc, PushRet:
		return 1
	case LdLocal, LdMono:
		return 2
	case StLocal:
		return 2
	case StMono:
		return 10 // broadcast update of every replica
	case LdIndex, StIndex:
		return 3
	case LdRemote, StRemote:
		return 24 // global router transaction
	case Add, Sub, Neg, BitAnd, BitOr, BitXor, BitNot, Shl, Shr, LNot:
		return 1
	case CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe:
		return 1
	case Mul:
		return 6
	case Div, Mod:
		return 14
	case FAdd, FSub, FNeg:
		return 4
	case FMul:
		return 8
	case FDiv:
		return 20
	case FCmpLt, FCmpLe, FCmpGt, FCmpGe, FCmpEq, FCmpNe:
		return 4
	case I2F, F2I:
		return 3
	}
	return 1
}

// IsFloat reports whether the op consumes/produces float operands.
func (o Op) IsFloat() bool {
	switch o {
	case FAdd, FSub, FMul, FDiv, FNeg, FCmpLt, FCmpLe, FCmpGt, FCmpGe, FCmpEq, FCmpNe:
		return true
	}
	return false
}

// StackDelta returns the net change in evaluation-stack depth, so that
// block-level stack balance can be verified.
func (o Op) StackDelta(imm int64) int {
	switch o {
	case PushC, Dup, LdLocal, LdMono, IProc, NProc:
		return +1
	case Pop:
		return -int(imm)
	case StLocal, StMono, StIndex, StRemote:
		if o == StIndex || o == StRemote {
			return -2
		}
		return -1
	case LdIndex, LdRemote:
		return 0 // pop index/pe, push value
	case Add, Sub, Mul, Div, Mod, BitAnd, BitOr, BitXor, Shl, Shr,
		CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe,
		FAdd, FSub, FMul, FDiv, FCmpLt, FCmpLe, FCmpGt, FCmpGe, FCmpEq, FCmpNe:
		return -1
	case Neg, BitNot, LNot, FNeg, I2F, F2I:
		return 0
	case PushRet, Nop:
		return 0
	}
	return 0
}

// Instr is one stack instruction. Sym carries the source-level name of
// the variable for LdLocal/StLocal/etc., and Pos the source position of
// the expression that produced the instruction; both exist only for
// diagnostics and the MPL-like emitter and never affect execution.
type Instr struct {
	Op  Op
	Imm int64
	Ty  Type
	Sym string
	Pos Pos
}

// Canon returns the instruction with diagnostic-only position stripped,
// for value-identity comparisons (CSI classes, schedule alignment): two
// instructions from different source lines are still the same broadcast.
func (in Instr) Canon() Instr {
	in.Pos = Pos{}
	return in
}

func (in Instr) String() string {
	switch in.Op {
	case PushC:
		if in.Ty == Float {
			return fmt.Sprintf("PushC(%g)", Word(in.Imm).Float())
		}
		return fmt.Sprintf("PushC(%d)", in.Imm)
	case Pop:
		return fmt.Sprintf("Pop(%d)", in.Imm)
	case LdLocal, StLocal, LdMono, StMono, LdIndex, StIndex, LdRemote, StRemote:
		if in.Sym != "" {
			return fmt.Sprintf("%s(%d:%s)", in.Op, in.Imm, in.Sym)
		}
		return fmt.Sprintf("%s(%d)", in.Op, in.Imm)
	case PushRet:
		return fmt.Sprintf("PushRet(%d)", in.Imm)
	default:
		return in.Op.String()
	}
}

// Cost returns the instruction's cycle cost.
func (in Instr) Cost() int { return in.Op.Cost() }

// CodeCost sums the cycle cost of a code sequence.
func CodeCost(code []Instr) int {
	n := 0
	for _, in := range code {
		n += in.Cost()
	}
	return n
}

// StackBalance returns the net stack delta of a code sequence and the
// minimum depth reached relative to entry (≤0 means pops below entry
// depth, which is legal only when the block is entered with values on
// the stack — our lowering never does that, so cfg verification rejects
// negative minimums).
func StackBalance(code []Instr) (net, minDepth int) {
	d := 0
	for _, in := range code {
		// Account for pops before pushes within one op where it matters.
		switch in.Op {
		case StIndex, StRemote:
			d -= 2
		case StLocal, StMono:
			d--
		case LdIndex, LdRemote:
			d-- // index popped first...
			if d < minDepth {
				minDepth = d
			}
			d++ // ...then value pushed
			continue
		case Pop:
			d -= int(in.Imm)
		case Add, Sub, Mul, Div, Mod, BitAnd, BitOr, BitXor, Shl, Shr,
			CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe,
			FAdd, FSub, FMul, FDiv, FCmpLt, FCmpLe, FCmpGt, FCmpGe, FCmpEq, FCmpNe:
			d -= 2
			if d < minDepth {
				minDepth = d
			}
			d++
			continue
		case Neg, BitNot, LNot, FNeg, I2F, F2I:
			d--
			if d < minDepth {
				minDepth = d
			}
			d++
			continue
		case Dup:
			d--
			if d < minDepth {
				minDepth = d
			}
			d += 2
			continue
		case PushC, LdLocal, LdMono, IProc, NProc:
			d++
		case PushRet, Nop:
		}
		if d < minDepth {
			minDepth = d
		}
	}
	return d, minDepth
}
