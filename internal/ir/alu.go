package ir

import "fmt"

// The ALU helpers give every execution engine (the MIMD reference
// simulator, the MIMD-on-SIMD interpreter, and the SIMD VM) identical
// arithmetic semantics, so cross-engine equivalence is exact:
//
//   - integer division/modulo by zero yields 0 (the machine is total;
//     SIMD lockstep cannot trap a single PE);
//   - shift counts are masked to 6 bits;
//   - float comparisons produce int 0/1.

// EvalBinary applies a two-operand opcode to (a, b) = (lhs, rhs).
func EvalBinary(op Op, a, b Word) Word {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	case Mod:
		if b == 0 {
			return 0
		}
		return a % b
	case BitAnd:
		return a & b
	case BitOr:
		return a | b
	case BitXor:
		return a ^ b
	case Shl:
		return a << (uint64(b) & 63)
	case Shr:
		return a >> (uint64(b) & 63)
	case CmpLt:
		return Bool(a < b)
	case CmpLe:
		return Bool(a <= b)
	case CmpGt:
		return Bool(a > b)
	case CmpGe:
		return Bool(a >= b)
	case CmpEq:
		return Bool(a == b)
	case CmpNe:
		return Bool(a != b)
	case FAdd:
		return FloatWord(a.Float() + b.Float())
	case FSub:
		return FloatWord(a.Float() - b.Float())
	case FMul:
		return FloatWord(a.Float() * b.Float())
	case FDiv:
		return FloatWord(a.Float() / b.Float())
	case FCmpLt:
		return Bool(a.Float() < b.Float())
	case FCmpLe:
		return Bool(a.Float() <= b.Float())
	case FCmpGt:
		return Bool(a.Float() > b.Float())
	case FCmpGe:
		return Bool(a.Float() >= b.Float())
	case FCmpEq:
		return Bool(a.Float() == b.Float())
	case FCmpNe:
		return Bool(a.Float() != b.Float())
	}
	panic(fmt.Sprintf("ir: EvalBinary of non-binary op %v", op))
}

// IsBinary reports whether op is a two-operand ALU opcode.
func IsBinary(op Op) bool {
	switch op {
	case Add, Sub, Mul, Div, Mod, BitAnd, BitOr, BitXor, Shl, Shr,
		CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe,
		FAdd, FSub, FMul, FDiv,
		FCmpLt, FCmpLe, FCmpGt, FCmpGe, FCmpEq, FCmpNe:
		return true
	}
	return false
}

// EvalUnary applies a one-operand opcode.
func EvalUnary(op Op, a Word) Word {
	switch op {
	case Neg:
		return -a
	case BitNot:
		return ^a
	case LNot:
		return Bool(a == 0)
	case FNeg:
		return FloatWord(-a.Float())
	case I2F:
		return FloatWord(float64(a))
	case F2I:
		return Word(int64(a.Float()))
	}
	panic(fmt.Sprintf("ir: EvalUnary of non-unary op %v", op))
}

// IsUnary reports whether op is a one-operand ALU opcode.
func IsUnary(op Op) bool {
	switch op {
	case Neg, BitNot, LNot, FNeg, I2F, F2I:
		return true
	}
	return false
}

// Truth reports the branch interpretation of a condition word.
func Truth(w Word) bool { return w != 0 }
