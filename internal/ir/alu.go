package ir

import (
	"fmt"
	"math"
)

// The ALU helpers give every execution engine (the MIMD reference
// simulator, the MIMD-on-SIMD interpreter, and the SIMD VM) identical
// arithmetic semantics, so cross-engine equivalence is exact:
//
//   - integer division/modulo by zero yields 0 (the machine is total;
//     SIMD lockstep cannot trap a single PE);
//   - shift counts are masked to 6 bits;
//   - float comparisons produce int 0/1.

// EvalBinary applies a two-operand opcode to (a, b) = (lhs, rhs).
func EvalBinary(op Op, a, b Word) Word {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	case Mod:
		if b == 0 {
			return 0
		}
		return a % b
	case BitAnd:
		return a & b
	case BitOr:
		return a | b
	case BitXor:
		return a ^ b
	case Shl:
		return a << (uint64(b) & 63)
	case Shr:
		return a >> (uint64(b) & 63)
	case CmpLt:
		return Bool(a < b)
	case CmpLe:
		return Bool(a <= b)
	case CmpGt:
		return Bool(a > b)
	case CmpGe:
		return Bool(a >= b)
	case CmpEq:
		return Bool(a == b)
	case CmpNe:
		return Bool(a != b)
	case FAdd:
		return FloatWord(a.Float() + b.Float())
	case FSub:
		return FloatWord(a.Float() - b.Float())
	case FMul:
		return FloatWord(a.Float() * b.Float())
	case FDiv:
		return FloatWord(a.Float() / b.Float())
	case FCmpLt:
		return Bool(a.Float() < b.Float())
	case FCmpLe:
		return Bool(a.Float() <= b.Float())
	case FCmpGt:
		return Bool(a.Float() > b.Float())
	case FCmpGe:
		return Bool(a.Float() >= b.Float())
	case FCmpEq:
		return Bool(a.Float() == b.Float())
	case FCmpNe:
		return Bool(a.Float() != b.Float())
	}
	panic(fmt.Sprintf("ir: EvalBinary of non-binary op %v", op))
}

// IsBinary reports whether op is a two-operand ALU opcode.
func IsBinary(op Op) bool {
	switch op {
	case Add, Sub, Mul, Div, Mod, BitAnd, BitOr, BitXor, Shl, Shr,
		CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe,
		FAdd, FSub, FMul, FDiv,
		FCmpLt, FCmpLe, FCmpGt, FCmpGe, FCmpEq, FCmpNe:
		return true
	}
	return false
}

// EvalUnary applies a one-operand opcode.
func EvalUnary(op Op, a Word) Word {
	switch op {
	case Neg:
		return -a
	case BitNot:
		return ^a
	case LNot:
		return Bool(a == 0)
	case FNeg:
		return FloatWord(-a.Float())
	case I2F:
		return FloatWord(float64(a))
	case F2I:
		return Word(int64(a.Float()))
	}
	panic(fmt.Sprintf("ir: EvalUnary of non-unary op %v", op))
}

// IsUnary reports whether op is a one-operand ALU opcode.
func IsUnary(op Op) bool {
	switch op {
	case Neg, BitNot, LNot, FNeg, I2F, F2I:
		return true
	}
	return false
}

// FoldBinary is the compile-time counterpart of EvalBinary: it refuses
// (ok=false) any fold whose runtime result is suspicious enough that
// constant propagation should degrade to not-a-constant instead of
// baking the value in — integer division or modulo by constant zero
// (the machine totalizes these to 0, but a constant zero divisor is
// almost certainly a source bug worth a vet diagnostic, not a silent
// fold) and any signed-integer overflow (Add/Sub/Mul wrap at runtime;
// a fold that wraps hides the wrap from the programmer). Float ops and
// comparisons fold freely: their runtime semantics are exact IEEE and
// total. When ok is true the result is bit-identical to EvalBinary.
func FoldBinary(op Op, a, b Word) (Word, bool) {
	switch op {
	case Div, Mod:
		if b == 0 {
			return 0, false
		}
		// MinInt64 / -1 overflows (and panics in Go); the engines never
		// execute it through EvalBinary without the b==0 guard, but the
		// quotient -MinInt64 is unrepresentable, so refuse the fold.
		if a == math.MinInt64 && b == -1 {
			return 0, false
		}
	case Add:
		s := a + b
		if (s > a) != (b > 0) {
			return 0, false
		}
	case Sub:
		d := a - b
		if (d < a) != (b > 0) {
			return 0, false
		}
	case Mul:
		if a != 0 && b != 0 {
			p := a * b
			if p/b != a || (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64) {
				return 0, false
			}
		}
	case Shl:
		// Refuse shifts that lose significant bits (the runtime wraps).
		sh := uint64(b) & 63
		v := a << sh
		if v>>sh != a {
			return 0, false
		}
	}
	return EvalBinary(op, a, b), true
}

// FoldUnary is the compile-time counterpart of EvalUnary; it refuses
// the single overflowing case, Neg of MinInt64 (which wraps to itself
// at runtime).
func FoldUnary(op Op, a Word) (Word, bool) {
	if op == Neg && a == math.MinInt64 {
		return 0, false
	}
	return EvalUnary(op, a), true
}

// Truth reports the branch interpretation of a condition word.
func Truth(w Word) bool { return w != 0 }
