package ir

import (
	"testing"
	"testing/quick"
)

func TestEvalBinaryIntOps(t *testing.T) {
	cases := []struct {
		op      Op
		a, b, w Word
	}{
		{Add, 3, 4, 7},
		{Sub, 3, 4, -1},
		{Mul, -3, 4, -12},
		{Div, 13, 4, 3},
		{Div, -13, 4, -3}, // Go truncated division
		{Div, 13, 0, 0},   // total machine: /0 = 0
		{Mod, 13, 4, 1},
		{Mod, -13, 4, -1},
		{Mod, 13, 0, 0},
		{BitAnd, 0b1100, 0b1010, 0b1000},
		{BitOr, 0b1100, 0b1010, 0b1110},
		{BitXor, 0b1100, 0b1010, 0b0110},
		{Shl, 1, 4, 16},
		{Shl, 1, 64, 1}, // shift counts masked to 6 bits
		{Shl, 1, 65, 2},
		{Shr, 16, 2, 4},
		{Shr, -1, 63, -1}, // arithmetic shift: sign bit replicates
		{CmpLt, 1, 2, 1},
		{CmpLt, 2, 1, 0},
		{CmpLe, 2, 2, 1},
		{CmpGt, 3, 2, 1},
		{CmpGe, 2, 3, 0},
		{CmpEq, 5, 5, 1},
		{CmpNe, 5, 5, 0},
	}
	for _, c := range cases {
		if got := EvalBinary(c.op, c.a, c.b); got != c.w {
			t.Errorf("%v(%d, %d) = %d, want %d", c.op, c.a, c.b, got, c.w)
		}
	}
}

func TestShrIsArithmetic(t *testing.T) {
	// Word is int64, so Shr replicates the sign bit.
	if got := EvalBinary(Shr, -8, 1); got != -4 {
		t.Fatalf("Shr(-8, 1) = %d, want -4 (arithmetic shift)", got)
	}
}

func TestEvalBinaryFloatOps(t *testing.T) {
	f := func(x float64) Word { return FloatWord(x) }
	cases := []struct {
		op   Op
		a, b Word
		want Word
	}{
		{FAdd, f(1.5), f(2.25), f(3.75)},
		{FSub, f(1.5), f(2.25), f(-0.75)},
		{FMul, f(1.5), f(4), f(6)},
		{FDiv, f(3), f(2), f(1.5)},
		{FCmpLt, f(1), f(2), 1},
		{FCmpLe, f(2), f(2), 1},
		{FCmpGt, f(1), f(2), 0},
		{FCmpGe, f(2), f(2), 1},
		{FCmpEq, f(2), f(2), 1},
		{FCmpNe, f(2), f(2), 0},
	}
	for _, c := range cases {
		if got := EvalBinary(c.op, c.a, c.b); got != c.want {
			t.Errorf("%v = %v, want %v", c.op, got, c.want)
		}
	}
	// Float division by zero follows IEEE (inf), not the integer rule.
	if got := EvalBinary(FDiv, f(1), f(0)).Float(); got <= 0 || got == got-1 {
		_ = got // +Inf: got > 0 and got-1 == got
	}
}

func TestEvalUnary(t *testing.T) {
	cases := []struct {
		op      Op
		a, want Word
	}{
		{Neg, 5, -5},
		{BitNot, 0, -1},
		{LNot, 0, 1},
		{LNot, 7, 0},
		{FNeg, FloatWord(2.5), FloatWord(-2.5)},
		{I2F, 3, FloatWord(3)},
		{F2I, FloatWord(3.9), 3},
		{F2I, FloatWord(-3.9), -3},
	}
	for _, c := range cases {
		if got := EvalUnary(c.op, c.a); got != c.want {
			t.Errorf("%v(%d) = %d, want %d", c.op, c.a, got, c.want)
		}
	}
}

func TestEvalPanicsOnWrongArity(t *testing.T) {
	assertPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanic("EvalBinary(Neg)", func() { EvalBinary(Neg, 1, 2) })
	assertPanic("EvalUnary(Add)", func() { EvalUnary(Add, 1) })
}

func TestIsBinaryIsUnaryPartition(t *testing.T) {
	for op := Nop; op < numOps; op++ {
		if IsBinary(op) && IsUnary(op) {
			t.Errorf("%v is both binary and unary", op)
		}
	}
	// Every ALU op is classified.
	for _, op := range []Op{Add, Sub, Mul, Div, Mod, BitAnd, BitOr, BitXor,
		Shl, Shr, CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe,
		FAdd, FSub, FMul, FDiv, FCmpLt, FCmpLe, FCmpGt, FCmpGe, FCmpEq, FCmpNe} {
		if !IsBinary(op) {
			t.Errorf("%v not IsBinary", op)
		}
	}
	for _, op := range []Op{Neg, BitNot, LNot, FNeg, I2F, F2I} {
		if !IsUnary(op) {
			t.Errorf("%v not IsUnary", op)
		}
	}
	for _, op := range []Op{PushC, LdLocal, StLocal, Pop, Dup, PushRet, Nop} {
		if IsBinary(op) || IsUnary(op) {
			t.Errorf("%v misclassified as ALU", op)
		}
	}
}

func TestTruth(t *testing.T) {
	if Truth(0) || !Truth(1) || !Truth(-5) {
		t.Fatal("Truth wrong")
	}
}

func TestQuickDivModIdentity(t *testing.T) {
	// For b != 0: a == (a/b)*b + a%b (Go semantics shared by all engines).
	f := func(a, b int64) bool {
		if b == 0 {
			return EvalBinary(Div, Word(a), 0) == 0 && EvalBinary(Mod, Word(a), 0) == 0
		}
		q := EvalBinary(Div, Word(a), Word(b))
		r := EvalBinary(Mod, Word(a), Word(b))
		return int64(q)*b+int64(r) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComparisonTrichotomy(t *testing.T) {
	f := func(a, b int64) bool {
		lt := EvalBinary(CmpLt, Word(a), Word(b))
		eq := EvalBinary(CmpEq, Word(a), Word(b))
		gt := EvalBinary(CmpGt, Word(a), Word(b))
		return lt+eq+gt == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloatRoundTripOps(t *testing.T) {
	f := func(a, b float64) bool {
		if a != a || b != b {
			return true // skip NaN inputs
		}
		sum := EvalBinary(FAdd, FloatWord(a), FloatWord(b)).Float()
		return sum == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFoldBinaryRefusals(t *testing.T) {
	const min, max = Word(-1 << 63), Word(1<<63 - 1)
	cases := []struct {
		name string
		op   Op
		a, b Word
		want Word
		ok   bool
	}{
		// Plain folds agree with EvalBinary bit for bit.
		{"add", Add, 3, 4, 7, true},
		{"sub", Sub, 3, 4, -1, true},
		{"mul", Mul, -3, 4, -12, true},
		{"div", Div, 13, 4, 3, true},
		{"mod", Mod, -13, 4, -1, true},
		{"shl", Shl, 1, 4, 16, true},
		{"shl-neg-preserved", Shl, -2, 1, -4, true},
		{"shr", Shr, -8, 1, -4, true},
		{"cmp", CmpLt, 1, 2, 1, true},

		// Division and modulo by constant zero degrade to ⊤: the machine
		// totalizes them to 0 at runtime, but the fold must not bake a
		// silent 0 in.
		{"div-by-zero", Div, 13, 0, 0, false},
		{"mod-by-zero", Mod, 13, 0, 0, false},
		{"div-min-by-minus-one", Div, min, -1, 0, false},
		{"mod-min-by-minus-one", Mod, min, -1, 0, false},

		// Signed overflow degrades to ⊤ instead of folding the wrap.
		{"add-overflow", Add, max, 1, 0, false},
		{"add-underflow", Add, min, -1, 0, false},
		{"add-max-ok", Add, max, 0, max, true},
		{"sub-overflow", Sub, min, 1, 0, false},
		{"sub-underflow", Sub, max, -1, 0, false},
		{"mul-overflow", Mul, max, 2, 0, false},
		{"mul-min-minus-one", Mul, min, -1, 0, false},
		{"mul-minus-one-min", Mul, -1, min, 0, false},
		{"mul-by-zero-ok", Mul, max, 0, 0, true},
		{"shl-lost-bits", Shl, max, 1, 0, false},
		{"shl-sign-lost", Shl, 1, 63, 0, false},
	}
	for _, c := range cases {
		got, ok := FoldBinary(c.op, c.a, c.b)
		if ok != c.ok {
			t.Errorf("%s: FoldBinary(%v, %d, %d) ok=%v, want %v", c.name, c.op, c.a, c.b, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if got != c.want {
			t.Errorf("%s: FoldBinary(%v, %d, %d) = %d, want %d", c.name, c.op, c.a, c.b, got, c.want)
		}
		if ev := EvalBinary(c.op, c.a, c.b); got != ev {
			t.Errorf("%s: fold %d disagrees with runtime %d", c.name, got, ev)
		}
	}
}

func TestFoldUnaryRefusals(t *testing.T) {
	const min = Word(-1 << 63)
	if _, ok := FoldUnary(Neg, min); ok {
		t.Error("FoldUnary(Neg, MinInt64) must refuse (wraps to itself at runtime)")
	}
	for _, c := range []struct {
		op      Op
		a, want Word
	}{
		{Neg, 5, -5}, {BitNot, 0, -1}, {LNot, 0, 1}, {F2I, FloatWord(3.9), 3},
	} {
		got, ok := FoldUnary(c.op, c.a)
		if !ok || got != c.want {
			t.Errorf("FoldUnary(%v, %d) = (%d, %v), want (%d, true)", c.op, c.a, got, ok, c.want)
		}
	}
}

func TestQuickFoldMatchesEval(t *testing.T) {
	// Whenever a fold is accepted, it must be bit-identical to the
	// runtime semantics every engine shares.
	f := func(a, b int64, opSel uint8) bool {
		ops := []Op{Add, Sub, Mul, Div, Mod, BitAnd, BitOr, BitXor, Shl, Shr,
			CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe}
		op := ops[int(opSel)%len(ops)]
		v, ok := FoldBinary(op, Word(a), Word(b))
		return !ok || v == EvalBinary(op, Word(a), Word(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsFloatClassifier(t *testing.T) {
	if !FAdd.IsFloat() || !FCmpNe.IsFloat() {
		t.Error("float ops not classified")
	}
	if Add.IsFloat() || CmpEq.IsFloat() || I2F.IsFloat() {
		t.Error("int/conversion ops classified as float")
	}
}
