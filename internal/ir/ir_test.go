package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFloatWordRoundtrip(t *testing.T) {
	f := func(x float64) bool { return FloatWord(x).Float() == x || x != x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBool(t *testing.T) {
	if Bool(true) != 1 || Bool(false) != 0 {
		t.Fatalf("Bool encoding wrong")
	}
}

func TestOpStrings(t *testing.T) {
	for o := Nop; o < numOps; o++ {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no name", o)
		}
	}
	if Op(200).String() != "op(200)" {
		t.Errorf("unknown op formatting wrong")
	}
}

func TestCostsPositiveAndOrdered(t *testing.T) {
	for o := PushC; o < numOps; o++ {
		if o.Cost() <= 0 {
			t.Errorf("%v cost %d not positive", o, o.Cost())
		}
	}
	if Nop.Cost() != 0 {
		t.Errorf("Nop should be free")
	}
	// The model's load-bearing relative magnitudes.
	if !(LdRemote.Cost() > StMono.Cost() && StMono.Cost() > LdLocal.Cost()) {
		t.Errorf("router > broadcast > local ordering violated")
	}
	if !(Div.Cost() > Mul.Cost() && Mul.Cost() > Add.Cost()) {
		t.Errorf("div > mul > add ordering violated")
	}
	if !(FDiv.Cost() > FMul.Cost() && FMul.Cost() > FAdd.Cost()) {
		t.Errorf("float op ordering violated")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: PushC, Imm: 42, Ty: Int}, "PushC(42)"},
		{Instr{Op: PushC, Imm: int64(FloatWord(1.5)), Ty: Float}, "PushC(1.5)"},
		{Instr{Op: Pop, Imm: 2}, "Pop(2)"},
		{Instr{Op: LdLocal, Imm: 3, Sym: "x"}, "LdLocal(3:x)"},
		{Instr{Op: StMono, Imm: 0}, "StMono(0)"},
		{Instr{Op: PushRet, Imm: 7}, "PushRet(7)"},
		{Instr{Op: Add}, "Add"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestCodeCost(t *testing.T) {
	code := []Instr{{Op: PushC, Imm: 1}, {Op: LdLocal}, {Op: Add}, {Op: StLocal}}
	want := PushC.Cost() + LdLocal.Cost() + Add.Cost() + StLocal.Cost()
	if got := CodeCost(code); got != want {
		t.Fatalf("CodeCost = %d, want %d", got, want)
	}
}

func TestStackBalance(t *testing.T) {
	cases := []struct {
		name    string
		code    []Instr
		net     int
		minNeg  bool
		wantMin int
	}{
		{"assign x=1", []Instr{
			{Op: PushC, Imm: 1}, {Op: StLocal, Imm: 0},
		}, 0, false, 0},
		{"cond load", []Instr{
			{Op: LdLocal, Imm: 0},
		}, 1, false, 0},
		{"binary", []Instr{
			{Op: PushC, Imm: 1}, {Op: PushC, Imm: 2}, {Op: Add}, {Op: Pop, Imm: 1},
		}, 0, false, 0},
		{"underflow", []Instr{
			{Op: Add},
		}, -1, true, -2},
		{"array store", []Instr{
			{Op: PushC, Imm: 3}, {Op: PushC, Imm: 9}, {Op: StIndex, Imm: 4},
		}, 0, false, 0},
		{"remote load", []Instr{
			{Op: IProc}, {Op: LdRemote, Imm: 2}, {Op: Pop, Imm: 1},
		}, 0, false, 0},
		{"dup", []Instr{
			{Op: PushC, Imm: 5}, {Op: Dup}, {Op: Pop, Imm: 2},
		}, 0, false, 0},
		{"unary needs operand", []Instr{
			{Op: LdLocal}, {Op: Neg}, {Op: StLocal},
		}, 0, false, 0},
	}
	for _, c := range cases {
		net, min := StackBalance(c.code)
		if net != c.net {
			t.Errorf("%s: net = %d, want %d", c.name, net, c.net)
		}
		if c.minNeg && min >= 0 {
			t.Errorf("%s: min = %d, want negative", c.name, min)
		}
		if !c.minNeg && min < 0 {
			t.Errorf("%s: min = %d, want non-negative", c.name, min)
		}
	}
}

func TestTypeString(t *testing.T) {
	if Void.String() != "void" || Int.String() != "int" || Float.String() != "float" {
		t.Fatalf("type names wrong")
	}
	if Type(9).String() != "type(9)" {
		t.Fatalf("unknown type formatting wrong")
	}
}
