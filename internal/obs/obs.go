// Package obs is the observability layer for the whole pipeline: a
// zero-dependency (standard library only) recorder for compile-phase
// wall times and domain counters, a typed event stream that replaces
// free-form execution tracing, and production wiring for net/http/pprof
// and expvar. Every package in the compiler and every execution engine
// reports through these types, so the quantitative claims of the paper
// (meta-state counts, compression ratios, CSI savings, cycle budgets)
// are observable from one place instead of scattered Fprintf writers.
//
// The Recorder is deliberately generic — ordered named counters and
// phases — so internal packages need no schema coordination; the typed
// view over the well-known names lives with the pipeline driver (the
// root package's CompileStats). All Recorder methods are safe on a nil
// receiver, so instrumented code never has to guard the hook.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"msc/internal/telemetry"
)

// Well-known counter names recorded by the compile pipeline. The
// glossary lives in docs/OBSERVABILITY.md.
const (
	CounterTokens          = "parse.tokens"
	CounterBlocksBefore    = "cfg.blocks_before_simplify"
	CounterBlocksAfter     = "cfg.blocks_after_simplify"
	CounterMetaExplored    = "convert.meta_explored"
	CounterMetaMerged      = "convert.meta_merged"
	CounterMetaFiltered    = "convert.aggregates_barrier_filtered"
	CounterWorklistHigh    = "convert.worklist_high_water"
	CounterRestarts        = "convert.restarts"
	CounterSplits          = "convert.splits"
	CounterCSISavedCycles  = "codegen.csi_saved_cycles"
	CounterHashTried       = "codegen.hash_candidates_tried"
	CounterHashTables      = "codegen.hash_tables_built"
	CounterMetaStates      = "convert.meta_states"
	CounterMIMDStates      = "convert.mimd_states"
	CounterCSISlotsSaved   = "codegen.csi_slots_saved"
	CounterDispatchEntries = "codegen.dispatch_entries"
	CounterVetDiags        = "vet.diagnostics"
	CounterVetErrors       = "vet.errors"
	CounterVetWarnings     = "vet.warnings"

	// Optimizer counters (the internal/opt pass pipeline, Config.Opt).
	CounterOptConstFolds     = "opt.const_folds"
	CounterOptDeadStores     = "opt.dead_stores"
	CounterOptBranchesPruned = "opt.branches_pruned"
	CounterOptCopiesProp     = "opt.copies_propagated"
	CounterOptRounds         = "opt.rounds"

	// Conversion-core counters (the hash-consed interner, contribution
	// memo, and parallel frontier expansion; see docs/PERFORMANCE.md).
	CounterInternHits      = "convert.intern_hits"
	CounterContribMemoHits = "convert.contrib_memo_hits"
	CounterParallelGens    = "convert.parallel_generations"
	CounterConvertWorkers  = "convert.workers"
	CounterMergeScanned    = "convert.merge_candidates_scanned"

	// Robustness counters (resource budgets and the graceful-degradation
	// ladder; see docs/ROBUSTNESS.md). Budget overruns are recorded per
	// resource under BudgetCounterPrefix, e.g. "budget.meta_states".
	CounterDegradeSteps = "degrade.steps"

	// Artifact-cache counters (see docs/CACHE.md). PipelineRuns counts
	// real pipeline executions — a cache hit or a shared single-flight
	// result serves a compile without incrementing it, which is exactly
	// what the dedup tests assert.
	CounterPipelineRuns     = "compile.pipeline_runs"
	CounterCacheHits        = "cache.hits"
	CounterCacheMisses      = "cache.misses"
	CounterCacheErrors      = "cache.errors"
	CounterCacheQuarantined = "cache.quarantined"
	CounterCacheStores      = "cache.stores"
	CounterCacheShared      = "cache.singleflight_shared"
)

// BudgetCounterPrefix prefixes per-resource budget-overrun counters
// ("budget.meta_states", "budget.wall_clock", ...). Sum them with
// Metrics.PrefixSum.
const BudgetCounterPrefix = "budget."

// Phase names recorded by msc.Compile, in pipeline order.
const (
	PhaseParse    = "parse"
	PhaseAnalyze  = "analyze"
	PhaseLower    = "lower"
	PhaseSimplify = "simplify"
	PhaseOpt      = "opt" // only present when Config.Opt > 0
	PhaseConvert  = "convert"
	PhaseCheck    = "check"
	PhaseVet      = "vet"
	PhaseCodegen  = "codegen"
)

// Counter is one named monotonic value.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Phase is one named wall-time measurement.
type Phase struct {
	Name string        `json:"name"`
	Wall time.Duration `json:"wall_ns"`
}

// PhaseMetricPrefix prefixes phase wall times when they appear in a
// telemetry registry ("phase.parse" holds parse wall nanoseconds).
const PhaseMetricPrefix = "phase."

// Recorder accumulates phases and counters. It is safe for concurrent
// use and all methods are no-ops on a nil receiver, so callers thread
// an optional *Recorder without nil checks at every site.
//
// Values live in a telemetry.Registry — the single metrics source of
// truth — so anything a Recorder records is also visible to Prometheus
// scrapes of that registry. The Recorder itself only keeps the
// first-use ordering that makes Snapshot output byte-stable. Phase wall
// times are registry counters holding nanoseconds under
// PhaseMetricPrefix + name.
type Recorder struct {
	mu         sync.Mutex
	reg        *telemetry.Registry
	phaseOrder []string
	phaseByN   map[string]*telemetry.Counter
	countOrder []string
	countByN   map[string]*telemetry.Counter
}

// NewRecorder returns an empty recorder backed by its own registry.
func NewRecorder() *Recorder { return &Recorder{} }

// NewRecorderIn returns a recorder whose values land in reg, so one
// registry can aggregate pipeline counters with other telemetry (engine
// histograms, trace-derived metrics) for a single /metrics exposition.
func NewRecorderIn(reg *telemetry.Registry) *Recorder {
	return &Recorder{reg: reg}
}

// Registry returns the backing telemetry registry, creating it on
// first use; nil for a nil recorder.
func (r *Recorder) Registry() *telemetry.Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.registry()
}

// registry lazily initializes the backing registry; callers hold r.mu.
func (r *Recorder) registry() *telemetry.Registry {
	if r.reg == nil {
		r.reg = telemetry.NewRegistry()
	}
	return r.reg
}

func (r *Recorder) phaseSlot(name string) *telemetry.Counter {
	if r.phaseByN == nil {
		r.phaseByN = make(map[string]*telemetry.Counter)
	}
	c, ok := r.phaseByN[name]
	if !ok {
		c = r.registry().Counter(PhaseMetricPrefix+name, "phase wall time (ns)")
		r.phaseByN[name] = c
		r.phaseOrder = append(r.phaseOrder, name)
	}
	return c
}

func (r *Recorder) counterSlot(name string) *telemetry.Counter {
	if r.countByN == nil {
		r.countByN = make(map[string]*telemetry.Counter)
	}
	c, ok := r.countByN[name]
	if !ok {
		c = r.registry().Counter(name, "")
		r.countByN[name] = c
		r.countOrder = append(r.countOrder, name)
	}
	return c
}

// Phase starts timing the named phase and returns the stop function;
// repeated runs of the same phase accumulate.
func (r *Recorder) Phase(name string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() { r.AddPhase(name, time.Since(start)) }
}

// AddPhase adds wall time to the named phase.
func (r *Recorder) AddPhase(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	c := r.phaseSlot(name)
	r.mu.Unlock()
	c.Add(int64(d))
}

// Add adds delta to the named counter, creating it at zero first.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	c := r.counterSlot(name)
	r.mu.Unlock()
	c.Add(delta)
}

// Set sets the named counter.
func (r *Recorder) Set(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	c := r.counterSlot(name)
	r.mu.Unlock()
	c.Set(v)
}

// Max raises the named counter to v if v is larger (high-water marks).
func (r *Recorder) Max(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	c := r.counterSlot(name)
	r.mu.Unlock()
	c.Max(v)
}

// Value returns the named counter (zero when absent or nil receiver).
func (r *Recorder) Value(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.countByN[name]
	r.mu.Unlock()
	return c.Value() // nil-safe: reads zero when absent
}

// PhaseWall returns the accumulated wall time of the named phase.
func (r *Recorder) PhaseWall(name string) time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.phaseByN[name]
	r.mu.Unlock()
	return time.Duration(c.Value())
}

// Snapshot returns a consistent copy of everything recorded so far.
func (r *Recorder) Snapshot() *Metrics {
	m := &Metrics{}
	if r == nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m.Phases = make([]Phase, 0, len(r.phaseOrder))
	for _, name := range r.phaseOrder {
		m.Phases = append(m.Phases, Phase{Name: name, Wall: time.Duration(r.phaseByN[name].Value())})
	}
	m.Counters = make([]Counter, 0, len(r.countOrder))
	for _, name := range r.countOrder {
		m.Counters = append(m.Counters, Counter{Name: name, Value: r.countByN[name].Value()})
	}
	return m
}

// Metrics is a point-in-time copy of a Recorder: the typed struct form
// of the compile metrics, directly JSON-encodable.
type Metrics struct {
	Phases   []Phase   `json:"phases"`
	Counters []Counter `json:"counters"`
}

// Counter returns the named counter value, or zero.
func (m *Metrics) Counter(name string) int64 {
	for _, c := range m.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// PrefixSum sums every counter whose name starts with prefix; use it
// with BudgetCounterPrefix to total budget overruns across resources.
func (m *Metrics) PrefixSum(prefix string) int64 {
	var sum int64
	for _, c := range m.Counters {
		if strings.HasPrefix(c.Name, prefix) {
			sum += c.Value
		}
	}
	return sum
}

// JSON encodes the metrics as indented JSON.
func (m *Metrics) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// String renders an aligned human-readable table: phases in recording
// order, counters sorted by name.
func (m *Metrics) String() string {
	var sb strings.Builder
	for _, p := range m.Phases {
		fmt.Fprintf(&sb, "phase %-12s %12.3fms\n", p.Name, float64(p.Wall)/1e6)
	}
	cs := append([]Counter(nil), m.Counters...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	for _, c := range cs {
		fmt.Fprintf(&sb, "%-40s %12d\n", c.Name, c.Value)
	}
	return sb.String()
}
