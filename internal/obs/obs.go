// Package obs is the observability layer for the whole pipeline: a
// zero-dependency (standard library only) recorder for compile-phase
// wall times and domain counters, a typed event stream that replaces
// free-form execution tracing, and production wiring for net/http/pprof
// and expvar. Every package in the compiler and every execution engine
// reports through these types, so the quantitative claims of the paper
// (meta-state counts, compression ratios, CSI savings, cycle budgets)
// are observable from one place instead of scattered Fprintf writers.
//
// The Recorder is deliberately generic — ordered named counters and
// phases — so internal packages need no schema coordination; the typed
// view over the well-known names lives with the pipeline driver (the
// root package's CompileStats). All Recorder methods are safe on a nil
// receiver, so instrumented code never has to guard the hook.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Well-known counter names recorded by the compile pipeline. The
// glossary lives in docs/OBSERVABILITY.md.
const (
	CounterTokens          = "parse.tokens"
	CounterBlocksBefore    = "cfg.blocks_before_simplify"
	CounterBlocksAfter     = "cfg.blocks_after_simplify"
	CounterMetaExplored    = "convert.meta_explored"
	CounterMetaMerged      = "convert.meta_merged"
	CounterMetaFiltered    = "convert.aggregates_barrier_filtered"
	CounterWorklistHigh    = "convert.worklist_high_water"
	CounterRestarts        = "convert.restarts"
	CounterSplits          = "convert.splits"
	CounterCSISavedCycles  = "codegen.csi_saved_cycles"
	CounterHashTried       = "codegen.hash_candidates_tried"
	CounterHashTables      = "codegen.hash_tables_built"
	CounterMetaStates      = "convert.meta_states"
	CounterMIMDStates      = "convert.mimd_states"
	CounterCSISlotsSaved   = "codegen.csi_slots_saved"
	CounterDispatchEntries = "codegen.dispatch_entries"
	CounterVetDiags        = "vet.diagnostics"
	CounterVetErrors       = "vet.errors"
	CounterVetWarnings     = "vet.warnings"

	// Conversion-core counters (the hash-consed interner, contribution
	// memo, and parallel frontier expansion; see docs/PERFORMANCE.md).
	CounterInternHits      = "convert.intern_hits"
	CounterContribMemoHits = "convert.contrib_memo_hits"
	CounterParallelGens    = "convert.parallel_generations"
	CounterConvertWorkers  = "convert.workers"
	CounterMergeScanned    = "convert.merge_candidates_scanned"

	// Robustness counters (resource budgets and the graceful-degradation
	// ladder; see docs/ROBUSTNESS.md). Budget overruns are recorded per
	// resource under BudgetCounterPrefix, e.g. "budget.meta_states".
	CounterDegradeSteps = "degrade.steps"
)

// BudgetCounterPrefix prefixes per-resource budget-overrun counters
// ("budget.meta_states", "budget.wall_clock", ...). Sum them with
// Metrics.PrefixSum.
const BudgetCounterPrefix = "budget."

// Phase names recorded by msc.Compile, in pipeline order.
const (
	PhaseParse    = "parse"
	PhaseAnalyze  = "analyze"
	PhaseLower    = "lower"
	PhaseSimplify = "simplify"
	PhaseConvert  = "convert"
	PhaseCheck    = "check"
	PhaseVet      = "vet"
	PhaseCodegen  = "codegen"
)

// Counter is one named monotonic value.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Phase is one named wall-time measurement.
type Phase struct {
	Name string        `json:"name"`
	Wall time.Duration `json:"wall_ns"`
}

// Recorder accumulates phases and counters. It is safe for concurrent
// use and all methods are no-ops on a nil receiver, so callers thread
// an optional *Recorder without nil checks at every site.
type Recorder struct {
	mu       sync.Mutex
	phases   []Phase
	phaseIdx map[string]int
	counters []Counter
	countIdx map[string]int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) phaseSlot(name string) *Phase {
	if r.phaseIdx == nil {
		r.phaseIdx = make(map[string]int)
	}
	i, ok := r.phaseIdx[name]
	if !ok {
		i = len(r.phases)
		r.phases = append(r.phases, Phase{Name: name})
		r.phaseIdx[name] = i
	}
	return &r.phases[i]
}

func (r *Recorder) counterSlot(name string) *Counter {
	if r.countIdx == nil {
		r.countIdx = make(map[string]int)
	}
	i, ok := r.countIdx[name]
	if !ok {
		i = len(r.counters)
		r.counters = append(r.counters, Counter{Name: name})
		r.countIdx[name] = i
	}
	return &r.counters[i]
}

// Phase starts timing the named phase and returns the stop function;
// repeated runs of the same phase accumulate.
func (r *Recorder) Phase(name string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() { r.AddPhase(name, time.Since(start)) }
}

// AddPhase adds wall time to the named phase.
func (r *Recorder) AddPhase(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.phaseSlot(name).Wall += d
}

// Add adds delta to the named counter, creating it at zero first.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterSlot(name).Value += delta
}

// Set sets the named counter.
func (r *Recorder) Set(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterSlot(name).Value = v
}

// Max raises the named counter to v if v is larger (high-water marks).
func (r *Recorder) Max(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counterSlot(name)
	if v > c.Value {
		c.Value = v
	}
}

// Value returns the named counter (zero when absent or nil receiver).
func (r *Recorder) Value(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.countIdx == nil {
		return 0
	}
	if i, ok := r.countIdx[name]; ok {
		return r.counters[i].Value
	}
	return 0
}

// PhaseWall returns the accumulated wall time of the named phase.
func (r *Recorder) PhaseWall(name string) time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.phaseIdx == nil {
		return 0
	}
	if i, ok := r.phaseIdx[name]; ok {
		return r.phases[i].Wall
	}
	return 0
}

// Snapshot returns a consistent copy of everything recorded so far.
func (r *Recorder) Snapshot() *Metrics {
	m := &Metrics{}
	if r == nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m.Phases = append([]Phase(nil), r.phases...)
	m.Counters = append([]Counter(nil), r.counters...)
	return m
}

// Metrics is a point-in-time copy of a Recorder: the typed struct form
// of the compile metrics, directly JSON-encodable.
type Metrics struct {
	Phases   []Phase   `json:"phases"`
	Counters []Counter `json:"counters"`
}

// Counter returns the named counter value, or zero.
func (m *Metrics) Counter(name string) int64 {
	for _, c := range m.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// PrefixSum sums every counter whose name starts with prefix; use it
// with BudgetCounterPrefix to total budget overruns across resources.
func (m *Metrics) PrefixSum(prefix string) int64 {
	var sum int64
	for _, c := range m.Counters {
		if strings.HasPrefix(c.Name, prefix) {
			sum += c.Value
		}
	}
	return sum
}

// JSON encodes the metrics as indented JSON.
func (m *Metrics) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// String renders an aligned human-readable table: phases in recording
// order, counters sorted by name.
func (m *Metrics) String() string {
	var sb strings.Builder
	for _, p := range m.Phases {
		fmt.Fprintf(&sb, "phase %-12s %12.3fms\n", p.Name, float64(p.Wall)/1e6)
	}
	cs := append([]Counter(nil), m.Counters...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	for _, c := range cs {
		fmt.Fprintf(&sb, "%-40s %12d\n", c.Name, c.Value)
	}
	return sb.String()
}
