package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"msc/internal/telemetry"
)

// MountDebug registers the standard Go diagnostics endpoints —
// /debug/pprof/* and /debug/vars — on mux. DebugServer uses it for its
// own mux; servers with their own listener (cmd/mscd) mount the same
// endpoints without mutating http.DefaultServeMux.
func MountDebug(mux *http.ServeMux) {
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugServer serves the standard Go diagnostics endpoints —
// /debug/pprof/* and /debug/vars — on its own mux so importing this
// package never mutates http.DefaultServeMux. MountMetrics adds a
// Prometheus /metrics endpoint over a telemetry registry.
type DebugServer struct {
	ln     net.Listener
	mux    *http.ServeMux
	srv    *http.Server
	cancel context.CancelFunc // cancels the base context of every request
	done   chan struct{}      // closed when the Serve goroutine exits
	once   sync.Once
	err    error
}

// StartDebugServer listens on addr (e.g. ":6060" or "127.0.0.1:0") and
// serves pprof and expvar in a background goroutine until Close.
func StartDebugServer(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	MountDebug(mux)
	ctx, cancel := context.WithCancel(context.Background())
	s := &DebugServer{
		ln:     ln,
		mux:    mux,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	s.srv = &http.Server{
		Handler: mux,
		// Every request context derives from ctx, so Close unblocks
		// in-flight handlers that honor their request context.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// MountMetrics serves reg in Prometheus text exposition format at
// /metrics. Call it once per server; the registry may keep gaining
// metrics afterwards — every scrape snapshots the current state.
func (s *DebugServer) MountMetrics(reg *telemetry.Registry) {
	s.mux.Handle("/metrics", telemetry.Handler(reg))
}

// Handle registers an additional handler on the server's mux (tests
// and embedders extend the diagnostics surface this way). Register
// before traffic arrives; ServeMux forbids duplicate patterns.
func (s *DebugServer) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down: it cancels the base context (unblocking
// in-flight handlers that honor the request context), force-closes the
// listener and every active connection, and joins the listener
// goroutine before returning — no goroutine of the server outlives
// Close. Idempotent.
func (s *DebugServer) Close() error {
	s.once.Do(func() {
		s.cancel()
		s.err = s.srv.Close()
		<-s.done
	})
	return s.err
}

// Publish exposes the recorder under the given expvar name; the
// published variable snapshots lazily, so counters recorded after
// Publish are visible on the next /debug/vars read. Re-publishing an
// existing name is a no-op (expvar forbids redefinition).
func (r *Recorder) Publish(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
