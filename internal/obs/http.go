package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"

	"msc/internal/telemetry"
)

// DebugServer serves the standard Go diagnostics endpoints —
// /debug/pprof/* and /debug/vars — on its own mux so importing this
// package never mutates http.DefaultServeMux. MountMetrics adds a
// Prometheus /metrics endpoint over a telemetry registry.
type DebugServer struct {
	ln  net.Listener
	mux *http.ServeMux
	srv *http.Server
}

// StartDebugServer listens on addr (e.g. ":6060" or "127.0.0.1:0") and
// serves pprof and expvar in a background goroutine until Close.
func StartDebugServer(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &DebugServer{ln: ln, mux: mux, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// MountMetrics serves reg in Prometheus text exposition format at
// /metrics. Call it once per server; the registry may keep gaining
// metrics afterwards — every scrape snapshots the current state.
func (s *DebugServer) MountMetrics(reg *telemetry.Registry) {
	s.mux.Handle("/metrics", telemetry.Handler(reg))
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *DebugServer) Close() error { return s.srv.Close() }

// Publish exposes the recorder under the given expvar name; the
// published variable snapshots lazily, so counters recorded after
// Publish are visible on the next /debug/vars read. Re-publishing an
// existing name is a no-op (expvar forbids redefinition).
func (r *Recorder) Publish(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
