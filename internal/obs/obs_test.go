package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderCounterAggregation(t *testing.T) {
	r := NewRecorder()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Add("b", 1)
	r.Max("hw", 4)
	r.Max("hw", 2) // lower: ignored
	r.Set("b", 10)
	if got := r.Value("a"); got != 5 {
		t.Errorf("a = %d, want 5", got)
	}
	if got := r.Value("b"); got != 10 {
		t.Errorf("b = %d, want 10", got)
	}
	if got := r.Value("hw"); got != 4 {
		t.Errorf("hw = %d, want 4", got)
	}
	if got := r.Value("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}

	m := r.Snapshot()
	if len(m.Counters) != 3 {
		t.Fatalf("snapshot has %d counters, want 3", len(m.Counters))
	}
	// Counters keep first-recorded order.
	if m.Counters[0].Name != "a" || m.Counters[1].Name != "b" || m.Counters[2].Name != "hw" {
		t.Errorf("counter order = %v", m.Counters)
	}
	if m.Counter("a") != 5 {
		t.Errorf("Metrics.Counter(a) = %d, want 5", m.Counter("a"))
	}
}

func TestRecorderPhases(t *testing.T) {
	r := NewRecorder()
	stop := r.Phase("parse")
	stop()
	r.AddPhase("parse", 3*time.Millisecond)
	r.AddPhase("convert", time.Millisecond)
	if r.PhaseWall("parse") < 3*time.Millisecond {
		t.Errorf("parse wall = %v, want >= 3ms", r.PhaseWall("parse"))
	}
	m := r.Snapshot()
	if len(m.Phases) != 2 || m.Phases[0].Name != "parse" || m.Phases[1].Name != "convert" {
		t.Errorf("phases = %v", m.Phases)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Add("x", 1)
	r.Set("x", 1)
	r.Max("x", 1)
	r.AddPhase("p", time.Second)
	r.Phase("p")()
	r.Publish("obs_test_nil")
	if r.Value("x") != 0 || r.PhaseWall("p") != 0 {
		t.Error("nil recorder returned non-zero values")
	}
	if m := r.Snapshot(); len(m.Counters) != 0 || len(m.Phases) != 0 {
		t.Error("nil recorder snapshot not empty")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Add("n", 1)
				r.Max("hw", int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Value("n"); got != 8000 {
		t.Errorf("n = %d, want 8000", got)
	}
	if got := r.Value("hw"); got != 999 {
		t.Errorf("hw = %d, want 999", got)
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Add(CounterTokens, 42)
	r.AddPhase(PhaseParse, 5*time.Millisecond)
	b, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m.Counter(CounterTokens) != 42 {
		t.Errorf("round-tripped tokens = %d, want 42", m.Counter(CounterTokens))
	}
	if len(m.Phases) != 1 || m.Phases[0].Wall != 5*time.Millisecond {
		t.Errorf("round-tripped phases = %v", m.Phases)
	}
}

func TestMetricsString(t *testing.T) {
	r := NewRecorder()
	r.Add("z.last", 1)
	r.Add("a.first", 2)
	r.AddPhase("parse", time.Millisecond)
	s := r.Snapshot().String()
	if !strings.Contains(s, "phase parse") {
		t.Errorf("missing phase line:\n%s", s)
	}
	// Counters are sorted by name in text form.
	if strings.Index(s, "a.first") > strings.Index(s, "z.last") {
		t.Errorf("counters not sorted:\n%s", s)
	}
}
