package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Reserved per-PE occupancy values in timeline events. Non-negative
// values are MIMD state numbers.
const (
	PEDone = -1 // the PE's process ended
	PEIdle = -2 // the PE is in the free pool
	PEWait = -3 // the PE is waiting at a barrier
)

// EventKind classifies a trace event.
type EventKind uint8

const (
	// EventMeta is one meta-state execution: the state, its live
	// census, and the aggregate that chose the next state.
	EventMeta EventKind = iota + 1
	// EventExit is the final meta-state execution, after which every PE
	// is done.
	EventExit
	// EventTimeline is a per-PE occupancy row captured at meta-state
	// entry.
	EventTimeline
)

// String returns the JSONL wire name of the kind.
func (k EventKind) String() string {
	switch k {
	case EventMeta:
		return "meta"
	case EventExit:
		return "exit"
	case EventTimeline:
		return "timeline"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one typed record of the execution trace stream. The SIMD VM
// emits EventTimeline at meta-state entry and EventMeta/EventExit after
// dispatch; sinks render or encode them.
type Event struct {
	Kind EventKind
	// Step is the meta-state execution ordinal (0-based); Cycle is the
	// control-unit cycle count after the state executed.
	Step  int64
	Cycle int64
	// Meta is the meta state ID; Set its MIMD state set rendered as
	// text (e.g. "{1,2,3}").
	Meta int
	Set  string
	// APC is the aggregate program counter observed at dispatch, Live
	// the number of live PEs, Next the chosen successor (EventMeta).
	APC  string
	Live int
	Next int
	// PEs is the per-PE occupancy (EventTimeline): MIMD state number,
	// or PEDone/PEIdle/PEWait.
	PEs []int
}

// Sink consumes trace events.
//
// Concurrency contract: the engines emit from a single VM goroutine, so
// the sinks in this package (TextSink, JSONLSink, MultiSink) are NOT
// concurrency-safe — unsynchronized Emit calls from multiple goroutines
// race on the underlying writers. A sink shared across goroutines (for
// example, one stream collecting several engine runs) must be wrapped
// in a SyncSink.
type Sink interface {
	Emit(e *Event) error
}

// SyncSink serializes Emit calls to the wrapped sink with a mutex,
// making any Sink safe to share across goroutines. Events from
// different goroutines interleave at Emit granularity — whole lines,
// never partial writes.
type SyncSink struct {
	mu   sync.Mutex
	Sink Sink
}

// NewSyncSink wraps s; a nil inner sink drops events.
func NewSyncSink(s Sink) *SyncSink { return &SyncSink{Sink: s} }

// Emit forwards to the wrapped sink under the lock.
func (s *SyncSink) Emit(e *Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Sink == nil {
		return nil
	}
	return s.Sink.Emit(e)
}

// TextSink renders events in the human-readable text format that
// predates the event stream, byte-for-byte: EventMeta/EventExit lines
// go to Trace, EventTimeline rows to Timeline. A nil writer drops that
// event class.
type TextSink struct {
	Trace    io.Writer
	Timeline io.Writer
}

// Emit writes the event in legacy text form.
func (s *TextSink) Emit(e *Event) error {
	switch e.Kind {
	case EventMeta:
		if s.Trace == nil {
			return nil
		}
		_, err := fmt.Fprintf(s.Trace, "[%6d] ms%-4d %-16s apc=%-16s live=%-3d -> ms%d\n",
			e.Cycle, e.Meta, e.Set, e.APC, e.Live, e.Next)
		return err
	case EventExit:
		if s.Trace == nil {
			return nil
		}
		_, err := fmt.Fprintf(s.Trace, "[%6d] ms%-4d %-16s -> exit (all PEs done)\n",
			e.Cycle, e.Meta, e.Set)
		return err
	case EventTimeline:
		if s.Timeline == nil {
			return nil
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "[%5d] ms%-4d |", e.Step, e.Meta)
		for _, pc := range e.PEs {
			switch pc {
			case PEDone:
				sb.WriteString(" -")
			case PEIdle:
				sb.WriteString(" .")
			case PEWait:
				sb.WriteString(" w")
			default:
				fmt.Fprintf(&sb, " %d", pc)
			}
		}
		sb.WriteString(" |\n")
		_, err := io.WriteString(s.Timeline, sb.String())
		return err
	}
	return nil
}

// jsonEvent is the JSONL wire form of an Event.
type jsonEvent struct {
	Kind  string `json:"kind"`
	Step  int64  `json:"step"`
	Cycle int64  `json:"cycle"`
	Meta  int    `json:"meta"`
	Set   string `json:"set,omitempty"`
	APC   string `json:"apc,omitempty"`
	Live  *int   `json:"live,omitempty"`
	Next  *int   `json:"next,omitempty"`
	PEs   []int  `json:"pes,omitempty"`
}

// JSONLSink encodes each event as one JSON object per line.
type JSONLSink struct {
	W io.Writer
}

// Emit writes the event as a JSON line.
func (s *JSONLSink) Emit(e *Event) error {
	je := jsonEvent{
		Kind:  e.Kind.String(),
		Step:  e.Step,
		Cycle: e.Cycle,
		Meta:  e.Meta,
		Set:   e.Set,
		APC:   e.APC,
		PEs:   e.PEs,
	}
	if e.Kind == EventMeta {
		live, next := e.Live, e.Next
		je.Live = &live
		je.Next = &next
	}
	b, err := json.Marshal(&je)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = s.W.Write(b)
	return err
}

// MultiSink fans every event out to each sink in order, stopping at the
// first error.
type MultiSink []Sink

// Emit forwards the event to every sink.
func (m MultiSink) Emit(e *Event) error {
	for _, s := range m {
		if err := s.Emit(e); err != nil {
			return err
		}
	}
	return nil
}
