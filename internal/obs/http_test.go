package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"msc/internal/faultinject"
)

func TestDebugServerServesPprofAndExpvar(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r := NewRecorder()
	r.Add(CounterMetaStates, 7)
	r.Publish("obs_test_compile")
	r.Publish("obs_test_compile") // duplicate publish must not panic

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline empty")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("pprof index does not list goroutine profile")
	}

	vars := get("/debug/vars")
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	raw, ok := decoded["obs_test_compile"]
	if !ok {
		t.Fatalf("published recorder missing from /debug/vars: %s", vars)
	}
	var m Metrics
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Counter(CounterMetaStates) != 7 {
		t.Errorf("expvar counter = %d, want 7", m.Counter(CounterMetaStates))
	}

	// Lazy snapshot: counters recorded after Publish appear on reread.
	r.Add(CounterMetaStates, 1)
	if err := json.Unmarshal([]byte(get("/debug/vars")), &decoded); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(decoded["obs_test_compile"], &m); err != nil {
		t.Fatal(err)
	}
	if m.Counter(CounterMetaStates) != 8 {
		t.Errorf("expvar counter after update = %d, want 8", m.Counter(CounterMetaStates))
	}
}

// TestDebugServerMetrics mounts a recorder's registry at /metrics and
// scrapes it: pipeline counters recorded through the Recorder must come
// back in Prometheus text exposition form.
func TestDebugServerMetrics(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r := NewRecorder()
	r.Add(CounterMetaStates, 5)
	r.AddPhase(PhaseConvert, 1500)
	srv.MountMetrics(r.Registry())

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	if !strings.Contains(body, "convert_meta_states 5") {
		t.Errorf("scrape missing recorder counter:\n%s", body)
	}
	if !strings.Contains(body, "phase_convert 1500") {
		t.Errorf("scrape missing phase wall time:\n%s", body)
	}

	// Metrics recorded after the mount appear on the next scrape.
	r.Add(CounterMetaStates, 2)
	resp2, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	b, err = io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "convert_meta_states 7") {
		t.Errorf("rescrape missing updated counter:\n%s", b)
	}
}

// TestDebugServerCloseUnblocksAndDoesNotLeak locks the shutdown
// contract cmd/mscd relies on: Close must (a) unblock an in-flight
// handler that honors its request context, (b) join the listener
// goroutine, and (c) leave no goroutine behind — checked with
// faultinject.LeakCheckWithin. It must also be idempotent.
func TestDebugServerCloseUnblocksAndDoesNotLeak(t *testing.T) {
	leak := faultinject.LeakCheckWithin(5 * time.Second)

	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder()
	r.Add(CounterMetaStates, 3)
	srv.MountMetrics(r.Registry())

	// A handler that blocks until its request context is canceled:
	// without the BaseContext wiring, Close would leave it (and its
	// connection goroutine) stuck forever.
	entered := make(chan struct{})
	unblocked := make(chan struct{})
	srv.Handle("/block", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		close(entered)
		<-req.Context().Done()
		close(unblocked)
	}))

	// Issue the blocking request; the client errors out when Close
	// tears the connection down, which is fine — the handler side is
	// what must unblock.
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/block", srv.Addr()))
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("blocking handler never entered")
	}

	// A normal in-flight scrape must also complete or be cleanly torn
	// down; fire one concurrently with Close.
	go http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return with a handler in flight")
	}
	select {
	case <-unblocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the in-flight handler")
	}
	if err := srv.Close(); err != nil && !strings.Contains(err.Error(), "closed") {
		t.Fatalf("second Close: %v", err)
	}

	// After Close: no listener goroutine, no per-connection goroutines.
	if err := leak(); err != nil {
		t.Fatal(err)
	}

	// And the listener is really gone: a new request must fail.
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr())); err == nil {
		t.Fatal("server still serving after Close")
	}
}
