package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerServesPprofAndExpvar(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r := NewRecorder()
	r.Add(CounterMetaStates, 7)
	r.Publish("obs_test_compile")
	r.Publish("obs_test_compile") // duplicate publish must not panic

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline empty")
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("pprof index does not list goroutine profile")
	}

	vars := get("/debug/vars")
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	raw, ok := decoded["obs_test_compile"]
	if !ok {
		t.Fatalf("published recorder missing from /debug/vars: %s", vars)
	}
	var m Metrics
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Counter(CounterMetaStates) != 7 {
		t.Errorf("expvar counter = %d, want 7", m.Counter(CounterMetaStates))
	}

	// Lazy snapshot: counters recorded after Publish appear on reread.
	r.Add(CounterMetaStates, 1)
	if err := json.Unmarshal([]byte(get("/debug/vars")), &decoded); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(decoded["obs_test_compile"], &m); err != nil {
		t.Fatal(err)
	}
	if m.Counter(CounterMetaStates) != 8 {
		t.Errorf("expvar counter after update = %d, want 8", m.Counter(CounterMetaStates))
	}
}
