package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestTextSinkMetaFormat(t *testing.T) {
	var tr bytes.Buffer
	s := &TextSink{Trace: &tr}
	err := s.Emit(&Event{
		Kind: EventMeta, Step: 0, Cycle: 49, Meta: 0,
		Set: "{0}", APC: "{2,3}", Live: 6, Next: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "[    49] ms0    {0}              apc={2,3}            live=6   -> ms3\n"
	if tr.String() != want {
		t.Errorf("meta line:\n got %q\nwant %q", tr.String(), want)
	}
}

func TestTextSinkExitFormat(t *testing.T) {
	var tr bytes.Buffer
	s := &TextSink{Trace: &tr}
	if err := s.Emit(&Event{Kind: EventExit, Cycle: 169, Meta: 4, Set: "{1}"}); err != nil {
		t.Fatal(err)
	}
	want := "[   169] ms4    {1}              -> exit (all PEs done)\n"
	if tr.String() != want {
		t.Errorf("exit line:\n got %q\nwant %q", tr.String(), want)
	}
}

func TestTextSinkTimelineFormat(t *testing.T) {
	var tl bytes.Buffer
	s := &TextSink{Timeline: &tl}
	err := s.Emit(&Event{
		Kind: EventTimeline, Step: 3, Meta: 2,
		PEs: []int{PEDone, 12, PEWait, PEIdle},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "[    3] ms2    | - 12 w . |\n"
	if tl.String() != want {
		t.Errorf("timeline row:\n got %q\nwant %q", tl.String(), want)
	}
}

func TestTextSinkNilWritersDrop(t *testing.T) {
	s := &TextSink{}
	for _, k := range []EventKind{EventMeta, EventExit, EventTimeline} {
		if err := s.Emit(&Event{Kind: k}); err != nil {
			t.Errorf("nil-writer emit of %v errored: %v", k, err)
		}
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := &JSONLSink{W: &buf}
	events := []*Event{
		{Kind: EventTimeline, Step: 0, Meta: 1, PEs: []int{0, PEIdle}},
		{Kind: EventMeta, Step: 0, Cycle: 10, Meta: 1, Set: "{0}", APC: "{1}", Live: 2, Next: 2},
		{Kind: EventExit, Step: 1, Cycle: 20, Meta: 2, Set: "{1}"},
	}
	for _, e := range events {
		if err := s.Emit(e); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec["kind"] != "timeline" {
		t.Errorf("line 0 kind = %v", rec["kind"])
	}
	if _, hasLive := rec["live"]; hasLive {
		t.Error("timeline event carries live field")
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["kind"] != "meta" || rec["live"] != float64(2) || rec["next"] != float64(2) {
		t.Errorf("meta line decoded to %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["kind"] != "exit" || rec["cycle"] != float64(20) {
		t.Errorf("exit line decoded to %v", rec)
	}
}

func TestMultiSink(t *testing.T) {
	var a, b bytes.Buffer
	m := MultiSink{&JSONLSink{W: &a}, &JSONLSink{W: &b}}
	if err := m.Emit(&Event{Kind: EventExit, Meta: 1, Set: "{0}"}); err != nil {
		t.Fatal(err)
	}
	if a.String() == "" || a.String() != b.String() {
		t.Errorf("multi sink outputs differ: %q vs %q", a.String(), b.String())
	}
}

// TestSyncSinkConcurrent shares one sink chain across goroutines the
// way a multi-engine run would, under the race detector (make check
// runs this package with -race): every event must land as a whole
// line, never interleaved mid-write.
func TestSyncSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewSyncSink(MultiSink{&JSONLSink{W: &buf}, &TextSink{Trace: io.Discard}})
	var wg sync.WaitGroup
	const workers, events = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				e := &Event{Kind: EventMeta, Step: int64(i), Cycle: int64(w), Meta: w, Set: "{0}", Next: 1}
				if err := s.Emit(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != workers*events {
		t.Fatalf("got %d lines, want %d", len(lines), workers*events)
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("interleaved write produced bad JSON line %q: %v", line, err)
		}
	}
}

func TestSyncSinkNilInner(t *testing.T) {
	if err := NewSyncSink(nil).Emit(&Event{Kind: EventExit}); err != nil {
		t.Fatal(err)
	}
}
