// Package mscerr holds the typed failure values shared by the pipeline
// and the execution engines. It is a dependency leaf (standard library
// only, imported by internal packages and re-exported by the root
// package) so that a budget overrun detected deep inside the converter
// and one detected by a simulator surface as the same Go type to API
// callers, who match them with errors.As.
//
// The taxonomy (see docs/ROBUSTNESS.md):
//
//   - *BudgetError — a configured resource limit was exhausted (meta
//     states, wall clock, CSI search candidates, approximate memory).
//     The program may well be valid; retrying with a bigger budget or
//     cheaper settings (Config.Degrade) can succeed.
//   - *StepLimitError — an execution engine hit its step budget, the
//     runtime analogue of a budget error (non-termination guard).
//   - *InternalError — a contained panic: an internal invariant broke.
//     Retrying will not help; this is a compiler bug carrying the phase
//     and stack for the report.
//
// Cancellation is not a type of its own: context errors propagate
// unwrapped-able via errors.Is(err, context.Canceled/DeadlineExceeded).
package mscerr

import "fmt"

// DefaultMaxSteps is the default simulator step budget shared by all
// three engines (meta-state executions on the SIMD machine, per-PE
// blocks on the MIMD reference, rounds on the interpreter). Large
// enough for every shipped workload, small enough that a runaway
// program fails in seconds rather than hanging the process.
const DefaultMaxSteps = 1 << 24

// BudgetError reports a resource budget exhausted during compilation.
// Phase is the pipeline phase that overran ("convert", "codegen", ...);
// Resource names the budget ("meta_states", "wall_clock_ms",
// "csi_candidates", "mem_bytes", or "faultinject" for injected faults);
// Used and Limit quantify the overrun in the resource's unit.
type BudgetError struct {
	Phase    string
	Resource string
	Limit    int64
	Used     int64
	// Err is the underlying cause when the overrun was detected through
	// another error — context.DeadlineExceeded for a wall-clock budget —
	// so errors.Is sees through the budget classification. Often nil:
	// most budgets are detected by counting, not by an inner error.
	Err error
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("%s: %s budget exceeded: used %d of %d (see msc.Limits; Config.Degrade retries with cheaper settings)",
		e.Phase, e.Resource, e.Used, e.Limit)
}

// Unwrap exposes the underlying cause (may be nil) to errors.Is/As.
func (e *BudgetError) Unwrap() error { return e.Err }

// StepLimitError reports an execution engine exhausting its step budget
// — the runtime non-termination guard. Engine is "simd", "mimd", or
// "interp"; Steps is how many steps ran (for the MIMD reference, the
// per-PE block count that tripped first).
type StepLimitError struct {
	Engine string
	Limit  int64
	Steps  int64
}

func (e *StepLimitError) Error() string {
	return fmt.Sprintf("%s: exceeded step limit of %d (non-terminating program? `msc vet` flags definite no-halt/livelock statically; raise RunConfig.MaxSteps to run longer)",
		e.Engine, e.Limit)
}

// CacheError reports a failure inside the artifact cache: a corrupt or
// torn entry, a checksum or codec-version mismatch, a filesystem error
// (ENOSPC, permissions, failed rename), or a quarantine action. Cache
// failures are NEVER fatal to a compile and never the client's fault:
// the pipeline degrades to a normal (uncached) compile and the error is
// surfaced only through CompileStats.CacheErrors, the cache.* obs
// counters, and telemetry span events. The type exists so those
// surfaces carry structure rather than strings, and so tests can assert
// the exact failure with errors.As.
type CacheError struct {
	// Op is the cache operation that failed: "open", "read", "write",
	// "rename", "decode", "verify", "quarantine", or "encode".
	Op string
	// Key is the content-address key of the entry involved (may be empty
	// for store-wide failures like "open").
	Key string
	// Path is the filesystem path involved, when one exists.
	Path string
	// Err is the underlying cause: an *os.PathError, a codec corruption
	// error, syscall.ENOSPC, etc. Never nil.
	Err error
}

func (e *CacheError) Error() string {
	msg := fmt.Sprintf("artifact cache %s failed", e.Op)
	if e.Key != "" {
		msg += " for " + e.Key
	}
	if e.Path != "" {
		msg += " (" + e.Path + ")"
	}
	return fmt.Sprintf("%s: %v (compile degraded to the uncached pipeline)", msg, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CacheError) Unwrap() error { return e.Err }

// InternalError is a contained panic: an internal invariant failed
// inside a pipeline phase and the phase runner recovered it. It always
// indicates a bug in this package, never bad input.
type InternalError struct {
	Phase string
	Panic string // the recovered panic value, stringified
	Stack []byte // debug.Stack() at recovery
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error in %s: %s (contained panic; this is a compiler bug)", e.Phase, e.Panic)
}
