// Package interp implements the paper's §1.1 baseline: MIMD emulation
// by interpretation on SIMD hardware. Each PE keeps its own program
// counter and a private copy of the entire MIMD program; the SIMD
// control unit runs the classic fetch / decode / dispatch loop:
//
//  1. each PE fetches an "instruction" and updates its "pc";
//  2. each PE decodes it;
//  3. for each instruction type present: disable non-matching PEs,
//     simulate the instruction, re-enable;
//  4. loop.
//
// The three §1.1 overheads are charged explicitly: per-round fetch and
// decode cycles, per-PE program memory (ProgWordsPerPE), and the
// serialization over distinct instruction types present each round plus
// the interpreter loop-back cost. Results are bit-identical to the
// other engines on race-free programs, so the overhead comparison in
// the evaluation is apples-to-apples.
package interp

import (
	"context"
	"fmt"

	"msc/internal/cfg"
	"msc/internal/ir"
	"msc/internal/mscerr"
	"msc/internal/telemetry"
)

// Interpreter cost model (cycles), following the §1.1 step structure.
const (
	FetchCost  = 2 // load instruction word from PE memory
	DecodeCost = 4 // extract opcode and operand
	LoopCost   = 2 // jump back to the top of the interpreter
	// MaskCost is charged once per instruction type present in a round:
	// the "disable all PEs where IR holds a different type" step.
	MaskCost = 2
	// InstrWords is the per-instruction encoding footprint in the PE
	// memory image (opcode word + operand word).
	InstrWords = 2
)

// Config controls an interpreter run.
type Config struct {
	N             int
	InitialActive int
	// MaxRounds bounds interpreter rounds (default
	// mscerr.DefaultMaxSteps); exceeding it returns an
	// *mscerr.StepLimitError.
	MaxRounds int
	// Ctx, when non-nil, is checked every ctxCheckEvery rounds for
	// cooperative cancellation.
	Ctx context.Context
	// Profiler, when non-nil, receives sampled cycle attribution:
	// handler-body cycles fold to the dispatching group's block (the
	// first matching PE's — approximate, since one handler serves every
	// matching PE), and the fetch/decode/mask/loop overhead to the
	// dispatch frame (telemetry.NoBlock). Meta frame is telemetry.NoMeta
	// — the interpreter has no meta states.
	Profiler *telemetry.Profiler
}

// ctxCheckEvery is the round interval between cancellation checks.
const ctxCheckEvery = 1024

// Result reports an interpreter execution.
type Result struct {
	Mem [][]ir.Word
	// Time is total SIMD cycles; Overhead is the part spent on fetch,
	// decode, masking, and loop-back rather than simulated instructions.
	Time     int64
	Overhead int64
	// Rounds counts interpreter iterations; TypesPerRound accumulates
	// the number of distinct instruction types serialized per round.
	Rounds        int64
	TypesPerRound int64
	// BlockVisits[id] counts PE entries into MIMD state id (initial
	// activation, jumps, and spawns), the interpreter's analogue of the
	// SIMD engine's per-meta-state visit counts.
	BlockVisits []int64
	// PEHist[k] counts dispatch groups in which exactly k PEs matched the
	// instruction type — the interpreter's PE-utilization histogram: mass
	// at low k is the §1.1 serialization the conversion eliminates.
	PEHist []int64
	// ProgWordsPerPE is the per-PE memory the program copy occupies —
	// the §1.1 memory cost that meta-state conversion eliminates.
	ProgWordsPerPE int
	// Done flags PEs that reached End.
	Done []bool
}

// opKind is the dispatch class of a micro-instruction: ordinary opcodes
// dispatch by ir.Op; terminators get their own types.
type opKind int

const (
	kindOpBase opKind = iota // + int(ir.Op)
	kindEnd    opKind = 1000 + iota
	kindHalt
	kindGoto
	kindBranch
	kindRetBr
	kindSpawn
	kindWait // waiting at a barrier: contributes no work
)

type pe struct {
	live     bool
	idle     bool
	blk      int
	idx      int // next instruction index; len(code) means terminator
	stack    []ir.Word
	retStack []int
	released bool
}

// Run interprets the MIMD state graph on the SIMD interpreter.
func Run(g *cfg.Graph, conf Config) (*Result, error) {
	if conf.N < 1 {
		return nil, fmt.Errorf("interp: N must be >= 1, got %d", conf.N)
	}
	if conf.InitialActive == 0 {
		conf.InitialActive = conf.N
	}
	if conf.InitialActive < 1 || conf.InitialActive > conf.N {
		return nil, fmt.Errorf("interp: InitialActive %d out of range [1,%d]", conf.InitialActive, conf.N)
	}
	if conf.MaxRounds == 0 {
		conf.MaxRounds = mscerr.DefaultMaxSteps
	}

	progWords := 0
	for _, b := range g.Blocks {
		if b != nil {
			progWords += InstrWords * (len(b.Code) + 1) // +1 terminator
		}
	}

	m := &machine{g: g, conf: conf, res: &Result{
		ProgWordsPerPE: progWords,
		Done:           make([]bool, conf.N),
		BlockVisits:    make([]int64, len(g.Blocks)),
		PEHist:         make([]int64, conf.N+1),
	}}
	m.mem = make([][]ir.Word, conf.N)
	m.pes = make([]pe, conf.N)
	for i := range m.pes {
		m.mem[i] = make([]ir.Word, g.Words)
		if i < conf.InitialActive {
			m.pes[i] = pe{live: true, blk: g.Entry}
			m.res.BlockVisits[g.Entry]++
		} else {
			m.pes[i] = pe{idle: true}
		}
	}

	for round := 0; ; round++ {
		if round >= conf.MaxRounds {
			return nil, &mscerr.StepLimitError{Engine: "interp", Limit: int64(conf.MaxRounds), Steps: int64(round)}
		}
		if conf.Ctx != nil && round%ctxCheckEvery == 0 {
			if err := conf.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("interp: run canceled at round %d: %w", round, err)
			}
		}
		anyWork, err := m.round()
		if err != nil {
			return nil, err
		}
		if !anyWork {
			// All runnable PEs are blocked: release barrier or finish.
			if !m.releaseBarrier() {
				break
			}
		}
	}

	for i := range m.pes {
		m.res.Done[i] = !m.pes[i].live && !m.pes[i].idle
	}
	m.res.Mem = m.mem
	return m.res, nil
}

type machine struct {
	g    *cfg.Graph
	conf Config
	mem  [][]ir.Word
	pes  []pe
	res  *Result
}

// kindOf classifies the micro-instruction PE i is about to execute.
func (m *machine) kindOf(i int) (opKind, *cfg.Block) {
	p := &m.pes[i]
	b := m.g.Block(p.blk)
	if b.Barrier && p.idx == 0 && !p.released {
		return kindWait, b
	}
	if p.idx < len(b.Code) {
		return kindOpBase + opKind(b.Code[p.idx].Op), b
	}
	switch b.Term {
	case cfg.End:
		return kindEnd, b
	case cfg.Halt:
		return kindHalt, b
	case cfg.Goto:
		return kindGoto, b
	case cfg.Branch:
		return kindBranch, b
	case cfg.RetBr:
		return kindRetBr, b
	case cfg.Spawn:
		return kindSpawn, b
	}
	return kindEnd, b
}

// round executes one fetch/decode/dispatch iteration. Returns false when
// no PE made progress (all waiting or none live).
func (m *machine) round() (bool, error) {
	// Gather the instruction type of every live PE.
	kinds := make(map[opKind][]int)
	for i := range m.pes {
		if !m.pes[i].live {
			continue
		}
		k, _ := m.kindOf(i)
		if k == kindWait {
			continue
		}
		kinds[k] = append(kinds[k], i)
	}
	if len(kinds) == 0 {
		return false, nil
	}

	m.res.Rounds++
	m.res.TypesPerRound += int64(len(kinds))
	m.res.Time += FetchCost + DecodeCost + LoopCost
	m.res.Overhead += FetchCost + DecodeCost + LoopCost
	if m.conf.Profiler != nil {
		m.conf.Profiler.Add(telemetry.NoMeta, telemetry.NoBlock, ir.Pos{}, FetchCost+DecodeCost+LoopCost)
	}

	// Deterministic dispatch order: ascending kind.
	order := make([]opKind, 0, len(kinds))
	for k := range kinds {
		order = append(order, k)
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j] < order[i] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}

	for _, k := range order {
		m.res.Time += MaskCost
		m.res.Overhead += MaskCost
		if m.conf.Profiler != nil {
			m.conf.Profiler.Add(telemetry.NoMeta, telemetry.NoBlock, ir.Pos{}, MaskCost)
		}
		m.res.PEHist[len(kinds[k])]++
		if err := m.dispatch(k, kinds[k]); err != nil {
			return false, err
		}
	}
	return true, nil
}

// releaseBarrier opens the barrier for all waiting PEs; reports whether
// any PE was waiting.
func (m *machine) releaseBarrier() bool {
	any := false
	for i := range m.pes {
		p := &m.pes[i]
		if !p.live {
			continue
		}
		if k, _ := m.kindOf(i); k == kindWait {
			p.released = true
			any = true
		}
	}
	return any
}

// dispatch simulates one instruction type for its matching PEs.
func (m *machine) dispatch(k opKind, matching []int) error {
	if k >= kindEnd {
		// Terminator handlers.
		m.res.Time += 3 // handler body
		if m.conf.Profiler != nil && len(matching) > 0 {
			b := m.g.Block(m.pes[matching[0]].blk)
			m.conf.Profiler.Add(telemetry.NoMeta, b.ID, b.Pos, 3)
		}
		for _, i := range matching {
			p := &m.pes[i]
			b := m.g.Block(p.blk)
			switch k {
			case kindEnd:
				p.live = false
			case kindHalt:
				p.live = false
				p.idle = true
				p.stack = p.stack[:0]
				p.retStack = p.retStack[:0]
			case kindGoto:
				m.jump(p, b.Next)
			case kindBranch:
				c, err := m.pop(i)
				if err != nil {
					return err
				}
				if ir.Truth(c) {
					m.jump(p, b.Next)
				} else {
					m.jump(p, b.FNext)
				}
			case kindRetBr:
				if len(p.retStack) == 0 {
					return fmt.Errorf("interp: PE %d return with empty return stack", i)
				}
				m.jump(p, p.retStack[len(p.retStack)-1])
				p.retStack = p.retStack[:len(p.retStack)-1]
			case kindSpawn:
				child := -1
				for j := range m.pes {
					if m.pes[j].idle {
						child = j
						break
					}
				}
				if child < 0 {
					return fmt.Errorf("interp: spawn with no free processor (width %d)", m.conf.N)
				}
				m.pes[child] = pe{live: true, blk: b.SpawnNext}
				m.res.BlockVisits[b.SpawnNext]++
				m.jump(p, b.Next)
			}
		}
		return nil
	}

	// Ordinary opcode handler: operand comes from each PE's fetched
	// instruction word, so one handler serves all matching PEs.
	op := ir.Op(k - kindOpBase)
	m.res.Time += int64(op.Cost()) + 1 // +1 operand access
	if m.conf.Profiler != nil && len(matching) > 0 {
		// One handler serves every matching PE; attribute its cost to the
		// first PE's block (deterministic, approximately proportional).
		b := m.g.Block(m.pes[matching[0]].blk)
		m.conf.Profiler.Add(telemetry.NoMeta, b.ID, b.Pos, int64(op.Cost())+1)
	}
	for _, i := range matching {
		p := &m.pes[i]
		b := m.g.Block(p.blk)
		in := b.Code[p.idx]
		if err := m.exec(i, in); err != nil {
			return fmt.Errorf("interp: PE %d state %d idx %d: %w", i, p.blk, p.idx, err)
		}
		p.idx++
	}
	return nil
}

// jump moves a PE to the start of a block. Arriving anywhere — even at
// another barrier — requires waiting afresh, so the release flag clears.
func (m *machine) jump(p *pe, blk int) {
	p.blk = blk
	p.idx = 0
	p.released = false
	m.res.BlockVisits[blk]++
}

func (m *machine) push(i int, w ir.Word) { m.pes[i].stack = append(m.pes[i].stack, w) }

func (m *machine) pop(i int) (ir.Word, error) {
	s := m.pes[i].stack
	if len(s) == 0 {
		return 0, fmt.Errorf("evaluation stack underflow")
	}
	w := s[len(s)-1]
	m.pes[i].stack = s[:len(s)-1]
	return w, nil
}

func (m *machine) slot(addr int64) (int, error) {
	if addr < 0 || addr >= int64(m.g.Words) {
		return 0, fmt.Errorf("memory address %d out of range [0,%d)", addr, m.g.Words)
	}
	return int(addr), nil
}

func peIndex(p ir.Word, n int) int {
	v := int(p) % n
	if v < 0 {
		v += n
	}
	return v
}

func (m *machine) exec(i int, in ir.Instr) error {
	switch in.Op {
	case ir.Nop:
	case ir.PushC:
		m.push(i, ir.Word(in.Imm))
	case ir.Dup:
		w, err := m.pop(i)
		if err != nil {
			return err
		}
		m.push(i, w)
		m.push(i, w)
	case ir.Pop:
		for k := int64(0); k < in.Imm; k++ {
			if _, err := m.pop(i); err != nil {
				return err
			}
		}
	case ir.LdLocal, ir.LdMono:
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		m.push(i, m.mem[i][a])
	case ir.StLocal:
		w, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		m.mem[i][a] = w
	case ir.StMono:
		w, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		for q := range m.mem {
			m.mem[q][a] = w
		}
	case ir.LdIndex:
		idx, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm + int64(idx))
		if err != nil {
			return err
		}
		m.push(i, m.mem[i][a])
	case ir.StIndex:
		w, err := m.pop(i)
		if err != nil {
			return err
		}
		idx, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm + int64(idx))
		if err != nil {
			return err
		}
		m.mem[i][a] = w
	case ir.LdRemote:
		pw, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		m.push(i, m.mem[peIndex(pw, m.conf.N)][a])
	case ir.StRemote:
		w, err := m.pop(i)
		if err != nil {
			return err
		}
		pw, err := m.pop(i)
		if err != nil {
			return err
		}
		a, err := m.slot(in.Imm)
		if err != nil {
			return err
		}
		m.mem[peIndex(pw, m.conf.N)][a] = w
	case ir.IProc:
		m.push(i, ir.Word(i))
	case ir.NProc:
		m.push(i, ir.Word(m.conf.N))
	case ir.PushRet:
		m.pes[i].retStack = append(m.pes[i].retStack, int(in.Imm))
	default:
		switch {
		case ir.IsBinary(in.Op):
			b, err := m.pop(i)
			if err != nil {
				return err
			}
			a, err := m.pop(i)
			if err != nil {
				return err
			}
			m.push(i, ir.EvalBinary(in.Op, a, b))
		case ir.IsUnary(in.Op):
			a, err := m.pop(i)
			if err != nil {
				return err
			}
			m.push(i, ir.EvalUnary(in.Op, a))
		default:
			return fmt.Errorf("unknown opcode %v", in.Op)
		}
	}
	return nil
}
