package interp

import (
	"strings"
	"testing"

	"msc/internal/cfg"
	"msc/internal/mimdsim"
	"msc/internal/progen"
)

func buildGraph(t testing.TB, src string) *cfg.Graph {
	t.Helper()
	g := cfg.Simplify(cfg.MustBuild(src))
	if err := cfg.Verify(g); err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return g
}

// checkAgainstReference interprets src and requires bit-identical memory
// with the MIMD reference machine.
func checkAgainstReference(t *testing.T, name, src string, n, initialActive int) *Result {
	t.Helper()
	g := buildGraph(t, src)
	ref, err := mimdsim.Run(g, mimdsim.Config{N: n, InitialActive: initialActive})
	if err != nil {
		t.Fatalf("%s: mimdsim: %v", name, err)
	}
	res, err := Run(g, Config{N: n, InitialActive: initialActive})
	if err != nil {
		t.Fatalf("%s: interp: %v", name, err)
	}
	for pe := 0; pe < n; pe++ {
		for slot := range ref.Mem[pe] {
			if ref.Mem[pe][slot] != res.Mem[pe][slot] {
				t.Fatalf("%s: PE %d slot %d: interp %d != mimd %d",
					name, pe, slot, res.Mem[pe][slot], ref.Mem[pe][slot])
			}
		}
		if ref.Done[pe] != res.Done[pe] {
			t.Fatalf("%s: PE %d done mismatch", name, pe)
		}
	}
	return res
}

func TestInterpListing1(t *testing.T) {
	res := checkAgainstReference(t, "listing1", `
poly int x;
void main()
{
    x = iproc % 3;
    if (x) {
        do { x = x - 1; } while (x);
    } else {
        do { x = x + 2; } while (x < 4);
    }
    x = x + 100;
    return;
}
`, 7, 0)
	// §1.1 claims: interpretation overhead and per-PE program memory.
	if res.Overhead <= 0 || res.Overhead >= res.Time {
		t.Fatalf("overhead = %d of %d, want strictly inside", res.Overhead, res.Time)
	}
	if res.ProgWordsPerPE <= 0 {
		t.Fatalf("ProgWordsPerPE = %d, want > 0", res.ProgWordsPerPE)
	}
	if res.Rounds <= 0 || res.TypesPerRound < res.Rounds {
		t.Fatalf("rounds=%d typesPerRound=%d", res.Rounds, res.TypesPerRound)
	}
}

func TestInterpSerializationOverhead(t *testing.T) {
	// Divergent PEs executing different opcodes in the same round force
	// the interpreter to serialize: mean types per round must exceed 1.
	res := checkAgainstReference(t, "divergent", `
poly int x;
poly float f;
void main()
{
    if (iproc % 2) {
        x = x * 3 + iproc;
        x = x % 97;
    } else {
        f = 1.5;
        f = f * 2.5;
        x = f;
    }
    return;
}
`, 8, 0)
	if mean := float64(res.TypesPerRound) / float64(res.Rounds); mean <= 1.0 {
		t.Fatalf("mean instruction types per round = %.2f, want > 1 (serialization)", mean)
	}
}

func TestInterpBarriersAndComm(t *testing.T) {
	checkAgainstReference(t, "reduction", `
poly int val, sum;
void main()
{
    poly int j;
    val = iproc + 1;
    wait;
    sum = 0;
    for (j = 0; j < nproc; j = j + 1) {
        sum = sum + val[[j]];
    }
    return;
}
`, 6, 0)
}

func TestInterpSequentialBarriers(t *testing.T) {
	checkAgainstReference(t, "two-barriers", `
poly int a;
void main()
{
    a = iproc;
    wait;
    a = a + 1;
    wait;
    a = a * 2;
    return;
}
`, 4, 0)
}

func TestInterpCallsAndRecursion(t *testing.T) {
	checkAgainstReference(t, "gcd", `
poly int r;
int gcd(int a, int b) { if (b == 0) { return a; } return gcd(b, a % b); }
void main()
{
    r = gcd(iproc + 12, 18);
    return;
}
`, 5, 0)
}

func TestInterpSpawn(t *testing.T) {
	checkAgainstReference(t, "spawn", `
poly int out;
void worker() { out = iproc * 7 + 1; halt; }
void main()
{
    spawn worker();
    spawn worker();
    return;
}
`, 4, 1)
}

func TestInterpRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("random sweep skipped in -short")
	}
	for seed := int64(100); seed < 120; seed++ {
		src := progen.Source(progen.Params{
			Seed: seed, Barriers: true, Floats: true, Calls: true,
			MaxDepth: 2, MaxStmts: 4,
		})
		checkAgainstReference(t, src[:0], src, 5, 0)
	}
}

func TestInterpGuards(t *testing.T) {
	g := buildGraph(t, `void main() { poly int x; for (;;) { x = x + 1; } }`)
	if _, err := Run(g, Config{N: 1, MaxRounds: 50}); err == nil ||
		!strings.Contains(err.Error(), "non-terminating") {
		t.Fatalf("non-termination guard missing")
	}
	if _, err := Run(g, Config{N: 0}); err == nil {
		t.Fatalf("N=0 accepted")
	}
	if _, err := Run(g, Config{N: 1, InitialActive: 5}); err == nil {
		t.Fatalf("InitialActive > N accepted")
	}
}

func TestInterpSpawnExhaustion(t *testing.T) {
	g := buildGraph(t, `
void worker() { halt; }
void main() { spawn worker(); return; }
`)
	// Width 1: the only PE runs main, so no processor is ever free.
	if _, err := Run(g, Config{N: 1}); err == nil ||
		!strings.Contains(err.Error(), "no free processor") {
		t.Fatalf("spawn exhaustion not detected")
	}
}

func TestInterpArraysFloatsMono(t *testing.T) {
	checkAgainstReference(t, "mixed", `
mono int scale;
poly int a[6], total;
poly float acc;
void main()
{
    poly int i;
    if (iproc == 0) { scale = 3; }
    wait;
    for (i = 0; i < 6; i = i + 1) { a[i] = i * scale; }
    total = 0;
    acc = 0.5;
    for (i = 0; i < 6; i = i + 1) {
        total = total + a[i];
        acc = acc * 1.5;
    }
    total = total + acc;
    return;
}
`, 4, 0)
}

func TestInterpValueDependentDivergence(t *testing.T) {
	res := checkAgainstReference(t, "primes", `
poly int count;
int isprime(int n)
{
    poly int d;
    if (n < 2) { return 0; }
    for (d = 2; d * d <= n; d = d + 1) {
        if (n % d == 0) { return 0; }
    }
    return 1;
}
void main()
{
    poly int k;
    count = 0;
    for (k = iproc * 10; k < iproc * 10 + 10; k = k + 1) {
        count = count + isprime(k);
    }
    return;
}
`, 6, 0)
	if res.Time <= res.Overhead {
		t.Fatalf("time %d <= overhead %d", res.Time, res.Overhead)
	}
}

func TestCounters(t *testing.T) {
	src := `
poly int x;
void main()
{
    x = iproc % 3;
    if (x) {
        do { x = x - 1; } while (x);
    } else {
        do { x = x + 2; } while (x < 4);
    }
    x = x + 100;
    return;
}
`
	g := buildGraph(t, src)
	res, err := Run(g, Config{N: 7})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	if len(res.BlockVisits) != len(g.Blocks) {
		t.Fatalf("BlockVisits len %d, want %d", len(res.BlockVisits), len(g.Blocks))
	}
	if res.BlockVisits[g.Entry] < 7 {
		t.Errorf("entry visits = %d, want >= 7 (all PEs start there)", res.BlockVisits[g.Entry])
	}
	var visits int64
	for _, v := range res.BlockVisits {
		visits += v
	}
	if visits < 7 {
		t.Errorf("total block visits = %d, want >= 7", visits)
	}

	if len(res.PEHist) != 8 {
		t.Fatalf("PEHist len %d, want N+1=8", len(res.PEHist))
	}
	if res.PEHist[0] != 0 {
		t.Errorf("PEHist[0] = %d, want 0 (empty dispatch groups never run)", res.PEHist[0])
	}
	// Every serialized dispatch group is one histogram entry.
	var groups int64
	for _, v := range res.PEHist {
		groups += v
	}
	if groups != res.TypesPerRound {
		t.Errorf("sum(PEHist) = %d, want TypesPerRound = %d", groups, res.TypesPerRound)
	}
	// The divergent program must serialize at least once: some group
	// smaller than the full machine width.
	var partial int64
	for k := 1; k < 7; k++ {
		partial += res.PEHist[k]
	}
	if partial == 0 {
		t.Errorf("PEHist has no partial groups; divergent program should serialize")
	}
}
