// Command benchdiff compares two mscbench -json reports and fails when
// the new one regresses. The deterministic metrics — meta states, MIMD
// states, and the cycle counts of all three engines — gate hard: any
// workload where the new value is more than the tolerance worse than
// the old exits nonzero. Compile-phase wall times are machine noise and
// only warn.
//
// Usage:
//
//	benchdiff [-tol 10] [-wall-tol 0] OLD.json NEW.json
//
// -wall-tol > 0 additionally gates compile wall times at that percent
// (warn-only by default, since wall times are machine noise).
//
// The repository pins BENCH_seed.json as the baseline; `make bench`
// regenerates the current report and runs this comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"msc/internal/harness"
)

func main() {
	tol := flag.Float64("tol", 10, "regression tolerance in percent for deterministic metrics")
	wallTol := flag.Float64("wall-tol", 0, "gate compile wall-time regressions beyond this percent (0 = warn-only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol pct] [-wall-tol pct] OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := readReport(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := readReport(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	regressions, notes := diff(old, cur, *tol, *wallTol)
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	for _, r := range regressions {
		fmt.Println("REGRESSION:", r)
	}
	if len(regressions) > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond %.0f%% (%s -> %s)\n",
			len(regressions), *tol, flag.Arg(0), flag.Arg(1))
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok, %d workload(s) within %.0f%% (%s -> %s)\n",
		len(cur.Results), *tol, flag.Arg(0), flag.Arg(1))
}

func readReport(path string) (*harness.BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// metric is one gated comparison column; lower is better for all of
// them, so a regression is new > old * (1 + tol/100). Metrics with
// gateFromZero set also regress when a zero baseline becomes nonzero
// (a percentage is undefined there, but the jump itself is the signal
// — e.g. a workload that starts needing the degradation ladder).
// gateFromZero doubles as "zero is a legitimate value": for the other
// (core) metrics a real run is never zero, so a zero on either side
// means the metric is absent from that report and is diagnosed rather
// than compared — a vanished simd_cycles must not read as a -100%
// improvement, and a zero baseline must not silently skip the column.
type metric struct {
	name         string
	get          func(*harness.BenchResult) int64
	gateFromZero bool
}

var metrics = []metric{
	{name: "meta_states", get: func(r *harness.BenchResult) int64 { return int64(r.MetaStates) }},
	{name: "mimd_states", get: func(r *harness.BenchResult) int64 { return int64(r.MIMDStates) }},
	{name: "simd_cycles", get: func(r *harness.BenchResult) int64 { return r.SIMDCycles }},
	{name: "mimd_cycles", get: func(r *harness.BenchResult) int64 { return r.MIMDCycles }},
	{name: "interp_cycles", get: func(r *harness.BenchResult) int64 { return r.InterpCycles }},
	{name: "degrade_steps", get: func(r *harness.BenchResult) int64 { return r.DegradeSteps }, gateFromZero: true},
	{name: "budget_overruns", get: func(r *harness.BenchResult) int64 { return r.BudgetOverruns }, gateFromZero: true},
	// opt_meta_states is absent from reports older than the optimizer;
	// the zero-baseline path diagnoses that as a note, not a regression.
	{name: "opt_meta_states", get: func(r *harness.BenchResult) int64 { return int64(r.OptMetaStates) }},
	// Width-sweep rows only. Both are deterministic cycle-domain
	// numbers: pe_steps is N×Time and cycles_per_pe_step_milli is
	// issued millicycles per enabled PE-cycle (inverse utilization).
	// Absent (zero) on ordinary workload rows and on pre-sweep reports.
	{name: "pe_steps", get: func(r *harness.BenchResult) int64 { return r.PESteps }},
	{name: "cycles_per_pe_step_milli", get: func(r *harness.BenchResult) int64 { return r.CyclesPerPEStepMilli }},
}

// diff compares cur against old and returns hard regressions and
// informational notes. A workload present in old but missing from cur
// is a regression (coverage loss); a new workload is a note.
func diff(old, cur *harness.BenchReport, tol, wallTol float64) (regressions, notes []string) {
	curBy := make(map[string]*harness.BenchResult, len(cur.Results))
	for i := range cur.Results {
		curBy[cur.Results[i].Name] = &cur.Results[i]
	}
	oldSeen := make(map[string]bool, len(old.Results))
	for i := range old.Results {
		o := &old.Results[i]
		oldSeen[o.Name] = true
		c, ok := curBy[o.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: workload missing from new report", o.Name))
			continue
		}
		for _, m := range metrics {
			ov, cv := m.get(o), m.get(c)
			switch {
			case ov <= 0 && cv <= 0:
				// Absent (or legitimately zero) on both sides: nothing to
				// compare.
				continue
			case ov <= 0:
				// Zero baseline, nonzero new value: no percentage exists.
				// For gateFromZero metrics the jump itself is the signal;
				// for the rest, say explicitly that the column could not be
				// gated instead of silently skipping it.
				if m.gateFromZero {
					regressions = append(regressions, fmt.Sprintf("%s: %s %d -> %d (was zero)", o.Name, m.name, ov, cv))
				} else {
					notes = append(notes, fmt.Sprintf("%s: %s baseline is zero (absent from old report?); new value %d not gated", o.Name, m.name, cv))
				}
				continue
			case cv <= 0:
				// Nonzero baseline vanished. For core metrics zero means
				// the new report never measured it — a coverage loss, not a
				// 100% improvement. gateFromZero counters may genuinely
				// drop to zero; that is the improvement the gate exists
				// for.
				if m.gateFromZero {
					notes = append(notes, fmt.Sprintf("%s: %s improved %d -> %d", o.Name, m.name, ov, cv))
				} else {
					regressions = append(regressions, fmt.Sprintf("%s: %s %d -> %d (metric missing from new report)", o.Name, m.name, ov, cv))
				}
				continue
			}
			pct := 100 * float64(cv-ov) / float64(ov)
			switch {
			case pct > tol:
				regressions = append(regressions, fmt.Sprintf("%s: %s %d -> %d (%+.1f%%)", o.Name, m.name, ov, cv, pct))
			case pct < 0:
				notes = append(notes, fmt.Sprintf("%s: %s improved %d -> %d (%.1f%%)", o.Name, m.name, ov, cv, pct))
			}
		}
		// The sweep's SIMD wall metric is machine noise like compile
		// wall: surface big swings, never gate. (ns_per_pe_step_milli is
		// the normalized form of the same measurement, so one note
		// covers both.)
		if o.NSPerPEStepMilli > 0 && c.NSPerPEStepMilli > 0 {
			pct := 100 * float64(c.NSPerPEStepMilli-o.NSPerPEStepMilli) / float64(o.NSPerPEStepMilli)
			if pct > 2*tol {
				notes = append(notes, fmt.Sprintf("%s: ns_per_pe_step_milli %d -> %d (%+.1f%%, warn-only wall metric)",
					o.Name, o.NSPerPEStepMilli, c.NSPerPEStepMilli, pct))
			}
		}
		// Cache columns are wall times too: a slower warm hit or a
		// collapsing cold/warm speedup is worth a look, never a gate.
		if o.CompileCachedNS > 0 && c.CompileCachedNS > 0 {
			pct := 100 * float64(c.CompileCachedNS-o.CompileCachedNS) / float64(o.CompileCachedNS)
			if pct > 2*tol {
				notes = append(notes, fmt.Sprintf("%s: compile_cached_ns %d -> %d (%+.1f%%, warn-only wall metric)",
					o.Name, o.CompileCachedNS, c.CompileCachedNS, pct))
			}
		}
		if o.CacheSpeedup > 0 && c.CacheSpeedup > 0 && c.CacheSpeedup < o.CacheSpeedup/2 {
			notes = append(notes, fmt.Sprintf("%s: cache_speedup %.1fx -> %.1fx (warn-only wall metric)",
				o.Name, o.CacheSpeedup, c.CacheSpeedup))
		}
		// Wall times vary run to run: by default surface large swings
		// without gating; -wall-tol > 0 gates them hard (use on quiet
		// machines to pin a no-overhead claim). One-sided compile stats
		// are diagnosed, not silently skipped.
		switch {
		case o.Compile == nil && c.Compile == nil:
			// Neither report carries compile stats: nothing to compare.
		case o.Compile == nil:
			notes = append(notes, fmt.Sprintf("%s: old report has no compile stats; wall comparison skipped", o.Name))
		case c.Compile == nil:
			notes = append(notes, fmt.Sprintf("%s: new report has no compile stats; wall comparison skipped", o.Name))
		default:
			ow, cw := phaseTotal(o), phaseTotal(c)
			switch {
			case ow <= 0 && cw <= 0:
				// No phase wall data on either side.
			case ow <= 0:
				notes = append(notes, fmt.Sprintf("%s: compile wall baseline is zero; new value %dns not gated", o.Name, cw))
			default:
				pct := 100 * float64(cw-ow) / float64(ow)
				switch {
				case wallTol > 0 && pct > wallTol:
					regressions = append(regressions, fmt.Sprintf("%s: compile wall %dns -> %dns (%+.1f%%)", o.Name, ow, cw, pct))
				case pct > 2*tol:
					notes = append(notes, fmt.Sprintf("%s: compile wall %dns -> %dns (%+.1f%%, warn-only)", o.Name, ow, cw, pct))
				}
			}
		}
	}
	for i := range cur.Results {
		c := &cur.Results[i]
		if !oldSeen[c.Name] {
			notes = append(notes, fmt.Sprintf("%s: new workload (no baseline)", c.Name))
		}
		// Intra-report invariant: the optimizer's whole point is a
		// smaller automaton, so an optimized build with MORE meta states
		// than its own unoptimized baseline is a regression regardless of
		// what any older report says.
		if c.OptMetaStates > 0 && c.MetaStates > 0 && c.OptMetaStates > c.MetaStates {
			regressions = append(regressions, fmt.Sprintf(
				"%s: opt_meta_states %d exceeds meta_states %d in the same report",
				c.Name, c.OptMetaStates, c.MetaStates))
		}
		if c.OptConvertNS > 0 && c.ConvertNS > 0 && c.OptConvertNS > 2*c.ConvertNS {
			notes = append(notes, fmt.Sprintf(
				"%s: opt conversion wall %dns vs %dns unoptimized (warn-only, wall times are noisy)",
				c.Name, c.OptConvertNS, c.ConvertNS))
		}
	}
	// Suite-level cache hit rate: deterministic in shape (one miss plus
	// the warm repeats per workload), but a drop means the bench's cache
	// path stopped hitting — surface it without gating.
	if old.CacheHitRate > 0 && cur.CacheHitRate+1e-9 < old.CacheHitRate {
		notes = append(notes, fmt.Sprintf("suite cache_hit_rate %.3f -> %.3f (warn-only)",
			old.CacheHitRate, cur.CacheHitRate))
	}
	return regressions, notes
}

func phaseTotal(r *harness.BenchResult) int64 {
	var total int64
	for _, p := range r.Compile.PhaseWall {
		total += int64(p.Wall)
	}
	return total
}
